// Package router is the detailed routing substrate for Experiment 3. It is
// not a contest router: it routes nets over a track grid with A* and a light
// soft-conflict retry, materializes wires and vias, and counts DRCs with the
// drc engine. Its purpose is to isolate the variable the paper's Experiment 3
// studies — pin access strategy — by routing the same design in two modes:
//
//   - AccessPAAF: terminals enter the grid through the access points the pin
//     access framework selected (DRC-validated via, exact coordinate);
//   - AccessAdHoc: terminals enter at the track crossing nearest the pin
//     center with the default via, regardless of design rules — the behaviour
//     the paper attributes to routers without a pin access oracle (Fig. 8's
//     Dr. CU comparison).
//
// Track legality is encoded structurally: every layer only uses its own
// tracks (masked onto the fine M1/M2 grid), different nets keep a blocking
// radius along shared tracks (covering via-enclosure overhangs and
// end-of-line windows), and vias keep a cut-spacing radius from each other.
// Routed geometry is therefore clean away from the pins, so post-route
// violations concentrate exactly where the experiment looks: at pin accesses.
package router

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/guide"
	"repro/internal/pao"
	"repro/internal/tech"
)

// AccessMode selects how terminals connect to the routing grid.
type AccessMode uint8

const (
	AccessPAAF AccessMode = iota
	AccessAdHoc
)

func (m AccessMode) String() string {
	if m == AccessAdHoc {
		return "adhoc"
	}
	return "paaf"
}

// Config tunes the router.
type Config struct {
	Mode AccessMode
	// MaxLayer bounds the routing layers used (default 6).
	MaxLayer int
	// MaxRipupRounds bounds the negotiated rip-up-and-reroute iterations
	// (default 3).
	MaxRipupRounds int
	// BBoxMarginTracks widens each connection's search window (default 16).
	BBoxMarginTracks int
	// Access is the pin access result used in AccessPAAF mode.
	Access *pao.Result
	// Guides, when set, supplies per-net global-routing guides (keyed by net
	// name). Nodes outside a net's guide region cost extra during search —
	// the "initial detailed routing honors guides" behaviour of the
	// TritonRoute flow the paper integrates into.
	Guides map[string][]guide.Box
}

// Wire is a routed metal segment.
type Wire struct {
	Layer int
	Rect  geom.Rect
	Net   int
}

// PlacedVia is a routed via instance.
type PlacedVia struct {
	Def    *tech.ViaDef
	Pos    geom.Point
	Net    int
	Access bool // true when this via implements a pin access
}

// Result is the routing outcome.
type Result struct {
	Routed     int // completed two-pin connections
	RoutedSoft int // connections that needed the soft (conflict-tolerant) retry
	Failed     int // connections with no path even after the soft retry
	WireLength int64
	Wires      []Wire
	Vias       []PlacedVia

	Violations       []drc.Violation
	AccessViolations int // violations touching a pin-access via
}

// Router routes one design.
type Router struct {
	d   *db.Design
	cfg Config

	gx, gy []int64 // fine grid coordinates (M2 track x's, M1 track y's)
	// maskX[l][ix] (vertical layers) / maskY[l][iy] (horizontal layers):
	// whether the layer owns a track at that fine-grid coordinate.
	maskX, maskY [][]bool
	// blockRad[l]: how many fine-grid nodes along the preferred direction a
	// claimed node excludes for other nets (covers enclosure overhang plus
	// the larger of spacing and end-of-line clearance).
	blockRad []int
	// encHalf[l]: the largest via-enclosure extent along the layer's
	// preferred direction; wrong-way segments widen to 2*encHalf so via
	// enclosures sit flush inside them (no Fig. 3-style steps mid-route).
	encHalf []int64
	// viaRad[cut]: fine-grid radius two cuts on the same layer must keep.
	viaRad []int

	occ    map[int64]int32   // node -> owning net (physical or clearance reservation)
	phys   map[int64]int32   // node -> net with physical geometry there (stubs, vias)
	viaOcc []map[[2]int]bool // per cut layer: occupied via sites
	// guideRects[net] is the 2D union of the net's guide boxes (nil: no guide).
	guideRects map[int][]geom.Rect
	wires      []Wire
	vias       []PlacedVia
}

// New builds a router over the design's track grid.
func New(d *db.Design, cfg Config) (*Router, error) {
	if cfg.MaxLayer == 0 {
		cfg.MaxLayer = 6
	}
	if cfg.MaxLayer > d.Tech.NumMetals() {
		cfg.MaxLayer = d.Tech.NumMetals()
	}
	if cfg.BBoxMarginTracks == 0 {
		cfg.BBoxMarginTracks = 64
	}
	r := &Router{d: d, cfg: cfg, occ: make(map[int64]int32), phys: make(map[int64]int32)}
	for _, tp := range d.Tracks {
		switch {
		case tp.Layer == 2 && tp.WireDir == tech.Vertical:
			for c := tp.Start; c <= tp.Last(); c += tp.Step {
				r.gx = append(r.gx, c)
			}
		case tp.Layer == 1 && tp.WireDir == tech.Horizontal:
			for c := tp.Start; c <= tp.Last(); c += tp.Step {
				r.gy = append(r.gy, c)
			}
		}
	}
	if len(r.gx) == 0 || len(r.gy) == 0 {
		return nil, fmt.Errorf("router: design lacks M1/M2 track patterns")
	}
	sort.Slice(r.gx, func(i, j int) bool { return r.gx[i] < r.gx[j] })
	sort.Slice(r.gy, func(i, j int) bool { return r.gy[i] < r.gy[j] })
	r.buildMasks()
	if cfg.Guides != nil {
		r.guideRects = make(map[int][]geom.Rect)
		for idx, net := range d.Nets {
			for _, b := range cfg.Guides[net.Name] {
				r.guideRects[idx+1] = append(r.guideRects[idx+1], b.Rect)
			}
		}
	}
	r.blockFixedShapes()
	return r, nil
}

// blockedNet marks grid nodes covered by fixed design geometry on routing
// layers (macro obstructions, macro pins): no net may route through them.
const blockedNet = int32(-1)

// blockFixedShapes claims the nodes covered by fixed shapes on layers 2 and
// above (plus a one-node clearance ring) for the universal blocker.
func (r *Router) blockFixedShapes() {
	mark := func(layer int, rect geom.Rect) {
		if layer < 2 || layer > r.cfg.MaxLayer {
			return
		}
		spacing := r.d.Tech.Metal(layer).Spacing.MaxSpacing()
		win := rect.Bloat(spacing)
		x0 := sort.Search(len(r.gx), func(i int) bool { return r.gx[i] >= win.XL })
		y0 := sort.Search(len(r.gy), func(i int) bool { return r.gy[i] >= win.YL })
		for ix := x0; ix < len(r.gx) && r.gx[ix] <= win.XH; ix++ {
			for iy := y0; iy < len(r.gy) && r.gy[iy] <= win.YH; iy++ {
				k := r.key(layer, ix, iy)
				r.occ[k] = blockedNet
				r.phys[k] = blockedNet
			}
		}
	}
	for _, inst := range r.d.Instances {
		for _, s := range inst.ObsShapes() {
			mark(s.Layer, s.Rect)
		}
		// Macro pins on routing layers are fixed geometry too; their own nets
		// reach them through terminal stubs, other nets must keep out.
		if inst.Master.Class == db.ClassBlock {
			for _, pin := range inst.Master.Pins {
				for _, s := range inst.PinShapes(pin) {
					mark(s.Layer, s.Rect)
				}
			}
		}
	}
}

// onGuide reports whether a node lies inside the net's guide region; nets
// without guides are unconstrained.
func (r *Router) onGuide(net, ix, iy int) bool {
	rects, ok := r.guideRects[net]
	if !ok || len(rects) == 0 {
		return true
	}
	p := geom.Pt(r.gx[ix], r.gy[iy])
	for _, rc := range rects {
		if rc.ContainsPt(p) {
			return true
		}
	}
	return false
}

// buildMasks computes per-layer track masks and blocking radii.
func (r *Router) buildMasks() {
	nm := r.d.Tech.NumMetals()
	r.maskX = make([][]bool, nm+1)
	r.maskY = make([][]bool, nm+1)
	r.blockRad = make([]int, nm+1)
	r.encHalf = make([]int64, nm+1)
	r.viaRad = make([]int, nm+1)
	gridPitch := r.d.Tech.Metal(1).Pitch

	onPattern := func(tps []db.TrackPattern, c int64) bool {
		for _, tp := range tps {
			if tp.IsOnTrack(c) {
				return true
			}
		}
		return false
	}
	for l := 1; l <= nm; l++ {
		layer := r.d.Tech.Metal(l)
		pref, _ := r.d.TracksFor(l)
		if layer.Dir == tech.Vertical {
			m := make([]bool, len(r.gx))
			for i, c := range r.gx {
				m[i] = onPattern(pref, c)
			}
			r.maskX[l] = m
		} else {
			m := make([]bool, len(r.gy))
			for i, c := range r.gy {
				m[i] = onPattern(pref, c)
			}
			r.maskY[l] = m
		}
		// Blocking radius: enclosure overhang beyond the node plus the larger
		// of spacing and end-of-line clearance, plus half a wire, in nodes.
		encHalf := layer.Width / 2
		for _, v := range r.d.Tech.Vias {
			var ext int64
			for _, lr := range []struct {
				num int
				rr  geom.Rect
			}{{v.CutBelow, v.BotEnc}, {v.CutBelow + 1, v.TopEnc}} {
				if lr.num != l {
					continue
				}
				if layer.Dir == tech.Horizontal {
					ext = maxI64(ext, maxI64(-lr.rr.XL, lr.rr.XH))
				} else {
					ext = maxI64(ext, maxI64(-lr.rr.YL, lr.rr.YH))
				}
			}
			encHalf = maxI64(encHalf, ext)
		}
		clear := layer.Spacing.MaxSpacing()
		if layer.EOL.EOLSpace > clear {
			clear = layer.EOL.EOLSpace
		}
		r.encHalf[l] = encHalf
		r.blockRad[l] = int((encHalf + clear + layer.Width/2 + gridPitch - 1) / gridPitch)
	}
	for k := 1; k < nm; k++ {
		c := r.d.Tech.Cut(k)
		r.viaRad[k] = int((c.Width + c.Spacing + gridPitch - 1) / gridPitch)
	}
	r.viaOcc = make([]map[[2]int]bool, nm)
	for k := 1; k < nm; k++ {
		r.viaOcc[k] = make(map[[2]int]bool)
	}
}

// layerAllowed reports whether the fine-grid node sits on one of the layer's
// own tracks.
func (r *Router) layerAllowed(l, ix, iy int) bool {
	if r.d.Tech.Metal(l).Dir == tech.Horizontal {
		return r.maskY[l][iy]
	}
	return r.maskX[l][ix]
}

// viaClearance reports whether a via's enclosures at (ix,iy) keep the
// per-layer blocking radius from foreign physical geometry along both
// layers' preferred directions.
func (r *Router) viaClearance(l1, l2, ix, iy, net int) bool {
	for _, l := range [2]int{l1, l2} {
		rad := r.blockRad[l]
		horiz := r.d.Tech.Metal(l).Dir == tech.Horizontal
		for d := 1; d <= rad; d++ {
			for _, sgn := range [2]int{-1, 1} {
				nx, ny := ix, iy
				if horiz {
					nx += sgn * d
				} else {
					ny += sgn * d
				}
				if nx < 0 || ny < 0 || nx >= len(r.gx) || ny >= len(r.gy) {
					continue
				}
				if owner, used := r.phys[r.key(l, nx, ny)]; used && owner != int32(net) {
					return false
				}
			}
		}
	}
	return true
}

// viaSiteFree reports whether a via on cut layer k at (ix,iy) keeps the cut
// spacing radius from every committed via.
func (r *Router) viaSiteFree(k, ix, iy int) bool {
	rad := r.viaRad[k]
	for dx := -rad; dx <= rad; dx++ {
		for dy := -rad; dy <= rad; dy++ {
			if r.viaOcc[k][[2]int{ix + dx, iy + dy}] {
				return false
			}
		}
	}
	return true
}

// node identity: layer * nx * ny + ix * ny + iy, layers 1-based.
func (r *Router) key(l, ix, iy int) int64 {
	return (int64(l)*int64(len(r.gx))+int64(ix))*int64(len(r.gy)) + int64(iy)
}

func snap(coords []int64, v int64) int {
	i := sort.Search(len(coords), func(i int) bool { return coords[i] >= v })
	if i == 0 {
		return 0
	}
	if i == len(coords) {
		return len(coords) - 1
	}
	if coords[i]-v < v-coords[i-1] {
		return i
	}
	return i - 1
}

// snapMasked snaps v to the nearest masked grid index.
func snapMasked(coords []int64, mask []bool, v int64) int {
	i := snap(coords, v)
	if mask == nil || mask[i] {
		return i
	}
	for d := 1; d < len(coords); d++ {
		if i-d >= 0 && mask[i-d] {
			return i - d
		}
		if i+d < len(coords) && mask[i+d] {
			return i + d
		}
	}
	return i
}

// snapIn snaps v to the nearest grid index whose coordinate lies in [lo,hi]
// when possible.
func snapIn(coords []int64, v, lo, hi int64) int {
	i := snap(coords, v)
	if coords[i] >= lo && coords[i] <= hi {
		return i
	}
	j := sort.Search(len(coords), func(k int) bool { return coords[k] >= lo })
	if j < len(coords) && coords[j] <= hi {
		return j
	}
	return i
}

// terminal is a net endpoint on the grid.
type terminal struct {
	layer  int // grid entry layer
	ix, iy int
	net    int
	// fixed geometry implementing the pin access (entry via + stubs).
	via      *PlacedVia
	stubs    []Wire
	physical []int64 // nodes the stub geometry actually occupies
	flanks   []int64 // clearance-only reservations (off-track flanking tracks)
}

// termFor builds the grid terminal for an instance pin.
func (r *Router) termFor(inst *db.Instance, pin *db.MPin, net int) terminal {
	if r.cfg.Mode == AccessPAAF && r.cfg.Access != nil {
		if ap := r.cfg.Access.AccessPointFor(inst, pin); ap != nil && ap.Primary() != nil {
			return r.terminalAt(ap.Primary(), ap.Pos, ap.Layer, net)
		}
	}
	// Ad-hoc: nearest track crossing to the pin bbox center, clamped into the
	// bbox where the grid allows, default via, no validation.
	var bbox geom.Rect
	first := true
	layer := 1
	for _, s := range inst.PinShapes(pin) {
		if first {
			bbox, layer, first = s.Rect, s.Layer, false
		} else if s.Layer == layer {
			bbox = bbox.UnionBBox(s.Rect)
		}
	}
	c := bbox.Center()
	ix := snapIn(r.gx, c.X, bbox.XL, bbox.XH)
	iy := snapIn(r.gy, c.Y, bbox.YL, bbox.YH)
	p := geom.Pt(r.gx[ix], r.gy[iy])
	vias := r.d.Tech.ViasAbove(layer)
	return r.terminalAt(vias[0], p, layer, net)
}

// terminalAt drops the access via at p and builds the entry stub connecting
// it to the grid on the layer above: a preferred-direction stub at the
// access point's own coordinate, plus a short connector at the grid line
// when the access point is off-track in the perpendicular axis. The entry
// node and (for off-track access) its flanking tracks are claimed so other
// nets keep clear.
func (r *Router) terminalAt(v *tech.ViaDef, p geom.Point, layer, net int) terminal {
	up := layer + 1
	upl := r.d.Tech.Metal(up)
	hw := upl.Width / 2
	t := terminal{layer: up, net: net}
	t.via = &PlacedVia{Def: v, Pos: p, Net: net, Access: true}

	if upl.Dir == tech.Vertical {
		ix := snapMasked(r.gx, r.maskX[up], p.X)
		iy0 := snap(r.gy, p.Y)
		iy := r.freeEntry(up, ix, iy0, false, net)
		t.ix, t.iy = ix, iy
		gy := r.gy[iy]
		if gy != p.Y {
			t.stubs = append(t.stubs, Wire{up, geom.R(p.X-hw, minI64(p.Y, gy)-hw, p.X+hw, maxI64(p.Y, gy)+hw), net})
		}
		offTrack := r.gx[ix] != p.X
		if offTrack {
			t.stubs = append(t.stubs, Wire{up, geom.R(minI64(p.X, r.gx[ix])-hw, gy-hw, maxI64(p.X, r.gx[ix])+hw, gy+hw), net})
		}
		// The stub physically occupies its span of nodes; off-track access
		// additionally reserves the flanking tracks for clearance.
		for ny := minInt(iy0, iy); ny <= maxInt(iy0, iy); ny++ {
			if ny < 0 || ny >= len(r.gy) {
				continue
			}
			t.physical = append(t.physical, r.key(up, ix, ny))
			if offTrack {
				for _, nx := range []int{ix - 1, ix + 1} {
					if nx >= 0 && nx < len(r.gx) {
						t.flanks = append(t.flanks, r.key(up, nx, ny))
					}
				}
			}
		}
	} else {
		iy := snapMasked(r.gy, r.maskY[up], p.Y)
		ix0 := snap(r.gx, p.X)
		ix := r.freeEntry(up, ix0, iy, true, net)
		t.ix, t.iy = ix, iy
		gx := r.gx[ix]
		if gx != p.X {
			t.stubs = append(t.stubs, Wire{up, geom.R(minI64(p.X, gx)-hw, p.Y-hw, maxI64(p.X, gx)+hw, p.Y+hw), net})
		}
		offTrack := r.gy[iy] != p.Y
		if offTrack {
			t.stubs = append(t.stubs, Wire{up, geom.R(gx-hw, minI64(p.Y, r.gy[iy])-hw, gx+hw, maxI64(p.Y, r.gy[iy])+hw), net})
		}
		for nx := minInt(ix0, ix); nx <= maxInt(ix0, ix); nx++ {
			if nx < 0 || nx >= len(r.gx) {
				continue
			}
			t.physical = append(t.physical, r.key(up, nx, iy))
			if offTrack {
				for _, ny := range []int{iy - 1, iy + 1} {
					if ny >= 0 && ny < len(r.gy) {
						t.flanks = append(t.flanks, r.key(up, nx, ny))
					}
				}
			}
		}
	}
	return t
}

// freeEntry walks along the entry layer's preferred direction from the
// snapped index to the first node not already claimed by another net, so two
// neighboring pins never share an entry node. horiz selects which axis the
// entry index moves on (true: x).
func (r *Router) freeEntry(l, ix, iy int, horiz bool, net int) int {
	limit := 10
	idx := iy
	n := len(r.gy)
	if horiz {
		idx = ix
		n = len(r.gx)
	}
	keyOf := func(i int) int64 {
		if horiz {
			return r.key(l, i, iy)
		}
		return r.key(l, ix, i)
	}
	// Pass 0: a free node whose continuation (the next node outward) is also
	// free, so the net can actually escape without brushing a neighbor's
	// enclosure. Pass 1: any free node. Pass 2: accept foreign reservations
	// (physical presence wins over a clearance claim) but never foreign
	// geometry.
	free := func(i int, allowReserved bool) bool {
		if i < 0 || i >= n {
			return false
		}
		k := keyOf(i)
		if owner, used := r.phys[k]; used && owner != int32(net) {
			return false
		}
		if owner, used := r.occ[k]; used && owner != int32(net) {
			return allowReserved
		}
		return true
	}
	for pass := 0; pass < 3; pass++ {
		tryIdx := func(i, dir int) bool {
			if !free(i, pass == 2) {
				return false
			}
			if pass == 0 && !free(i+dir, false) {
				return false
			}
			return true
		}
		if tryIdx(idx, 1) || tryIdx(idx, -1) {
			return idx
		}
		for d := 1; d <= limit; d++ {
			if tryIdx(idx+d, 1) {
				return idx + d
			}
			if tryIdx(idx-d, -1) {
				return idx - d
			}
		}
	}
	if horiz {
		return ix
	}
	return iy
}

func (r *Router) termForIO(io *db.IOPin, net int) terminal {
	c := io.Shape.Rect.Center()
	l := io.Shape.Layer
	var ix, iy int
	if r.d.Tech.Metal(l).Dir == tech.Vertical {
		ix = snapMasked(r.gx, r.maskX[l], c.X)
		iy = snap(r.gy, c.Y)
	} else {
		iy = snapMasked(r.gy, r.maskY[l], c.Y)
		ix = snap(r.gx, c.X)
	}
	return terminal{layer: l, ix: ix, iy: iy, net: net,
		physical: []int64{r.key(l, ix, iy)}}
}

// Route routes every net and returns the result (without DRC; call Check).
// conn is one two-pin connection with its routing state.
type conn struct {
	net  int
	a, b terminal
	rec  *commitRec // nil while unrouted
	soft bool
}

// Route routes every net with negotiated rip-up-and-reroute: connections
// route conflict-free where possible; a connection that can only complete by
// crossing other nets' committed paths evicts those victims (they rejoin the
// queue) for up to MaxRipupRounds rounds. Whatever still needs soft routing
// after the final round keeps its overlaps, which then surface as shorts in
// the DRC report. Call Check for the DRC results.
func (r *Router) Route() *Result {
	res := &Result{}
	var conns []conn
	for netIdx, net := range r.d.Nets {
		n := netIdx + 1
		var terms []terminal
		for _, t := range net.Terms {
			terms = append(terms, r.termFor(t.Inst, t.Pin, n))
		}
		for _, io := range net.IOPins {
			terms = append(terms, r.termForIO(io, n))
		}
		for _, t := range terms {
			r.placeTerminal(t)
		}
		if len(terms) < 2 {
			continue
		}
		for _, pair := range mstPairs(terms) {
			conns = append(conns, conn{net: n, a: terms[pair[0]], b: terms[pair[1]]})
		}
	}
	// Short connections first: they have the least flexibility.
	sort.SliceStable(conns, func(i, j int) bool {
		return connSpan(conns[i].a, conns[i].b) < connSpan(conns[j].a, conns[j].b)
	})

	rounds := r.cfg.MaxRipupRounds
	if rounds <= 0 {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		ripped := false
		for i := range conns {
			if conns[i].rec != nil {
				continue
			}
			c := &conns[i]
			if c.a.layer == c.b.layer && c.a.ix == c.b.ix && c.a.iy == c.b.iy {
				c.rec = &commitRec{}
				continue
			}
			if path := r.astar(c.net, c.a, c.b, false); path != nil {
				c.rec = r.commit(c.net, path)
				continue
			}
			if round == rounds-1 {
				continue // final round: leave for the soft pass below
			}
			// Blocked: find a soft path and evict the connections whose
			// committed geometry it crosses, then take the freed space.
			path := r.astar(c.net, c.a, c.b, true)
			if path == nil {
				continue
			}
			for _, it := range path {
				if owner, used := r.phys[it.key]; used && owner != int32(c.net) {
					for j := range conns {
						if conns[j].rec != nil && conns[j].net == int(owner) && conns[j].rec.owns(it.key) {
							r.uncommit(&conns[j])
							ripped = true
						}
					}
				}
			}
			if hard := r.astar(c.net, c.a, c.b, false); hard != nil {
				c.rec = r.commit(c.net, hard)
			}
		}
		if !ripped {
			break
		}
	}
	// Soft pass for whatever remains.
	for i := range conns {
		if conns[i].rec != nil {
			continue
		}
		c := &conns[i]
		if path := r.astar(c.net, c.a, c.b, true); path != nil {
			c.rec = r.commit(c.net, path)
			c.soft = true
		}
	}
	for i := range conns {
		switch {
		case conns[i].rec == nil:
			res.Failed++
		case conns[i].soft:
			res.Routed++
			res.RoutedSoft++
		default:
			res.Routed++
		}
	}
	// Materialize the committed geometry.
	for i := range conns {
		if conns[i].rec == nil {
			continue
		}
		res.Wires = append(res.Wires, conns[i].rec.wires...)
		res.Vias = append(res.Vias, conns[i].rec.vias...)
	}
	res.Wires = append(res.Wires, r.wires...) // terminal stubs
	res.Vias = append(res.Vias, r.vias...)    // access vias
	r.patchMinArea(res)
	for _, w := range res.Wires {
		res.WireLength += w.Rect.MaxDim()
	}
	return res
}

// patchMinArea appends metal fill to routed components that fall short of
// their layer's minimum area — the post-route "area fix" every production
// router performs. Each undersized component's longest rectangle extends
// symmetrically along the layer's preferred direction; the extension stays
// within the clearance the component's own blocking radius already reserved,
// so no new conflicts arise.
func (r *Router) patchMinArea(res *Result) {
	type key struct{ net, layer int }
	groups := make(map[key][]geom.Rect)
	for _, w := range res.Wires {
		if w.Layer >= 2 {
			groups[key{w.Net, w.Layer}] = append(groups[key{w.Net, w.Layer}], w.Rect)
		}
	}
	for _, v := range res.Vias {
		if v.Def.CutBelow >= 2 {
			groups[key{v.Net, v.Def.CutBelow}] = append(groups[key{v.Net, v.Def.CutBelow}], v.Def.BotRect(v.Pos))
		}
		if v.Def.CutBelow+1 >= 2 {
			groups[key{v.Net, v.Def.CutBelow + 1}] = append(groups[key{v.Net, v.Def.CutBelow + 1}], v.Def.TopRect(v.Pos))
		}
	}
	for k, rects := range groups {
		l := r.d.Tech.Metal(k.layer)
		if l == nil || l.Area <= 0 {
			continue
		}
		for _, poly := range geom.UnionRects(rects) {
			area := poly.Area()
			if area >= l.Area {
				continue
			}
			// Longest rect of the component, by preferred-direction extent.
			bbox := poly.BBox()
			var spine geom.Rect
			var best int64 = -1
			for _, rc := range rects {
				if !rc.Touches(bbox) {
					continue
				}
				ext := rc.Width()
				if l.Dir == tech.Vertical {
					ext = rc.Height()
				}
				if ext > best {
					best, spine = ext, rc
				}
			}
			if best < 0 {
				continue
			}
			width := spine.Height()
			if l.Dir == tech.Vertical {
				width = spine.Width()
			}
			if width <= 0 {
				continue
			}
			d := (l.Area - area + 2*width - 1) / (2 * width)
			var patch geom.Rect
			if l.Dir == tech.Vertical {
				patch = geom.R(spine.XL, spine.YL-d, spine.XH, spine.YH+d)
			} else {
				patch = geom.R(spine.XL-d, spine.YL, spine.XH+d, spine.YH)
			}
			res.Wires = append(res.Wires, Wire{Layer: k.layer, Rect: patch, Net: k.net})
		}
	}
}

func connSpan(a, b terminal) int {
	return absInt(a.ix-b.ix) + absInt(a.iy-b.iy)
}

// placeTerminal materializes a terminal's fixed geometry and reserves its
// entry nodes and via site.
func (r *Router) placeTerminal(t terminal) {
	if t.via != nil {
		r.vias = append(r.vias, *t.via)
		r.wires = append(r.wires, t.stubs...)
		k := t.via.Def.CutBelow
		r.viaOcc[k][[2]int{snap(r.gx, t.via.Pos.X), snap(r.gy, t.via.Pos.Y)}] = true
	}
	nxny := int64(len(r.gx)) * int64(len(r.gy))
	decode := func(k int64) (int, int, int) {
		l := int(k / nxny)
		rest := k % nxny
		return l, int(rest / int64(len(r.gy))), int(rest % int64(len(r.gy)))
	}
	for _, k := range t.physical {
		// Physical geometry overrides clearance reservations by other nets.
		r.phys[k] = int32(t.net)
		r.occ[k] = int32(t.net)
		l, ix, iy := decode(k)
		r.claimRec(t.net, l, ix, iy, nil)
	}
	for _, k := range t.flanks {
		l, ix, iy := decode(k)
		r.claimRec(t.net, l, ix, iy, nil)
	}
}

// mstPairs returns index pairs of a Manhattan-distance MST over terminals.
func mstPairs(terms []terminal) [][2]int {
	n := len(terms)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	dist := make([]int, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = 1 << 30
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = connSpan(terms[0], terms[i])
		from[i] = 0
	}
	var out [][2]int
	for len(out) < n-1 {
		best, bd := -1, 1<<30
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		out = append(out, [2]int{from[best], best})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := connSpan(terms[best], terms[i]); d < dist[i] {
					dist[i], from[i] = d, best
				}
			}
		}
	}
	return out
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
