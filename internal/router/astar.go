package router

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/tech"
)

// pqItem is an A* open-list entry.
type pqItem struct {
	key  int64
	l    int
	ix   int
	iy   int
	g    int64
	f    int64
	from int64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// commitRec captures everything one committed connection placed, so
// negotiated rip-up can evict it cleanly.
type commitRec struct {
	occKeys  []int64 // occupancy entries this connection created
	physKeys []int64
	viaSites []viaSite
	wires    []Wire
	vias     []PlacedVia
	pathKeys map[int64]bool
}

type viaSite struct {
	cut int
	at  [2]int
}

// owns reports whether the record's path passes through the node.
func (rec *commitRec) owns(key int64) bool { return rec.pathKeys[key] }

func (r *Router) astar(net int, a, b terminal, soft bool) []pqItem {
	m := r.cfg.BBoxMarginTracks
	loX := maxInt(0, minInt(a.ix, b.ix)-m)
	hiX := minInt(len(r.gx)-1, maxInt(a.ix, b.ix)+m)
	loY := maxInt(0, minInt(a.iy, b.iy)-m)
	hiY := minInt(len(r.gy)-1, maxInt(a.iy, b.iy)+m)
	loL := 2
	hiL := r.cfg.MaxLayer
	if a.layer > hiL || b.layer > hiL {
		hiL = maxInt(a.layer, b.layer)
	}

	pitch := r.d.Tech.Metal(1).Pitch
	viaCost := 3 * pitch
	wrongWay := int64(4)
	softPenalty := 200 * pitch
	offGuide := 8 * pitch

	h := func(l, ix, iy int) int64 {
		d := absI64(r.gx[ix]-r.gx[b.ix]) + absI64(r.gy[iy]-r.gy[b.iy])
		return d + int64(absInt(l-b.layer))*viaCost
	}

	start := pqItem{key: r.key(a.layer, a.ix, a.iy), l: a.layer, ix: a.ix, iy: a.iy, g: 0, from: -1}
	start.f = h(a.layer, a.ix, a.iy)
	goal := r.key(b.layer, b.ix, b.iy)

	open := pq{start}
	came := map[int64]pqItem{}
	gBest := map[int64]int64{start.key: 0}
	const maxExpand = 300000
	expanded := 0

	for len(open) > 0 {
		cur := heap.Pop(&open).(pqItem)
		if prev, ok := came[cur.key]; ok && prev.g <= cur.g {
			continue
		}
		came[cur.key] = cur
		if cur.key == goal {
			var path []pqItem
			k := cur.key
			for k >= 0 {
				it := came[k]
				path = append(path, it)
				k = it.from
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		expanded++
		if expanded > maxExpand {
			return nil
		}
		dir := r.d.Tech.Metal(cur.l).Dir
		type move struct {
			l, ix, iy int
			cost      int64
			isVia     bool
		}
		var moves []move
		if cur.ix > loX {
			c := absI64(r.gx[cur.ix] - r.gx[cur.ix-1])
			if dir != tech.Horizontal {
				c *= wrongWay
			}
			moves = append(moves, move{cur.l, cur.ix - 1, cur.iy, c, false})
		}
		if cur.ix < hiX {
			c := absI64(r.gx[cur.ix+1] - r.gx[cur.ix])
			if dir != tech.Horizontal {
				c *= wrongWay
			}
			moves = append(moves, move{cur.l, cur.ix + 1, cur.iy, c, false})
		}
		if cur.iy > loY {
			c := absI64(r.gy[cur.iy] - r.gy[cur.iy-1])
			if dir != tech.Vertical {
				c *= wrongWay
			}
			moves = append(moves, move{cur.l, cur.ix, cur.iy - 1, c, false})
		}
		if cur.iy < hiY {
			c := absI64(r.gy[cur.iy+1] - r.gy[cur.iy])
			if dir != tech.Vertical {
				c *= wrongWay
			}
			moves = append(moves, move{cur.l, cur.ix, cur.iy + 1, c, false})
		}
		if cur.l > loL {
			moves = append(moves, move{cur.l - 1, cur.ix, cur.iy, viaCost, true})
		}
		if cur.l < hiL {
			moves = append(moves, move{cur.l + 1, cur.ix, cur.iy, viaCost, true})
		}
		for _, mv := range moves {
			// Every layer only uses its own tracks.
			if !r.layerAllowed(mv.l, mv.ix, mv.iy) {
				continue
			}
			if mv.isVia {
				// The node must sit on both layers' tracks, the cut site must
				// respect cut spacing against committed vias, and the via's
				// enclosures must keep clear of foreign geometry along both
				// layers' tracks.
				if !r.layerAllowed(cur.l, mv.ix, mv.iy) {
					continue
				}
				if !r.viaSiteFree(minInt(cur.l, mv.l), mv.ix, mv.iy) {
					continue
				}
				if !r.viaClearance(cur.l, mv.l, mv.ix, mv.iy, net) {
					continue
				}
			}
			k := r.key(mv.l, mv.ix, mv.iy)
			cost := mv.cost
			if owner, used := r.occ[k]; used && owner != int32(net) {
				if !soft {
					continue
				}
				cost += softPenalty
			}
			if r.guideRects != nil && !r.onGuide(net, mv.ix, mv.iy) {
				cost += offGuide
			}
			g := cur.g + cost
			if prev, ok := gBest[k]; ok && prev <= g {
				continue
			}
			gBest[k] = g
			heap.Push(&open, pqItem{key: k, l: mv.l, ix: mv.ix, iy: mv.iy, g: g,
				f: g + h(mv.l, mv.ix, mv.iy), from: cur.key})
		}
	}
	return nil
}

// viaFor picks the via variant for a layer transition whose bottom enclosure
// runs along the lower layer's preferred direction (so the enclosure hides
// inside the wire).
func (r *Router) viaFor(lo int) *tech.ViaDef {
	vias := r.d.Tech.ViasAbove(lo)
	if len(vias) == 0 {
		return nil
	}
	wantX := r.d.Tech.Metal(lo).Dir == tech.Horizontal
	for _, v := range vias {
		if (v.BotEnc.Width() >= v.BotEnc.Height()) == wantX {
			return v
		}
	}
	return vias[0]
}

// commit claims the path's nodes (with the per-layer blocking radius along
// the preferred direction), registers via sites and materializes wires and
// vias into a record that uncommit can undo.
func (r *Router) commit(net int, path []pqItem) *commitRec {
	rec := &commitRec{pathKeys: make(map[int64]bool, len(path))}
	for _, it := range path {
		if _, used := r.phys[it.key]; !used {
			r.phys[it.key] = int32(net)
			rec.physKeys = append(rec.physKeys, it.key)
		}
		rec.pathKeys[it.key] = true
		r.claimRec(net, it.l, it.ix, it.iy, rec)
	}
	// Group consecutive same-layer runs into wires.
	runStart := 0
	for i := 1; i <= len(path); i++ {
		if i < len(path) && path[i].l == path[runStart].l {
			continue
		}
		r.emitWire(net, path[runStart:i], rec)
		if i < len(path) {
			lo := minInt(path[i-1].l, path[i].l)
			if v := r.viaFor(lo); v != nil {
				p := geom.Pt(r.gx[path[i].ix], r.gy[path[i].iy])
				rec.vias = append(rec.vias, PlacedVia{Def: v, Pos: p, Net: net})
				site := [2]int{path[i].ix, path[i].iy}
				if !r.viaOcc[lo][site] {
					r.viaOcc[lo][site] = true
					rec.viaSites = append(rec.viaSites, viaSite{lo, site})
				}
			}
		}
		runStart = i
	}
	return rec
}

// uncommit evicts a committed connection: its occupancy, physical claims,
// via sites and geometry all disappear, and the connection re-queues.
func (r *Router) uncommit(c *conn) {
	rec := c.rec
	if rec == nil {
		return
	}
	for _, k := range rec.occKeys {
		delete(r.occ, k)
	}
	for _, k := range rec.physKeys {
		delete(r.phys, k)
	}
	for _, vs := range rec.viaSites {
		delete(r.viaOcc[vs.cut], vs.at)
	}
	c.rec = nil
	c.soft = false
}

// claimRec occupies a node for net and soft-blocks the preferred-direction
// neighborhood against other nets, recording every entry it creates.
func (r *Router) claimRec(net, l, ix, iy int, rec *commitRec) {
	set := func(k int64) {
		if _, used := r.occ[k]; !used {
			r.occ[k] = int32(net)
			if rec != nil {
				rec.occKeys = append(rec.occKeys, k)
			}
		}
	}
	set(r.key(l, ix, iy))
	rad := r.blockRad[l]
	if r.d.Tech.Metal(l).Dir == tech.Horizontal {
		for d := 1; d <= rad; d++ {
			if ix-d >= 0 {
				set(r.key(l, ix-d, iy))
			}
			if ix+d < len(r.gx) {
				set(r.key(l, ix+d, iy))
			}
		}
	} else {
		for d := 1; d <= rad; d++ {
			if iy-d >= 0 {
				set(r.key(l, ix, iy-d))
			}
			if iy+d < len(r.gy) {
				set(r.key(l, ix, iy+d))
			}
		}
	}
}

// emitWire converts a same-layer run of nodes into rectangles (one per
// straight segment) on the record. Preferred-direction segments use the wire
// width; wrong-way segments widen to the layer's enclosure height so via
// enclosures along them stay flush (otherwise every via on a wrong-way jog
// would re-create the Fig. 3 min-step situation mid-route).
func (r *Router) emitWire(net int, run []pqItem, rec *commitRec) {
	if len(run) < 2 {
		return
	}
	layer := run[0].l
	l := r.d.Tech.Metal(layer)
	hw := l.Width / 2
	wrongHw := r.encHalf[layer]
	if wrongHw < hw {
		wrongHw = hw
	}
	segStart := 0
	for i := 1; i <= len(run); i++ {
		if i < len(run) &&
			((run[i].ix == run[segStart].ix && run[i-1].ix == run[segStart].ix) ||
				(run[i].iy == run[segStart].iy && run[i-1].iy == run[segStart].iy)) {
			continue
		}
		a, b := run[segStart], run[i-1]
		if a.ix != b.ix || a.iy != b.iy {
			x1, y1 := r.gx[a.ix], r.gy[a.iy]
			x2, y2 := r.gx[b.ix], r.gy[b.iy]
			horizontal := y1 == y2
			wh, wv := hw, hw
			if horizontal && l.Dir == tech.Vertical {
				wv = wrongHw
			}
			if !horizontal && l.Dir == tech.Horizontal {
				wh = wrongHw
			}
			rec.wires = append(rec.wires, Wire{
				Layer: layer,
				Rect:  geom.R(minI64(x1, x2)-wh, minI64(y1, y2)-wv, maxI64(x1, x2)+wh, maxI64(y1, y2)+wv),
				Net:   net,
			})
		}
		segStart = i - 1
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
