package router

import (
	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/pao"
)

// Check runs the post-route DRC: the design's fixed shapes plus all routed
// wires and vias enter the engine, pairwise shorts/spacing/cut-spacing run
// over everything, and each via is re-validated in context (catching the
// min-step, end-of-line and enclosure problems bad pin accesses cause).
// Results land in res.Violations and res.AccessViolations (violations whose
// marker touches a pin-access via's bottom enclosure).
func Check(a *pao.Analyzer, res *Result) {
	eng := a.GlobalEngine()
	for _, w := range res.Wires {
		eng.AddMetal(w.Layer, w.Rect, w.Net, drc.KindWire, "")
	}
	type viaRef struct {
		bot geom.Rect
		acc bool
	}
	var refs []viaRef
	for _, v := range res.Vias {
		eng.AddMetal(v.Def.CutBelow, v.Def.BotRect(v.Pos), v.Net, drc.KindViaEnc, "")
		eng.AddMetal(v.Def.CutBelow+1, v.Def.TopRect(v.Pos), v.Net, drc.KindViaEnc, "")
		for _, cut := range v.Def.CutRects(v.Pos) {
			eng.AddCut(v.Def.CutBelow, cut, v.Net, "")
		}
		refs = append(refs, viaRef{v.Def.BotRect(v.Pos), v.Access})
	}

	var all []drc.Violation
	all = append(all, eng.CheckAll()...)
	// Per-net shape checks: the union of each net's wires, stubs and via
	// enclosures on a layer must respect min step and min area (notches at
	// stub junctions and short isolated jogs show up here).
	perNet := make(map[[2]int][]geom.Rect)
	for _, w := range res.Wires {
		k := [2]int{w.Net, w.Layer}
		perNet[k] = append(perNet[k], w.Rect)
	}
	for _, v := range res.Vias {
		perNet[[2]int{v.Net, v.Def.CutBelow}] = append(perNet[[2]int{v.Net, v.Def.CutBelow}], v.Def.BotRect(v.Pos))
		perNet[[2]int{v.Net, v.Def.CutBelow + 1}] = append(perNet[[2]int{v.Net, v.Def.CutBelow + 1}], v.Def.TopRect(v.Pos))
	}
	for k, rects := range perNet {
		l := a.Design.Tech.Metal(k[1])
		if l == nil {
			continue
		}
		if k[1] > 1 {
			// M1 unions include fixed pins (handled by the via checks); the
			// routed layers check their own geometry.
			all = append(all, drc.CheckMinStepUnion(l, rects)...)
			all = append(all, drc.CheckMinAreaUnion(l, rects)...)
		}
	}
	for _, v := range res.Vias {
		bot := v.Def.BotRect(v.Pos)
		// Same-net fixed pin shapes joining the min-step union.
		var sameNetPins []geom.Rect
		for _, id := range eng.QueryMetal(v.Def.CutBelow, bot.Bloat(1)) {
			o := eng.Obj(id)
			if o.Kind == drc.KindPin && o.Net == v.Net {
				sameNetPins = append(sameNetPins, o.Rect)
			}
		}
		all = append(all, eng.CheckVia(v.Def, v.Pos, v.Net, sameNetPins)...)
	}
	all = drc.Dedup(all)

	res.Violations = all
	margin := a.Design.Tech.Metal(1).Pitch
	for _, viol := range all {
		for _, ref := range refs {
			if ref.acc && viol.Where.Touches(ref.bot.Bloat(margin)) {
				res.AccessViolations++
				break
			}
		}
	}
}

// ExportRouting converts the routed wires and vias into DEF REGULAR WIRING
// form (centerline segments and via references keyed by net name), ready for
// def.WriteRouted.
func ExportRouting(d *db.Design, res *Result) map[string]*def.Routing {
	out := make(map[string]*def.Routing)
	get := func(net int) *def.Routing {
		if net < 1 || net > len(d.Nets) {
			return nil
		}
		name := d.Nets[net-1].Name
		rt := out[name]
		if rt == nil {
			rt = &def.Routing{}
			out[name] = rt
		}
		return rt
	}
	for _, w := range res.Wires {
		rt := get(w.Net)
		if rt == nil {
			continue
		}
		l := d.Tech.Metal(w.Layer)
		hw := l.Width / 2
		c := w.Rect.Center()
		var seg def.Segment
		if w.Rect.Width() >= w.Rect.Height() {
			seg = def.Segment{Layer: w.Layer,
				From: geom.Pt(w.Rect.XL+hw, c.Y), To: geom.Pt(w.Rect.XH-hw, c.Y)}
		} else {
			seg = def.Segment{Layer: w.Layer,
				From: geom.Pt(c.X, w.Rect.YL+hw), To: geom.Pt(c.X, w.Rect.YH-hw)}
		}
		rt.Segments = append(rt.Segments, seg)
	}
	for _, v := range res.Vias {
		if rt := get(v.Net); rt != nil {
			rt.Vias = append(rt.Vias, def.ViaRef{Name: v.Def.Name, At: v.Pos})
		}
	}
	return out
}
