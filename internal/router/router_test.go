package router

import (
	"bytes"
	"testing"

	"repro/internal/def"
	"repro/internal/guide"
	"repro/internal/pao"
	"repro/internal/suite"
)

// routeScaled routes a scaled pao_test5 in the given mode and returns the
// checked result.
func routeScaled(t *testing.T, mode AccessMode, frac float64) (*Result, *pao.Analyzer) {
	t.Helper()
	spec := suite.Testcases[4].Scale(frac)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	cfg := Config{Mode: mode}
	if mode == AccessPAAF {
		cfg.Access = a.Run()
	}
	r, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	Check(a, res)
	return res, a
}

func TestRoutePAAFSmall(t *testing.T) {
	res, _ := routeScaled(t, AccessPAAF, 0.002)
	if res.Routed == 0 {
		t.Fatal("nothing routed")
	}
	if res.Failed > res.Routed/5 {
		t.Errorf("too many failed connections: %d failed, %d routed", res.Failed, res.Routed)
	}
	if len(res.Wires) == 0 || len(res.Vias) == 0 {
		t.Fatal("no geometry emitted")
	}
	if res.WireLength == 0 {
		t.Error("zero wirelength")
	}
}

// TestExperiment3Shape is the Experiment 3 headline: ad-hoc pin access leaves
// far more DRCs than PAAF access on the same router and design (the paper
// reports 755 vs 2 on the full test5).
func TestExperiment3Shape(t *testing.T) {
	adhoc, _ := routeScaled(t, AccessAdHoc, 0.002)
	paaf, _ := routeScaled(t, AccessPAAF, 0.002)

	t.Logf("adhoc: %d violations (%d access), routed %d/%d",
		len(adhoc.Violations), adhoc.AccessViolations, adhoc.Routed, adhoc.Routed+adhoc.Failed)
	t.Logf("paaf : %d violations (%d access), routed %d/%d",
		len(paaf.Violations), paaf.AccessViolations, paaf.Routed, paaf.Routed+paaf.Failed)

	if adhoc.AccessViolations == 0 {
		t.Error("ad-hoc access produced no access DRCs; the mode contrast is lost")
	}
	if paaf.AccessViolations*5 > adhoc.AccessViolations {
		t.Errorf("PAAF access DRCs (%d) not clearly below ad-hoc (%d)",
			paaf.AccessViolations, adhoc.AccessViolations)
	}
	if len(paaf.Violations) >= len(adhoc.Violations) {
		t.Errorf("total DRCs: paaf %d >= adhoc %d", len(paaf.Violations), len(adhoc.Violations))
	}
}

func TestSnap(t *testing.T) {
	coords := []int64{70, 210, 350}
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {70, 0}, {139, 0}, {141, 1}, {1000, 2}, {281, 2}, {280, 1}}
	for _, c := range cases {
		if got := snap(coords, c.v); got != c.want {
			t.Errorf("snap(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := snapIn(coords, 1000, 0, 360); got != 2 {
		t.Errorf("snapIn high = %d", got)
	}
	if got := snapIn(coords, 0, 200, 360); coords[got] < 200 || coords[got] > 360 {
		t.Errorf("snapIn must clamp into range, got index %d", got)
	}
}

func TestMSTPairs(t *testing.T) {
	terms := []terminal{
		{layer: 2, ix: 0, iy: 0},
		{layer: 2, ix: 10, iy: 0},
		{layer: 2, ix: 0, iy: 10},
		{layer: 2, ix: 10, iy: 10},
	}
	pairs := mstPairs(terms)
	if len(pairs) != 3 {
		t.Fatalf("MST edges = %d, want 3", len(pairs))
	}
	// Connectivity: union-find over the pairs.
	parent := []int{0, 1, 2, 3}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range pairs {
		parent[find(p[0])] = find(p[1])
	}
	root := find(0)
	for i := 1; i < 4; i++ {
		if find(i) != root {
			t.Fatal("MST does not connect all terminals")
		}
	}
	if mstPairs(terms[:1]) != nil {
		t.Error("single terminal must yield no pairs")
	}
}

func TestRouterDeterministic(t *testing.T) {
	a, _ := routeScaled(t, AccessPAAF, 0.001)
	b, _ := routeScaled(t, AccessPAAF, 0.001)
	if a.Routed != b.Routed || a.WireLength != b.WireLength || len(a.Violations) != len(b.Violations) {
		t.Fatalf("nondeterministic routing: %+v vs %+v", a.Routed, b.Routed)
	}
}

func TestExportRoutingRoundTrip(t *testing.T) {
	spec := suite.Testcases[4].Scale(0.001)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	r, err := New(d, Config{Mode: AccessPAAF, Access: a.Run()})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	routing := ExportRouting(d, res)
	if len(routing) == 0 {
		t.Fatal("no routing exported")
	}
	// Segment counts match the wires per net.
	perNet := map[string]int{}
	for _, w := range res.Wires {
		perNet[d.Nets[w.Net-1].Name]++
	}
	for name, rt := range routing {
		if len(rt.Segments) != perNet[name] {
			t.Fatalf("net %s: %d segments != %d wires", name, len(rt.Segments), perNet[name])
		}
		for _, s := range rt.Segments {
			if s.From.X != s.To.X && s.From.Y != s.To.Y {
				t.Fatalf("net %s: diagonal segment %+v", name, s)
			}
		}
	}
	// Round trip through DEF.
	var buf bytes.Buffer
	if err := def.WriteRouted(&buf, d, routing); err != nil {
		t.Fatal(err)
	}
	got, gotRouting, err := def.ParseRouted(bytes.NewReader(buf.Bytes()), d.Tech, d.Masters)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nets) != len(d.Nets) {
		t.Fatalf("nets %d != %d", len(got.Nets), len(d.Nets))
	}
	totalSegs := func(m map[string]*def.Routing) (n int) {
		for _, rt := range m {
			n += len(rt.Segments) + len(rt.Vias)
		}
		return
	}
	if totalSegs(gotRouting) != totalSegs(routing) {
		t.Fatalf("routing elements %d != %d after round trip", totalSegs(gotRouting), totalSegs(routing))
	}
}

// TestGuidedRouting: routing with global-router guides completes with quality
// comparable to unguided routing (the TritonRoute flow consumes guides).
func TestGuidedRouting(t *testing.T) {
	spec := suite.Testcases[4].Scale(0.002)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	access := a.Run()

	gr := guide.New(d, guide.Config{})
	guides := gr.Route()
	byNet := make(map[string][]guide.Box, len(guides))
	for _, g := range guides {
		byNet[g.Net] = g.Boxes
	}

	r, err := New(d, Config{Mode: AccessPAAF, Access: access, Guides: byNet})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	Check(a, res)
	if res.Routed == 0 {
		t.Fatal("nothing routed with guides")
	}
	if res.Failed > res.Routed/10 {
		t.Errorf("guided routing failed %d of %d", res.Failed, res.Routed+res.Failed)
	}

	// Guides must not blow up the DRC count relative to unguided.
	d2, _ := suite.Generate(spec)
	a2 := pao.NewAnalyzer(d2, pao.DefaultConfig())
	r2, err := New(d2, Config{Mode: AccessPAAF, Access: a2.Run()})
	if err != nil {
		t.Fatal(err)
	}
	res2 := r2.Route()
	Check(a2, res2)
	t.Logf("guided: %d DRCs, WL %d; unguided: %d DRCs, WL %d",
		len(res.Violations), res.WireLength, len(res2.Violations), res2.WireLength)
	if len(res.Violations) > 3*len(res2.Violations)+20 {
		t.Errorf("guided DRCs %d far above unguided %d", len(res.Violations), len(res2.Violations))
	}
}

// TestRouteWithMacrosAndIO: a testcase with macros (blocked regions) and IO
// pads (grid terminals) routes cleanly through the blocked-shape and
// IO-terminal paths.
func TestRouteWithMacrosAndIO(t *testing.T) {
	spec := suite.Testcases[6] // test7: 16 macros
	spec = spec.Scale(0.001)
	spec.Macros = 2 // Scale zeroes macros; put a couple back
	spec.IOPins = 12
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumMacros() == 0 {
		t.Skip("macros did not fit at this scale")
	}
	hasIONet := false
	for _, n := range d.Nets {
		if len(n.IOPins) > 0 {
			hasIONet = true
		}
	}
	if !hasIONet {
		t.Fatal("no IO-driven nets generated")
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	r, err := New(d, Config{Mode: AccessPAAF, Access: a.Run()})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Route()
	Check(a, res)
	if res.Routed == 0 {
		t.Fatal("nothing routed")
	}
	// No routed wire may overlap a macro obstruction on its own layer.
	for _, inst := range d.Instances {
		for _, s := range inst.ObsShapes() {
			if s.Layer < 2 {
				continue
			}
			for _, w := range res.Wires {
				if w.Layer == s.Layer && w.Rect.Overlaps(s.Rect) {
					t.Fatalf("wire %v crosses macro obstruction %v on M%d", w.Rect, s.Rect, s.Layer)
				}
			}
		}
	}
	if AccessAdHoc.String() != "adhoc" || AccessPAAF.String() != "paaf" {
		t.Error("AccessMode.String broken")
	}
}

// TestRipupReducesSoftRouting: with tight search windows (forced congestion)
// the negotiated rip-up rounds must not leave more conflict-tolerant (soft)
// routes than a single round does.
func TestRipupReducesSoftRouting(t *testing.T) {
	spec := suite.Testcases[4].Scale(0.004)
	run := func(rounds int) *Result {
		d, err := suite.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		a := pao.NewAnalyzer(d, pao.DefaultConfig())
		r, err := New(d, Config{
			Mode: AccessPAAF, Access: a.Run(),
			BBoxMarginTracks: 3, MaxLayer: 3, MaxRipupRounds: rounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Route()
	}
	one := run(1)
	three := run(3)
	t.Logf("rounds=1: routed %d soft %d failed %d; rounds=3: routed %d soft %d failed %d",
		one.Routed, one.RoutedSoft, one.Failed, three.Routed, three.RoutedSoft, three.Failed)
	if three.RoutedSoft > one.RoutedSoft {
		t.Errorf("rip-up increased soft routes: %d > %d", three.RoutedSoft, one.RoutedSoft)
	}
	if one.RoutedSoft == 0 && one.Failed == 0 {
		t.Skip("no congestion even at the tight window; comparison vacuous")
	}
	if three.Routed+three.Failed != one.Routed+one.Failed {
		t.Errorf("connection count changed: %d vs %d", three.Routed+three.Failed, one.Routed+one.Failed)
	}
}
