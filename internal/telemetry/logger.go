package telemetry

// Structured logging: leveled JSON lines with ordered fields and correlation
// IDs. One line per event, one JSON object per line, keys emitted in a fixed
// order (ts, level, logger, corr, msg, then caller fields in call order) so
// the output is grep-friendly and diff-stable.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

var levelNames = [...]string{"debug", "info", "warn", "error"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", int8(l))
}

// ParseLevel maps a -log-level flag value onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Field is one structured key/value pair.
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Logger writes leveled JSON lines. Nil-safe: a nil *Logger discards
// everything, so library code logs unconditionally and the caller decides
// whether a logger exists.
type Logger struct {
	mu   *sync.Mutex // shared across With() children so lines never interleave
	w    io.Writer
	min  Level
	name string
	base []Field
	now  func() time.Time
}

// NewLogger creates a logger writing to w. name tags every line (the tool or
// subsystem); events below min are dropped.
func NewLogger(w io.Writer, name string, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, name: name, now: nowFunc}
}

// With returns a child logger whose lines always carry the given fields.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.base = append(append([]Field(nil), l.base...), fields...)
	return &child
}

// Enabled reports whether events at the given level are emitted.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.min }

func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, "", msg, fields) }
func (l *Logger) Info(msg string, fields ...Field)  { l.log(LevelInfo, "", msg, fields) }
func (l *Logger) Warn(msg string, fields ...Field)  { l.log(LevelWarn, "", msg, fields) }
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, "", msg, fields) }

// InfoCtx logs at info level, attaching the context's correlation ID.
func (l *Logger) InfoCtx(ctx context.Context, msg string, fields ...Field) {
	l.log(LevelInfo, CorrIDFrom(ctx), msg, fields)
}

// WarnCtx logs at warn level, attaching the context's correlation ID.
func (l *Logger) WarnCtx(ctx context.Context, msg string, fields ...Field) {
	l.log(LevelWarn, CorrIDFrom(ctx), msg, fields)
}

// ErrorCtx logs at error level, attaching the context's correlation ID.
func (l *Logger) ErrorCtx(ctx context.Context, msg string, fields ...Field) {
	l.log(LevelError, CorrIDFrom(ctx), msg, fields)
}

func (l *Logger) log(level Level, corr, msg string, fields []Field) {
	if l == nil || level < l.min {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString(`{"ts":`)
	writeJSONString(&b, l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`,"level":`)
	writeJSONString(&b, level.String())
	if l.name != "" {
		b.WriteString(`,"logger":`)
		writeJSONString(&b, l.name)
	}
	if corr != "" {
		b.WriteString(`,"corr":`)
		writeJSONString(&b, corr)
	}
	b.WriteString(`,"msg":`)
	writeJSONString(&b, msg)
	for _, f := range l.base {
		writeField(&b, f)
	}
	for _, f := range fields {
		writeField(&b, f)
	}
	b.WriteString("}\n")

	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func writeField(b *strings.Builder, f Field) {
	b.WriteByte(',')
	writeJSONString(b, f.Key)
	b.WriteByte(':')
	switch v := f.Val.(type) {
	case error:
		writeJSONString(b, v.Error())
	case time.Duration:
		writeJSONString(b, v.String())
	case fmt.Stringer:
		writeJSONString(b, v.String())
	default:
		enc, err := json.Marshal(f.Val)
		if err != nil {
			writeJSONString(b, fmt.Sprintf("%v", f.Val))
			return
		}
		b.Write(enc)
	}
}

func writeJSONString(b *strings.Builder, s string) {
	enc, err := json.Marshal(s)
	if err != nil { // cannot happen for a string, but stay total
		b.WriteString(`""`)
		return
	}
	b.Write(enc)
}
