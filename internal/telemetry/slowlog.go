package telemetry

// Bounded slow-query log: a fixed-capacity ring of the most recent slow (or
// trace-sampled) operations, each carrying its correlation ID and, when the
// request was sampled, the full span tree as an exemplar. Served at
// GET /debug/slowlog; memory is bounded by capacity regardless of traffic.

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Entry is one recorded operation.
type Entry struct {
	CorrID string          `json:"corr"`
	Op     string          `json:"op"`               // access | explain | run | ...
	Detail string          `json:"detail,omitempty"` // query string, case name, ...
	Status int             `json:"status,omitempty"` // HTTP status (0 for CLI runs)
	Start  time.Time       `json:"start"`
	DurMS  float64         `json:"dur_ms"`
	Trace  *obs.SpanExport `json:"trace,omitempty"` // exemplar when sampled
}

// SlowLog is the ring buffer. Nil-safe: a nil *SlowLog drops everything.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	buf       []Entry
	next      int
	total     int64
}

// NewSlowLog creates a ring holding up to capacity entries; operations at or
// above threshold are recorded (Observe), faster ones only when they carry a
// trace exemplar.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, buf: make([]Entry, 0, capacity)}
}

// Threshold returns the slow cutoff.
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Observe records the entry when it qualifies — slower than the threshold,
// or sampled (carrying a trace exemplar) — and reports whether it was kept.
func (s *SlowLog) Observe(e Entry, d time.Duration) bool {
	if s == nil || (d < s.threshold && e.Trace == nil) {
		return false
	}
	s.Record(e)
	return true
}

// Record unconditionally adds the entry, evicting the oldest at capacity.
func (s *SlowLog) Record(e Entry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, e)
		return
	}
	s.buf[s.next] = e
	s.next = (s.next + 1) % len(s.buf)
}

// LogSnapshot is the exported slow-log state.
type LogSnapshot struct {
	Total       int64   `json:"total"` // entries ever recorded (incl. evicted)
	Capacity    int     `json:"capacity"`
	ThresholdMS float64 `json:"threshold_ms"`
	Entries     []Entry `json:"entries"` // newest first
}

// Snapshot exports the retained entries, newest first.
func (s *SlowLog) Snapshot() LogSnapshot {
	if s == nil {
		return LogSnapshot{Entries: []Entry{}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := LogSnapshot{
		Total:       s.total,
		Capacity:    cap(s.buf),
		ThresholdMS: float64(s.threshold) / 1e6,
		Entries:     make([]Entry, 0, len(s.buf)),
	}
	// Ring order: s.next is the oldest once full; walk backwards from the
	// newest.
	for i := 1; i <= len(s.buf); i++ {
		out.Entries = append(out.Entries, s.buf[(s.next-i+len(s.buf))%len(s.buf)])
	}
	return out
}
