// Package telemetry is the production observability layer built on top of
// internal/obs: a labeled metric registry with Prometheus text exposition
// (prom.go), correlation IDs and deterministic trace sampling propagated via
// context (trace.go), a structured JSON-lines logger (logger.go), a bounded
// slow-query log with trace exemplars (slowlog.go), build-info reporting
// (buildinfo.go), and the -metrics-listen / -trace-sample CLI surface shared
// by every tool (flags.go).
//
// The package depends only on the standard library and internal/obs, so any
// layer (drc, pao, serve, cliutil, cmd) may import it without cycles. Like
// obs, every method tolerates a nil receiver: a nil Registry, Vec, Logger,
// Sampler or SlowLog turns the corresponding hook into a cheap no-op, which
// is what keeps disabled telemetry off the hot path.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// MetricType tags a family for exposition.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// labelSep joins label values into a series key. 0xff never appears in valid
// UTF-8 label values, so the join is unambiguous.
const labelSep = "\xff"

// family is one named metric family: a type, a help string, a fixed label
// schema, and a series per distinct label-value tuple.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string

	mu     sync.RWMutex
	series map[string]*series
}

type series struct {
	values []string
	ctr    *obs.Counter
	gauge  *obs.Gauge
	hist   *obs.Histogram
}

// get returns the series for the given label values, creating it on first
// use. Arity mismatches are programming errors and panic loudly.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: family %q expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s == nil {
		s = &series{values: append([]string(nil), values...)}
		switch f.typ {
		case TypeCounter:
			s.ctr = &obs.Counter{}
		case TypeGauge:
			s.gauge = &obs.Gauge{}
		case TypeHistogram:
			s.hist = &obs.Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// Registry is a race-safe collection of labeled metric families. It
// complements obs.Registry (flat, unlabeled, get-or-create by name): code
// that needs per-design / per-step / per-layer series registers a Vec here,
// and the Prometheus endpoint gathers both into one exposition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty labeled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, typ MetricType, labels []string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name: name, help: help, typ: typ,
				labels: append([]string(nil), labels...),
				series: make(map[string]*series),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: family %q re-registered as %s%v, was %s%v",
			name, typ, labels, f.typ, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("telemetry: family %q re-registered with labels %v, was %v",
				name, labels, f.labels))
		}
	}
	return f
}

// CounterVec is a counter family handle; With resolves one labeled series.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family handle; With resolves one labeled series.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family handle; With resolves one labeled
// series. The underlying obs.Histogram has fixed log2 bucket boundaries, so
// series from different processes merge exactly.
type HistogramVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, TypeCounter, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, TypeGauge, labels)}
}

// Histogram registers (or fetches) a histogram family.
func (r *Registry) Histogram(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, TypeHistogram, labels)}
}

// With resolves the series for the given label values (nil-safe: a nil vec
// returns a nil handle, which no-ops).
func (v *CounterVec) With(values ...string) *obs.Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values).ctr
}

// With resolves the series for the given label values.
func (v *GaugeVec) With(values ...string) *obs.Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values).gauge
}

// With resolves the series for the given label values.
func (v *HistogramVec) With(values ...string) *obs.Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(values).hist
}

// SeriesSnapshot is one gathered series.
type SeriesSnapshot struct {
	LabelValues []string
	Value       float64      // counter / gauge value
	Hist        obs.HistStat // histogram state
}

// FamilySnapshot is one gathered family, series sorted by label tuple.
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   MetricType
	Labels []string
	Series []SeriesSnapshot
}

// Gather snapshots every family, sorted by name, for exposition.
func (r *Registry) Gather() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		snap := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ, Labels: f.labels}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{LabelValues: s.values}
			switch f.typ {
			case TypeCounter:
				ss.Value = float64(s.ctr.Load())
			case TypeGauge:
				ss.Value = s.gauge.Load()
			case TypeHistogram:
				ss.Hist = s.hist.Snapshot()
			}
			snap.Series = append(snap.Series, ss)
		}
		f.mu.RUnlock()
		out = append(out, snap)
	}
	return out
}

// nowFunc is swapped in tests.
var nowFunc = time.Now
