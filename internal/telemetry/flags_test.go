package telemetry

import (
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestFlagsActivateServes: -metrics-listen boots a side listener whose
// /metrics output parses and whose /debug/slowlog returns the recorded runs.
func TestFlagsActivateServes(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-metrics-listen=127.0.0.1:0", "-trace-sample=1"}); err != nil {
		t.Fatal(err)
	}
	o, tel, err := f.Activate("tool", nil, Label{Name: "design", Value: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || tel == nil || tel.Addr() == "" {
		t.Fatalf("activation incomplete: obs=%v tel=%v", o, tel)
	}
	defer tel.Close()

	o.Reg().Counter("pao.unique.classes").Add(3)
	o.Reg().Histogram("pao.step1").Observe(2 * time.Millisecond)
	root := o.Root()
	root.Start("step1").End()
	tel.RecordRun("run", "case=c17", NewCorrID(), time.Now(), 250*time.Millisecond, root)

	body := httpGet(t, "http://"+tel.Addr()+"/metrics")
	scrape, err := CheckProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, body)
	}
	if scrape.Series[`pao_unique_classes_total{design="c17"}`] != 3 {
		t.Fatalf("labeled counter missing: %+v", scrape.Series)
	}

	slow := httpGet(t, "http://"+tel.Addr()+"/debug/slowlog")
	for _, want := range []string{`"op": "run"`, `"case=c17"`, `"step1"`} {
		if !strings.Contains(slow, want) {
			t.Fatalf("slowlog missing %q:\n%s", want, slow)
		}
	}
}

// TestFlagsLiveExtraCounters: a SetExtra source is folded into every scrape
// (how mid-run analyzer counters become visible before PublishObs), added on
// top of the registry's own totals, and cleared by SetExtra(nil).
func TestFlagsLiveExtraCounters(t *testing.T) {
	f := &Flags{Listen: "127.0.0.1:0"}
	o, tel, err := f.Activate("tool", nil, Label{Name: "design", Value: "c17"})
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()

	o.Reg().Counter("drc.via.attempted").Add(5)
	live := int64(0)
	tel.SetExtra(func() map[string]int64 {
		return map[string]int64{"drc.via.attempted": live, "pao.paircache.hit": 2 * live}
	})
	series := func() map[string]float64 {
		t.Helper()
		s, err := CheckProm(strings.NewReader(httpGet(t, "http://"+tel.Addr()+"/metrics")))
		if err != nil {
			t.Fatal(err)
		}
		return s.Series
	}

	live = 7
	got := series()
	if v := got[`drc_via_attempted_total{design="c17"}`]; v != 12 {
		t.Fatalf("registry+extra = %v, want 12", v)
	}
	if v := got[`pao_paircache_hit_total{design="c17"}`]; v != 14 {
		t.Fatalf("extra-only counter = %v, want 14", v)
	}

	// End of run: totals folded into the registry, extra cleared — the scrape
	// must not double-count.
	o.Reg().Counter("drc.via.attempted").Add(live)
	tel.SetExtra(nil)
	if v := series()[`drc_via_attempted_total{design="c17"}`]; v != 12 {
		t.Fatalf("after clear = %v, want 12", v)
	}
	var nilTel *Telemetry
	nilTel.SetExtra(func() map[string]int64 { return nil }) // nil-safe
}

// TestFlagsDisabledTelemetry: with no flags set, Activate is a no-op that
// preserves the caller's (nil) observer.
func TestFlagsDisabledTelemetry(t *testing.T) {
	f := &Flags{}
	o, tel, err := f.Activate("tool", nil)
	if err != nil || o != nil || tel != nil {
		t.Fatalf("disabled activate = %v %v %v", o, tel, err)
	}
	// All Telemetry methods nil-safe.
	tel.RecordRun("run", "", "c", time.Now(), time.Second, nil)
	if tel.Addr() != "" || tel.Close() != nil {
		t.Fatal("nil telemetry misbehaved")
	}
	var nilF *Flags
	if _, tel, err := nilF.Activate("tool", nil); err != nil || tel != nil {
		t.Fatal("nil flags must be a no-op")
	}
}

func TestFlagsBadSampleRate(t *testing.T) {
	f := &Flags{TraceSample: 1.5}
	if _, _, err := f.Activate("tool", nil); err == nil {
		t.Fatal("out-of-range -trace-sample must error")
	}
}

// TestFlagsSampleOnlyNoListener: -trace-sample without -metrics-listen still
// produces a sampler (exemplars flow into the CLI slow log / trace output).
func TestFlagsSampleOnlyNoListener(t *testing.T) {
	f := &Flags{TraceSample: 1}
	o, tel, err := f.Activate("tool", nil)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("no listener must not force an observer")
	}
	if tel == nil || !tel.Sampler.Sample() {
		t.Fatal("sampler missing")
	}
	if tel.Addr() != "" {
		t.Fatal("unexpected listener")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
