package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// buildExposition renders a representative mixed exposition: labeled families
// from a telemetry.Registry plus a converted obs.Registry snapshot with a
// constant design label, including a label value that needs escaping.
func buildExposition(t *testing.T) string {
	t.Helper()
	r := NewRegistry()
	q := r.Counter("pao_queries_total", "queries served by status", "design", "status")
	q.With(`de"sign\1`, "ok").Add(7)
	q.With(`de"sign\1`, "degraded").Inc()
	h := r.Histogram("pao_query_seconds", "query latency", "design")
	h.With(`de"sign\1`).Observe(3 * time.Microsecond)
	h.With(`de"sign\1`).Observe(1500 * time.Microsecond)
	r.Gauge("pao_access_points", "APs per layer", "design", "layer").With(`de"sign\1`, "2").Set(12)

	flat := obs.NewRegistry()
	flat.Counter("drc.check.metal").Add(41)
	flat.Gauge("pao.failed.pins").Set(2)
	flat.Histogram("serve.latency").Observe(time.Millisecond)
	flat.Histogram("serve.latency").Observe(30 * time.Millisecond)

	fams := append(r.Gather(), ObsFamilies(flat.Snapshot(), Label{Name: "design", Value: `de"sign\1`})...)
	var b strings.Builder
	if err := WriteProm(&b, fams); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return b.String()
}

// TestPromExpositionParses is the format golden test: the full mixed
// exposition must survive the strict parser — valid names, escaped labels,
// HELP/TYPE before samples, no duplicate series, cumulative histogram
// buckets matching _count.
func TestPromExpositionParses(t *testing.T) {
	out := buildExposition(t)
	scrape, err := CheckProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
	if got := scrape.Series[`pao_queries_total{design="de\"sign\\1",status="ok"}`]; got != 7 {
		t.Fatalf("escaped labeled counter = %v, want 7\n%s", got, out)
	}
	if got := scrape.Families["drc_check_metal_total"].Type; got != "counter" {
		t.Fatalf("obs counter family type = %q\n%s", got, out)
	}
	if got := scrape.Families["serve_latency_seconds"].Type; got != "histogram" {
		t.Fatalf("obs histogram family type = %q\n%s", got, out)
	}
	if got := scrape.Series[`serve_latency_seconds_count{design="de\"sign\\1"}`]; got != 2 {
		t.Fatalf("histogram count = %v, want 2\n%s", got, out)
	}
	// Spot-check structural lines.
	for _, want := range []string{
		"# TYPE pao_query_seconds histogram",
		"# HELP pao_queries_total queries served by status",
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPromDuplicateMergedFamilies: two snapshots of the same family name
// must merge into one TYPE block with deduplicated series.
func TestPromDuplicateMergedFamilies(t *testing.T) {
	fams := []FamilySnapshot{
		{Name: "x_total", Type: TypeCounter, Labels: []string{"a"},
			Series: []SeriesSnapshot{{LabelValues: []string{"1"}, Value: 5}}},
		{Name: "x_total", Type: TypeCounter, Labels: []string{"a"},
			Series: []SeriesSnapshot{
				{LabelValues: []string{"1"}, Value: 9}, // dup: dropped
				{LabelValues: []string{"2"}, Value: 3},
			}},
	}
	var b strings.Builder
	if err := WriteProm(&b, fams); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE x_total") != 1 {
		t.Fatalf("family emitted twice:\n%s", out)
	}
	scrape, err := CheckProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("merged exposition invalid: %v\n%s", err, out)
	}
	if scrape.Series[`x_total{a="1"}`] != 5 || scrape.Series[`x_total{a="2"}`] != 3 {
		t.Fatalf("bad merged series: %+v", scrape.Series)
	}
}

// TestCheckPromRejectsBadInput: the validator must actually validate.
func TestCheckPromRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"duplicate series": "# TYPE a counter\na 1\na 2\n",
		"bad name":         "# TYPE ok counter\n9bad 1\n",
		"bad escape":       "# TYPE a counter\na{l=\"x\\q\"} 1\n",
		"type after use":   "a 1\n# TYPE a counter\n",
		"bad value":        "# TYPE a counter\na one\n",
		"unclosed label":   "# TYPE a counter\na{l=\"x} 1\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_count 6\nh_sum 1\n",
		"missing inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n",
	}
	for name, in := range cases {
		if _, err := CheckProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, in)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"drc.check.metal": "drc_check_metal",
		"serve latency":   "serve_latency",
		"9lives":          "_9lives",
		"ok_name:x":       "ok_name:x",
		"":                "_",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
