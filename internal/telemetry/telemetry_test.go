package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryVecs(t *testing.T) {
	r := NewRegistry()
	qv := r.Counter("pao_queries_total", "queries served", "design", "status")
	qv.With("c17", "ok").Add(3)
	qv.With("c17", "degraded").Inc()
	qv.With("c17", "ok").Inc() // same series again
	if got := qv.With("c17", "ok").Load(); got != 4 {
		t.Fatalf("counter series = %d, want 4", got)
	}

	gv := r.Gauge("pao_access_points", "APs per layer", "design", "layer")
	gv.With("c17", "2").Set(12)
	hv := r.Histogram("pao_query_seconds", "query latency", "design")
	hv.With("c17").Observe(3 * time.Microsecond)
	hv.With("c17").Observe(1500 * time.Microsecond)

	fams := r.Gather()
	if len(fams) != 3 {
		t.Fatalf("gathered %d families, want 3", len(fams))
	}
	// Sorted by name: access_points, queries_total, query_seconds.
	if fams[0].Name != "pao_access_points" || fams[1].Name != "pao_queries_total" || fams[2].Name != "pao_query_seconds" {
		t.Fatalf("family order wrong: %s %s %s", fams[0].Name, fams[1].Name, fams[2].Name)
	}
	if len(fams[1].Series) != 2 {
		t.Fatalf("counter family has %d series, want 2", len(fams[1].Series))
	}
	if fams[2].Series[0].Hist.Count != 2 {
		t.Fatalf("histogram series count = %d, want 2", fams[2].Series[0].Hist.Count)
	}
}

func TestRegistryVecNilSafety(t *testing.T) {
	var r *Registry
	cv := r.Counter("x", "", "l")
	gv := r.Gauge("x", "", "l")
	hv := r.Histogram("x", "", "l")
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry returned a vec")
	}
	cv.With("a").Inc()
	gv.With("a").Set(1)
	hv.With("a").Observe(time.Second)
	if r.Gather() != nil {
		t.Fatal("nil registry gathered families")
	}
}

func TestRegistryVecArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("c", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	v.With("only-one")
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict must panic")
		}
	}()
	r.Gauge("m", "", "a")
}

func TestRegistryConcurrentSeries(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("hits", "", "shard")
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				v.With(shard).Inc()
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, s := range r.Gather()[0].Series {
		total += int64(s.Value)
	}
	if total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	s := NewSampler(0.25)
	hits := 0
	for i := 0; i < 1000; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits < 245 || hits > 255 {
		t.Fatalf("rate-0.25 sampler fired %d/1000 times", hits)
	}
	every := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !every.Sample() {
			t.Fatal("rate-1 sampler must always fire")
		}
	}
	if NewSampler(0) != nil {
		t.Fatal("rate-0 sampler should be nil")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler fired")
	}
}

func TestCorrIDs(t *testing.T) {
	a, b := NewCorrID(), NewCorrID()
	if a == b || a == "" {
		t.Fatalf("corr IDs not unique: %q %q", a, b)
	}
	ctx, id := EnsureCorrID(context.Background())
	if id == "" || CorrIDFrom(ctx) != id {
		t.Fatalf("EnsureCorrID round-trip failed: %q", id)
	}
	ctx2, id2 := EnsureCorrID(ctx)
	if id2 != id || ctx2 != ctx {
		t.Fatal("EnsureCorrID must keep an existing ID")
	}
	if CorrIDFrom(nil) != "" {
		t.Fatal("nil context produced a corr ID")
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	sl := NewSlowLog(3, 10*time.Millisecond)
	if sl.Observe(Entry{CorrID: "fast"}, time.Millisecond) {
		t.Fatal("fast entry without trace must be dropped")
	}
	for i := 0; i < 5; i++ {
		ok := sl.Observe(Entry{CorrID: string(rune('a' + i))}, 20*time.Millisecond)
		if !ok {
			t.Fatal("slow entry must be kept")
		}
	}
	snap := sl.Snapshot()
	if snap.Total != 5 || snap.Capacity != 3 || len(snap.Entries) != 3 {
		t.Fatalf("snapshot = total %d cap %d len %d", snap.Total, snap.Capacity, len(snap.Entries))
	}
	// Newest first: e, d, c.
	if snap.Entries[0].CorrID != "e" || snap.Entries[2].CorrID != "c" {
		t.Fatalf("ring order wrong: %+v", snap.Entries)
	}
	var nilSL *SlowLog
	if nilSL.Observe(Entry{}, time.Hour) {
		t.Fatal("nil slowlog recorded")
	}
	if got := nilSL.Snapshot(); got.Entries == nil || len(got.Entries) != 0 {
		t.Fatal("nil slowlog snapshot must be empty, not nil")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("missing go version")
	}
	if len(b.Fields()) == 0 {
		t.Fatal("no build-info fields")
	}
}

func TestLoggerJSONLines(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&syncWriter{sb: &buf}, "test", LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Debug("hidden")
	l.Info("hello", F("n", 42), F("who", `quo"te`))
	ctx := WithCorrID(context.Background(), "abc-1")
	l.With(F("design", "c17")).ErrorCtx(ctx, "boom", F("err", errFake{}))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"level":"info"`) || !strings.Contains(lines[0], `"n":42`) ||
		!strings.Contains(lines[0], `"who":"quo\"te"`) {
		t.Fatalf("bad info line: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"corr":"abc-1"`) || !strings.Contains(lines[1], `"design":"c17"`) ||
		!strings.Contains(lines[1], `"err":"fake failure"`) {
		t.Fatalf("bad error line: %s", lines[1])
	}
	var nilL *Logger
	nilL.Info("dropped")
	nilL.With(F("a", 1)).ErrorCtx(ctx, "dropped")
}

type errFake struct{}

func (errFake) Error() string { return "fake failure" }

type syncWriter struct {
	mu sync.Mutex
	sb *strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level must error")
	}
}
