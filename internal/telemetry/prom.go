package telemetry

// Prometheus text exposition (format version 0.0.4). We render it by hand —
// no client_golang dependency — which is easy because the format is small:
// one # HELP and # TYPE line per family, then one sample line per series,
// with label values backslash-escaped. Histograms expose the fixed log2
// buckets as cumulative le= series in seconds plus _sum and _count.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// ContentType is the Content-Type header value for /metrics responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one constant name/value pair attached to every series of an
// exposition (for example design="c17").
type Label struct {
	Name  string
	Value string
}

// sanitizeName maps an internal dotted metric name ("drc.check.metal") onto
// the Prometheus name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline per the text
// format rules.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes backslash and newline (quotes are legal in HELP text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} from parallel name/value slices plus an
// optional extra pair (used for le=). Returns "" when there are no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(sanitizeName(n))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders the families as a Prometheus text exposition. Families
// with the same name are merged (first help/type wins) and duplicate series
// within a family are dropped, so the output never contains a duplicate
// sample — the invariant scrapers enforce.
func WriteProm(w io.Writer, fams []FamilySnapshot) error {
	merged := make(map[string]*FamilySnapshot)
	var order []string
	for i := range fams {
		f := &fams[i]
		name := sanitizeName(f.Name)
		if m, ok := merged[name]; ok {
			if m.Type == f.Type {
				m.Series = append(m.Series, f.Series...)
			}
			continue
		}
		cp := *f
		cp.Name = name
		cp.Series = append([]SeriesSnapshot(nil), f.Series...)
		merged[name] = &cp
		order = append(order, name)
	}
	sort.Strings(order)

	for _, name := range order {
		f := merged[name]
		if err := writeFamily(w, f); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, f *FamilySnapshot) error {
	name := f.Name
	help := f.Help
	if help == "" {
		help = name
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		name, escapeHelp(help), name, f.Type); err != nil {
		return err
	}
	seen := make(map[string]bool, len(f.Series))
	for _, s := range f.Series {
		key := strings.Join(s.LabelValues, labelSep)
		if seen[key] {
			continue
		}
		seen[key] = true
		switch f.Type {
		case TypeHistogram:
			if err := writeHistogram(w, name, f.Labels, s); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				name, labelString(f.Labels, s.LabelValues, "", ""), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one series' fixed log2 buckets as cumulative le=
// samples in seconds, then _sum and _count. The exported buckets carry each
// bucket's upper bound in microseconds; boundaries are shared across all
// histograms (obs.BucketBound) so scrapers can aggregate across processes.
func writeHistogram(w io.Writer, name string, labels []string, s SeriesSnapshot) error {
	var cum int64
	for _, b := range s.Hist.Buckets {
		cum += b.Count
		le := formatValue(float64(b.LeUS) / 1e6)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelString(labels, s.LabelValues, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, labelString(labels, s.LabelValues, "le", "+Inf"), cum); err != nil {
		return err
	}
	plain := labelString(labels, s.LabelValues, "", "")
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, plain, formatValue(s.Hist.SumMS/1e3)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, plain, s.Hist.Count)
	return err
}

// ObsFamilies converts a flat obs.Registry snapshot into labeled families:
// counters become <name>_total counters, gauges stay gauges, histograms
// become <name>_seconds histograms. constLabels are attached to every series
// so multiple processes' expositions stay distinguishable after aggregation.
func ObsFamilies(m obs.Metrics, constLabels ...Label) []FamilySnapshot {
	names := make([]string, 0, len(constLabels))
	values := make([]string, 0, len(constLabels))
	for _, l := range constLabels {
		names = append(names, l.Name)
		values = append(values, l.Value)
	}

	var out []FamilySnapshot
	for _, name := range sortedNames(m.Counters) {
		out = append(out, FamilySnapshot{
			Name: sanitizeName(name) + "_total",
			Help: "counter " + name,
			Type: TypeCounter, Labels: names,
			Series: []SeriesSnapshot{{LabelValues: values, Value: float64(m.Counters[name])}},
		})
	}
	for _, name := range sortedNames(m.Gauges) {
		out = append(out, FamilySnapshot{
			Name: sanitizeName(name),
			Help: "gauge " + name,
			Type: TypeGauge, Labels: names,
			Series: []SeriesSnapshot{{LabelValues: values, Value: m.Gauges[name]}},
		})
	}
	for _, name := range sortedNames(m.Histograms) {
		out = append(out, FamilySnapshot{
			Name: sanitizeName(name) + "_seconds",
			Help: "histogram " + name + " (seconds)",
			Type: TypeHistogram, Labels: names,
			Series: []SeriesSnapshot{{LabelValues: values, Hist: m.Histograms[name]}},
		})
	}
	return out
}

func sortedNames[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
