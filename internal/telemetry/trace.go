package telemetry

// Correlation IDs and trace sampling. A correlation ID is minted at every
// entry point (HTTP request, CLI run) and rides the context through pao and
// drc, so one query's log lines, slow-log entry and span tree share a
// grep-able key across process boundaries.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"

	"repro/internal/obs"
)

// corrPrefix is a per-process random prefix so IDs from different processes
// (or restarts) never collide; corrCtr makes IDs unique within the process.
var (
	corrPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	corrCtr atomic.Uint64
)

// NewCorrID mints a fresh correlation ID: an 8-hex-digit process prefix plus
// a monotonic per-process counter.
func NewCorrID() string {
	var buf [8]byte
	n := corrCtr.Add(1)
	for i := 7; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[n&0xf]
		n >>= 4
	}
	return corrPrefix + "-" + string(buf[:])
}

type corrKey struct{}

// WithCorrID attaches a correlation ID to the context.
func WithCorrID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, corrKey{}, id)
}

// CorrIDFrom returns the context's correlation ID, or "".
func CorrIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(corrKey{}).(string)
	return id
}

// EnsureCorrID returns the context's correlation ID, minting and attaching a
// fresh one when absent.
func EnsureCorrID(ctx context.Context) (context.Context, string) {
	if id := CorrIDFrom(ctx); id != "" {
		return ctx, id
	}
	id := NewCorrID()
	return WithCorrID(ctx, id), id
}

type spanKey struct{}

// WithSpan attaches a trace span to the context; instrumented code deeper in
// the stack picks it up with SpanFrom and hangs children off it.
func WithSpan(ctx context.Context, sp *obs.Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the context's span, or nil (and every obs.Span method is
// a no-op on nil, so callers never need to check).
func SpanFrom(ctx context.Context) *obs.Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*obs.Span)
	return sp
}

// samplerOne is the fixed-point scale of the sampler accumulator.
const samplerOne = 1 << 32

// Sampler decides deterministically which requests get a full span tree: an
// accumulator gains rate per call and every time it crosses an integer
// boundary the call is sampled. rate=1 samples everything, rate=0.01 every
// 100th call, rate<=0 nothing. Deterministic (no RNG) so tests and replays
// see stable sampling; race-safe via a single atomic add.
type Sampler struct {
	step int64
	acc  atomic.Int64
}

// NewSampler creates a sampler with the given rate in [0, 1].
func NewSampler(rate float64) *Sampler {
	if rate <= 0 {
		return nil
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{step: int64(rate * samplerOne)}
}

// Sample reports whether this call is sampled. Nil-safe: a nil sampler never
// samples.
func (s *Sampler) Sample() bool {
	if s == nil || s.step <= 0 {
		return false
	}
	n := s.acc.Add(s.step)
	return n/samplerOne != (n-s.step)/samplerOne
}
