package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the binary's provenance, surfaced at GET /version and in
// startup log lines so operators can tell exactly what is serving.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	Modified    bool   `json:"modified,omitempty"` // dirty working tree at build
}

// Build reads the binary's embedded build information. Works in tests and
// `go run` too (module devel versions); fields absent from the build are "".
func Build() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// Fields renders the build info as logger fields for a startup line.
func (b BuildInfo) Fields() []Field {
	fs := []Field{F("go_version", b.GoVersion)}
	if b.Module != "" {
		fs = append(fs, F("module", b.Module))
	}
	if b.Version != "" {
		fs = append(fs, F("version", b.Version))
	}
	if b.VCSRevision != "" {
		fs = append(fs, F("vcs_revision", b.VCSRevision))
	}
	return fs
}
