package telemetry

// CheckProm is a strict parser for the Prometheus text exposition format,
// used by tests and the telemetry smoke target to prove /metrics output is
// scrapeable: well-formed names and label escaping, HELP/TYPE before samples,
// no duplicate series, cumulative histogram buckets consistent with _count.
// It is a validator, not a full client — timestamps and exemplars are out of
// scope because we never emit them.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromFamily is one parsed metric family.
type PromFamily struct {
	Help string
	Type string
}

// PromScrape is the parsed result of one exposition.
type PromScrape struct {
	Families map[string]PromFamily
	// Series maps the canonical series id — name{labels sorted by name} —
	// to its parsed value.
	Series map[string]float64
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// baseFamily strips histogram/summary sample suffixes to find the family a
// sample line belongs to, preferring a declared family when one matches.
func baseFamily(name string, fams map[string]PromFamily) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, ok := fams[base]; ok {
				return base
			}
		}
	}
	return name
}

// parseLabels parses `a="v",b="w"` (the text between braces) into sorted
// canonical form, validating names and escapes.
func parseLabels(s string) (string, map[string]string, error) {
	labels := map[string]string{}
	rest := s
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("label pair %q missing '='", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return "", nil, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", nil, fmt.Errorf("label %s value not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", nil, fmt.Errorf("label %s: dangling escape", name)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, fmt.Errorf("label %s: bad escape \\%c", name, rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			if c == '\n' {
				return "", nil, fmt.Errorf("label %s: raw newline in value", name)
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", nil, fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return "", nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var canon strings.Builder
	for i, n := range names {
		if i > 0 {
			canon.WriteByte(',')
		}
		fmt.Fprintf(&canon, "%s=%q", n, labels[n])
	}
	return canon.String(), labels, nil
}

// CheckProm parses and validates one exposition.
func CheckProm(r io.Reader) (*PromScrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := &PromScrape{Families: map[string]PromFamily{}, Series: map[string]float64{}}
	sampled := map[string]bool{} // families that already emitted samples
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s (%q)", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				continue // free-form comment
			}
			name := parts[2]
			if !validMetricName(name) {
				return nil, fail("invalid metric name %q", name)
			}
			fam := out.Families[name]
			if parts[1] == "HELP" {
				if len(parts) == 4 {
					fam.Help = parts[3]
				}
			} else {
				if fam.Type != "" {
					return nil, fail("duplicate TYPE for %s", name)
				}
				if sampled[name] {
					return nil, fail("TYPE for %s after its samples", name)
				}
				typ := strings.TrimSpace(parts[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fail("unknown TYPE %q", typ)
				}
				fam.Type = typ
			}
			out.Families[name] = fam
			continue
		}

		// Sample line: name[{labels}] value
		var name, labelPart, valuePart string
		if brace := strings.IndexByte(line, '{'); brace >= 0 {
			name = line[:brace]
			end := strings.LastIndexByte(line, '}')
			if end < brace {
				return nil, fail("unterminated label set")
			}
			labelPart = line[brace+1 : end]
			valuePart = strings.TrimSpace(line[end+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fail("want 'name value'")
			}
			name, valuePart = fields[0], fields[1]
		}
		if !validMetricName(name) {
			return nil, fail("invalid metric name %q", name)
		}
		canon, _, err := parseLabels(labelPart)
		if err != nil {
			return nil, fail("%v", err)
		}
		v, err := parseValue(valuePart)
		if err != nil {
			return nil, fail("%v", err)
		}
		id := name
		if canon != "" {
			id += "{" + canon + "}"
		}
		if _, dup := out.Series[id]; dup {
			return nil, fail("duplicate series %s", id)
		}
		out.Series[id] = v
		sampled[baseFamily(name, out.Families)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := out.checkHistograms(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistograms verifies, per histogram family and label set, that bucket
// counts are cumulative non-decreasing and that the +Inf bucket equals
// _count.
func (p *PromScrape) checkHistograms() error {
	type hist struct {
		buckets map[float64]float64 // le → cumulative count
		count   float64
		hasCnt  bool
	}
	hists := map[string]*hist{} // family + base labels → state
	get := func(key string) *hist {
		h := hists[key]
		if h == nil {
			h = &hist{buckets: map[float64]float64{}}
			hists[key] = h
		}
		return h
	}
	for id, v := range p.Series {
		name, canon := id, ""
		if i := strings.IndexByte(id, '{'); i >= 0 {
			name, canon = id[:i], id[i+1:len(id)-1]
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && p.Families[base].Type == "histogram" {
			le, rest, err := extractLe(canon)
			if err != nil {
				return fmt.Errorf("series %s: %v", id, err)
			}
			get(base + "{" + rest + "}").buckets[le] = v
			continue
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok && p.Families[base].Type == "histogram" {
			h := get(base + "{" + canon + "}")
			h.count, h.hasCnt = v, true
		}
	}
	for key, h := range hists {
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := -1.0
		for _, le := range les {
			if h.buckets[le] < prev {
				return fmt.Errorf("histogram %s: bucket le=%v not cumulative", key, le)
			}
			prev = h.buckets[le]
		}
		if inf, ok := h.buckets[infValue()]; !ok {
			return fmt.Errorf("histogram %s: missing +Inf bucket", key)
		} else if h.hasCnt && inf != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, inf, h.count)
		}
	}
	return nil
}

func infValue() float64 {
	v, _ := strconv.ParseFloat("+inf", 64)
	return v
}

// extractLe pulls the le label out of a canonical label string, returning
// the remaining labels in canonical form.
func extractLe(canon string) (float64, string, error) {
	_, labels, err := parseLabelsCanon(canon)
	if err != nil {
		return 0, "", err
	}
	leStr, ok := labels["le"]
	if !ok {
		return 0, "", fmt.Errorf("_bucket sample without le label")
	}
	le, err := parseValue(leStr)
	if err != nil {
		return 0, "", fmt.Errorf("bad le %q", leStr)
	}
	delete(labels, "le")
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var rest strings.Builder
	for i, n := range names {
		if i > 0 {
			rest.WriteByte(',')
		}
		fmt.Fprintf(&rest, "%s=%q", n, labels[n])
	}
	return le, rest.String(), nil
}

// parseLabelsCanon parses the canonical a="v",b="w" form produced by
// parseLabels (Go-quoted values).
func parseLabelsCanon(canon string) (string, map[string]string, error) {
	labels := map[string]string{}
	rest := canon
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("bad canonical labels %q", canon)
		}
		name := rest[:eq]
		rest = rest[eq+1:]
		val, tail, err := unquotePrefix(rest)
		if err != nil {
			return "", nil, err
		}
		labels[name] = val
		rest = strings.TrimPrefix(tail, ",")
	}
	return canon, labels, nil
}

// unquotePrefix unquotes the leading Go-quoted string of s.
func unquotePrefix(s string) (string, string, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted value in %q", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			val, err := strconv.Unquote(s[:i+1])
			return val, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value in %q", s)
}
