package telemetry

// The batch-tool telemetry surface: -metrics-listen exposes /metrics and
// /debug/slowlog on a side HTTP listener for the duration of a run (so long
// analyses are scrapeable while they execute, not only dump-at-exit), and
// -trace-sample controls how many operations get full span-tree exemplars.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Flags is the shared telemetry CLI surface, registered next to obs.Flags on
// every tool.
type Flags struct {
	Listen      string  // -metrics-listen address ("" = disabled)
	TraceSample float64 // -trace-sample rate in [0,1]
}

// RegisterFlags registers the telemetry flags on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Listen, "metrics-listen", "",
		"serve Prometheus /metrics and /debug/slowlog on this address while the run executes (e.g. 127.0.0.1:9100)")
	fs.Float64Var(&f.TraceSample, "trace-sample", 0,
		"fraction of operations that record a full span-tree exemplar in the slow-query log (0..1)")
	return f
}

// Telemetry is the per-run handle: the sampler, the slow log, and (when
// -metrics-listen was given) the side HTTP server exposing them.
type Telemetry struct {
	Slow    *SlowLog
	Sampler *Sampler

	ln    net.Listener
	srv   *http.Server
	extra atomic.Pointer[func() map[string]int64]
}

// SetExtra installs a live counter source folded into every /metrics scrape
// on top of the observer registry's snapshot. Tools whose counters only reach
// the registry at end of run (Analyzer.PublishObs) set this to
// Analyzer.LiveCounters so mid-run scrapes see real progress, and clear it
// (nil) right after PublishObs so the totals are not double-counted.
func (t *Telemetry) SetExtra(f func() map[string]int64) {
	if t == nil {
		return
	}
	if f == nil {
		t.extra.Store(nil)
		return
	}
	t.extra.Store(&f)
}

// Activate brings the flags to life. The returned observer is o, or a fresh
// one when telemetry needs a registry to expose and the caller had metrics
// off; the returned *Telemetry is nil when nothing was requested, and every
// method on it is nil-safe.
func (f *Flags) Activate(name string, o *obs.Observer, labels ...Label) (*obs.Observer, *Telemetry, error) {
	if f == nil || (f.Listen == "" && f.TraceSample <= 0) {
		return o, nil, nil
	}
	if f.TraceSample < 0 || f.TraceSample > 1 {
		return o, nil, fmt.Errorf("telemetry: -trace-sample %v out of range [0,1]", f.TraceSample)
	}
	t := &Telemetry{
		Slow:    NewSlowLog(128, 100*time.Millisecond),
		Sampler: NewSampler(f.TraceSample),
	}
	if f.Listen == "" {
		return o, t, nil
	}
	o = obs.Ensure(o, name) // a listener needs a registry to expose
	ln, err := net.Listen("tcp", f.Listen)
	if err != nil {
		return o, nil, fmt.Errorf("telemetry: -metrics-listen %s: %w", f.Listen, err)
	}
	t.ln = ln
	t.srv = &http.Server{Handler: t.handler(o, labels...)}
	go func() { _ = t.srv.Serve(ln) }()
	return o, t, nil
}

// Addr returns the listener address ("" when no listener).
func (t *Telemetry) Addr() string {
	if t == nil || t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Close shuts the side listener down.
func (t *Telemetry) Close() error {
	if t == nil || t.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return t.srv.Shutdown(ctx)
}

// RecordRun files one finished CLI run in the slow log, attaching the root
// span tree as an exemplar when the run was sampled.
func (t *Telemetry) RecordRun(op, detail, corr string, start time.Time, d time.Duration, root *obs.Span) {
	if t == nil {
		return
	}
	e := Entry{CorrID: corr, Op: op, Detail: detail, Start: start, DurMS: float64(d) / 1e6}
	if t.Sampler.Sample() {
		e.Trace = root.Export()
	}
	t.Slow.Observe(e, d)
}

// handler serves GET /metrics (Prometheus text exposition of the observer's
// registry plus the live extra counters, with the given constant labels) and
// GET /debug/slowlog (JSON).
func (t *Telemetry) handler(o *obs.Observer, labels ...Label) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := o.Reg().Snapshot()
		if f := t.extra.Load(); f != nil {
			for k, v := range (*f)() {
				snap.Counters[k] += v
			}
		}
		w.Header().Set("Content-Type", ContentType)
		_ = WriteProm(w, ObsFamilies(snap, labels...))
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Slow.Snapshot())
	})
	return mux
}
