// Package faultinject is a deterministic, seed-driven fault injector for the
// PAAF pipeline. It is build-tag-free: faults reach production code only
// through the optional hooks on pao.Analyzer (FaultHook, DRCFaultHook) and
// drc.Engine (FaultHook), all of which stay nil outside tests.
//
// A Fault arms one site: when the hook fires with a matching site (and,
// optionally, detail) for the configured call count, the injector panics,
// sleeps, or returns spurious DRC violations. Matching on the detail string —
// a unique-instance signature or cluster id — makes injection independent of
// goroutine scheduling, so the same script hits the same classes whether the
// pipeline runs with one worker or many.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/drc"
)

// Kind selects the fault behaviour at the hook site.
type Kind uint8

const (
	// Panic panics with a *Panic value carrying the fault's note.
	Panic Kind = iota
	// Delay sleeps for the fault's Sleep duration.
	Delay
	// Spurious returns a fabricated DRC violation (DRC hooks only; it is a
	// no-op on plain site hooks, which cannot return violations).
	Spurious
	// ConnDrop makes a network hook fail with ErrConnDrop, simulating a
	// connection torn down before the payload arrives (NetHook only; plain
	// and DRC hooks record the firing but cannot return errors).
	ConnDrop
	// Corrupt flips one payload byte at a position derived deterministically
	// from the fault's firing ordinal, simulating in-flight corruption the
	// receiver's checksum must catch (NetHook only).
	Corrupt
	// DelayJitter sleeps for Sleep scaled by a deterministic pseudo-random
	// factor in [1-Jitter, 1+Jitter], simulating variable network latency.
	// Unlike Delay, repeated firings of the same fault sleep different (but
	// seed-stable) durations.
	DelayJitter
)

var kindNames = [...]string{"panic", "delay", "spurious", "conndrop", "corrupt", "delayjitter"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ErrConnDrop is the error ConnDrop faults surface through NetHook. Callers
// treat it like any transport failure: retry, hedge, or relocate the work.
var ErrConnDrop = errors.New("faultinject: injected connection drop")

// PanicValue is the value injected panics carry, so tests can distinguish
// them from genuine faults.
type PanicValue struct {
	Site   string
	Detail string
	Note   string
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s [%s] %s", p.Site, p.Detail, p.Note)
}

// Fault arms one injection.
type Fault struct {
	// Site must equal the hook's site name (pao.SiteAnalyzeUnique,
	// drc.SiteCheckVia, ...).
	Site string
	// Detail, when non-empty, restricts the fault to hook invocations whose
	// detail string matches exactly (class signature, cluster id). Faults
	// with an empty Detail match every invocation of the site — their call
	// counting then depends on scheduling when workers run concurrently, so
	// prefer detail-scoped faults for reproducible multi-worker tests.
	Detail string
	// Call fires the fault on the n-th matching invocation (1-based);
	// 0 fires on every matching invocation.
	Call int64
	Kind Kind
	// Sleep is the Delay duration (and the DelayJitter base duration).
	Sleep time.Duration
	// Jitter is the DelayJitter spread fraction: each firing sleeps
	// Sleep * u with u uniform in [1-Jitter, 1+Jitter]. Values outside
	// [0, 1] are clamped; 0 behaves like Delay.
	Jitter float64
	// Seed drives the DelayJitter randomness; faults with equal seeds sleep
	// identical schedules run to run.
	Seed int64
	// Note tags the fault in panic values and the fired log.
	Note string

	count int64 // matching invocations seen so far
	rng   *rand.Rand
}

// jitterFactor returns the deterministic per-firing scale for DelayJitter.
func (f *Fault) jitterFactor() float64 {
	j := f.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	return 1 - j + 2*j*f.rng.Float64()
}

// Event records one fired fault.
type Event struct {
	Site   string
	Detail string
	Call   int64 // the matching-invocation ordinal that fired
	Kind   Kind
	Note   string
}

// Injector holds armed faults and a log of fired events. The zero value is
// ready to use; all methods are safe for concurrent hooks.
type Injector struct {
	mu     sync.Mutex
	faults []*Fault
	fired  []Event
}

// New returns an empty injector.
func New() *Injector { return &Injector{} }

// Add arms a fault. The *Fault remains owned by the injector.
func (in *Injector) Add(f *Fault) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, f)
	return in
}

// Script arms n one-shot faults of the given kind at pseudorandom distinct
// call ordinals in [1, maxCall], drawn deterministically from seed — the
// "inject K faults somewhere" driver for randomized robustness tests.
func (in *Injector) Script(seed int64, site string, kind Kind, n int, maxCall int64) *Injector {
	rng := rand.New(rand.NewSource(seed))
	used := make(map[int64]bool)
	for len(used) < n && int64(len(used)) < maxCall {
		c := 1 + rng.Int63n(maxCall)
		if used[c] {
			continue
		}
		used[c] = true
		in.Add(&Fault{Site: site, Call: c, Kind: kind,
			Note: fmt.Sprintf("scripted seed=%d call=%d", seed, c)})
	}
	return in
}

// Fired returns the fired events in firing order.
func (in *Injector) Fired() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.fired...)
}

// FiredCount returns how many faults have fired.
func (in *Injector) FiredCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.fired)
}

// match advances call counting for every armed fault matching (site, detail)
// and returns the faults that fire on this invocation.
func (in *Injector) match(site, detail string) []*Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	var hit []*Fault
	for _, f := range in.faults {
		if f.Site != site || (f.Detail != "" && f.Detail != detail) {
			continue
		}
		f.count++
		if f.Call != 0 && f.count != f.Call {
			continue
		}
		in.fired = append(in.fired, Event{
			Site: site, Detail: detail, Call: f.count, Kind: f.Kind, Note: f.Note,
		})
		hit = append(hit, f)
	}
	return hit
}

// act executes the non-DRC effects of fired faults: sleeps first, then at
// most one panic. Spurious faults are collected for DRC hooks.
func act(site, detail string, hit []*Fault) []drc.Violation {
	var vs []drc.Violation
	var boom *Fault
	for _, f := range hit {
		switch f.Kind {
		case Delay:
			time.Sleep(f.Sleep)
		case Spurious:
			vs = append(vs, drc.Violation{
				Rule: "Injected", Layer: "fault",
				Note: fmt.Sprintf("faultinject %s [%s] %s", site, detail, f.Note),
			})
		case Panic:
			if boom == nil {
				boom = f
			}
		}
	}
	if boom != nil {
		panic(&PanicValue{Site: site, Detail: detail, Note: boom.Note})
	}
	return vs
}

// netAct executes the network-site effects of fired faults, in order: sleeps
// (Delay and DelayJitter) first, then payload corruption, then at most one
// connection drop, then at most one panic. The returned payload is a corrupted
// copy when a Corrupt fault fired (the input slice is never modified).
func (in *Injector) netAct(site, detail string, payload []byte, hit []*Fault) ([]byte, error) {
	var boom, drop *Fault
	corrupted := false
	for _, f := range hit {
		switch f.Kind {
		case Delay:
			time.Sleep(f.Sleep)
		case DelayJitter:
			in.mu.Lock()
			u := f.jitterFactor()
			in.mu.Unlock()
			time.Sleep(time.Duration(float64(f.Sleep) * u))
		case Corrupt:
			if len(payload) > 0 {
				if !corrupted {
					payload = append([]byte(nil), payload...)
					corrupted = true
				}
				in.mu.Lock()
				pos := int(f.count-1) % len(payload)
				in.mu.Unlock()
				payload[pos] ^= 0xa5
			}
		case ConnDrop:
			if drop == nil {
				drop = f
			}
		case Panic:
			if boom == nil {
				boom = f
			}
		}
	}
	if boom != nil {
		panic(&PanicValue{Site: site, Detail: detail, Note: boom.Note})
	}
	if drop != nil {
		return nil, fmt.Errorf("%w at %s [%s] %s", ErrConnDrop, site, detail, drop.Note)
	}
	return payload, nil
}

// NetHook adapts the injector to network fault points (dist.dispatch,
// dist.response, dist.heartbeat, ...): the hook receives the payload about to
// cross the wire and returns it possibly delayed (Delay, DelayJitter),
// corrupted (Corrupt — one byte flipped, forcing the receiver's checksum
// validation to reject it), or replaced by a transport error (ConnDrop).
// Panic faults still panic; Spurious faults are recorded but have no effect.
func (in *Injector) NetHook() func(site, detail string, payload []byte) ([]byte, error) {
	return func(site, detail string, payload []byte) ([]byte, error) {
		return in.netAct(site, detail, payload, in.match(site, detail))
	}
}

// SiteHook adapts the injector to pao.Analyzer.FaultHook. Spurious faults
// armed on plain sites are recorded as fired but have no other effect.
func (in *Injector) SiteHook() func(site, detail string) {
	return func(site, detail string) {
		act(site, detail, in.match(site, detail))
	}
}

// DRCHook adapts the injector to pao.Analyzer.DRCFaultHook (and, with the
// detail pre-bound, to drc.Engine.FaultHook): fired Spurious faults surface
// as fabricated violations that fail the enclosing via check.
func (in *Injector) DRCHook() func(site, detail string) []drc.Violation {
	return func(site, detail string) []drc.Violation {
		return act(site, detail, in.match(site, detail))
	}
}
