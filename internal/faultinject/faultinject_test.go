package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestInjectorCallCounting(t *testing.T) {
	in := New().Add(&Fault{Site: "s", Call: 3, Kind: Panic, Note: "third"})
	hook := in.SiteHook()
	hook("s", "a")
	hook("s", "b")
	hook("other", "a") // different site: must not advance the counter
	func() {
		defer func() {
			pv, ok := recover().(*PanicValue)
			if !ok {
				t.Fatal("third matching call must panic with *PanicValue")
			}
			if pv.Site != "s" || pv.Detail != "c" || pv.Note != "third" {
				t.Errorf("panic value wrong: %+v", pv)
			}
		}()
		hook("s", "c")
	}()
	hook("s", "d") // one-shot: call 4 must not fire
	if got := in.FiredCount(); got != 1 {
		t.Errorf("fired %d times, want 1", got)
	}
}

func TestInjectorDetailScoping(t *testing.T) {
	in := New().Add(&Fault{Site: "s", Detail: "target", Kind: Panic})
	hook := in.SiteHook()
	hook("s", "other")
	hook("s", "another")
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		hook("s", "target")
		return false
	}()
	if !panicked {
		t.Error("detail-matched call must panic")
	}
	if in.FiredCount() != 1 {
		t.Errorf("fired %d, want 1", in.FiredCount())
	}
}

func TestInjectorSpuriousAndDelay(t *testing.T) {
	in := New().
		Add(&Fault{Site: "drc", Kind: Spurious}).
		Add(&Fault{Site: "drc", Kind: Delay, Sleep: 10 * time.Millisecond})
	hook := in.DRCHook()
	t0 := time.Now()
	vs := hook("drc", "x")
	if len(vs) != 1 || vs[0].Rule != "Injected" {
		t.Fatalf("want one injected violation, got %v", vs)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Errorf("delay fault slept only %v", d)
	}
	if in.FiredCount() != 2 {
		t.Errorf("fired %d, want 2", in.FiredCount())
	}
}

func TestScriptDeterministic(t *testing.T) {
	a := New().Script(42, "s", Panic, 5, 100)
	b := New().Script(42, "s", Panic, 5, 100)
	if len(a.faults) != 5 || len(b.faults) != 5 {
		t.Fatalf("want 5 armed faults, got %d and %d", len(a.faults), len(b.faults))
	}
	calls := func(in *Injector) map[int64]bool {
		m := make(map[int64]bool)
		for _, f := range in.faults {
			m[f.Call] = true
		}
		return m
	}
	ca, cb := calls(a), calls(b)
	if len(ca) != 5 {
		t.Errorf("scripted call ordinals not distinct: %v", ca)
	}
	for c := range ca {
		if !cb[c] {
			t.Errorf("same seed produced different scripts: %v vs %v", ca, cb)
		}
		if c < 1 || c > 100 {
			t.Errorf("call ordinal %d outside [1, 100]", c)
		}
	}
}

func TestInjectorConcurrentHooks(t *testing.T) {
	in := New().Add(&Fault{Site: "s", Call: 500, Kind: Spurious})
	hook := in.DRCHook()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				hook("s", "x")
			}
		}()
	}
	wg.Wait()
	if in.FiredCount() != 1 {
		t.Errorf("exactly one of the 1000 calls must fire, got %d", in.FiredCount())
	}
}
