package faultinject

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestInjectorCallCounting(t *testing.T) {
	in := New().Add(&Fault{Site: "s", Call: 3, Kind: Panic, Note: "third"})
	hook := in.SiteHook()
	hook("s", "a")
	hook("s", "b")
	hook("other", "a") // different site: must not advance the counter
	func() {
		defer func() {
			pv, ok := recover().(*PanicValue)
			if !ok {
				t.Fatal("third matching call must panic with *PanicValue")
			}
			if pv.Site != "s" || pv.Detail != "c" || pv.Note != "third" {
				t.Errorf("panic value wrong: %+v", pv)
			}
		}()
		hook("s", "c")
	}()
	hook("s", "d") // one-shot: call 4 must not fire
	if got := in.FiredCount(); got != 1 {
		t.Errorf("fired %d times, want 1", got)
	}
}

func TestInjectorDetailScoping(t *testing.T) {
	in := New().Add(&Fault{Site: "s", Detail: "target", Kind: Panic})
	hook := in.SiteHook()
	hook("s", "other")
	hook("s", "another")
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		hook("s", "target")
		return false
	}()
	if !panicked {
		t.Error("detail-matched call must panic")
	}
	if in.FiredCount() != 1 {
		t.Errorf("fired %d, want 1", in.FiredCount())
	}
}

func TestInjectorSpuriousAndDelay(t *testing.T) {
	in := New().
		Add(&Fault{Site: "drc", Kind: Spurious}).
		Add(&Fault{Site: "drc", Kind: Delay, Sleep: 10 * time.Millisecond})
	hook := in.DRCHook()
	t0 := time.Now()
	vs := hook("drc", "x")
	if len(vs) != 1 || vs[0].Rule != "Injected" {
		t.Fatalf("want one injected violation, got %v", vs)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Errorf("delay fault slept only %v", d)
	}
	if in.FiredCount() != 2 {
		t.Errorf("fired %d, want 2", in.FiredCount())
	}
}

func TestScriptDeterministic(t *testing.T) {
	a := New().Script(42, "s", Panic, 5, 100)
	b := New().Script(42, "s", Panic, 5, 100)
	if len(a.faults) != 5 || len(b.faults) != 5 {
		t.Fatalf("want 5 armed faults, got %d and %d", len(a.faults), len(b.faults))
	}
	calls := func(in *Injector) map[int64]bool {
		m := make(map[int64]bool)
		for _, f := range in.faults {
			m[f.Call] = true
		}
		return m
	}
	ca, cb := calls(a), calls(b)
	if len(ca) != 5 {
		t.Errorf("scripted call ordinals not distinct: %v", ca)
	}
	for c := range ca {
		if !cb[c] {
			t.Errorf("same seed produced different scripts: %v vs %v", ca, cb)
		}
		if c < 1 || c > 100 {
			t.Errorf("call ordinal %d outside [1, 100]", c)
		}
	}
}

func TestNetHookConnDrop(t *testing.T) {
	in := New().Add(&Fault{Site: "net", Call: 2, Kind: ConnDrop, Note: "cut"})
	hook := in.NetHook()
	payload := []byte("hello")
	if out, err := hook("net", "w1", payload); err != nil || string(out) != "hello" {
		t.Fatalf("call 1 must pass through, got %q err %v", out, err)
	}
	out, err := hook("net", "w1", payload)
	if !errors.Is(err, ErrConnDrop) {
		t.Fatalf("call 2 must drop the connection, got %q err %v", out, err)
	}
	if out != nil {
		t.Errorf("dropped call must not return a payload, got %q", out)
	}
	if _, err := hook("net", "w1", payload); err != nil {
		t.Errorf("one-shot fault must not fire again: %v", err)
	}
}

func TestNetHookCorruptPayload(t *testing.T) {
	in := New().Add(&Fault{Site: "net", Kind: Corrupt})
	hook := in.NetHook()
	orig := []byte("checksummed payload bytes")
	keep := append([]byte(nil), orig...)
	out, err := hook("net", "w1", orig)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out, orig) {
		t.Fatal("corrupt fault must change the payload")
	}
	if !bytes.Equal(orig, keep) {
		t.Fatal("corrupt fault must not modify the caller's slice in place")
	}
	diff := 0
	for i := range out {
		if out[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("want exactly one flipped byte, got %d", diff)
	}
	// Repeated firings corrupt different positions (ordinal-derived), so a
	// receiver retrying a corrupted transfer cannot get lucky at position 0
	// forever.
	out2, _ := hook("net", "w1", orig)
	if bytes.Equal(out2, out) {
		t.Errorf("second firing must corrupt a different position")
	}
}

func TestNetHookDelayJitterDeterministic(t *testing.T) {
	// Two identically seeded faults must sleep the same schedule; the sleeps
	// must stay within [1-Jitter, 1+Jitter] of the base.
	factors := func(seed int64) []float64 {
		f := &Fault{Kind: DelayJitter, Sleep: time.Millisecond, Jitter: 0.5, Seed: seed}
		var out []float64
		for i := 0; i < 8; i++ {
			out = append(out, f.jitterFactor())
		}
		return out
	}
	a, b := factors(7), factors(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0.5 || a[i] > 1.5 {
			t.Errorf("factor %v outside [0.5, 1.5]", a[i])
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Errorf("jitter factors must vary across firings: %v", a)
	}
	// And the hook actually sleeps at least the lower bound.
	in := New().Add(&Fault{Site: "net", Kind: DelayJitter, Sleep: 20 * time.Millisecond, Jitter: 0.5})
	t0 := time.Now()
	if _, err := in.NetHook()("net", "x", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Errorf("delay-jitter fault slept only %v, want >= 10ms", d)
	}
}

func TestNetHookPanicStillPanics(t *testing.T) {
	in := New().Add(&Fault{Site: "net", Kind: Panic, Note: "boom"})
	defer func() {
		if _, ok := recover().(*PanicValue); !ok {
			t.Fatal("panic fault through NetHook must panic with *PanicValue")
		}
	}()
	_, _ = in.NetHook()("net", "x", []byte("p"))
}

func TestInjectorConcurrentHooks(t *testing.T) {
	in := New().Add(&Fault{Site: "s", Call: 500, Kind: Spurious})
	hook := in.DRCHook()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				hook("s", "x")
			}
		}()
	}
	wg.Wait()
	if in.FiredCount() != 1 {
		t.Errorf("exactly one of the 1000 calls must fire, got %d", in.FiredCount())
	}
}
