package tech

import (
	"fmt"

	"repro/internal/geom"
)

// nodeParams captures everything that differs between the synthetic nodes.
type nodeParams struct {
	nodeNM     int
	siteW      int64
	siteH      int64
	numMetals  int
	pitchLo    int64 // M1..M4
	pitchMid   int64 // M5..M7
	pitchHi    int64 // M8+
	widthLo    int64
	widthMid   int64
	widthHi    int64
	minStep    int64
	areaLo     int64
	eol        EOLRule
	cutW       int64
	cutSpc     int64
	encLong    int64 // via enclosure beyond cut, long sides
	encShort   int64 // via enclosure beyond cut, short sides
	wideSpacer int64 // spacing for wide shapes
	baseSpacer int64 // default spacing
}

// N45 builds the synthetic 45 nm node (stand-in for the ISPD-2018 test1-3
// technology): 9 metals, M1 horizontal, 140 nm lower-metal pitch. It panics
// only if the built-in node parameters are themselves broken (a library bug,
// not an input condition); NewN45 is the error-returning form.
func N45() *Technology { return mustNode(NewN45()) }

// NewN45 is N45 returning validation errors instead of panicking.
func NewN45() (*Technology, error) {
	return build("pao45", nodeParams{
		nodeNM: 45, siteW: 140, siteH: 1400, numMetals: 9,
		pitchLo: 140, pitchMid: 280, pitchHi: 560,
		widthLo: 70, widthMid: 140, widthHi: 280,
		minStep: 60, areaLo: 19600,
		eol:  EOLRule{EOLWidth: 90, EOLSpace: 90, EOLWithin: 25},
		cutW: 70, cutSpc: 80, encLong: 35, encShort: 0,
		baseSpacer: 70, wideSpacer: 140,
	})
}

// N32 builds the synthetic 32 nm node (stand-in for the ISPD-2018 test4-10
// technology): 9 metals, 100 nm lower-metal pitch. See N45 for the panic
// contract; NewN32 is the error-returning form.
func N32() *Technology { return mustNode(NewN32()) }

// NewN32 is N32 returning validation errors instead of panicking.
func NewN32() (*Technology, error) {
	return build("pao32", nodeParams{
		nodeNM: 32, siteW: 100, siteH: 1000, numMetals: 9,
		pitchLo: 100, pitchMid: 200, pitchHi: 400,
		widthLo: 50, widthMid: 100, widthHi: 200,
		minStep: 45, areaLo: 10000,
		eol:  EOLRule{EOLWidth: 70, EOLSpace: 70, EOLWithin: 20},
		cutW: 50, cutSpc: 60, encLong: 25, encShort: 0,
		baseSpacer: 50, wideSpacer: 100,
	})
}

// N14 builds the synthetic 14 nm node used for the Fig. 9 study. Its cell
// library (internal/stdcell) deliberately misaligns pin fingers against the
// routing tracks, so on-track via enclosures step off the pin shapes and
// off-track (shape-center / enclosure-boundary) access must kick in — the
// behaviour Fig. 9 illustrates. See N45 for the panic contract; NewN14 is
// the error-returning form.
func N14() *Technology { return mustNode(NewN14()) }

// NewN14 is N14 returning validation errors instead of panicking.
func NewN14() (*Technology, error) {
	return build("pao14", nodeParams{
		nodeNM: 14, siteW: 64, siteH: 640, numMetals: 9,
		pitchLo: 64, pitchMid: 128, pitchHi: 256,
		widthLo: 32, widthMid: 64, widthHi: 128,
		minStep: 30, areaLo: 4096,
		eol:  EOLRule{EOLWidth: 40, EOLSpace: 48, EOLWithin: 16},
		cutW: 32, cutSpc: 42, encLong: 20, encShort: 0,
		baseSpacer: 32, wideSpacer: 64,
	})
}

// ByNode returns the builder output for a node in nanometers (45, 32 or 14).
func ByNode(nm int) (*Technology, error) {
	switch nm {
	case 45:
		return NewN45()
	case 32:
		return NewN32()
	case 14:
		return NewN14()
	}
	return nil, fmt.Errorf("tech: no synthetic node for %d nm", nm)
}

// mustNode backs the Must-style N45/N32/N14 wrappers.
func mustNode(t *Technology, err error) *Technology {
	if err != nil {
		panic("tech: builder produced invalid technology: " + err.Error())
	}
	return t
}

func build(name string, p nodeParams) (*Technology, error) {
	t := &Technology{
		Name:         name,
		NodeNM:       p.nodeNM,
		DBUPerMicron: 1000,
		SiteWidth:    p.siteW,
		SiteHeight:   p.siteH,
	}
	for i := 1; i <= p.numMetals; i++ {
		pitch, width := p.pitchLo, p.widthLo
		switch {
		case i > 7:
			pitch, width = p.pitchHi, p.widthHi
		case i > 4:
			pitch, width = p.pitchMid, p.widthMid
		}
		dir := Horizontal
		if i%2 == 0 {
			dir = Vertical
		}
		scale := width / p.widthLo
		l := &RoutingLayer{
			Name:   fmt.Sprintf("M%d", i),
			Num:    i,
			Dir:    dir,
			Pitch:  pitch,
			Width:  width,
			MinWid: width,
			Area:   p.areaLo * scale * scale,
			Step:   MinStepRule{MinStepLength: p.minStep * scale, MaxEdges: 0},
			EOL: EOLRule{
				EOLWidth:  p.eol.EOLWidth * scale,
				EOLSpace:  p.eol.EOLSpace * scale,
				EOLWithin: p.eol.EOLWithin * scale,
			},
			Corner: CornerSpacingRule{
				EligibleWidth: 3 * width,
				Spacing:       p.baseSpacer*scale + p.baseSpacer*scale/2,
			},
			EncArea: p.areaLo * scale * scale / 2,
			Spacing: SpacingTable{
				Widths:  []int64{0, 3 * width},
				PRLs:    []int64{0, 2 * width},
				Spacing: [][]int64{{p.baseSpacer * scale, p.baseSpacer * scale}, {p.baseSpacer * scale, p.wideSpacer * scale}},
			},
		}
		t.Metals = append(t.Metals, l)
	}
	for k := 1; k < p.numMetals; k++ {
		scale := t.Metals[k-1].Width / p.widthLo
		if s2 := t.Metals[k].Width / p.widthLo; s2 > scale {
			scale = s2
		}
		t.Cuts = append(t.Cuts, &CutLayer{
			Name:     fmt.Sprintf("V%d%d", k, k+1),
			BelowNum: k,
			Width:    p.cutW * scale,
			Spacing:  p.cutSpc * scale,
		})
		t.Vias = append(t.Vias, makeVias(t, k, p)...)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tech: builder produced invalid technology %q: %w", name, err)
	}
	return t, nil
}

// makeVias builds the via variants for cut layer k (between metal k and k+1):
// a variant with the bottom enclosure long axis horizontal, one with it
// vertical, and a square variant. Top enclosures always run along the upper
// layer's preferred direction so that on-track up-via access aligns with
// upper-layer tracks (Section II-C of the paper).
func makeVias(t *Technology, k int, p nodeParams) []*ViaDef {
	cut := t.Cuts[k-1]
	half := cut.Width / 2
	cutRect := geom.R(-half, -half, half, half)
	topDir := t.Metals[k].Dir // metal k+1 (0-indexed k)
	scale := cut.Width / p.cutW
	long := p.encLong * scale
	short := p.encShort * scale

	enc := func(longX bool) geom.Rect {
		if longX {
			return geom.R(-half-long, -half-short, half+long, half+short)
		}
		return geom.R(-half-short, -half-long, half+short, half+long)
	}
	topEnc := enc(topDir == Horizontal)
	sq := (long + short) / 2
	sqEnc := geom.R(-half-sq, -half-sq, half+sq, half+sq)

	return []*ViaDef{
		{Name: fmt.Sprintf("VIA%d_H", k), CutBelow: k, BotEnc: enc(true), Cuts: []geom.Rect{cutRect}, TopEnc: topEnc},
		{Name: fmt.Sprintf("VIA%d_V", k), CutBelow: k, BotEnc: enc(false), Cuts: []geom.Rect{cutRect}, TopEnc: topEnc},
		{Name: fmt.Sprintf("VIA%d_SQ", k), CutBelow: k, BotEnc: sqEnc, Cuts: []geom.Rect{cutRect}, TopEnc: topEnc},
	}
}

// AddDoubleCutVias appends a redundant (two-cut) via variant above each
// metal: two cuts spaced at exactly the cut-spacing rule along the upper
// layer's preferred direction, under one enclosure pair. Callers opt in (the
// benchmark suite keeps the paper-style single-cut set); the variants sit
// last, so primaries are unaffected where single-cut vias remain valid.
func AddDoubleCutVias(t *Technology) error {
	for k := 1; k < t.NumMetals(); k++ {
		cut := t.Cuts[k-1]
		half := cut.Width / 2
		off := (cut.Width + cut.Spacing) / 2 // cut centers at +/- off
		base := geom.R(-half, -half, half, half)
		topDir := t.Metals[k].Dir
		botDir := t.Metals[k-1].Dir
		var shift geom.Point
		if topDir == Vertical {
			shift = geom.Pt(0, off)
		} else {
			shift = geom.Pt(off, 0)
		}
		c1 := base.Shift(geom.Pt(-shift.X, -shift.Y))
		c2 := base.Shift(shift)
		span := c1.UnionBBox(c2)
		// Enclosures: extend by half a cut along each layer's preferred
		// direction and hug the cuts on the perpendicular sides.
		enc := func(dir Dir) geom.Rect {
			if dir == Horizontal {
				return span.BloatXY(half, 0)
			}
			return span.BloatXY(0, half)
		}
		t.Vias = append(t.Vias, &ViaDef{
			Name:     fmt.Sprintf("VIA%d_D", k),
			CutBelow: k,
			BotEnc:   enc(botDir),
			Cuts:     []geom.Rect{c1, c2},
			TopEnc:   enc(topDir),
		})
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("tech: AddDoubleCutVias produced invalid technology: %w", err)
	}
	return nil
}
