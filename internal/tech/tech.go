// Package tech models the technology side of the pin access problem: routing
// and cut layers, the design rules the DRC engine enforces, via definitions,
// and builders for the synthetic 45 nm, 32 nm and 14 nm nodes used by the
// benchmark suite (stand-ins for the ISPD-2018 contest technologies and the
// commercial 14 nm library in the paper).
//
// All dimensions are DBU with 1 DBU = 1 nm (DBUPerMicron = 1000).
package tech

import (
	"fmt"

	"repro/internal/geom"
)

// Dir is a routing direction.
type Dir uint8

const (
	// Horizontal means wires run along the x axis (tracks are y coordinates).
	Horizontal Dir = iota
	// Vertical means wires run along the y axis (tracks are x coordinates).
	Vertical
)

func (d Dir) String() string {
	if d == Horizontal {
		return "HORIZONTAL"
	}
	return "VERTICAL"
}

// Orthogonal returns the perpendicular direction.
func (d Dir) Orthogonal() Dir {
	if d == Horizontal {
		return Vertical
	}
	return Horizontal
}

// SpacingTable is a LEF PARALLELRUNLENGTH spacing table: required spacing as a
// function of the wider shape's width and the parallel run length between the
// two shapes. Row i applies to widths >= Widths[i]; column j applies to
// parallel run lengths >= PRLs[j]. Widths[0] and PRLs[0] are conventionally 0.
type SpacingTable struct {
	Widths  []int64
	PRLs    []int64
	Spacing [][]int64 // Spacing[row][col]
}

// Lookup returns the required spacing for the given (wider-shape) width and
// parallel run length. A zero-value table returns 0 (no constraint).
func (t *SpacingTable) Lookup(width, prl int64) int64 {
	if t == nil || len(t.Widths) == 0 {
		return 0
	}
	row := 0
	for i, w := range t.Widths {
		if width >= w {
			row = i
		}
	}
	col := 0
	for j, p := range t.PRLs {
		if prl >= p {
			col = j
		}
	}
	return t.Spacing[row][col]
}

// MaxSpacing returns the largest spacing in the table, used to size DRC query
// windows.
func (t *SpacingTable) MaxSpacing() int64 {
	if t == nil {
		return 0
	}
	var m int64
	for _, row := range t.Spacing {
		for _, s := range row {
			if s > m {
				m = s
			}
		}
	}
	return m
}

// MinStepRule limits consecutive short outline edges (LEF MINSTEP). An edge
// shorter than MinStepLength is a "step"; at most MaxEdges consecutive steps
// are allowed. MaxEdges = 1 reproduces the classic one-notch rule.
type MinStepRule struct {
	MinStepLength int64
	MaxEdges      int
}

// Enabled reports whether the rule constrains anything.
func (r MinStepRule) Enabled() bool { return r.MinStepLength > 0 }

// CornerSpacingRule requires extra clearance off the convex corners of wide
// shapes (LEF5.7 CORNERSPACING, simplified): when either shape of a
// diagonally-adjacent pair is at least EligibleWidth wide, the corner-to-
// corner distance must be at least Spacing (instead of the PRL-table value).
type CornerSpacingRule struct {
	EligibleWidth int64
	Spacing       int64
}

// Enabled reports whether the rule constrains anything.
func (r CornerSpacingRule) Enabled() bool { return r.Spacing > 0 }

// EOLRule is a simplified end-of-line spacing rule (LEF SPACING ... ENDOFLINE):
// an outline edge shorter than EOLWidth requires EOLSpace clearance in front of
// it, within a window extending EOLWithin to each side.
type EOLRule struct {
	EOLWidth  int64
	EOLSpace  int64
	EOLWithin int64
}

// Enabled reports whether the rule constrains anything.
func (r EOLRule) Enabled() bool { return r.EOLSpace > 0 }

// RoutingLayer describes one metal layer and its rules.
type RoutingLayer struct {
	Name   string
	Num    int // 1-based metal number (M1 = 1)
	Dir    Dir // preferred routing direction
	Pitch  int64
	Width  int64 // default wire width
	MinWid int64 // minimum legal width
	Area   int64 // minimum polygon area (0 = unconstrained)
	// EncArea is the minimum enclosed (hole) area: a ring of metal may not
	// enclose a hole smaller than this (0 = unconstrained).
	EncArea int64
	Step    MinStepRule
	EOL     EOLRule
	Corner  CornerSpacingRule
	Spacing SpacingTable
}

// MinSpacing returns the required spacing between two shapes on this layer
// given the wider shape's width and their parallel run length.
func (l *RoutingLayer) MinSpacing(width, prl int64) int64 {
	return l.Spacing.Lookup(width, prl)
}

// CutLayer describes the via cut layer between metal Num and Num+1.
type CutLayer struct {
	Name     string
	BelowNum int   // metal below (cut k sits between metal k and k+1)
	Width    int64 // cut square side
	Spacing  int64 // minimum cut-to-cut spacing (edge to edge)
}

// ViaDef is a fixed via geometry: one or more cuts with bottom and top metal
// enclosures, all expressed relative to the via origin (the access point
// coordinate). Single-cut vias are the norm; multi-cut (redundant) variants
// carry several cut rectangles under one enclosure pair.
type ViaDef struct {
	Name     string
	CutBelow int         // metal number below the cuts; connects CutBelow and CutBelow+1
	BotEnc   geom.Rect   // bottom enclosure, origin-centered
	Cuts     []geom.Rect // cut shapes, origin-centered
	TopEnc   geom.Rect   // top enclosure, origin-centered
}

// BotRect returns the bottom enclosure placed at p.
func (v *ViaDef) BotRect(p geom.Point) geom.Rect { return v.BotEnc.Shift(p) }

// TopRect returns the top enclosure placed at p.
func (v *ViaDef) TopRect(p geom.Point) geom.Rect { return v.TopEnc.Shift(p) }

// CutRects returns every cut shape placed at p.
func (v *ViaDef) CutRects(p geom.Point) []geom.Rect {
	out := make([]geom.Rect, len(v.Cuts))
	for i, c := range v.Cuts {
		out[i] = c.Shift(p)
	}
	return out
}

// CutRect returns the first (primary) cut shape placed at p.
func (v *ViaDef) CutRect(p geom.Point) geom.Rect { return v.Cuts[0].Shift(p) }

// Technology bundles all layers, rules and vias for a node.
type Technology struct {
	Name         string
	NodeNM       int // 45, 32, 14
	DBUPerMicron int64
	SiteWidth    int64
	SiteHeight   int64
	Metals       []*RoutingLayer // Metals[0] is M1
	Cuts         []*CutLayer     // Cuts[k] connects Metals[k] and Metals[k+1]
	Vias         []*ViaDef

	byName map[string]*RoutingLayer
}

// NumMetals returns the number of routing layers.
func (t *Technology) NumMetals() int { return len(t.Metals) }

// Metal returns the routing layer with the given 1-based number.
func (t *Technology) Metal(num int) *RoutingLayer {
	if num < 1 || num > len(t.Metals) {
		return nil
	}
	return t.Metals[num-1]
}

// MetalByName returns the routing layer with the given name, or nil. The
// lookup map is rebuilt whenever layers have been added since the last call
// (the LEF reader grows Metals incrementally).
func (t *Technology) MetalByName(name string) *RoutingLayer {
	if t.byName == nil || len(t.byName) != len(t.Metals) {
		t.byName = make(map[string]*RoutingLayer, len(t.Metals))
		for _, l := range t.Metals {
			t.byName[l.Name] = l
		}
	}
	return t.byName[name]
}

// Cut returns the cut layer above metal num, or nil.
func (t *Technology) Cut(belowNum int) *CutLayer {
	if belowNum < 1 || belowNum > len(t.Cuts) {
		return nil
	}
	return t.Cuts[belowNum-1]
}

// ViasAbove returns the via definitions whose cut sits directly above metal
// num, in declaration order (the first entry is the conventional default).
func (t *Technology) ViasAbove(num int) []*ViaDef {
	var out []*ViaDef
	for _, v := range t.Vias {
		if v.CutBelow == num {
			out = append(out, v)
		}
	}
	return out
}

// ViaByName returns the via definition with the given name, or nil.
func (t *Technology) ViaByName(name string) *ViaDef {
	for _, v := range t.Vias {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Validate performs internal consistency checks and returns the first problem
// found, or nil.
func (t *Technology) Validate() error {
	if len(t.Metals) == 0 {
		return fmt.Errorf("tech %s: no routing layers", t.Name)
	}
	if len(t.Cuts) != len(t.Metals)-1 {
		return fmt.Errorf("tech %s: %d cut layers for %d metals", t.Name, len(t.Cuts), len(t.Metals))
	}
	for i, l := range t.Metals {
		if l.Num != i+1 {
			return fmt.Errorf("tech %s: metal %q numbered %d at position %d", t.Name, l.Name, l.Num, i)
		}
		if l.Width <= 0 || l.Pitch < l.Width {
			return fmt.Errorf("tech %s: metal %q width %d pitch %d", t.Name, l.Name, l.Width, l.Pitch)
		}
		if i > 0 && t.Metals[i-1].Dir == l.Dir {
			return fmt.Errorf("tech %s: metals %q and %q share direction %v (must alternate)", t.Name, t.Metals[i-1].Name, l.Name, l.Dir)
		}
	}
	for _, v := range t.Vias {
		if v.CutBelow < 1 || v.CutBelow >= len(t.Metals)+0 && v.CutBelow > len(t.Cuts) {
			return fmt.Errorf("tech %s: via %q cut below metal %d out of range", t.Name, v.Name, v.CutBelow)
		}
		if len(v.Cuts) == 0 {
			return fmt.Errorf("tech %s: via %q has no cuts", t.Name, v.Name)
		}
		for _, c := range v.Cuts {
			if !v.BotEnc.ContainsRect(c) || !v.TopEnc.ContainsRect(c) {
				return fmt.Errorf("tech %s: via %q enclosures do not cover a cut", t.Name, v.Name)
			}
		}
	}
	return nil
}
