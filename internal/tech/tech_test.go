package tech

import (
	"testing"

	"repro/internal/geom"
)

func TestNodesValidate(t *testing.T) {
	for _, nm := range []int{45, 32, 14} {
		tt, err := ByNode(nm)
		if err != nil {
			t.Fatalf("ByNode(%d): %v", nm, err)
		}
		if err := tt.Validate(); err != nil {
			t.Errorf("node %d invalid: %v", nm, err)
		}
		if tt.NumMetals() != 9 {
			t.Errorf("node %d has %d metals, want 9", nm, tt.NumMetals())
		}
		if tt.DBUPerMicron != 1000 {
			t.Errorf("node %d DBUPerMicron = %d", nm, tt.DBUPerMicron)
		}
	}
	if _, err := ByNode(7); err == nil {
		t.Error("ByNode(7) must fail")
	}
}

func TestLayerAlternation(t *testing.T) {
	tt := N45()
	if tt.Metal(1).Dir != Horizontal {
		t.Fatal("M1 must be horizontal (paper Section III-A example)")
	}
	for i := 2; i <= tt.NumMetals(); i++ {
		if tt.Metal(i).Dir == tt.Metal(i-1).Dir {
			t.Errorf("M%d and M%d share a direction", i-1, i)
		}
	}
}

func TestMetalAccessors(t *testing.T) {
	tt := N32()
	if tt.Metal(0) != nil || tt.Metal(10) != nil {
		t.Error("out-of-range Metal() must return nil")
	}
	if got := tt.MetalByName("M3"); got == nil || got.Num != 3 {
		t.Errorf("MetalByName(M3) = %+v", got)
	}
	if tt.MetalByName("M99") != nil {
		t.Error("MetalByName(M99) must be nil")
	}
	if tt.Cut(0) != nil || tt.Cut(9) != nil {
		t.Error("out-of-range Cut() must return nil")
	}
	if c := tt.Cut(1); c == nil || c.BelowNum != 1 {
		t.Errorf("Cut(1) = %+v", c)
	}
}

func TestViasAbove(t *testing.T) {
	tt := N45()
	vias := tt.ViasAbove(1)
	if len(vias) != 3 {
		t.Fatalf("got %d via variants above M1, want 3", len(vias))
	}
	names := map[string]bool{}
	for _, v := range vias {
		names[v.Name] = true
		if v.CutBelow != 1 {
			t.Errorf("via %s CutBelow = %d", v.Name, v.CutBelow)
		}
		for _, c := range v.Cuts {
			if !v.BotEnc.ContainsRect(c) || !v.TopEnc.ContainsRect(c) {
				t.Errorf("via %s enclosure does not cover cut", v.Name)
			}
		}
	}
	for _, want := range []string{"VIA1_H", "VIA1_V", "VIA1_SQ"} {
		if !names[want] {
			t.Errorf("missing via variant %s", want)
		}
	}
	if tt.ViaByName("VIA1_H") == nil {
		t.Error("ViaByName(VIA1_H) = nil")
	}
	if tt.ViaByName("nope") != nil {
		t.Error("ViaByName(nope) != nil")
	}
}

func TestViaGeometryPlacement(t *testing.T) {
	tt := N45()
	v := tt.ViaByName("VIA1_H")
	p := geom.Pt(1000, 2000)
	bot := v.BotRect(p)
	cut := v.CutRect(p)
	top := v.TopRect(p)
	if cut.Center() != p {
		t.Errorf("cut center = %v, want %v", cut.Center(), p)
	}
	if !bot.ContainsRect(cut) || !top.ContainsRect(cut) {
		t.Error("placed enclosures must contain placed cut")
	}
	// H variant: bottom enclosure extends beyond the cut along x only.
	if bot.Width() <= cut.Width() {
		t.Error("H variant bottom enclosure must be wider than the cut")
	}
	if bot.Height() != cut.Height() {
		t.Errorf("H variant bottom enclosure height %d != cut height %d (45nm short enclosure is 0)", bot.Height(), cut.Height())
	}
	// Top layer above M1 is M2 (vertical) so the top enclosure is tall.
	if top.Height() <= top.Width() {
		t.Error("top enclosure above M1 must run vertically (M2 preferred direction)")
	}
}

func TestSpacingTableLookup(t *testing.T) {
	tbl := &SpacingTable{
		Widths:  []int64{0, 210},
		PRLs:    []int64{0, 140},
		Spacing: [][]int64{{70, 70}, {70, 140}},
	}
	cases := []struct {
		w, prl, want int64
	}{
		{70, 0, 70},
		{70, 1000, 70},
		{210, 0, 70},
		{210, 140, 140},
		{500, 500, 140},
		{500, 139, 70},
	}
	for _, c := range cases {
		if got := tbl.Lookup(c.w, c.prl); got != c.want {
			t.Errorf("Lookup(%d,%d) = %d, want %d", c.w, c.prl, got, c.want)
		}
	}
	var nilTbl *SpacingTable
	if nilTbl.Lookup(100, 100) != 0 {
		t.Error("nil table must return 0")
	}
	if tbl.MaxSpacing() != 140 {
		t.Errorf("MaxSpacing = %d, want 140", tbl.MaxSpacing())
	}
}

func TestRuleEnabled(t *testing.T) {
	if (MinStepRule{}).Enabled() {
		t.Error("zero MinStepRule must be disabled")
	}
	if !(MinStepRule{MinStepLength: 70, MaxEdges: 1}).Enabled() {
		t.Error("populated MinStepRule must be enabled")
	}
	if (EOLRule{}).Enabled() {
		t.Error("zero EOLRule must be disabled")
	}
	if !(EOLRule{EOLWidth: 90, EOLSpace: 90}).Enabled() {
		t.Error("populated EOLRule must be enabled")
	}
}

func TestDirOrthogonal(t *testing.T) {
	if Horizontal.Orthogonal() != Vertical || Vertical.Orthogonal() != Horizontal {
		t.Error("Orthogonal broken")
	}
	if Horizontal.String() != "HORIZONTAL" || Vertical.String() != "VERTICAL" {
		t.Error("Dir.String broken")
	}
}

func TestMinStepBelowWidth(t *testing.T) {
	// A minimum-width wire end must not be a min-step violation by itself, so
	// every node keeps MinStepLength below the wire width; with MaxEdges = 0
	// any shorter outline edge (e.g. a via enclosure stepping off a pin) is
	// illegal — the Fig. 3 mechanism.
	for _, nm := range []int{45, 32, 14} {
		tt, _ := ByNode(nm)
		for _, l := range tt.Metals {
			if !l.Step.Enabled() {
				t.Errorf("node %d %s: min step disabled", nm, l.Name)
			}
			if l.Step.MinStepLength > l.Width {
				t.Errorf("node %d %s: min step %d exceeds width %d (bare wire ends would violate)",
					nm, l.Name, l.Step.MinStepLength, l.Width)
			}
			if l.Step.MaxEdges != 0 {
				t.Errorf("node %d %s: MaxEdges = %d, want 0", nm, l.Name, l.Step.MaxEdges)
			}
		}
	}
}

func TestUpperLayerScaling(t *testing.T) {
	tt := N32()
	if tt.Metal(5).Width <= tt.Metal(4).Width {
		t.Error("mid metals must be wider than lower metals")
	}
	if tt.Metal(8).Pitch <= tt.Metal(5).Pitch {
		t.Error("top metals must have larger pitch than mid metals")
	}
	if tt.Cut(5).Width <= tt.Cut(1).Width {
		t.Error("upper cuts must scale with metal width")
	}
}

func TestAddDoubleCutVias(t *testing.T) {
	for _, nm := range []int{45, 32, 14} {
		tt, _ := ByNode(nm)
		before := len(tt.Vias)
		if err := AddDoubleCutVias(tt); err != nil {
			t.Fatalf("node %d: AddDoubleCutVias: %v", nm, err)
		}
		if len(tt.Vias) != before+tt.NumMetals()-1 {
			t.Fatalf("node %d: vias %d, want %d", nm, len(tt.Vias), before+tt.NumMetals()-1)
		}
		if err := tt.Validate(); err != nil {
			t.Fatalf("node %d: %v", nm, err)
		}
		v := tt.ViaByName("VIA1_D")
		if v == nil || len(v.Cuts) != 2 {
			t.Fatalf("node %d: VIA1_D = %+v", nm, v)
		}
		// The two cuts respect their own cut spacing.
		c := tt.Cut(1)
		if d := v.Cuts[0].DistSquared(v.Cuts[1]); d < c.Spacing*c.Spacing {
			t.Errorf("node %d: double cuts only %d apart (need %d)", nm, d, c.Spacing*c.Spacing)
		}
		// The default single-cut variants keep their positions (primaries
		// unchanged).
		if tt.ViasAbove(1)[0].Name != "VIA1_H" {
			t.Errorf("node %d: primary via changed to %s", nm, tt.ViasAbove(1)[0].Name)
		}
	}
}
