// Package exp reproduces the paper's experiments: Table I (suite summary),
// Experiment 1 / Table II (access point quality per unique instance pin),
// Experiment 2 / Table III (failed pins with intra- and inter-cell
// compatibility), Experiment 3 / Fig. 8 (routed DRCs with ad-hoc vs PAAF
// access) and the Fig. 9 14 nm study, plus the ablations DESIGN.md calls out.
// The same entry points back cmd/paoexp and the repository benchmarks.
package exp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/report"
	"repro/internal/router"
	"repro/internal/suite"
)

// Timing discipline: every experiment phase runs under an obs span, and the
// reported row seconds ARE the span durations — the printed tables and an
// exported trace can never disagree. The plain Run* entry points keep their
// original signatures and run with a private observer; the *Obs variants
// attach the spans (and, for phases that run the analyzer, the deep per-pin
// instrumentation plus DRC counters) to a caller-provided observer.

// Table1Row summarizes one generated testcase (the Table I mirror).
type Table1Row struct {
	Name     string
	StdCells int
	Macros   int
	Nets     int
	IOPins   int
	Layers   int
	DieMM2   float64
	NodeNM   int
}

// RunTable1 generates every suite testcase at the given scale and summarizes
// it.
func RunTable1(scale float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, spec := range suite.Testcases {
		d, err := suite.Generate(spec.Scale(scale))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:     d.Name,
			StdCells: d.NumStdCells(),
			Macros:   d.NumMacros(),
			Nets:     len(d.Nets),
			IOPins:   len(d.IOPins),
			Layers:   d.Tech.NumMetals(),
			DieMM2:   float64(d.Die.Width()) / 1e6 * float64(d.Die.Height()) / 1e6,
			NodeNM:   d.Tech.NodeNM,
		})
	}
	return rows, nil
}

// RenderTable1 prints the Table I analogue.
func RenderTable1(w io.Writer, rows []Table1Row) {
	t := report.New("Table I: testcase information (synthetic ISPD-2018 mirror)",
		"Benchmark", "#Std cell", "#Macro", "#Net", "#IO pin", "#Layer", "Die (mm2)", "Node")
	for _, r := range rows {
		t.AddRow(r.Name, r.StdCells, r.Macros, r.Nets, r.IOPins, r.Layers,
			fmt.Sprintf("%.2f", r.DieMM2), fmt.Sprintf("%dnm", r.NodeNM))
	}
	t.Render(w)
}

// Exp1Row is one Table II line: access point quality per unique instance pin,
// baseline (TrRte) vs PAAF.
type Exp1Row struct {
	Name       string
	NumUnique  int
	TrAPs      int
	PaafAPs    int
	TrDirty    int
	PaafDirty  int
	TrSeconds  float64
	PaafSecond float64
}

// RunExp1 runs Experiment 1 on one testcase spec at the given scale.
func RunExp1(spec suite.Spec, scale float64) (Exp1Row, error) {
	return RunExp1Obs(context.Background(), nil, spec, scale)
}

// RunExp1Obs is RunExp1 with the phases attached to the given observer's
// trace (nil runs with a private one) and the run bound to ctx: a cancelled
// or expired context aborts between phases and mid-analysis.
func RunExp1Obs(ctx context.Context, o *obs.Observer, spec suite.Spec, scale float64) (Exp1Row, error) {
	deep := o != nil
	o = obs.Ensure(o, "exp1")
	d, err := suite.Generate(spec.Scale(scale))
	if err != nil {
		return Exp1Row{}, err
	}
	row := Exp1Row{Name: d.Name}

	sp := o.Root().Start("exp1." + d.Name + ".trrte")
	base := baseline.Analyze(d)
	row.TrSeconds = sp.End().Seconds()

	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	if deep {
		a.Obs = o
	}
	sp = o.Root().Start("exp1." + d.Name + ".paaf")
	paafRes, err := runStep1Only(ctx, a, d)
	row.PaafSecond = sp.End().Seconds()
	if err != nil {
		return row, err
	}

	row.NumUnique = paafRes.Stats.NumUnique
	row.TrAPs = base.Stats.TotalAPs
	row.PaafAPs = paafRes.Stats.TotalAPs
	sp = o.Root().Start("exp1." + d.Name + ".dirty")
	row.TrDirty = a.CountDirtyAPs(base)
	row.PaafDirty = a.CountDirtyAPs(paafRes)
	sp.End()
	if deep {
		a.PublishObs()
	}
	return row, nil
}

// runStep1Only performs the Step-1 portion of the analysis (Experiment 1
// evaluates access point generation without compatibility), checking ctx
// between unique instances.
func runStep1Only(ctx context.Context, a *pao.Analyzer, d *db.Design) (*pao.Result, error) {
	res := &pao.Result{ByInstance: make(map[int]*pao.UniqueAccess), Selected: make(map[int]int)}
	for _, ui := range d.UniqueInstances() {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		ua := a.AnalyzeUnique(ui)
		res.Unique = append(res.Unique, ua)
		for _, inst := range ui.Insts {
			res.ByInstance[inst.ID] = ua
		}
		res.Stats.NumUnique++
		res.Stats.TotalAPs += ua.TotalAPs()
	}
	return res, nil
}

// RenderExp1 prints the Table II analogue.
func RenderExp1(w io.Writer, rows []Exp1Row) {
	t := report.New("Table II / Experiment 1: access points for unique instance pins (no compatibility)",
		"Benchmark", "#Unique Inst", "APs TrRte", "APs PAAF", "Dirty TrRte", "Dirty PAAF", "t(s) TrRte", "t(s) PAAF")
	for _, r := range rows {
		t.AddRow(r.Name, r.NumUnique, r.TrAPs, r.PaafAPs, r.TrDirty, r.PaafDirty,
			fmt.Sprintf("%.2f", r.TrSeconds), fmt.Sprintf("%.2f", r.PaafSecond))
	}
	t.Render(w)
}

// Exp2Row is one Table III line: failed pins with full compatibility
// analysis.
type Exp2Row struct {
	Name        string
	TotalPins   int
	TrFailed    int
	NoBCAFailed int
	BCAFailed   int
	TrSeconds   float64
	NoBCASecond float64
	BCASeconds  float64
}

// RunExp2 runs Experiment 2 on one testcase spec at the given scale.
func RunExp2(spec suite.Spec, scale float64) (Exp2Row, error) {
	return RunExp2Obs(context.Background(), nil, spec, scale)
}

// RunExp2Obs is RunExp2 with the phases attached to the given observer's
// trace (nil runs with a private one) and every analyzer run bound to ctx.
func RunExp2Obs(ctx context.Context, o *obs.Observer, spec suite.Spec, scale float64) (Exp2Row, error) {
	deep := o != nil
	o = obs.Ensure(o, "exp2")
	d, err := suite.Generate(spec.Scale(scale))
	if err != nil {
		return Exp2Row{}, err
	}
	row := Exp2Row{Name: d.Name}

	// Baseline: first-AP-per-pin, no compatibility.
	sp := o.Root().Start("exp2." + d.Name + ".trrte")
	base := baseline.Analyze(d)
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	a.CountFailedPins(base, a.GlobalEngine())
	row.TrSeconds = sp.End().Seconds()
	row.TotalPins = base.Stats.TotalPins
	row.TrFailed = base.Stats.FailedPins
	if deep {
		a.PublishObs()
	}
	if err := ctx.Err(); err != nil {
		return row, err
	}

	// PAAF without boundary conflict awareness (one pattern per unique
	// instance).
	cfg := pao.DefaultConfig()
	cfg.BCA = false
	noBCAAn := pao.NewAnalyzer(d, cfg)
	if deep {
		noBCAAn.Obs = o
	}
	sp = o.Root().Start("exp2." + d.Name + ".nobca")
	noBCA, err := noBCAAn.RunContext(ctx)
	row.NoBCASecond = sp.End().Seconds()
	if deep {
		noBCAAn.PublishObs()
	}
	if err != nil {
		return row, err
	}
	row.NoBCAFailed = noBCA.Stats.FailedPins

	// PAAF with BCA (up to three patterns, cluster selection).
	fullAn := pao.NewAnalyzer(d, pao.DefaultConfig())
	if deep {
		fullAn.Obs = o
	}
	sp = o.Root().Start("exp2." + d.Name + ".bca")
	full, err := fullAn.RunContext(ctx)
	row.BCASeconds = sp.End().Seconds()
	if deep {
		fullAn.PublishObs()
	}
	if err != nil {
		return row, err
	}
	row.BCAFailed = full.Stats.FailedPins
	return row, nil
}

// RenderExp2 prints the Table III analogue.
func RenderExp2(w io.Writer, rows []Exp2Row) {
	t := report.New("Table III / Experiment 2: failed pins with intra- and inter-cell compatibility",
		"Benchmark", "Total #Pins", "Fail TrRte", "Fail w/o BCA", "Fail w/ BCA", "t(s) TrRte", "t(s) w/o BCA", "t(s) w/ BCA")
	for _, r := range rows {
		t.AddRow(r.Name, r.TotalPins, r.TrFailed, r.NoBCAFailed, r.BCAFailed,
			fmt.Sprintf("%.2f", r.TrSeconds), fmt.Sprintf("%.2f", r.NoBCASecond), fmt.Sprintf("%.2f", r.BCASeconds))
	}
	t.Render(w)
}

// Exp3Result compares routed-design DRCs between access modes (the Fig. 8 /
// Section IV-B Experiment 3 analogue, run on pao_test5).
type Exp3Result struct {
	Name       string
	Mode       string
	Routed     int
	Failed     int
	WireLength int64
	Violations int
	AccessDRCs int
	Seconds    float64
}

// RunExp3 routes the scaled pao_test5 in both access modes.
func RunExp3(scale float64) ([]Exp3Result, error) {
	return RunExp3Obs(context.Background(), nil, scale)
}

// RunExp3Obs is RunExp3 with the phases attached to the given observer's
// trace (nil runs with a private one); ctx aborts between modes and inside
// the PAAF access analysis.
func RunExp3Obs(ctx context.Context, o *obs.Observer, scale float64) ([]Exp3Result, error) {
	deep := o != nil
	o = obs.Ensure(o, "exp3")
	spec := suite.Testcases[4].Scale(scale) // pao_test5, as in the paper
	var out []Exp3Result
	for _, mode := range []router.AccessMode{router.AccessAdHoc, router.AccessPAAF} {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		d, err := suite.Generate(spec)
		if err != nil {
			return nil, err
		}
		a := pao.NewAnalyzer(d, pao.DefaultConfig())
		if deep {
			a.Obs = o
		}
		sp := o.Root().Start("exp3." + mode.String())
		cfg := router.Config{Mode: mode}
		if mode == router.AccessPAAF {
			access, err := a.RunContext(ctx)
			if err != nil {
				sp.End()
				return out, err
			}
			cfg.Access = access
		}
		r, err := router.New(d, cfg)
		if err != nil {
			return nil, err
		}
		res := r.Route()
		router.Check(a, res)
		sec := sp.End().Seconds()
		if deep {
			a.PublishObs()
		}
		out = append(out, Exp3Result{
			Name: d.Name, Mode: mode.String(),
			Routed: res.Routed, Failed: res.Failed, WireLength: res.WireLength,
			Violations: len(res.Violations), AccessDRCs: res.AccessViolations,
			Seconds: sec,
		})
	}
	return out, nil
}

// RenderExp3 prints the Experiment 3 comparison.
func RenderExp3(w io.Writer, rows []Exp3Result) {
	t := report.New("Experiment 3 / Fig. 8: routed DRCs, ad-hoc (Dr.CU-like) vs PAAF pin access",
		"Benchmark", "Access", "Routed", "Failed", "WL (um)", "#DRCs", "#Access DRCs", "t(s)")
	for _, r := range rows {
		t.AddRow(r.Name, r.Mode, r.Routed, r.Failed, r.WireLength/1000, r.Violations, r.AccessDRCs,
			fmt.Sprintf("%.2f", r.Seconds))
	}
	t.Render(w)
}

// AES14Result is the Fig. 9 study output.
type AES14Result struct {
	Insts     int
	Unique    int
	TotalPins int
	Failed    int
	TotalAPs  int
	OffTrack  int
	Seconds   float64
}

// RunAES14 runs the 14 nm study at the given scale.
func RunAES14(scale float64) (AES14Result, error) {
	return RunAES14Obs(context.Background(), nil, scale)
}

// RunAES14Obs is RunAES14 with the run attached to the given observer's
// trace (nil runs with a private one) and bound to ctx.
func RunAES14Obs(ctx context.Context, o *obs.Observer, scale float64) (AES14Result, error) {
	deep := o != nil
	o = obs.Ensure(o, "aes14")
	d, err := suite.Generate(suite.AES14.Scale(scale))
	if err != nil {
		return AES14Result{}, err
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	if deep {
		a.Obs = o
	}
	sp := o.Root().Start("aes14.run")
	res, err := a.RunContext(ctx)
	sec := sp.End().Seconds()
	if deep {
		a.PublishObs()
	}
	if err != nil {
		return AES14Result{Insts: len(d.Instances), Seconds: sec}, err
	}
	return AES14Result{
		Insts:     len(d.Instances),
		Unique:    res.Stats.NumUnique,
		TotalPins: res.Stats.TotalPins,
		Failed:    res.Stats.FailedPins,
		TotalAPs:  res.Stats.TotalAPs,
		OffTrack:  res.Stats.OffTrackAPs,
		Seconds:   sec,
	}, nil
}

// RenderAES14 prints the Fig. 9 study summary.
func RenderAES14(w io.Writer, r AES14Result) {
	t := report.New("Fig. 9 study: commercial-style 14nm library (off-track access enabled automatically)",
		"#Inst", "#Unique", "#Pins", "#Failed", "#APs", "#OffTrackAPs", "t(s)")
	t.AddRow(r.Insts, r.Unique, r.TotalPins, r.Failed, r.TotalAPs, r.OffTrack,
		fmt.Sprintf("%.2f", r.Seconds))
	t.Render(w)
}

// AblationRow is one configuration of the design-choice sweeps.
type AblationRow struct {
	Name       string
	TotalAPs   int
	FailedPins int
	Patterns   int
	Dropped    int
	Seconds    float64
}

// RunAblations sweeps the design choices DESIGN.md calls out on one testcase:
// k (access points per pin), alpha (pin ordering weight), history-aware edge
// costs, BCA, and coordinate-type restriction (on-track only).
func RunAblations(spec suite.Spec, scale float64) ([]AblationRow, error) {
	return RunAblationsObs(context.Background(), nil, spec, scale)
}

// RunAblationsObs is RunAblations with one span per swept configuration on
// the given observer's trace (nil runs with a private one); ctx aborts
// between and inside configurations, returning the rows finished so far.
func RunAblationsObs(ctx context.Context, o *obs.Observer, spec suite.Spec, scale float64) ([]AblationRow, error) {
	deep := o != nil
	o = obs.Ensure(o, "ablate")
	d, err := suite.Generate(spec.Scale(scale))
	if err != nil {
		return nil, err
	}
	cfgs := []struct {
		name string
		cfg  pao.Config
	}{
		{"default (k=3, a=0.3, BCA, history)", pao.DefaultConfig()},
		{"k=1", func() pao.Config { c := pao.DefaultConfig(); c.K = 1; return c }()},
		{"k=5", func() pao.Config { c := pao.DefaultConfig(); c.K = 5; return c }()},
		{"alpha=0", func() pao.Config { c := pao.DefaultConfig(); c.Alpha = -1e-9; return c }()},
		{"alpha=1", func() pao.Config { c := pao.DefaultConfig(); c.Alpha = 1; return c }()},
		{"no history", func() pao.Config { c := pao.DefaultConfig(); c.HistoryAware = false; return c }()},
		{"no BCA", func() pao.Config { c := pao.DefaultConfig(); c.BCA = false; return c }()},
		{"on-track only", func() pao.Config {
			c := pao.DefaultConfig()
			c.AllowedTypes = []pao.CoordType{pao.OnTrack}
			return c
		}()},
		{"maxPatterns=1", func() pao.Config { c := pao.DefaultConfig(); c.MaxPatterns = 1; return c }()},
		{"maxPatterns=5", func() pao.Config { c := pao.DefaultConfig(); c.MaxPatterns = 5; return c }()},
		{"workers=4", func() pao.Config { c := pao.DefaultConfig(); c.Workers = 4; return c }()},
	}
	var out []AblationRow
	for _, c := range cfgs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		a := pao.NewAnalyzer(d, c.cfg)
		if deep {
			a.Obs = o
		}
		sp := o.Root().Start("ablate." + c.name)
		res, err := a.RunContext(ctx)
		sec := sp.End().Seconds()
		if deep {
			a.PublishObs()
		}
		if err != nil {
			return out, err
		}
		out = append(out, AblationRow{
			Name:       c.name,
			TotalAPs:   res.Stats.TotalAPs,
			FailedPins: res.Stats.FailedPins,
			Patterns:   res.Stats.PatternsBuilt,
			Dropped:    res.Stats.PatternsDropped,
			Seconds:    sec,
		})
	}
	return out, nil
}

// RenderAblations prints the ablation sweep.
func RenderAblations(w io.Writer, name string, rows []AblationRow) {
	t := report.New(fmt.Sprintf("Ablations on %s", name),
		"Config", "#APs", "#Failed Pins", "#Patterns", "#Dropped", "t(s)")
	for _, r := range rows {
		t.AddRow(r.Name, r.TotalAPs, r.FailedPins, r.Patterns, r.Dropped,
			fmt.Sprintf("%.2f", r.Seconds))
	}
	t.Render(w)
}
