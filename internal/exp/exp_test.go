package exp

import (
	"strings"
	"testing"

	"repro/internal/suite"
)

func TestTable1(t *testing.T) {
	rows, err := RunTable1(0.003)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.StdCells == 0 || r.Nets == 0 || r.Layers != 9 {
			t.Errorf("row %d incomplete: %+v", i, r)
		}
	}
	var b strings.Builder
	RenderTable1(&b, rows)
	if !strings.Contains(b.String(), "pao_test10") {
		t.Error("render missing testcase")
	}
}

func TestExp1Shape(t *testing.T) {
	row, err := RunExp1(suite.Testcases[0], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// The Table II claims: PAAF generates more APs, zero dirty; the baseline
	// leaves dirty APs.
	if row.PaafAPs < row.TrAPs {
		t.Errorf("PAAF APs %d < TrRte APs %d", row.PaafAPs, row.TrAPs)
	}
	if row.PaafDirty != 0 {
		t.Errorf("PAAF dirty = %d", row.PaafDirty)
	}
	if row.TrDirty == 0 {
		t.Error("TrRte dirty = 0, want > 0")
	}
	if row.NumUnique == 0 {
		t.Error("no unique instances")
	}
	var b strings.Builder
	RenderExp1(&b, []Exp1Row{row})
	if !strings.Contains(b.String(), "Table II") {
		t.Error("render missing title")
	}
}

func TestExp2Shape(t *testing.T) {
	row, err := RunExp2(suite.Testcases[0], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// The Table III claims: the baseline fails many pins, PAAF w/ BCA fails
	// none, and w/o BCA sits in between.
	if row.BCAFailed != 0 {
		t.Errorf("w/ BCA failed = %d, want 0", row.BCAFailed)
	}
	if row.TrFailed == 0 {
		t.Error("TrRte failed = 0, want > 0")
	}
	if row.TrFailed < row.NoBCAFailed {
		t.Errorf("TrRte failed %d < w/o BCA failed %d", row.TrFailed, row.NoBCAFailed)
	}
	if row.TotalPins == 0 {
		t.Error("no pins")
	}
	var b strings.Builder
	RenderExp2(&b, []Exp2Row{row})
	if !strings.Contains(b.String(), "Table III") {
		t.Error("render missing title")
	}
}

func TestExp3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("routing experiment")
	}
	rows, err := RunExp3(0.002)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	adhoc, paaf := rows[0], rows[1]
	if adhoc.Mode != "adhoc" || paaf.Mode != "paaf" {
		t.Fatalf("mode order: %s, %s", adhoc.Mode, paaf.Mode)
	}
	if paaf.Violations >= adhoc.Violations {
		t.Errorf("PAAF DRCs %d >= adhoc DRCs %d", paaf.Violations, adhoc.Violations)
	}
	if adhoc.AccessDRCs == 0 {
		t.Error("adhoc access DRCs = 0")
	}
	var b strings.Builder
	RenderExp3(&b, rows)
	if !strings.Contains(b.String(), "Fig. 8") {
		t.Error("render missing title")
	}
}

func TestAES14(t *testing.T) {
	res, err := RunAES14(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Errorf("failed pins = %d", res.Failed)
	}
	if res.OffTrack*2 < res.TotalAPs {
		t.Errorf("off-track APs %d of %d: expected majority", res.OffTrack, res.TotalAPs)
	}
	var b strings.Builder
	RenderAES14(&b, res)
	if !strings.Contains(b.String(), "14nm") {
		t.Error("render missing title")
	}
}

func TestAblations(t *testing.T) {
	rows, err := RunAblations(suite.Testcases[0], 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	def := byName["default (k=3, a=0.3, BCA, history)"]
	if def.FailedPins != 0 {
		t.Errorf("default failed = %d", def.FailedPins)
	}
	if k1 := byName["k=1"]; k1.TotalAPs >= def.TotalAPs {
		t.Errorf("k=1 APs %d >= default %d", k1.TotalAPs, def.TotalAPs)
	}
	if k5 := byName["k=5"]; k5.TotalAPs <= def.TotalAPs {
		t.Errorf("k=5 APs %d <= default %d", k5.TotalAPs, def.TotalAPs)
	}
	var b strings.Builder
	RenderAblations(&b, "pao_test1", rows)
	if !strings.Contains(b.String(), "on-track only") {
		t.Error("render missing config")
	}
}
