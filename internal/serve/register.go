package serve

// POST /v1/designs: register a design into a running manager from a generated
// suite case, inline LEF/DEF text, or an uploaded PR-4 snapshot. This is an
// abuse-facing surface — multi-tenant registration accepts bytes from other
// teams' tooling — so parsing is hardened: the body is size-capped before it
// is read (413), design IDs pass a strict charset/length gate before they can
// become file names or metric labels (400), duplicates conflict (409), and a
// design that validates but fails to build is 422, never a crash. The pure
// ParseRegisterRequest is the fuzz target (FuzzRegisterRequest).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"

	"repro/internal/db"
	"repro/internal/def"
	"repro/internal/lef"
	"repro/internal/pao"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// Size caps for inline registration payloads. These bound what one
// registration can make the manager hold in flight, independent of the
// whole-body MaxUploadBytes cap.
const (
	maxIDLen        = 64
	maxInlineSource = 8 << 20  // LEF or DEF text
	maxInlineSnap   = 24 << 20 // uploaded snapshot stream
)

// idRe is the design/tenant ID gate: IDs become snapshot file names, metric
// label values and map keys, so no separators, no dots-only names, no
// control characters — one alphanumeric head, then up to 63 of [A-Za-z0-9._-].
var idRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateID vets a design or tenant identifier.
func ValidateID(id string) error {
	if id == "" {
		return errors.New("empty ID")
	}
	if len(id) > maxIDLen {
		return fmt.Errorf("ID longer than %d bytes", maxIDLen)
	}
	if !idRe.MatchString(id) {
		return fmt.Errorf("ID %q: must start alphanumeric and contain only [A-Za-z0-9._-]", id)
	}
	return nil
}

// RegisterRequest is the POST /v1/designs body. Exactly one design source is
// required: a generated suite case, or inline LEF+DEF text. An optional
// snapshot (PR-4 stream, base64 in JSON) warm-starts the design without
// analysis; a corrupt one falls back to compute.
type RegisterRequest struct {
	ID string `json:"id"`

	// Source 1: generated suite case.
	Case  string  `json:"case,omitempty"`
	Scale float64 `json:"scale,omitempty"` // 0 means full size; else (0,1]
	Seed  int64   `json:"seed,omitempty"`  // 0 keeps the spec's seed

	// Source 2: inline LEF/DEF text.
	LEF string `json:"lef,omitempty"`
	DEF string `json:"def,omitempty"`

	// Snapshot optionally warm-starts from a PR-4 snapshot stream.
	Snapshot []byte `json:"snapshot,omitempty"`

	// Analysis overrides (0 keeps the manager's defaults).
	K       int `json:"k,omitempty"`
	Workers int `json:"workers,omitempty"`

	// Bulkhead overrides (zero values keep the manager's Design template).
	MaxInFlight int     `json:"max_inflight,omitempty"`
	Queue       *int    `json:"queue,omitempty"` // nil keeps template; 0 sheds when busy
	Rate        float64 `json:"rate,omitempty"`
	Burst       int     `json:"burst,omitempty"`
}

// ParseRegisterRequest decodes and validates a registration body without
// touching any server state — the fuzzable core of POST /v1/designs. It never
// panics on hostile input; every rejection is a descriptive error.
func ParseRegisterRequest(data []byte) (*RegisterRequest, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var req RegisterRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad registration JSON: %v", err)
	}
	// Trailing garbage after the JSON object is a malformed request, not an
	// ignorable suffix.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errors.New("trailing data after registration JSON")
	}
	if err := ValidateID(req.ID); err != nil {
		return nil, fmt.Errorf("bad design ID: %w", err)
	}
	haveCase := req.Case != ""
	haveFiles := req.LEF != "" || req.DEF != ""
	switch {
	case haveCase && haveFiles:
		return nil, errors.New(`"case" and "lef"/"def" are mutually exclusive`)
	case !haveCase && !haveFiles:
		return nil, errors.New(`exactly one design source required: "case" or "lef"+"def"`)
	case haveFiles && (req.LEF == "" || req.DEF == ""):
		return nil, errors.New(`"lef" and "def" must both be provided`)
	}
	if haveCase {
		if err := ValidateID(req.Case); err != nil {
			return nil, fmt.Errorf("bad case name: %w", err)
		}
		if req.Scale < 0 || req.Scale > 1 {
			return nil, fmt.Errorf(`"scale" %v out of range (0,1]`, req.Scale)
		}
	}
	if len(req.LEF) > maxInlineSource || len(req.DEF) > maxInlineSource {
		return nil, fmt.Errorf("inline LEF/DEF exceeds %d bytes", maxInlineSource)
	}
	if len(req.Snapshot) > maxInlineSnap {
		return nil, fmt.Errorf("snapshot exceeds %d bytes", maxInlineSnap)
	}
	if req.K < 0 || req.K > 64 {
		return nil, fmt.Errorf(`"k" %d out of range [0,64]`, req.K)
	}
	if req.Workers < 0 || req.Workers > 1024 {
		return nil, fmt.Errorf(`"workers" %d out of range [0,1024]`, req.Workers)
	}
	if req.MaxInFlight < 0 || req.MaxInFlight > 4096 {
		return nil, fmt.Errorf(`"max_inflight" %d out of range [0,4096]`, req.MaxInFlight)
	}
	if req.Queue != nil && (*req.Queue < -1 || *req.Queue > 1<<20) {
		return nil, fmt.Errorf(`"queue" %d out of range [-1,1048576]`, *req.Queue)
	}
	if req.Rate < 0 || req.Burst < 0 {
		return nil, errors.New(`"rate" and "burst" must be non-negative`)
	}
	return &req, nil
}

// tune applies the request's bulkhead overrides to a design's Config.
func (req *RegisterRequest) tune(c *Config) {
	if req.MaxInFlight > 0 {
		c.MaxInFlight = req.MaxInFlight
	}
	if req.Queue != nil {
		c.QueueDepth = *req.Queue
	}
	if req.Rate > 0 {
		c.RatePerSec = req.Rate
		if req.Burst > 0 {
			c.Burst = req.Burst
		}
	}
}

// buildDesign materializes the request's design source. The design is renamed
// to the registration ID so every per-design metric label, snapshot hash and
// log line keys on the caller-chosen identity — two registrations of the same
// suite case stay distinguishable.
func (m *Manager) buildDesign(req *RegisterRequest) (*db.Design, pao.Config, error) {
	paoCfg := m.paoCfg
	if req.K > 0 {
		paoCfg.K = req.K
	}
	if req.Workers > 0 {
		paoCfg.Workers = req.Workers
	}
	var d *db.Design
	if req.Case != "" {
		spec, err := suite.ByName(req.Case)
		if err != nil {
			return nil, paoCfg, err
		}
		if req.Scale > 0 {
			spec = spec.Scale(req.Scale)
		}
		if req.Seed != 0 {
			spec = spec.WithSeed(req.Seed)
		}
		d, err = suite.Generate(spec)
		if err != nil {
			return nil, paoCfg, err
		}
	} else {
		lib, err := lef.Parse(strings.NewReader(req.LEF))
		if err != nil {
			return nil, paoCfg, fmt.Errorf("LEF: %w", err)
		}
		d, err = def.Parse(strings.NewReader(req.DEF), lib.Tech, lib.Masters)
		if err != nil {
			return nil, paoCfg, fmt.Errorf("DEF: %w", err)
		}
	}
	d.Name = req.ID
	return d, paoCfg, nil
}

// handleRegister is POST /v1/designs.
func (m *Manager) handleRegister(w http.ResponseWriter, r *http.Request) {
	if m.draining.Load() {
		http.Error(w, "manager draining", http.StatusServiceUnavailable)
		return
	}
	body := http.MaxBytesReader(w, r.Body, m.cfg.MaxUploadBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("registration body exceeds %d bytes", m.cfg.MaxUploadBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := ParseRegisterRequest(data)
	if err != nil {
		m.reg().Counter("serve.register.rejected").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Cheap duplicate check before the expensive build; RegisterDesign
	// re-checks atomically under its lock.
	if m.get(req.ID) != nil {
		http.Error(w, "design "+req.ID+" already registered", http.StatusConflict)
		return
	}
	d, paoCfg, err := m.buildDesign(req)
	if err != nil {
		m.reg().Counter("serve.register.rejected").Inc()
		http.Error(w, "building design: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	srv, err := m.RegisterDesign(r.Context(), req.ID, d, paoCfg, &RegisterOptions{
		Snapshot: req.Snapshot,
		Tune:     req.tune,
	})
	switch {
	case errors.Is(err, ErrDesignExists):
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		m.Logger.Error("registration failed",
			telemetry.F("design", req.ID), telemetry.F("err", err))
		http.Error(w, "analysis failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	_ = srv
	e := m.get(req.ID)
	if e == nil { // deleted in the handler's race window; report honestly
		http.Error(w, "design removed during registration", http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusCreated, m.designInfo(e))
}
