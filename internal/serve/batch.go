package serve

// POST /v1/access/batch: answer N instances in one request, amortizing HTTP
// overhead for bulk consumers (a router warming its access map, a library
// verification sweep). The batch holds ONE execution slot but is
// admission-charged per instance: the tenant's token bucket pays N tokens and
// the fair dequeue weights the request by N, so a giant batch cannot
// monopolize a design's queue — other tenants' single queries interleave
// ahead of it in proportion.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// BatchRequest is the /v1/access/batch body.
type BatchRequest struct {
	Instances []string `json:"instances"`
}

// BatchAnswer is one instance's slot in a batch response: either a full query
// answer or a per-instance error (unknown instance), never a whole-batch
// failure.
type BatchAnswer struct {
	QueryResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse answers /v1/access/batch.
type BatchResponse struct {
	Design  string        `json:"design"`
	Count   int           `json:"count"`
	Answers []BatchAnswer `json:"answers"`
}

// maxBatchBody caps the batch request body; ~64 bytes per instance name at
// the instance cap, with generous slack for JSON framing.
const maxBatchBody = 1 << 20

// batchCtxKey carries the parsed batch body from batchCost (which must read
// it to price admission) to handleBatch.
type batchCtxKey struct{}

// batchCost parses and validates the batch body up front and returns the
// per-instance admission charge. Runs inside admittedCost, before the rate
// limiter.
func (s *Server) batchCost(r *http.Request) (*http.Request, int, error) {
	if r.Method != http.MethodPost {
		return nil, 0, &admitError{code: http.StatusMethodNotAllowed, msg: "POST required"}
	}
	var req BatchRequest
	body := http.MaxBytesReader(nil, r.Body, maxBatchBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		if _, ok := err.(*http.MaxBytesError); ok {
			return nil, 0, &admitError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("batch body exceeds %d bytes", maxBatchBody)}
		}
		return nil, 0, fmt.Errorf("bad batch body: %v", err)
	}
	if len(req.Instances) == 0 {
		return nil, 0, fmt.Errorf("empty batch")
	}
	if max := s.maxBatch(); len(req.Instances) > max {
		return nil, 0, fmt.Errorf("batch of %d exceeds the %d-instance cap", len(req.Instances), max)
	}
	r = r.WithContext(context.WithValue(r.Context(), batchCtxKey{}, &req))
	return r, len(req.Instances), nil
}

func (s *Server) maxBatch() int {
	if s.cfg.MaxBatch > 0 {
		return s.cfg.MaxBatch
	}
	return 256
}

// handleBatch answers every instance in the parsed batch from one immutable
// state load. Wrapped by admittedCost(batchCost).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	st := s.curState.Load()
	if st == nil {
		http.Error(w, "analysis not loaded", http.StatusServiceUnavailable)
		return
	}
	req, _ := r.Context().Value(batchCtxKey{}).(*BatchRequest)
	if req == nil {
		http.Error(w, "batch body missing", http.StatusInternalServerError)
		return
	}
	resp := BatchResponse{Design: s.design.Name, Answers: make([]BatchAnswer, 0, len(req.Instances))}
	s.designMu.RLock()
	for _, name := range req.Instances {
		inst := s.design.InstByName(name)
		if inst == nil {
			resp.Answers = append(resp.Answers, BatchAnswer{
				QueryResponse: QueryResponse{Inst: name, Pins: []PinAnswer{}},
				Error:         "unknown instance",
			})
			continue
		}
		if h := s.FaultHook; h != nil {
			h(SiteQuery, name)
		}
		ans := BatchAnswer{QueryResponse: s.answer(st, inst)}
		if ans.Degraded {
			s.reg().Counter("serve.degraded.answers").Inc()
		}
		resp.Answers = append(resp.Answers, ans)
	}
	s.designMu.RUnlock()
	resp.Count = len(resp.Answers)
	s.reg().Counter("serve.batch.instances").Add(int64(len(req.Instances)))
	writeJSON(w, http.StatusOK, resp)
}
