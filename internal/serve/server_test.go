package serve

// White-box server tests: the injectable clock (s.now) drives the rate
// limiter and circuit breaker deterministically, and the nil-by-default fault
// hooks stand in for crashes, slow queries and broken disks.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/faultinject"
	"repro/internal/pao"
	"repro/internal/suite"
)

func serveDesign(t *testing.T) *db.Design {
	t.Helper()
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newTestServer(t *testing.T, d *db.Design, cfg Config) *Server {
	t.Helper()
	s := New(d, pao.DefaultConfig(), cfg)
	t.Cleanup(s.bgCancel)
	return s
}

func mustInit(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, h http.Handler, path string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, rec.Result().Header, body
}

func queryInst(t *testing.T, h http.Handler, name string) (int, QueryResponse, []byte) {
	t.Helper()
	code, _, body := get(t, h, "/v1/access?inst="+name)
	var resp QueryResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("bad query JSON: %v\n%s", err, body)
		}
	}
	return code, resp, body
}

func TestServeQueryBasics(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{})
	mustInit(t, s)
	h := s.Handler()

	inst := d.Instances[0]
	code, resp, _ := queryInst(t, h, inst.Name)
	if code != http.StatusOK {
		t.Fatalf("query = %d, want 200", code)
	}
	if resp.Inst != inst.Name || resp.Source != "recompute" {
		t.Fatalf("bad response header fields: %+v", resp)
	}
	if resp.Degraded || resp.Status != "ok" {
		t.Fatalf("healthy design answered degraded: %+v", resp)
	}
	if len(resp.Pins) == 0 {
		t.Fatal("no pins in answer")
	}
	// Coordinates must match the library's own oracle answer.
	res := s.Result()
	for _, pa := range resp.Pins {
		pin := inst.Master.PinByName(pa.Pin)
		ap := res.AccessPointFor(inst, pin)
		if ap == nil {
			if !pa.Fallback && !pa.Failed {
				t.Fatalf("pin %s: server invented an AP", pa.Pin)
			}
			continue
		}
		if pa.X != ap.Pos.X || pa.Y != ap.Pos.Y || pa.Layer != ap.Layer {
			t.Fatalf("pin %s: served (%d,%d,M%d), oracle %v", pa.Pin, pa.X, pa.Y, pa.Layer, ap)
		}
	}

	if code, _, _ := queryInst(t, h, "no_such_instance"); code != http.StatusNotFound {
		t.Fatalf("unknown instance = %d, want 404", code)
	}
	if code, _, body := get(t, h, "/v1/access"); code != http.StatusBadRequest {
		t.Fatalf("missing inst = %d (%s), want 400", code, body)
	}
}

// TestServeDegradedAnswers is the acceptance scenario: a fault-injected,
// quarantined class answers 200 with degraded fallback points — never a 500.
func TestServeDegradedAnswers(t *testing.T) {
	d := serveDesign(t)
	sig := d.UniqueInstances()[0].Signature()
	s := newTestServer(t, d, Config{})
	inj := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteAnalyzeUnique, Detail: sig, Kind: faultinject.Panic, Note: "quarantine",
	})
	s.PaoFaultHook = inj.SiteHook()
	mustInit(t, s)
	if inj.FiredCount() == 0 {
		t.Fatal("fault never fired")
	}
	h := s.Handler()

	queried := 0
	for _, inst := range d.Instances {
		if d.InstanceSignature(inst) != sig {
			continue
		}
		queried++
		code, resp, body := queryInst(t, h, inst.Name)
		if code != http.StatusOK {
			t.Fatalf("quarantined class query = %d (%s), want 200", code, body)
		}
		if !resp.Degraded || resp.Status != "failed" {
			t.Fatalf("quarantined class not marked degraded: %+v", resp)
		}
		for _, pa := range resp.Pins {
			if !pa.Fallback && !pa.Failed {
				t.Fatalf("degraded answer pin %s not marked fallback", pa.Pin)
			}
			if pa.Fallback && pa.Layer == 0 {
				t.Fatalf("fallback pin %s has no geometry", pa.Pin)
			}
		}
	}
	if queried == 0 {
		t.Fatal("no instances in the quarantined class")
	}
	if got := s.reg().Counter("serve.degraded.answers").Load(); got != int64(queried) {
		t.Errorf("serve.degraded.answers = %d, want %d", got, queried)
	}

	// Healthy classes still answer normally.
	for _, inst := range d.Instances {
		if d.InstanceSignature(inst) == sig {
			continue
		}
		code, resp, _ := queryInst(t, h, inst.Name)
		if code != http.StatusOK || resp.Degraded {
			t.Fatalf("healthy class degraded by neighbor fault: %d %+v", code, resp)
		}
		break
	}
}

func TestServeRateLimit(t *testing.T) {
	d := serveDesign(t)
	clock := time.Unix(1000, 0)
	s := newTestServer(t, d, Config{RatePerSec: 1, Burst: 1})
	s.now = func() time.Time { return clock }
	mustInit(t, s)
	h := s.Handler()
	inst := d.Instances[0].Name

	if code, _, _ := queryInst(t, h, inst); code != http.StatusOK {
		t.Fatalf("first query = %d, want 200", code)
	}
	code, hdr, _ := get(t, h, "/v1/access?inst="+inst)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second query = %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1", ra)
	}
	if got := s.reg().Counter("serve.shed.rate").Load(); got != 1 {
		t.Errorf("serve.shed.rate = %d, want 1", got)
	}
	clock = clock.Add(2 * time.Second) // refill
	if code, _, _ := queryInst(t, h, inst); code != http.StatusOK {
		t.Fatalf("post-refill query = %d, want 200", code)
	}
}

// TestServeQueueShed saturates the single execution slot with a blocked
// query; with QueueDepth 0 the next request must shed 503 immediately.
func TestServeQueueShed(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{MaxInFlight: 1, QueueDepth: 0})
	blocker := d.Instances[0].Name
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.FaultHook = func(site, detail string) {
		if site == SiteQuery && detail == blocker {
			once.Do(func() { close(entered) })
			<-release
		}
	}
	mustInit(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/access?inst=" + blocker)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("blocker got %d", resp.StatusCode)
			}
		}
		errc <- err
	}()
	<-entered // slot is now held

	resp, err := http.Get(ts.URL + "/v1/access?inst=" + d.Instances[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload query = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := s.reg().Counter("serve.shed.queue").Load(); got != 1 {
		t.Errorf("serve.shed.queue = %d, want 1", got)
	}
}

// TestServeQueryPanicRecovered: an injected handler panic answers 500 once,
// trips the breaker at its threshold, and never kills the server.
func TestServeQueryPanicRecovered(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	inj := faultinject.New().Add(&faultinject.Fault{
		Site: SiteQuery, Kind: faultinject.Panic, Note: "boom",
	})
	s.FaultHook = inj.SiteHook()
	mustInit(t, s)
	h := s.Handler()
	inst := d.Instances[0].Name

	for i := 0; i < 2; i++ {
		code, _, _ := get(t, h, "/v1/access?inst="+inst)
		if code != http.StatusInternalServerError {
			t.Fatalf("panicking query %d = %d, want 500", i, code)
		}
	}
	if s.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v after %d panics, want open", s.Breaker(), 2)
	}
	if code, _, _ := get(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker = %d, want 503", code)
	}
	if got := s.reg().Counter("serve.panics").Load(); got != 2 {
		t.Errorf("serve.panics = %d, want 2", got)
	}
}

// TestServeWarmRestart: a second server over the same design restores from
// the first one's snapshot without recomputing and answers identically.
func TestServeWarmRestart(t *testing.T) {
	d := serveDesign(t)
	snap := filepath.Join(t.TempDir(), "oracle.snap")

	s1 := newTestServer(t, d, Config{SnapshotPath: snap})
	mustInit(t, s1)
	if err := s1.WriteSnapshot(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, d, Config{SnapshotPath: snap})
	mustInit(t, s2)
	if s2.Source() != "snapshot" {
		t.Fatalf("second server source = %q, want snapshot", s2.Source())
	}
	if got := s2.reg().Counter("serve.restart.recompute").Load(); got != 0 {
		t.Fatalf("warm restart recomputed anyway (%d)", got)
	}
	if got := s2.reg().Counter("serve.restart.warm").Load(); got != 1 {
		t.Fatalf("serve.restart.warm = %d, want 1", got)
	}

	h1, h2 := s1.Handler(), s2.Handler()
	for _, inst := range d.Instances {
		_, r1, _ := queryInst(t, h1, inst.Name)
		_, r2, _ := queryInst(t, h2, inst.Name)
		r1.Source, r2.Source = "", "" // the only legitimate difference
		b1, _ := json.Marshal(r1)
		b2, _ := json.Marshal(r2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: answers differ after warm restart:\n%s\n%s", inst.Name, b1, b2)
		}
	}
}

// TestServeCorruptSnapshotFallsBack: all three corruption modes (truncation,
// bit flip, foreign file) must end in a successful recompute, not an error.
func TestServeCorruptSnapshotFallsBack(t *testing.T) {
	d := serveDesign(t)
	snap := filepath.Join(t.TempDir(), "oracle.snap")
	s1 := newTestServer(t, d, Config{SnapshotPath: snap})
	mustInit(t, s1)
	if err := s1.WriteSnapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string][]byte{
		"truncated": good[:len(good)/3],
		"bitflip":   append(append([]byte{}, good[:len(good)/2]...), append([]byte{good[len(good)/2] ^ 1}, good[len(good)/2+1:]...)...),
		"garbage":   []byte("not a snapshot at all"),
	}
	for name, data := range mutations {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(snap, data, 0o644); err != nil {
				t.Fatal(err)
			}
			s := newTestServer(t, d, Config{SnapshotPath: snap})
			mustInit(t, s)
			if s.Source() != "recompute" {
				t.Fatalf("source = %q, want recompute", s.Source())
			}
			if got := s.reg().Counter("serve.snapshot.corrupt").Load(); got == 0 {
				t.Error("serve.snapshot.corrupt not counted")
			}
			if code, resp, _ := queryInst(t, s.Handler(), d.Instances[0].Name); code != 200 || resp.Degraded {
				t.Fatalf("recomputed server unhealthy: %d %+v", code, resp)
			}
		})
	}
}

// TestServeSnapshotWriteRetry: a one-shot injected panic in the write path is
// absorbed by the retry policy and the snapshot still lands.
func TestServeSnapshotWriteRetry(t *testing.T) {
	d := serveDesign(t)
	snap := filepath.Join(t.TempDir(), "oracle.snap")
	s := newTestServer(t, d, Config{SnapshotPath: snap})
	inj := faultinject.New().Add(&faultinject.Fault{
		Site: SiteSnapshotWrite, Call: 1, Kind: faultinject.Panic, Note: "disk hiccup",
	})
	s.FaultHook = inj.SiteHook()
	mustInit(t, s)
	if err := s.WriteSnapshot(context.Background()); err != nil {
		t.Fatalf("write with transient fault failed: %v", err)
	}
	if inj.FiredCount() != 1 {
		t.Fatalf("fault fired %d times, want 1", inj.FiredCount())
	}
	if _, err := pao.ReadSnapshotFile(snap, d, pao.DefaultConfig()); err != nil {
		t.Fatalf("snapshot unreadable after retry: %v", err)
	}
}

// TestServeReadyFlips walks /readyz through the full lifecycle: not ready
// before Init, ready after, not ready while the breaker is open following a
// failing background re-analysis, ready again after a clean probe.
func TestServeReadyFlips(t *testing.T) {
	d := serveDesign(t)
	clock := time.Unix(5000, 0)
	var clockMu sync.Mutex
	s := newTestServer(t, d, Config{BreakerThreshold: 1, BreakerCooldown: 10 * time.Second})
	s.now = func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return clock }
	h := s.Handler()

	if code, _, _ := get(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-Init readyz = %d, want 503", code)
	}
	mustInit(t, s)
	if code, _, _ := get(t, h, "/readyz"); code != http.StatusOK {
		t.Fatalf("post-Init readyz = %d, want 200", code)
	}

	// Poison background re-analysis: every class panics, Health collects
	// errors, the breaker (threshold 1) trips open.
	inj := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteAnalyzeUnique, Kind: faultinject.Panic, Note: "poison",
	})
	s.PaoFaultHook = inj.SiteHook()
	req := httptest.NewRequest(http.MethodPost, "/v1/reanalyze", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("reanalyze = %d, want 202", rec.Code)
	}
	waitFor(t, func() bool { return s.Breaker() == BreakerOpen })
	if code, _, _ := get(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("readyz still ready with breaker open")
	}
	// The poisoned result must NOT have replaced the healthy one.
	if code, resp, _ := queryInst(t, h, d.Instances[0].Name); code != 200 || resp.Degraded {
		t.Fatalf("stale-but-valid result was replaced: %d %+v", code, resp)
	}

	// Breaker open: further re-analysis is rejected outright.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reanalyze", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("reanalyze with open breaker = %d, want 503", rec.Code)
	}

	// After the cooldown a clean probe closes the breaker again.
	clockMu.Lock()
	clock = clock.Add(11 * time.Second)
	clockMu.Unlock()
	s.PaoFaultHook = nil
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reanalyze", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("half-open probe = %d, want 202", rec.Code)
	}
	waitFor(t, func() bool { return s.Breaker() == BreakerClosed })
	if code, _, _ := get(t, h, "/readyz"); code != http.StatusOK {
		t.Fatal("readyz not ready after breaker closed")
	}
}

func TestServeHealthzAndMetricz(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{})
	mustInit(t, s)
	h := s.Handler()
	for i := 0; i < 3; i++ {
		queryInst(t, h, d.Instances[0].Name)
	}

	code, _, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var hz HealthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if hz.Status != "ok" || hz.Breaker != "closed" || hz.Source != "recompute" {
		t.Fatalf("bad healthz: %+v", hz)
	}
	if hz.P99MS < hz.P50MS || hz.P99MS == 0 {
		t.Fatalf("bad latency quantiles: %+v", hz)
	}

	code, _, body = get(t, h, "/metricz")
	if code != http.StatusOK || !strings.Contains(string(body), "serve.requests") {
		t.Fatalf("metricz = %d, missing serve.requests:\n%s", code, body)
	}

	code, _, body = get(t, h, "/v1/stats")
	if code != http.StatusOK || !strings.Contains(string(body), "\"stats\"") {
		t.Fatalf("stats = %d:\n%s", code, body)
	}
}

// TestServeStartShutdown exercises the real listener path end to end,
// including the final on-drain snapshot.
func TestServeStartShutdown(t *testing.T) {
	d := serveDesign(t)
	snap := filepath.Join(t.TempDir(), "oracle.snap")
	s := newTestServer(t, d, Config{Addr: "127.0.0.1:0", SnapshotPath: snap})
	mustInit(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz over TCP = %d", resp.StatusCode)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := pao.ReadSnapshotFile(snap, d, pao.DefaultConfig()); err != nil {
		t.Fatalf("no final snapshot after shutdown: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
