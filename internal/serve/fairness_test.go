package serve

// Fairness tests: per-tenant token buckets isolate rate limits, and the
// deficit-round-robin dequeue keeps one tenant's burst (or giant batch) from
// starving another tenant's steady queries.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTokenBucketTakeN(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	b := newTokenBucket(10, 5, now)

	if ok, _ := b.takeN(5); !ok {
		t.Fatal("full bucket must admit a burst-sized batch")
	}
	if ok, retry := b.takeN(1); ok {
		t.Fatal("drained bucket must refuse")
	} else if retry <= 0 {
		t.Fatalf("retry hint = %v, want > 0", retry)
	}
	clock = clock.Add(time.Second) // refills 10, capped at burst 5
	if ok, _ := b.takeN(5); !ok {
		t.Fatal("refilled bucket must admit")
	}
	// A batch larger than the burst can never be admitted; the hint must
	// still be finite.
	clock = clock.Add(time.Hour)
	if ok, retry := b.takeN(6); ok {
		t.Fatal("batch larger than burst must refuse")
	} else if retry <= 0 || retry > time.Minute {
		t.Fatalf("oversized-batch retry hint = %v, want a small positive bound", retry)
	}
}

func TestTenantBucketsIsolate(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{RatePerSec: 1, Burst: 2})
	clock := time.Unix(2000, 0)
	s.now = func() time.Time { return clock }
	mustInit(t, s)
	h := s.Handler()

	get := func(tenant, inst string) int {
		req := httptest.NewRequest(http.MethodGet, "/v1/access?inst="+inst, nil)
		req.Header.Set("X-Tenant-Id", tenant)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	inst := d.Instances[0].Name

	// Tenant "greedy" drains its bucket dry.
	for i := 0; i < 2; i++ {
		if code := get("greedy", inst); code != http.StatusOK {
			t.Fatalf("greedy query %d = %d, want 200", i, code)
		}
	}
	if code := get("greedy", inst); code != http.StatusTooManyRequests {
		t.Fatalf("drained greedy = %d, want 429", code)
	}
	// Tenant "steady" still has its own full bucket: isolation.
	for i := 0; i < 2; i++ {
		if code := get("steady", inst); code != http.StatusOK {
			t.Fatalf("steady query %d = %d after greedy drained: want 200 (bucket not isolated?)", i, code)
		}
	}
	// Shed accounting is per tenant.
	if got := s.tShed.With(d.Name, "greedy").Load(); got != 1 {
		t.Fatalf("greedy shed counter = %d, want 1", got)
	}
	if got := s.tShed.With(d.Name, "steady").Load(); got != 0 {
		t.Fatalf("steady shed counter = %d, want 0", got)
	}
	// A malformed tenant ID is a 400, not a metric-label injection.
	if code := get("bad/../tenant", inst); code != http.StatusBadRequest {
		t.Fatalf("bad tenant ID = %d, want 400", code)
	}
}

// grantOrder funnels the DRR grant sequence out of a saturated admission
// queue: the main goroutine holds the only slot, enqueues waiters in a known
// arrival order, then releases; each granted waiter records its tag and
// releases, cascading deterministically.
func grantOrder(t *testing.T, a *admission, tags []string, tenants []string, costs []int) []string {
	t.Helper()
	release, _, ok := a.acquire(context.Background(), "holder", 1)
	if !ok {
		t.Fatal("holder must get the free slot")
	}
	order := make(chan string, len(tags))
	var wg sync.WaitGroup
	for i := range tags {
		i := i
		before := a.queueDepth()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, ok := a.acquire(context.Background(), tenants[i], costs[i])
			if !ok {
				t.Errorf("waiter %s shed", tags[i])
				return
			}
			order <- tags[i]
			rel()
		}()
		waitFor(t, func() bool { return a.queueDepth() == before+1 })
	}
	release()
	wg.Wait()
	close(order)
	var got []string
	for tag := range order {
		got = append(got, tag)
	}
	return got
}

func TestFairDequeueAlternatesTenants(t *testing.T) {
	a := newAdmission(1, -1)
	// Arrival order: all of tenant a's burst first, then tenant b. A plain
	// FIFO would serve a1..a4 before b ever runs; DRR must alternate.
	got := grantOrder(t, a,
		[]string{"a1", "a2", "a3", "a4", "b1", "b2"},
		[]string{"a", "a", "a", "a", "b", "b"},
		[]int{1, 1, 1, 1, 1, 1})
	want := []string{"a1", "b1", "a2", "b2", "a3", "a4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("grant order = %v, want %v (DRR alternation)", got, want)
	}
}

func TestBatchCostCannotMonopolize(t *testing.T) {
	a := newAdmission(1, -1)
	// A cost-5 batch arrives first; five cost-1 singles from another tenant
	// queue behind it. The batch must wait out its deficit (5 visits) while
	// the singles interleave ahead of it.
	got := grantOrder(t, a,
		[]string{"batch", "s1", "s2", "s3", "s4", "s5"},
		[]string{"bulk", "steady", "steady", "steady", "steady", "steady"},
		[]int{5, 1, 1, 1, 1, 1})
	want := []string{"s1", "s2", "s3", "s4", "batch", "s5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("grant order = %v, want %v (batch charged per instance)", got, want)
	}
}

// TestFloodCannotStarveSteadyTenant is the fair-share acceptance test at the
// HTTP layer: with one execution slot, a 30-request flood from one tenant and
// 10 steady queries from another all queued, the steady tenant's requests
// must finish interleaved (within the first ~25 completions), not after the
// entire flood as FIFO would have it.
func TestFloodCannotStarveSteadyTenant(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{MaxInFlight: 1, QueueDepth: -1})
	mustInit(t, s)

	block := make(chan struct{})
	var once sync.Once
	s.FaultHook = func(site, detail string) {
		if site == SiteQuery {
			once.Do(func() { <-block }) // first query holds the slot
		}
	}
	h := s.Handler()
	inst := d.Instances[0].Name

	var mu sync.Mutex
	var completions []string
	var wg sync.WaitGroup
	fire := func(tenant string) {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/v1/access?inst="+inst, nil)
		req.Header.Set("X-Tenant-Id", tenant)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s query = %d, want 200", tenant, rec.Code)
		}
		mu.Lock()
		completions = append(completions, tenant)
		mu.Unlock()
	}

	// Plug the single slot, then queue the flood before the steady tenant so
	// FIFO order would maximally starve "steady".
	wg.Add(1)
	go fire("plug")
	waitFor(t, func() bool {
		return s.adm.queueDepth() == 0 && func() bool {
			s.adm.mu.Lock()
			defer s.adm.mu.Unlock()
			return s.adm.inflight == 1
		}()
	})
	const flood, steady = 30, 10
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go fire("flood")
	}
	waitFor(t, func() bool { return s.adm.queueDepth() == flood })
	for i := 0; i < steady; i++ {
		wg.Add(1)
		go fire("steady")
	}
	waitFor(t, func() bool { return s.adm.queueDepth() == flood+steady })
	close(block)
	wg.Wait()

	lastSteady := -1
	for i, tenant := range completions {
		if tenant == "steady" {
			lastSteady = i
		}
	}
	// Fair share puts the 10th steady grant around completion 20; allow
	// generous scheduling slack but reject FIFO starvation (index 40).
	if lastSteady < 0 || lastSteady > 32 {
		t.Fatalf("steady tenant's last completion at index %d of %d; flood starved it (fair share ~20)",
			lastSteady, len(completions))
	}
	if got := s.tAdmit.With(d.Name, "steady").Load(); got != steady {
		t.Fatalf("steady admitted = %d, want %d", got, steady)
	}
}
