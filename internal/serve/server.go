// Package serve is the resident pin-access-oracle server: it loads a design,
// runs (or restores from snapshot) the PAAF pipeline once, and then answers
// per-instance access-pattern queries over HTTP/JSON with production
// robustness semantics — the deployment shape of a library-verification
// service rather than a batch tool.
//
// Three layers of robustness:
//
//   - Admission control (admission.go): a token-bucket rate limiter and a
//     bounded wait queue in front of MaxInFlight execution slots shed
//     overload explicitly (429/503 + Retry-After) instead of letting latency
//     collapse for everyone.
//   - Graceful degradation: queries against classes quarantined in
//     Result.Health answer with best-effort fallback access points marked
//     "degraded": true — never a 500; a circuit breaker (breaker.go) stops
//     re-analysis after repeated panics; background re-analysis swaps the
//     result via an atomic copy-on-write pointer, so readers never block on
//     writers and keep serving the stale-but-valid oracle meanwhile.
//   - Crash safety: the analysis Result persists as a versioned, checksummed
//     snapshot (internal/pao/snapshot.go) written atomically on a timer and
//     on drain; warm restart validates checksum + design hash and falls back
//     to a full recompute on any corruption or mismatch.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/telemetry"
)

// Fault-hook site names (test-only, nil hooks in production — the same
// convention as pao.Site*). internal/faultinject arms these to prove the
// breaker, shed and snapshot-retry paths deterministically.
const (
	// SiteQuery fires per admitted access query with the instance name as
	// detail; Delay faults occupy an execution slot (shed tests), Panic
	// faults exercise the recover-to-500 + breaker path.
	SiteQuery = "serve.query"
	// SiteSnapshotWrite fires before each snapshot write attempt, inside the
	// retry loop: a one-shot panic proves the write path retries.
	SiteSnapshotWrite = "serve.snapshot.write"
	// SiteSnapshotLoad fires before each warm-restart load attempt.
	SiteSnapshotLoad = "serve.snapshot.load"
	// SiteReanalyze fires at the start of each background re-analysis.
	SiteReanalyze = "serve.reanalyze"
)

// Config tunes the server. The zero value is usable for tests: unlimited
// rate, NumCPU in-flight slots, an unbounded queue and no snapshotting.
type Config struct {
	// Addr is the listen address for Start ("127.0.0.1:0" picks a free port).
	Addr string
	// MaxInFlight bounds concurrently executing queries; < 1 means NumCPU.
	MaxInFlight int
	// QueueDepth bounds requests waiting for a slot; 0 sheds immediately
	// when all slots are busy, < 0 waits unbounded.
	QueueDepth int
	// RequestTimeout is the per-request deadline covering queue wait and
	// execution; 0 disables it.
	RequestTimeout time.Duration
	// RatePerSec and Burst configure the token-bucket limiter; RatePerSec
	// <= 0 disables rate limiting.
	RatePerSec float64
	Burst      int
	// SnapshotPath enables crash-safe persistence; empty disables it.
	SnapshotPath string
	// SnapshotInterval adds timer-driven snapshots on top of the final
	// on-drain write; 0 disables the timer.
	SnapshotInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that trips the
	// re-analysis circuit breaker (< 1 means 1); BreakerCooldown is how long
	// it stays open before admitting a probe (<= 0 means 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DrainTimeout caps Shutdown's wait for in-flight requests (0 means 10s).
	DrainTimeout time.Duration
	// TraceSample is the fraction of admitted queries that record a full
	// span-tree exemplar into the slow-query log (0 disables tracing, 1
	// traces every query). Sampling is deterministic, not random.
	TraceSample float64
	// SlowLogSize bounds the /debug/slowlog ring (0 means 128).
	SlowLogSize int
	// SlowThreshold is the latency at or above which a query enters the slow
	// log even when unsampled (0 means 100ms).
	SlowThreshold time.Duration
	// MaxBatch caps the instances per /v1/access/batch request (0 means 256).
	MaxBatch int
}

// state is the immutable serving snapshot readers load atomically. Swapping
// the pointer is the only write, so queries never take a lock.
type state struct {
	res    *pao.Result
	source string // "snapshot", "recompute" or "eco"
	// ecoDirty, when non-nil, marks the window between an ECO's design
	// mutation and its merged result: the listed instance IDs have a stale
	// class binding in res and answer with degraded fallbacks until the
	// post-ECO state swaps in. Everything else still answers exactly.
	ecoDirty map[int]bool
}

// Server is the resident oracle. Create with New, then Init (warm restart or
// first compute), then Start/Shutdown — or drive Handler() directly in tests.
type Server struct {
	cfg    Config
	design *db.Design
	paoCfg pao.Config

	// Obs receives the server's metrics; defaults to a private observer.
	// Set before Init.
	Obs *obs.Observer
	// Logger receives structured operational log lines (JSON, one per line);
	// nil (the default) discards them. Set before Init.
	Logger *telemetry.Logger

	// FaultHook, when set before Init, fires at the Site* points above.
	// Test-only; nil in production.
	FaultHook func(site, detail string)
	// PaoFaultHook/DRCFaultHook are installed on every analyzer the server
	// creates, letting tests quarantine chosen classes. Test-only.
	PaoFaultHook func(site, detail string)
	DRCFaultHook func(site, detail string) []drc.Violation

	now func() time.Time

	curState    atomic.Pointer[state]
	adm         *admission
	brk         *breaker
	reanalyzing atomic.Bool
	draining    atomic.Bool

	// tenantBuckets holds one token bucket per tenant (lazily created with
	// the configured rate), so one tenant draining its budget never rate-
	// limits another. Nil buckets (RatePerSec <= 0) admit everything.
	tenantMu      sync.Mutex
	tenantBuckets map[string]*tokenBucket

	// ecoMu serializes everything that needs a quiescent design for a long
	// stretch: ECO transactions, background re-analysis and snapshot writes.
	// Queries never take it. designMu guards the design database itself:
	// queries hold the read side, and an ECO holds the write side only for
	// the brief Begin mutation — never across re-analysis.
	ecoMu    sync.Mutex
	designMu sync.RWMutex
	eco      *pao.ECOSession // guarded by ecoMu; rebuilt when the result moved

	// lastSnapshotNS is the unix-nano time of the newest on-disk snapshot
	// (0 = none); snapMu serializes writers.
	lastSnapshotNS atomic.Int64
	snapMu         chan struct{} // 1-slot semaphore: context-aware mutex

	// Labeled Prometheus families (exposed at /metrics alongside the flat
	// obs registry) and the per-query trace/slow-log machinery.
	prom       *telemetry.Registry
	slow       *telemetry.SlowLog
	sampler    *telemetry.Sampler
	qTotal     *telemetry.CounterVec   // pao_queries_total{design,status}
	qSeconds   *telemetry.HistogramVec // pao_query_seconds{design}
	stepSecs   *telemetry.HistogramVec // pao_step_seconds{design,step}
	apGauge    *telemetry.GaugeVec     // pao_access_points{design,layer}
	tAdmit     *telemetry.CounterVec   // serve_tenant_admitted_total{design,tenant}
	tShed      *telemetry.CounterVec   // serve_tenant_shed_total{design,tenant}
	designHash string

	ln       net.Listener
	http     *http.Server
	bgCtx    context.Context
	bgCancel context.CancelFunc
}

// New builds a server over a loaded design. cfg zero values select defaults
// documented on Config.
func New(d *db.Design, paoCfg pao.Config, cfg Config) *Server {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = runtime.NumCPU()
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 100 * time.Millisecond
	}
	s := &Server{
		cfg:    cfg,
		design: d,
		paoCfg: paoCfg,
		Obs:    obs.NewObserver("paoserve"),
		now:    time.Now,
		snapMu: make(chan struct{}, 1),
	}
	s.adm = newAdmission(cfg.MaxInFlight, cfg.QueueDepth)
	s.tenantBuckets = make(map[string]*tokenBucket)
	s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, func() time.Time { return s.now() })
	s.bgCtx, s.bgCancel = context.WithCancel(context.Background())

	s.prom = telemetry.NewRegistry()
	s.slow = telemetry.NewSlowLog(cfg.SlowLogSize, cfg.SlowThreshold)
	s.sampler = telemetry.NewSampler(cfg.TraceSample)
	s.qTotal = s.prom.Counter("pao_queries_total",
		"Access queries answered by the oracle, by outcome.", "design", "status")
	s.qSeconds = s.prom.Histogram("pao_query_seconds",
		"End-to-end latency of admitted access queries.", "design")
	s.stepSecs = s.prom.Histogram("pao_step_seconds",
		"Pipeline step durations of each analysis run served.", "design", "step")
	s.apGauge = s.prom.Gauge("pao_access_points",
		"Access points in the current serving result, by metal layer.", "design", "layer")
	s.tAdmit = s.prom.Counter("serve_tenant_admitted_total",
		"Queries admitted past rate limiting and the fair queue, by tenant.", "design", "tenant")
	s.tShed = s.prom.Counter("serve_tenant_shed_total",
		"Queries shed by rate limiting or queue overflow, by tenant.", "design", "tenant")
	s.designHash = pao.DesignHash(d)
	return s
}

// tenantBucket returns (lazily creating) the tenant's private token bucket;
// nil when rate limiting is off.
func (s *Server) tenantBucket(tenant string) *tokenBucket {
	if s.cfg.RatePerSec <= 0 {
		return nil
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	b, ok := s.tenantBuckets[tenant]
	if !ok {
		b = newTokenBucket(s.cfg.RatePerSec, s.cfg.Burst, func() time.Time { return s.now() })
		s.tenantBuckets[tenant] = b
	}
	return b
}

func (s *Server) reg() *obs.Registry { return s.Obs.Reg() }

// Source reports where the serving state came from ("snapshot", "recompute",
// or "" before Init).
func (s *Server) Source() string {
	if st := s.curState.Load(); st != nil {
		return st.source
	}
	return ""
}

// Result returns the current serving result (nil before Init). The returned
// Result is immutable shared state: read only.
func (s *Server) Result() *pao.Result {
	if st := s.curState.Load(); st != nil {
		return st.res
	}
	return nil
}

// Breaker returns the circuit breaker's current state.
func (s *Server) Breaker() BreakerState { return s.brk.current() }

func (s *Server) swap(res *pao.Result, source string) {
	s.curState.Store(&state{res: res, source: source})
	s.publishGauges()
	s.publishResultMetrics(res)
}

// publishResultMetrics folds the swapped-in result into the labeled families:
// per-step pipeline durations and per-layer access point counts. Called on
// every swap, so reanalyses accumulate into the same histogram series.
func (s *Server) publishResultMetrics(res *pao.Result) {
	d := s.design.Name
	st := res.Stats.Steps
	for _, step := range []struct {
		name string
		dur  time.Duration
	}{
		{"step1", st.Step1},
		{"step2", st.Step2},
		{"step12_wall", st.Step12Wall},
		{"step3", st.Step3},
		{"failed_pins", st.FailedPins},
		{"total", st.Total},
	} {
		s.stepSecs.With(d, step.name).Observe(step.dur)
	}
	byLayer := make(map[int]int)
	for _, ua := range res.Unique {
		n := len(ua.UI.Insts)
		for _, pa := range ua.Pins {
			for _, ap := range pa.APs {
				byLayer[ap.Layer] += n
			}
		}
	}
	for layer, n := range byLayer {
		s.apGauge.With(d, "M"+strconv.Itoa(layer)).Set(float64(n))
	}
}

func (s *Server) publishGauges() {
	reg := s.reg()
	reg.Gauge("serve.breaker.state").Set(float64(s.brk.current()))
	reg.Gauge("serve.queue.depth").Set(float64(s.adm.queueDepth()))
	if last := s.lastSnapshotNS.Load(); last > 0 {
		reg.Gauge("serve.snapshot.age_seconds").Set(s.now().Sub(time.Unix(0, last)).Seconds())
	}
}

// compute runs the full pipeline under ctx with the test hooks installed.
func (s *Server) compute(ctx context.Context) (*pao.Result, error) {
	a := pao.NewAnalyzer(s.design, s.paoCfg)
	a.Obs = s.Obs
	a.FaultHook = s.PaoFaultHook
	a.DRCFaultHook = s.DRCFaultHook
	res, err := a.RunContext(ctx)
	a.PublishObs()
	return res, err
}

// loadRetry is the warm-restart-load policy: a couple of quick retries for
// transient I/O, giving up immediately on corruption, mismatch or a missing
// file (all permanent).
func loadRetry() cliutil.RetryPolicy {
	return cliutil.RetryPolicy{
		Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.5,
		RetryIf: func(err error) bool {
			return !pao.SnapshotPermanent(err) && !errors.Is(err, fs.ErrNotExist)
		},
	}
}

// writeRetry is the snapshot-write policy: persistence is worth a few
// attempts with backoff (disk pressure, transient EIO), but never blocks
// serving — writers run outside the query path.
func writeRetry() cliutil.RetryPolicy {
	return cliutil.RetryPolicy{
		Attempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5,
	}
}

// Init produces the first serving state: warm restart from the snapshot when
// it validates, full recompute otherwise. The recovery path taken is logged
// and counted (serve.restart.warm / serve.restart.recompute /
// serve.snapshot.corrupt).
func (s *Server) Init(ctx context.Context) error {
	reg := s.reg()
	if path := s.cfg.SnapshotPath; path != "" {
		var res *pao.Result
		err := cliutil.Retry(ctx, loadRetry(), func() error {
			if h := s.FaultHook; h != nil {
				h(SiteSnapshotLoad, path)
			}
			r, rerr := pao.ReadSnapshotFile(path, s.design, s.paoCfg)
			if rerr != nil {
				return rerr
			}
			res = r
			return nil
		})
		switch {
		case err == nil:
			s.lastSnapshotNS.Store(s.now().UnixNano())
			s.swap(res, "snapshot")
			reg.Counter("serve.restart.warm").Inc()
			s.Logger.Info("warm restart from snapshot",
				telemetry.F("classes", len(res.Unique)), telemetry.F("path", path))
			return nil
		case errors.Is(err, fs.ErrNotExist):
			s.Logger.Info("no snapshot, computing", telemetry.F("path", path))
		default:
			reg.Counter("serve.snapshot.corrupt").Inc()
			s.Logger.Warn("snapshot rejected, falling back to recompute",
				telemetry.F("path", path), telemetry.F("err", err))
		}
	}
	res, err := s.compute(ctx)
	if err != nil {
		return err
	}
	s.swap(res, "recompute")
	reg.Counter("serve.restart.recompute").Inc()
	s.Logger.Info("cold start analysis complete",
		telemetry.F("classes", len(res.Unique)), telemetry.F("health", res.Health))
	return nil
}

// WriteSnapshot persists the current serving state with retry. Injected
// panics at SiteSnapshotWrite convert to retryable errors, proving the
// cliutil.Retry path.
func (s *Server) WriteSnapshot(ctx context.Context) error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	// A snapshot pairs the design with the result; taking ecoMu keeps an ECO
	// from mutating the design between the state load and the file write.
	s.ecoMu.Lock()
	defer s.ecoMu.Unlock()
	st := s.curState.Load()
	if st == nil {
		return nil
	}
	select {
	case s.snapMu <- struct{}{}:
		defer func() { <-s.snapMu }()
	case <-ctx.Done():
		return ctx.Err()
	}
	reg := s.reg()
	err := cliutil.Retry(ctx, writeRetry(), func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("snapshot write panic: %v", rec)
			}
		}()
		if h := s.FaultHook; h != nil {
			h(SiteSnapshotWrite, s.cfg.SnapshotPath)
		}
		return pao.WriteSnapshotFile(s.cfg.SnapshotPath, s.design, s.paoCfg, st.res)
	})
	if err != nil {
		reg.Counter("serve.snapshot.write_errors").Inc()
		s.Logger.Error("snapshot write failed",
			telemetry.F("path", s.cfg.SnapshotPath), telemetry.F("err", err))
		return err
	}
	s.lastSnapshotNS.Store(s.now().UnixNano())
	reg.Counter("serve.snapshot.writes").Inc()
	s.publishGauges()
	return nil
}

// Evict releases the serving result after persisting it: the snapshot (when
// a path is configured) is written crash-safely with retry, then the atomic
// state pointer drops to nil so the Result becomes collectable. The design
// database itself stays resident — a later Init warm-restarts from the
// snapshot (or recomputes) without re-parsing inputs. The caller must ensure
// no queries are dispatched to this server between Evict and the next Init
// (the Manager holds the design's gate write-locked across it).
func (s *Server) Evict(ctx context.Context) error {
	if err := s.WriteSnapshot(ctx); err != nil {
		return err
	}
	s.ecoMu.Lock()
	defer s.ecoMu.Unlock()
	s.eco = nil
	s.curState.Store(nil)
	return nil
}

// TriggerReanalyze starts one background re-analysis if the breaker admits
// it and none is running. The fresh result swaps in atomically only when it
// is at least as healthy as what it replaces; otherwise the server keeps
// serving the stale-but-valid oracle.
func (s *Server) TriggerReanalyze() (accepted bool, reason string) {
	reg := s.reg()
	if !s.brk.allow() {
		reg.Counter("serve.reanalyze.rejected").Inc()
		return false, "circuit breaker open"
	}
	if !s.reanalyzing.CompareAndSwap(false, true) {
		return false, "re-analysis already running"
	}
	go func() {
		defer s.reanalyzing.Store(false)
		s.reanalyze(s.bgCtx)
	}()
	return true, ""
}

func (s *Server) reanalyze(ctx context.Context) {
	reg := s.reg()
	defer func() {
		if rec := recover(); rec != nil {
			reg.Counter("serve.panics").Inc()
			s.brk.failure()
			s.publishGauges()
			s.Logger.Error("re-analysis panic",
				telemetry.F("breaker", s.brk.current()), telemetry.F("panic", fmt.Sprint(rec)))
		}
	}()
	if h := s.FaultHook; h != nil {
		h(SiteReanalyze, "")
	}
	// Re-analysis reads the whole design; hold ecoMu (not designMu) so an
	// ECO can't mutate it mid-run while queries stay unblocked.
	s.ecoMu.Lock()
	defer s.ecoMu.Unlock()
	res, err := s.compute(ctx)
	switch {
	case err != nil:
		reg.Counter("serve.reanalyze.failed").Inc()
		s.brk.failure()
		s.Logger.Warn("re-analysis aborted", telemetry.F("err", err))
	case len(res.Health.Errors()) > 0:
		reg.Counter("serve.reanalyze.failed").Inc()
		s.brk.failure()
		if old := s.curState.Load(); old == nil {
			s.swap(res, "recompute") // degraded beats nothing
		} else {
			s.Logger.Warn("re-analysis degraded, keeping stale result",
				telemetry.F("health", res.Health))
		}
	default:
		reg.Counter("serve.reanalyze.ok").Inc()
		s.brk.success()
		s.swap(res, "recompute")
	}
	s.publishGauges()
}

// Ready reports whether the server should receive traffic, with the reason
// when not.
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if s.curState.Load() == nil {
		return false, "analysis not loaded"
	}
	if s.brk.current() == BreakerOpen {
		return false, "circuit breaker open"
	}
	return true, ""
}

// Start listens on cfg.Addr and serves in the background; Addr() reports the
// bound address. The snapshot timer starts here too.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.Logger.Error("serve error", telemetry.F("err", err))
		}
	}()
	if s.cfg.SnapshotInterval > 0 && s.cfg.SnapshotPath != "" {
		go s.snapshotLoop()
	}
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) snapshotLoop() {
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.WriteSnapshot(s.bgCtx) // logged and counted inside
		case <-s.bgCtx.Done():
			return
		}
	}
}

// Shutdown drains in-flight requests (bounded by DrainTimeout), then writes
// the final snapshot — SIGTERM becomes a clean handoff to the next process.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.bgCancel()
	var first error
	if s.http != nil {
		dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
		if err := s.http.Shutdown(dctx); err != nil {
			first = err
		}
	}
	// The final snapshot must not inherit the drain deadline's cancellation
	// cause if requests drained cleanly; give it its own bounded context.
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := s.WriteSnapshot(sctx); err != nil && first == nil {
		first = err
	}
	return first
}

// Handler returns the full endpoint mux (admission applied per route).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/version", s.handleVersion)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/access", s.admitted("access", s.handleAccess))
	mux.HandleFunc("/v1/access/batch", s.admittedCost("batch", s.batchCost, s.handleBatch))
	mux.HandleFunc("/v1/access/explain", s.admitted("explain", s.handleExplain))
	mux.HandleFunc("/v1/reanalyze", s.handleReanalyze)
	mux.HandleFunc("/v1/eco", s.admitted("eco", s.handleECO))
	return mux
}

// DesignHash returns the hash of the design as currently placed (ECOs update
// it).
func (s *Server) DesignHash() string {
	s.designMu.RLock()
	defer s.designMu.RUnlock()
	return s.designHash
}

// statusWriter captures the response status code for query accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusLabel collapses an HTTP status into the low-cardinality label used by
// pao_queries_total.
func statusLabel(code int) string {
	switch {
	case code < 300:
		return "ok"
	case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
		return "shed"
	case code < 500:
		return "client_error"
	default:
		return "error"
	}
}

// tenantOf extracts the request's tenant ID from the X-Tenant-Id header or
// the ?tenant= query parameter; requests without one share the "default"
// tenant. Tenant IDs feed metric labels and map keys, so they pass the same
// charset/length validation as design IDs.
func tenantOf(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant-Id")
	if t == "" {
		t = r.URL.Query().Get("tenant")
	}
	if t == "" {
		return "default", nil
	}
	if err := ValidateID(t); err != nil {
		return "", fmt.Errorf("bad tenant ID: %w", err)
	}
	return t, nil
}

// admitted wraps a query handler with the full admission pipeline: per-tenant
// rate limit (429), fair bounded queue + per-request deadline (503), panic
// recovery (500 + breaker), latency accounting, and per-query telemetry —
// every request gets a correlation ID (propagated from X-Correlation-Id or
// newly minted, echoed back on the response), sampled requests carry a span
// tree through ctx, and slow or sampled queries land in /debug/slowlog.
func (s *Server) admitted(op string, h http.HandlerFunc) http.HandlerFunc {
	return s.admittedCost(op, nil, h)
}

// admittedCost is admitted with a pluggable admission cost: costFn (when
// non-nil) runs before rate limiting, may rewrite the request (e.g. stash a
// parsed batch body in its context), and returns the number of instances the
// request will answer — the charge taken from the tenant's token bucket and
// the weight used by the fair dequeue. Errors from costFn answer 400 (or the
// error's own status for *admitError).
func (s *Server) admittedCost(op string, costFn func(r *http.Request) (*http.Request, int, error), h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg := s.reg()
		reg.Counter("serve.requests").Inc()
		t0 := s.now()
		corr := r.Header.Get("X-Correlation-Id")
		if corr == "" {
			corr = telemetry.NewCorrID()
		}
		w.Header().Set("X-Correlation-Id", corr)
		tenant, terr := tenantOf(r)
		if terr != nil {
			s.qTotal.With(s.design.Name, "client_error").Inc()
			http.Error(w, terr.Error(), http.StatusBadRequest)
			return
		}
		cost := 1
		if costFn != nil {
			r2, n, err := costFn(r)
			if err != nil {
				s.qTotal.With(s.design.Name, "client_error").Inc()
				code := http.StatusBadRequest
				var ae *admitError
				if errors.As(err, &ae) {
					code = ae.code
				}
				http.Error(w, err.Error(), code)
				return
			}
			r, cost = r2, n
		}
		if ok, retry := s.tenantBucket(tenant).takeN(cost); !ok {
			reg.Counter("serve.shed.rate").Inc()
			s.qTotal.With(s.design.Name, "shed").Inc()
			s.tShed.With(s.design.Name, tenant).Inc()
			w.Header().Set("Retry-After", retryAfterSecs(retry))
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		ctx := telemetry.WithCorrID(r.Context(), corr)
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		release, _, ok := s.adm.acquire(ctx, tenant, cost)
		reg.Gauge("serve.queue.depth").Set(float64(s.adm.queueDepth()))
		if !ok {
			if ctx.Err() != nil {
				reg.Counter("serve.shed.deadline").Inc()
			} else {
				reg.Counter("serve.shed.queue").Inc()
			}
			s.qTotal.With(s.design.Name, "shed").Inc()
			s.tShed.With(s.design.Name, tenant).Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server overloaded, request shed", http.StatusServiceUnavailable)
			return
		}
		defer release()
		s.tAdmit.With(s.design.Name, tenant).Inc()
		var root *obs.Span
		if s.sampler.Sample() {
			root = obs.NewTrace("serve." + op).Root
			ctx = telemetry.WithSpan(ctx, root)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			d := s.now().Sub(t0)
			reg.Histogram("serve.latency").Observe(d)
			if rec := recover(); rec != nil {
				reg.Counter("serve.panics").Inc()
				s.brk.failure()
				s.publishGauges()
				s.Logger.ErrorCtx(ctx, "query panic recovered",
					telemetry.F("breaker", s.brk.current()), telemetry.F("panic", fmt.Sprint(rec)))
				http.Error(sw, "internal error (recovered)", http.StatusInternalServerError)
			}
			s.qTotal.With(s.design.Name, statusLabel(sw.code)).Inc()
			s.qSeconds.With(s.design.Name).Observe(d)
			entry := telemetry.Entry{
				CorrID: corr, Op: op, Detail: r.URL.RawQuery, Status: sw.code,
				Start: t0, DurMS: float64(d) / 1e6,
			}
			if root != nil {
				root.End()
				entry.Trace = root.Export()
			}
			s.slow.Observe(entry, d)
		}()
		h(sw, r.WithContext(ctx))
	}
}

// admitError lets a costFn pick the HTTP status of its rejection (413 for an
// oversized body, 405 for a bad method) instead of the default 400.
type admitError struct {
	code int
	msg  string
}

func (e *admitError) Error() string { return e.msg }

func retryAfterSecs(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
