package serve

// POST /v1/eco: apply a placement ECO to the resident design and repair the
// serving result incrementally (pao.ECOSession) instead of re-running the
// whole pipeline. The endpoint sits behind the standard admission pipeline
// (rate limit, slots, panic recovery + breaker) like any other query.
//
// Concurrency contract: the design database is write-locked only for the
// brief Begin mutation; during the (longer) Commit re-analysis the server
// keeps answering from the pre-ECO result, with instances whose class
// binding went stale answering degraded fallbacks (state.ecoDirty). The
// merged result swaps in atomically, so readers never see a torn state.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/telemetry"
)

// ECOOpRequest is one placement edit on the wire.
type ECOOpRequest struct {
	Op     string `json:"op"` // move | swap | insert | delete
	Inst   string `json:"inst"`
	Other  string `json:"other,omitempty"`  // swap partner
	X      *int64 `json:"x,omitempty"`      // move/insert position
	Y      *int64 `json:"y,omitempty"`      //
	Orient string `json:"orient,omitempty"` // insert orientation, default "N"
	Master string `json:"master,omitempty"` // insert master cell
}

// ECORequest is the /v1/eco body.
type ECORequest struct {
	Ops []ECOOpRequest `json:"ops"`
}

// ECOResponse reports what the committed ECO re-computed.
type ECOResponse struct {
	Status     string         `json:"status"` // "applied"
	Report     *pao.ECOReport `json:"report"`
	DesignHash string         `json:"design_hash"`
}

// parseECOOps converts the wire ops into engine ops, rejecting structurally
// bad requests before anything touches the design.
func parseECOOps(reqs []ECOOpRequest) ([]pao.ECOOp, error) {
	ops := make([]pao.ECOOp, 0, len(reqs))
	needXY := func(i int, r ECOOpRequest) (geom.Point, error) {
		if r.X == nil || r.Y == nil {
			return geom.Point{}, fmt.Errorf("op %d: %s requires x and y", i, r.Op)
		}
		return geom.Pt(*r.X, *r.Y), nil
	}
	for i, r := range reqs {
		if r.Inst == "" {
			return nil, fmt.Errorf("op %d: missing inst", i)
		}
		switch r.Op {
		case "move":
			to, err := needXY(i, r)
			if err != nil {
				return nil, err
			}
			ops = append(ops, pao.ECOOp{Kind: pao.ECOMove, Inst: r.Inst, To: to})
		case "swap":
			if r.Other == "" {
				return nil, fmt.Errorf("op %d: swap requires other", i)
			}
			ops = append(ops, pao.ECOOp{Kind: pao.ECOSwap, Inst: r.Inst, Other: r.Other})
		case "insert":
			to, err := needXY(i, r)
			if err != nil {
				return nil, err
			}
			if r.Master == "" {
				return nil, fmt.Errorf("op %d: insert requires master", i)
			}
			orient := geom.OrientN
			if r.Orient != "" {
				o, err := geom.ParseOrient(r.Orient)
				if err != nil {
					return nil, fmt.Errorf("op %d: %v", i, err)
				}
				orient = o
			}
			ops = append(ops, pao.ECOOp{Kind: pao.ECOInsert, Inst: r.Inst, Master: r.Master, To: to, Orient: orient})
		case "delete":
			ops = append(ops, pao.ECOOp{Kind: pao.ECODelete, Inst: r.Inst})
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, r.Op)
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty ECO script")
	}
	return ops, nil
}

// ecoSession returns the resident ECO session, rebuilding it when the serving
// result moved underneath it (re-analysis, warm restart). Caller holds ecoMu.
func (s *Server) ecoSession() *pao.ECOSession {
	cur := s.Result()
	if s.eco != nil && s.eco.Result() == cur {
		return s.eco
	}
	a := pao.NewAnalyzer(s.design, s.paoCfg)
	a.Obs = s.Obs
	a.FaultHook = s.PaoFaultHook
	a.DRCFaultHook = s.DRCFaultHook
	s.eco = pao.NewECOSession(a, cur)
	return s.eco
}

// handleECO applies one ECO batch. Wrapped by admitted().
func (s *Server) handleECO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.curState.Load() == nil {
		http.Error(w, "analysis not loaded", http.StatusServiceUnavailable)
		return
	}
	var req ECORequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ops, err := parseECOOps(req.Ops)
	if err != nil {
		s.reg().Counter("serve.eco.rejected").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.ecoMu.Lock()
	defer s.ecoMu.Unlock()
	// A panic mid-transaction leaves the session unusable (design mutated,
	// result not merged): drop it so the next /v1/reanalyze + ECO recovers,
	// and let admitted() turn the panic into a 500 + breaker failure.
	defer func() {
		if rec := recover(); rec != nil {
			s.eco = nil
			s.reg().Counter("serve.eco.panics").Inc()
			panic(rec)
		}
	}()
	sess := s.ecoSession()

	// Begin mutates the design: exclude readers, but only for this window.
	s.designMu.Lock()
	txn, err := sess.Begin(ops)
	if err != nil {
		s.designMu.Unlock()
		s.reg().Counter("serve.eco.rejected").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Interim window: keep serving the pre-ECO result, degrading only the
	// instances whose class binding the ECO invalidated.
	cur := s.curState.Load()
	s.curState.Store(&state{res: cur.res, source: cur.source, ecoDirty: txn.DirtyInstances()})
	s.designMu.Unlock()

	res, rep := txn.Commit()

	s.designMu.Lock()
	s.designHash = pao.DesignHash(s.design)
	hash := s.designHash
	s.designMu.Unlock()
	s.swap(res, "eco")

	reg := s.reg()
	reg.Counter("serve.eco.applied").Inc()
	reg.Counter("serve.eco.ops").Add(int64(rep.Ops))
	s.Logger.InfoCtx(r.Context(), "eco applied",
		telemetry.F("ops", rep.Ops),
		telemetry.F("reanalyzed_classes", rep.ReanalyzedClasses),
		telemetry.F("total_classes", rep.TotalClasses),
		telemetry.F("dirty_clusters", rep.DirtyClusters),
		telemetry.F("total_clusters", rep.TotalClusters))
	writeJSON(w, http.StatusOK, ECOResponse{Status: "applied", Report: rep, DesignHash: hash})
}
