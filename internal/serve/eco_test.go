package serve

// ECO endpoint tests, including the concurrency contract: /v1/eco runs while
// access queries and metrics scrapes keep flowing, the copy-on-write swap is
// never observed torn, and degraded answers appear only for instances the ECO
// genuinely invalidated. Run with -race (the eco-difftest CI target does).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/pao"
)

func postECO(t *testing.T, h http.Handler, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/eco", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestServeECOApplyAndQuery(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{})
	mustInit(t, s)
	h := s.Handler()
	hashBefore := s.DesignHash()

	mover := d.Instances[0]
	victim := d.Instances[1]
	master := d.Instances[2].Master.Name
	body := fmt.Sprintf(`{"ops":[
		{"op":"move","inst":%q,"x":%d,"y":%d},
		{"op":"insert","inst":"eco_new","master":%q,"x":%d,"y":%d,"orient":"N"},
		{"op":"delete","inst":%q}
	]}`, mover.Name, mover.Pos.X+70, mover.Pos.Y,
		master, mover.Pos.X+7000, mover.Pos.Y, victim.Name)

	code, resp := postECO(t, h, body)
	if code != http.StatusOK {
		t.Fatalf("eco status %d: %s", code, resp)
	}
	var er ECOResponse
	if err := json.Unmarshal(resp, &er); err != nil {
		t.Fatalf("bad eco JSON: %v\n%s", err, resp)
	}
	if er.Status != "applied" || er.Report == nil {
		t.Fatalf("eco response %+v", er)
	}
	if er.Report.Ops != 3 || er.Report.DeletedInstances != 1 {
		t.Errorf("report %+v", er.Report)
	}
	if er.Report.ReanalyzedClasses >= er.Report.TotalClasses {
		t.Errorf("reanalyzed %d of %d classes on a 3-op ECO; scoping is broken",
			er.Report.ReanalyzedClasses, er.Report.TotalClasses)
	}
	if s.Source() != "eco" {
		t.Errorf("source = %q, want eco", s.Source())
	}
	if er.DesignHash == hashBefore || s.DesignHash() == hashBefore {
		t.Error("design hash did not change after the ECO")
	}

	// The re-placed and inserted instances answer normally post-commit.
	for _, name := range []string{mover.Name, "eco_new"} {
		code, qr, body := queryInst(t, h, name)
		if code != http.StatusOK {
			t.Fatalf("query %s: %d %s", name, code, body)
		}
		if qr.EcoPending {
			t.Errorf("query %s still eco_pending after commit", name)
		}
		if qr.Source != "eco" {
			t.Errorf("query %s source = %q, want eco", name, qr.Source)
		}
	}
	if code, _, _ := queryInst(t, h, victim.Name); code != http.StatusNotFound {
		t.Errorf("deleted instance query = %d, want 404", code)
	}

	// The merged result matches a fresh full analysis of the mutated design.
	fresh := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	if got, want := s.Result().Stats.Counts(), fresh.Stats.Counts(); got != want {
		t.Errorf("served stats diverge from fresh analysis:\nserved %+v\nfresh  %+v", got, want)
	}
}

func TestServeECORejectsBadScripts(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{})
	mustInit(t, s)
	h := s.Handler()

	cases := []struct {
		name, body string
	}{
		{"not json", "{"},
		{"empty ops", `{"ops":[]}`},
		{"unknown op", `{"ops":[{"op":"teleport","inst":"a"}]}`},
		{"move missing coords", fmt.Sprintf(`{"ops":[{"op":"move","inst":%q}]}`, d.Instances[0].Name)},
		{"unknown instance", `{"ops":[{"op":"delete","inst":"no_such"}]}`},
		{"bad orient", fmt.Sprintf(`{"ops":[{"op":"insert","inst":"n","master":%q,"x":0,"y":0,"orient":"Q"}]}`, d.Instances[0].Master.Name)},
	}
	hash := s.DesignHash()
	for _, tc := range cases {
		if code, body := postECO(t, h, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
		}
	}
	if req := httptest.NewRequest(http.MethodGet, "/v1/eco", nil); true {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/eco = %d, want 405", rec.Code)
		}
	}
	if s.DesignHash() != hash {
		t.Error("rejected scripts changed the design hash")
	}
	if s.Breaker() != BreakerClosed {
		t.Errorf("client errors tripped the breaker: %v", s.Breaker())
	}
	// The server still applies a good script afterwards.
	inst := d.Instances[0]
	body := fmt.Sprintf(`{"ops":[{"op":"move","inst":%q,"x":%d,"y":%d}]}`, inst.Name, inst.Pos.X+140, inst.Pos.Y)
	if code, resp := postECO(t, h, body); code != http.StatusOK {
		t.Fatalf("good script after rejections: %d %s", code, resp)
	}
}

// TestServeECOConcurrentQueries is the torn-read gate: an ECO commits while
// access queries and Prometheus scrapes hammer the server. Every query must
// answer cleanly (no 5xx), and only instances the ECO genuinely invalidated
// (signature-changing moves) may answer eco_pending fallbacks mid-window.
func TestServeECOConcurrentQueries(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{MaxInFlight: 16, QueueDepth: -1})
	mustInit(t, s)
	h := s.Handler()

	// Five instances moved by +70 in x: half an M2 pitch, so every one of
	// them changes signature and is genuinely dirty mid-ECO.
	moved := map[string]bool{}
	var ops []string
	for i := 0; i < 5; i++ {
		inst := d.Instances[i*3]
		moved[inst.Name] = true
		ops = append(ops, fmt.Sprintf(`{"op":"move","inst":%q,"x":%d,"y":%d}`,
			inst.Name, inst.Pos.X+70, inst.Pos.Y))
	}
	body := fmt.Sprintf(`{"ops":[%s]}`, strings.Join(ops, ","))

	// Sample a spread of query targets, movers included.
	var targets []string
	for i := 0; i < len(d.Instances); i += len(d.Instances)/20 + 1 {
		targets = append(targets, d.Instances[i].Name)
	}
	for name := range moved {
		targets = append(targets, name)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fail string
	report := func(f string, args ...any) {
		mu.Lock()
		if fail == "" {
			fail = fmt.Sprintf(f, args...)
		}
		mu.Unlock()
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				name := targets[(i+w)%len(targets)]
				req := httptest.NewRequest(http.MethodGet, "/v1/access?inst="+name, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					report("query %s: status %d: %s", name, rec.Code, rec.Body.String())
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
					report("query %s: torn JSON: %v", name, err)
					return
				}
				if qr.EcoPending && !moved[name] {
					report("query %s: eco_pending for an instance the ECO never touched", name)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // metrics scraper
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				report("metrics scrape: status %d", rec.Code)
				return
			}
		}
	}()

	code, resp := postECO(t, h, body)
	close(done)
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("eco status %d: %s", code, resp)
	}
	if fail != "" {
		t.Fatal(fail)
	}

	// Post-commit: every mover answers normally again.
	for name := range moved {
		code, qr, body := queryInst(t, h, name)
		if code != http.StatusOK || qr.EcoPending {
			t.Errorf("post-eco query %s: code %d pending %v (%s)", name, code, qr.EcoPending, body)
		}
	}
	if n := s.reg().Counter("serve.eco.applied").Load(); n != 1 {
		t.Errorf("serve.eco.applied = %d, want 1", n)
	}
}
