package serve

// Multi-tenant design manager: one resident paoserve process holds many
// designs, each behind its own *bulkhead* — a private Server with its own
// circuit breaker, fair admission queue, per-tenant token buckets, ECO mutex
// and atomic result pointer. A panic storm, breaker trip or queue saturation
// on design A therefore cannot shed, block or 503 design B: the only shared
// machinery is the HTTP listener and this registry.
//
// Lifecycle of a design (the eviction state machine):
//
//	            POST /v1/designs
//	                  │ (analyze / decode snapshot)
//	   ┌──────────────▼───┐   budget exceeded / explicit evict
//	   │      ready       ├────────────────────────────────┐
//	   └───▲──────────────┘   (snapshot + drop result)     │
//	       │ Init ok                                 ┌─────▼─────┐
//	 ┌─────┴─────┐  first query (lazy warm restart)  │  evicted  │
//	 │  warming  ◄───────────────────────────────────┴───────────┘
//	 └─────┬─────┘
//	       │ Init failed
//	 ┌─────▼─────┐
//	 │  failed   │  (DELETE + re-register to recover)
//	 └───────────┘
//
// Memory pressure: MaxResident bounds resident (ready+warming) designs; the
// coldest ready design (least-recently queried) is evicted to its versioned,
// checksummed snapshot (crash-safe temp+fsync+rename with retry) and its
// Result released. The next query triggers a lazy warm restart — it blocks up
// to WarmWait for the snapshot load, then serves; past the bound it answers
// 202 {"status":"warming"} with Retry-After. A corrupt or mismatched
// snapshot falls back to a full recompute exactly like a process restart.
// SIGTERM drains in-flight requests and snapshots every resident design.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/telemetry"
)

// Manager-level fault-hook sites (test-only, nil hooks in production).
const (
	// SiteEvict fires before a design eviction with the design ID as detail.
	SiteEvict = "serve.evict"
	// SiteWarm fires at the start of each lazy warm restart.
	SiteWarm = "serve.warm"
)

// Registry errors, mapped to HTTP statuses by the handlers.
var (
	ErrDesignExists  = errors.New("serve: design already registered")
	ErrUnknownDesign = errors.New("serve: unknown design")
	ErrDraining      = errors.New("serve: manager draining")
)

// DesignState is one design's position in the eviction state machine.
type DesignState int32

const (
	// DesignWarming covers initial registration analysis and lazy warm
	// restarts: the design is resident but has no serving result yet.
	DesignWarming DesignState = iota
	// DesignReady serves queries from its resident result.
	DesignReady
	// DesignEvicted has been snapshotted to disk and its result released;
	// the next query warms it back up.
	DesignEvicted
	// DesignFailed could not produce a serving result (failed analysis);
	// DELETE and re-register to recover.
	DesignFailed
)

var designStateNames = [...]string{"warming", "ready", "evicted", "failed"}

func (s DesignState) String() string {
	if int(s) < len(designStateNames) {
		return designStateNames[s]
	}
	return fmt.Sprintf("DesignState(%d)", int32(s))
}

// ManagerConfig tunes the multi-design registry. The per-design bulkhead
// limits (slots, queue, rate, breaker, …) come from the Design template,
// applied to every registered design unless the registration overrides them.
type ManagerConfig struct {
	// Addr is the listen address for Start ("127.0.0.1:0" picks a free port).
	Addr string
	// Design is the per-design Server config template. Addr and SnapshotPath
	// are ignored (the manager owns the listener and derives snapshot paths).
	Design Config
	// MaxResident bounds resident (ready or warming) designs; registering or
	// warming past it evicts the coldest ready design. 0 means unlimited.
	MaxResident int
	// SnapshotDir is where eviction/shutdown snapshots land (<id>.snap).
	// Empty disables persistence: evicted designs recompute on first query.
	SnapshotDir string
	// WarmWait bounds how long a query blocks for a lazy warm restart before
	// answering 202 {"status":"warming"}. 0 answers 202 immediately.
	WarmWait time.Duration
	// MaxUploadBytes caps a POST /v1/designs body (0 means 32 MiB).
	MaxUploadBytes int64
	// DrainTimeout caps Shutdown's wait for in-flight requests and the final
	// snapshot sweep (0 means the Design template's, or 10s).
	DrainTimeout time.Duration
}

// entry is one registered design and its bulkhead.
type entry struct {
	id  string
	srv *Server

	state      atomic.Int32 // DesignState
	lastAccess atomic.Int64 // unix nanos of the newest query; LRU key

	// gate serializes serving against eviction/deletion: every dispatched
	// request holds the read side for its whole lifetime, Evict/Delete hold
	// the write side, so a design is never torn down under a live query.
	gate sync.RWMutex

	// warmDone is non-nil exactly while an Init (registration or warm
	// restart) is in flight; waiters block on it. Guarded by warmMu.
	warmMu   sync.Mutex
	warmDone chan struct{}
}

func (e *entry) touch(t time.Time) { e.lastAccess.Store(t.UnixNano()) }

// Manager is the multi-design registry and HTTP front end. Create with
// NewManager, register designs (RegisterDesign or POST /v1/designs), then
// Start/Shutdown — or drive Handler() directly in tests.
type Manager struct {
	cfg    ManagerConfig
	paoCfg pao.Config

	// Obs receives the manager-level metrics (evictions, warm restarts,
	// resident gauge); per-design metrics live on each design's Server.
	Obs *obs.Observer
	// Logger receives structured operational log lines; nil discards.
	Logger *telemetry.Logger

	// FaultHook fires at SiteEvict/SiteWarm and is installed on every
	// registered design's Server (SiteQuery etc.). Test-only; set before use.
	FaultHook func(site, detail string)
	// PaoFaultHook/DRCFaultHook are installed on every design's analyzers.
	PaoFaultHook func(site, detail string)
	DRCFaultHook func(site, detail string) []drc.Violation

	now func() time.Time

	mu      sync.Mutex
	entries map[string]*entry

	draining atomic.Bool
	bgCtx    context.Context
	bgCancel context.CancelFunc

	ln   net.Listener
	http *http.Server
}

// NewManager builds an empty registry. paoCfg is the default analysis config
// for registered designs (per-registration K/Workers overrides apply on top).
func NewManager(paoCfg pao.Config, cfg ManagerConfig) *Manager {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 32 << 20
	}
	if cfg.DrainTimeout <= 0 {
		if cfg.Design.DrainTimeout > 0 {
			cfg.DrainTimeout = cfg.Design.DrainTimeout
		} else {
			cfg.DrainTimeout = 10 * time.Second
		}
	}
	if cfg.SnapshotDir != "" {
		// Snapshots are best-effort by contract (a failed write degrades to
		// recompute, never to a wrong answer), but a missing directory would
		// fail every one of them — create it up front; write errors surface
		// per snapshot if this fails.
		_ = os.MkdirAll(cfg.SnapshotDir, 0o700)
	}
	m := &Manager{
		cfg:     cfg,
		paoCfg:  paoCfg,
		Obs:     obs.NewObserver("paoserve"),
		now:     time.Now,
		entries: make(map[string]*entry),
	}
	m.bgCtx, m.bgCancel = context.WithCancel(context.Background())
	return m
}

func (m *Manager) reg() *obs.Registry { return m.Obs.Reg() }

// snapPath derives a design's eviction-snapshot path ("" when persistence is
// disabled).
func (m *Manager) snapPath(id string) string {
	if m.cfg.SnapshotDir == "" {
		return ""
	}
	return m.cfg.SnapshotDir + string(os.PathSeparator) + id + ".snap"
}

// RegisterOptions tunes one registration beyond the manager's defaults.
type RegisterOptions struct {
	// SnapshotPath overrides the SnapshotDir-derived path (the CLI's legacy
	// -snapshot flag). Empty keeps the derived path.
	SnapshotPath string
	// Snapshot, when non-empty, is a PR-4 snapshot byte stream to warm-start
	// from instead of analyzing; corrupt or mismatched bytes fall back to a
	// full compute (counted, logged), exactly like a bad on-disk snapshot.
	Snapshot []byte
	// Tune, when non-nil, adjusts the design's bulkhead config (slots, queue,
	// rate) after the template is applied.
	Tune func(*Config)
}

// RegisterDesign adds a design to the registry under id and produces its
// first serving state (snapshot decode, warm restart from disk, or full
// analysis). The returned Server is the design's bulkhead; it is already
// resident on success. Duplicate ids fail with ErrDesignExists.
func (m *Manager) RegisterDesign(ctx context.Context, id string, d *db.Design, paoCfg pao.Config, opts *RegisterOptions) (*Server, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if m.draining.Load() {
		return nil, ErrDraining
	}
	if opts == nil {
		opts = &RegisterOptions{}
	}
	scfg := m.cfg.Design
	scfg.Addr = ""
	scfg.SnapshotPath = opts.SnapshotPath
	if scfg.SnapshotPath == "" {
		scfg.SnapshotPath = m.snapPath(id)
	}
	if opts.Tune != nil {
		opts.Tune(&scfg)
	}
	srv := New(d, paoCfg, scfg)
	srv.Logger = m.Logger.With(telemetry.F("design", id))
	srv.FaultHook = m.FaultHook
	srv.PaoFaultHook = m.PaoFaultHook
	srv.DRCFaultHook = m.DRCFaultHook

	e := &entry{id: id, srv: srv}
	e.state.Store(int32(DesignWarming))
	e.touch(m.now())
	done := make(chan struct{})
	e.warmDone = done

	m.mu.Lock()
	if _, dup := m.entries[id]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDesignExists, id)
	}
	m.entries[id] = e
	m.mu.Unlock()

	ok := false
	defer func() {
		if !ok {
			m.mu.Lock()
			delete(m.entries, id)
			m.mu.Unlock()
		}
		e.warmMu.Lock()
		e.warmDone = nil
		e.warmMu.Unlock()
		close(done)
		m.publishGauges()
	}()

	loaded := false
	if len(opts.Snapshot) > 0 {
		res, err := pao.DecodeSnapshot(bytes.NewReader(opts.Snapshot), d, paoCfg)
		if err != nil {
			m.reg().Counter("serve.register.snapshot_rejected").Inc()
			m.Logger.Warn("uploaded snapshot rejected, analyzing instead",
				telemetry.F("design", id), telemetry.F("err", err))
		} else {
			srv.swap(res, "snapshot")
			// Persist immediately so eviction and crash recovery see it.
			_ = srv.WriteSnapshot(ctx)
			loaded = true
		}
	}
	if !loaded {
		if err := srv.Init(ctx); err != nil {
			return nil, err
		}
	}
	e.state.Store(int32(DesignReady))
	ok = true
	m.reg().Counter("serve.designs.registered").Inc()
	m.Logger.Info("design registered",
		telemetry.F("design", id), telemetry.F("instances", len(d.Instances)),
		telemetry.F("source", srv.Source()))
	m.enforceBudget(ctx)
	return srv, nil
}

// ServerFor returns the named design's bulkhead Server (nil when absent).
// The Server stays valid across evictions; tests use it to install fault
// hooks and read per-design counters.
func (m *Manager) ServerFor(id string) *Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[id]; e != nil {
		return e.srv
	}
	return nil
}

// StateFor returns the named design's lifecycle state.
func (m *Manager) StateFor(id string) (DesignState, bool) {
	m.mu.Lock()
	e := m.entries[id]
	m.mu.Unlock()
	if e == nil {
		return 0, false
	}
	return DesignState(e.state.Load()), true
}

// DesignIDs lists registered designs, sorted.
func (m *Manager) DesignIDs() []string {
	m.mu.Lock()
	ids := make([]string, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	return ids
}

func (m *Manager) get(id string) *entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entries[id]
}

// list returns the entries sorted by id (stable metrics/exposition order).
func (m *Manager) list() []*entry {
	m.mu.Lock()
	es := make([]*entry, 0, len(m.entries))
	for _, e := range m.entries {
		es = append(es, e)
	}
	m.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].id < es[j].id })
	return es
}

// residentCount counts designs currently occupying memory (ready + warming).
func (m *Manager) residentCount() int {
	n := 0
	for _, e := range m.list() {
		switch DesignState(e.state.Load()) {
		case DesignReady, DesignWarming:
			n++
		}
	}
	return n
}

func (m *Manager) publishGauges() {
	m.reg().Gauge("serve.resident_designs").Set(float64(m.residentCount()))
	m.mu.Lock()
	n := len(m.entries)
	m.mu.Unlock()
	m.reg().Gauge("serve.registered_designs").Set(float64(n))
}

// enforceBudget evicts the coldest ready designs until the resident count is
// back under MaxResident. Callers must not hold m.mu or any entry gate.
func (m *Manager) enforceBudget(ctx context.Context) {
	if m.cfg.MaxResident <= 0 {
		return
	}
	for m.residentCount() > m.cfg.MaxResident {
		var victim *entry
		var coldest int64
		for _, e := range m.list() {
			if DesignState(e.state.Load()) != DesignReady {
				continue
			}
			if la := e.lastAccess.Load(); victim == nil || la < coldest {
				victim, coldest = e, la
			}
		}
		if victim == nil {
			return // everything resident is mid-warm; nothing safe to evict
		}
		if err := m.evictEntry(ctx, victim); err != nil {
			m.Logger.Error("budget eviction failed",
				telemetry.F("design", victim.id), telemetry.F("err", err))
			return
		}
	}
}

// EvictDesign snapshots and releases one design's serving result. The design
// stays registered; the next query lazily warm-restarts it.
func (m *Manager) EvictDesign(ctx context.Context, id string) error {
	e := m.get(id)
	if e == nil {
		return fmt.Errorf("%w: %s", ErrUnknownDesign, id)
	}
	return m.evictEntry(ctx, e)
}

func (m *Manager) evictEntry(ctx context.Context, e *entry) error {
	if h := m.FaultHook; h != nil {
		h(SiteEvict, e.id)
	}
	e.gate.Lock()
	defer e.gate.Unlock()
	if st := DesignState(e.state.Load()); st != DesignReady {
		return fmt.Errorf("design %s is %s, not evictable", e.id, st)
	}
	if err := e.srv.Evict(ctx); err != nil {
		m.reg().Counter("serve.evict.failed").Inc()
		return err
	}
	e.state.Store(int32(DesignEvicted))
	m.reg().Counter("serve.evictions").Inc()
	m.publishGauges()
	m.Logger.Info("design evicted",
		telemetry.F("design", e.id), telemetry.F("snapshot", e.srv.cfg.SnapshotPath))
	return nil
}

// DeleteDesign removes a design entirely: waits out in-flight requests,
// cancels its background work and deletes its manager-derived snapshot.
func (m *Manager) DeleteDesign(id string) error {
	m.mu.Lock()
	e := m.entries[id]
	if e == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownDesign, id)
	}
	delete(m.entries, id)
	m.mu.Unlock()

	// Quiesce: no new requests can resolve the id; wait for in-flight ones
	// and any warm restart to finish before tearing down.
	e.warmMu.Lock()
	done := e.warmDone
	e.warmMu.Unlock()
	if done != nil {
		<-done
	}
	e.gate.Lock()
	defer e.gate.Unlock()
	e.srv.bgCancel()
	if p := m.snapPath(id); p != "" && e.srv.cfg.SnapshotPath == p {
		_ = os.Remove(p)
	}
	m.reg().Counter("serve.designs.deleted").Inc()
	m.publishGauges()
	m.Logger.Info("design deleted", telemetry.F("design", id))
	return nil
}

// startWarm ensures a warm restart is in flight for a non-ready design and
// returns a channel that closes when it settles (ready or failed). For
// already-ready or failed designs it returns a closed channel; the caller
// re-reads the state.
func (m *Manager) startWarm(e *entry) <-chan struct{} {
	e.warmMu.Lock()
	defer e.warmMu.Unlock()
	if e.warmDone != nil {
		return e.warmDone
	}
	done := make(chan struct{})
	switch DesignState(e.state.Load()) {
	case DesignReady, DesignFailed:
		close(done)
		return done
	}
	e.state.Store(int32(DesignWarming))
	e.warmDone = done
	go m.warm(e, done)
	return done
}

func (m *Manager) warm(e *entry, done chan struct{}) {
	var err error
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("warm restart panic: %v", rec)
		}
		if err != nil {
			e.state.Store(int32(DesignFailed))
			m.reg().Counter("serve.warm.failed").Inc()
			m.Logger.Error("warm restart failed",
				telemetry.F("design", e.id), telemetry.F("err", err))
		} else {
			e.state.Store(int32(DesignReady))
			m.reg().Counter("serve.warm_restarts").Inc()
			m.Logger.Info("warm restart",
				telemetry.F("design", e.id), telemetry.F("source", e.srv.Source()))
		}
		e.warmMu.Lock()
		e.warmDone = nil
		e.warmMu.Unlock()
		close(done)
		m.publishGauges()
		if err == nil {
			m.enforceBudget(m.bgCtx)
		}
	}()
	if h := m.FaultHook; h != nil {
		h(SiteWarm, e.id)
	}
	err = e.srv.Init(m.bgCtx)
}

// resolve picks the target design for a design-scoped request: ?design= or
// the X-Design header; with neither, a single resident registry is
// unambiguous, an empty one is 404, and anything else is a 400 — answering
// from "whichever design happens to be loaded" is how a client silently
// queries the wrong oracle.
func (m *Manager) resolve(r *http.Request) (*entry, int, string) {
	id := r.URL.Query().Get("design")
	if id == "" {
		id = r.Header.Get("X-Design")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		switch len(m.entries) {
		case 0:
			return nil, http.StatusNotFound, "no designs registered"
		case 1:
			for _, e := range m.entries {
				return e, 0, ""
			}
		}
		ids := make([]string, 0, len(m.entries))
		for id := range m.entries {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return nil, http.StatusBadRequest,
			"ambiguous request: " + fmt.Sprint(len(ids)) + " designs resident, pass ?design= (one of " +
				strings.Join(ids, ", ") + ")"
	}
	e := m.entries[id]
	if e == nil {
		return nil, http.StatusNotFound, "unknown design " + id
	}
	return e, 0, ""
}

// dispatch routes a design-scoped request to its bulkhead, warming evicted
// designs first (blocking up to WarmWait, else 202). The entry's gate is
// read-held for the handler's whole lifetime so eviction never tears the
// design down under a live request.
func (m *Manager) dispatch(h func(*Server) http.HandlerFunc) http.HandlerFunc {
	return m.route(true, h)
}

// cold routes without requiring (or triggering) a warm design — for
// endpoints that answer sensibly about an evicted design (slow log, stats).
func (m *Manager) cold(h func(*Server) http.HandlerFunc) http.HandlerFunc {
	return m.route(false, h)
}

func (m *Manager) route(needWarm bool, h func(*Server) http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		e, code, msg := m.resolve(r)
		if e == nil {
			http.Error(w, msg, code)
			return
		}
		e.touch(m.now())
		// A design can be evicted between ensureReady and the gate lock;
		// retry the warm-up a bounded number of times rather than answering
		// 503 for a design that is merely cold.
		for attempt := 0; attempt < 3; attempt++ {
			if needWarm && !m.ensureReady(w, r, e) {
				return // response already written (202 warming / 503)
			}
			served := func() bool {
				e.gate.RLock()
				defer e.gate.RUnlock()
				if !needWarm || DesignState(e.state.Load()) == DesignReady {
					h(e.srv)(w, r)
					return true
				}
				return false
			}()
			if served {
				return
			}
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, "design "+e.id+" busy (evicting/warming), retry", http.StatusServiceUnavailable)
	}
}

// ensureReady returns true when the design is ready to serve. Otherwise it
// answers the request itself (202 warming, 503 failed/cancelled) and returns
// false.
func (m *Manager) ensureReady(w http.ResponseWriter, r *http.Request, e *entry) bool {
	for {
		switch DesignState(e.state.Load()) {
		case DesignReady:
			return true
		case DesignFailed:
			http.Error(w, "design "+e.id+" failed to load; DELETE and re-register",
				http.StatusServiceUnavailable)
			return false
		}
		done := m.startWarm(e)
		select {
		case <-done:
			continue // settled: re-read the state
		default:
		}
		if m.cfg.WarmWait <= 0 {
			m.answerWarming(w, e)
			return false
		}
		t := time.NewTimer(m.cfg.WarmWait)
		select {
		case <-done:
			t.Stop()
		case <-r.Context().Done():
			t.Stop()
			http.Error(w, "request cancelled while design "+e.id+" warming",
				http.StatusServiceUnavailable)
			return false
		case <-t.C:
			m.answerWarming(w, e)
			return false
		}
	}
}

func (m *Manager) answerWarming(w http.ResponseWriter, e *entry) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusAccepted, map[string]string{
		"status": "warming", "design": e.id,
	})
}

// Handler returns the manager's endpoint mux: the registry endpoints plus
// every per-design endpoint, design-scoped via ?design= (or X-Design).
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/designs", m.handleListDesigns)
	mux.HandleFunc("POST /v1/designs", m.handleRegister)
	mux.HandleFunc("GET /v1/designs/{id}", m.handleDesignGet)
	mux.HandleFunc("DELETE /v1/designs/{id}", m.handleDesignDelete)
	mux.HandleFunc("POST /v1/designs/{id}/evict", m.handleDesignEvict)

	mux.HandleFunc("/healthz", m.handleHealthz)
	mux.HandleFunc("/readyz", m.handleReadyz)
	mux.HandleFunc("/metricz", m.handleMetricz)
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/version", m.handleVersion)

	mux.HandleFunc("/v1/access", m.dispatch(func(s *Server) http.HandlerFunc {
		return s.admitted("access", s.handleAccess)
	}))
	mux.HandleFunc("/v1/access/batch", m.dispatch(func(s *Server) http.HandlerFunc {
		return s.admittedCost("batch", s.batchCost, s.handleBatch)
	}))
	mux.HandleFunc("/v1/access/explain", m.dispatch(func(s *Server) http.HandlerFunc {
		return s.admitted("explain", s.handleExplain)
	}))
	mux.HandleFunc("/v1/eco", m.dispatch(func(s *Server) http.HandlerFunc {
		return s.admitted("eco", s.handleECO)
	}))
	mux.HandleFunc("/v1/reanalyze", m.dispatch(func(s *Server) http.HandlerFunc {
		return s.handleReanalyze
	}))
	mux.HandleFunc("/v1/stats", m.cold(func(s *Server) http.HandlerFunc {
		return s.handleStats
	}))
	mux.HandleFunc("/debug/slowlog", m.cold(func(s *Server) http.HandlerFunc {
		return s.handleSlowlog
	}))
	return mux
}

// DesignInfo is one design's registry listing.
type DesignInfo struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Ready      bool    `json:"ready"`
	Reason     string  `json:"reason,omitempty"`
	Source     string  `json:"source,omitempty"`
	Breaker    string  `json:"breaker"`
	Design     string  `json:"design"`
	DesignHash string  `json:"design_hash"`
	Instances  int     `json:"instances"`
	Classes    int     `json:"classes,omitempty"`
	Health     string  `json:"health,omitempty"`
	Snapshot   string  `json:"snapshot,omitempty"`
	IdleSec    float64 `json:"idle_sec"`
}

func (m *Manager) designInfo(e *entry) DesignInfo {
	srv := e.srv
	info := DesignInfo{
		ID:         e.id,
		State:      DesignState(e.state.Load()).String(),
		Breaker:    srv.Breaker().String(),
		Design:     srv.design.Name,
		DesignHash: srv.DesignHash(),
		Instances:  len(srv.design.Instances),
		Snapshot:   srv.cfg.SnapshotPath,
		IdleSec:    m.now().Sub(time.Unix(0, e.lastAccess.Load())).Seconds(),
	}
	if DesignState(e.state.Load()) == DesignReady {
		info.Ready, info.Reason = srv.Ready()
	} else {
		info.Reason = info.State
	}
	if res := srv.Result(); res != nil {
		info.Source = srv.Source()
		info.Classes = len(res.Unique)
		if h := res.Health; h != nil && !h.OK() {
			info.Health = h.String()
		}
	}
	return info
}

// ListResponse answers GET /v1/designs.
type ListResponse struct {
	Designs  []DesignInfo `json:"designs"`
	Resident int          `json:"resident"`
	Budget   int          `json:"budget,omitempty"`
}

func (m *Manager) handleListDesigns(w http.ResponseWriter, r *http.Request) {
	resp := ListResponse{Designs: []DesignInfo{}, Budget: m.cfg.MaxResident}
	for _, e := range m.list() {
		resp.Designs = append(resp.Designs, m.designInfo(e))
	}
	resp.Resident = m.residentCount()
	writeJSON(w, http.StatusOK, resp)
}

func (m *Manager) handleDesignGet(w http.ResponseWriter, r *http.Request) {
	e := m.get(r.PathValue("id"))
	if e == nil {
		http.Error(w, "unknown design "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, m.designInfo(e))
}

func (m *Manager) handleDesignDelete(w http.ResponseWriter, r *http.Request) {
	if err := m.DeleteDesign(r.PathValue("id")); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownDesign) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted", "design": r.PathValue("id")})
}

func (m *Manager) handleDesignEvict(w http.ResponseWriter, r *http.Request) {
	if err := m.EvictDesign(r.Context(), r.PathValue("id")); err != nil {
		code := http.StatusConflict
		if errors.Is(err, ErrUnknownDesign) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "evicted", "design": r.PathValue("id")})
}

// ManagerHealthz answers /healthz at the manager: always 200, one summary
// row per design.
type ManagerHealthz struct {
	Status   string                `json:"status"` // ok | degraded
	Draining bool                  `json:"draining,omitempty"`
	Resident int                   `json:"resident"`
	Designs  map[string]DesignInfo `json:"designs"`
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := ManagerHealthz{Status: "ok", Draining: m.draining.Load(), Designs: map[string]DesignInfo{}}
	for _, e := range m.list() {
		info := m.designInfo(e)
		resp.Designs[e.id] = info
		if info.State == DesignFailed.String() || info.Health != "" {
			resp.Status = "degraded"
		}
	}
	resp.Resident = m.residentCount()
	if resp.Draining {
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz reports readiness. With ?design= it is that design's: 200
// only when resident with a closed breaker — a fault storm on design A
// flips A's readiness, never B's. Without a design it reports the process:
// 503 only while draining, with the per-design map in the body (one broken
// bulkhead must not make a load balancer pull the whole multi-tenant node).
func (m *Manager) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("design"); id != "" {
		e := m.get(id)
		if e == nil {
			http.Error(w, "unknown design "+id, http.StatusNotFound)
			return
		}
		if st := DesignState(e.state.Load()); st != DesignReady {
			http.Error(w, "not ready: design "+id+" "+st.String(), http.StatusServiceUnavailable)
			return
		}
		if ok, reason := e.srv.Ready(); !ok {
			if e.srv.brk.current() == BreakerOpen {
				w.Header().Set("Retry-After", retryAfterSecs(e.srv.brk.retryAfter()))
			}
			http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
		return
	}
	type readiness struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason,omitempty"`
	}
	resp := struct {
		Status  string               `json:"status"`
		Designs map[string]readiness `json:"designs"`
	}{Status: "ok", Designs: map[string]readiness{}}
	for _, e := range m.list() {
		info := m.designInfo(e)
		resp.Designs[e.id] = readiness{Ready: info.Ready, Reason: info.Reason}
	}
	if m.draining.Load() {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics merges the manager families with every design's labeled
// families and design-stamped flat metrics into one Prometheus exposition.
func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m.publishGauges()
	fams := telemetry.ObsFamilies(m.reg().Snapshot())
	for _, e := range m.list() {
		e.srv.publishGauges()
		fams = append(fams, e.srv.prom.Gather()...)
		fams = append(fams, telemetry.ObsFamilies(e.srv.reg().Snapshot(),
			telemetry.Label{Name: "design", Value: e.id})...)
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = telemetry.WriteProm(w, fams)
}

func (m *Manager) handleMetricz(w http.ResponseWriter, r *http.Request) {
	m.publishGauges()
	designs := map[string]obs.Metrics{}
	for _, e := range m.list() {
		e.srv.publishGauges()
		designs[e.id] = e.srv.reg().Snapshot()
	}
	writeJSON(w, http.StatusOK, struct {
		Manager obs.Metrics            `json:"manager"`
		Designs map[string]obs.Metrics `json:"designs"`
	}{m.reg().Snapshot(), designs})
}

func (m *Manager) handleVersion(w http.ResponseWriter, r *http.Request) {
	type designVersion struct {
		DesignHash        string `json:"design_hash"`
		ConfigFingerprint string `json:"config_fingerprint"`
		Source            string `json:"source,omitempty"`
	}
	resp := struct {
		Build   telemetry.BuildInfo      `json:"build"`
		Designs map[string]designVersion `json:"designs"`
	}{telemetry.Build(), map[string]designVersion{}}
	for _, e := range m.list() {
		resp.Designs[e.id] = designVersion{
			DesignHash:        e.srv.DesignHash(),
			ConfigFingerprint: pao.ConfigFingerprint(e.srv.paoCfg),
			Source:            e.srv.Source(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Start listens on cfg.Addr and serves in the background.
func (m *Manager) Start() error {
	ln, err := net.Listen("tcp", m.cfg.Addr)
	if err != nil {
		return err
	}
	m.ln = ln
	m.http = &http.Server{Handler: m.Handler()}
	go func() {
		if err := m.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			m.Logger.Error("serve error", telemetry.F("err", err))
		}
	}()
	if m.cfg.Design.SnapshotInterval > 0 && m.cfg.SnapshotDir != "" {
		go m.snapshotLoop()
	}
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (m *Manager) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// snapshotLoop periodically snapshots every ready design.
func (m *Manager) snapshotLoop() {
	t := time.NewTicker(m.cfg.Design.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			for _, e := range m.list() {
				if DesignState(e.state.Load()) == DesignReady {
					_ = e.srv.WriteSnapshot(m.bgCtx)
				}
			}
		case <-m.bgCtx.Done():
			return
		}
	}
}

// Shutdown drains in-flight requests (bounded by DrainTimeout), then writes a
// final snapshot for EVERY resident design — SIGTERM becomes a clean handoff
// of the whole registry to the next process.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.draining.Store(true)
	var first error
	if m.http != nil {
		dctx, cancel := context.WithTimeout(ctx, m.cfg.DrainTimeout)
		defer cancel()
		if err := m.http.Shutdown(dctx); err != nil {
			first = err
		}
	}
	m.bgCancel()
	// The final snapshots must not inherit the drain deadline's cancellation
	// if requests drained cleanly; give them their own bounded context.
	sctx, cancel := context.WithTimeout(context.Background(), m.cfg.DrainTimeout)
	defer cancel()
	for _, e := range m.list() {
		e.srv.draining.Store(true)
		e.srv.bgCancel()
		if DesignState(e.state.Load()) != DesignReady {
			continue
		}
		if err := e.srv.WriteSnapshot(sctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
