package serve

// Registration-parsing hardening: table tests over ParseRegisterRequest's
// rejection matrix and a fuzz target proving hostile bodies never panic.
// Seed corpus lives in testdata/fuzz/FuzzRegisterRequest/.

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "alpha", "A1", "chip-2.rev_3", strings.Repeat("x", 64)} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{
		"", ".", "..", ".hidden", "-lead", "_lead",
		"a/b", "a\\b", "../escape", "a b", "a\nb", "a\x00b",
		"ünïcode", strings.Repeat("x", 65),
	} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", bad)
		}
	}
}

func TestParseRegisterRequest(t *testing.T) {
	qNeg2 := `{"id":"a","case":"c1","queue":-2}`
	cases := []struct {
		name   string
		body   string
		ok     bool
		errSub string // substring the error must contain
	}{
		{"case source", `{"id":"a","case":"pao_test1","scale":0.5,"seed":3}`, true, ""},
		{"lef+def source", `{"id":"a","lef":"LAYER M1","def":"DESIGN top"}`, true, ""},
		{"full tuning", `{"id":"a","case":"c1","k":8,"workers":4,"max_inflight":2,"queue":0,"rate":5,"burst":10}`, true, ""},
		{"queue -1 unbounded", `{"id":"a","case":"c1","queue":-1}`, true, ""},
		{"empty body", ``, false, "bad registration JSON"},
		{"not json", `hello`, false, "bad registration JSON"},
		{"truncated", `{"id":"a","case":`, false, "bad registration JSON"},
		{"trailing data", `{"id":"a","case":"c1"} {"x":1}`, false, "trailing data"},
		{"unknown field", `{"id":"a","case":"c1","bogus":true}`, false, "bad registration JSON"},
		{"missing id", `{"case":"c1"}`, false, "bad design ID"},
		{"traversal id", `{"id":"../etc","case":"c1"}`, false, "bad design ID"},
		{"long id", `{"id":"` + strings.Repeat("x", 65) + `","case":"c1"}`, false, "bad design ID"},
		{"no source", `{"id":"a"}`, false, "exactly one design source"},
		{"both sources", `{"id":"a","case":"c1","lef":"x","def":"y"}`, false, "mutually exclusive"},
		{"lef without def", `{"id":"a","lef":"x"}`, false, "both"},
		{"def without lef", `{"id":"a","def":"y"}`, false, "both"},
		{"bad case name", `{"id":"a","case":"../c"}`, false, "bad case name"},
		{"scale too big", `{"id":"a","case":"c1","scale":1.5}`, false, "scale"},
		{"scale negative", `{"id":"a","case":"c1","scale":-0.1}`, false, "scale"},
		{"k out of range", `{"id":"a","case":"c1","k":65}`, false, "k"},
		{"workers out of range", `{"id":"a","case":"c1","workers":2048}`, false, "workers"},
		{"inflight out of range", `{"id":"a","case":"c1","max_inflight":5000}`, false, "max_inflight"},
		{"queue below -1", qNeg2, false, "queue"},
		{"negative rate", `{"id":"a","case":"c1","rate":-1}`, false, "non-negative"},
		{"snapshot not base64", `{"id":"a","case":"c1","snapshot":"%%%"}`, false, "bad registration JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := ParseRegisterRequest([]byte(tc.body))
			if tc.ok {
				if err != nil {
					t.Fatalf("ParseRegisterRequest(%s) = %v, want ok", tc.body, err)
				}
				if req.ID != "a" {
					t.Fatalf("parsed ID = %q", req.ID)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseRegisterRequest(%s) accepted, want error containing %q", tc.body, tc.errSub)
			}
			if !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("error = %q, want substring %q", err, tc.errSub)
			}
		})
	}
}

func TestParseRegisterRequestSizeCaps(t *testing.T) {
	big := strings.Repeat("x", maxInlineSource+1)
	body, _ := json.Marshal(RegisterRequest{ID: "a", LEF: big, DEF: "y"})
	if _, err := ParseRegisterRequest(body); err == nil || !strings.Contains(err.Error(), "LEF/DEF") {
		t.Fatalf("oversized LEF: err = %v, want size-cap rejection", err)
	}
	snap := make([]byte, maxInlineSnap+1)
	body, _ = json.Marshal(RegisterRequest{ID: "a", Case: "c1", Snapshot: snap})
	if _, err := ParseRegisterRequest(body); err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("oversized snapshot: err = %v, want size-cap rejection", err)
	}
}

// FuzzRegisterRequest: hostile registration bodies must be rejected with an
// error, never a panic; accepted ones must satisfy every invariant the
// handler depends on downstream (valid IDs, one source, bounded knobs).
func FuzzRegisterRequest(f *testing.F) {
	f.Add([]byte(`{"id":"a","case":"pao_test1","scale":0.01,"seed":7}`))
	f.Add([]byte(`{"id":"chip-1","lef":"LAYER M1 ;","def":"DESIGN top ;"}`))
	f.Add([]byte(`{"id":"a","case":"c1","k":8,"workers":4,"max_inflight":2,"queue":-1,"rate":5,"burst":10}`))
	f.Add([]byte(`{"id":"a","case":"c1","snapshot":"cGFvc25hcA=="}`))
	f.Add([]byte(`{"id":"../../etc/passwd","case":"c1"}`))
	f.Add([]byte(`{"id":"a","case":"c1"} trailing`))
	f.Add([]byte(`{"id":"a","case":"c1","bogus":1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"id":"a","case":"c1","scale":1e308}`))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRegisterRequest(data)
		if err != nil {
			return
		}
		if e := ValidateID(req.ID); e != nil {
			t.Fatalf("accepted invalid ID %q: %v", req.ID, e)
		}
		haveCase := req.Case != ""
		haveFiles := req.LEF != "" && req.DEF != ""
		if haveCase == haveFiles {
			t.Fatalf("accepted request without exactly one source: %+v", req)
		}
		if haveCase {
			if e := ValidateID(req.Case); e != nil {
				t.Fatalf("accepted invalid case %q: %v", req.Case, e)
			}
			if req.Scale < 0 || req.Scale > 1 {
				t.Fatalf("accepted scale %v", req.Scale)
			}
		}
		if req.K < 0 || req.K > 64 || req.Workers < 0 || req.Workers > 1024 ||
			req.MaxInFlight < 0 || req.MaxInFlight > 4096 {
			t.Fatalf("accepted out-of-range knobs: %+v", req)
		}
		if req.Queue != nil && (*req.Queue < -1 || *req.Queue > 1<<20) {
			t.Fatalf("accepted queue %d", *req.Queue)
		}
		if req.Rate < 0 || req.Burst < 0 {
			t.Fatalf("accepted negative rate/burst: %+v", req)
		}
	})
}
