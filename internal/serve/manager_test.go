package serve

// Manager tests: the design registry lifecycle over HTTP, and the bulkhead
// isolation acceptance test — faults stormed into one design leave a second
// design's traffic untouched.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/pao"
)

func newTestManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	m := NewManager(pao.DefaultConfig(), cfg)
	t.Cleanup(m.bgCancel)
	return m
}

// registerTestDesign registers a generated design under id directly (no HTTP).
func registerTestDesign(t *testing.T, m *Manager, id string, tune func(*Config)) *db.Design {
	t.Helper()
	d := serveDesign(t)
	d.Name = id
	if _, err := m.RegisterDesign(context.Background(), id, d, m.paoCfg, &RegisterOptions{Tune: tune}); err != nil {
		t.Fatalf("register %s: %v", id, err)
	}
	return d
}

func do(t *testing.T, h http.Handler, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	b, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, b
}

func TestManagerRegistryHTTP(t *testing.T) {
	m := newTestManager(t, ManagerConfig{WarmWait: 5 * time.Second})
	h := m.Handler()

	// Empty registry: listing works, queries 404.
	code, body := do(t, h, http.MethodGet, "/v1/designs", nil)
	if code != http.StatusOK {
		t.Fatalf("empty list = %d: %s", code, body)
	}
	if code, body = do(t, h, http.MethodGet, "/v1/access?inst=x", nil); code != http.StatusNotFound {
		t.Fatalf("query on empty registry = %d, want 404: %s", code, body)
	}

	// Register over HTTP from a generated case.
	reg := []byte(`{"id":"alpha","case":"pao_test1","scale":0.01,"seed":7}`)
	if code, body = do(t, h, http.MethodPost, "/v1/designs", reg); code != http.StatusCreated {
		t.Fatalf("register = %d, want 201: %s", code, body)
	}
	var info DesignInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "alpha" || info.State != "ready" || !info.Ready || info.Instances == 0 {
		t.Fatalf("registered info = %+v", info)
	}

	// Duplicate → 409; bad ID → 400; unknown case → 422; bad JSON → 400.
	if code, body = do(t, h, http.MethodPost, "/v1/designs", reg); code != http.StatusConflict {
		t.Fatalf("duplicate register = %d, want 409: %s", code, body)
	}
	if code, _ = do(t, h, http.MethodPost, "/v1/designs",
		[]byte(`{"id":"../etc","case":"pao_test1"}`)); code != http.StatusBadRequest {
		t.Fatalf("bad ID = %d, want 400", code)
	}
	if code, _ = do(t, h, http.MethodPost, "/v1/designs",
		[]byte(`{"id":"nope","case":"no_such_case"}`)); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown case = %d, want 422", code)
	}
	if code, _ = do(t, h, http.MethodPost, "/v1/designs", []byte(`{"id":`)); code != http.StatusBadRequest {
		t.Fatalf("truncated JSON = %d, want 400", code)
	}

	// Single resident design: unscoped queries are unambiguous.
	var d *db.Design
	{
		srv := m.ServerFor("alpha")
		if srv == nil {
			t.Fatal("no server for alpha")
		}
		d = srv.design
	}
	inst := d.Instances[0].Name
	if code, body = do(t, h, http.MethodGet, "/v1/access?inst="+inst, nil); code != http.StatusOK {
		t.Fatalf("unscoped single-design query = %d: %s", code, body)
	}

	// Second design → unscoped becomes ambiguous (400), scoped works.
	registerTestDesign(t, m, "beta", nil)
	code, body = do(t, h, http.MethodGet, "/v1/access?inst="+inst, nil)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "ambiguous") {
		t.Fatalf("unscoped two-design query = %d, want 400 ambiguous: %s", code, body)
	}
	for _, path := range []string{
		"/v1/access?design=alpha&inst=" + inst,
		"/v1/access?design=beta&inst=" + inst,
		"/debug/slowlog?design=alpha",
		"/v1/access/explain?design=alpha&inst=" + inst + "&pin=" + d.Instances[0].Master.SignalPins()[0].Name,
		"/v1/stats?design=beta",
	} {
		if code, body = do(t, h, http.MethodGet, path, nil); code != http.StatusOK {
			t.Fatalf("%s = %d: %s", path, code, body)
		}
	}
	// Unscoped slowlog/explain with two residents must also refuse.
	if code, _ = do(t, h, http.MethodGet, "/debug/slowlog", nil); code != http.StatusBadRequest {
		t.Fatalf("unscoped slowlog = %d, want 400", code)
	}
	if code, _ = do(t, h, http.MethodGet, "/v1/access/explain?inst=x&pin=y", nil); code != http.StatusBadRequest {
		t.Fatalf("unscoped explain = %d, want 400", code)
	}
	// The X-Design header scopes too.
	req := httptest.NewRequest(http.MethodGet, "/v1/access?inst="+inst, nil)
	req.Header.Set("X-Design", "alpha")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("X-Design scoped query = %d", rec.Code)
	}

	// Listing reflects both; /readyz reports both ready.
	code, body = do(t, h, http.MethodGet, "/v1/designs", nil)
	var list ListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || len(list.Designs) != 2 || list.Resident != 2 {
		t.Fatalf("list = %d %+v", code, list)
	}
	if code, body = do(t, h, http.MethodGet, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, body)
	}

	// Delete beta: gone from the registry, queries unambiguous again.
	if code, body = do(t, h, http.MethodDelete, "/v1/designs/beta", nil); code != http.StatusOK {
		t.Fatalf("delete = %d: %s", code, body)
	}
	if code, _ = do(t, h, http.MethodDelete, "/v1/designs/beta", nil); code != http.StatusNotFound {
		t.Fatalf("double delete = %d, want 404", code)
	}
	if code, _ = do(t, h, http.MethodGet, "/v1/access?inst="+inst, nil); code != http.StatusOK {
		t.Fatalf("query after delete = %d, want 200 (unambiguous again)", code)
	}
}

func TestManagerUploadCap(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxUploadBytes: 128})
	h := m.Handler()
	big := []byte(`{"id":"a","case":"pao_test1","lef":"` + strings.Repeat("x", 512) + `"}`)
	code, body := do(t, h, http.MethodPost, "/v1/designs", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized register = %d, want 413: %s", code, body)
	}
}

// TestBulkheadIsolation is the acceptance test: drive design A's breaker open
// with a panic storm, saturate its (single-slot, zero-queue) admission, and
// require design B's concurrent traffic to stay 200/ready with zero shed —
// under -race.
func TestBulkheadIsolation(t *testing.T) {
	m := newTestManager(t, ManagerConfig{
		WarmWait: 5 * time.Second,
		Design:   Config{BreakerThreshold: 3, BreakerCooldown: time.Hour, QueueDepth: 64},
	})
	dA := registerTestDesign(t, m, "storm", func(c *Config) {
		c.MaxInFlight = 1
		c.QueueDepth = 0
	})
	dB := registerTestDesign(t, m, "calm", nil)
	h := m.Handler()
	srvA := m.ServerFor("storm")

	// One long-blocked query saturates A's single slot so every later A
	// query sheds 503 while B must keep serving.
	block := make(chan struct{})
	var plugOnce sync.Once
	srvA.FaultHook = func(site, detail string) {
		if site == SiteQuery {
			plugOnce.Do(func() { <-block })
		}
	}

	// Plug A's slot.
	plugged := make(chan int, 1)
	go func() {
		code, _ := do(t, h, http.MethodGet, "/v1/access?design=storm&inst="+dA.Instances[0].Name, nil)
		plugged <- code
	}()
	waitFor(t, func() bool {
		srvA.adm.mu.Lock()
		defer srvA.adm.mu.Unlock()
		return srvA.adm.inflight == 1
	})

	// Concurrently: A gets shed 503s (queue 0, slot busy), B serves clean.
	const n = 40
	var wg sync.WaitGroup
	bCodes := make(chan int, n)
	aCodes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst := dB.Instances[i%len(dB.Instances)]
			code, body := do(t, h, http.MethodGet, "/v1/access?design=calm&inst="+inst.Name, nil)
			if code != http.StatusOK {
				t.Errorf("calm query = %d: %s", code, body)
			}
			bCodes <- code
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := do(t, h, http.MethodGet, "/v1/access?design=storm&inst="+dA.Instances[i%len(dA.Instances)].Name, nil)
			aCodes <- code
		}(i)
	}
	wg.Wait()
	close(bCodes)
	close(aCodes)
	for code := range bCodes {
		if code != http.StatusOK {
			t.Fatalf("design B shed/errored (%d) during design A's storm: bulkhead leak", code)
		}
	}
	shedA := 0
	for code := range aCodes {
		if code == http.StatusServiceUnavailable {
			shedA++
		}
	}
	if shedA == 0 {
		t.Fatal("design A never shed; storm did not saturate its bulkhead")
	}

	// Trip A's breaker via panic storm on re-analysis... simpler: direct
	// breaker failures, which is what recovered query panics do.
	for i := 0; i < 3; i++ {
		srvA.brk.failure()
	}
	if srvA.Breaker() != BreakerOpen {
		t.Fatalf("storm breaker = %v, want open", srvA.Breaker())
	}

	// Per-design readiness: A 503, B 200, process-level readyz still 200.
	if code, body := do(t, h, http.MethodGet, "/readyz?design=storm", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz storm = %d, want 503: %s", code, body)
	}
	if code, body := do(t, h, http.MethodGet, "/readyz?design=calm", nil); code != http.StatusOK {
		t.Fatalf("readyz calm = %d, want 200: %s", code, body)
	}
	if code, body := do(t, h, http.MethodGet, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("process readyz = %d, want 200 (one broken bulkhead must not pull the node): %s", code, body)
	}

	// B's tenant counters saw zero shed; A's saw the storm.
	if got := m.ServerFor("calm").tShed.With("calm", "default").Load(); got != 0 {
		t.Fatalf("calm shed = %d, want 0", got)
	}
	if got := srvA.tShed.With("storm", "default").Load(); got == 0 {
		t.Fatal("storm shed counter = 0, want > 0")
	}
	// Release the plugged query; it must complete normally.
	close(block)
	if code := <-plugged; code != http.StatusOK {
		t.Fatalf("plugged query = %d after release, want 200", code)
	}
}

func TestBulkheadPanicStormIsolated(t *testing.T) {
	m := newTestManager(t, ManagerConfig{WarmWait: 5 * time.Second})
	dA := registerTestDesign(t, m, "panicky", nil)
	dB := registerTestDesign(t, m, "healthy", nil)
	h := m.Handler()
	m.ServerFor("panicky").FaultHook = func(site, detail string) {
		if site == SiteQuery {
			panic("injected: " + detail)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := do(t, h, http.MethodGet, "/v1/access?design=panicky&inst="+dA.Instances[i%len(dA.Instances)].Name, nil)
			if code != http.StatusInternalServerError {
				t.Errorf("panicky query = %d, want 500 (recovered panic)", code)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := do(t, h, http.MethodGet, "/v1/access?design=healthy&inst="+dB.Instances[i%len(dB.Instances)].Name, nil)
			if code != http.StatusOK {
				t.Errorf("healthy query = %d during panic storm: %s", code, body)
			}
		}(i)
	}
	wg.Wait()
	// The storm design recovered every panic; the healthy design's registry
	// entry never saw one.
	if got := m.ServerFor("panicky").reg().Counter("serve.panics").Load(); got < 20 {
		t.Fatalf("panicky serve.panics = %d, want >= 20", got)
	}
	if got := m.ServerFor("healthy").reg().Counter("serve.panics").Load(); got != 0 {
		t.Fatalf("healthy serve.panics = %d, want 0", got)
	}
}

func TestManagerMetricsLabeled(t *testing.T) {
	m := newTestManager(t, ManagerConfig{WarmWait: 5 * time.Second})
	dA := registerTestDesign(t, m, "m1", nil)
	registerTestDesign(t, m, "m2", nil)
	h := m.Handler()
	if code, _ := do(t, h, http.MethodGet, "/v1/access?design=m1&inst="+dA.Instances[0].Name, nil); code != http.StatusOK {
		t.Fatalf("query = %d", code)
	}
	code, body := do(t, h, http.MethodGet, "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`pao_queries_total{design="m1",status="ok"} 1`,
		`serve_tenant_admitted_total{design="m1",tenant="default"} 1`,
		`serve_resident_designs 2`,
		`design="m2"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	m := newTestManager(t, ManagerConfig{WarmWait: 5 * time.Second})
	d := registerTestDesign(t, m, "batchy", nil)
	h := m.Handler()

	names := []string{d.Instances[0].Name, d.Instances[1].Name, "no_such_instance"}
	body, _ := json.Marshal(BatchRequest{Instances: names})
	code, out := do(t, h, http.MethodPost, "/v1/access/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch = %d: %s", code, out)
	}
	var resp BatchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || len(resp.Answers) != 3 {
		t.Fatalf("batch count = %+v", resp)
	}
	if resp.Answers[0].Inst != names[0] || resp.Answers[0].Error != "" || len(resp.Answers[0].Pins) == 0 {
		t.Fatalf("answer 0 = %+v", resp.Answers[0])
	}
	if resp.Answers[2].Error == "" {
		t.Fatalf("unknown instance must answer a per-item error: %+v", resp.Answers[2])
	}
	// The batch's single answers must equal the per-query endpoint's.
	single := QueryResponse{}
	code, out = do(t, h, http.MethodGet, "/v1/access?inst="+names[0], nil)
	if code != http.StatusOK {
		t.Fatalf("single = %d", code)
	}
	if err := json.Unmarshal(out, &single); err != nil {
		t.Fatal(err)
	}
	if a, b := fmt.Sprintf("%+v", resp.Answers[0].QueryResponse), fmt.Sprintf("%+v", single); a != b {
		t.Fatalf("batch answer diverges from single query:\n%s\n%s", a, b)
	}

	// Parsing hardening: empty batch, oversized batch, bad method.
	if code, _ = do(t, h, http.MethodPost, "/v1/access/batch", []byte(`{"instances":[]}`)); code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", code)
	}
	if code, _ = do(t, h, http.MethodGet, "/v1/access/batch", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch = %d, want 405", code)
	}
	big := make([]string, 300)
	for i := range big {
		big[i] = fmt.Sprintf("inst_%d", i)
	}
	body, _ = json.Marshal(BatchRequest{Instances: big})
	if code, _ = do(t, h, http.MethodPost, "/v1/access/batch", body); code != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", code)
	}
	// Batch is admission-charged per instance: tenant counter moved by 3.
	if got := m.ServerFor("batchy").reg().Counter("serve.batch.instances").Load(); got != 3 {
		t.Fatalf("serve.batch.instances = %d, want 3", got)
	}
}
