package serve

// HTTP endpoints. Query handlers degrade, never 500 on bad analysis state:
// an instance whose class is quarantined in Result.Health still answers, with
// best-effort fallback access points and "degraded": true, because a router
// with an approximate answer beats a router with an error page.

import (
	"net/http"
	"time"

	"repro/internal/db"
	"repro/internal/pao"
	"repro/internal/telemetry"
)

// PinAnswer is one pin's access point in a query response.
type PinAnswer struct {
	Pin   string `json:"pin"`
	X     int64  `json:"x"`
	Y     int64  `json:"y"`
	Layer int    `json:"layer"`
	TypeX string `json:"type_x,omitempty"`
	TypeY string `json:"type_y,omitempty"`
	Via   string `json:"via,omitempty"`
	// Fallback marks a geometric pin-shape-center answer synthesized because
	// the class has no analysis data (quarantined or unanalyzed).
	Fallback bool `json:"fallback,omitempty"`
	// Failed marks a pin with no access point at all (not even a fallback
	// shape). X/Y/Layer are zero.
	Failed bool `json:"failed,omitempty"`
}

// QueryResponse answers /v1/access?inst=NAME.
type QueryResponse struct {
	Inst     string `json:"inst"`
	Class    string `json:"class"`
	Status   string `json:"status"` // ok | degraded | failed
	Degraded bool   `json:"degraded"`
	// EcoPending marks the transient window where an ECO has re-placed this
	// instance but its re-analysis has not merged yet; the pins are degraded
	// fallbacks until the post-ECO result swaps in.
	EcoPending bool        `json:"eco_pending,omitempty"`
	Pattern    int         `json:"pattern"` // selected pattern index, -1 when none
	Source     string      `json:"source"`  // snapshot | recompute | eco
	Pins       []PinAnswer `json:"pins"`
}

// HealthzResponse answers /healthz (always 200: liveness + health summary).
type HealthzResponse struct {
	Status          string  `json:"status"` // ok | degraded
	Design          string  `json:"design"`
	Source          string  `json:"source"`
	Health          string  `json:"health,omitempty"`
	FailedClasses   int     `json:"failed_classes"`
	DegradedClasses int     `json:"degraded_classes"`
	Breaker         string  `json:"breaker"`
	QueueDepth      int     `json:"queue_depth"`
	SnapshotAgeSec  float64 `json:"snapshot_age_sec"` // -1 when no snapshot
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{
		Status:         "ok",
		Design:         s.design.Name,
		Breaker:        s.brk.current().String(),
		QueueDepth:     s.adm.queueDepth(),
		SnapshotAgeSec: -1,
	}
	if last := s.lastSnapshotNS.Load(); last > 0 {
		resp.SnapshotAgeSec = s.now().Sub(time.Unix(0, last)).Seconds()
	}
	if st := s.curState.Load(); st != nil {
		resp.Source = st.source
		if h := st.res.Health; h != nil {
			resp.Health = h.String()
			resp.FailedClasses = len(h.FailedClasses())
			resp.DegradedClasses = len(h.DegradedClasses())
			if !h.OK() {
				resp.Status = "degraded"
			}
		}
	} else {
		resp.Status = "degraded"
	}
	if lat := s.reg().Histogram("serve.latency"); lat.Count() > 0 {
		resp.P50MS = float64(lat.Quantile(0.5)) / 1e6
		resp.P99MS = float64(lat.Quantile(0.99)) / 1e6
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.Ready(); !ok {
		if s.brk.current() == BreakerOpen {
			w.Header().Set("Retry-After", retryAfterSecs(s.brk.retryAfter()))
		}
		http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	s.publishGauges()
	writeJSON(w, http.StatusOK, s.reg().Snapshot())
}

// handleMetrics is the Prometheus text exposition: the labeled families
// (pao_queries_total, pao_query_seconds, pao_step_seconds, pao_access_points)
// plus every flat obs metric stamped with a design label.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.publishGauges()
	fams := append(s.prom.Gather(),
		telemetry.ObsFamilies(s.reg().Snapshot(), telemetry.Label{Name: "design", Value: s.design.Name})...)
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = telemetry.WriteProm(w, fams)
}

// handleSlowlog dumps the bounded slow-query ring, newest first, with trace
// exemplars for sampled queries.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slow.Snapshot())
}

// VersionResponse answers /version: what binary, over what design, under what
// configuration.
type VersionResponse struct {
	Build             telemetry.BuildInfo `json:"build"`
	Design            string              `json:"design"`
	DesignHash        string              `json:"design_hash"`
	ConfigFingerprint string              `json:"config_fingerprint"`
	Source            string              `json:"source,omitempty"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{
		Build:             telemetry.Build(),
		Design:            s.design.Name,
		DesignHash:        s.DesignHash(),
		ConfigFingerprint: pao.ConfigFingerprint(s.paoCfg),
		Source:            s.Source(),
	})
}

// ExplainResponse answers /v1/access/explain?inst=NAME&pin=NAME: the decision
// audit from a fresh re-derivation of the instance's class, joined with what
// the live serving state actually answers for it.
type ExplainResponse struct {
	Inst string `json:"inst"`
	*pao.ExplainReport
	// Pattern/Status/Source describe the live serving state for the instance
	// (the explain audit itself is a re-derivation and cannot disagree with
	// the served answer unless the design or config changed under the server).
	Pattern        int    `json:"pattern"`
	Status         string `json:"status"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	Source         string `json:"source"`
}

// handleExplain re-derives one pin's access decision with the audit recorder
// attached. Wrapped by admitted(), so explain traffic is rate-limited and
// slot-bounded like any query — a re-derivation runs Steps 1-2 for the whole
// class and is far heavier than an access lookup.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	st := s.curState.Load()
	if st == nil {
		http.Error(w, "analysis not loaded", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	name, pin := q.Get("inst"), q.Get("pin")
	if name == "" || pin == "" {
		http.Error(w, "missing ?inst= or ?pin= parameter", http.StatusBadRequest)
		return
	}
	// Explain re-derives over the live design; hold the read lock so an ECO
	// can't re-place instances underneath the derivation.
	s.designMu.RLock()
	defer s.designMu.RUnlock()
	inst := s.design.InstByName(name)
	if inst == nil {
		http.Error(w, "unknown instance "+name, http.StatusNotFound)
		return
	}
	sp := telemetry.SpanFrom(r.Context()).Start("explain.rederive")
	rep, err := pao.Explain(s.design, s.paoCfg, inst, pin)
	sp.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.reg().Counter("serve.explains").Inc()
	resp := ExplainResponse{
		Inst: inst.Name, ExplainReport: rep,
		Pattern: -1, Status: pao.StatusOK.String(), Source: st.source,
	}
	res := st.res
	if idx, ok := res.Selected[inst.ID]; ok && idx >= 0 {
		resp.Pattern = idx
	}
	if h := res.Health; h != nil {
		status := h.Status(rep.Class)
		resp.Status = status.String()
		if status != pao.StatusOK {
			resp.DegradedReason = h.String()
		}
	}
	if res.ByInstance[inst.ID] == nil {
		resp.Status = pao.StatusFailed.String()
		resp.DegradedReason = "class has no analysis data (quarantined or unanalyzed); live answers are fallbacks"
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.curState.Load()
	if st == nil {
		http.Error(w, "analysis not loaded", http.StatusServiceUnavailable)
		return
	}
	h := st.res.Health
	writeJSON(w, http.StatusOK, struct {
		Design   string    `json:"design"`
		Source   string    `json:"source"`
		Stats    pao.Stats `json:"stats"`
		Health   string    `json:"health,omitempty"`
		Failed   []string  `json:"failed_classes,omitempty"`
		Degraded []string  `json:"degraded_classes,omitempty"`
	}{
		Design: s.design.Name, Source: st.source, Stats: st.res.Stats,
		Health: h.String(), Failed: h.FailedClasses(), Degraded: h.DegradedClasses(),
	})
}

func (s *Server) handleReanalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	accepted, reason := s.TriggerReanalyze()
	if !accepted {
		if s.brk.current() == BreakerOpen {
			w.Header().Set("Retry-After", retryAfterSecs(s.brk.retryAfter()))
		}
		http.Error(w, "re-analysis rejected: "+reason, http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "re-analysis started"})
}

// handleAccess answers one instance's access pattern. Wrapped by admitted().
func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	st := s.curState.Load()
	if st == nil {
		http.Error(w, "analysis not loaded", http.StatusServiceUnavailable)
		return
	}
	name := r.URL.Query().Get("inst")
	if name == "" {
		http.Error(w, "missing ?inst= parameter", http.StatusBadRequest)
		return
	}
	// The read side of the design lock: an ECO's Begin briefly holds the
	// write side while it re-places instances.
	s.designMu.RLock()
	inst := s.design.InstByName(name)
	if inst == nil {
		s.designMu.RUnlock()
		http.Error(w, "unknown instance "+name, http.StatusNotFound)
		return
	}
	if h := s.FaultHook; h != nil {
		h(SiteQuery, name)
	}
	sp := telemetry.SpanFrom(r.Context()).Start("access.answer")
	resp := s.answer(st, inst)
	sp.End()
	s.designMu.RUnlock()
	if resp.Degraded {
		s.reg().Counter("serve.degraded.answers").Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// answer builds the query response from the immutable serving state.
func (s *Server) answer(st *state, inst *db.Instance) QueryResponse {
	res := st.res
	resp := QueryResponse{Inst: inst.Name, Source: st.source, Pattern: -1, Pins: []PinAnswer{}}
	if st.ecoDirty[inst.ID] {
		// Mid-ECO window and this instance's class binding is stale: the
		// stored analysis describes its old placement, so synthesize
		// clearly-marked geometric fallbacks at the new placement.
		s.reg().Counter("serve.eco.degraded.answers").Inc()
		resp.Class = s.design.InstanceSignature(inst)
		resp.Status = pao.StatusDegraded.String()
		resp.Degraded = true
		resp.EcoPending = true
		for _, pin := range inst.Master.SignalPins() {
			resp.Pins = append(resp.Pins, fallbackAnswer(inst, pin))
		}
		return resp
	}
	ua := res.ByInstance[inst.ID]
	if ua != nil {
		resp.Class = ua.UI.Signature()
	} else {
		resp.Class = s.design.InstanceSignature(inst)
	}
	status := pao.StatusOK
	if res.Health != nil {
		status = res.Health.Status(resp.Class)
	}
	if ua == nil {
		status = pao.StatusFailed
	}
	resp.Status = status.String()
	resp.Degraded = status != pao.StatusOK

	if ua == nil {
		// No analysis for this class (quarantined in Step 1/2, or the run was
		// cancelled before reaching it): synthesize pin-shape-center fallbacks
		// so the caller still gets a usable, clearly-marked answer.
		s.reg().Counter("serve.fallback.answers").Inc()
		for _, pin := range inst.Master.SignalPins() {
			resp.Pins = append(resp.Pins, fallbackAnswer(inst, pin))
		}
		return resp
	}

	if idx, ok := res.Selected[inst.ID]; ok && idx >= 0 && idx < len(ua.Patterns) {
		resp.Pattern = idx
	}
	for _, pa := range ua.Pins {
		ap := res.AccessPointFor(inst, pa.Pin)
		if ap == nil {
			// Pin analyzed but access-less: fall back to geometry too.
			ans := fallbackAnswer(inst, pa.Pin)
			if !ans.Failed {
				resp.Degraded = true
			}
			resp.Pins = append(resp.Pins, ans)
			continue
		}
		ans := PinAnswer{
			Pin: pa.Pin.Name, X: ap.Pos.X, Y: ap.Pos.Y, Layer: ap.Layer,
			TypeX: ap.TypeX.String(), TypeY: ap.TypeY.String(),
		}
		if v := ap.Primary(); v != nil {
			ans.Via = v.Name
		}
		resp.Pins = append(resp.Pins, ans)
	}
	return resp
}

// fallbackAnswer is the degraded-path answer: the center of the pin's first
// shape on its lowest metal layer, in design coordinates.
func fallbackAnswer(inst *db.Instance, pin *db.MPin) PinAnswer {
	shapes := inst.PinShapes(pin)
	if len(shapes) == 0 {
		return PinAnswer{Pin: pin.Name, Failed: true}
	}
	best := shapes[0]
	for _, sh := range shapes[1:] {
		if sh.Layer < best.Layer {
			best = sh
		}
	}
	return PinAnswer{
		Pin:      pin.Name,
		X:        (best.Rect.XL + best.Rect.XH) / 2,
		Y:        (best.Rect.YL + best.Rect.YH) / 2,
		Layer:    best.Layer,
		Fallback: true,
	}
}
