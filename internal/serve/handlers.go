package serve

// HTTP endpoints. Query handlers degrade, never 500 on bad analysis state:
// an instance whose class is quarantined in Result.Health still answers, with
// best-effort fallback access points and "degraded": true, because a router
// with an approximate answer beats a router with an error page.

import (
	"net/http"
	"time"

	"repro/internal/db"
	"repro/internal/pao"
)

// PinAnswer is one pin's access point in a query response.
type PinAnswer struct {
	Pin   string `json:"pin"`
	X     int64  `json:"x"`
	Y     int64  `json:"y"`
	Layer int    `json:"layer"`
	TypeX string `json:"type_x,omitempty"`
	TypeY string `json:"type_y,omitempty"`
	Via   string `json:"via,omitempty"`
	// Fallback marks a geometric pin-shape-center answer synthesized because
	// the class has no analysis data (quarantined or unanalyzed).
	Fallback bool `json:"fallback,omitempty"`
	// Failed marks a pin with no access point at all (not even a fallback
	// shape). X/Y/Layer are zero.
	Failed bool `json:"failed,omitempty"`
}

// QueryResponse answers /v1/access?inst=NAME.
type QueryResponse struct {
	Inst     string      `json:"inst"`
	Class    string      `json:"class"`
	Status   string      `json:"status"` // ok | degraded | failed
	Degraded bool        `json:"degraded"`
	Pattern  int         `json:"pattern"` // selected pattern index, -1 when none
	Source   string      `json:"source"`  // snapshot | recompute
	Pins     []PinAnswer `json:"pins"`
}

// HealthzResponse answers /healthz (always 200: liveness + health summary).
type HealthzResponse struct {
	Status          string  `json:"status"` // ok | degraded
	Design          string  `json:"design"`
	Source          string  `json:"source"`
	Health          string  `json:"health,omitempty"`
	FailedClasses   int     `json:"failed_classes"`
	DegradedClasses int     `json:"degraded_classes"`
	Breaker         string  `json:"breaker"`
	QueueDepth      int     `json:"queue_depth"`
	SnapshotAgeSec  float64 `json:"snapshot_age_sec"` // -1 when no snapshot
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{
		Status:         "ok",
		Design:         s.design.Name,
		Breaker:        s.brk.current().String(),
		QueueDepth:     s.adm.queueDepth(),
		SnapshotAgeSec: -1,
	}
	if last := s.lastSnapshotNS.Load(); last > 0 {
		resp.SnapshotAgeSec = s.now().Sub(time.Unix(0, last)).Seconds()
	}
	if st := s.curState.Load(); st != nil {
		resp.Source = st.source
		if h := st.res.Health; h != nil {
			resp.Health = h.String()
			resp.FailedClasses = len(h.FailedClasses())
			resp.DegradedClasses = len(h.DegradedClasses())
			if !h.OK() {
				resp.Status = "degraded"
			}
		}
	} else {
		resp.Status = "degraded"
	}
	if lat := s.reg().Histogram("serve.latency"); lat.Count() > 0 {
		resp.P50MS = float64(lat.Quantile(0.5)) / 1e6
		resp.P99MS = float64(lat.Quantile(0.99)) / 1e6
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.Ready(); !ok {
		if s.brk.current() == BreakerOpen {
			w.Header().Set("Retry-After", retryAfterSecs(s.brk.retryAfter()))
		}
		http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	s.publishGauges()
	writeJSON(w, http.StatusOK, s.reg().Snapshot())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.curState.Load()
	if st == nil {
		http.Error(w, "analysis not loaded", http.StatusServiceUnavailable)
		return
	}
	h := st.res.Health
	writeJSON(w, http.StatusOK, struct {
		Design   string    `json:"design"`
		Source   string    `json:"source"`
		Stats    pao.Stats `json:"stats"`
		Health   string    `json:"health,omitempty"`
		Failed   []string  `json:"failed_classes,omitempty"`
		Degraded []string  `json:"degraded_classes,omitempty"`
	}{
		Design: s.design.Name, Source: st.source, Stats: st.res.Stats,
		Health: h.String(), Failed: h.FailedClasses(), Degraded: h.DegradedClasses(),
	})
}

func (s *Server) handleReanalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	accepted, reason := s.TriggerReanalyze()
	if !accepted {
		if s.brk.current() == BreakerOpen {
			w.Header().Set("Retry-After", retryAfterSecs(s.brk.retryAfter()))
		}
		http.Error(w, "re-analysis rejected: "+reason, http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "re-analysis started"})
}

// handleAccess answers one instance's access pattern. Wrapped by admitted().
func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	st := s.curState.Load()
	if st == nil {
		http.Error(w, "analysis not loaded", http.StatusServiceUnavailable)
		return
	}
	name := r.URL.Query().Get("inst")
	if name == "" {
		http.Error(w, "missing ?inst= parameter", http.StatusBadRequest)
		return
	}
	inst := s.design.InstByName(name)
	if inst == nil {
		http.Error(w, "unknown instance "+name, http.StatusNotFound)
		return
	}
	if h := s.FaultHook; h != nil {
		h(SiteQuery, name)
	}
	resp := s.answer(st, inst)
	if resp.Degraded {
		s.reg().Counter("serve.degraded.answers").Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// answer builds the query response from the immutable serving state.
func (s *Server) answer(st *state, inst *db.Instance) QueryResponse {
	res := st.res
	resp := QueryResponse{Inst: inst.Name, Source: st.source, Pattern: -1, Pins: []PinAnswer{}}
	ua := res.ByInstance[inst.ID]
	if ua != nil {
		resp.Class = ua.UI.Signature()
	} else {
		resp.Class = s.design.InstanceSignature(inst)
	}
	status := pao.StatusOK
	if res.Health != nil {
		status = res.Health.Status(resp.Class)
	}
	if ua == nil {
		status = pao.StatusFailed
	}
	resp.Status = status.String()
	resp.Degraded = status != pao.StatusOK

	if ua == nil {
		// No analysis for this class (quarantined in Step 1/2, or the run was
		// cancelled before reaching it): synthesize pin-shape-center fallbacks
		// so the caller still gets a usable, clearly-marked answer.
		s.reg().Counter("serve.fallback.answers").Inc()
		for _, pin := range inst.Master.SignalPins() {
			resp.Pins = append(resp.Pins, fallbackAnswer(inst, pin))
		}
		return resp
	}

	if idx, ok := res.Selected[inst.ID]; ok && idx >= 0 && idx < len(ua.Patterns) {
		resp.Pattern = idx
	}
	for _, pa := range ua.Pins {
		ap := res.AccessPointFor(inst, pa.Pin)
		if ap == nil {
			// Pin analyzed but access-less: fall back to geometry too.
			ans := fallbackAnswer(inst, pa.Pin)
			if !ans.Failed {
				resp.Degraded = true
			}
			resp.Pins = append(resp.Pins, ans)
			continue
		}
		ans := PinAnswer{
			Pin: pa.Pin.Name, X: ap.Pos.X, Y: ap.Pos.Y, Layer: ap.Layer,
			TypeX: ap.TypeX.String(), TypeY: ap.TypeY.String(),
		}
		if v := ap.Primary(); v != nil {
			ans.Via = v.Name
		}
		resp.Pins = append(resp.Pins, ans)
	}
	return resp
}

// fallbackAnswer is the degraded-path answer: the center of the pin's first
// shape on its lowest metal layer, in design coordinates.
func fallbackAnswer(inst *db.Instance, pin *db.MPin) PinAnswer {
	shapes := inst.PinShapes(pin)
	if len(shapes) == 0 {
		return PinAnswer{Pin: pin.Name, Failed: true}
	}
	best := shapes[0]
	for _, sh := range shapes[1:] {
		if sh.Layer < best.Layer {
			best = sh
		}
	}
	return PinAnswer{
		Pin:      pin.Name,
		X:        (best.Rect.XL + best.Rect.XH) / 2,
		Y:        (best.Rect.YL + best.Rect.YH) / 2,
		Layer:    best.Layer,
		Fallback: true,
	}
}
