package serve

// Admission control: every request passes a per-tenant token-bucket rate
// limiter, then competes for one of MaxInFlight execution slots with at most
// QueueDepth requests waiting. Overload is shed explicitly — 429 for rate,
// 503 for a full queue — with Retry-After hints, so saturation degrades
// throughput instead of stretching every caller's latency.
//
// Fairness: the waiting line is not a single FIFO. Waiters queue per tenant
// and a deficit-round-robin scheduler dequeues across tenants, so one
// tenant's burst lines up behind its own earlier requests instead of
// starving everyone else. Each waiter carries a cost (1 for a single query,
// N for an N-instance batch); DRR charges the deficit by cost, so a giant
// batch cannot monopolize the slots either — other tenants' cheap requests
// interleave ahead of it in proportion.

import (
	"context"
	"math"
	"sync"
	"time"
)

// tokenBucket is a classic leaky-refill rate limiter. rate <= 0 disables it.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, now: now}
}

// take consumes one token. On refusal it returns the wait until a token will
// be available, for the Retry-After header. A nil bucket always admits.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	return b.takeN(1)
}

// takeN consumes n tokens at once (an N-instance batch is admission-charged
// per instance). A batch larger than the burst can never be admitted while
// rate limiting is on; the returned retryAfter still hints when the bucket
// will be as full as it gets.
func (b *tokenBucket) takeN(n int) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	need := float64(n)
	if need < 1 {
		need = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	short := need - b.tokens
	if need > b.burst {
		short = b.burst - b.tokens // the bucket will never hold more
	}
	wait := math.Ceil(short / b.rate)
	if wait < 1 {
		wait = 1 // a refusal always hints a positive backoff
	}
	return false, time.Duration(wait) * time.Second
}

// waiter is one queued request: its tenant queue position, its DRR cost, and
// the channel a dispatcher grants a slot on.
type waiter struct {
	tenant    string
	cost      int
	grant     chan struct{} // buffered(1): dispatch never blocks on a waiter
	cancelled bool          // guarded by admission.mu; skipped by dispatch
}

// admission bounds concurrent execution and the waiting lines in front of it.
// Slots count requests (a batch holds one slot); fairness between tenants is
// enforced at dequeue time by deficit round robin over per-tenant FIFOs.
type admission struct {
	mu       sync.Mutex
	inflight int
	max      int
	depth    int // max waiting requests across all tenants; < 0 means unbounded
	waiting  int // live (non-cancelled) waiters
	queues   map[string][]*waiter
	order    []string // round-robin ring of tenants with queued waiters
	rr       int      // ring index of the next tenant to visit
	deficit  map[string]int
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &admission{
		max:     maxInFlight,
		depth:   queueDepth,
		queues:  make(map[string][]*waiter),
		deficit: make(map[string]int),
	}
}

// acquire claims an execution slot for tenant, queueing up to the depth
// bound. It returns a release func on success; a nil release means the
// request was shed (queue full, or ctx expired while waiting — both a 503 to
// the caller). cost weights the fair dequeue; it does not consume extra
// slots.
func (a *admission) acquire(ctx context.Context, tenant string, cost int) (release func(), queued int, ok bool) {
	if cost < 1 {
		cost = 1
	}
	a.mu.Lock()
	// Fast path only when nobody is waiting: a free slot must not let a
	// newcomer jump tenants already in line.
	if a.inflight < a.max && a.waiting == 0 {
		a.inflight++
		a.mu.Unlock()
		return a.release, 0, true
	}
	if a.depth >= 0 && a.waiting >= a.depth {
		a.mu.Unlock()
		return nil, a.depth, false
	}
	w := &waiter{tenant: tenant, cost: cost, grant: make(chan struct{}, 1)}
	if len(a.queues[tenant]) == 0 {
		a.order = append(a.order, tenant)
	}
	a.queues[tenant] = append(a.queues[tenant], w)
	a.waiting++
	queued = a.waiting
	// A slot may be free right now (e.g. freed between our depth check and
	// enqueue, or inflight < max with waiters ahead of us): dispatch.
	a.dispatchLocked()
	a.mu.Unlock()

	select {
	case <-w.grant:
		return a.release, queued, true
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.grant:
			// Granted concurrently with cancellation: hand the slot on.
			a.inflight--
			a.dispatchLocked()
			a.mu.Unlock()
			return nil, queued, false
		default:
		}
		w.cancelled = true
		a.waiting--
		a.mu.Unlock()
		return nil, queued, false
	}
}

func (a *admission) release() {
	a.mu.Lock()
	a.inflight--
	a.dispatchLocked()
	a.mu.Unlock()
}

// dispatchLocked grants free slots to queued waiters in DRR order.
func (a *admission) dispatchLocked() {
	for a.inflight < a.max && a.waiting > 0 {
		w := a.nextLocked()
		if w == nil {
			return
		}
		a.inflight++
		a.waiting--
		w.grant <- struct{}{}
	}
}

// nextLocked is the deficit-round-robin scheduler: visit tenants in ring
// order, add one quantum per visit, and serve a tenant's head waiter once
// its deficit covers the waiter's cost. Cost-1 waiters dequeue every visit;
// an N-cost batch waits N visits, letting other tenants pass in between.
func (a *admission) nextLocked() *waiter {
	for len(a.order) > 0 {
		if a.rr >= len(a.order) {
			a.rr = 0
		}
		t := a.order[a.rr]
		q := a.queues[t]
		for len(q) > 0 && q[0].cancelled {
			q = q[1:]
		}
		if len(q) == 0 {
			delete(a.queues, t)
			delete(a.deficit, t)
			a.order = append(a.order[:a.rr], a.order[a.rr+1:]...)
			continue
		}
		a.queues[t] = q
		a.deficit[t]++
		if a.deficit[t] >= q[0].cost {
			w := q[0]
			a.deficit[t] -= w.cost
			if len(q) == 1 {
				delete(a.queues, t)
				delete(a.deficit, t)
				a.order = append(a.order[:a.rr], a.order[a.rr+1:]...)
			} else {
				a.queues[t] = q[1:]
				a.rr++
			}
			return w
		}
		a.rr++
	}
	return nil
}

// queueDepth returns the number of requests currently waiting.
func (a *admission) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}
