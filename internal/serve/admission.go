package serve

// Admission control: every request passes a token-bucket rate limiter, then
// competes for one of MaxInFlight execution slots with at most QueueDepth
// requests waiting. Overload is shed explicitly — 429 for rate, 503 for a
// full queue — with Retry-After hints, so saturation degrades throughput
// instead of stretching every caller's latency.

import (
	"context"
	"math"
	"sync"
	"time"
)

// tokenBucket is a classic leaky-refill rate limiter. rate <= 0 disables it.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, now: now}
}

// take consumes one token. On refusal it returns the wait until a token will
// be available, for the Retry-After header. A nil bucket always admits.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// admission bounds concurrent execution and the waiting line in front of it.
type admission struct {
	sem     chan struct{}
	mu      sync.Mutex
	waiting int
	depth   int // max waiting requests; < 0 means unbounded
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &admission{sem: make(chan struct{}, maxInFlight), depth: queueDepth}
}

// acquire claims an execution slot, queueing up to the depth bound. It
// returns a release func on success; a nil release means the request was shed
// (queue full, or ctx expired while waiting — both a 503 to the caller).
func (a *admission) acquire(ctx context.Context) (release func(), queued int, ok bool) {
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, 0, true
	default:
	}
	a.mu.Lock()
	if a.depth >= 0 && a.waiting >= a.depth {
		a.mu.Unlock()
		return nil, a.depth, false
	}
	a.waiting++
	queued = a.waiting
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, queued, true
	case <-ctx.Done():
		return nil, queued, false
	}
}

// queueDepth returns the number of requests currently waiting.
func (a *admission) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}
