package serve

// Eviction correctness: evict → lazy warm restart → query must answer
// byte-identical to the never-evicted answers (modulo the source-provenance
// field, which legitimately flips to "snapshot"), with the result cache on
// and off; corrupt snapshots fall back to recompute; the LRU budget evicts
// the coldest design; and a register/evict/query/ECO storm survives -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/pao"
)

// answersFor queries every listed instance and returns the responses with
// Source cleared (provenance legitimately differs across a warm restart) but
// everything else byte-exact, re-marshalled for comparison.
func answersFor(t *testing.T, h http.Handler, design string, insts []string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(insts))
	for _, name := range insts {
		code, body := do(t, h, http.MethodGet, "/v1/access?design="+design+"&inst="+name, nil)
		if code != http.StatusOK {
			t.Fatalf("query %s = %d: %s", name, code, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		qr.Source = ""
		norm, err := json.Marshal(qr)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = norm
	}
	return out
}

func TestEvictWarmRestartByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		noCache bool
	}{
		{"cache-on", false},
		{"cache-off", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			paoCfg := pao.DefaultConfig()
			paoCfg.NoCache = tc.noCache
			m := NewManager(paoCfg, ManagerConfig{
				SnapshotDir: t.TempDir(),
				WarmWait:    10 * time.Second,
			})
			t.Cleanup(m.bgCancel)
			d := registerTestDesign(t, m, "evictme", nil)
			h := m.Handler()
			srv := m.ServerFor("evictme")

			var insts []string
			for _, inst := range d.Instances {
				insts = append(insts, inst.Name)
				if len(insts) == 16 {
					break
				}
			}
			before := answersFor(t, h, "evictme", insts)
			var beforeSnap bytes.Buffer
			if err := pao.EncodeSnapshot(&beforeSnap, d, paoCfg, srv.Result()); err != nil {
				t.Fatal(err)
			}

			// Evict: snapshot written, result released.
			code, body := do(t, h, http.MethodPost, "/v1/designs/evictme/evict", nil)
			if code != http.StatusOK {
				t.Fatalf("evict = %d: %s", code, body)
			}
			if st, _ := m.StateFor("evictme"); st != DesignEvicted {
				t.Fatalf("state after evict = %v, want evicted", st)
			}
			if srv.Result() != nil {
				t.Fatal("result still resident after evict")
			}
			// Double evict is a no-op conflict, not a crash.
			if code, _ = do(t, h, http.MethodPost, "/v1/designs/evictme/evict", nil); code != http.StatusConflict {
				t.Fatalf("double evict = %d, want 409", code)
			}

			// Next query lazily warm-restarts from the snapshot and must
			// answer byte-identical.
			after := answersFor(t, h, "evictme", insts)
			if src := srv.Source(); src != "snapshot" {
				t.Fatalf("post-evict source = %q, want snapshot (recompute means the snapshot was ignored)", src)
			}
			for _, name := range insts {
				if !bytes.Equal(before[name], after[name]) {
					t.Fatalf("%s: answer changed across evict/warm-restart:\n%s\n%s",
						name, before[name], after[name])
				}
			}
			// The restored result re-encodes to the identical snapshot stream.
			var afterSnap bytes.Buffer
			if err := pao.EncodeSnapshot(&afterSnap, d, paoCfg, srv.Result()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(beforeSnap.Bytes(), afterSnap.Bytes()) {
				t.Fatalf("snapshot streams differ across evict/warm-restart (%d vs %d bytes)",
					beforeSnap.Len(), afterSnap.Len())
			}
			if got := m.reg().Counter("serve.evictions").Load(); got != 1 {
				t.Fatalf("serve.evictions = %d, want 1", got)
			}
			if got := m.reg().Counter("serve.warm_restarts").Load(); got != 1 {
				t.Fatalf("serve.warm_restarts = %d, want 1", got)
			}
		})
	}
}

func TestEvictWithoutSnapshotDirRecomputes(t *testing.T) {
	m := newTestManager(t, ManagerConfig{WarmWait: 10 * time.Second})
	d := registerTestDesign(t, m, "nodisk", nil)
	h := m.Handler()
	insts := []string{d.Instances[0].Name, d.Instances[1].Name}
	before := answersFor(t, h, "nodisk", insts)

	if err := m.EvictDesign(context.Background(), "nodisk"); err != nil {
		t.Fatal(err)
	}
	after := answersFor(t, h, "nodisk", insts)
	if src := m.ServerFor("nodisk").Source(); src != "recompute" {
		t.Fatalf("source = %q, want recompute (no snapshot dir)", src)
	}
	for _, name := range insts {
		if !bytes.Equal(before[name], after[name]) {
			t.Fatalf("%s: recompute after evict changed the answer", name)
		}
	}
}

func TestEvictCorruptSnapshotFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(pao.DefaultConfig(), ManagerConfig{SnapshotDir: dir, WarmWait: 10 * time.Second})
	t.Cleanup(m.bgCancel)
	d := registerTestDesign(t, m, "corrupted", nil)
	h := m.Handler()
	insts := []string{d.Instances[0].Name, d.Instances[1].Name, d.Instances[2].Name}
	before := answersFor(t, h, "corrupted", insts)

	if err := m.EvictDesign(context.Background(), "corrupted"); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the middle of the snapshot: the checksum must catch it.
	path := m.snapPath("corrupted")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	after := answersFor(t, h, "corrupted", insts)
	srv := m.ServerFor("corrupted")
	if src := srv.Source(); src != "recompute" {
		t.Fatalf("source = %q, want recompute after corruption", src)
	}
	if got := srv.reg().Counter("serve.snapshot.corrupt").Load(); got == 0 {
		t.Fatal("serve.snapshot.corrupt = 0, want > 0")
	}
	for _, name := range insts {
		if !bytes.Equal(before[name], after[name]) {
			t.Fatalf("%s: corrupt-fallback recompute changed the answer", name)
		}
	}
}

func TestLRUBudgetEvictsColdestDesign(t *testing.T) {
	m := NewManager(pao.DefaultConfig(), ManagerConfig{
		SnapshotDir: t.TempDir(),
		MaxResident: 2,
		WarmWait:    10 * time.Second,
	})
	t.Cleanup(m.bgCancel)
	h := m.Handler()
	registerTestDesign(t, m, "old", nil)
	dWarm := registerTestDesign(t, m, "warm", nil)

	// Touch "warm" so "old" is the coldest ready design.
	if code, _ := do(t, h, http.MethodGet, "/v1/access?design=warm&inst="+dWarm.Instances[0].Name, nil); code != http.StatusOK {
		t.Fatal("touch query failed")
	}
	// A third registration exceeds the budget: "old" must evict, not "warm".
	registerTestDesign(t, m, "new", nil)
	if st, _ := m.StateFor("old"); st != DesignEvicted {
		t.Fatalf("old state = %v, want evicted (LRU)", st)
	}
	for _, id := range []string{"warm", "new"} {
		if st, _ := m.StateFor(id); st != DesignReady {
			t.Fatalf("%s state = %v, want ready", id, st)
		}
	}
	if got := m.reg().Counter("serve.evictions").Load(); got != 1 {
		t.Fatalf("serve.evictions = %d, want 1", got)
	}
	// Querying the evicted design warms it back and re-evicts the new
	// coldest; the registry never exceeds its budget for long.
	if code, _ := do(t, h, http.MethodGet, "/v1/access?design=old&inst="+dWarm.Instances[0].Name, nil); code != http.StatusOK {
		t.Fatal("warm-restart query failed")
	}
	waitFor(t, func() bool { return m.residentCount() <= 2 })
}

func TestWarmWaitZeroAnswers202(t *testing.T) {
	m := NewManager(pao.DefaultConfig(), ManagerConfig{SnapshotDir: t.TempDir(), WarmWait: 0})
	t.Cleanup(m.bgCancel)
	d := registerTestDesign(t, m, "lazy", nil)
	h := m.Handler()
	if err := m.EvictDesign(context.Background(), "lazy"); err != nil {
		t.Fatal(err)
	}
	code, body := do(t, h, http.MethodGet, "/v1/access?design=lazy&inst="+d.Instances[0].Name, nil)
	if code != http.StatusAccepted {
		t.Fatalf("query on evicted design = %d, want 202: %s", code, body)
	}
	var resp map[string]string
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["status"] != "warming" || resp["design"] != "lazy" {
		t.Fatalf("202 body = %v", resp)
	}
	// The 202 kicked off the warm restart; once ready, queries serve again.
	waitFor(t, func() bool { st, _ := m.StateFor("lazy"); return st == DesignReady })
	if code, _ := do(t, h, http.MethodGet, "/v1/access?design=lazy&inst="+d.Instances[0].Name, nil); code != http.StatusOK {
		t.Fatalf("post-warm query = %d, want 200", code)
	}
}

func TestRegisterFromUploadedSnapshot(t *testing.T) {
	// First manager computes the design and yields its snapshot stream.
	m1 := newTestManager(t, ManagerConfig{})
	d1 := registerTestDesign(t, m1, "snapme", nil)
	var snap bytes.Buffer
	if err := pao.EncodeSnapshot(&snap, d1, m1.paoCfg, m1.ServerFor("snapme").Result()); err != nil {
		t.Fatal(err)
	}

	// Second manager registers the same case with the uploaded snapshot:
	// no recompute, source is "snapshot".
	m2 := newTestManager(t, ManagerConfig{})
	h := m2.Handler()
	reg, _ := json.Marshal(RegisterRequest{
		ID: "snapme", Case: "pao_test1", Scale: 0.01, Seed: 7,
		Snapshot: snap.Bytes(),
	})
	code, body := do(t, h, http.MethodPost, "/v1/designs", reg)
	if code != http.StatusCreated {
		t.Fatalf("snapshot register = %d: %s", code, body)
	}
	if src := m2.ServerFor("snapme").Source(); src != "snapshot" {
		t.Fatalf("source = %q, want snapshot", src)
	}

	// A corrupt upload falls back to compute — registration still succeeds.
	m3 := newTestManager(t, ManagerConfig{})
	bad := append([]byte{}, snap.Bytes()...)
	for i := len(bad) / 2; i < len(bad)/2+8 && i < len(bad); i++ {
		bad[i] ^= 0xFF
	}
	reg, _ = json.Marshal(RegisterRequest{
		ID: "snapme", Case: "pao_test1", Scale: 0.01, Seed: 7, Snapshot: bad,
	})
	code, body = do(t, m3.Handler(), http.MethodPost, "/v1/designs", reg)
	if code != http.StatusCreated {
		t.Fatalf("corrupt-snapshot register = %d: %s", code, body)
	}
	if src := m3.ServerFor("snapme").Source(); src != "recompute" {
		t.Fatalf("source = %q, want recompute fallback", src)
	}
	if got := m3.reg().Counter("serve.register.snapshot_rejected").Load(); got != 1 {
		t.Fatalf("serve.register.snapshot_rejected = %d, want 1", got)
	}
}

// TestConcurrentRegisterEvictQueryECO is the chaos race test: registrations,
// deletions, evictions, queries and ECO transactions hammer the manager
// concurrently; nothing may 500, deadlock, or trip the race detector.
func TestConcurrentRegisterEvictQueryECO(t *testing.T) {
	m := NewManager(pao.DefaultConfig(), ManagerConfig{
		SnapshotDir: t.TempDir(),
		WarmWait:    5 * time.Second,
	})
	t.Cleanup(m.bgCancel)
	dBase := registerTestDesign(t, m, "base", nil)
	dECO := registerTestDesign(t, m, "ecotgt", nil)
	h := m.Handler()

	flux := serveDesign(t)
	flux.Name = "flux"

	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(3*time.Second, func() { close(stop) })

	// Register/delete churn on "flux".
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := m.RegisterDesign(context.Background(), "flux", flux, m.paoCfg, nil)
			if err == nil {
				_ = m.DeleteDesign("flux")
			}
		}
	}()
	// Eviction pressure on "base".
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.EvictDesign(context.Background(), "base")
			time.Sleep(time.Millisecond)
		}
	}()
	// Query storms on "base" and "ecotgt": 200/202 only, never 5xx/404.
	for _, target := range []struct {
		id string
		d  []string
	}{
		{"base", []string{dBase.Instances[0].Name, dBase.Instances[1].Name}},
		{"ecotgt", []string{dECO.Instances[0].Name, dECO.Instances[1].Name}},
	} {
		target := target
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				inst := target.d[i%len(target.d)]
				code, body := do(t, h, http.MethodGet, "/v1/access?design="+target.id+"&inst="+inst, nil)
				switch code {
				case http.StatusOK, http.StatusAccepted, http.StatusServiceUnavailable:
				default:
					t.Errorf("chaos query %s = %d: %s", target.id, code, body)
					return
				}
			}
		}()
	}
	// ECO churn on "ecotgt": move an instance back and forth.
	wg.Add(1)
	go func() {
		defer wg.Done()
		inst := dECO.Instances[0]
		x, y := inst.Pos.X, inst.Pos.Y
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			dx := int64(i%2) * 10
			op := fmt.Sprintf(`{"ops":[{"op":"move","inst":%q,"x":%d,"y":%d}]}`, inst.Name, x+dx, y)
			code, body := do(t, h, http.MethodPost, "/v1/eco?design=ecotgt", []byte(op))
			switch code {
			case http.StatusOK, http.StatusAccepted, http.StatusConflict, http.StatusServiceUnavailable, http.StatusTooManyRequests:
			default:
				t.Errorf("chaos ECO = %d: %s", code, body)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()

	// The registry must still be fully serviceable afterwards.
	for _, id := range []string{"base", "ecotgt"} {
		waitFor(t, func() bool {
			code, _ := do(t, h, http.MethodGet, "/v1/access?design="+id+"&inst="+dBase.Instances[0].Name, nil)
			return code == http.StatusOK || code == http.StatusNotFound
		})
	}
	code, body := do(t, h, http.MethodGet, "/v1/designs", nil)
	if code != http.StatusOK {
		t.Fatalf("final list = %d: %s", code, body)
	}
}
