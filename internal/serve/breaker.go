package serve

// Circuit breaker over re-analysis: repeated recovered panics (from query
// handlers or pipeline runs) trip it open, refusing further re-analysis for a
// cooldown instead of grinding the server through the same crash loop. After
// the cooldown one probe is allowed (half-open); its outcome closes or
// re-opens the breaker.

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

var breakerNames = [...]string{"closed", "open", "half-open"}

func (s BreakerState) String() string {
	if int(s) < len(breakerNames) {
		return breakerNames[s]
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

type breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	threshold int // consecutive failures that trip the breaker
	cooldown  time.Duration
	openedAt  time.Time
	now       func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a protected operation may start now. An open breaker
// transitions to half-open (admitting one probe) once the cooldown elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	default: // open
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	}
}

// success records a clean protected run and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = BreakerClosed
}

// failure records a faulty run; enough consecutive failures (or any failure
// while half-open) trip the breaker open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// current returns the state for /healthz and the breaker gauge.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// retryAfter returns the remaining cooldown, for Retry-After on 503s.
func (b *breaker) retryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cooldown - b.now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}
