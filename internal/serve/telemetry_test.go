package serve

// Telemetry endpoint tests: the Prometheus exposition must parse under the
// strict text-format checker while queries run concurrently, the explain
// endpoint must serve the decision audit joined with live serving state, and
// every admitted query must carry a correlation ID into the slow log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestServeExplainEndpoint(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{})
	mustInit(t, s)
	h := s.Handler()

	inst := d.Instances[0]
	pins := inst.Master.SignalPins()
	if len(pins) == 0 {
		t.Fatal("test design has no signal pins")
	}
	pin := pins[0].Name

	code, hdr, body := get(t, h, "/v1/access/explain?inst="+inst.Name+"&pin="+pin)
	if code != http.StatusOK {
		t.Fatalf("explain = %d (%s), want 200", code, body)
	}
	if hdr.Get("X-Correlation-Id") == "" {
		t.Fatal("explain response missing X-Correlation-Id")
	}
	var resp ExplainResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad explain JSON: %v\n%s", err, body)
	}
	if resp.Inst != inst.Name || resp.Pin != pin {
		t.Fatalf("explain identity = %s/%s, want %s/%s", resp.Inst, resp.Pin, inst.Name, pin)
	}
	if resp.Source != "recompute" || resp.Status != "ok" {
		t.Fatalf("explain serving state = %s/%s, want recompute/ok", resp.Source, resp.Status)
	}
	if resp.Quarantined {
		t.Fatalf("explain quarantined: %s", resp.QuarantineError)
	}
	if len(resp.APs) == 0 {
		t.Fatal("explain audit has no candidate APs")
	}
	accepted := 0
	for _, ap := range resp.APs {
		if ap.Accepted {
			accepted++
		} else if ap.Reject == "" {
			t.Fatalf("rejected candidate (%d,%d) carries no reject reason", ap.X, ap.Y)
		}
	}
	if accepted != resp.AcceptedAPs {
		t.Fatalf("audit accepts %d candidates, report says %d", accepted, resp.AcceptedAPs)
	}
	if !resp.Cached {
		t.Fatal("explain under the serving config should run cached")
	}

	// The live answer and the audit must agree on the selected pattern.
	qcode, q, _ := queryInst(t, h, inst.Name)
	if qcode != http.StatusOK {
		t.Fatalf("access query = %d", qcode)
	}
	if resp.Pattern != q.Pattern {
		t.Fatalf("explain pattern %d != served pattern %d", resp.Pattern, q.Pattern)
	}
	if resp.PatternCount == 0 {
		t.Fatal("explain audit reports zero patterns for a healthy class")
	}

	// Parameter and lookup failures.
	if code, _, _ := get(t, h, "/v1/access/explain?inst="+inst.Name); code != http.StatusBadRequest {
		t.Fatalf("missing pin = %d, want 400", code)
	}
	if code, _, _ := get(t, h, "/v1/access/explain?pin="+pin); code != http.StatusBadRequest {
		t.Fatalf("missing inst = %d, want 400", code)
	}
	if code, _, _ := get(t, h, "/v1/access/explain?inst=no_such&pin="+pin); code != http.StatusNotFound {
		t.Fatalf("unknown instance = %d, want 404", code)
	}
	if code, _, _ := get(t, h, "/v1/access/explain?inst="+inst.Name+"&pin=no_such"); code != http.StatusNotFound {
		t.Fatalf("unknown pin = %d, want 404", code)
	}
}

func TestServeMetricsPromFormat(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{})
	mustInit(t, s)
	h := s.Handler()

	const n = 5
	for i := 0; i < n; i++ {
		if code, _, _ := queryInst(t, h, d.Instances[0].Name); code != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	get(t, h, "/v1/access") // 400: client_error series

	code, hdr, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	scrape, err := telemetry.CheckProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}

	okSeries := fmt.Sprintf("pao_queries_total{design=%q,status=%q}", d.Name, "ok")
	if got := scrape.Series[okSeries]; got < n {
		t.Fatalf("%s = %v, want >= %d", okSeries, got, n)
	}
	clientErr := fmt.Sprintf("pao_queries_total{design=%q,status=%q}", d.Name, "client_error")
	if got := scrape.Series[clientErr]; got < 1 {
		t.Fatalf("%s = %v, want >= 1", clientErr, got)
	}
	if typ := scrape.Families["pao_query_seconds"].Type; typ != "histogram" {
		t.Fatalf("pao_query_seconds type = %q, want histogram", typ)
	}
	cnt := fmt.Sprintf("pao_query_seconds_count{design=%q}", d.Name)
	if got := scrape.Series[cnt]; got < n {
		t.Fatalf("%s = %v, want >= %d", cnt, got, n)
	}
	// Step durations and per-layer AP gauges published by swap().
	if typ := scrape.Families["pao_step_seconds"].Type; typ != "histogram" {
		t.Fatalf("pao_step_seconds type = %q, want histogram", typ)
	}
	apSeries := 0
	for id := range scrape.Series {
		if strings.HasPrefix(id, "pao_access_points{") {
			apSeries++
		}
	}
	if apSeries == 0 {
		t.Fatal("no pao_access_points series in exposition")
	}
	// Obs registry metrics must appear design-labeled with the rename rules
	// (counter serve.requests → serve_requests_total).
	reqs := fmt.Sprintf("serve_requests_total{design=%q}", d.Name)
	if got := scrape.Series[reqs]; got < n+1 {
		t.Fatalf("%s = %v, want >= %d; %d series total", reqs, got, n+1, len(scrape.Series))
	}
}

// TestServeScrapeWhileServing runs queries and /metrics scrapes concurrently;
// every scrape must parse under the strict checker (no torn series, no
// duplicate families) and every query must still answer. Run with -race this
// also proves the registry and histogram snapshots are data-race free.
func TestServeScrapeWhileServing(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{TraceSample: 1, SlowThreshold: time.Nanosecond})
	mustInit(t, s)
	h := s.Handler()

	const workers, iters = 4, 25
	var wg sync.WaitGroup
	errc := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inst := d.Instances[w%len(d.Instances)]
			for i := 0; i < iters; i++ {
				req := httptest.NewRequest(http.MethodGet, "/v1/access?inst="+inst.Name, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("query = %d", rec.Code)
					return
				}
				if rec.Header().Get("X-Correlation-Id") == "" {
					errc <- fmt.Errorf("query response missing X-Correlation-Id")
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("/metrics = %d", rec.Code)
					return
				}
				if _, err := telemetry.CheckProm(rec.Body); err != nil {
					errc <- fmt.Errorf("scrape %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// With TraceSample=1 and a nanosecond threshold every query lands in the
	// slow log, newest first, each with an exemplar span tree.
	code, _, body := get(t, h, "/debug/slowlog")
	if code != http.StatusOK {
		t.Fatalf("/debug/slowlog = %d", code)
	}
	var log telemetry.LogSnapshot
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatalf("bad slowlog JSON: %v\n%s", err, body)
	}
	if log.Total < workers*iters {
		t.Fatalf("slowlog total = %d, want >= %d", log.Total, workers*iters)
	}
	if len(log.Entries) == 0 {
		t.Fatal("slowlog retained no entries")
	}
	for _, e := range log.Entries {
		if e.CorrID == "" || e.Op == "" {
			t.Fatalf("slowlog entry missing identity: %+v", e)
		}
		if e.Trace == nil {
			t.Fatalf("sampled entry %s has no trace exemplar", e.CorrID)
		}
	}
}

func TestServeCorrelationIDEcho(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{TraceSample: 1, SlowThreshold: time.Nanosecond})
	mustInit(t, s)
	h := s.Handler()

	const corr = "caller-supplied-0042"
	req := httptest.NewRequest(http.MethodGet, "/v1/access?inst="+d.Instances[0].Name, nil)
	req.Header.Set("X-Correlation-Id", corr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Correlation-Id"); got != corr {
		t.Fatalf("corr echo = %q, want %q", got, corr)
	}

	// The caller's ID must be the one the slow log records.
	_, _, body := get(t, h, "/debug/slowlog")
	var log telemetry.LogSnapshot
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range log.Entries {
		if e.CorrID == corr {
			found = true
			if e.Op != "access" {
				t.Fatalf("entry op = %q, want access", e.Op)
			}
		}
	}
	if !found {
		t.Fatalf("slowlog has no entry for corr %q: %+v", corr, log.Entries)
	}
}

func TestServeVersionEndpoint(t *testing.T) {
	d := serveDesign(t)
	s := newTestServer(t, d, Config{})
	mustInit(t, s)

	code, _, body := get(t, s.Handler(), "/version")
	if code != http.StatusOK {
		t.Fatalf("/version = %d", code)
	}
	var v VersionResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad version JSON: %v\n%s", err, body)
	}
	if v.Design != d.Name {
		t.Fatalf("design = %q, want %q", v.Design, d.Name)
	}
	if v.DesignHash == "" || v.ConfigFingerprint == "" {
		t.Fatalf("missing fingerprints: %+v", v)
	}
	if v.Build.GoVersion == "" {
		t.Fatal("missing go version in build info")
	}
	if v.Source != "recompute" {
		t.Fatalf("source = %q, want recompute", v.Source)
	}
}
