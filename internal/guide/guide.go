// Package guide implements the global-routing side of the TritonRoute flow:
// the paper's detailed router consumes per-net route guides (the ISPD-2018
// contest provides them with each testcase). The package contains a simple
// congestion-aware global router over a gcell grid, guide generation, and
// reading/writing of the contest's guide file format:
//
//	netName
//	(
//	x1 y1 x2 y2 layerName
//	...
//	)
package guide

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Input hardening bounds for Parse, mirroring the limits in packages lef and
// def: guide files are machine-written, so oversized names or coordinates
// mark a corrupt input to reject rather than data to accommodate.
const (
	// maxNetNameLen bounds one net-name line.
	maxNetNameLen = 4096
	// maxCoordDBU bounds any box coordinate (DBU).
	maxCoordDBU = int64(1e15)
)

// Box is one guide rectangle on a metal layer.
type Box struct {
	Layer int // metal number
	Rect  geom.Rect
}

// Guide is the set of routing regions granted to one net.
type Guide struct {
	Net   string
	Boxes []Box
}

// Config tunes the global router.
type Config struct {
	// GCellTracks is the gcell edge length in M1 pitches (default 15, the
	// contest's usual gcell size).
	GCellTracks int
	// MaxLayer bounds the guide layers (default 4: guides on M2..M4).
	MaxLayer int
}

// GlobalRouter routes nets coarsely over a gcell grid and emits guides.
type GlobalRouter struct {
	d      *db.Design
	cfg    Config
	gcell  int64 // gcell edge in DBU
	nx, ny int
	hUsage []int // horizontal edge usage, (nx-1) x ny
	vUsage []int // vertical edge usage, nx x (ny-1)
	hCap   int
	vCap   int
}

// New builds a global router over the design.
func New(d *db.Design, cfg Config) *GlobalRouter {
	if cfg.GCellTracks == 0 {
		cfg.GCellTracks = 15
	}
	if cfg.MaxLayer == 0 {
		cfg.MaxLayer = 4
	}
	g := &GlobalRouter{d: d, cfg: cfg}
	g.gcell = int64(cfg.GCellTracks) * d.Tech.Metal(1).Pitch
	g.nx = int(d.Die.Width()/g.gcell) + 1
	g.ny = int(d.Die.Height()/g.gcell) + 1
	g.hUsage = make([]int, (g.nx-1)*g.ny)
	g.vUsage = make([]int, g.nx*(g.ny-1))
	// Capacity: tracks crossing a gcell edge on the layers granted to each
	// direction (even metals vertical, odd horizontal), derated to 80%.
	g.hCap = cfg.GCellTracks * countDirLayers(d.Tech, cfg.MaxLayer, tech.Horizontal) * 8 / 10
	g.vCap = cfg.GCellTracks * countDirLayers(d.Tech, cfg.MaxLayer, tech.Vertical) * 8 / 10
	if g.hCap < 1 {
		g.hCap = 1
	}
	if g.vCap < 1 {
		g.vCap = 1
	}
	return g
}

func countDirLayers(t *tech.Technology, maxLayer int, dir tech.Dir) int {
	n := 0
	for l := 2; l <= maxLayer && l <= t.NumMetals(); l++ {
		if t.Metal(l).Dir == dir {
			n++
		}
	}
	return n
}

// cell returns the gcell indices containing a point.
func (g *GlobalRouter) cell(p geom.Point) (int, int) {
	cx := int((p.X - g.d.Die.XL) / g.gcell)
	cy := int((p.Y - g.d.Die.YL) / g.gcell)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

// cellRect returns the design-coordinate rectangle of a gcell.
func (g *GlobalRouter) cellRect(cx, cy int) geom.Rect {
	x := g.d.Die.XL + int64(cx)*g.gcell
	y := g.d.Die.YL + int64(cy)*g.gcell
	return geom.R(x, y, minI64(x+g.gcell, g.d.Die.XH), minI64(y+g.gcell, g.d.Die.YH))
}

// hCost and vCost price an edge by congestion: free under capacity, then
// quadratic.
func edgeCost(usage, capacity int) int {
	if usage < capacity {
		return 1
	}
	over := usage - capacity + 1
	return 1 + over*over
}

// Route globally routes every net and returns its guides. Each two-pin
// connection takes the cheaper of the two L-shapes under the current
// congestion map (the classic pattern-routing global router).
func (g *GlobalRouter) Route() []Guide {
	out := make([]Guide, 0, len(g.d.Nets))
	for _, net := range g.d.Nets {
		cells := g.termCells(net)
		boxes := g.routeNet(cells)
		out = append(out, Guide{Net: net.Name, Boxes: boxes})
	}
	return out
}

// termCells collects the distinct gcells of a net's terminals.
func (g *GlobalRouter) termCells(net *db.Net) [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	add := func(p geom.Point) {
		cx, cy := g.cell(p)
		k := [2]int{cx, cy}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, t := range net.Terms {
		add(t.Inst.BBox().Center())
	}
	for _, io := range net.IOPins {
		add(io.Shape.Rect.Center())
	}
	return out
}

// routeNet connects the cells with an MST of L-routes and returns the guide
// boxes (terminal cells always included).
func (g *GlobalRouter) routeNet(cells [][2]int) []Box {
	covered := map[[2]int]bool{}
	for _, c := range cells {
		covered[c] = true
	}
	if len(cells) > 1 {
		// Prim MST over Manhattan gcell distance.
		inTree := make([]bool, len(cells))
		inTree[0] = true
		for count := 1; count < len(cells); count++ {
			bi, bj, bd := -1, -1, 1<<30
			for i := range cells {
				if !inTree[i] {
					continue
				}
				for j := range cells {
					if inTree[j] {
						continue
					}
					d := abs(cells[i][0]-cells[j][0]) + abs(cells[i][1]-cells[j][1])
					if d < bd {
						bi, bj, bd = i, j, d
					}
				}
			}
			inTree[bj] = true
			g.routeL(cells[bi], cells[bj], covered)
		}
	}
	// Emit one box per covered gcell on every guide layer, then merge runs.
	var keys [][2]int
	for k := range covered {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][1] != keys[b][1] {
			return keys[a][1] < keys[b][1]
		}
		return keys[a][0] < keys[b][0]
	})
	var boxes []Box
	for l := 2; l <= g.cfg.MaxLayer && l <= g.d.Tech.NumMetals(); l++ {
		boxes = append(boxes, g.mergeRows(keys, l)...)
	}
	return boxes
}

// routeL picks the cheaper L-shape between two cells under the congestion
// map, marks usage, and adds the cells to covered.
func (g *GlobalRouter) routeL(a, b [2]int, covered map[[2]int]bool) {
	pathCost := func(corner [2]int) int {
		return g.segCost(a, corner) + g.segCost(corner, b)
	}
	c1 := [2]int{b[0], a[1]} // horizontal first
	c2 := [2]int{a[0], b[1]} // vertical first
	corner := c1
	if pathCost(c2) < pathCost(c1) {
		corner = c2
	}
	g.claimSeg(a, corner, covered)
	g.claimSeg(corner, b, covered)
}

// segCost prices a straight gcell run.
func (g *GlobalRouter) segCost(a, b [2]int) int {
	cost := 0
	if a[1] == b[1] { // horizontal
		lo, hi := minInt(a[0], b[0]), maxInt(a[0], b[0])
		for x := lo; x < hi; x++ {
			cost += edgeCost(g.hUsage[a[1]*(g.nx-1)+x], g.hCap)
		}
		return cost
	}
	lo, hi := minInt(a[1], b[1]), maxInt(a[1], b[1])
	for y := lo; y < hi; y++ {
		cost += edgeCost(g.vUsage[y*g.nx+a[0]], g.vCap)
	}
	return cost
}

// claimSeg marks usage along a straight run and covers its cells.
func (g *GlobalRouter) claimSeg(a, b [2]int, covered map[[2]int]bool) {
	if a[1] == b[1] {
		lo, hi := minInt(a[0], b[0]), maxInt(a[0], b[0])
		for x := lo; x <= hi; x++ {
			covered[[2]int{x, a[1]}] = true
			if x < hi {
				g.hUsage[a[1]*(g.nx-1)+x]++
			}
		}
		return
	}
	lo, hi := minInt(a[1], b[1]), maxInt(a[1], b[1])
	for y := lo; y <= hi; y++ {
		covered[[2]int{a[0], y}] = true
		if y < hi {
			g.vUsage[y*g.nx+a[0]]++
		}
	}
}

// mergeRows merges horizontally adjacent covered gcells into single boxes on
// the given layer.
func (g *GlobalRouter) mergeRows(keys [][2]int, layer int) []Box {
	var out []Box
	i := 0
	for i < len(keys) {
		j := i
		for j+1 < len(keys) && keys[j+1][1] == keys[i][1] && keys[j+1][0] == keys[j][0]+1 {
			j++
		}
		r := g.cellRect(keys[i][0], keys[i][1]).UnionBBox(g.cellRect(keys[j][0], keys[j][1]))
		out = append(out, Box{Layer: layer, Rect: r})
		i = j + 1
	}
	return out
}

// CongestionReport summarizes edge overflow after routing.
func (g *GlobalRouter) CongestionReport() (overflowEdges, maxOverflow int) {
	for _, u := range g.hUsage {
		if u > g.hCap {
			overflowEdges++
			if u-g.hCap > maxOverflow {
				maxOverflow = u - g.hCap
			}
		}
	}
	for _, u := range g.vUsage {
		if u > g.vCap {
			overflowEdges++
			if u-g.vCap > maxOverflow {
				maxOverflow = u - g.vCap
			}
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Guide file I/O (ISPD-2018 contest format)
// ---------------------------------------------------------------------------

// Write emits guides in the contest format.
func Write(w io.Writer, guides []Guide, t *tech.Technology) error {
	bw := bufio.NewWriter(w)
	for _, gd := range guides {
		fmt.Fprintf(bw, "%s\n(\n", gd.Net)
		for _, b := range gd.Boxes {
			l := t.Metal(b.Layer)
			if l == nil {
				return fmt.Errorf("guide: net %s references metal %d", gd.Net, b.Layer)
			}
			fmt.Fprintf(bw, "%d %d %d %d %s\n", b.Rect.XL, b.Rect.YL, b.Rect.XH, b.Rect.YH, l.Name)
		}
		fmt.Fprintf(bw, ")\n")
	}
	return bw.Flush()
}

// Parse reads guides in the contest format.
func Parse(r io.Reader, t *tech.Technology) ([]Guide, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out []Guide
	var cur *Guide
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		switch {
		case txt == "(":
			if cur == nil {
				return nil, fmt.Errorf("guide: line %d: '(' without a net name", line)
			}
		case txt == ")":
			if cur == nil {
				return nil, fmt.Errorf("guide: line %d: ')' without a net", line)
			}
			out = append(out, *cur)
			cur = nil
		default:
			fields := strings.Fields(txt)
			if len(fields) == 0 {
				continue // blank line
			}
			if cur != nil {
				// Inside a net block only "x1 y1 x2 y2 layer" box lines are
				// legal; Sscanf-style tolerance of trailing junk would let a
				// corrupt file be silently misread, so every field is
				// validated.
				if len(fields) != 5 {
					return nil, fmt.Errorf("guide: line %d: unexpected %q inside net block", line, txt)
				}
				var c [4]int64
				for i, f := range fields[:4] {
					v, err := strconv.ParseInt(f, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("guide: line %d: bad coordinate %q", line, f)
					}
					if v > maxCoordDBU || v < -maxCoordDBU {
						return nil, fmt.Errorf("guide: line %d: coordinate %d exceeds the %d DBU magnitude limit", line, v, maxCoordDBU)
					}
					c[i] = v
				}
				l := t.MetalByName(fields[4])
				if l == nil {
					return nil, fmt.Errorf("guide: line %d: unknown layer %q", line, fields[4])
				}
				cur.Boxes = append(cur.Boxes, Box{Layer: l.Num, Rect: geom.R(c[0], c[1], c[2], c[3])})
				continue
			}
			// A net-name line is a single identifier; a multi-field line here
			// is a malformed or misplaced box, not a net name.
			if len(fields) != 1 {
				return nil, fmt.Errorf("guide: line %d: malformed box or net name %q", line, txt)
			}
			if len(fields[0]) > maxNetNameLen {
				return nil, fmt.Errorf("guide: line %d: net name of %d bytes exceeds the %d-byte limit", line, len(fields[0]), maxNetNameLen)
			}
			cur = &Guide{Net: fields[0]}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("guide: unterminated net block %q", cur.Net)
	}
	return out, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Dims exposes the gcell grid geometry for congestion rendering.
func (g *GlobalRouter) Dims() (nx, ny int, gcell int64) {
	return g.nx, g.ny, g.gcell
}

// CellLoad returns the worst usage/capacity ratio over the edges incident to
// gcell (cx, cy): the quantity congestion heatmaps color by.
func (g *GlobalRouter) CellLoad(cx, cy int) float64 {
	worst := 0.0
	if cx > 0 {
		worst = maxF(worst, float64(g.hUsage[cy*(g.nx-1)+cx-1])/float64(g.hCap))
	}
	if cx < g.nx-1 {
		worst = maxF(worst, float64(g.hUsage[cy*(g.nx-1)+cx])/float64(g.hCap))
	}
	if cy > 0 {
		worst = maxF(worst, float64(g.vUsage[(cy-1)*g.nx+cx])/float64(g.vCap))
	}
	if cy < g.ny-1 {
		worst = maxF(worst, float64(g.vUsage[cy*g.nx+cx])/float64(g.vCap))
	}
	return worst
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
