package guide

import (
	"strings"
	"testing"

	"repro/internal/tech"
)

// FuzzParse drives the guide reader with mutated inputs: it must never panic.
func FuzzParse(f *testing.F) {
	f.Add("net0\n(\n0 0 100 100 M2\n)\n")
	f.Add("(\n)\n")
	f.Add("x\n(\n1 2 3 4 NOPE\n)\n")
	// Hardening corpus: malformed box lines and overflowing coordinates the
	// parser must reject without panicking.
	f.Add("n0\n(\n0 0 100 100\n)\n")
	f.Add("n0\n(\n0 0 100 100 M2 extra\n)\n")
	f.Add("a b c\n(\n)\n")
	f.Add("n0\n(\n0 0 9000000000000000 100 M2\n)\n")
	f.Add("\n\nnet0\n(\n0 0 100 100 M2\n)\n")
	tt := tech.N32()
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(strings.NewReader(src), tt)
	})
}
