package guide

import (
	"strings"
	"testing"

	"repro/internal/tech"
)

// FuzzParse drives the guide reader with mutated inputs: it must never panic.
func FuzzParse(f *testing.F) {
	f.Add("net0\n(\n0 0 100 100 M2\n)\n")
	f.Add("(\n)\n")
	f.Add("x\n(\n1 2 3 4 NOPE\n)\n")
	tt := tech.N32()
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(strings.NewReader(src), tt)
	})
}
