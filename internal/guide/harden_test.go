package guide

import (
	"strings"
	"testing"

	"repro/internal/tech"
)

// TestParseRejectsHostileInput pins the input-hardening bounds: malformed
// box lines, overflowing coordinates and oversized net names must come back
// as errors, never as silently misread guides.
func TestParseRejectsHostileInput(t *testing.T) {
	tt := tech.N32()
	cases := []struct {
		name, src, wantSub string
	}{
		{"box missing layer", "n0\n(\n0 0 100 100\n)\n", "inside net block"},
		{"box with junk fields", "n0\n(\n0 0 100 100 M2 extra\n)\n", "unexpected"},
		{"multi-field net name", "a b c\n(\n)\n", "malformed box or net name"},
		{"overflow coordinate", "n0\n(\n0 0 9000000000000000 100 M2\n)\n", "magnitude limit"},
		{"giant net name", strings.Repeat("n", maxNetNameLen+1) + "\n(\n)\n", "byte limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src), tt)
			if err == nil {
				t.Fatalf("Parse accepted hostile input %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Parse error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseRoundTripUnderLimits checks a legitimate guide file still parses.
func TestParseRoundTripUnderLimits(t *testing.T) {
	gs, err := Parse(strings.NewReader("net0\n(\n0 0 100 100 M2\n140 0 280 280 M3\n)\n"), tech.N32())
	if err != nil {
		t.Fatalf("Parse rejected legitimate input: %v", err)
	}
	if len(gs) != 1 || len(gs[0].Boxes) != 2 {
		t.Fatalf("parsed %+v, want one net with two boxes", gs)
	}
}
