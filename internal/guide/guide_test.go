package guide

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/suite"
	"repro/internal/tech"
)

func TestGlobalRoute(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[4].Scale(0.002))
	if err != nil {
		t.Fatal(err)
	}
	g := New(d, Config{})
	guides := g.Route()
	if len(guides) != len(d.Nets) {
		t.Fatalf("guides %d != nets %d", len(guides), len(d.Nets))
	}
	// Every terminal's cell must be covered by its net's guide on some layer.
	for i, gd := range guides {
		net := d.Nets[i]
		if gd.Net != net.Name {
			t.Fatalf("guide %d name %s != %s", i, gd.Net, net.Name)
		}
		if len(net.Terms)+len(net.IOPins) >= 2 && len(gd.Boxes) == 0 {
			t.Fatalf("net %s has no guide boxes", net.Name)
		}
		for _, term := range net.Terms {
			c := term.Inst.BBox().Center()
			covered := false
			for _, b := range gd.Boxes {
				if b.Rect.ContainsPt(c) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("net %s: terminal %s not covered by its guide", net.Name, term.Inst.Name)
			}
		}
		for _, b := range gd.Boxes {
			if b.Layer < 2 || b.Layer > 4 {
				t.Fatalf("net %s: guide on layer %d", net.Name, b.Layer)
			}
			if !d.Die.ContainsRect(b.Rect) {
				t.Fatalf("net %s: guide box %v escapes the die", net.Name, b.Rect)
			}
		}
	}
	over, maxOver := g.CongestionReport()
	t.Logf("congestion: %d overflow edges, max %d", over, maxOver)
}

func TestGuideFileRoundTrip(t *testing.T) {
	tt := tech.N32()
	guides := []Guide{
		{Net: "net0", Boxes: []Box{
			{Layer: 2, Rect: geom.R(0, 0, 3000, 1500)},
			{Layer: 3, Rect: geom.R(1500, 0, 3000, 4500)},
		}},
		{Net: "net1", Boxes: []Box{{Layer: 4, Rect: geom.R(100, 200, 300, 400)}}},
		{Net: "empty"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, guides, tt); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()), tt)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	if len(got) != len(guides) {
		t.Fatalf("guides %d != %d", len(got), len(guides))
	}
	for i, gd := range got {
		if gd.Net != guides[i].Net || len(gd.Boxes) != len(guides[i].Boxes) {
			t.Fatalf("guide %d mismatch: %+v vs %+v", i, gd, guides[i])
		}
		for j, b := range gd.Boxes {
			if b != guides[i].Boxes[j] {
				t.Fatalf("box %d/%d: %+v != %+v", i, j, b, guides[i].Boxes[j])
			}
		}
	}
}

func TestGuideParseErrors(t *testing.T) {
	tt := tech.N32()
	cases := []string{
		"(\n0 0 1 1 M2\n)\n",         // '(' without a name
		"net0\n(\n0 0 1 1 NOPE\n)\n", // unknown layer
		"net0\n(\n0 0 1 1 M2\n",      // unterminated
		")\n",                        // stray ')'
		"net0\n(\ngarbage here\n)\n", // junk inside block
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src), tt); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWriteUnknownLayer(t *testing.T) {
	tt := tech.N32()
	err := Write(&bytes.Buffer{}, []Guide{{Net: "x", Boxes: []Box{{Layer: 99}}}}, tt)
	if err == nil {
		t.Fatal("unknown layer must error")
	}
}
