package bench

import "testing"

// TestScenariosPrepareAndRun smoke-tests every scenario at the default CI
// scale: prepare must succeed, one iteration must run, and the cached
// variants must actually exercise at least one memo layer (otherwise the
// published speedup would compare two identical code paths).
func TestScenariosPrepareAndRun(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			w, err := sc.Prepare(0.01, false)
			if err != nil {
				t.Fatal(err)
			}
			w.Run()
			s := w.Stats()
			if s.ViaHits+s.ViaMisses+s.PairHits+s.PairMisses == 0 {
				t.Fatalf("cached run recorded no cache traffic: %+v", s)
			}
		})
	}
}

func TestScenarioUncachedVariantHasNoCacheTraffic(t *testing.T) {
	sc := Scenarios()[0]
	w, err := sc.Prepare(0.01, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	if s := w.Stats(); s.ViaHits+s.ViaMisses+s.PairHits+s.PairMisses != 0 {
		t.Fatalf("uncached run touched a cache: %+v", s)
	}
}
