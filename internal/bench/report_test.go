package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func baseReport() Report {
	return Report{
		Scale: 0.01,
		Entries: []Entry{{
			Scenario:    "pao_test1/step2_pattern_validation",
			Cached:      Metrics{NsPerOp: 1000, AllocsPerOp: 50, BytesPerOp: 4096, Iterations: 100},
			Uncached:    Metrics{NsPerOp: 3000, AllocsPerOp: 400, BytesPerOp: 65536, Iterations: 40},
			Speedup:     3.0,
			ViaHitRate:  0.95,
			PairHitRate: 0.90,
		}},
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := baseReport()
	cur := baseReport()
	// Wiggle everything by less than 15%.
	cur.Entries[0].Cached.AllocsPerOp = 55
	cur.Entries[0].Speedup = 2.7
	cur.Entries[0].ViaHitRate = 0.90
	if v := Compare(base, cur, 0.15, false); len(v) != 0 {
		t.Fatalf("in-tolerance report rejected: %v", v)
	}
}

func TestCompareGatesMachineIndependentMetrics(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Entry)
		want   string
	}{
		{"alloc regression", func(e *Entry) { e.Cached.AllocsPerOp = 70 }, "allocs/op regressed"},
		{"speedup collapse", func(e *Entry) { e.Speedup = 1.1 }, "speedup shrank"},
		{"via hit rate drop", func(e *Entry) { e.ViaHitRate = 0.4 }, "via-verdict hit rate dropped"},
		{"pair hit rate drop", func(e *Entry) { e.PairHitRate = 0.2 }, "via-pair hit rate dropped"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cur := baseReport()
			c.mutate(&cur.Entries[0])
			v := Compare(baseReport(), cur, 0.15, false)
			if len(v) != 1 || !strings.Contains(v[0], c.want) {
				t.Fatalf("Compare = %v, want one violation containing %q", v, c.want)
			}
		})
	}
}

func TestCompareNsGateIsOptIn(t *testing.T) {
	cur := baseReport()
	cur.Entries[0].Cached.NsPerOp = 2000 // 2x slower wall clock
	cur.Entries[0].Uncached.NsPerOp = 6000
	cur.Entries[0].Speedup = 3.0 // ratio unchanged
	if v := Compare(baseReport(), cur, 0.15, false); len(v) != 0 {
		t.Fatalf("ns/op must not gate by default (CI hosts vary): %v", v)
	}
	if v := Compare(baseReport(), cur, 0.15, true); len(v) != 2 {
		t.Fatalf("with gateNs both variants must flag, got %v", v)
	}
}

func TestCompareRefusesScaleMismatch(t *testing.T) {
	cur := baseReport()
	cur.Scale = 0.02
	v := Compare(baseReport(), cur, 0.15, false)
	if len(v) != 1 || !strings.Contains(v[0], "scale mismatch") {
		t.Fatalf("Compare = %v, want a scale-mismatch refusal", v)
	}
}

func TestCompareFlagsMissingScenario(t *testing.T) {
	cur := baseReport()
	cur.Entries = nil
	v := Compare(baseReport(), cur, 0.15, false)
	if len(v) != 1 || !strings.Contains(v[0], "missing from current run") {
		t.Fatalf("Compare = %v, want a missing-scenario violation", v)
	}
}

func TestReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := baseReport().Write(&buf); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if v := Compare(baseReport(), got, 0, false); len(v) != 0 {
		t.Fatalf("round-tripped report differs from original: %v", v)
	}
	for _, k := range []string{"timestamp", "host", "date"} {
		if bytes.Contains(bytes.ToLower(buf.Bytes()), []byte(k)) {
			t.Fatalf("report JSON must stay host- and time-free, found %q", k)
		}
	}
}
