// Package bench defines the reproducible performance scenarios behind `make
// bench-json`: the three hot paths of the PAAF pipeline (Step 1 access-point
// validation, Step 2 pattern validation, Step 3 cluster selection), each run
// with the memoization layers on and off. Emitting both variants into one
// report makes the verdict-cache speedup a measured, regression-gated
// quantity instead of a claim: `cmd/paobench -compare` fails when the
// speedup, the allocation counts, or the cache hit rates drift from the
// checked-in baseline.
package bench

import (
	"fmt"
	"testing"

	"repro/internal/pao"
	"repro/internal/suite"
)

// Workload is one prepared scenario variant. Run executes a single timed
// iteration; Stats reports the analyzer's cache counters accumulated so far
// (zero when the variant runs with caches disabled).
type Workload struct {
	Run   func()
	Stats func() pao.CacheStats
}

// Scenario names one timed hot path of the pipeline and knows how to build
// it at a given suite scale.
type Scenario struct {
	// Name identifies the scenario in reports, e.g.
	// "pao_test1/step2_pattern_validation".
	Name string
	// Prepare builds the workload; noCache disables the via-verdict and
	// via-pair caches (pao.Config.NoCache). Everything expensive that is not
	// part of the timed loop (design generation, the initial analysis that
	// the iteration re-validates) happens here.
	Prepare func(scale float64, noCache bool) (*Workload, error)
}

// specs are the suite testcases the scenarios run on: the 45 nm baseline
// testcase and the 14 nm off-track study, so both rule decks (EOL/min-step
// heavy vs. spacing-table heavy) are measured.
func specs() []suite.Spec {
	return []suite.Spec{suite.Testcases[0], suite.AES14}
}

func config(noCache bool) pao.Config {
	cfg := pao.DefaultConfig()
	cfg.NoCache = noCache
	return cfg
}

// Scenarios returns every benchmark scenario, one per (testcase, step).
func Scenarios() []Scenario {
	var out []Scenario
	for _, spec := range specs() {
		spec := spec
		out = append(out,
			Scenario{
				Name: spec.Name + "/step1_access",
				Prepare: func(scale float64, noCache bool) (*Workload, error) {
					d, err := suite.Generate(spec.Scale(scale).WithSeed(7))
					if err != nil {
						return nil, err
					}
					a := pao.NewAnalyzer(d, config(noCache))
					uis := d.UniqueInstances()
					if len(uis) == 0 {
						return nil, fmt.Errorf("%s: no unique instances at scale %g", spec.Name, scale)
					}
					return &Workload{
						// One iteration = Step 1+2 over every unique class. The
						// shared verdict cache stays warm across classes and
						// iterations — exactly its production duty cycle.
						Run: func() {
							for _, ui := range uis {
								a.AnalyzeUnique(ui)
							}
						},
						Stats: a.CacheStats,
					}, nil
				},
			},
			Scenario{
				Name: spec.Name + "/step2_pattern_validation",
				Prepare: func(scale float64, noCache bool) (*Workload, error) {
					d, err := suite.Generate(spec.Scale(scale).WithSeed(7))
					if err != nil {
						return nil, err
					}
					a := pao.NewAnalyzer(d, config(noCache))
					var uas []*pao.UniqueAccess
					for _, ui := range d.UniqueInstances() {
						uas = append(uas, a.AnalyzeUnique(ui))
					}
					return &Workload{
						// One iteration = regenerate and re-validate the pattern
						// set of every class from its existing access points;
						// the via-pair cache is the memo layer under test.
						Run: func() {
							for _, ua := range uas {
								a.RegenPatterns(ua)
							}
						},
						Stats: a.CacheStats,
					}, nil
				},
			},
			Scenario{
				Name: spec.Name + "/step3_selection",
				Prepare: func(scale float64, noCache bool) (*Workload, error) {
					d, err := suite.Generate(spec.Scale(scale).WithSeed(7))
					if err != nil {
						return nil, err
					}
					a := pao.NewAnalyzer(d, config(noCache))
					res := a.Run()
					eng := a.GlobalEngine()
					return &Workload{
						// One iteration = the cluster DP over the placed design;
						// vertex costs go through the via-verdict cache, edge
						// costs through the via-pair cache.
						Run: func() {
							a.SelectPatterns(res, eng)
						},
						Stats: a.CacheStats,
					}, nil
				},
			},
		)
	}
	return out
}

// Measure runs every scenario in both variants via testing.Benchmark and
// assembles the report. progress, when non-nil, is called once per variant
// with a human-readable line.
func Measure(scale float64, progress func(string)) (Report, error) {
	return measure(scale, false, progress)
}

// MeasureCold runs only the uncached (cold-path) variant of every scenario —
// the pure query-core and check-core cost with every memo layer disabled. The
// report's cached metrics stay zero and no speedup is computed; cold reports
// exist for allocation profiling, not for gating against a full baseline.
func MeasureCold(scale float64, progress func(string)) (Report, error) {
	return measure(scale, true, progress)
}

func measure(scale float64, coldOnly bool, progress func(string)) (Report, error) {
	rep := Report{Scale: scale}
	variants := []bool{false, true}
	if coldOnly {
		variants = []bool{true}
	}
	for _, sc := range Scenarios() {
		var e Entry
		e.Scenario = sc.Name
		for _, noCache := range variants {
			sc, noCache := sc, noCache
			var w *Workload
			var prepErr error
			r := testing.Benchmark(func(b *testing.B) {
				// testing.Benchmark re-invokes with growing b.N; rebuild the
				// workload each time so earlier probe rounds cannot leak warm
				// state into the reported round's setup.
				w, prepErr = sc.Prepare(scale, noCache)
				if prepErr != nil {
					b.Fatal(prepErr)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.Run()
				}
			})
			if prepErr != nil {
				return rep, fmt.Errorf("%s: %w", sc.Name, prepErr)
			}
			m := Metrics{
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			}
			if noCache {
				e.Uncached = m
			} else {
				e.Cached = m
				s := w.Stats()
				e.ViaHitRate = s.ViaHitRate()
				e.PairHitRate = s.PairHitRate()
			}
			if progress != nil {
				variant := "cached"
				if noCache {
					variant = "uncached"
				}
				progress(fmt.Sprintf("%-45s %-8s %12.0f ns/op %8d allocs/op (n=%d)",
					sc.Name, variant, m.NsPerOp, m.AllocsPerOp, m.Iterations))
			}
		}
		if e.Cached.NsPerOp > 0 {
			e.Speedup = e.Uncached.NsPerOp / e.Cached.NsPerOp
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}
