package bench

// The eco_reanalysis scenario (BENCH_PR7.json): how much work a single-
// instance ECO re-does compared to a full pipeline run, and how surgical the
// via-verdict cache invalidation is. Kept out of Scenarios() so the
// BENCH_PR5.json regression gate is untouched; cmd/paobench emits this
// report separately via -eco-out.
//
// Machine-independent quantities carried in the report, in gate order:
//   - DirtyClasses vs TotalClasses and DirtyClusters vs TotalClusters for a
//     single signature-changing move (the scoping claim);
//   - ScopedFraction: the fraction of warm cache entries a single-move ECO
//     evicts (wholesale invalidation always evicts 1.0 — measured too, from
//     a bulk ECO that overflows the pending-rect bound);
//   - AllocsPerOp for the ECO apply loop.

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/suite"
)

// ECOEntry is one testcase's ECO-vs-full measurement.
type ECOEntry struct {
	Testcase string `json:"testcase"`

	// Scoping counts from a canonical single-instance signature-changing
	// move (machine-independent).
	TotalClasses  int `json:"total_classes"`
	DirtyClasses  int `json:"dirty_classes"`
	TotalClusters int `json:"total_clusters"`
	DirtyClusters int `json:"dirty_clusters"`

	// Full is a fresh full analysis; ECO is one incremental apply of the
	// same move. Speedup is full ns/op over ECO ns/op.
	Full    Metrics `json:"full"`
	ECO     Metrics `json:"eco"`
	Speedup float64 `json:"speedup"`

	// Cache surgery: entries in the warm shared cache before the ECO, how
	// many a single-move ECO evicted (scoped), and the fraction a bulk ECO
	// flushed after overflowing the pending-rect bound (always 1.0).
	WarmCacheEntries  int     `json:"warm_cache_entries"`
	ScopedEvicted     int64   `json:"scoped_evicted"`
	ScopedFraction    float64 `json:"scoped_fraction"`
	WholesaleEvicted  int64   `json:"wholesale_evicted"`
	WholesaleFraction float64 `json:"wholesale_fraction"`
}

// ECOBenchReport is the BENCH_PR7.json artifact. Like Report, it carries no
// timestamps or host identifiers.
type ECOBenchReport struct {
	Scale   float64    `json:"scale"`
	Entries []ECOEntry `json:"entries"`
}

// Write emits the report as stable, indented JSON.
func (r ECOBenchReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ecoFixturePrep generates the design, runs the full analysis with the
// shared cache on, and returns the analyzer, result and a signature-changing
// move for a mid-design instance (x+70 flips the M2 phase on every suite
// node, whose pitches are all multiples of 140).
func ecoFixturePrep(spec suite.Spec, scale float64) (*pao.Analyzer, *pao.Result, pao.ECOOp, error) {
	d, err := suite.Generate(spec.Scale(scale).WithSeed(7))
	if err != nil {
		return nil, nil, pao.ECOOp{}, err
	}
	if len(d.Instances) < 4 {
		return nil, nil, pao.ECOOp{}, fmt.Errorf("%s: too few instances at scale %g", spec.Name, scale)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	res := a.Run()
	inst := d.Instances[len(d.Instances)/2]
	op := pao.ECOOp{Kind: pao.ECOMove, Inst: inst.Name, To: geom.Pt(inst.Pos.X+70, inst.Pos.Y)}
	return a, res, op, nil
}

// MeasureECO builds the eco_reanalysis report at the given suite scale.
func MeasureECO(scale float64, progress func(string)) (ECOBenchReport, error) {
	rep := ECOBenchReport{Scale: scale}
	for _, spec := range specs() {
		e := ECOEntry{Testcase: spec.Name}

		// Scoping counts and cache surgery, measured once outside the timed
		// loops so the numbers are deterministic.
		a, res, op, err := ecoFixturePrep(spec, scale)
		if err != nil {
			return rep, err
		}
		sess := pao.NewECOSession(a, res)
		cache := a.SharedViaCache()
		e.WarmCacheEntries = cache.Len()
		_, r, err := sess.Apply([]pao.ECOOp{op})
		if err != nil {
			return rep, fmt.Errorf("%s: %w", spec.Name, err)
		}
		e.TotalClasses = r.TotalClasses
		e.DirtyClasses = r.ReanalyzedClasses
		e.TotalClusters = r.TotalClusters
		e.DirtyClusters = r.DirtyClusters
		e.ScopedEvicted = cache.ScopedEvicted()
		if e.WarmCacheEntries > 0 {
			e.ScopedFraction = float64(e.ScopedEvicted) / float64(e.WarmCacheEntries)
		}

		// Bulk ECO on a fresh warm session: moving a large slice of the
		// design overflows the pending-rect bound and degrades to the old
		// wholesale flush — the baseline the scoped fraction is gated
		// against.
		aw, resw, _, err := ecoFixturePrep(spec, scale)
		if err != nil {
			return rep, err
		}
		sw := pao.NewECOSession(aw, resw)
		cw := aw.SharedViaCache()
		warm := cw.Len()
		var bulk []pao.ECOOp
		d := aw.Design
		for i := 0; i < len(d.Instances) && len(bulk) < 40; i += 2 {
			inst := d.Instances[i]
			bulk = append(bulk, pao.ECOOp{Kind: pao.ECOMove, Inst: inst.Name, To: geom.Pt(inst.Pos.X+70, inst.Pos.Y)})
		}
		txn, err := sw.Begin(bulk)
		if err != nil {
			return rep, fmt.Errorf("%s bulk: %w", spec.Name, err)
		}
		// Begin enqueued every mutation; Len forces the sweep, so the delta
		// against the warm count is what the overflow flush alone evicted.
		// Commit would muddy the counter: class re-analysis repopulates and
		// re-flushes the shared cache, so the cumulative count keeps growing.
		kept := cw.Len()
		e.WholesaleEvicted = int64(warm - kept)
		if warm > 0 {
			e.WholesaleFraction = float64(warm-kept) / float64(warm)
		}
		txn.Commit()

		// Timed: a fresh full run per iteration.
		spec := spec
		var prepErr error
		rf := testing.Benchmark(func(b *testing.B) {
			d, err := suite.Generate(spec.Scale(scale).WithSeed(7))
			if err != nil {
				prepErr = err
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
			}
		})
		if prepErr != nil {
			return rep, fmt.Errorf("%s: %w", spec.Name, prepErr)
		}
		e.Full = Metrics{
			NsPerOp: float64(rf.NsPerOp()), AllocsPerOp: rf.AllocsPerOp(),
			BytesPerOp: rf.AllocedBytesPerOp(), Iterations: rf.N,
		}

		// Timed: one resident session, the instance shuttling between its
		// two placements — every iteration is a real signature-changing ECO.
		re := testing.Benchmark(func(b *testing.B) {
			a, res, op, err := ecoFixturePrep(spec, scale)
			if err != nil {
				prepErr = err
				b.Fatal(err)
			}
			sess := pao.NewECOSession(a, res)
			home := a.Design.InstByName(op.Inst).Pos
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				to := op.To
				if i%2 == 1 {
					to = home
				}
				if _, _, err := sess.Apply([]pao.ECOOp{{Kind: pao.ECOMove, Inst: op.Inst, To: to}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if prepErr != nil {
			return rep, fmt.Errorf("%s: %w", spec.Name, prepErr)
		}
		e.ECO = Metrics{
			NsPerOp: float64(re.NsPerOp()), AllocsPerOp: re.AllocsPerOp(),
			BytesPerOp: re.AllocedBytesPerOp(), Iterations: re.N,
		}
		if e.ECO.NsPerOp > 0 {
			e.Speedup = e.Full.NsPerOp / e.ECO.NsPerOp
		}
		if progress != nil {
			progress(fmt.Sprintf("%-22s dirty %d/%d classes, %d/%d clusters; scoped evict %.1f%%; eco %12.0f ns/op vs full %12.0f ns/op (%.1fx)",
				spec.Name, e.DirtyClasses, e.TotalClasses, e.DirtyClusters, e.TotalClusters,
				100*e.ScopedFraction, e.ECO.NsPerOp, e.Full.NsPerOp, e.Speedup))
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}
