package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Metrics are the per-variant benchmark numbers. NsPerOp and BytesPerOp are
// machine-dependent; AllocsPerOp is not (Go allocation counts are
// deterministic for a deterministic workload), which is why the comparator
// gates on allocations by default and on time only when asked.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Entry is one scenario's cached-vs-uncached measurement.
type Entry struct {
	Scenario string  `json:"scenario"`
	Cached   Metrics `json:"cached"`
	Uncached Metrics `json:"uncached"`
	// Speedup is uncached ns/op divided by cached ns/op (>1 means the caches
	// pay for themselves).
	Speedup float64 `json:"speedup"`
	// ViaHitRate and PairHitRate are the cached variant's steady-state cache
	// hit rates in [0,1].
	ViaHitRate  float64 `json:"via_hit_rate"`
	PairHitRate float64 `json:"pair_hit_rate"`
}

// Report is the full benchmark artifact (BENCH_PR10.json). It deliberately
// carries no timestamps or host identifiers so diffs against the checked-in
// baseline show only measurement changes.
type Report struct {
	// Scale is the suite scale factor the run used; reports at different
	// scales are not comparable and the comparator refuses them.
	Scale   float64 `json:"scale"`
	Entries []Entry `json:"entries"`
}

// Write emits the report as indented JSON.
func (r Report) Write(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Load reads a report written by Write.
func Load(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Compare gates cur against base with relative tolerance tol (0.15 = 15%).
// It returns one message per violation; an empty slice means cur is within
// tolerance.
//
// Machine-independent metrics gate unconditionally: allocations per op may
// not regress, cache hit rates may not drop, and the cached-vs-uncached
// speedup may not shrink. Wall-clock ns/op gates only when gateNs is set,
// because absolute times are not comparable across CI hosts — the speedup
// ratio already catches a cache that stopped working, host speed cancels
// out of it.
func Compare(base, cur Report, tol float64, gateNs bool) []string {
	var v []string
	if base.Scale != cur.Scale {
		return []string{fmt.Sprintf("scale mismatch: baseline %g vs current %g; reports are not comparable",
			base.Scale, cur.Scale)}
	}
	baseBy := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseBy[e.Scenario] = e
	}
	seen := make(map[string]bool, len(cur.Entries))
	for _, c := range cur.Entries {
		seen[c.Scenario] = true
		b, ok := baseBy[c.Scenario]
		if !ok {
			// A new scenario has no baseline yet; it starts gating once the
			// baseline is regenerated.
			continue
		}
		grewBy := func(now, was float64) (float64, bool) {
			if was <= 0 {
				return 0, false
			}
			g := now/was - 1
			return g, g > tol
		}
		if g, bad := grewBy(float64(c.Cached.AllocsPerOp), float64(b.Cached.AllocsPerOp)); bad {
			v = append(v, fmt.Sprintf("%s: cached allocs/op regressed %.0f%% (%d -> %d)",
				c.Scenario, g*100, b.Cached.AllocsPerOp, c.Cached.AllocsPerOp))
		}
		if g, bad := grewBy(float64(c.Uncached.AllocsPerOp), float64(b.Uncached.AllocsPerOp)); bad {
			v = append(v, fmt.Sprintf("%s: uncached allocs/op regressed %.0f%% (%d -> %d)",
				c.Scenario, g*100, b.Uncached.AllocsPerOp, c.Uncached.AllocsPerOp))
		}
		if b.Speedup > 0 && c.Speedup < b.Speedup*(1-tol) {
			v = append(v, fmt.Sprintf("%s: cache speedup shrank %.0f%% (%.2fx -> %.2fx)",
				c.Scenario, (1-c.Speedup/b.Speedup)*100, b.Speedup, c.Speedup))
		}
		if b.ViaHitRate > 0 && c.ViaHitRate < b.ViaHitRate*(1-tol) {
			v = append(v, fmt.Sprintf("%s: via-verdict hit rate dropped (%.1f%% -> %.1f%%)",
				c.Scenario, b.ViaHitRate*100, c.ViaHitRate*100))
		}
		if b.PairHitRate > 0 && c.PairHitRate < b.PairHitRate*(1-tol) {
			v = append(v, fmt.Sprintf("%s: via-pair hit rate dropped (%.1f%% -> %.1f%%)",
				c.Scenario, b.PairHitRate*100, c.PairHitRate*100))
		}
		if gateNs {
			if g, bad := grewBy(c.Cached.NsPerOp, b.Cached.NsPerOp); bad {
				v = append(v, fmt.Sprintf("%s: cached ns/op regressed %.0f%% (%.0f -> %.0f)",
					c.Scenario, g*100, b.Cached.NsPerOp, c.Cached.NsPerOp))
			}
			if g, bad := grewBy(c.Uncached.NsPerOp, b.Uncached.NsPerOp); bad {
				v = append(v, fmt.Sprintf("%s: uncached ns/op regressed %.0f%% (%.0f -> %.0f)",
					c.Scenario, g*100, b.Uncached.NsPerOp, c.Uncached.NsPerOp))
			}
		}
	}
	for name := range baseBy {
		if !seen[name] {
			v = append(v, fmt.Sprintf("%s: scenario present in baseline but missing from current run", name))
		}
	}
	sort.Strings(v)
	return v
}
