// Package report renders the paper-style fixed-width result tables shared by
// the experiment binaries and benchmarks.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with right-aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 1
	for _, wd := range widths {
		total += wd + 3
	}
	line := strings.Repeat("-", total)
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	fmt.Fprintln(w, line)
	fmt.Fprint(w, "|")
	for i, h := range t.Headers {
		fmt.Fprintf(w, " %*s |", widths[i], h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, line)
	for _, row := range t.rows {
		fmt.Fprint(w, "|")
		for i := range t.Headers {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			fmt.Fprintf(w, " %*s |", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, line)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
