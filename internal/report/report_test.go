package report

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tab := New("Title", "A", "LongHeader", "C")
	tab.AddRow(1, "x", 3.14159)
	tab.AddRow("longvalue", 2, 3)
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "LongHeader") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("floats must render with two decimals")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + rule + header + rule + 2 rows + rule.
	if len(lines) != 7 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All table lines share one width.
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestRenderShortRow(t *testing.T) {
	tab := New("", "A", "B")
	tab.AddRow("only")
	out := tab.String()
	if !strings.Contains(out, "only") {
		t.Error("short rows must render")
	}
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title must not emit a blank line")
	}
}
