// Package geom provides the integer geometry kernel used throughout the pin
// access framework: points, rectangles, orientation transforms, rectilinear
// polygon booleans and maximal-rectangle decomposition.
//
// All coordinates are int64 database units (DBU). The framework convention is
// 1 DBU = 1 nm. Rectangles are closed, axis-aligned, and normalized so that
// XL <= XH and YL <= YH. A rectangle with XL == XH or YL == YH is degenerate
// (zero area) but still a valid point/segment for distance queries.
package geom

import "fmt"

// Point is an x-y coordinate in DBU.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns |dx| + |dy| between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return absI64(p.X-q.X) + absI64(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle [XL,XH] x [YL,YH].
type Rect struct {
	XL, YL, XH, YH int64
}

// R constructs a normalized rectangle from two corner coordinates given in any
// order.
func R(x1, y1, x2, y2 int64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

// Width returns the x extent.
func (r Rect) Width() int64 { return r.XH - r.XL }

// Height returns the y extent.
func (r Rect) Height() int64 { return r.YH - r.YL }

// MinDim returns the smaller of width and height.
func (r Rect) MinDim() int64 { return minI64(r.Width(), r.Height()) }

// MaxDim returns the larger of width and height.
func (r Rect) MaxDim() int64 { return maxI64(r.Width(), r.Height()) }

// Area returns width * height.
func (r Rect) Area() int64 { return r.Width() * r.Height() }

// Center returns the midpoint (rounded toward negative infinity for odd
// extents, matching integer track arithmetic).
func (r Rect) Center() Point { return Point{(r.XL + r.XH) / 2, (r.YL + r.YH) / 2} }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.XL >= r.XH || r.YL >= r.YH }

// Valid reports whether the rectangle is normalized.
func (r Rect) Valid() bool { return r.XL <= r.XH && r.YL <= r.YH }

// ContainsPt reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPt(p Point) bool {
	return p.X >= r.XL && p.X <= r.XH && p.Y >= r.YL && p.Y <= r.YH
}

// ContainsRect reports whether s lies entirely inside or on the boundary of r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.XL >= r.XL && s.XH <= r.XH && s.YL >= r.YL && s.YH <= r.YH
}

// Overlaps reports whether r and s share interior area (touching edges do not
// count).
func (r Rect) Overlaps(s Rect) bool {
	return r.XL < s.XH && s.XL < r.XH && r.YL < s.YH && s.YL < r.YH
}

// Touches reports whether r and s intersect as closed sets (shared edges and
// corners count).
func (r Rect) Touches(s Rect) bool {
	return r.XL <= s.XH && s.XL <= r.XH && r.YL <= s.YH && s.YL <= r.YH
}

// Intersect returns the intersection of r and s as closed sets. The boolean is
// false when the rectangles are disjoint, in which case the returned rectangle
// is the zero value.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{maxI64(r.XL, s.XL), maxI64(r.YL, s.YL), minI64(r.XH, s.XH), minI64(r.YH, s.YH)}
	if out.XL > out.XH || out.YL > out.YH {
		return Rect{}, false
	}
	return out, true
}

// UnionBBox returns the bounding box of r and s.
func (r Rect) UnionBBox(s Rect) Rect {
	return Rect{minI64(r.XL, s.XL), minI64(r.YL, s.YL), maxI64(r.XH, s.XH), maxI64(r.YH, s.YH)}
}

// Bloat returns r expanded by d on all four sides (d may be negative; the
// result is normalized to a degenerate rectangle at the center if the shrink
// collapses it).
func (r Rect) Bloat(d int64) Rect {
	out := Rect{r.XL - d, r.YL - d, r.XH + d, r.YH + d}
	if out.XL > out.XH {
		c := (r.XL + r.XH) / 2
		out.XL, out.XH = c, c
	}
	if out.YL > out.YH {
		c := (r.YL + r.YH) / 2
		out.YL, out.YH = c, c
	}
	return out
}

// BloatXY returns r expanded by dx horizontally and dy vertically.
func (r Rect) BloatXY(dx, dy int64) Rect {
	return Rect{r.XL - dx, r.YL - dy, r.XH + dx, r.YH + dy}
}

// Shift returns r translated by p.
func (r Rect) Shift(p Point) Rect {
	return Rect{r.XL + p.X, r.YL + p.Y, r.XH + p.X, r.YH + p.Y}
}

// SpanX returns the horizontal interval [XL, XH].
func (r Rect) SpanX() (int64, int64) { return r.XL, r.XH }

// SpanY returns the vertical interval [YL, YH].
func (r Rect) SpanY() (int64, int64) { return r.YL, r.YH }

// SepX returns the horizontal separation between r and s: 0 if their x spans
// overlap or touch, otherwise the gap size.
func (r Rect) SepX(s Rect) int64 {
	if r.XH < s.XL {
		return s.XL - r.XH
	}
	if s.XH < r.XL {
		return r.XL - s.XH
	}
	return 0
}

// SepY is the vertical analogue of SepX.
func (r Rect) SepY(s Rect) int64 {
	if r.YH < s.YL {
		return s.YL - r.YH
	}
	if s.YH < r.YL {
		return r.YL - s.YH
	}
	return 0
}

// DistSquared returns the squared Euclidean distance between r and s as
// closed sets (0 when they touch or overlap). Squared distance avoids
// floating point in design-rule comparisons: rule d is violated iff
// DistSquared < d*d.
func (r Rect) DistSquared(s Rect) int64 {
	dx := r.SepX(s)
	dy := r.SepY(s)
	return dx*dx + dy*dy
}

// PRL returns the parallel run length between r and s: the overlap of their
// projections on the axis perpendicular to their separation. Positive values
// mean the shapes run alongside each other; negative values mean they are
// diagonal neighbors (corner-to-corner). When the rectangles overlap in both
// axes, PRL is the larger projection overlap.
func (r Rect) PRL(s Rect) int64 {
	ox := minI64(r.XH, s.XH) - maxI64(r.XL, s.XL) // x projection overlap (may be negative)
	oy := minI64(r.YH, s.YH) - maxI64(r.YL, s.YL)
	if ox >= 0 && oy >= 0 {
		return maxI64(ox, oy)
	}
	if ox >= 0 {
		return ox
	}
	if oy >= 0 {
		return oy
	}
	return maxI64(ox, oy) // both negative: diagonal; report the less-negative gap
}

func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)", r.XL, r.YL, r.XH, r.YH)
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
