package geom

import "testing"

// The oracle/difftest layers lean directly on these primitives; the tables
// here pin down the edge semantics the DRC contract depends on: degenerate
// (zero-area) rectangles, the open-Overlaps vs closed-Touches distinction,
// and exact orientation transform round-trips.

func TestZeroAreaRects(t *testing.T) {
	pt := R(10, 10, 10, 10) // degenerate point
	hseg := R(0, 5, 20, 5)  // horizontal segment
	vseg := R(7, 0, 7, 30)  // vertical segment
	box := R(0, 0, 20, 20)

	cases := []struct {
		name string
		r    Rect
		area int64
		big  bool // empty per Empty()
	}{
		{"point", pt, 0, true},
		{"hseg", hseg, 0, true},
		{"vseg", vseg, 0, true},
		{"box", box, 400, false},
	}
	for _, c := range cases {
		if got := c.r.Area(); got != c.area {
			t.Errorf("%s: Area = %d, want %d", c.name, got, c.area)
		}
		if got := c.r.Empty(); got != c.big {
			t.Errorf("%s: Empty = %v, want %v", c.name, got, c.big)
		}
		if !c.r.Valid() {
			t.Errorf("%s: not normalized", c.name)
		}
	}

	// A degenerate rect Overlaps when it crosses the other's interior (the
	// comparisons are strict against the opposite bounds), but a point on the
	// boundary only Touches. Both cases matter to short detection: a zero-area
	// probe inside a shape must still read as a conflict.
	if !pt.Overlaps(box) {
		t.Error("point in the interior must Overlap")
	}
	if !hseg.Overlaps(vseg) {
		t.Error("crossing segments must Overlap")
	}
	corner := R(20, 20, 20, 20)
	if corner.Overlaps(box) {
		t.Error("point on the boundary must not Overlap")
	}
	if !corner.Touches(box) {
		t.Error("point on the boundary must Touch")
	}
	edge := R(20, 5, 20, 15) // segment lying on the box's right edge
	if edge.Overlaps(box) {
		t.Error("segment on the boundary must not Overlap")
	}
	if !edge.Touches(vseg.Shift(Pt(13, 0))) {
		t.Error("coincident segments must Touch")
	}
	if d := pt.DistSquared(R(13, 14, 13, 14)); d != 3*3+4*4 {
		t.Errorf("point-point DistSquared = %d, want 25", d)
	}
	if got, ok := hseg.Intersect(vseg); !ok || got != R(7, 5, 7, 5) {
		t.Errorf("segment intersection = %v,%v", got, ok)
	}
}

func TestTouchingVsOverlapping(t *testing.T) {
	base := R(0, 0, 10, 10)
	cases := []struct {
		name     string
		s        Rect
		overlaps bool
		touches  bool
		distSq   int64
	}{
		{"coincident", R(0, 0, 10, 10), true, true, 0},
		{"contained", R(2, 2, 8, 8), true, true, 0},
		{"partial", R(5, 5, 15, 15), true, true, 0},
		{"edge-abut-right", R(10, 0, 20, 10), false, true, 0},
		{"edge-abut-top", R(0, 10, 10, 20), false, true, 0},
		{"corner-abut", R(10, 10, 20, 20), false, true, 0},
		{"gap-1-x", R(11, 0, 20, 10), false, false, 1},
		{"gap-1-diag", R(11, 11, 20, 20), false, false, 2},
		{"gap-3-4", R(13, 14, 20, 20), false, false, 25},
	}
	for _, c := range cases {
		if got := base.Overlaps(c.s); got != c.overlaps {
			t.Errorf("%s: Overlaps = %v, want %v", c.name, got, c.overlaps)
		}
		if got := c.s.Overlaps(base); got != c.overlaps {
			t.Errorf("%s: Overlaps not symmetric", c.name)
		}
		if got := base.Touches(c.s); got != c.touches {
			t.Errorf("%s: Touches = %v, want %v", c.name, got, c.touches)
		}
		if got := base.DistSquared(c.s); got != c.distSq {
			t.Errorf("%s: DistSquared = %d, want %d", c.name, got, c.distSq)
		}
		// The DRC engines depend on: Touches <=> DistSquared == 0.
		if c.touches != (c.distSq == 0) {
			t.Errorf("%s: table inconsistent", c.name)
		}
	}
}

// inverseOrient maps each orientation to the one that undoes it: the
// reflections are involutions, while the quarter rotations W and E undo each
// other.
var inverseOrient = map[Orient]Orient{
	OrientN: OrientN, OrientS: OrientS,
	OrientW: OrientE, OrientE: OrientW,
	OrientFN: OrientFN, OrientFS: OrientFS,
	OrientFW: OrientFW, OrientFE: OrientFE,
}

func TestOrientRoundTrips(t *testing.T) {
	size := Point{X: 120, Y: 70} // asymmetric master
	pts := []Point{{0, 0}, {120, 70}, {13, 49}, {120, 0}, {60, 35}}
	rects := []Rect{R(0, 0, 120, 70), R(10, 20, 30, 25), R(5, 5, 5, 5)}

	for o := OrientN; o <= OrientFE; o++ {
		fwd := Transform{Orient: o, Size: size}
		// The inverse transform's master is the placed cell, whose dimensions
		// swap when the forward orientation rotates by 90 degrees.
		inv := Transform{Orient: inverseOrient[o], Size: fwd.PlacedSize()}
		for _, p := range pts {
			q := inv.ApplyPt(fwd.ApplyPt(p))
			if q != p {
				t.Errorf("%v: point %v -> %v -> %v", o, p, fwd.ApplyPt(p), q)
			}
		}
		for _, r := range rects {
			rr := inv.ApplyRect(fwd.ApplyRect(r))
			if rr != r {
				t.Errorf("%v: rect %v round-trips to %v", o, r, rr)
			}
			if got, want := fwd.ApplyRect(r).Area(), r.Area(); got != want {
				t.Errorf("%v: transform changed area %d -> %d", o, want, got)
			}
		}
		// Transformed master corners stay inside the placed bounding box.
		bb := fwd.BBox()
		for _, p := range []Point{{0, 0}, {size.X, 0}, {0, size.Y}, {size.X, size.Y}} {
			if q := fwd.ApplyPt(p); !bb.ContainsPt(q) {
				t.Errorf("%v: corner %v maps outside bbox to %v", o, p, q)
			}
		}
	}
}

func TestBloatDegenerate(t *testing.T) {
	// Negative bloat that collapses the rect degrades to its center point, so
	// window computations never produce denormalized rectangles.
	r := R(0, 0, 10, 4)
	got := r.Bloat(-3)
	if !got.Valid() {
		t.Fatalf("shrunk rect not normalized: %v", got)
	}
	if got != R(3, 2, 7, 2) {
		t.Errorf("Bloat(-3) = %v", got)
	}
	if g := R(5, 5, 5, 5).Bloat(2); g != R(3, 3, 7, 7) {
		t.Errorf("point bloat = %v", g)
	}
}
