package geom

import (
	"slices"
	"sort"
)

// Ring is a closed rectilinear contour. The last vertex implicitly connects
// back to the first. Edges alternate between horizontal and vertical. Outer
// contours are counterclockwise (positive signed area); holes are clockwise.
type Ring []Point

// SignedArea2 returns twice the signed area of the ring (positive for
// counterclockwise).
func (r Ring) SignedArea2() int64 {
	var a int64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return a
}

// BBox returns the bounding box of the ring's vertices.
func (r Ring) BBox() Rect {
	if len(r) == 0 {
		return Rect{}
	}
	out := Rect{r[0].X, r[0].Y, r[0].X, r[0].Y}
	for _, p := range r[1:] {
		out.XL = minI64(out.XL, p.X)
		out.YL = minI64(out.YL, p.Y)
		out.XH = maxI64(out.XH, p.X)
		out.YH = maxI64(out.YH, p.Y)
	}
	return out
}

// Edges returns the directed edges of the ring in order.
func (r Ring) Edges() []Edge {
	n := len(r)
	out := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Edge{r[i], r[(i+1)%n]})
	}
	return out
}

// Edge is a directed rectilinear segment. For rings produced by UnionRects the
// polygon interior lies to the left of the direction of travel.
type Edge struct {
	P1, P2 Point
}

// Horizontal reports whether the edge runs along the x axis.
func (e Edge) Horizontal() bool { return e.P1.Y == e.P2.Y }

// Length returns the Manhattan length of the edge.
func (e Edge) Length() int64 { return e.P1.ManhattanDist(e.P2) }

// Rect returns the degenerate rectangle covering the edge.
func (e Edge) Rect() Rect { return R(e.P1.X, e.P1.Y, e.P2.X, e.P2.Y) }

// OutsideNormal returns the unit direction pointing away from the polygon
// interior (valid for interior-on-left edges).
func (e Edge) OutsideNormal() Point {
	dx := signI64(e.P2.X - e.P1.X)
	dy := signI64(e.P2.Y - e.P1.Y)
	// Right of direction (dx,dy) is (dy,-dx).
	return Point{dy, -dx}
}

// Polygon is a rectilinear polygon: one outer ring plus zero or more holes.
type Polygon struct {
	Outer Ring
	Holes []Ring
}

// BBox returns the bounding box of the outer ring.
func (p Polygon) BBox() Rect { return p.Outer.BBox() }

// Area returns the enclosed area (outer minus holes).
func (p Polygon) Area() int64 {
	a := p.Outer.SignedArea2()
	for _, h := range p.Holes {
		a += h.SignedArea2() // holes are clockwise: negative
	}
	return a / 2
}

// AllRings returns the outer ring followed by the holes.
func (p Polygon) AllRings() []Ring {
	out := make([]Ring, 0, 1+len(p.Holes))
	out = append(out, p.Outer)
	out = append(out, p.Holes...)
	return out
}

// grid is a coordinate-compressed occupancy grid over a set of rectangles.
type grid struct {
	xs, ys []int64
	cov    []bool // row-major: cov[j*nx+i] covers cell (xs[i],ys[j])-(xs[i+1],ys[j+1])
	comp   []int  // connected component id per covered cell, -1 for uncovered
	ncomp  int
}

func (g *grid) nx() int { return len(g.xs) - 1 }
func (g *grid) ny() int { return len(g.ys) - 1 }

func (g *grid) at(i, j int) bool { return g.cov[j*g.nx()+i] }

func buildGrid(rects []Rect) *grid {
	g := &grid{}
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		g.xs = append(g.xs, r.XL, r.XH)
		g.ys = append(g.ys, r.YL, r.YH)
	}
	g.xs = dedupSorted(g.xs)
	g.ys = dedupSorted(g.ys)
	if len(g.xs) < 2 || len(g.ys) < 2 {
		return g
	}
	nx, ny := g.nx(), g.ny()
	g.cov = make([]bool, nx*ny)
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		i0 := sort.Search(len(g.xs), func(i int) bool { return g.xs[i] >= r.XL })
		i1 := sort.Search(len(g.xs), func(i int) bool { return g.xs[i] >= r.XH })
		j0 := sort.Search(len(g.ys), func(j int) bool { return g.ys[j] >= r.YL })
		j1 := sort.Search(len(g.ys), func(j int) bool { return g.ys[j] >= r.YH })
		for j := j0; j < j1; j++ {
			row := g.cov[j*nx : (j+1)*nx]
			for i := i0; i < i1; i++ {
				row[i] = true
			}
		}
	}
	return g
}

// label assigns 4-connected component ids to covered cells.
func (g *grid) label() {
	nx, ny := g.nx(), g.ny()
	g.comp = make([]int, nx*ny)
	for i := range g.comp {
		g.comp[i] = -1
	}
	var stack []int
	for start := range g.cov {
		if !g.cov[start] || g.comp[start] >= 0 {
			continue
		}
		id := g.ncomp
		g.ncomp++
		stack = append(stack[:0], start)
		g.comp[start] = id
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			i, j := c%nx, c/nx
			for _, nb := range [4][2]int{{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}} {
				ni, nj := nb[0], nb[1]
				if ni < 0 || nj < 0 || ni >= nx || nj >= ny {
					continue
				}
				nc := nj*nx + ni
				if g.cov[nc] && g.comp[nc] < 0 {
					g.comp[nc] = id
					stack = append(stack, nc)
				}
			}
		}
	}
}

func dedupSorted(v []int64) []int64 {
	if len(v) == 0 {
		return v
	}
	slices.Sort(v) // allocation-free, unlike sort.Slice
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// UnionRects computes the union of a set of rectangles as disjoint rectilinear
// polygons with holes. Degenerate rectangles are ignored. The result is
// deterministic: polygons are ordered by component discovery (row-major over
// the compressed grid), ring vertices start at the ring's lexicographically
// smallest point.
func UnionRects(rects []Rect) []Polygon {
	g := buildGrid(rects)
	if g.cov == nil {
		return nil
	}
	g.label()
	polys := make([]Polygon, g.ncomp)
	ringsByComp := make([][]Ring, g.ncomp)

	nx, ny := g.nx(), g.ny()
	// Emit directed boundary edges per component (interior on the left),
	// keyed by start point for stitching.
	starts := make([]map[Point][]int, g.ncomp)
	edges := make([][]dirEdge, g.ncomp)
	addEdge := func(comp int, from, to Point) {
		if starts[comp] == nil {
			starts[comp] = make(map[Point][]int)
		}
		edges[comp] = append(edges[comp], dirEdge{from: from, to: to})
		starts[comp][from] = append(starts[comp][from], len(edges[comp])-1)
	}
	covAt := func(i, j int) bool {
		if i < 0 || j < 0 || i >= nx || j >= ny {
			return false
		}
		return g.at(i, j)
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if !g.at(i, j) {
				continue
			}
			c := g.comp[j*nx+i]
			x0, x1 := g.xs[i], g.xs[i+1]
			y0, y1 := g.ys[j], g.ys[j+1]
			if !covAt(i, j-1) { // bottom: travel +x, interior above (left)
				addEdge(c, Pt(x0, y0), Pt(x1, y0))
			}
			if !covAt(i, j+1) { // top: travel -x
				addEdge(c, Pt(x1, y1), Pt(x0, y1))
			}
			if !covAt(i-1, j) { // left: travel -y
				addEdge(c, Pt(x0, y1), Pt(x0, y0))
			}
			if !covAt(i+1, j) { // right: travel +y
				addEdge(c, Pt(x1, y0), Pt(x1, y1))
			}
		}
	}

	for comp := 0; comp < g.ncomp; comp++ {
		es := edges[comp]
		for seed := range es {
			if es[seed].used {
				continue
			}
			ring := traceRing(es, starts[comp], seed)
			ringsByComp[comp] = append(ringsByComp[comp], ring)
		}
	}
	for comp, rings := range ringsByComp {
		for _, ring := range rings {
			if ring.SignedArea2() > 0 {
				polys[comp].Outer = ring
			} else {
				polys[comp].Holes = append(polys[comp].Holes, ring)
			}
		}
	}
	return polys
}

// dirEdge is a directed boundary edge used during ring stitching.
type dirEdge struct {
	from, to Point
	used     bool
}

// traceRing walks directed edges starting at seed, always taking the most
// counterclockwise available turn so that degenerate corner touches resolve
// without self-intersection. Collinear runs are merged, and the resulting ring
// is rotated to start at its smallest vertex for determinism.
func traceRing(es []dirEdge, starts map[Point][]int, seed int) Ring {
	var raw []Point
	cur := seed
	for {
		es[cur].used = true
		raw = append(raw, es[cur].from)
		next := -1
		cand := starts[es[cur].to]
		if len(cand) == 1 {
			if !es[cand[0]].used {
				next = cand[0]
			}
		} else {
			// Pick the unused outgoing edge turning most CCW relative to the
			// incoming direction. Rectilinear edges: score left turn best,
			// straight next, right turn last. U-turns cannot occur.
			inDx := signI64(es[cur].to.X - es[cur].from.X)
			inDy := signI64(es[cur].to.Y - es[cur].from.Y)
			bestScore := -1
			for _, ci := range cand {
				if es[ci].used {
					continue
				}
				oDx := signI64(es[ci].to.X - es[ci].from.X)
				oDy := signI64(es[ci].to.Y - es[ci].from.Y)
				cross := inDx*oDy - inDy*oDx
				var score int
				switch {
				case cross > 0:
					score = 3 // left turn
				case cross == 0 && (oDx != -inDx || oDy != -inDy):
					score = 2 // straight
				default:
					score = 1
				}
				if score > bestScore {
					bestScore = score
					next = ci
				}
			}
		}
		if next < 0 {
			break
		}
		cur = next
		if cur == seed {
			break
		}
	}
	return canonicalRing(raw)
}

// canonicalRing merges collinear vertices and rotates the ring to start at the
// lexicographically smallest point.
func canonicalRing(raw []Point) Ring {
	n := len(raw)
	ring := make(Ring, 0, n)
	for i := 0; i < n; i++ {
		prev := raw[(i+n-1)%n]
		cur := raw[i]
		next := raw[(i+1)%n]
		if (prev.X == cur.X && cur.X == next.X) || (prev.Y == cur.Y && cur.Y == next.Y) {
			continue // collinear; drop
		}
		ring = append(ring, cur)
	}
	if len(ring) == 0 {
		return ring
	}
	best := 0
	for i, p := range ring {
		b := ring[best]
		if p.X < b.X || (p.X == b.X && p.Y < b.Y) {
			best = i
		}
	}
	out := make(Ring, 0, len(ring))
	out = append(out, ring[best:]...)
	out = append(out, ring[:best]...)
	return out
}

// UnionArea returns the total area covered by the union of rects.
func UnionArea(rects []Rect) int64 {
	g := buildGrid(rects)
	if g.cov == nil {
		return 0
	}
	var a int64
	nx := g.nx()
	for j := 0; j < g.ny(); j++ {
		for i := 0; i < nx; i++ {
			if g.at(i, j) {
				a += (g.xs[i+1] - g.xs[i]) * (g.ys[j+1] - g.ys[j])
			}
		}
	}
	return a
}

// MaxRects enumerates all maximal rectangles contained in the union of rects:
// every rectangle fully covered by the union that cannot be extended in any of
// the four directions while remaining covered. This matches the paper's
// "maximum rectangles of the polygon(s)" used for shape-center coordinates.
// Results are sorted by (XL, YL, XH, YH).
func MaxRects(rects []Rect) []Rect {
	g := buildGrid(rects)
	if g.cov == nil {
		return nil
	}
	nx, ny := g.nx(), g.ny()
	var out []Rect
	all := make([]bool, nx) // all[i]: columns i covered for rows jlo..jhi
	for jlo := 0; jlo < ny; jlo++ {
		for i := 0; i < nx; i++ {
			all[i] = g.at(i, jlo)
		}
		for jhi := jlo; jhi < ny; jhi++ {
			if jhi > jlo {
				for i := 0; i < nx; i++ {
					all[i] = all[i] && g.at(i, jhi)
				}
			}
			// Maximal horizontal runs of all[].
			for i := 0; i < nx; {
				if !all[i] {
					i++
					continue
				}
				lo := i
				for i < nx && all[i] {
					i++
				}
				hi := i - 1 // run covers columns lo..hi
				// Vertical maximality: extending one row down or up must break
				// coverage somewhere in the run.
				extDown := jlo > 0
				if extDown {
					for c := lo; c <= hi; c++ {
						if !g.at(c, jlo-1) {
							extDown = false
							break
						}
					}
				}
				extUp := jhi < ny-1
				if extUp {
					for c := lo; c <= hi; c++ {
						if !g.at(c, jhi+1) {
							extUp = false
							break
						}
					}
				}
				if !extDown && !extUp {
					out = append(out, Rect{g.xs[lo], g.ys[jlo], g.xs[hi+1], g.ys[jhi+1]})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ra, rb := out[a], out[b]
		if ra.XL != rb.XL {
			return ra.XL < rb.XL
		}
		if ra.YL != rb.YL {
			return ra.YL < rb.YL
		}
		if ra.XH != rb.XH {
			return ra.XH < rb.XH
		}
		return ra.YH < rb.YH
	})
	// Drop duplicates (the same rect can surface from multiple row pairs).
	dst := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dst = append(dst, r)
		}
	}
	return dst
}

// CoversPt reports whether the union of rects contains p (closed sets).
func CoversPt(rects []Rect, p Point) bool {
	for _, r := range rects {
		if r.ContainsPt(p) {
			return true
		}
	}
	return false
}

func signI64(v int64) int64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// RingSlices decomposes a simple rectilinear ring (either orientation) into
// disjoint covering rectangles by horizontal slab slicing. Errors on rings
// with odd crossing structure (self-intersection or non-rectilinear edges).
func RingSlices(ring Ring) ([]Rect, error) {
	n := len(ring)
	if n < 4 {
		return nil, errRingTooSmall
	}
	var ys []int64
	for i := 0; i < n; i++ {
		a, b := ring[i], ring[(i+1)%n]
		if a.X != b.X && a.Y != b.Y {
			return nil, errRingNotRectilinear
		}
		ys = append(ys, a.Y)
	}
	ys = dedupSorted(ys)
	var out []Rect
	for s := 0; s+1 < len(ys); s++ {
		lo, hi := ys[s], ys[s+1]
		// Work in doubled coordinates so the slab midline never coincides
		// with a vertex y (slab heights can be odd).
		mid2 := lo + hi
		var xs []int64
		for i := 0; i < n; i++ {
			a, b := ring[i], ring[(i+1)%n]
			if a.X != b.X {
				continue // horizontal edge
			}
			y1, y2 := a.Y, b.Y
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			if 2*y1 < mid2 && mid2 < 2*y2 {
				xs = append(xs, a.X)
			}
		}
		if len(xs)%2 != 0 {
			return nil, errRingCrossing
		}
		xs = dedupSorted(xs)
		if len(xs)%2 != 0 {
			return nil, errRingCrossing
		}
		for i := 0; i+1 < len(xs); i += 2 {
			out = append(out, R(xs[i], lo, xs[i+1], hi))
		}
	}
	return out, nil
}

// Sentinel errors for RingSlices.
var (
	errRingTooSmall       = ringError("ring has fewer than 4 vertices")
	errRingNotRectilinear = ringError("ring has a non-rectilinear edge")
	errRingCrossing       = ringError("ring has inconsistent edge crossings")
)

type ringError string

func (e ringError) Error() string { return "geom: " + string(e) }
