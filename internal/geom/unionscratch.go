package geom

import "sort"

// UnionScratch pools every buffer a rectilinear union needs — the compressed
// grid, the component labels, the boundary edges and the ring vertex storage —
// so repeated unions (the DRC engine runs one per via min-step check) allocate
// nothing after warm-up.
//
// The returned polygons and every ring they reference alias the scratch: they
// are valid only until the next Union call on the same scratch. Callers that
// keep results across calls must copy them. UnionRects wraps a fresh scratch
// per call, so its results remain caller-owned.
type UnionScratch struct {
	xs, ys []int64
	cov    []bool
	comp   []int32
	stack  []int32
	eoff   []int32 // per-component edge offsets (len ncomp+1)
	ecur   []int32 // per-component fill cursors
	edges  []dirEdge
	raw    []Point // ring trace scratch
	merged []Point // collinear-merge scratch
	pts    []Point // arena backing canonical ring vertices
	rings  []Ring
	ringc  []int32 // component id per traced ring
	holes  []Ring  // arena backing per-polygon hole lists
	polys  []Polygon
}

// Union computes the union of rects as disjoint rectilinear polygons with
// holes, identically to UnionRects, reusing the scratch's buffers. See the
// type comment for the aliasing contract.
func (s *UnionScratch) Union(rects []Rect) []Polygon {
	s.xs, s.ys = s.xs[:0], s.ys[:0]
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		s.xs = append(s.xs, r.XL, r.XH)
		s.ys = append(s.ys, r.YL, r.YH)
	}
	s.xs = dedupSorted(s.xs)
	s.ys = dedupSorted(s.ys)
	if len(s.xs) < 2 || len(s.ys) < 2 {
		return nil
	}
	nx, ny := len(s.xs)-1, len(s.ys)-1
	ncell := nx * ny
	s.cov = growBools(s.cov, ncell)
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		i0 := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] >= r.XL })
		i1 := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] >= r.XH })
		j0 := sort.Search(len(s.ys), func(j int) bool { return s.ys[j] >= r.YL })
		j1 := sort.Search(len(s.ys), func(j int) bool { return s.ys[j] >= r.YH })
		for j := j0; j < j1; j++ {
			row := s.cov[j*nx : (j+1)*nx]
			for i := i0; i < i1; i++ {
				row[i] = true
			}
		}
	}

	// 4-connected component labels.
	s.comp = growI32(s.comp, ncell)
	for i := range s.comp {
		s.comp[i] = -1
	}
	ncomp := int32(0)
	stack := s.stack[:0]
	for start := range s.cov {
		if !s.cov[start] || s.comp[start] >= 0 {
			continue
		}
		id := ncomp
		ncomp++
		stack = append(stack[:0], int32(start))
		s.comp[start] = id
		for len(stack) > 0 {
			c := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			i, j := c%nx, c/nx
			for _, nb := range [4][2]int{{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}} {
				ni, nj := nb[0], nb[1]
				if ni < 0 || nj < 0 || ni >= nx || nj >= ny {
					continue
				}
				nc := nj*nx + ni
				if s.cov[nc] && s.comp[nc] < 0 {
					s.comp[nc] = id
					stack = append(stack, int32(nc))
				}
			}
		}
	}
	s.stack = stack

	covAt := func(i, j int) bool {
		if i < 0 || j < 0 || i >= nx || j >= ny {
			return false
		}
		return s.cov[j*nx+i]
	}
	// Count boundary edges per component, then place them grouped by
	// component in the same per-component order the map-based emission used
	// (row-major cells; bottom, top, left, right per cell) — the stitching
	// below depends on that order for determinism.
	s.eoff = growI32(s.eoff, int(ncomp)+1)
	for i := range s.eoff {
		s.eoff[i] = 0
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if !s.cov[j*nx+i] {
				continue
			}
			c := s.comp[j*nx+i]
			n := int32(0)
			if !covAt(i, j-1) {
				n++
			}
			if !covAt(i, j+1) {
				n++
			}
			if !covAt(i-1, j) {
				n++
			}
			if !covAt(i+1, j) {
				n++
			}
			s.eoff[c+1] += n
		}
	}
	for c := int32(0); c < ncomp; c++ {
		s.eoff[c+1] += s.eoff[c]
	}
	total := int(s.eoff[ncomp])
	s.edges = growEdges(s.edges, total)
	s.ecur = growI32(s.ecur, int(ncomp))
	copy(s.ecur, s.eoff[:ncomp])
	put := func(c int32, from, to Point) {
		s.edges[s.ecur[c]] = dirEdge{from: from, to: to}
		s.ecur[c]++
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if !s.cov[j*nx+i] {
				continue
			}
			c := s.comp[j*nx+i]
			x0, x1 := s.xs[i], s.xs[i+1]
			y0, y1 := s.ys[j], s.ys[j+1]
			if !covAt(i, j-1) { // bottom: travel +x, interior above (left)
				put(c, Pt(x0, y0), Pt(x1, y0))
			}
			if !covAt(i, j+1) { // top: travel -x
				put(c, Pt(x1, y1), Pt(x0, y1))
			}
			if !covAt(i-1, j) { // left: travel -y
				put(c, Pt(x0, y1), Pt(x0, y0))
			}
			if !covAt(i+1, j) { // right: travel +y
				put(c, Pt(x1, y0), Pt(x1, y1))
			}
		}
	}

	// Trace rings per component. The vertex arena is reserved up front (one
	// canonical vertex consumes at least one edge) so ring views never move.
	s.pts = growPoints(s.pts, total)
	s.rings = s.rings[:0]
	s.ringc = s.ringc[:0]
	for c := int32(0); c < ncomp; c++ {
		es := s.edges[s.eoff[c]:s.eoff[c+1]]
		for seed := range es {
			if es[seed].used {
				continue
			}
			s.rings = append(s.rings, s.traceRing(es, seed))
			s.ringc = append(s.ringc, c)
		}
	}

	s.polys = growPolys(s.polys, int(ncomp))
	s.holes = growRings(s.holes, len(s.rings))
	for idx := 0; idx < len(s.rings); {
		c := s.ringc[idx]
		start := len(s.holes)
		for ; idx < len(s.rings) && s.ringc[idx] == c; idx++ {
			if s.rings[idx].SignedArea2() > 0 {
				s.polys[c].Outer = s.rings[idx]
			} else {
				s.holes = append(s.holes, s.rings[idx])
			}
		}
		if len(s.holes) > start {
			s.polys[c].Holes = s.holes[start:len(s.holes):len(s.holes)]
		}
	}
	return s.polys
}

// traceRing walks directed edges starting at seed, always taking the most
// counterclockwise available turn (the map-based stitching's rule; a linear
// scan over the component's edges visits candidates in the same emission
// order, so the same edge wins every tie).
func (s *UnionScratch) traceRing(es []dirEdge, seed int) Ring {
	raw := s.raw[:0]
	cur := seed
	for {
		es[cur].used = true
		raw = append(raw, es[cur].from)
		to := es[cur].to
		inDx := signI64(to.X - es[cur].from.X)
		inDy := signI64(to.Y - es[cur].from.Y)
		next, bestScore := -1, -1
		for ci := range es {
			if es[ci].used || es[ci].from != to {
				continue
			}
			oDx := signI64(es[ci].to.X - to.X)
			oDy := signI64(es[ci].to.Y - to.Y)
			cross := inDx*oDy - inDy*oDx
			var score int
			switch {
			case cross > 0:
				score = 3 // left turn
			case cross == 0 && (oDx != -inDx || oDy != -inDy):
				score = 2 // straight
			default:
				score = 1
			}
			if score > bestScore {
				bestScore = score
				next = ci
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	s.raw = raw
	return s.canonicalRing(raw)
}

// canonicalRing merges collinear vertices and rotates the ring to start at
// the lexicographically smallest point, storing the result in the vertex
// arena (pre-reserved by Union, so the append never reallocates).
func (s *UnionScratch) canonicalRing(raw []Point) Ring {
	n := len(raw)
	merged := s.merged[:0]
	for i := 0; i < n; i++ {
		prev := raw[(i+n-1)%n]
		cur := raw[i]
		next := raw[(i+1)%n]
		if (prev.X == cur.X && cur.X == next.X) || (prev.Y == cur.Y && cur.Y == next.Y) {
			continue // collinear; drop
		}
		merged = append(merged, cur)
	}
	s.merged = merged
	if len(merged) == 0 {
		return nil
	}
	best := 0
	for i, p := range merged {
		b := merged[best]
		if p.X < b.X || (p.X == b.X && p.Y < b.Y) {
			best = i
		}
	}
	start := len(s.pts)
	s.pts = append(s.pts, merged[best:]...)
	s.pts = append(s.pts, merged[:best]...)
	return Ring(s.pts[start:len(s.pts):len(s.pts)])
}

func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

func growEdges(buf []dirEdge, n int) []dirEdge {
	if cap(buf) < n {
		return make([]dirEdge, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = dirEdge{}
	}
	return buf
}

func growPoints(buf []Point, capNeed int) []Point {
	if cap(buf) < capNeed {
		return make([]Point, 0, capNeed)
	}
	return buf[:0]
}

func growRings(buf []Ring, capNeed int) []Ring {
	if cap(buf) < capNeed {
		return make([]Ring, 0, capNeed)
	}
	return buf[:0]
}

func growPolys(buf []Polygon, n int) []Polygon {
	if cap(buf) < n {
		return make([]Polygon, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = Polygon{}
	}
	return buf
}
