package geom

import (
	"math/rand"
	"reflect"
	"testing"
)

// copyPolys deep-copies a union result out of scratch-owned memory.
func copyPolys(ps []Polygon) []Polygon {
	out := make([]Polygon, len(ps))
	for i, p := range ps {
		out[i].Outer = append(Ring(nil), p.Outer...)
		for _, h := range p.Holes {
			out[i].Holes = append(out[i].Holes, append(Ring(nil), h...))
		}
	}
	return out
}

func polysEqual(a, b []Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Outer, b[i].Outer) {
			return false
		}
		if len(a[i].Holes) != len(b[i].Holes) {
			return false
		}
		for j := range a[i].Holes {
			if !reflect.DeepEqual(a[i].Holes[j], b[i].Holes[j]) {
				return false
			}
		}
	}
	return true
}

// TestUnionScratchMatchesUnionRects drives the pooled union and the map-based
// reference over randomized rect sets (including overlaps, touches, frames
// with holes and degenerate rects) and requires identical output — polygon
// order, ring starts, hole order, everything.
func TestUnionScratchMatchesUnionRects(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var s UnionScratch
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(9)
		rects := make([]Rect, 0, n+4)
		for i := 0; i < n; i++ {
			x, y := int64(rng.Intn(20)), int64(rng.Intn(20))
			w, h := int64(rng.Intn(8)), int64(rng.Intn(8))
			rects = append(rects, R(x, y, x+w, y+h)) // w/h may be 0: degenerate
		}
		if trial%5 == 0 {
			// A frame: exercises hole extraction.
			o := int64(6 + rng.Intn(6))
			rects = append(rects,
				R(30, 30, 30+o, 32), R(30, 28+o, 30+o, 30+o),
				R(30, 30, 32, 30+o), R(28+o, 30, 30+o, 30+o))
		}
		want := UnionRects(rects)
		got := s.Union(rects)
		if !polysEqual(copyPolys(got), want) {
			t.Fatalf("trial %d: scratch union diverges\nrects: %v\ngot:  %+v\nwant: %+v", trial, rects, got, want)
		}
	}
}

// TestUnionScratchReuse reuses one scratch across calls with different
// geometry and checks the second result is not corrupted by the first.
func TestUnionScratchReuse(t *testing.T) {
	var s UnionScratch
	big := []Rect{R(0, 0, 100, 10), R(0, 0, 10, 100), R(90, 0, 100, 100), R(0, 90, 100, 100)}
	small := []Rect{R(5, 5, 8, 8)}
	s.Union(big)
	got := copyPolys(s.Union(small))
	want := UnionRects(small)
	if !polysEqual(got, want) {
		t.Fatalf("reused scratch diverges: got %+v want %+v", got, want)
	}
	// And back to the larger input after shrinking.
	got = copyPolys(s.Union(big))
	want = UnionRects(big)
	if !polysEqual(got, want) {
		t.Fatalf("regrown scratch diverges: got %+v want %+v", got, want)
	}
}

// TestUnionScratchNoAllocsWarm pins the whole point: a warm scratch unions
// without allocating.
func TestUnionScratchNoAllocsWarm(t *testing.T) {
	var s UnionScratch
	rects := []Rect{R(0, 0, 140, 70), R(40, 0, 110, 120), R(0, 400, 70, 470)}
	s.Union(rects) // warm-up
	if n := testing.AllocsPerRun(50, func() { s.Union(rects) }); n != 0 {
		t.Fatalf("warm Union allocates %v times per run, want 0", n)
	}
}
