package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectNormalization(t *testing.T) {
	r := R(10, 20, 5, 2)
	want := Rect{5, 2, 10, 20}
	if r != want {
		t.Fatalf("R(10,20,5,2) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalized rect must be valid")
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 100, 40}
	if got := r.Width(); got != 100 {
		t.Errorf("Width = %d, want 100", got)
	}
	if got := r.Height(); got != 40 {
		t.Errorf("Height = %d, want 40", got)
	}
	if got := r.Area(); got != 4000 {
		t.Errorf("Area = %d, want 4000", got)
	}
	if got := r.Center(); got != Pt(50, 20) {
		t.Errorf("Center = %v, want (50,20)", got)
	}
	if got := r.MinDim(); got != 40 {
		t.Errorf("MinDim = %d, want 40", got)
	}
	if got := r.MaxDim(); got != 100 {
		t.Errorf("MaxDim = %d, want 100", got)
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported Empty")
	}
	if !(Rect{5, 5, 5, 9}).Empty() {
		t.Error("zero-width rect must be Empty")
	}
}

func TestContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}} {
		if !r.ContainsPt(p) {
			t.Errorf("ContainsPt(%v) = false, want true (boundary is closed)", p)
		}
	}
	for _, p := range []Point{{-1, 0}, {11, 5}, {5, -1}} {
		if r.ContainsPt(p) {
			t.Errorf("ContainsPt(%v) = true, want false", p)
		}
	}
	if !r.ContainsRect(Rect{0, 0, 10, 10}) {
		t.Error("rect must contain itself")
	}
	if r.ContainsRect(Rect{0, 0, 11, 10}) {
		t.Error("rect must not contain a larger rect")
	}
}

func TestOverlapsTouches(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	edge := Rect{10, 0, 20, 10}    // shares the x=10 edge
	corner := Rect{10, 10, 20, 20} // shares the (10,10) corner
	inside := Rect{2, 2, 8, 8}
	far := Rect{30, 30, 40, 40}

	if a.Overlaps(edge) {
		t.Error("edge-sharing rects must not Overlap")
	}
	if !a.Touches(edge) {
		t.Error("edge-sharing rects must Touch")
	}
	if !a.Touches(corner) {
		t.Error("corner-sharing rects must Touch")
	}
	if a.Overlaps(corner) {
		t.Error("corner-sharing rects must not Overlap")
	}
	if !a.Overlaps(inside) {
		t.Error("contained rect must Overlap")
	}
	if a.Touches(far) || a.Overlaps(far) {
		t.Error("disjoint rects must neither Touch nor Overlap")
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got, ok := a.Intersect(b)
	if !ok || got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("Intersect = %v,%v; want (5,5)-(10,10),true", got, ok)
	}
	if _, ok := a.Intersect(Rect{20, 20, 30, 30}); ok {
		t.Fatal("disjoint Intersect must report false")
	}
	// Touching rects intersect in a degenerate rect.
	got, ok = a.Intersect(Rect{10, 0, 20, 10})
	if !ok || got != (Rect{10, 0, 10, 10}) {
		t.Fatalf("touching Intersect = %v,%v; want degenerate segment,true", got, ok)
	}
}

func TestBloat(t *testing.T) {
	r := Rect{10, 10, 20, 20}
	if got := r.Bloat(5); got != (Rect{5, 5, 25, 25}) {
		t.Errorf("Bloat(5) = %v", got)
	}
	if got := r.Bloat(-3); got != (Rect{13, 13, 17, 17}) {
		t.Errorf("Bloat(-3) = %v", got)
	}
	// Over-shrink collapses to center.
	if got := r.Bloat(-20); got.Width() != 0 || got.Height() != 0 {
		t.Errorf("over-shrunk Bloat = %v, want degenerate", got)
	}
	if got := r.BloatXY(1, 2); got != (Rect{9, 8, 21, 22}) {
		t.Errorf("BloatXY = %v", got)
	}
}

func TestDistSquared(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want int64
	}{
		{Rect{12, 0, 20, 10}, 4},   // pure x gap 2
		{Rect{0, 15, 10, 20}, 25},  // pure y gap 5
		{Rect{13, 14, 20, 20}, 25}, // diagonal 3,4 -> 25
		{Rect{5, 5, 8, 8}, 0},      // overlap
		{Rect{10, 10, 20, 20}, 0},  // corner touch
	}
	for _, c := range cases {
		if got := a.DistSquared(c.b); got != c.want {
			t.Errorf("DistSquared(%v) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestPRL(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.PRL(Rect{20, 2, 30, 8}); got != 6 {
		t.Errorf("side-by-side PRL = %d, want 6", got)
	}
	if got := a.PRL(Rect{15, 15, 20, 20}); got >= 0 {
		t.Errorf("diagonal PRL = %d, want negative", got)
	}
	if got := a.PRL(Rect{2, 2, 8, 30}); got != 8 {
		t.Errorf("overlapping PRL = %d, want 8 (max projection overlap)", got)
	}
}

func TestSep(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.SepX(Rect{14, 0, 20, 10}); got != 4 {
		t.Errorf("SepX = %d, want 4", got)
	}
	if got := a.SepX(Rect{-20, 0, -6, 10}); got != 6 {
		t.Errorf("SepX left = %d, want 6", got)
	}
	if got := a.SepX(Rect{5, 0, 20, 10}); got != 0 {
		t.Errorf("SepX overlap = %d, want 0", got)
	}
	if got := a.SepY(Rect{0, 13, 10, 20}); got != 3 {
		t.Errorf("SepY = %d, want 3", got)
	}
}

func TestPointOps(t *testing.T) {
	p := Pt(3, 4)
	if got := p.Add(Pt(1, -2)); got != Pt(4, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(1, -2)); got != Pt(2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.ManhattanDist(Pt(0, 0)); got != 7 {
		t.Errorf("ManhattanDist = %d, want 7", got)
	}
}

// Property: DistSquared is symmetric and zero iff Touches.
func TestDistSquaredProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh int16) bool {
		a := R(int64(ax), int64(ay), int64(ax)+int64(abs16(aw)), int64(ay)+int64(abs16(ah)))
		b := R(int64(bx), int64(by), int64(bx)+int64(abs16(bw)), int64(by)+int64(abs16(bh)))
		d1, d2 := a.DistSquared(b), b.DistSquared(a)
		if d1 != d2 {
			return false
		}
		return (d1 == 0) == a.Touches(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: intersection of two rects is contained in both; union bbox
// contains both.
func TestIntersectUnionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh int16) bool {
		a := R(int64(ax), int64(ay), int64(ax)+int64(abs16(aw)), int64(ay)+int64(abs16(ah)))
		b := R(int64(bx), int64(by), int64(bx)+int64(abs16(bw)), int64(by)+int64(abs16(bh)))
		if in, ok := a.Intersect(b); ok {
			if !a.ContainsRect(in) || !b.ContainsRect(in) {
				return false
			}
		}
		u := a.UnionBBox(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func abs16(v int16) int16 {
	if v < 0 {
		if v == -32768 {
			return 32767
		}
		return -v
	}
	return v
}

func randRects(rng *rand.Rand, n int, span int64) []Rect {
	out := make([]Rect, n)
	for i := range out {
		x := rng.Int63n(span)
		y := rng.Int63n(span)
		w := rng.Int63n(span/4) + 1
		h := rng.Int63n(span/4) + 1
		out[i] = Rect{x, y, x + w, y + h}
	}
	return out
}
