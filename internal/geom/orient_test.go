package geom

import "testing"

func TestParseOrient(t *testing.T) {
	for _, name := range []string{"N", "W", "S", "E", "FN", "FS", "FW", "FE"} {
		o, err := ParseOrient(name)
		if err != nil {
			t.Fatalf("ParseOrient(%q): %v", name, err)
		}
		if o.String() != name {
			t.Errorf("round trip %q -> %q", name, o.String())
		}
	}
	if _, err := ParseOrient("R90"); err == nil {
		t.Error("ParseOrient must reject non-DEF keywords")
	}
}

func TestOrientFlags(t *testing.T) {
	rotated := map[Orient]bool{OrientW: true, OrientE: true, OrientFW: true, OrientFE: true}
	flipped := map[Orient]bool{OrientFN: true, OrientFS: true, OrientFW: true, OrientFE: true}
	for o := OrientN; o <= OrientFE; o++ {
		if got := o.Rotated90(); got != rotated[o] {
			t.Errorf("%v.Rotated90() = %v", o, got)
		}
		if got := o.Flipped(); got != flipped[o] {
			t.Errorf("%v.Flipped() = %v", o, got)
		}
	}
}

// TestTransformCorners pins the transform semantics: a point near the
// lower-left of a 10x4 master maps to the expected corner of the placed bbox
// for each of the eight orientations.
func TestTransformCorners(t *testing.T) {
	size := Pt(10, 4)
	p := Pt(1, 1) // near lower-left in master frame
	cases := []struct {
		o    Orient
		want Point
	}{
		{OrientN, Pt(1, 1)},
		{OrientS, Pt(9, 3)},
		{OrientW, Pt(3, 1)},
		{OrientE, Pt(1, 9)},
		{OrientFN, Pt(9, 1)},
		{OrientFS, Pt(1, 3)},
		{OrientFW, Pt(1, 1)},
		{OrientFE, Pt(3, 9)},
	}
	for _, c := range cases {
		tr := Transform{Orient: c.o, Size: size}
		if got := tr.ApplyPt(p); got != c.want {
			t.Errorf("%v: ApplyPt(%v) = %v, want %v", c.o, p, got, c.want)
		}
	}
}

// TestTransformBBoxInvariant: any master-local rect maps inside the placed
// bbox, and the placed bbox has the right size, for every orientation and a
// nonzero offset.
func TestTransformBBoxInvariant(t *testing.T) {
	size := Pt(760, 1400)
	inner := Rect{70, 130, 420, 900}
	for o := OrientN; o <= OrientFE; o++ {
		tr := Transform{Offset: Pt(10000, 20000), Orient: o, Size: size}
		bbox := tr.BBox()
		ps := tr.PlacedSize()
		if o.Rotated90() {
			if ps != Pt(size.Y, size.X) {
				t.Errorf("%v: PlacedSize = %v", o, ps)
			}
		} else if ps != size {
			t.Errorf("%v: PlacedSize = %v", o, ps)
		}
		got := tr.ApplyRect(inner)
		if !bbox.ContainsRect(got) {
			t.Errorf("%v: transformed rect %v escapes bbox %v", o, got, bbox)
		}
		if got.Area() != inner.Area() {
			t.Errorf("%v: area changed %d -> %d", o, inner.Area(), got.Area())
		}
	}
}

// TestTransformMasterBBox: the full master rect maps exactly onto the placed
// bbox for all orientations.
func TestTransformMasterBBox(t *testing.T) {
	size := Pt(10, 4)
	master := Rect{0, 0, size.X, size.Y}
	for o := OrientN; o <= OrientFE; o++ {
		tr := Transform{Offset: Pt(100, 200), Orient: o, Size: size}
		if got := tr.ApplyRect(master); got != tr.BBox() {
			t.Errorf("%v: ApplyRect(master) = %v, want %v", o, got, tr.BBox())
		}
	}
}

// TestTransformDistinct: the eight orientations give eight distinct images for
// an asymmetric point (this is what makes orientation part of the unique
// instance signature).
func TestTransformDistinct(t *testing.T) {
	size := Pt(10, 4)
	p := Pt(2, 1)
	seen := map[Point]Orient{}
	for o := OrientN; o <= OrientFE; o++ {
		tr := Transform{Orient: o, Size: size}
		got := tr.ApplyPt(p)
		if prev, dup := seen[got]; dup {
			t.Errorf("orientations %v and %v map %v to the same point %v", prev, o, p, got)
		}
		seen[got] = o
	}
}
