package geom

import "fmt"

// Orient is a DEF placement orientation. The eight values are the four
// rotations (N = R0, W = R90, S = R180, E = R270, counterclockwise) and their
// y-axis mirrors (FN = MY, FS = MX, FW = MX90, FE = MY90).
type Orient uint8

const (
	OrientN  Orient = iota // R0
	OrientW                // R90
	OrientS                // R180
	OrientE                // R270
	OrientFN               // MY  (mirror about the y axis)
	OrientFS               // MX  (mirror about the x axis)
	OrientFW               // MX90
	OrientFE               // MY90
)

var orientNames = [...]string{"N", "W", "S", "E", "FN", "FS", "FW", "FE"}

func (o Orient) String() string {
	if int(o) < len(orientNames) {
		return orientNames[o]
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// ParseOrient converts a DEF orientation keyword to an Orient.
func ParseOrient(s string) (Orient, error) {
	for i, n := range orientNames {
		if n == s {
			return Orient(i), nil
		}
	}
	return OrientN, fmt.Errorf("geom: unknown orientation %q", s)
}

// Rotated90 reports whether the orientation swaps the cell's width and height.
func (o Orient) Rotated90() bool {
	return o == OrientW || o == OrientE || o == OrientFW || o == OrientFE
}

// Flipped reports whether the orientation mirrors the cell (changes
// handedness).
func (o Orient) Flipped() bool { return o >= OrientFN }

// Transform places master-local coordinates into design coordinates. The
// master occupies [0,Size.X] x [0,Size.Y] in its own frame; after orienting,
// the transformed bounding box's lower-left corner lands at Offset (DEF
// component placement semantics).
type Transform struct {
	Offset Point
	Orient Orient
	Size   Point // master width (X) and height (Y)
}

// ApplyPt maps a master-local point to design coordinates.
func (t Transform) ApplyPt(p Point) Point {
	w, h := t.Size.X, t.Size.Y
	var q Point
	switch t.Orient {
	case OrientN:
		q = Point{p.X, p.Y}
	case OrientW:
		q = Point{h - p.Y, p.X}
	case OrientS:
		q = Point{w - p.X, h - p.Y}
	case OrientE:
		q = Point{p.Y, w - p.X}
	case OrientFN:
		q = Point{w - p.X, p.Y}
	case OrientFS:
		q = Point{p.X, h - p.Y}
	case OrientFW:
		q = Point{p.Y, p.X}
	case OrientFE:
		q = Point{h - p.Y, w - p.X}
	default:
		q = Point{p.X, p.Y}
	}
	return q.Add(t.Offset)
}

// ApplyRect maps a master-local rectangle to design coordinates.
func (t Transform) ApplyRect(r Rect) Rect {
	a := t.ApplyPt(Point{r.XL, r.YL})
	b := t.ApplyPt(Point{r.XH, r.YH})
	return R(a.X, a.Y, b.X, b.Y)
}

// PlacedSize returns the width and height of the cell after orientation.
func (t Transform) PlacedSize() Point {
	if t.Orient.Rotated90() {
		return Point{t.Size.Y, t.Size.X}
	}
	return t.Size
}

// BBox returns the placed bounding box of the cell.
func (t Transform) BBox() Rect {
	s := t.PlacedSize()
	return Rect{t.Offset.X, t.Offset.Y, t.Offset.X + s.X, t.Offset.Y + s.Y}
}
