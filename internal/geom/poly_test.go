package geom

import (
	"math/rand"
	"testing"
)

func TestUnionSingleRect(t *testing.T) {
	polys := UnionRects([]Rect{{0, 0, 10, 4}})
	if len(polys) != 1 {
		t.Fatalf("got %d polygons, want 1", len(polys))
	}
	p := polys[0]
	if len(p.Holes) != 0 {
		t.Fatalf("got %d holes, want 0", len(p.Holes))
	}
	if len(p.Outer) != 4 {
		t.Fatalf("outer ring has %d vertices, want 4: %v", len(p.Outer), p.Outer)
	}
	if p.Area() != 40 {
		t.Fatalf("area = %d, want 40", p.Area())
	}
	if p.BBox() != (Rect{0, 0, 10, 4}) {
		t.Fatalf("bbox = %v", p.BBox())
	}
	if p.Outer.SignedArea2() <= 0 {
		t.Fatal("outer ring must be counterclockwise")
	}
}

func TestUnionLShape(t *testing.T) {
	// Two rects forming an L.
	polys := UnionRects([]Rect{{0, 0, 10, 2}, {0, 0, 2, 10}})
	if len(polys) != 1 {
		t.Fatalf("got %d polygons, want 1", len(polys))
	}
	p := polys[0]
	if len(p.Outer) != 6 {
		t.Fatalf("L outline has %d vertices, want 6: %v", len(p.Outer), p.Outer)
	}
	if p.Area() != 10*2+2*10-2*2 {
		t.Fatalf("area = %d, want 36", p.Area())
	}
}

func TestUnionDisjoint(t *testing.T) {
	polys := UnionRects([]Rect{{0, 0, 2, 2}, {10, 10, 12, 12}})
	if len(polys) != 2 {
		t.Fatalf("got %d polygons, want 2", len(polys))
	}
}

func TestUnionAbutting(t *testing.T) {
	// Edge-abutting rects merge into one polygon.
	polys := UnionRects([]Rect{{0, 0, 5, 4}, {5, 0, 10, 4}})
	if len(polys) != 1 {
		t.Fatalf("got %d polygons, want 1", len(polys))
	}
	if len(polys[0].Outer) != 4 {
		t.Fatalf("merged outline has %d vertices, want 4: %v", len(polys[0].Outer), polys[0].Outer)
	}
}

func TestUnionCornerTouch(t *testing.T) {
	// Corner-touching rects stay separate components (4-connectivity).
	polys := UnionRects([]Rect{{0, 0, 5, 5}, {5, 5, 10, 10}})
	if len(polys) != 2 {
		t.Fatalf("got %d polygons, want 2 (corner touch must not merge)", len(polys))
	}
}

func TestUnionHole(t *testing.T) {
	// A frame made of four rects enclosing a hole.
	frame := []Rect{
		{0, 0, 10, 2},  // bottom
		{0, 8, 10, 10}, // top
		{0, 0, 2, 10},  // left
		{8, 0, 10, 10}, // right
	}
	polys := UnionRects(frame)
	if len(polys) != 1 {
		t.Fatalf("got %d polygons, want 1", len(polys))
	}
	p := polys[0]
	if len(p.Holes) != 1 {
		t.Fatalf("got %d holes, want 1", len(p.Holes))
	}
	if p.Holes[0].SignedArea2() >= 0 {
		t.Fatal("hole ring must be clockwise")
	}
	if p.Area() != 100-36 {
		t.Fatalf("area = %d, want 64", p.Area())
	}
	hb := p.Holes[0].BBox()
	if hb != (Rect{2, 2, 8, 8}) {
		t.Fatalf("hole bbox = %v, want (2,2)-(8,8)", hb)
	}
}

func TestUnionOverlapping(t *testing.T) {
	polys := UnionRects([]Rect{{0, 0, 6, 6}, {3, 3, 9, 9}})
	if len(polys) != 1 {
		t.Fatalf("got %d polygons, want 1", len(polys))
	}
	if got := polys[0].Area(); got != 36+36-9 {
		t.Fatalf("area = %d, want 63", got)
	}
	if len(polys[0].Outer) != 8 {
		t.Fatalf("outline has %d vertices, want 8", len(polys[0].Outer))
	}
}

func TestUnionIgnoresDegenerate(t *testing.T) {
	polys := UnionRects([]Rect{{0, 0, 0, 10}, {5, 5, 5, 5}})
	if len(polys) != 0 {
		t.Fatalf("degenerate rects produced %d polygons", len(polys))
	}
	if UnionArea(nil) != 0 {
		t.Fatal("UnionArea(nil) != 0")
	}
}

func TestRingEdges(t *testing.T) {
	polys := UnionRects([]Rect{{0, 0, 10, 4}})
	edges := polys[0].Outer.Edges()
	if len(edges) != 4 {
		t.Fatalf("got %d edges, want 4", len(edges))
	}
	var totalLen int64
	for _, e := range edges {
		totalLen += e.Length()
		if e.Horizontal() && e.P1.Y != e.P2.Y {
			t.Errorf("edge %v inconsistent orientation", e)
		}
	}
	if totalLen != 2*(10+4) {
		t.Fatalf("perimeter = %d, want 28", totalLen)
	}
	// Outside normals of a CCW rectangle point away from the center.
	c := Pt(5, 2)
	for _, e := range edges {
		n := e.OutsideNormal()
		mid := Pt((e.P1.X+e.P2.X)/2, (e.P1.Y+e.P2.Y)/2)
		// Stepping from the midpoint along the normal must increase distance
		// from the center.
		before := mid.ManhattanDist(c)
		after := mid.Add(n).ManhattanDist(c)
		if after <= before {
			t.Errorf("edge %v normal %v points inward", e, n)
		}
	}
}

func TestUnionAreaMatchesPolygons(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rects := randRects(rng, 1+rng.Intn(12), 200)
		want := UnionArea(rects)
		var got int64
		for _, p := range UnionRects(rects) {
			got += p.Area()
		}
		if got != want {
			t.Fatalf("trial %d: polygon area sum %d != union area %d (rects %v)", trial, got, want, rects)
		}
	}
}

func TestMaxRectsSingle(t *testing.T) {
	got := MaxRects([]Rect{{0, 0, 10, 4}})
	if len(got) != 1 || got[0] != (Rect{0, 0, 10, 4}) {
		t.Fatalf("MaxRects = %v", got)
	}
}

func TestMaxRectsCross(t *testing.T) {
	// A plus/cross shape has exactly two maximal rectangles: the horizontal
	// bar and the vertical bar.
	h := Rect{0, 4, 12, 8}
	v := Rect{4, 0, 8, 12}
	got := MaxRects([]Rect{h, v})
	if len(got) != 2 {
		t.Fatalf("MaxRects(cross) = %v, want 2 rects", got)
	}
	found := map[Rect]bool{}
	for _, r := range got {
		found[r] = true
	}
	if !found[h] || !found[v] {
		t.Fatalf("MaxRects(cross) = %v, want the two bars", got)
	}
}

func TestMaxRectsLShape(t *testing.T) {
	got := MaxRects([]Rect{{0, 0, 10, 2}, {0, 0, 2, 10}})
	if len(got) != 2 {
		t.Fatalf("MaxRects(L) = %v, want 2 rects", got)
	}
	for _, r := range got {
		if r != (Rect{0, 0, 10, 2}) && r != (Rect{0, 0, 2, 10}) {
			t.Fatalf("unexpected maximal rect %v", r)
		}
	}
}

// Property: every maximal rectangle is covered by the union and cannot be
// bloated by one unit in any single direction while staying covered.
func TestMaxRectsMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	covered := func(rects []Rect, r Rect) bool {
		return UnionArea(append([]Rect{}, rects...)) == UnionArea(append(append([]Rect{}, rects...), r)) // r adds nothing
	}
	for trial := 0; trial < 30; trial++ {
		rects := randRects(rng, 1+rng.Intn(8), 100)
		for _, m := range MaxRects(rects) {
			if !covered(rects, m) {
				t.Fatalf("trial %d: maximal rect %v not covered by union of %v", trial, m, rects)
			}
			grown := []Rect{
				{m.XL - 1, m.YL, m.XH, m.YH},
				{m.XL, m.YL, m.XH + 1, m.YH},
				{m.XL, m.YL - 1, m.XH, m.YH},
				{m.XL, m.YL, m.XH, m.YH + 1},
			}
			for _, g := range grown {
				if covered(rects, g) {
					t.Fatalf("trial %d: rect %v not maximal (grows to %v)", trial, m, g)
				}
			}
		}
	}
}

func TestCoversPt(t *testing.T) {
	rects := []Rect{{0, 0, 4, 4}, {10, 10, 14, 14}}
	if !CoversPt(rects, Pt(4, 4)) {
		t.Error("boundary point must be covered")
	}
	if CoversPt(rects, Pt(5, 5)) {
		t.Error("gap point must not be covered")
	}
}

func TestRingSlices(t *testing.T) {
	// An L: (0,0) (10,0) (10,4) (4,4) (4,10) (0,10).
	ring := Ring{Pt(0, 0), Pt(10, 0), Pt(10, 4), Pt(4, 4), Pt(4, 10), Pt(0, 10)}
	rects, err := RingSlices(ring)
	if err != nil {
		t.Fatal(err)
	}
	if got := UnionArea(rects); got != 10*4+4*6 {
		t.Fatalf("sliced area = %d, want 64", got)
	}
	// Clockwise ring works too.
	rev := make(Ring, len(ring))
	for i := range ring {
		rev[i] = ring[len(ring)-1-i]
	}
	rects2, err := RingSlices(rev)
	if err != nil {
		t.Fatal(err)
	}
	if UnionArea(rects2) != UnionArea(rects) {
		t.Fatal("orientation changed the slice area")
	}
	// Errors.
	if _, err := RingSlices(Ring{Pt(0, 0), Pt(1, 1), Pt(0, 2)}); err == nil {
		t.Error("non-rectilinear ring must error")
	}
	if _, err := RingSlices(Ring{Pt(0, 0), Pt(1, 0)}); err == nil {
		t.Error("tiny ring must error")
	}
}

// Property: slicing the outer ring of a hole-free union polygon recovers its
// exact area.
func TestRingSlicesMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 60 && checked < 25; trial++ {
		rects := randRects(rng, 1+rng.Intn(6), 150)
		for _, poly := range UnionRects(rects) {
			if len(poly.Holes) > 0 {
				continue
			}
			slices, err := RingSlices(poly.Outer)
			if err != nil {
				t.Fatalf("trial %d: %v (ring %v)", trial, err, poly.Outer)
			}
			if got := UnionArea(slices); got != poly.Area() {
				t.Fatalf("trial %d: sliced area %d != polygon area %d", trial, got, poly.Area())
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no polygons checked")
	}
}
