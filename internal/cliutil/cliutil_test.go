package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestRegisterRunFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RegisterRunFlags(fs)
	if err := fs.Parse([]string{"-timeout", "250ms", "-fail-fast"}); err != nil {
		t.Fatal(err)
	}
	if f.Timeout != 250*time.Millisecond || !f.FailFast {
		t.Errorf("parsed %+v", f)
	}
}

func TestContextTimeout(t *testing.T) {
	f := &RunFlags{Timeout: 10 * time.Millisecond}
	ctx, stop := f.Context()
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("-timeout context never expired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v", ctx.Err())
	}
}

func TestContextNoTimeout(t *testing.T) {
	var f *RunFlags // nil receiver: signal-only context
	ctx, stop := f.Context()
	defer stop()
	if ctx.Err() != nil {
		t.Errorf("fresh context already done: %v", ctx.Err())
	}
	if _, ok := ctx.Deadline(); ok {
		t.Error("no -timeout must mean no deadline")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{context.DeadlineExceeded, 3},
		{context.Canceled, 3},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), 3},
		{errors.New("boom"), 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
