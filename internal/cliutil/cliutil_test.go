package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestRegisterRunFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RegisterRunFlags(fs)
	if err := fs.Parse([]string{"-timeout", "250ms", "-fail-fast"}); err != nil {
		t.Fatal(err)
	}
	if f.Timeout != 250*time.Millisecond || !f.FailFast {
		t.Errorf("parsed %+v", f)
	}
}

func TestContextTimeout(t *testing.T) {
	f := &RunFlags{Timeout: 10 * time.Millisecond}
	ctx, stop := f.Context()
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("-timeout context never expired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v", ctx.Err())
	}
}

func TestContextNoTimeout(t *testing.T) {
	var f *RunFlags // nil receiver: signal-only context
	ctx, stop := f.Context()
	defer stop()
	if ctx.Err() != nil {
		t.Errorf("fresh context already done: %v", ctx.Err())
	}
	if _, ok := ctx.Deadline(); ok {
		t.Error("no -timeout must mean no deadline")
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 5}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Retry(context.Background(), RetryPolicy{Attempts: 4}, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("err = %v after %d calls, want boom after 4", err, calls)
	}
}

func TestRetryPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Retry(context.Background(), RetryPolicy{
		Attempts: 10,
		RetryIf:  func(err error) bool { return !errors.Is(err, perm) },
	}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err = %v after %d calls, want permanent after 1", err, calls)
	}
}

func TestRetryContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	calls := 0
	err := Retry(ctx, RetryPolicy{Attempts: 100, BaseDelay: time.Hour}, func() error {
		calls++
		return errors.New("always")
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times; the hour-long backoff must be interrupted", calls)
	}
}

// TestRetryPreCancelledContext pins the between-attempt cancellation
// contract: a context that is already done must stop Retry before it invokes
// fn at all — a SIGTERM arriving between attempts aborts the next one rather
// than letting it run.
func TestRetryPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, RetryPolicy{Attempts: 5}, func() error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("fn ran %d times on a pre-cancelled context, want 0", calls)
	}
}

// TestRetrySleepSeamHonorsCancel covers the test-seam path: with p.sleep set
// there is no real timer select, so only the loop-top ctx check can stop a
// cancellation that lands mid-backoff.
func TestRetrySleepSeamHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	p := RetryPolicy{Attempts: 100, BaseDelay: time.Millisecond}
	p.sleep = func(time.Duration) { cancel() } // cancellation arrives during the backoff
	err := Retry(ctx, p, func() error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want exactly 1 (no attempt after cancel)", calls)
	}
}

func TestRetryPolicyDelayGrowthAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 50, 50} // ms; doubled then capped
	for i, w := range want {
		if got := p.delay(i + 1); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestRetryPolicyJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := p.delay(1)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
}

// TestRetryJitterDeterministicByDefault pins the nil-Rand contract: Retry
// must seed a local generator, so two runs with identical policies produce
// byte-identical backoff schedules (the old global-math/rand fallback made
// schedules differ run to run).
func TestRetryJitterDeterministicByDefault(t *testing.T) {
	run := func() []time.Duration {
		var ds []time.Duration
		p := RetryPolicy{Attempts: 6, BaseDelay: 10 * time.Millisecond, Jitter: 0.9}
		p.sleep = func(d time.Duration) { ds = append(ds, d) }
		if err := Retry(context.Background(), p, func() error { return errors.New("transient") }); err == nil {
			t.Fatal("Retry must exhaust attempts")
		}
		return ds
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("recorded %d delays, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nil-Rand backoff schedules differ at retry %d: %v vs %v", i+1, a, b)
		}
	}
	// The jitter must actually engage: with Jitter 0.9 at least one delay has
	// to land strictly below the unjittered exponential sequence.
	jittered := false
	for i, d := range a {
		pure := 10 * time.Millisecond << i
		if d > pure {
			t.Fatalf("delay %d = %v exceeds unjittered %v", i+1, d, pure)
		}
		if d < pure {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("no delay was jittered; the seeded source is not being consumed")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{context.DeadlineExceeded, 3},
		{context.Canceled, 3},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), 3},
		{errors.New("boom"), 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
