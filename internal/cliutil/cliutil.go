// Package cliutil holds the lifecycle plumbing shared by the cmd tools:
// the -timeout and -fail-fast flags and SIGINT/SIGTERM-aware contexts, so
// every tool degrades the same way — flush whatever partial report exists,
// exit non-zero — when a run is cancelled.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/telemetry"
)

// RunFlags carries the robustness options common to every tool.
type RunFlags struct {
	// Timeout aborts the run after this duration; 0 disables the deadline.
	Timeout time.Duration
	// FailFast aborts at the first degraded result instead of quarantining
	// it and continuing.
	FailFast bool
}

// RegisterRunFlags registers -timeout and -fail-fast on the flag set.
func RegisterRunFlags(fs *flag.FlagSet) *RunFlags {
	f := &RunFlags{}
	fs.DurationVar(&f.Timeout, "timeout", 0, "abort the run after this duration (0 disables)")
	fs.BoolVar(&f.FailFast, "fail-fast", false, "abort on the first degraded result instead of continuing")
	return f
}

// FailFastSet reports whether -fail-fast was given. Like Context it is
// nil-receiver safe, so tool run() functions behave sensibly when a test
// constructs their options without going through RegisterRunFlags.
func (f *RunFlags) FailFastSet() bool {
	return f != nil && f.FailFast
}

// Context returns a context cancelled by SIGINT, SIGTERM, or the -timeout
// deadline when one is set, carrying a fresh correlation ID so every log
// line, span export, and slow-log entry of the run shares one identifier.
// Call the returned stop function before exiting to restore default signal
// behaviour (a second SIGINT then kills the process immediately).
func (f *RunFlags) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	ctx, _ = telemetry.EnsureCorrID(ctx)
	if f == nil || f.Timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, f.Timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}

// ExitCode maps a run error to the process exit status: 0 on success, 3 when
// the run was cancelled (deadline or signal) after flushing partial output,
// 1 for every other failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return 3
	default:
		return 1
	}
}

// Cancelled reports whether err is a context cancellation or deadline.
func Cancelled(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// RetryPolicy tunes Retry: up to Attempts calls separated by jittered
// exponential backoff starting at BaseDelay and capped at MaxDelay.
type RetryPolicy struct {
	// Attempts is the total number of calls (not retries); values < 1 mean 1.
	Attempts int
	// BaseDelay is the backoff before the second attempt; 0 retries
	// immediately.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff; 0 leaves it uncapped.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values <= 1 default to 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized away (0..1): a delay d
	// becomes uniform in [d*(1-Jitter), d]. Negative or zero disables jitter.
	Jitter float64
	// RetryIf, when set, classifies errors: a false return makes the error
	// permanent and Retry gives up immediately. Nil retries every error.
	RetryIf func(error) bool

	// Rand supplies the jitter randomness; nil makes Retry use a local
	// generator with a fixed seed, so backoff schedules are reproducible by
	// default (the global math/rand source would differ run to run and leak
	// nondeterminism into tests). Inject a generator to randomize or to pin a
	// different schedule.
	Rand *rand.Rand

	// sleep is a test seam: when non-nil, Retry calls it instead of sleeping
	// on a real timer, so tests can record the backoff schedule.
	sleep func(time.Duration)
}

// retrySeed seeds the fallback jitter source when RetryPolicy.Rand is nil.
const retrySeed = 1

// delay returns the backoff before attempt n (n = 1 is the first retry).
func (p RetryPolicy) delay(n int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		r := p.Rand
		if r == nil {
			// Retry seeds p.Rand up front; this covers direct delay() calls.
			r = rand.New(rand.NewSource(retrySeed))
		}
		d *= 1 - j*r.Float64()
	}
	return time.Duration(d)
}

// Retry calls fn until it succeeds, the policy's attempts are exhausted, the
// error is classified permanent by RetryIf, or ctx is cancelled. It returns
// nil on success, ctx.Err() when the context ends a backoff sleep early, and
// otherwise fn's last error. The snapshot-write and warm-restart-load paths
// of the oracle server are the canonical users.
func Retry(ctx context.Context, p RetryPolicy, fn func() error) error {
	if p.Rand == nil {
		p.Rand = rand.New(rand.NewSource(retrySeed))
	}
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for n := 1; ; n++ {
		// Checking before every attempt (not only inside the timer select)
		// means a pre-cancelled context never invokes fn, and the sleep test
		// seam path still honors cancellation between attempts.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(); err == nil {
			return nil
		}
		if n >= attempts || (p.RetryIf != nil && !p.RetryIf(err)) {
			return err
		}
		if d := p.delay(n); d > 0 {
			if p.sleep != nil {
				p.sleep(d)
				continue
			}
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}
