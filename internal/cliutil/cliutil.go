// Package cliutil holds the lifecycle plumbing shared by the cmd tools:
// the -timeout and -fail-fast flags and SIGINT/SIGTERM-aware contexts, so
// every tool degrades the same way — flush whatever partial report exists,
// exit non-zero — when a run is cancelled.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// RunFlags carries the robustness options common to every tool.
type RunFlags struct {
	// Timeout aborts the run after this duration; 0 disables the deadline.
	Timeout time.Duration
	// FailFast aborts at the first degraded result instead of quarantining
	// it and continuing.
	FailFast bool
}

// RegisterRunFlags registers -timeout and -fail-fast on the flag set.
func RegisterRunFlags(fs *flag.FlagSet) *RunFlags {
	f := &RunFlags{}
	fs.DurationVar(&f.Timeout, "timeout", 0, "abort the run after this duration (0 disables)")
	fs.BoolVar(&f.FailFast, "fail-fast", false, "abort on the first degraded result instead of continuing")
	return f
}

// FailFastSet reports whether -fail-fast was given. Like Context it is
// nil-receiver safe, so tool run() functions behave sensibly when a test
// constructs their options without going through RegisterRunFlags.
func (f *RunFlags) FailFastSet() bool {
	return f != nil && f.FailFast
}

// Context returns a context cancelled by SIGINT, SIGTERM, or the -timeout
// deadline when one is set. Call the returned stop function before exiting
// to restore default signal behaviour (a second SIGINT then kills the
// process immediately).
func (f *RunFlags) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if f == nil || f.Timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, f.Timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}

// ExitCode maps a run error to the process exit status: 0 on success, 3 when
// the run was cancelled (deadline or signal) after flushing partial output,
// 1 for every other failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return 3
	default:
		return 1
	}
}

// Cancelled reports whether err is a context cancellation or deadline.
func Cancelled(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
