package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every hook must be a no-op on a nil receiver — the
// instrumented code paths rely on it instead of enabled-checks.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter loaded nonzero")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Load() != 0 {
		t.Fatal("nil gauge loaded nonzero")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot nonzero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned a metric")
	}
	r.AddAll(map[string]int64{"x": 1})
	if len(r.Snapshot().Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
	var sp *Span
	if sp.Start("a") != nil || sp.Agg("a") != nil {
		t.Fatal("nil span created a child")
	}
	sp.AddDur(time.Second)
	sp.AddTime("a", time.Second)
	if sp.End() != 0 || sp.Duration() != 0 || sp.Count() != 0 || sp.Export() != nil {
		t.Fatal("nil span accumulated")
	}
	var o *Observer
	if o.Root() != nil || o.Reg() != nil {
		t.Fatal("nil observer returned components")
	}
	if rep := o.Report(); rep.Counters == nil {
		t.Fatal("nil observer report has nil counters map")
	}
	o.WriteText(&bytes.Buffer{}) // must not panic
}

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
	var g Gauge
	g.Set(2.5)
	g.Set(0.75)
	if g.Load() != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", g.Load())
	}
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0 (sub-microsecond)
	h.Observe(3 * time.Microsecond)  // bucket 2: [2,4) us
	h.Observe(3 * time.Microsecond)
	h.Observe(time.Millisecond)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Snapshot()
	if s.MaxMS != 1.0 {
		t.Fatalf("max = %vms, want 1", s.MaxMS)
	}
	if s.AvgMS <= 0 || s.SumMS < 1.0 {
		t.Fatalf("bad avg/sum: %+v", s)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
		if b.Count == 0 {
			t.Fatal("empty bucket exported")
		}
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	var nilH *Histogram
	if q := nilH.Quantile(0.99); q != 0 {
		t.Fatalf("nil quantile = %v, want 0", q)
	}

	var h Histogram
	// 90 fast observations in [2,4)us, 10 slow ones in [1024,2048)us.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	// p50 lands rank 50 of 90 inside the [2,4)us bucket; interpolation puts
	// it strictly inside the bucket, not on the upper bound.
	if q := h.Quantile(0.5); q <= 2*time.Microsecond || q >= 4*time.Microsecond {
		t.Errorf("p50 = %v, want interpolated inside (2us, 4us)", q)
	}
	if q := h.Quantile(0.99); q != 1500*time.Microsecond {
		t.Errorf("p99 = %v, want 1.5ms (capped at max)", q)
	}
	if q := h.Quantile(1); q != 1500*time.Microsecond {
		t.Errorf("p100 = %v, want the max", q)
	}

	// The exported snapshot must agree (in milliseconds).
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0.002 || q >= 0.004 {
		t.Errorf("snapshot p50 = %v, want inside (0.002, 0.004)", q)
	}
	if q := s.Quantile(0.99); q != 1.5 {
		t.Errorf("snapshot p99 = %v, want 1.5", q)
	}
}

// TestHistogramMerge: fixed shared bucket boundaries make the merge exact —
// the merged histogram is indistinguishable from one that saw every
// observation directly.
func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	durs := []time.Duration{
		500 * time.Nanosecond, 3 * time.Microsecond, 3 * time.Microsecond,
		90 * time.Microsecond, 1500 * time.Microsecond, 40 * time.Millisecond,
	}
	for i, d := range durs {
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		all.Observe(d)
	}
	var m Histogram
	m.Merge(&a)
	m.Merge(&b)
	if m.Count() != all.Count() || m.Sum() != all.Sum() {
		t.Fatalf("merge count/sum = %d/%v, want %d/%v", m.Count(), m.Sum(), all.Count(), all.Sum())
	}
	ms, as := m.Snapshot(), all.Snapshot()
	if len(ms.Buckets) != len(as.Buckets) {
		t.Fatalf("merge buckets = %+v, want %+v", ms.Buckets, as.Buckets)
	}
	for i := range ms.Buckets {
		if ms.Buckets[i] != as.Buckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, ms.Buckets[i], as.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if m.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%.2f = %v, want %v", q, m.Quantile(q), all.Quantile(q))
		}
	}
	// Nil safety both directions.
	var nilH *Histogram
	nilH.Merge(&a)
	m.Merge(nilH)
}

// TestHistogramQuantileConcurrent hammers Quantile while writers observe;
// under -race this proves the estimator reads a consistent bucket snapshot,
// and the returned estimate must always be a plausible duration (never past
// the largest value ever observed).
func TestHistogramQuantileConcurrent(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration(1+i%1000) * time.Microsecond)
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if q := h.Quantile(0.99); q < 0 || q > time.Millisecond {
			t.Errorf("racing p99 = %v, want within [0, 1ms]", q)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegistryConcurrent: get-or-create and Add race-free from many
// goroutines; run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Microsecond)
				r.Gauge("level").Set(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryAddAll(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.AddAll(map[string]int64{"a": 2, "b": 3})
	m := r.Snapshot()
	if m.Counters["a"] != 3 || m.Counters["b"] != 3 {
		t.Fatalf("AddAll merged wrong: %+v", m.Counters)
	}
}

// TestSpanTree: stopwatch and aggregated children combine into one exported
// tree with accumulated durations and counts.
func TestSpanTree(t *testing.T) {
	tr := NewTrace("run")
	root := tr.Root

	step := root.Start("step1")
	time.Sleep(time.Millisecond)
	if d := step.End(); d < time.Millisecond {
		t.Fatalf("End returned %v", d)
	}

	// Aggregated leaves, concurrently.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				step.AddTime("item", 10*time.Microsecond)
			}
		}()
	}
	wg.Wait()

	root.End()
	e := root.Export()
	if e.Name != "run" || len(e.Children) != 1 {
		t.Fatalf("bad root export: %+v", e)
	}
	s1 := e.Children[0]
	if s1.Name != "step1" || s1.DurMS < 1 {
		t.Fatalf("bad step export: %+v", s1)
	}
	if len(s1.Children) != 1 || s1.Children[0].Count != 400 {
		t.Fatalf("aggregated child wrong: %+v", s1.Children)
	}
	if got := s1.Children[0].DurMS; got < 3.9 || got > 4.1 {
		t.Fatalf("aggregated duration = %vms, want ~4", got)
	}

	var txt bytes.Buffer
	root.WriteText(&txt)
	out := txt.String()
	for _, want := range []string{"run", "step1", "item", "x400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text export missing %q:\n%s", want, out)
		}
	}
	var js bytes.Buffer
	if err := root.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back SpanExport
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("span JSON does not round-trip: %v", err)
	}
}

// TestSpanRestart: a stopwatch span may run repeatedly, accumulating.
func TestSpanRestart(t *testing.T) {
	tr := NewTrace("r")
	sp := tr.Root.Start("phase")
	sp.End()
	sp.start = time.Now()
	sp.End()
	if sp.Count() != 2 {
		t.Fatalf("count = %d, want 2", sp.Count())
	}
}

// TestFlagsStartJSON: the CLI surface end to end — flags parsed, observer
// instrumented, finish() emits a JSON report containing the metrics and trace.
func TestFlagsStartJSON(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-metrics=json"}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	f.Out = &out
	o, finish, err := f.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("json mode must return an observer")
	}
	o.Reg().Counter("drc.check.metal").Add(7)
	o.Root().Start("work").End()
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Name     string           `json:"name"`
		Counters map[string]int64 `json:"counters"`
		Trace    *SpanExport      `json:"trace"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Name != "tool" || rep.Counters["drc.check.metal"] != 7 {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.Trace == nil || len(rep.Trace.Children) != 1 || rep.Trace.Children[0].Name != "work" {
		t.Fatalf("bad trace: %+v", rep.Trace)
	}
}

// TestFlagsDisabled: metrics off returns a nil observer (all hooks no-op)
// and finish() writes nothing.
func TestFlagsDisabled(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	f.Out = &out
	o, finish, err := f.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("disabled mode must return a nil observer")
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("disabled mode wrote output: %q", out.String())
	}
}

func TestFlagsBadMode(t *testing.T) {
	f := &Flags{Metrics: "yaml"}
	if _, _, err := f.Start("tool"); err == nil {
		t.Fatal("bad -metrics mode must error")
	}
}
