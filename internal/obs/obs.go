// Package obs is the repository's dependency-free observability layer:
// named registries of race-safe counters, gauges and duration histograms,
// hierarchical spans that assemble a run into a timing tree (span.go), and
// CLI/profiling wiring shared by the command-line tools (cli.go).
//
// Every method tolerates a nil receiver, so instrumented code needs no
// enabled-checks: a nil Observer (or nil Registry/Span/Counter) turns every
// hook into a cheap no-op. Hot paths that would pay for a time.Now() even on
// the no-op path should still gate on the observer being non-nil.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable level (last write wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of log2 duration buckets. Bucket i counts
// observations with a microsecond value whose bit length is i (so bucket 0 is
// sub-microsecond, bucket i covers [2^(i-1), 2^i) microseconds); the last
// bucket is a catch-all for anything longer (~36 minutes and up).
const histBuckets = 32

// BucketBound returns bucket i's upper bound in microseconds. Every histogram
// shares these fixed boundaries, which is what makes Merge exact and lets a
// Prometheus scraper aggregate histograms across processes.
func BucketBound(i int) int64 { return int64(1) << i }

// Histogram is a race-safe log2 duration histogram with sum, count and max.
// Bucket boundaries are fixed (BucketBound), so any two histograms merge
// exactly bucket-by-bucket.
type Histogram struct {
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
	bucket [histBuckets]atomic.Int64
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.bucket[bucketOf(d)].Add(1)
}

// Sum returns the accumulated duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the log2 buckets, capped at the true observed maximum. The bucket
// counts are snapshotted first and the total is derived from that snapshot,
// so the rank is always reachable even while writers are racing: a concurrent
// Observe can at worst shift the estimate by its own weight, never leave the
// scan running past the last bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.bucket {
		c := h.bucket[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	max := time.Duration(h.maxNS.Load())
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			est := interpUS(i, rank-(cum-c), c)
			if est > max {
				return max
			}
			return est
		}
	}
	return max
}

// interpUS places the pos-th (1-based) of n observations inside bucket i by
// linear interpolation between the bucket's bounds.
func interpUS(i int, pos, n int64) time.Duration {
	var lower int64
	if i > 0 {
		lower = BucketBound(i - 1)
	}
	upper := BucketBound(i)
	us := float64(lower) + float64(upper-lower)*float64(pos)/float64(n)
	return time.Duration(us * float64(time.Microsecond))
}

// Merge folds other's observations into h. Because all histograms share the
// same fixed bucket boundaries the merge is exact, not approximate: bucket
// counts, count and sum add, max takes the larger. h may have concurrent
// writers; other should be quiescent (a finished shard or a snapshot source).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	if n := other.count.Load(); n != 0 {
		h.count.Add(n)
	}
	if ns := other.sumNS.Load(); ns != 0 {
		h.sumNS.Add(ns)
	}
	oMax := other.maxNS.Load()
	for {
		cur := h.maxNS.Load()
		if oMax <= cur || h.maxNS.CompareAndSwap(cur, oMax) {
			break
		}
	}
	for i := range h.bucket {
		if n := other.bucket[i].Load(); n != 0 {
			h.bucket[i].Add(n)
		}
	}
}

// BucketCount is one non-empty histogram bucket in an export.
type BucketCount struct {
	LeUS  int64 `json:"le_us"` // upper bound of the bucket, microseconds
	Count int64 `json:"count"`
}

// HistStat is the exported summary of a histogram.
type HistStat struct {
	Count   int64         `json:"count"`
	SumMS   float64       `json:"sum_ms"`
	AvgMS   float64       `json:"avg_ms"`
	MaxMS   float64       `json:"max_ms"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile is Histogram.Quantile over an exported snapshot, in milliseconds.
// The rank is computed from the bucket counts (not the Count field) so the
// scan always terminates inside a bucket, mirroring the live estimator.
func (s HistStat) Quantile(q float64) float64 {
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			lower := 0.0
			if b.LeUS > 1 {
				lower = float64(b.LeUS) / 2
			}
			pos := rank - (cum - b.Count)
			us := lower + (float64(b.LeUS)-lower)*float64(pos)/float64(b.Count)
			ms := us / 1e3
			if ms > s.MaxMS && s.MaxMS > 0 {
				return s.MaxMS
			}
			return ms
		}
	}
	return s.MaxMS
}

// Snapshot exports the histogram's current state. Count is derived from the
// bucket counts so the export is internally consistent (the cumulative +Inf
// bucket of a Prometheus exposition must equal the count) even when writers
// race the read.
func (h *Histogram) Snapshot() HistStat {
	if h == nil {
		return HistStat{}
	}
	s := HistStat{
		SumMS: float64(h.sumNS.Load()) / 1e6,
		MaxMS: float64(h.maxNS.Load()) / 1e6,
	}
	for i := range h.bucket {
		if n := h.bucket[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{LeUS: BucketBound(i), Count: n})
			s.Count += n
		}
	}
	if s.Count > 0 {
		s.AvgMS = s.SumMS / float64(s.Count)
	}
	return s
}

// Registry is a named, race-safe collection of counters, gauges and
// histograms. Lookups get-or-create, so instrumentation sites never need
// registration boilerplate.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddAll folds a map of external counts (for example a DRC engine snapshot)
// into the registry's counters.
func (r *Registry) AddAll(counts map[string]int64) {
	if r == nil {
		return
	}
	for name, v := range counts {
		r.Counter(name).Add(v)
	}
}

// Metrics is a point-in-time export of a registry.
type Metrics struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot exports every metric in the registry.
func (r *Registry) Snapshot() Metrics {
	m := Metrics{Counters: map[string]int64{}}
	if r == nil {
		return m
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		m.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		if m.Gauges == nil {
			m.Gauges = map[string]float64{}
		}
		m.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		if m.Histograms == nil {
			m.Histograms = map[string]HistStat{}
		}
		m.Histograms[name] = h.Snapshot()
	}
	return m
}

// WriteText renders the metrics sorted by name.
func (m Metrics) WriteText(w io.Writer) {
	for _, name := range sortedKeys(m.Counters) {
		fmt.Fprintf(w, "%-40s %d\n", name, m.Counters[name])
	}
	for _, name := range sortedKeys(m.Gauges) {
		fmt.Fprintf(w, "%-40s %.3f\n", name, m.Gauges[name])
	}
	for _, name := range sortedKeys(m.Histograms) {
		h := m.Histograms[name]
		fmt.Fprintf(w, "%-40s n=%d sum=%.2fms avg=%.3fms max=%.3fms\n",
			name, h.Count, h.SumMS, h.AvgMS, h.MaxMS)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
