package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of a timing tree. Two usage styles combine freely:
//
//   - stopwatch: sp := parent.Start("phase"); ...; sp.End() records one
//     timed interval as a new child of parent;
//   - aggregated: parent.AddTime("item", d) (or sp := parent.Agg("item")
//     plus sp.AddDur(d)) folds many intervals into a single child keyed by
//     name, accumulating duration and count.
//
// Children may be created and accumulated concurrently: the parent's mutex
// guards the child list, and duration/count are atomic. A nil *Span makes
// every method a no-op, so instrumentation threads through call chains
// without enabled-checks.
type Span struct {
	Name string

	start time.Time
	durNS atomic.Int64
	count atomic.Int64

	mu       sync.Mutex
	children []*Span
	index    map[string]*Span
}

// Trace is a tree of spans; Root is started at creation.
type Trace struct{ Root *Span }

// NewTrace creates a trace whose root span is running.
func NewTrace(name string) *Trace {
	return &Trace{Root: &Span{Name: name, start: time.Now()}}
}

// Start creates and starts a new child span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops a span started with Start, accumulating the elapsed interval,
// and returns it. A span may be started and ended repeatedly.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.durNS.Add(d.Nanoseconds())
	s.count.Add(1)
	return d
}

// Agg returns the child span with the given name, creating it if needed.
// Unlike Start it does not start a stopwatch: accumulate with AddDur or
// AddTime. Safe for concurrent callers.
func (s *Span) Agg(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.index[name]
	if c == nil {
		if s.index == nil {
			s.index = make(map[string]*Span)
		}
		c = &Span{Name: name}
		s.index[name] = c
		s.children = append(s.children, c)
	}
	return c
}

// AddDur accumulates one measured interval into the span.
func (s *Span) AddDur(d time.Duration) {
	if s == nil {
		return
	}
	s.durNS.Add(d.Nanoseconds())
	s.count.Add(1)
}

// AddTime accumulates one interval into the named aggregated child.
func (s *Span) AddTime(name string, d time.Duration) { s.Agg(name).AddDur(d) }

// Duration returns the accumulated duration.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.durNS.Load())
}

// Count returns the number of accumulated intervals.
func (s *Span) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// SpanExport is the JSON shape of a span subtree.
type SpanExport struct {
	Name     string        `json:"name"`
	DurMS    float64       `json:"dur_ms"`
	Count    int64         `json:"count"`
	Children []*SpanExport `json:"children,omitempty"`
}

// Export snapshots the subtree rooted at s (children in creation order).
func (s *Span) Export() *SpanExport {
	if s == nil {
		return nil
	}
	e := &SpanExport{
		Name:  s.Name,
		DurMS: float64(s.durNS.Load()) / 1e6,
		Count: s.count.Load(),
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		e.Children = append(e.Children, c.Export())
	}
	return e
}

// WriteJSON writes the subtree as indented JSON.
func (s *Span) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// WriteText renders the subtree as an indented table: name, accumulated
// duration, share of the parent's duration, and interval count when > 1.
func (s *Span) WriteText(w io.Writer) {
	e := s.Export()
	if e == nil {
		return
	}
	writeSpanText(w, e, 0, e.DurMS)
}

func writeSpanText(w io.Writer, e *SpanExport, depth int, parentMS float64) {
	pct := ""
	if depth > 0 && parentMS > 0 {
		pct = fmt.Sprintf("%5.1f%%", 100*e.DurMS/parentMS)
	}
	count := ""
	if e.Count > 1 {
		count = fmt.Sprintf("x%d", e.Count)
	}
	fmt.Fprintf(w, "%-48s %10.3fms %7s %s\n",
		strings.Repeat("  ", depth)+e.Name, e.DurMS, pct, count)
	for _, c := range e.Children {
		writeSpanText(w, c, depth+1, e.DurMS)
	}
}
