package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Observer bundles a metric registry and a span trace for one run. A nil
// *Observer is fully usable: every accessor returns a nil component whose
// methods are no-ops.
type Observer struct {
	Name     string
	Registry *Registry
	Trace    *Trace
}

// NewObserver creates an observer with a fresh registry and a running root
// span.
func NewObserver(name string) *Observer {
	return &Observer{Name: name, Registry: NewRegistry(), Trace: NewTrace(name)}
}

// Ensure returns o, or a fresh observer when o is nil — for code that wants
// spans to measure time even when the caller did not request observability.
func Ensure(o *Observer, name string) *Observer {
	if o != nil {
		return o
	}
	return NewObserver(name)
}

// Root returns the trace's root span (nil-safe).
func (o *Observer) Root() *Span {
	if o == nil || o.Trace == nil {
		return nil
	}
	return o.Trace.Root
}

// Reg returns the registry (nil-safe).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Report is the combined JSON document: registry metrics plus the span tree.
type Report struct {
	Name string `json:"name"`
	Metrics
	Trace *SpanExport `json:"trace,omitempty"`
}

// Report snapshots the observer.
func (o *Observer) Report() Report {
	if o == nil {
		return Report{Metrics: Metrics{Counters: map[string]int64{}}}
	}
	return Report{Name: o.Name, Metrics: o.Registry.Snapshot(), Trace: o.Root().Export()}
}

// WriteJSON writes the combined report as indented JSON.
func (o *Observer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.Report())
}

// WriteText renders the metrics followed by the span tree.
func (o *Observer) WriteText(w io.Writer) {
	if o == nil {
		return
	}
	fmt.Fprintf(w, "--- metrics (%s) ---\n", o.Name)
	o.Registry.Snapshot().WriteText(w)
	fmt.Fprintln(w, "--- spans ---")
	o.Root().WriteText(w)
}

// Flags is the shared observability CLI surface of the command-line tools.
type Flags struct {
	Metrics    string
	TracePath  string
	CPUProfile string
	MemProfile string

	// Out receives the -metrics report; defaults to os.Stdout.
	Out io.Writer
}

// RegisterFlags registers the observability flags on fs and returns the
// struct they populate.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "off", "emit run metrics and span tree: off, text or json")
	fs.StringVar(&f.TracePath, "trace", "", "write the span timing tree as JSON to this file")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file")
	return f
}

func (f *Flags) enabled() bool {
	return f.Metrics == "text" || f.Metrics == "json" || f.TracePath != ""
}

// Start validates the flags, begins CPU profiling if requested, and returns
// the observer to instrument with — nil when neither metrics nor a trace
// were requested, which turns all hooks into no-ops — plus a finish func
// that ends the root span, emits the requested outputs and stops profiling.
func (f *Flags) Start(name string) (*Observer, func() error, error) {
	switch f.Metrics {
	case "", "off", "text", "json":
	default:
		return nil, nil, fmt.Errorf("obs: unknown -metrics mode %q (want off, text or json)", f.Metrics)
	}
	var cpuFile *os.File
	if f.CPUProfile != "" {
		var err error
		if cpuFile, err = os.Create(f.CPUProfile); err != nil {
			return nil, nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, nil, err
		}
	}
	var o *Observer
	if f.enabled() {
		o = NewObserver(name)
	}
	finish := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if o != nil {
			o.Root().End()
			out := f.Out
			if out == nil {
				out = os.Stdout
			}
			switch f.Metrics {
			case "text":
				o.WriteText(out)
			case "json":
				keep(o.WriteJSON(out))
			}
			if f.TracePath != "" {
				tf, err := os.Create(f.TracePath)
				if err == nil {
					keep(o.Root().WriteJSON(tf))
					keep(tf.Close())
				} else {
					keep(err)
				}
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err == nil {
				runtime.GC()
				keep(pprof.WriteHeapProfile(mf))
				keep(mf.Close())
			} else {
				keep(err)
			}
		}
		return firstErr
	}
	return o, finish, nil
}
