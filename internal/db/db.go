// Package db is the design database: cell masters with pin geometry,
// placed instances, nets, rows, routing track patterns and the die — the
// LEF/DEF world model that pin access analysis runs against.
package db

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// PinDir is a LEF pin direction.
type PinDir uint8

const (
	DirInput PinDir = iota
	DirOutput
	DirInout
)

var pinDirNames = [...]string{"INPUT", "OUTPUT", "INOUT"}

func (d PinDir) String() string { return pinDirNames[d] }

// PinUse is a LEF pin use class.
type PinUse uint8

const (
	UseSignal PinUse = iota
	UsePower
	UseGround
	UseClock
)

var pinUseNames = [...]string{"SIGNAL", "POWER", "GROUND", "CLOCK"}

func (u PinUse) String() string { return pinUseNames[u] }

// Shape is a rectangle on a metal layer (identified by 1-based metal number).
type Shape struct {
	Layer int
	Rect  geom.Rect
}

// MPin is a pin on a cell master, in master-local coordinates.
type MPin struct {
	Name   string
	Dir    PinDir
	Use    PinUse
	Shapes []Shape
}

// BBox returns the bounding box of all pin shapes (zero Rect for empty pins).
func (p *MPin) BBox() geom.Rect {
	if len(p.Shapes) == 0 {
		return geom.Rect{}
	}
	out := p.Shapes[0].Rect
	for _, s := range p.Shapes[1:] {
		out = out.UnionBBox(s.Rect)
	}
	return out
}

// ShapesOnLayer returns the pin rectangles on the given metal number.
func (p *MPin) ShapesOnLayer(layer int) []geom.Rect {
	var out []geom.Rect
	for _, s := range p.Shapes {
		if s.Layer == layer {
			out = append(out, s.Rect)
		}
	}
	return out
}

// MasterClass distinguishes standard cells from macros.
type MasterClass uint8

const (
	ClassCore MasterClass = iota
	ClassBlock
)

func (c MasterClass) String() string {
	if c == ClassBlock {
		return "BLOCK"
	}
	return "CORE"
}

// Master is a cell master (LEF MACRO).
type Master struct {
	Name  string
	Class MasterClass
	Size  geom.Point // width (X) and height (Y)
	Pins  []*MPin
	Obs   []Shape // obstruction shapes, master-local
}

// PinByName returns the named pin, or nil.
func (m *Master) PinByName(name string) *MPin {
	for _, p := range m.Pins {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// SignalPins returns the pins with SIGNAL or CLOCK use, in declaration order.
func (m *Master) SignalPins() []*MPin {
	var out []*MPin
	for _, p := range m.Pins {
		if p.Use == UseSignal || p.Use == UseClock {
			out = append(out, p)
		}
	}
	return out
}

// Instance is a placed cell (DEF COMPONENT).
type Instance struct {
	Name   string
	Master *Master
	Pos    geom.Point // placed lower-left corner
	Orient geom.Orient
	ID     int // dense index assigned by the design
}

// Transform returns the master-local to design-coordinate transform.
func (i *Instance) Transform() geom.Transform {
	return geom.Transform{Offset: i.Pos, Orient: i.Orient, Size: i.Master.Size}
}

// BBox returns the placed bounding box.
func (i *Instance) BBox() geom.Rect { return i.Transform().BBox() }

// PinShapes returns the design-coordinate rectangles of the given master pin.
func (i *Instance) PinShapes(p *MPin) []Shape {
	tr := i.Transform()
	out := make([]Shape, len(p.Shapes))
	for k, s := range p.Shapes {
		out[k] = Shape{Layer: s.Layer, Rect: tr.ApplyRect(s.Rect)}
	}
	return out
}

// ObsShapes returns the design-coordinate obstruction rectangles.
func (i *Instance) ObsShapes() []Shape {
	tr := i.Transform()
	out := make([]Shape, len(i.Master.Obs))
	for k, s := range i.Master.Obs {
		out[k] = Shape{Layer: s.Layer, Rect: tr.ApplyRect(s.Rect)}
	}
	return out
}

// Term is a net terminal: an (instance, pin) pair.
type Term struct {
	Inst *Instance
	Pin  *MPin
}

// IOPin is a design-level pin (DEF PINS entry) with a fixed shape.
type IOPin struct {
	Name  string
	Dir   PinDir
	Shape Shape // design coordinates
}

// Net connects instance terminals and IO pins.
type Net struct {
	Name   string
	Terms  []Term
	IOPins []*IOPin
}

// NumTerms returns the total terminal count including IO pins.
func (n *Net) NumTerms() int { return len(n.Terms) + len(n.IOPins) }

// TrackPattern is a DEF TRACKS statement: Num tracks for wires on metal Layer,
// at coordinates Start, Start+Step, ... The pattern is a set of X coordinates
// when WireDir is vertical, and Y coordinates when horizontal.
type TrackPattern struct {
	Layer   int // metal number the tracks route
	WireDir tech.Dir
	Start   int64
	Num     int
	Step    int64
}

// Last returns the coordinate of the final track.
func (tp TrackPattern) Last() int64 { return tp.Start + int64(tp.Num-1)*tp.Step }

// IsOnTrack reports whether coord coincides with one of the pattern's tracks.
func (tp TrackPattern) IsOnTrack(coord int64) bool {
	if tp.Num <= 0 || coord < tp.Start || coord > tp.Last() {
		return false
	}
	return (coord-tp.Start)%tp.Step == 0
}

// CoordsIn returns the track coordinates within [lo, hi].
func (tp TrackPattern) CoordsIn(lo, hi int64) []int64 {
	if tp.Num <= 0 || tp.Step <= 0 {
		return nil
	}
	var out []int64
	first := tp.Start
	if lo > first {
		k := (lo - tp.Start + tp.Step - 1) / tp.Step
		first = tp.Start + k*tp.Step
	}
	for c := first; c <= hi && c <= tp.Last(); c += tp.Step {
		out = append(out, c)
	}
	return out
}

// Offset returns the phase of coord relative to the pattern, in [0, Step).
// Instances whose placements differ in phase see different on-track/off-track
// conditions — this is the third component of the unique-instance signature.
func (tp TrackPattern) Offset(coord int64) int64 {
	if tp.Step <= 0 {
		return 0
	}
	off := (coord - tp.Start) % tp.Step
	if off < 0 {
		off += tp.Step
	}
	return off
}

// Row is a placement row of sites (DEF ROW).
type Row struct {
	Name     string
	Origin   geom.Point
	NumSites int
	SiteW    int64
	SiteH    int64
	Orient   geom.Orient // N or FS
}

// BBox returns the row extent.
func (r *Row) BBox() geom.Rect {
	return geom.R(r.Origin.X, r.Origin.Y, r.Origin.X+int64(r.NumSites)*r.SiteW, r.Origin.Y+r.SiteH)
}

// Design is a placed design plus its technology.
type Design struct {
	Name      string
	Tech      *tech.Technology
	Die       geom.Rect
	Tracks    []TrackPattern
	Rows      []*Row
	Masters   []*Master
	Instances []*Instance
	Nets      []*Net
	IOPins    []*IOPin

	// SigMaxLayer bounds the track patterns that join the unique-instance
	// signature to layers <= SigMaxLayer. Zero means every pattern counts
	// (the paper's definition); benchmark designs set it to the highest
	// pin-access-relevant layer so that upper-metal track phases, which can
	// never influence pin access, do not fragment the classes.
	SigMaxLayer int

	masterByName map[string]*Master
	instByName   map[string]*Instance
	// nextID is the next instance ID to hand out. IDs are never reused, so
	// a delete followed by an insert cannot alias result maps keyed by ID
	// (incremental ECO flows depend on this).
	nextID int
}

// NewDesign creates an empty design on the given technology.
func NewDesign(name string, t *tech.Technology) *Design {
	return &Design{
		Name:         name,
		Tech:         t,
		masterByName: make(map[string]*Master),
		instByName:   make(map[string]*Instance),
	}
}

// AddMaster registers a master; duplicate names are an error.
func (d *Design) AddMaster(m *Master) error {
	if _, dup := d.masterByName[m.Name]; dup {
		return fmt.Errorf("db: duplicate master %q", m.Name)
	}
	d.Masters = append(d.Masters, m)
	d.masterByName[m.Name] = m
	return nil
}

// MasterByName returns the named master, or nil.
func (d *Design) MasterByName(name string) *Master { return d.masterByName[name] }

// AddInstance places an instance; duplicate names are an error. The assigned
// ID is monotonically increasing and never reused, so ascending ID order is
// design (insertion) order even after removals.
func (d *Design) AddInstance(inst *Instance) error {
	if _, dup := d.instByName[inst.Name]; dup {
		return fmt.Errorf("db: duplicate instance %q", inst.Name)
	}
	if d.nextID < len(d.Instances) {
		// Designs built before removals existed (or literals that filled
		// Instances directly) start with nextID zero; catch up so fresh IDs
		// stay unique.
		d.nextID = len(d.Instances)
	}
	inst.ID = d.nextID
	d.nextID++
	d.Instances = append(d.Instances, inst)
	d.instByName[inst.Name] = inst
	return nil
}

// RemoveInstance deletes a placed instance and every net terminal attached to
// it, preserving the order of the remaining instances. It reports whether the
// instance existed. Nets keep their identity (an emptied net stays in Nets so
// net indexes remain stable for incremental flows).
func (d *Design) RemoveInstance(name string) bool {
	inst := d.instByName[name]
	if inst == nil {
		return false
	}
	delete(d.instByName, name)
	for i, it := range d.Instances {
		if it == inst {
			d.Instances = append(d.Instances[:i], d.Instances[i+1:]...)
			break
		}
	}
	for _, net := range d.Nets {
		kept := net.Terms[:0]
		for _, t := range net.Terms {
			if t.Inst != inst {
				kept = append(kept, t)
			}
		}
		net.Terms = kept
	}
	return true
}

// InstByName returns the named instance, or nil.
func (d *Design) InstByName(name string) *Instance { return d.instByName[name] }

// NumStdCells returns the number of CORE-class instances.
func (d *Design) NumStdCells() int {
	n := 0
	for _, i := range d.Instances {
		if i.Master.Class == ClassCore {
			n++
		}
	}
	return n
}

// NumMacros returns the number of BLOCK-class instances.
func (d *Design) NumMacros() int {
	n := 0
	for _, i := range d.Instances {
		if i.Master.Class == ClassBlock {
			n++
		}
	}
	return n
}

// TracksFor returns the track patterns carrying wires for the given metal
// number, split by wire direction.
func (d *Design) TracksFor(layer int) (preferred, nonPreferred []TrackPattern) {
	l := d.Tech.Metal(layer)
	if l == nil {
		return nil, nil
	}
	for _, tp := range d.Tracks {
		if tp.Layer != layer {
			continue
		}
		if tp.WireDir == l.Dir {
			preferred = append(preferred, tp)
		} else {
			nonPreferred = append(nonPreferred, tp)
		}
	}
	return preferred, nonPreferred
}

// SignalTermCount returns the total number of instance pins attached to nets
// — the "Total #Pins" column of Table III.
func (d *Design) SignalTermCount() int {
	n := 0
	for _, net := range d.Nets {
		n += len(net.Terms)
	}
	return n
}

// Cluster is a maximal run of abutting instances in one row (no empty site
// between neighbors), the unit of Step-3 access pattern selection.
type Cluster struct {
	Insts []*Instance // sorted by x
}

// Clusters groups CORE instances into row clusters. Instances are bucketed by
// the y coordinate and orientation of their row, sorted by x, and split
// wherever a gap (empty site space) appears between neighbors.
func (d *Design) Clusters() []Cluster {
	type rowKey struct {
		y      int64
		orient geom.Orient
	}
	buckets := make(map[rowKey][]*Instance)
	var keys []rowKey
	for _, inst := range d.Instances {
		if inst.Master.Class != ClassCore {
			continue
		}
		k := rowKey{inst.Pos.Y, inst.Orient}
		if _, seen := buckets[k]; !seen {
			keys = append(keys, k)
		}
		buckets[k] = append(buckets[k], inst)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].y != keys[b].y {
			return keys[a].y < keys[b].y
		}
		return keys[a].orient < keys[b].orient
	})
	var out []Cluster
	for _, k := range keys {
		insts := buckets[k]
		sort.Slice(insts, func(a, b int) bool { return insts[a].Pos.X < insts[b].Pos.X })
		cur := Cluster{}
		var prevEnd int64
		for _, inst := range insts {
			if len(cur.Insts) > 0 && inst.Pos.X > prevEnd {
				out = append(out, cur)
				cur = Cluster{}
			}
			cur.Insts = append(cur.Insts, inst)
			prevEnd = inst.BBox().XH
		}
		if len(cur.Insts) > 0 {
			out = append(out, cur)
		}
	}
	return out
}
