package db

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// testMaster builds a 2-site-wide core cell with two M1 pins and an M1 obs.
func testMaster(name string, t *tech.Technology) *Master {
	w := 2 * t.SiteWidth
	h := t.SiteHeight
	mw := t.Metal(1).Width
	return &Master{
		Name:  name,
		Class: ClassCore,
		Size:  geom.Pt(w, h),
		Pins: []*MPin{
			{Name: "A", Dir: DirInput, Use: UseSignal,
				Shapes: []Shape{{Layer: 1, Rect: geom.R(50, 200, 50+mw, h-200)}}},
			{Name: "Z", Dir: DirOutput, Use: UseSignal,
				Shapes: []Shape{{Layer: 1, Rect: geom.R(w-50-mw, 200, w-50, h-200)}}},
			{Name: "VDD", Dir: DirInout, Use: UsePower,
				Shapes: []Shape{{Layer: 1, Rect: geom.R(0, h-mw, w, h)}}},
		},
		Obs: []Shape{{Layer: 1, Rect: geom.R(w/2-mw, 300, w/2+mw, 600)}},
	}
}

func newTestDesign(t *testing.T) (*Design, *Master) {
	t.Helper()
	tt := tech.N45()
	d := NewDesign("unit", tt)
	d.Die = geom.R(0, 0, 20000, 14000)
	m := testMaster("AND2X1", tt)
	if err := d.AddMaster(m); err != nil {
		t.Fatal(err)
	}
	// Tracks: M1 horizontal wires (y tracks), M2 vertical wires (x tracks).
	d.Tracks = []TrackPattern{
		{Layer: 1, WireDir: tech.Horizontal, Start: 70, Num: 100, Step: 140},
		{Layer: 2, WireDir: tech.Vertical, Start: 70, Num: 142, Step: 140},
	}
	return d, m
}

func TestAddAndLookup(t *testing.T) {
	d, m := newTestDesign(t)
	if err := d.AddMaster(&Master{Name: m.Name}); err == nil {
		t.Fatal("duplicate master must fail")
	}
	inst := &Instance{Name: "u1", Master: m, Pos: geom.Pt(380, 0), Orient: geom.OrientN}
	if err := d.AddInstance(inst); err != nil {
		t.Fatal(err)
	}
	if err := d.AddInstance(&Instance{Name: "u1", Master: m}); err == nil {
		t.Fatal("duplicate instance must fail")
	}
	if d.InstByName("u1") != inst {
		t.Fatal("InstByName broken")
	}
	if d.MasterByName("AND2X1") != m {
		t.Fatal("MasterByName broken")
	}
	if d.MasterByName("nope") != nil || d.InstByName("nope") != nil {
		t.Fatal("missing lookups must return nil")
	}
	if inst.ID != 0 {
		t.Fatalf("first instance ID = %d, want 0", inst.ID)
	}
}

func TestPinShapesTransform(t *testing.T) {
	d, m := newTestDesign(t)
	_ = d
	instN := &Instance{Name: "n", Master: m, Pos: geom.Pt(1000, 2000), Orient: geom.OrientN}
	instFS := &Instance{Name: "fs", Master: m, Pos: geom.Pt(1000, 2000), Orient: geom.OrientFS}
	pin := m.PinByName("A")

	sN := instN.PinShapes(pin)
	if len(sN) != 1 || sN[0].Layer != 1 {
		t.Fatalf("PinShapes = %+v", sN)
	}
	wantN := geom.R(1050, 2200, 1120, 2000+m.Size.Y-200)
	if sN[0].Rect != wantN {
		t.Fatalf("N pin shape = %v, want %v", sN[0].Rect, wantN)
	}
	sFS := instFS.PinShapes(pin)
	// FS mirrors about x: y span flips within the cell height.
	wantFS := geom.R(1050, 2000+200, 1120, 2000+m.Size.Y-200)
	if sFS[0].Rect != wantFS {
		t.Fatalf("FS pin shape = %v, want %v", sFS[0].Rect, wantFS)
	}
	if len(instN.ObsShapes()) != 1 {
		t.Fatal("ObsShapes missing")
	}
	if !instN.BBox().ContainsRect(sN[0].Rect) {
		t.Fatal("pin shape escapes instance bbox")
	}
}

func TestMasterHelpers(t *testing.T) {
	_, m := newTestDesign(t)
	if got := len(m.SignalPins()); got != 2 {
		t.Fatalf("SignalPins = %d, want 2 (power excluded)", got)
	}
	if m.PinByName("VDD") == nil || m.PinByName("missing") != nil {
		t.Fatal("PinByName broken")
	}
	a := m.PinByName("A")
	bb := a.BBox()
	if bb.Empty() {
		t.Fatal("pin bbox empty")
	}
	if got := len(a.ShapesOnLayer(1)); got != 1 {
		t.Fatalf("ShapesOnLayer(1) = %d", got)
	}
	if got := len(a.ShapesOnLayer(2)); got != 0 {
		t.Fatalf("ShapesOnLayer(2) = %d", got)
	}
	if (&MPin{}).BBox() != (geom.Rect{}) {
		t.Fatal("empty pin bbox must be zero")
	}
}

func TestTrackPattern(t *testing.T) {
	tp := TrackPattern{Layer: 1, WireDir: tech.Horizontal, Start: 70, Num: 10, Step: 140}
	if tp.Last() != 70+9*140 {
		t.Fatalf("Last = %d", tp.Last())
	}
	if !tp.IsOnTrack(70) || !tp.IsOnTrack(210) || !tp.IsOnTrack(tp.Last()) {
		t.Fatal("IsOnTrack false negatives")
	}
	if tp.IsOnTrack(140) || tp.IsOnTrack(69) || tp.IsOnTrack(tp.Last()+140) {
		t.Fatal("IsOnTrack false positives")
	}
	got := tp.CoordsIn(200, 500)
	want := []int64{210, 350, 490}
	if len(got) != len(want) {
		t.Fatalf("CoordsIn = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CoordsIn = %v, want %v", got, want)
		}
	}
	if tp.Offset(70) != 0 || tp.Offset(75) != 5 || tp.Offset(65) != 135 {
		t.Fatalf("Offset broken: %d %d %d", tp.Offset(70), tp.Offset(75), tp.Offset(65))
	}
	if got := tp.CoordsIn(10000, 20000); got != nil {
		t.Fatalf("CoordsIn beyond pattern = %v", got)
	}
}

func TestUniqueInstances(t *testing.T) {
	d, m := newTestDesign(t)
	// Same master+orient, x positions differing by a multiple of the vertical
	// track step (140) and same y phase: same unique instance.
	add := func(name string, x, y int64, o geom.Orient) {
		t.Helper()
		if err := d.AddInstance(&Instance{Name: name, Master: m, Pos: geom.Pt(x, y), Orient: o}); err != nil {
			t.Fatal(err)
		}
	}
	add("a", 0, 0, geom.OrientN)
	add("b", 1400, 0, geom.OrientN)  // x phase 1400%140=0: same class as a
	add("c", 1450, 0, geom.OrientN)  // x phase 50: new class (Fig. 1 situation)
	add("d", 1400, 0, geom.OrientFS) // orientation differs: new class
	add("e", 2800, 70, geom.OrientN) // y phase 0 differs from a's 70: new class

	us := d.UniqueInstances()
	if len(us) != 4 {
		for _, u := range us {
			t.Logf("class %s: %d members", u.Signature(), len(u.Insts))
		}
		t.Fatalf("got %d unique instances, want 4", len(us))
	}
	// Find a+b's class.
	var ab *UniqueInstance
	for _, u := range us {
		for _, i := range u.Insts {
			if i.Name == "a" {
				ab = u
			}
		}
	}
	if ab == nil || len(ab.Insts) != 2 {
		t.Fatalf("a/b class wrong: %+v", ab)
	}
	if ab.Pivot().Name != "a" {
		t.Fatalf("pivot = %s, want a (design order)", ab.Pivot().Name)
	}
	if ab.Signature() == "" {
		t.Fatal("empty signature")
	}
}

func TestUniqueInstancesDeterministic(t *testing.T) {
	build := func() []*UniqueInstance {
		d, m := newTestDesign(t)
		for i, x := range []int64{0, 1450, 1400, 2850, 190} {
			name := string(rune('a' + i))
			if err := d.AddInstance(&Instance{Name: name, Master: m, Pos: geom.Pt(x, 0), Orient: geom.OrientN}); err != nil {
				t.Fatal(err)
			}
		}
		return d.UniqueInstances()
	}
	u1, u2 := build(), build()
	if len(u1) != len(u2) {
		t.Fatal("nondeterministic class count")
	}
	for i := range u1 {
		if u1[i].Signature() != u2[i].Signature() {
			t.Fatalf("class %d order differs: %s vs %s", i, u1[i].Signature(), u2[i].Signature())
		}
	}
}

func TestClusters(t *testing.T) {
	d, m := newTestDesign(t)
	w := m.Size.X // 380
	add := func(name string, x, y int64, o geom.Orient) {
		t.Helper()
		if err := d.AddInstance(&Instance{Name: name, Master: m, Pos: geom.Pt(x, y), Orient: o}); err != nil {
			t.Fatal(err)
		}
	}
	// Row y=0: three abutting, then a gap, then one more.
	add("a", 0, 0, geom.OrientN)
	add("b", w, 0, geom.OrientN)
	add("c", 2*w, 0, geom.OrientN)
	add("d", 4*w, 0, geom.OrientN)
	// Row y=1400: two abutting.
	add("e", 0, 1400, geom.OrientFS)
	add("f", w, 1400, geom.OrientFS)
	// A macro must be excluded.
	blk := &Master{Name: "RAM", Class: ClassBlock, Size: geom.Pt(5000, 5000)}
	if err := d.AddMaster(blk); err != nil {
		t.Fatal(err)
	}
	add2 := &Instance{Name: "ram0", Master: blk, Pos: geom.Pt(8000, 0), Orient: geom.OrientN}
	if err := d.AddInstance(add2); err != nil {
		t.Fatal(err)
	}

	cs := d.Clusters()
	if len(cs) != 3 {
		t.Fatalf("got %d clusters, want 3", len(cs))
	}
	if len(cs[0].Insts) != 3 || cs[0].Insts[0].Name != "a" || cs[0].Insts[2].Name != "c" {
		t.Fatalf("cluster 0 = %v", names(cs[0]))
	}
	if len(cs[1].Insts) != 1 || cs[1].Insts[0].Name != "d" {
		t.Fatalf("cluster 1 = %v", names(cs[1]))
	}
	if len(cs[2].Insts) != 2 || cs[2].Insts[0].Name != "e" {
		t.Fatalf("cluster 2 = %v", names(cs[2]))
	}
}

func names(c Cluster) []string {
	out := make([]string, len(c.Insts))
	for i, inst := range c.Insts {
		out[i] = inst.Name
	}
	return out
}

func TestDesignCounts(t *testing.T) {
	d, m := newTestDesign(t)
	if err := d.AddInstance(&Instance{Name: "x", Master: m, Pos: geom.Pt(0, 0), Orient: geom.OrientN}); err != nil {
		t.Fatal(err)
	}
	blk := &Master{Name: "MACRO1", Class: ClassBlock, Size: geom.Pt(100, 100)}
	if err := d.AddMaster(blk); err != nil {
		t.Fatal(err)
	}
	if err := d.AddInstance(&Instance{Name: "y", Master: blk, Pos: geom.Pt(5000, 5000), Orient: geom.OrientN}); err != nil {
		t.Fatal(err)
	}
	if d.NumStdCells() != 1 || d.NumMacros() != 1 {
		t.Fatalf("counts: std %d macro %d", d.NumStdCells(), d.NumMacros())
	}
	inst := d.InstByName("x")
	net := &Net{Name: "n1", Terms: []Term{{Inst: inst, Pin: m.PinByName("A")}, {Inst: inst, Pin: m.PinByName("Z")}}}
	d.Nets = append(d.Nets, net)
	if d.SignalTermCount() != 2 {
		t.Fatalf("SignalTermCount = %d", d.SignalTermCount())
	}
	if net.NumTerms() != 2 {
		t.Fatalf("NumTerms = %d", net.NumTerms())
	}
}

func TestTracksFor(t *testing.T) {
	d, _ := newTestDesign(t)
	pref, nonPref := d.TracksFor(1)
	if len(pref) != 1 || pref[0].WireDir != tech.Horizontal {
		t.Fatalf("preferred tracks for M1 = %+v", pref)
	}
	if len(nonPref) != 0 {
		t.Fatalf("non-preferred tracks for M1 = %+v", nonPref)
	}
	pref2, _ := d.TracksFor(2)
	if len(pref2) != 1 || pref2[0].WireDir != tech.Vertical {
		t.Fatalf("preferred tracks for M2 = %+v", pref2)
	}
	if p, n := d.TracksFor(99); p != nil || n != nil {
		t.Fatal("TracksFor(99) must be empty")
	}
}

func TestRowBBox(t *testing.T) {
	r := &Row{Origin: geom.Pt(100, 200), NumSites: 10, SiteW: 190, SiteH: 1400}
	want := geom.R(100, 200, 100+1900, 1600)
	if r.BBox() != want {
		t.Fatalf("Row.BBox = %v, want %v", r.BBox(), want)
	}
}

func TestValidateClean(t *testing.T) {
	d, m := newTestDesign(t)
	i0 := &Instance{Name: "v0", Master: m, Pos: geom.Pt(0, 0), Orient: geom.OrientN}
	i1 := &Instance{Name: "v1", Master: m, Pos: geom.Pt(m.Size.X, 0), Orient: geom.OrientFS}
	for _, i := range []*Instance{i0, i1} {
		if err := d.AddInstance(i); err != nil {
			t.Fatal(err)
		}
	}
	d.Nets = []*Net{{Name: "n", Terms: []Term{
		{Inst: i0, Pin: m.PinByName("Z")}, {Inst: i1, Pin: m.PinByName("A")},
	}}}
	if ps := d.Validate(0); len(ps) != 0 {
		t.Fatalf("clean design reported %v", ps)
	}
}

func TestValidateProblems(t *testing.T) {
	d, m := newTestDesign(t)
	i0 := &Instance{Name: "v0", Master: m, Pos: geom.Pt(0, 0), Orient: geom.OrientN}
	i1 := &Instance{Name: "v1", Master: m, Pos: geom.Pt(100, 0), Orient: geom.OrientN}    // overlaps i0
	i2 := &Instance{Name: "v2", Master: m, Pos: geom.Pt(5000, 137), Orient: geom.OrientN} // off row grid
	i3 := &Instance{Name: "v3", Master: m, Pos: geom.Pt(30000, 0), Orient: geom.OrientN}  // off die
	for _, i := range []*Instance{i0, i1, i2, i3} {
		if err := d.AddInstance(i); err != nil {
			t.Fatal(err)
		}
	}
	d.Nets = []*Net{
		{Name: "single", Terms: []Term{{Inst: i0, Pin: m.PinByName("A")}}},
		{Name: "dup", Terms: []Term{
			{Inst: i0, Pin: m.PinByName("Z")}, {Inst: i0, Pin: m.PinByName("Z")},
		}},
		{Name: "foreign", Terms: []Term{
			{Inst: i0, Pin: m.PinByName("A")},
			{Inst: i1, Pin: &MPin{Name: "GHOST"}},
		}},
	}
	ps := d.Validate(0)
	kinds := map[string]int{}
	for _, p := range ps {
		kinds[p.Kind]++
	}
	for _, want := range []string{"OverlappingInstances", "OffRowGrid", "OffDie", "EmptyNet", "DuplicateTerm", "DanglingTerm"} {
		if kinds[want] == 0 {
			t.Errorf("missing problem kind %s in %v", want, kinds)
		}
	}
	// The limit caps output.
	if got := d.Validate(2); len(got) != 2 {
		t.Errorf("limit ignored: %d problems", len(got))
	}
}
