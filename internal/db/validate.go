package db

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Problem is one design-consistency finding from Design.Validate.
type Problem struct {
	Kind string // OverlappingInstances, OffDie, OffRowGrid, DanglingTerm, EmptyNet, DuplicateTerm
	Note string
}

func (p Problem) String() string { return p.Kind + ": " + p.Note }

// Validate checks the placed design's structural consistency (not design
// rules — that is the drc package's job): instances inside the die and free
// of mutual overlap, core cells on the row grid, nets with at least two
// terminals and no dangling or duplicate terminals. At most limit problems
// are collected (0 means no cap).
func (d *Design) Validate(limit int) []Problem {
	var out []Problem
	add := func(kind, format string, args ...interface{}) bool {
		out = append(out, Problem{Kind: kind, Note: fmt.Sprintf(format, args...)})
		return limit > 0 && len(out) >= limit
	}

	// Instance overlap via a sweep over x-sorted bboxes.
	type placed struct {
		inst *Instance
		bbox geom.Rect
	}
	insts := make([]placed, 0, len(d.Instances))
	for _, inst := range d.Instances {
		insts = append(insts, placed{inst, inst.BBox()})
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].bbox.XL < insts[j].bbox.XL })
	for i, a := range insts {
		if !d.Die.Empty() && !d.Die.ContainsRect(a.bbox) {
			if add("OffDie", "instance %s bbox %v escapes die %v", a.inst.Name, a.bbox, d.Die) {
				return out
			}
		}
		if a.inst.Master.Class == ClassCore && d.Tech != nil && d.Tech.SiteHeight > 0 {
			if a.inst.Pos.Y%d.Tech.SiteHeight != 0 {
				if add("OffRowGrid", "instance %s at y=%d (site height %d)", a.inst.Name, a.inst.Pos.Y, d.Tech.SiteHeight) {
					return out
				}
			}
		}
		for j := i + 1; j < len(insts); j++ {
			b := insts[j]
			if b.bbox.XL >= a.bbox.XH {
				break
			}
			if a.bbox.Overlaps(b.bbox) {
				if add("OverlappingInstances", "%s overlaps %s", a.inst.Name, b.inst.Name) {
					return out
				}
			}
		}
	}

	// Net sanity.
	for _, net := range d.Nets {
		if net.NumTerms() < 2 {
			if add("EmptyNet", "net %s has %d terminals", net.Name, net.NumTerms()) {
				return out
			}
		}
		seen := map[string]bool{}
		for _, t := range net.Terms {
			if t.Inst == nil || t.Pin == nil {
				if add("DanglingTerm", "net %s has a nil terminal", net.Name) {
					return out
				}
				continue
			}
			if t.Inst.Master.PinByName(t.Pin.Name) != t.Pin {
				if add("DanglingTerm", "net %s: pin %s not on master %s", net.Name, t.Pin.Name, t.Inst.Master.Name) {
					return out
				}
			}
			key := t.Inst.Name + "/" + t.Pin.Name
			if seen[key] {
				if add("DuplicateTerm", "net %s lists %s twice", net.Name, key) {
					return out
				}
			}
			seen[key] = true
		}
	}
	return out
}
