package db

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/tech"
)

// UniqueInstance is an equivalence class of instances sharing a signature:
// the same cell master, the same orientation and the same offsets to every
// track pattern in the design (Section II-A of the paper). All members see
// identical on-track/off-track conditions, so intra-cell pin access analysis
// runs once per unique instance and its result applies to every member.
type UniqueInstance struct {
	Master  *Master
	Orient  geom.Orient
	Offsets []int64     // per design track pattern, phase of the pivot's origin
	Insts   []*Instance // members, in design order
}

// Pivot returns the representative member whose coordinates the analysis uses.
func (u *UniqueInstance) Pivot() *Instance { return u.Insts[0] }

// Signature renders the unique-instance key as a readable string.
func (u *UniqueInstance) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", u.Master.Name, u.Orient)
	for _, off := range u.Offsets {
		fmt.Fprintf(&b, "/%d", off)
	}
	return b.String()
}

// instanceOffsets computes the phase of an instance's placement against every
// track pattern: the x phase for vertical-wire patterns (tracks are x
// coordinates) and the y phase for horizontal-wire patterns.
func instanceOffsets(d *Design, inst *Instance) []int64 {
	out := make([]int64, 0, len(d.Tracks))
	for _, tp := range d.Tracks {
		if d.SigMaxLayer > 0 && tp.Layer > d.SigMaxLayer {
			out = append(out, 0) // pattern excluded from the signature
			continue
		}
		coord := inst.Pos.Y // horizontal wires: tracks are y coordinates
		if tp.WireDir == tech.Vertical {
			coord = inst.Pos.X
		}
		out = append(out, tp.Offset(coord))
	}
	return out
}

// OffsetsOf returns the per-track-pattern placement phases of an instance —
// the offsets component of its unique-instance signature under its current
// placement. Incremental flows use it to build a class for a placement phase
// the full partition has never seen.
func (d *Design) OffsetsOf(inst *Instance) []int64 { return instanceOffsets(d, inst) }

// UniqueInstances partitions the design's CORE and BLOCK instances into
// unique-instance classes. The result is deterministic: classes are sorted by
// master name, then orientation, then offsets; members keep design order.
func (d *Design) UniqueInstances() []*UniqueInstance {
	type key struct {
		master string
		orient geom.Orient
		offs   string
	}
	classes := make(map[key]*UniqueInstance)
	var order []key
	for _, inst := range d.Instances {
		offs := instanceOffsets(d, inst)
		var sb strings.Builder
		for _, o := range offs {
			fmt.Fprintf(&sb, "%d,", o)
		}
		k := key{inst.Master.Name, inst.Orient, sb.String()}
		u, seen := classes[k]
		if !seen {
			u = &UniqueInstance{Master: inst.Master, Orient: inst.Orient, Offsets: offs}
			classes[k] = u
			order = append(order, k)
		}
		u.Insts = append(u.Insts, inst)
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		if ka.master != kb.master {
			return ka.master < kb.master
		}
		if ka.orient != kb.orient {
			return ka.orient < kb.orient
		}
		return ka.offs < kb.offs
	})
	out := make([]*UniqueInstance, len(order))
	for i, k := range order {
		out[i] = classes[k]
	}
	return out
}

// InstanceSignature computes the unique-instance signature an instance would
// belong to under its current placement, in the same format as
// UniqueInstance.Signature. Incremental flows use it to rebind a moved
// instance to an existing class without re-partitioning the whole design.
func (d *Design) InstanceSignature(inst *Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", inst.Master.Name, inst.Orient)
	for _, off := range instanceOffsets(d, inst) {
		fmt.Fprintf(&b, "/%d", off)
	}
	return b.String()
}
