package drc

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func rules(vs []Violation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String())
		b.WriteString("; ")
	}
	return b.String()
}

func TestQueryAddRemove(t *testing.T) {
	e := NewEngine(tech.N45())
	id1 := e.AddMetal(1, geom.R(0, 0, 100, 70), 1, KindPin, "p1")
	id2 := e.AddMetal(1, geom.R(500, 0, 600, 70), 2, KindPin, "p2")
	e.AddMetal(2, geom.R(0, 0, 100, 70), 3, KindWire, "w")
	if got := e.QueryMetal(1, geom.R(-10, -10, 1000, 100)); len(got) != 2 {
		t.Fatalf("QueryMetal(M1) = %v, want 2 ids", got)
	}
	if got := e.QueryMetal(1, geom.R(200, 0, 300, 70)); len(got) != 0 {
		t.Fatalf("empty window returned %v", got)
	}
	if got := e.QueryMetal(2, geom.R(0, 0, 10, 10)); len(got) != 1 {
		t.Fatalf("QueryMetal(M2) = %v", got)
	}
	// Touching window counts (closed-set semantics).
	if got := e.QueryMetal(1, geom.R(100, 0, 200, 70)); len(got) != 1 || got[0] != id1 {
		t.Fatalf("touch query = %v", got)
	}
	e.Remove(id1)
	if got := e.QueryMetal(1, geom.R(-10, -10, 1000, 100)); len(got) != 1 || got[0] != id2 {
		t.Fatalf("after remove: %v", got)
	}
	if e.NumObjs() != 2 {
		t.Fatalf("NumObjs = %d, want 2", e.NumObjs())
	}
	e.Remove(id1) // double remove is a no-op
	e.Remove(-1)  // invalid id is a no-op
	if e.Obj(id2).Tag != "p2" {
		t.Fatal("Obj accessor broken")
	}
}

func TestQuerySpansBins(t *testing.T) {
	e := NewEngine(tech.N45())
	// A shape far larger than one bin must be found from any corner.
	e.AddMetal(1, geom.R(0, 0, 100000, 70), 1, KindWire, "long")
	if got := e.QueryMetal(1, geom.R(99000, 0, 99010, 10)); len(got) != 1 {
		t.Fatalf("far-end query = %v", got)
	}
	// Negative coordinates bin correctly.
	e.AddMetal(1, geom.R(-5000, -5000, -4900, -4930), 2, KindWire, "neg")
	if got := e.QueryMetal(1, geom.R(-5001, -5001, -4899, -4929)); len(got) != 1 {
		t.Fatalf("negative-coordinate query = %v", got)
	}
}

func TestSpacingAndShort(t *testing.T) {
	e := NewEngine(tech.N45())
	e.AddMetal(1, geom.R(0, 0, 1000, 70), 1, KindPin, "a")

	// 60 apart (< 70 required): violation.
	vs := e.CheckMetalRect(1, geom.R(0, 130, 1000, 200), 2)
	if !hasRule(vs, "Spacing") {
		t.Fatalf("60nm gap must violate: %s", rules(vs))
	}
	// Exactly 70 apart: legal.
	vs = e.CheckMetalRect(1, geom.R(0, 140, 1000, 210), 2)
	if len(vs) != 0 {
		t.Fatalf("70nm gap must be clean: %s", rules(vs))
	}
	// Overlap with another net: short.
	vs = e.CheckMetalRect(1, geom.R(500, 30, 600, 100), 2)
	if !hasRule(vs, "Short") {
		t.Fatalf("overlap must short: %s", rules(vs))
	}
	// Same net: no checks.
	vs = e.CheckMetalRect(1, geom.R(500, 30, 600, 100), 1)
	if len(vs) != 0 {
		t.Fatalf("same-net overlap must be clean: %s", rules(vs))
	}
	// Touching different net: spacing violation (distance 0 < 70).
	vs = e.CheckMetalRect(1, geom.R(0, 70, 1000, 140), 2)
	if !hasRule(vs, "Spacing") {
		t.Fatalf("abutting different nets must violate: %s", rules(vs))
	}
}

func TestWideMetalSpacing(t *testing.T) {
	e := NewEngine(tech.N45())
	// Wide shape (width 280 >= 3*70=210) with long PRL: requires 140.
	e.AddMetal(1, geom.R(0, 0, 2000, 280), 1, KindPin, "wide")
	vs := e.CheckMetalRect(1, geom.R(0, 380, 2000, 450), 2) // gap 100
	if !hasRule(vs, "Spacing") {
		t.Fatalf("wide-metal 100nm gap must violate (need 140): %s", rules(vs))
	}
	vs = e.CheckMetalRect(1, geom.R(0, 420, 2000, 490), 2) // gap 140
	if len(vs) != 0 {
		t.Fatalf("wide-metal 140nm gap must be clean: %s", rules(vs))
	}
	// Diagonal neighbor (no PRL): default spacing applies even for wide metal.
	vs = e.CheckMetalRect(1, geom.R(2080, 360, 2400, 700), 2) // dx=80,dy=80; 80²+80²=12800 > 70²
	if len(vs) != 0 {
		t.Fatalf("diagonal 80/80 must be clean at default spacing: %s", rules(vs))
	}
}

func TestNoNetConflicts(t *testing.T) {
	e := NewEngine(tech.N45())
	e.AddMetal(1, geom.R(0, 0, 1000, 70), NoNet, KindObs, "rail")
	// A net shape abutting an obstruction violates spacing.
	vs := e.CheckMetalRect(1, geom.R(0, 100, 500, 170), 4)
	if !hasRule(vs, "Spacing") {
		t.Fatalf("net near obstruction must violate: %s", rules(vs))
	}
	// Another NoNet shape overlapping the rail is exempt (blockages don't
	// conflict with each other).
	vs = e.CheckMetalRect(1, geom.R(500, 0, 1500, 70), NoNet)
	if len(vs) != 0 {
		t.Fatalf("NoNet vs NoNet must be exempt: %s", rules(vs))
	}
}

func TestCutSpacing(t *testing.T) {
	e := NewEngine(tech.N45())
	cut := geom.R(0, 0, 70, 70)
	e.AddCut(1, cut, 1, "v1")
	// 70 apart < 80: violation, regardless of same net.
	vs := e.CheckCutRect(1, geom.R(140, 0, 210, 70), 1)
	if !hasRule(vs, "CutSpacing") {
		t.Fatalf("70nm cut gap must violate: %s", rules(vs))
	}
	// 80 apart: clean.
	vs = e.CheckCutRect(1, geom.R(150, 0, 220, 70), 1)
	if len(vs) != 0 {
		t.Fatalf("80nm cut gap must be clean: %s", rules(vs))
	}
	// Identical coincident cut: treated as the same via.
	vs = e.CheckCutRect(1, cut, 1)
	if len(vs) != 0 {
		t.Fatalf("coincident cut must be exempt: %s", rules(vs))
	}
	// Partial overlap: short.
	vs = e.CheckCutRect(1, geom.R(35, 0, 105, 70), 2)
	if !hasRule(vs, "Short") {
		t.Fatalf("overlapping cuts must short: %s", rules(vs))
	}
}

func TestMinWidth(t *testing.T) {
	l := tech.N45().Metal(1)
	if vs := CheckMinWidth(l, geom.R(0, 0, 1000, 60)); !hasRule(vs, "MinWidth") {
		t.Fatal("60nm wire must violate min width 70")
	}
	if vs := CheckMinWidth(l, geom.R(0, 0, 1000, 70)); len(vs) != 0 {
		t.Fatal("70nm wire must be clean")
	}
}

func TestMinArea(t *testing.T) {
	l := tech.N45().Metal(1) // area 19600
	if vs := CheckMinAreaUnion(l, []geom.Rect{geom.R(0, 0, 140, 70)}); !hasRule(vs, "MinArea") {
		t.Fatal("140x70 patch must violate min area")
	}
	if vs := CheckMinAreaUnion(l, []geom.Rect{geom.R(0, 0, 280, 70)}); len(vs) != 0 {
		t.Fatal("280x70 wire must be clean")
	}
	// Two components: each checked separately.
	vs := CheckMinAreaUnion(l, []geom.Rect{geom.R(0, 0, 280, 70), geom.R(1000, 0, 1140, 70)})
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1 (only the small component)", len(vs))
	}
}

// TestMinStepFig3 reproduces the Figure 3 scenarios: a horizontal M1 pin bar
// with an up-via enclosure at four y coordinates. On-track and half-track
// placements step off the pin and violate min step; shape-center and
// enclosure-boundary placements are clean.
func TestMinStepFig3(t *testing.T) {
	tt := tech.N45()
	l := tt.Metal(1)
	v := tt.ViaByName("VIA1_H")      // bottom enclosure 140x70
	bar := geom.R(0, 400, 1000, 470) // pin bar, center y=435

	place := func(y int64) []Violation {
		bot := v.BotEnc.Shift(geom.Pt(500, y))
		return CheckMinStepUnion(l, connectedTo(bot, []geom.Rect{bar}))
	}
	// (a) "on-track" at y=490: enclosure (455..525) steps 55nm above the bar.
	if vs := place(490); !hasRule(vs, "MinStep") {
		t.Errorf("on-track misaligned enclosure must violate min step: %s", rules(vs))
	}
	// (b) "half-track" at y=420: steps 15nm below the bar.
	if vs := place(420); !hasRule(vs, "MinStep") {
		t.Errorf("half-track misaligned enclosure must violate min step: %s", rules(vs))
	}
	// (c) shape-center at y=435: enclosure coincides with the bar height.
	if vs := place(435); len(vs) != 0 {
		t.Errorf("shape-center enclosure must be clean: %s", rules(vs))
	}
	// (d) enclosure-boundary on a taller bar: enclosure top aligns with pin top.
	tall := geom.R(0, 400, 1000, 540)
	bot := v.BotEnc.Shift(geom.Pt(500, 540-35))
	if vs := CheckMinStepUnion(l, connectedTo(bot, []geom.Rect{tall})); len(vs) != 0 {
		t.Errorf("enclosure-boundary placement must be clean: %s", rules(vs))
	}
}

func TestMinStepRunCounting(t *testing.T) {
	l := &tech.RoutingLayer{Name: "T", Num: 1, Dir: tech.Horizontal, Pitch: 100, Width: 50, MinWid: 50,
		Step: tech.MinStepRule{MinStepLength: 50, MaxEdges: 2}}
	// A 40nm jog creates two short edges (40 vertical, 40 horizontal?) — build
	// an L with a 40x40 notch: run of 2 short edges is allowed with MaxEdges=2.
	rects := []geom.Rect{geom.R(0, 0, 200, 50), geom.R(0, 0, 40, 90)}
	vs := CheckMinStepUnion(l, rects)
	if len(vs) != 0 {
		t.Fatalf("run of 2 short edges with MaxEdges=2 must pass: %s", rules(vs))
	}
	l.Step.MaxEdges = 1
	vs = CheckMinStepUnion(l, rects)
	if !hasRule(vs, "MinStep") {
		t.Fatalf("run of 2 short edges with MaxEdges=1 must violate: %s", rules(vs))
	}
	// A contour entirely below min step.
	vs = CheckMinStepUnion(l, []geom.Rect{geom.R(0, 0, 30, 30)})
	if !hasRule(vs, "MinStep") {
		t.Fatal("tiny square must violate min step")
	}
}

func TestEOL(t *testing.T) {
	e := NewEngine(tech.N45()) // EOL: width 90, space 90, within 25
	// Blocker directly beyond the right end of a 70-wide wire, 80 away.
	e.AddMetal(1, geom.R(1080, 0, 1400, 70), 2, KindPin, "blocker")
	wire := geom.R(0, 0, 1000, 70)
	vs := e.CheckEOLRect(1, wire, 1)
	if !hasRule(vs, "EOL") {
		t.Fatalf("80nm ahead of EOL edge must violate (needs 90): %s", rules(vs))
	}
	// 90 away: clean.
	e2 := NewEngine(tech.N45())
	e2.AddMetal(1, geom.R(1090, 0, 1400, 70), 2, KindPin, "blocker")
	if vs := e2.CheckEOLRect(1, wire, 1); len(vs) != 0 {
		t.Fatalf("90nm ahead of EOL edge must be clean: %s", rules(vs))
	}
	// Wide wire end (>= 90): rule does not apply.
	e3 := NewEngine(tech.N45())
	e3.AddMetal(1, geom.R(1080, 0, 1400, 140), 2, KindPin, "blocker")
	if vs := e3.CheckEOLRect(1, geom.R(0, 0, 1000, 140), 1); len(vs) != 0 {
		t.Fatalf("wide wire end must not trigger EOL: %s", rules(vs))
	}
	// Vertical wire: windows above/below.
	e4 := NewEngine(tech.N45())
	e4.AddMetal(1, geom.R(0, 1080, 70, 1400), 2, KindPin, "blocker")
	if vs := e4.CheckEOLRect(1, geom.R(0, 0, 70, 1000), 1); !hasRule(vs, "EOL") {
		t.Fatalf("vertical EOL must violate: %s", rules(vs))
	}
}

func TestCheckViaCleanAndConflict(t *testing.T) {
	tt := tech.N45()
	e := NewEngine(tt)
	bar := geom.R(0, 400, 1000, 470)
	e.AddMetal(1, bar, 1, KindPin, "pinA")
	v := tt.ViaByName("VIA1_H")

	// Clean drop at the bar center.
	vs := e.CheckVia(v, geom.Pt(500, 435), 1, []geom.Rect{bar})
	if len(vs) != 0 {
		t.Fatalf("centered via must be clean: %s", rules(vs))
	}
	// A different-net bar 60nm above: bottom-enclosure spacing violation.
	e.AddMetal(1, geom.R(0, 530, 1000, 600), 2, KindPin, "pinB")
	vs = e.CheckVia(v, geom.Pt(500, 435), 1, []geom.Rect{bar})
	if !hasRule(vs, "Spacing") {
		t.Fatalf("via next to foreign pin must violate spacing: %s", rules(vs))
	}
	// Misaligned drop: min step.
	e2 := NewEngine(tt)
	e2.AddMetal(1, bar, 1, KindPin, "pinA")
	vs = e2.CheckVia(v, geom.Pt(500, 460), 1, []geom.Rect{bar})
	if !hasRule(vs, "MinStep") {
		t.Fatalf("misaligned via must violate min step: %s", rules(vs))
	}
	// Neighboring cut too close: cut spacing.
	e3 := NewEngine(tt)
	e3.AddMetal(1, bar, 1, KindPin, "pinA")
	e3.AddCut(1, geom.R(570, 400, 640, 470), 7, "otherVia")
	vs = e3.CheckVia(v, geom.Pt(500, 435), 1, []geom.Rect{bar})
	if !hasRule(vs, "CutSpacing") {
		t.Fatalf("via near foreign cut must violate cut spacing: %s", rules(vs))
	}
}

func TestCheckAll(t *testing.T) {
	tt := tech.N45()
	e := NewEngine(tt)
	e.AddMetal(1, geom.R(0, 0, 1000, 70), 1, KindWire, "w1")
	e.AddMetal(1, geom.R(0, 130, 1000, 200), 2, KindWire, "w2") // 60 gap: violation
	e.AddMetal(1, geom.R(0, 400, 1000, 470), 3, KindWire, "w3") // isolated
	e.AddCut(1, geom.R(0, 1000, 70, 1070), 1, "c1")
	e.AddCut(1, geom.R(100, 1000, 170, 1070), 2, "c2") // 30 gap: violation
	vs := e.CheckAll()
	if !hasRule(vs, "Spacing") || !hasRule(vs, "CutSpacing") {
		t.Fatalf("CheckAll missed violations: %s", rules(vs))
	}
	if len(vs) != 2 {
		t.Fatalf("CheckAll found %d violations, want 2 (pairs deduped): %s", len(vs), rules(vs))
	}
	// Shorts between overlapping different-net wires.
	e.AddMetal(1, geom.R(500, 0, 1500, 70), 4, KindWire, "w4")
	vs = e.CheckAll()
	if !hasRule(vs, "Short") {
		t.Fatalf("CheckAll missed short: %s", rules(vs))
	}
}

func TestDedup(t *testing.T) {
	v := Violation{Rule: "Spacing", Layer: "M1", Where: geom.R(0, 0, 10, 10), Note: "x"}
	w := v
	w.Note = "different note"
	got := Dedup([]Violation{v, w, {Rule: "Short", Layer: "M1", Where: geom.R(0, 0, 10, 10)}})
	if len(got) != 2 {
		t.Fatalf("Dedup kept %d, want 2", len(got))
	}
}

func TestConnectedTo(t *testing.T) {
	seed := geom.R(0, 0, 10, 10)
	rects := []geom.Rect{
		geom.R(10, 0, 20, 10),  // touches seed
		geom.R(20, 0, 30, 10),  // touches previous (transitive)
		geom.R(50, 50, 60, 60), // disconnected
	}
	got := connectedTo(seed, rects)
	if len(got) != 3 {
		t.Fatalf("connectedTo = %v, want seed+2", got)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 4, 1}, {-1, 4, -1}, {-4, 4, -1}, {-5, 4, -2}, {0, 4, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCornerSpacing(t *testing.T) {
	tt := tech.N45() // M1: eligible width 210, corner spacing 105
	e := NewEngine(tt)
	// A wide shape (280 wide/tall region): diagonal neighbors need 105.
	e.AddMetal(1, geom.R(0, 0, 1000, 280), 1, KindPin, "wide")
	// Diagonal at (80,80): plain spacing 70 would pass (80²+80² > 70²), but
	// corner spacing 105 fails (12800 < 11025? no: 105² = 11025 < 12800).
	// Use (70,70): 9800 < 11025 -> corner violation, but plain 70 passes
	// exactly at... 70²+70²=9800 ≥ 4900. So this pair is legal by PRL rules
	// and illegal by corner spacing.
	vs := e.CheckMetalRect(1, geom.R(1070, 350, 1400, 700), 2)
	if !hasRule(vs, "CornerSpacing") {
		t.Fatalf("diagonal 70/70 near wide metal must violate corner spacing: %s", rules(vs))
	}
	// Far diagonal (80,80): 12800 >= 11025: clean.
	vs = e.CheckMetalRect(1, geom.R(1080, 360, 1400, 700), 2)
	if len(vs) != 0 {
		t.Fatalf("diagonal 80/80 must be clean: %s", rules(vs))
	}
	// Narrow shapes keep the plain rule: two 70-wide shapes diagonal at 70/70.
	e2 := NewEngine(tt)
	e2.AddMetal(1, geom.R(0, 0, 1000, 70), 1, KindPin, "narrow")
	vs = e2.CheckMetalRect(1, geom.R(1070, 140, 1400, 210), 2)
	if len(vs) != 0 {
		t.Fatalf("narrow diagonal 70/70 must be clean: %s", rules(vs))
	}
}

func TestMinEnclosedArea(t *testing.T) {
	l := tech.N45().Metal(1) // EncArea = 9800
	frame := func(hole int64) []geom.Rect {
		// A frame with a hole of hole x hole.
		o := hole + 140
		return []geom.Rect{
			geom.R(0, 0, o, 70), geom.R(0, o-70, o, o), geom.R(0, 0, 70, o), geom.R(o-70, 0, o, o),
		}
	}
	// 70x70 hole = 4900 < 9800: violation.
	if vs := CheckMinEnclosedAreaUnion(l, frame(70)); !hasRule(vs, "MinEnclosedArea") {
		t.Fatalf("small hole must violate: %s", rules(vs))
	}
	// 140x140 hole = 19600 >= 9800: clean.
	if vs := CheckMinEnclosedAreaUnion(l, frame(140)); len(vs) != 0 {
		t.Fatalf("large hole must be clean: %s", rules(vs))
	}
	// No hole: clean.
	if vs := CheckMinEnclosedAreaUnion(l, []geom.Rect{geom.R(0, 0, 500, 500)}); len(vs) != 0 {
		t.Fatalf("solid shape must be clean: %s", rules(vs))
	}
}

func TestCheckAllParallelMatchesSequential(t *testing.T) {
	tt := tech.N45()
	e := NewEngine(tt)
	// A mix of legal and violating shapes.
	for i := int64(0); i < 40; i++ {
		y := i * 130 // alternates legal (140) and tight gaps
		e.AddMetal(1, geom.R(0, y, 900, y+70), int(i)+1, KindWire, "")
	}
	for i := int64(0); i < 10; i++ {
		e.AddCut(1, geom.R(i*140, 6000, i*140+70, 6070), int(i)+1, "")
	}
	seq := e.CheckAllParallel(1)
	for _, workers := range []int{2, 4, 7} {
		par := e.CheckAllParallel(workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d violations != %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Key() != seq[i].Key() {
				t.Fatalf("workers=%d: violation %d differs: %s vs %s", workers, i, par[i].Key(), seq[i].Key())
			}
		}
	}
	if len(seq) == 0 {
		t.Fatal("test design produced no violations; the comparison is vacuous")
	}
}

func TestCheckViaDoubleCut(t *testing.T) {
	tt := tech.N45()
	if err := tech.AddDoubleCutVias(tt); err != nil {
		t.Fatal(err)
	}
	v := tt.ViaByName("VIA1_D") // two cuts stacked along M2 (vertical)
	if v == nil || len(v.Cuts) != 2 {
		t.Fatalf("VIA1_D = %+v", v)
	}
	e := NewEngine(tt)
	// A pad tall and wide enough to swallow the double-cut enclosure.
	pad := v.BotRect(geom.Pt(500, 500))
	e.AddMetal(1, pad, 1, KindPin, "pad")
	vs := e.CheckVia(v, geom.Pt(500, 500), 1, []geom.Rect{pad})
	if len(vs) != 0 {
		t.Fatalf("double-cut via on its own pad must be clean: %s", rules(vs))
	}
	// A foreign single cut near ONE of the two cuts trips cut spacing.
	e.AddCut(1, v.Cuts[1].Shift(geom.Pt(500, 500)).Shift(geom.Pt(140, 0)), 2, "foreign")
	vs = e.CheckVia(v, geom.Pt(500, 500), 1, []geom.Rect{pad})
	if !hasRule(vs, "CutSpacing") {
		t.Fatalf("foreign cut near the upper cut must violate: %s", rules(vs))
	}
}
