package drc

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// TestCountersTrackChecks: the engine's counters record query volume and
// per-kind check counts as checks run.
func TestCountersTrackChecks(t *testing.T) {
	e := NewEngine(tech.N45())
	e.AddMetal(1, geom.R(0, 0, 1000, 70), 1, KindPin, "a")

	vs := e.CheckMetalRect(1, geom.R(0, 130, 1000, 200), 2) // spacing violation
	if len(vs) == 0 {
		t.Fatal("expected a spacing violation")
	}
	e.CheckMetalRect(1, geom.R(0, 140, 1000, 210), 2) // clean

	c := e.Counters
	if got := c.MetalChecks.Load(); got != 2 {
		t.Fatalf("MetalChecks = %d, want 2", got)
	}
	if c.Queries.Load() == 0 {
		t.Fatal("Queries not counted")
	}
	if got := c.Violations.Load(); got != int64(len(vs)) {
		t.Fatalf("Violations = %d, want %d", got, len(vs))
	}

	snap := c.Snapshot()
	if snap["drc.check.metal"] != 2 {
		t.Fatalf("snapshot drc.check.metal = %d, want 2", snap["drc.check.metal"])
	}
	if snap["drc.query.count"] != c.Queries.Load() {
		t.Fatal("snapshot disagrees with counter")
	}
	// Every family is present in the snapshot even when zero, so downstream
	// registries always expose the full name set.
	for _, name := range []string{
		"drc.query.count", "drc.query.objects", "drc.check.metal", "drc.check.cut",
		"drc.check.eol", "drc.check.minstep", "drc.check.pair",
		"drc.via.attempted", "drc.via.clean", "drc.violations",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %q", name)
		}
	}
}

// TestCountersSharedAcrossEngines: several engines can publish into one
// Counters instance (the analyzer shares one across its per-cell and global
// engines).
func TestCountersSharedAcrossEngines(t *testing.T) {
	shared := &Counters{}
	for i := 0; i < 3; i++ {
		e := NewEngine(tech.N45())
		e.Counters = shared
		e.AddMetal(1, geom.R(0, 0, 1000, 70), 1, KindPin, "a")
		e.CheckMetalRect(1, geom.R(0, 130, 1000, 200), 2)
	}
	if got := shared.MetalChecks.Load(); got != 3 {
		t.Fatalf("shared MetalChecks = %d, want 3", got)
	}
}
