package drc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// TestQueryCtxSurvivesMidContextAdd pins the stamp-growth regression: a
// QueryCtx created before later Adds used to carry a too-short stamp buffer,
// and the first query touching a new object panicked with an index out of
// range. The context must instead pick new shapes up lazily.
func TestQueryCtxSurvivesMidContextAdd(t *testing.T) {
	e := NewEngine(tech.N45())
	e.AddMetal(1, geom.R(0, 0, 100, 70), 1, KindPin, "p0")
	qc := e.NewQueryCtx()
	if got := e.QueryMetalCtx(1, geom.R(0, 0, 50, 50), qc); len(got) != 1 {
		t.Fatalf("warm-up query = %v, want 1 id", got)
	}
	// Grow the engine well past the context's original stamp length.
	var late []int
	for i := 0; i < 50; i++ {
		late = append(late, e.AddMetal(1, geom.R(int64(i)*1000+500, 0, int64(i)*1000+600, 70), i+2, KindWire, ""))
	}
	got := e.QueryMetalCtx(1, geom.R(500, 0, 50600, 70), qc)
	if len(got) != len(late) {
		t.Fatalf("query after mid-context Add = %d ids, want %d", len(got), len(late))
	}
	// And the cut side of the same contract.
	cid := e.AddCut(1, geom.R(0, 0, 65, 65), 1, "")
	if got := e.QueryCutCtx(1, geom.R(0, 0, 10, 10), qc); len(got) != 1 || got[0] != cid {
		t.Fatalf("cut query after mid-context Add = %v, want [%d]", got, cid)
	}
}

// TestNewEngineDegenerateTech pins the zero-pitch regression: a technology
// whose metal-1 pitch is zero (or that has no metals at all) must not give
// the spatial index a zero bin size, which divided by zero on first insert.
func TestNewEngineDegenerateTech(t *testing.T) {
	zeroPitch := &tech.Technology{
		Name:   "degenerate",
		Metals: []*tech.RoutingLayer{{Name: "M1", Num: 1}},
	}
	e := NewEngine(zeroPitch)
	id := e.AddMetal(1, geom.R(0, 0, 100, 70), 1, KindPin, "p")
	if got := e.QueryMetal(1, geom.R(50, 50, 60, 60)); len(got) != 1 || got[0] != id {
		t.Fatalf("query on zero-pitch tech = %v, want [%d]", got, id)
	}

	empty := &tech.Technology{Name: "empty"}
	e2 := NewEngine(empty)
	if got := e2.QueryMetal(1, geom.R(0, 0, 10, 10)); got != nil {
		t.Fatalf("query on metal-less tech = %v, want nil", got)
	}
}

// TestDedupKeyEquivalence pins the struct-key Dedup against the string Key()
// contract: identical survivors in identical order, notes ignored.
func TestDedupKeyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rulesList := []string{"Short", "Spacing", "EOL", "MinStep", "CutSpacing"}
	layers := []string{"M1", "M2", "V1"}
	var vs []Violation
	for i := 0; i < 200; i++ {
		vs = append(vs, Violation{
			Rule:  rulesList[rng.Intn(len(rulesList))],
			Layer: layers[rng.Intn(len(layers))],
			Where: geom.R(int64(rng.Intn(3)), int64(rng.Intn(3)), int64(4+rng.Intn(3)), int64(4+rng.Intn(3))),
			Note:  fmt.Sprintf("note %d", i), // unique: must not affect the key
		})
	}
	// Reference dedup on the wire-format string key.
	seen := make(map[string]bool)
	var want []Violation
	for _, v := range vs {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			want = append(want, v)
		}
	}
	got := Dedup(vs)
	if len(got) != len(want) {
		t.Fatalf("Dedup kept %d, string-key reference kept %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("survivor %d: got %+v, want %+v (order must be preserved)", i, got[i], want[i])
		}
	}
}

// TestBinIndexMultiBinRemove covers multi-bin membership end to end: a shape
// spanning many grid cells is found through any of them and disappears from
// all of them on removal. A manually duplicated index entry checks that the
// query's stamp dedup tolerates duplicate IDs in a cell list.
func TestBinIndexMultiBinRemove(t *testing.T) {
	e := NewEngine(tech.N45())
	wide := geom.R(-50000, -3000, 150000, 3000) // spans many bins incl. negatives
	id := e.AddMetal(1, wide, 1, KindWire, "wide")
	windows := []geom.Rect{
		geom.R(-49000, 0, -48000, 10),
		geom.R(0, 0, 10, 10),
		geom.R(149000, 0, 149500, 10),
	}
	for _, w := range windows {
		if got := e.QueryMetal(1, w); len(got) != 1 || got[0] != id {
			t.Fatalf("window %v = %v, want [%d]", w, got, id)
		}
	}
	// Duplicate insertion (as a stand-in for any index path that lists one id
	// twice in a cell): queries must still return the id once.
	e.metal[1].insert(int32(id), wide)
	if got := e.QueryMetal(1, geom.R(0, 0, 10, 10)); len(got) != 1 {
		t.Fatalf("duplicate index entry leaked: %v", got)
	}
	e.Remove(id)
	for _, w := range windows {
		if got := e.QueryMetal(1, w); len(got) != 0 {
			t.Fatalf("window %v after remove = %v, want empty", w, got)
		}
	}
}

// TestCompactEquivalence checks that folding the overflow map into the dense
// grid is invisible to queries: identical results before and after Compact,
// with churn (removals) and post-compact inserts mixed in.
func TestCompactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := NewEngine(tech.N45())
	var ids []int
	for i := 0; i < 300; i++ {
		x, y := int64(rng.Intn(200000)), int64(rng.Intn(200000))
		ids = append(ids, e.AddMetal(1, geom.R(x, y, x+int64(100+rng.Intn(5000)), y+140), i, KindWire, ""))
	}
	for i := 0; i < 80; i++ {
		e.Remove(ids[rng.Intn(len(ids))])
	}
	windows := make([]geom.Rect, 40)
	for i := range windows {
		x, y := int64(rng.Intn(200000)), int64(rng.Intn(200000))
		windows[i] = geom.R(x, y, x+9000, y+9000)
	}
	snap := func() [][]int {
		out := make([][]int, len(windows))
		for i, w := range windows {
			out[i] = append([]int(nil), e.QueryMetal(1, w)...)
		}
		return out
	}
	before := snap()
	e.Compact()
	after := snap()
	for i := range windows {
		if fmt.Sprint(before[i]) != fmt.Sprint(after[i]) {
			t.Fatalf("window %v: pre-compact %v != post-compact %v", windows[i], before[i], after[i])
		}
	}
	// Post-compact inserts land in the overflow map and must be visible.
	nid := e.AddMetal(1, geom.R(500000, 500000, 500100, 500140), 999, KindWire, "")
	if got := e.QueryMetal(1, geom.R(500000, 500000, 500050, 500050)); len(got) != 1 || got[0] != nid {
		t.Fatalf("post-compact insert invisible: %v", got)
	}

	// Wildly spread extents must fall back to map-only mode and still answer.
	e2 := NewEngine(tech.N45())
	far := []int{
		e2.AddMetal(1, geom.R(0, 0, 100, 70), 1, KindWire, ""),
		e2.AddMetal(1, geom.R(9e8, 9e8, 9e8+100, 9e8+70), 2, KindWire, ""),
	}
	e2.Compact()
	if !e2.metal[1].mapOnly {
		t.Fatal("spread extents should compact to map-only mode")
	}
	if got := e2.QueryMetal(1, geom.R(0, 0, 10, 10)); len(got) != 1 || got[0] != far[0] {
		t.Fatalf("map-only query near origin = %v", got)
	}
	if got := e2.QueryMetal(1, geom.R(9e8, 9e8, 9e8+10, 9e8+10)); len(got) != 1 || got[0] != far[1] {
		t.Fatalf("map-only query far out = %v", got)
	}
}

// TestSaturatedCoordinates drives shapes and windows beyond int32 range: the
// clamped slab compare alone would report spurious touches between saturated
// rows, so the exact int64 confirm must kick in.
func TestSaturatedCoordinates(t *testing.T) {
	e := NewEngine(tech.N45())
	const big = int64(3_000_000_000) // > MaxInt32
	a := e.AddMetal(1, geom.R(big, 0, big+100, 70), 1, KindWire, "far-a")
	e.AddMetal(1, geom.R(big+10_000, 0, big+10_100, 70), 2, KindWire, "far-b")
	near := e.AddMetal(1, geom.R(0, 0, 100, 70), 3, KindWire, "near")

	// Both saturated shapes clamp to MaxInt32: without the exact confirm a
	// window over one would return the other too.
	if got := e.QueryMetal(1, geom.R(big-10, 0, big+110, 70)); len(got) != 1 || got[0] != a {
		t.Fatalf("saturated window = %v, want [%d]", got, a)
	}
	// A saturated window must not capture unsaturated shapes it misses.
	if got := e.QueryMetal(1, geom.R(big, 0, big+20_000, 70)); len(got) != 2 {
		t.Fatalf("wide saturated window = %v, want both far shapes", got)
	}
	if got := e.QueryMetal(1, geom.R(0, 0, 50, 50)); len(got) != 1 || got[0] != near {
		t.Fatalf("near window = %v, want [%d]", got, near)
	}
}

// TestConcurrentQueryCtx exercises the documented concurrency contract under
// the race detector: a frozen engine, N goroutines with private contexts
// querying and via-checking disjoint regions against the shared slabs.
func TestConcurrentQueryCtx(t *testing.T) {
	e := NewEngine(tech.N45())
	tc := tech.N45()
	via := tc.ViasAbove(1)[0]
	for i := 0; i < 40; i++ {
		x := int64(i) * 20000
		e.AddMetal(1, geom.R(x, 0, x+400, 70), i, KindPin, "")
		e.AddMetal(1, geom.R(x, 200, x+400, 270), NoNet, KindObs, "")
		e.AddCut(1, geom.R(x, 1000, x+65, 1065), i, "")
	}
	e.Compact()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qc := e.NewQueryCtx()
			for i := w; i < 40; i += workers {
				x := int64(i) * 20000
				if got := e.QueryMetalCtx(1, geom.R(x, 0, x+400, 300), qc); len(got) != 2 {
					errs <- fmt.Errorf("worker %d: window %d returned %v", w, i, got)
					return
				}
				if got := e.QueryCutCtx(1, geom.R(x, 1000, x+65, 1065), qc); len(got) != 1 {
					errs <- fmt.Errorf("worker %d: cut window %d returned %v", w, i, got)
					return
				}
				// Exercise the full arena path (union, connectivity, verdicts).
				e.CheckViaCtx(via, geom.Pt(x+200, 35), i, []geom.Rect{geom.R(x, 0, x+400, 70)}, qc)
				e.CheckViaVerdictCtx(via, geom.Pt(x+200, 35), i, []geom.Rect{geom.R(x, 0, x+400, 70)}, qc)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCheckViaVerdictMatchesReport pins the count-only verdict core against
// the report path across a sweep of drop positions, cache off and on.
func TestCheckViaVerdictMatchesReport(t *testing.T) {
	tc := tech.N45()
	e := NewEngine(tc)
	via := tc.ViasAbove(1)[0]
	for i := 0; i < 12; i++ {
		x := int64(i) * 400
		e.AddMetal(1, geom.R(x, 0, x+190, 70), i%3, KindPin, "")
		e.AddMetal(2, geom.R(x, -200, x+70, 400), (i+1)%3, KindWire, "")
		e.AddCut(1, geom.R(x+300, 0, x+365, 65), i%3, "")
	}
	qc := e.NewQueryCtx()
	sameNetRects := []geom.Rect{geom.R(0, 0, 190, 70)}
	for x := int64(-100); x <= 5000; x += 35 {
		p := geom.Pt(x, 35)
		want := len(e.CheckViaCtx(via, p, 1, sameNetRects, nil))
		got := e.checkViaVerdictCount(via, p, 1, sameNetRects, qc)
		if got != want {
			t.Fatalf("at %v: verdict count %d != report %d", p, got, want)
		}
		if v := e.CheckViaVerdictCtx(via, p, 1, sameNetRects, qc); v != want {
			t.Fatalf("at %v: CheckViaVerdictCtx %d != report %d", p, v, want)
		}
	}
	// Same sweep with a cache attached: fills and hits must agree too.
	e.AttachViaCache(NewViaCache())
	for pass := 0; pass < 2; pass++ {
		for x := int64(-100); x <= 5000; x += 35 {
			p := geom.Pt(x, 35)
			want := len(e.CheckViaCtx(via, p, 1, sameNetRects, nil))
			if v := e.CheckViaVerdictCtx(via, p, 1, sameNetRects, qc); v != want {
				t.Fatalf("cached pass %d at %v: verdict %d != report %d", pass, p, v, want)
			}
		}
	}
}
