// Package drc is the design rule check engine: a grid-binned region query
// over design shapes plus the rule checks pin access analysis and detailed
// routing need — metal spacing (PRL table), shorts, min step over rectilinear
// unions, end-of-line spacing, cut spacing, min width and min area. It plays
// the role of TritonRoute's DRC engine in the paper's flow ("we use an
// accurate DRC engine similar to the one used in [20]", Section III-A).
package drc

import (
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Kind classifies a shape's origin, for reporting.
type Kind uint8

const (
	KindPin Kind = iota
	KindObs
	KindWire
	KindViaEnc
	KindViaCut
	KindIOPin
)

var kindNames = [...]string{"pin", "obs", "wire", "viaEnc", "viaCut", "ioPin"}

func (k Kind) String() string { return kindNames[k] }

// NoNet marks shapes that belong to no net (obstructions, power rails).
// A NoNet shape conflicts with every net but never with another NoNet shape.
const NoNet = -1

// SiteCheckVia is the fault-hook site name for via checks (see
// Engine.FaultHook).
const SiteCheckVia = "drc.CheckVia"

// Obj is one rectangle known to the engine. Metal shapes set MetalLayer to
// the 1-based metal number; via cuts set CutBelow to the cut layer's metal
// number and leave MetalLayer zero.
type Obj struct {
	ID         int
	Kind       Kind
	MetalLayer int
	CutBelow   int
	Rect       geom.Rect
	Net        int
	Tag        string
}

func (o *Obj) describe() string {
	if o.Tag != "" {
		return o.Tag
	}
	return fmt.Sprintf("%s(net %d)", o.Kind, o.Net)
}

// Violation is one design rule violation.
type Violation struct {
	Rule  string // Short, Spacing, MinStep, EOL, CutSpacing, MinWidth, MinArea
	Layer string // layer name
	Where geom.Rect
	Note  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s on %s at %v: %s", v.Rule, v.Layer, v.Where, v.Note)
}

// Key returns a dedup key that ignores the free-text note.
func (v Violation) Key() string {
	return fmt.Sprintf("%s|%s|%d,%d,%d,%d", v.Rule, v.Layer, v.Where.XL, v.Where.YL, v.Where.XH, v.Where.YH)
}

// vKey is the comparable dedup key of a violation: everything Key() encodes,
// without building strings. The two stay equivalent — Key() remains the wire
// form difftest and the oracle compare on.
type vKey struct {
	rule, layer string
	where       geom.Rect
}

func (v *Violation) key() vKey { return vKey{v.Rule, v.Layer, v.Where} }

// Dedup removes violations with duplicate keys, preserving order. The input
// slice is left untouched: the result is a fresh slice (callers routinely keep
// the original list for reporting, so rewriting its backing array in place —
// the old vs[:0] trick — would clobber it).
func Dedup(vs []Violation) []Violation {
	if len(vs) <= 1 {
		return vs
	}
	seen := make(map[vKey]struct{}, len(vs))
	out := make([]Violation, 0, len(vs))
	for i := range vs {
		k := vs[i].key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, vs[i])
		}
	}
	return out
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Counters aggregates the engine's instrumentation: region-query volume,
// checks executed per rule family, via drops attempted vs clean, and
// violations found (pre-dedup). All fields are atomic, so concurrent readers
// (QueryCtx checks, CheckAllParallel workers) may share one instance, and
// several engines may point at the same Counters to aggregate across
// contexts — the pao analyzer shares one across its per-cell engines and the
// global engine.
type Counters struct {
	Queries       atomic.Int64 // region queries executed
	QueryObjects  atomic.Int64 // objects returned by region queries
	MetalChecks   atomic.Int64 // hypothetical-metal short/spacing checks
	CutChecks     atomic.Int64 // hypothetical-cut spacing checks
	EOLChecks     atomic.Int64 // end-of-line window checks
	MinStepChecks atomic.Int64 // min-step union checks (via enclosures)
	PairChecks    atomic.Int64 // full-design pairwise checks (CheckAll)
	ViaChecks     atomic.Int64 // via drops attempted
	ViaClean      atomic.Int64 // via drops that validated clean
	Violations    atomic.Int64 // violations found (pre-dedup)

	// Via-verdict cache instrumentation (see ViaCache): lookups answered from
	// the cache, lookups that ran the full check, and cache invalidations
	// triggered by engine mutation (one per Add/Remove noted against an
	// attached cache).
	CacheHits        atomic.Int64
	CacheMisses      atomic.Int64
	CacheInvalidates atomic.Int64
	// CacheEvictScoped counts entries evicted because their query-window
	// region overlapped a mutated rectangle; CacheEvictWholesale counts
	// entries dropped by a whole-cache flush (mutation-queue overflow).
	CacheEvictScoped    atomic.Int64
	CacheEvictWholesale atomic.Int64
}

// Snapshot exports the counters under their canonical metric names.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	return map[string]int64{
		"drc.query.count":                   c.Queries.Load(),
		"drc.query.objects":                 c.QueryObjects.Load(),
		"drc.check.metal":                   c.MetalChecks.Load(),
		"drc.check.cut":                     c.CutChecks.Load(),
		"drc.check.eol":                     c.EOLChecks.Load(),
		"drc.check.minstep":                 c.MinStepChecks.Load(),
		"drc.check.pair":                    c.PairChecks.Load(),
		"drc.via.attempted":                 c.ViaChecks.Load(),
		"drc.via.clean":                     c.ViaClean.Load(),
		"drc.violations":                    c.Violations.Load(),
		"drc.viacache.hit":                  c.CacheHits.Load(),
		"drc.viacache.miss":                 c.CacheMisses.Load(),
		"drc.viacache.invalidate":           c.CacheInvalidates.Load(),
		"drc.viacache.invalidate.scoped":    c.CacheEvictScoped.Load(),
		"drc.viacache.invalidate.wholesale": c.CacheEvictWholesale.Load(),
	}
}

// Engine indexes design shapes per layer and runs rule checks against them.
type Engine struct {
	Tech *tech.Technology

	// Counters receives the engine's instrumentation. Always non-nil after
	// NewEngine; reassign it to share one accumulator across engines.
	Counters *Counters

	// FaultHook, when set, is invoked at the start of every via check with
	// the site name (SiteCheckVia); any violations it returns are appended
	// to the check's result. It exists for deterministic fault injection
	// (internal/faultinject) and stays nil in production. The hook must be
	// safe for concurrent callers when the engine is queried from several
	// goroutines.
	FaultHook func(site string) []Violation

	objs  []Obj
	alive []bool

	// Struct-of-arrays slabs mirroring objs for the query hot loop: clamped
	// int32 coordinates plus packed net / kind+saturation / layer columns
	// (see slab.go for the saturation contract).
	sxl, syl, sxh, syh []int32
	snet               []int32
	sinfo              []uint8 // Kind in the low bits, slabSat in the top bit
	slay               []int16 // +metal layer, -cut-below layer

	metal   []*binIndex // index 1..NumMetals
	cut     []*binIndex // index 1..NumMetals-1
	stamp   []int32     // per-object visit stamp for query dedup
	curPass int32

	// cache, when attached, memoizes via-drop verdicts (CheckViaVerdictCtx)
	// keyed by canonicalized local geometry. Engine mutation invalidates it.
	cache *ViaCache
}

// minBinSize floors the spatial-index bin size: a degenerate technology
// (zero or missing metal-1 pitch) must not produce a zero-sized bin, which
// would divide by zero on the first insert.
const minBinSize = 256

// NewEngine creates an empty engine for the given technology. Bin size is
// derived from the lower-metal pitch, floored at minBinSize for degenerate
// rule decks.
func NewEngine(t *tech.Technology) *Engine {
	e := &Engine{Tech: t, Counters: &Counters{}}
	var bin int64
	if l := t.Metal(1); l != nil {
		bin = 24 * l.Pitch
	}
	if bin < minBinSize {
		bin = minBinSize
	}
	e.metal = make([]*binIndex, t.NumMetals()+1)
	for i := 1; i <= t.NumMetals(); i++ {
		e.metal[i] = newBinIndex(bin)
	}
	e.cut = make([]*binIndex, t.NumMetals())
	for i := 1; i < t.NumMetals(); i++ {
		e.cut[i] = newBinIndex(bin)
	}
	return e
}

// NumObjs returns the number of live objects.
func (e *Engine) NumObjs() int {
	n := 0
	for _, a := range e.alive {
		if a {
			n++
		}
	}
	return n
}

// ForEachObj calls fn for every live object in insertion order. The *Obj is
// valid only for the duration of the call.
func (e *Engine) ForEachObj(fn func(o *Obj)) {
	for id := range e.objs {
		if e.alive[id] {
			fn(&e.objs[id])
		}
	}
}

// AttachViaCache installs a via-verdict cache on the engine. Attach after the
// engine's shapes are loaded: every later Add/Remove invalidates the cache
// (the memoized verdicts describe an environment that no longer exists), so
// attaching before construction would wipe it once per shape. One cache may be
// shared by several engines over the same Technology — verdicts are keyed by
// canonicalized local geometry, so a hit from another engine is still exact.
func (e *Engine) AttachViaCache(c *ViaCache) {
	if c != nil && !c.tech.CompareAndSwap(nil, e.Tech) && c.tech.Load() != e.Tech {
		// A cache keyed under different design rules would alias verdicts;
		// refuse silently rather than corrupt results.
		return
	}
	e.cache = c
}

// ViaCacheAttached reports whether a via-verdict cache is installed.
func (e *Engine) ViaCacheAttached() bool { return e.cache != nil }

// Add registers a shape and returns its ID.
func (e *Engine) Add(o Obj) int {
	if e.cache != nil {
		e.cache.noteMutation(o.Rect, e.Counters)
	}
	o.ID = len(e.objs)
	e.objs = append(e.objs, o)
	e.alive = append(e.alive, true)
	e.stamp = append(e.stamp, 0)
	xl, yl, xh, yh, sat := clampRect(o.Rect)
	e.sxl = append(e.sxl, xl)
	e.syl = append(e.syl, yl)
	e.sxh = append(e.sxh, xh)
	e.syh = append(e.syh, yh)
	e.snet = append(e.snet, int32(o.Net))
	info := uint8(o.Kind) & slabKindMask
	if sat {
		info |= slabSat
	}
	e.sinfo = append(e.sinfo, info)
	switch {
	case o.CutBelow > 0:
		e.slay = append(e.slay, -int16(o.CutBelow))
		idx := e.cut[o.CutBelow]
		idx.insert(int32(o.ID), o.Rect)
		if idx.needsCompact() {
			e.compactIndex(idx)
		}
	case o.MetalLayer > 0:
		e.slay = append(e.slay, int16(o.MetalLayer))
		idx := e.metal[o.MetalLayer]
		idx.insert(int32(o.ID), o.Rect)
		if idx.needsCompact() {
			e.compactIndex(idx)
		}
	default:
		e.slay = append(e.slay, 0)
	}
	return o.ID
}

// AddMetal is a convenience wrapper for metal shapes.
func (e *Engine) AddMetal(layer int, r geom.Rect, net int, kind Kind, tag string) int {
	return e.Add(Obj{Kind: kind, MetalLayer: layer, Rect: r, Net: net, Tag: tag})
}

// AddCut is a convenience wrapper for via cut shapes.
func (e *Engine) AddCut(cutBelow int, r geom.Rect, net int, tag string) int {
	return e.Add(Obj{Kind: KindViaCut, CutBelow: cutBelow, Rect: r, Net: net, Tag: tag})
}

// Remove deletes a previously added object.
func (e *Engine) Remove(id int) {
	if id < 0 || id >= len(e.objs) || !e.alive[id] {
		return
	}
	if e.cache != nil {
		e.cache.noteMutation(e.objs[id].Rect, e.Counters)
	}
	o := &e.objs[id]
	e.alive[id] = false
	switch {
	case o.CutBelow > 0:
		idx := e.cut[o.CutBelow]
		idx.remove(int32(id), o.Rect)
		if idx.needsCompact() {
			e.compactIndex(idx)
		}
	case o.MetalLayer > 0:
		idx := e.metal[o.MetalLayer]
		idx.remove(int32(id), o.Rect)
		if idx.needsCompact() {
			e.compactIndex(idx)
		}
	}
}

// Obj returns the object with the given ID (valid until the next Add).
func (e *Engine) Obj(id int) *Obj { return &e.objs[id] }

// queryIdx gathers live object IDs from idx touching r, deduped, using the
// engine-owned stamp state (exclusive-use callers only).
func (e *Engine) queryIdx(idx *binIndex, r geom.Rect) []int {
	e.curPass++
	return e.queryIdxInto(idx, r, e.stamp, e.curPass, nil)
}

// QueryMetal returns IDs of live metal shapes on layer touching r.
func (e *Engine) QueryMetal(layer int, r geom.Rect) []int {
	if layer < 1 || layer >= len(e.metal) {
		return nil
	}
	return e.queryIdx(e.metal[layer], r)
}

// QueryCut returns IDs of live via cuts on cut layer cutBelow touching r.
func (e *Engine) QueryCut(cutBelow int, r geom.Rect) []int {
	if cutBelow < 1 || cutBelow >= len(e.cut) {
		return nil
	}
	return e.queryIdx(e.cut[cutBelow], r)
}

// sameNet reports whether two net IDs should be exempt from spacing/short
// checks against each other. NoNet shapes conflict with every net but not
// with each other (two blockages cannot violate).
func sameNet(a, b int) bool {
	if a == NoNet && b == NoNet {
		return true
	}
	return a == b && a != NoNet
}

// queryIdxInto is the thread-safe query core: the caller owns the visit-stamp
// buffer (len >= len(objs) — the Ctx entry points grow it lazily) and the
// pass counter, so concurrent readers never share state. Candidates are
// filtered by a branch-light compare over the int32 coordinate slabs; only
// saturated rows (or a saturated query window) fall back to the exact int64
// geometry.
func (e *Engine) queryIdxInto(idx *binIndex, r geom.Rect, stamp []int32, pass int32, out []int) []int {
	if idx == nil {
		return out
	}
	before := len(out)
	qxl, qyl, qxh, qyh, qsat := clampRect(r)
	scan := func(cands []int32) {
		for _, id := range cands {
			if !e.alive[id] || stamp[id] == pass {
				continue
			}
			stamp[id] = pass
			if e.sxl[id] > qxh || qxl > e.sxh[id] || e.syl[id] > qyh || qyl > e.syh[id] {
				continue
			}
			if (qsat || e.sinfo[id]&slabSat != 0) && !e.objs[id].Rect.Touches(r) {
				continue
			}
			out = append(out, int(id))
		}
	}
	x0, y0, x1, y1 := idx.keyRange(r)
	dense := idx.runs != nil
	sparse := len(idx.over) > 0
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			if dense {
				cx, cy := int(x)-int(idx.gx0), int(y)-int(idx.gy0)
				if cx >= 0 && cx < int(idx.nx) && cy >= 0 && cy < int(idx.ny) {
					run := idx.runs[cy*int(idx.nx)+cx]
					scan(idx.ids[run.off : run.off+run.n])
				}
			}
			if sparse {
				scan(idx.over[[2]int32{x, y}])
			}
		}
	}
	e.Counters.Queries.Add(1)
	e.Counters.QueryObjects.Add(int64(len(out) - before))
	return out
}

// QueryCtx carries per-goroutine query state so read-only checks can run
// concurrently against one engine, and doubles as the check cores' scratch
// arena: every per-check buffer (query results, violation accumulation,
// dedup keys, min-step union geometry) lives here, so the count-only verdict
// path allocates nothing after warm-up. Obtain with NewQueryCtx; shapes added
// afterwards are picked up lazily (the visit-stamp buffer grows on the next
// query through the context).
//
// A slice returned by QueryMetalCtx/QueryCutCtx is only valid until the next
// query through the same context. Every in-tree caller consumes the IDs
// before issuing another query; callers that need to keep results across
// queries must copy them.
type QueryCtx struct {
	stamp []int32
	pass  int32
	buf   []int      // reused query result buffer
	sig   []sigEntry // via-signature scratch (viacache.go)
	enc   []byte     // via-signature encode scratch

	// Check-core arenas (see checks.go): violation accumulation for the
	// count-only verdict path, dedup keys, connected-component rects, ring
	// step flags and the rectilinear-union scratch.
	viol  []Violation
	keys  []vKey
	rects []geom.Rect
	used  []bool
	steps []bool
	union geom.UnionScratch
}

// ensure grows the stamp buffer to cover shapes added after the context was
// created. New entries stamp 0, which no in-use pass value equals (passes
// start at 1), so pending passes stay valid.
func (ctx *QueryCtx) ensure(e *Engine) {
	if n := len(e.objs); len(ctx.stamp) < n {
		ctx.stamp = append(ctx.stamp, make([]int32, n-len(ctx.stamp))...)
	}
}

// NewQueryCtx allocates query state sized for the engine's current objects.
func (e *Engine) NewQueryCtx() *QueryCtx {
	return &QueryCtx{stamp: make([]int32, len(e.objs))}
}

// QueryMetalCtx is QueryMetal with caller-owned state (safe for concurrent
// use with other contexts; the engine must not be mutated meanwhile). The
// result aliases the context's pooled buffer — valid until the next query.
func (e *Engine) QueryMetalCtx(layer int, r geom.Rect, ctx *QueryCtx) []int {
	if ctx == nil {
		return e.QueryMetal(layer, r)
	}
	if layer < 1 || layer >= len(e.metal) {
		return nil
	}
	ctx.ensure(e)
	ctx.pass++
	ctx.buf = e.queryIdxInto(e.metal[layer], r, ctx.stamp, ctx.pass, ctx.buf[:0])
	return ctx.buf
}

// QueryCutCtx is QueryCut with caller-owned state. The result aliases the
// context's pooled buffer — valid until the next query.
func (e *Engine) QueryCutCtx(cutBelow int, r geom.Rect, ctx *QueryCtx) []int {
	if ctx == nil {
		return e.QueryCut(cutBelow, r)
	}
	if cutBelow < 1 || cutBelow >= len(e.cut) {
		return nil
	}
	ctx.ensure(e)
	ctx.pass++
	ctx.buf = e.queryIdxInto(e.cut[cutBelow], r, ctx.stamp, ctx.pass, ctx.buf[:0])
	return ctx.buf
}
