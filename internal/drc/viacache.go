package drc

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/tech"
)

// ViaCache memoizes via-drop verdicts (the number of violations a CheckVia
// would report) keyed by the via definition plus a canonicalized signature of
// the local geometry inside the DRC halo. Every rule CheckVia evaluates —
// metal spacing, end-of-line, cut spacing, min step — is translation
// invariant, so two drops whose environments agree after shifting the access
// point to the origin must produce identical verdicts. That makes the cache
// content-addressed: it can be shared across engines (the pao analyzer shares
// one across every per-cell context and the global engine) and a hit from a
// different unique-instance class is still exact.
//
// Fill is exactly-once per key (singleflight): concurrent workers that miss on
// the same key run the underlying check once and share the verdict, keeping
// the engine's check counters deterministic across worker schedules.
//
// Invalidation: engines with an attached cache note the mutated rectangle on
// every Add/Remove, and the next lookup (or Len) sweeps the cache, evicting
// only the entries whose recorded query-window region overlaps a mutated
// rectangle. Content addressing alone already keeps stale entries from
// answering wrongly (a mutated environment hashes to a new signature), so
// invalidation here is memory hygiene — it bounds the cache to verdicts about
// live geometry. When too many mutations pile up between sweeps the pending
// list degrades to a wholesale flush (the pre-scoped behaviour); the
// drc.viacache.invalidate.scoped / .wholesale counters make the split
// observable.
type ViaCache struct {
	shards [viaCacheShards]viaShard

	// tech pins the rule set the cached verdicts were computed under; set
	// atomically on first attach (engines are built concurrently by analysis
	// workers), engines over a different Technology refuse the cache.
	tech atomic.Pointer[tech.Technology]

	invalidations    atomic.Int64
	scopedEvicted    atomic.Int64
	wholesaleEvicted atomic.Int64

	// dirty flags queued mutations; the hot lookup path pays one atomic load
	// when the queue is empty. pending holds the mutated rectangles (absolute
	// coordinates) guarded by pmu; overflow past viaPendingMax sets
	// pendingWholesale and drops the list.
	dirty            atomic.Bool
	pmu              sync.Mutex
	pending          []geom.Rect
	pendingWholesale bool
	pendingCtrs      *Counters
}

const (
	viaCacheShards = 64
	// viaShardCap bounds each shard; an overflowing shard is reset wholesale
	// (the cache is a memo, not a store — losing entries only costs misses).
	viaShardCap = 1 << 15
	// viaPendingMax bounds the queued mutation rectangles per sweep; a burst
	// beyond it (bulk engine edits) degrades to a wholesale flush, which is
	// cheaper than testing every entry against hundreds of rects. A single
	// instance re-placement enqueues roughly twice its shape count (removes
	// plus adds), so the bound comfortably covers a several-op ECO while
	// keeping the worst-case sweep at entries x 256 rectangle tests.
	viaPendingMax = 256
)

type viaShard struct {
	mu sync.Mutex
	m  map[viaKey]*viaEntry
}

type viaKey struct {
	via *tech.ViaDef
	sig string
}

// viaEntry is a singleflight slot: the filling goroutine computes the verdict
// and releases wg; concurrent lookups of the same key wait instead of
// re-running the check.
type viaEntry struct {
	wg      sync.WaitGroup
	verdict int
	failed  bool // the fill panicked; waiters fall back to an uncached check
	// region is the union of the absolute query windows every lookup that
	// reached this entry opened (the signature is translation invariant, so
	// one entry may describe drops at many positions; hits grow the union).
	// A mutation outside region cannot change which key a future lookup at
	// any of those positions computes, so the scoped sweep keeps the entry.
	// Guarded by the owning shard's mutex.
	region geom.Rect
}

// NewViaCache creates an empty verdict cache.
func NewViaCache() *ViaCache {
	c := &ViaCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[viaKey]*viaEntry)
	}
	return c
}

// Len returns the number of cached verdicts, after applying any pending
// invalidations (so a mutation's eviction effect is visible immediately).
func (c *ViaCache) Len() int {
	c.sweep()
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Invalidations returns how many engine mutations (Add/Remove) were noted
// against the cache.
func (c *ViaCache) Invalidations() int64 { return c.invalidations.Load() }

// ScopedEvicted returns the number of entries evicted by halo-overlap-scoped
// sweeps; WholesaleEvicted the number dropped by whole-cache flushes
// (pending-queue overflow).
func (c *ViaCache) ScopedEvicted() int64    { return c.scopedEvicted.Load() }
func (c *ViaCache) WholesaleEvicted() int64 { return c.wholesaleEvicted.Load() }

// noteMutation queues a mutated rectangle for the next sweep. Engines call it
// from Add/Remove; the engine mutation contract (no concurrent queries during
// mutation) covers the queue's consistency with the entries, and the sweep
// itself is safe against concurrent lookups.
func (c *ViaCache) noteMutation(r geom.Rect, ctrs *Counters) {
	c.pmu.Lock()
	c.pendingCtrs = ctrs
	if !c.pendingWholesale {
		if len(c.pending) >= viaPendingMax {
			c.pendingWholesale = true
			c.pending = c.pending[:0]
		} else {
			c.pending = append(c.pending, r)
		}
	}
	c.pmu.Unlock()
	c.dirty.Store(true)
	c.invalidations.Add(1)
	if ctrs != nil {
		ctrs.CacheInvalidates.Add(1)
	}
}

// sweep applies the queued invalidations: scoped (evict entries whose region
// overlaps a mutated rect) or wholesale on queue overflow. Runs at the next
// lookup or Len call after a mutation; a clean queue costs one atomic load.
func (c *ViaCache) sweep() {
	if !c.dirty.Load() {
		return
	}
	c.pmu.Lock()
	if !c.dirty.Swap(false) {
		c.pmu.Unlock()
		return
	}
	rects := append([]geom.Rect(nil), c.pending...)
	whole := c.pendingWholesale
	ctrs := c.pendingCtrs
	c.pending = c.pending[:0]
	c.pendingWholesale = false
	c.pmu.Unlock()

	var evicted int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		switch {
		case whole:
			if n := len(sh.m); n > 0 {
				evicted += int64(n)
				sh.m = make(map[viaKey]*viaEntry)
			}
		default:
			for k, ent := range sh.m {
				for _, r := range rects {
					if ent.region.Touches(r) {
						delete(sh.m, k)
						evicted++
						break
					}
				}
			}
		}
		sh.mu.Unlock()
	}
	if whole {
		c.wholesaleEvicted.Add(evicted)
		if ctrs != nil {
			ctrs.CacheEvictWholesale.Add(evicted)
		}
	} else {
		c.scopedEvicted.Add(evicted)
		if ctrs != nil {
			ctrs.CacheEvictScoped.Add(evicted)
		}
	}
}

func (c *ViaCache) shard(sig string) *viaShard {
	// FNV-1a over the signature bytes; the via pointer is folded in by the
	// signature's layer-dependent content already.
	h := uint64(14695981039346656037)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= 1099511628211
	}
	return &c.shards[h%viaCacheShards]
}

// sigEntry is one canonicalized environment object: its index class, net
// relation flags, and its rectangle relative to the access point.
type sigEntry struct {
	cls   uint8 // 0 = metal below, 1 = metal above, 2 = cut, 3 = same-net rect
	flags uint8 // bit 0: same net as the candidate; bit 1: NoNet blockage
	r     geom.Rect
}

// SigHalo is the exported form of sigHalo: the halo distance that covers
// every query window a via check opens on the layer. Incremental flows use it
// to bound how far an engine mutation can influence cached via verdicts.
func SigHalo(l *tech.RoutingLayer) int64 { return sigHalo(l) }

// viaRegion returns the union of the query windows a CheckVia of v at p opens
// — exactly the geometry viaSignature canonicalizes. A mutation that does not
// touch this region cannot change the signature (hence the verdict) of a drop
// at p.
func (e *Engine) viaRegion(v *tech.ViaDef, p geom.Point) geom.Rect {
	k := v.CutBelow
	r := v.BotRect(p).Bloat(sigHalo(e.Tech.Metal(k)))
	r = r.UnionBBox(v.TopRect(p).Bloat(sigHalo(e.Tech.Metal(k + 1))))
	if c := e.Tech.Cut(k); c != nil && len(v.Cuts) > 0 {
		win := v.Cuts[0].Shift(p)
		for _, cr := range v.Cuts[1:] {
			win = win.UnionBBox(cr.Shift(p))
		}
		r = r.UnionBBox(win.Bloat(c.Spacing))
	}
	return r
}

// sigHalo returns the halo distance that covers every query window CheckVia
// opens on the layer: the spacing-table maximum plus the end-of-line window
// extents.
func sigHalo(l *tech.RoutingLayer) int64 {
	h := l.Spacing.MaxSpacing()
	if l.EOL.Enabled() {
		if l.EOL.EOLSpace > h {
			h = l.EOL.EOLSpace
		}
		if l.EOL.EOLWithin > h {
			h = l.EOL.EOLWithin
		}
	}
	return h
}

// viaSignature canonicalizes the local geometry a CheckVia of v at p would
// see: every indexed object touching the halo around the enclosures and cuts
// (relative to p, tagged with its net relation) plus the caller-provided
// same-net rects that join the min-step union. Identical signatures guarantee
// identical verdicts; the converse need not hold (a too-wide halo only costs
// hit rate, never correctness).
func (e *Engine) viaSignature(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect, qc *QueryCtx) string {
	k := v.CutBelow
	ents := qc.sig[:0]
	add := func(cls, flags uint8, r geom.Rect) {
		ents = append(ents, sigEntry{cls, flags, geom.R(r.XL-p.X, r.YL-p.Y, r.XH-p.X, r.YH-p.Y)})
	}
	collectMetal := func(cls uint8, layer int, win geom.Rect) {
		for _, id := range e.QueryMetalCtx(layer, win, qc) {
			o := &e.objs[id]
			var fl uint8
			if sameNet(net, o.Net) {
				fl |= 1
			}
			if o.Net == NoNet {
				fl |= 2
			}
			add(cls, fl, o.Rect)
		}
	}
	collectMetal(0, k, v.BotRect(p).Bloat(sigHalo(e.Tech.Metal(k))))
	collectMetal(1, k+1, v.TopRect(p).Bloat(sigHalo(e.Tech.Metal(k+1))))
	if c := e.Tech.Cut(k); c != nil && len(v.Cuts) > 0 {
		win := v.Cuts[0].Shift(p)
		for _, cr := range v.Cuts[1:] {
			win = win.UnionBBox(cr.Shift(p))
		}
		for _, id := range e.QueryCutCtx(k, win.Bloat(c.Spacing), qc) {
			// Cut spacing ignores nets; only the relative rectangle matters
			// (the coincident-cut exemption compares rects, which survives the
			// shift to relative coordinates).
			add(2, 0, e.objs[id].Rect)
		}
	}
	for _, r := range sameNetRects {
		add(3, 0, r)
	}
	sort.Slice(ents, func(i, j int) bool {
		a, b := &ents[i], &ents[j]
		if a.cls != b.cls {
			return a.cls < b.cls
		}
		if a.r.XL != b.r.XL {
			return a.r.XL < b.r.XL
		}
		if a.r.YL != b.r.YL {
			return a.r.YL < b.r.YL
		}
		if a.r.XH != b.r.XH {
			return a.r.XH < b.r.XH
		}
		if a.r.YH != b.r.YH {
			return a.r.YH < b.r.YH
		}
		return a.flags < b.flags
	})
	qc.sig = ents

	buf := qc.enc[:0]
	for i := range ents {
		en := &ents[i]
		buf = append(buf, en.cls, en.flags)
		buf = binary.AppendVarint(buf, en.r.XL)
		buf = binary.AppendVarint(buf, en.r.YL)
		buf = binary.AppendVarint(buf, en.r.XH)
		buf = binary.AppendVarint(buf, en.r.YH)
	}
	qc.enc = buf
	return string(buf)
}

// CheckViaVerdict is CheckViaVerdictCtx without caller-owned query state (the
// verdict is computed uncached when qc is nil, so prefer the Ctx form on hot
// paths).
func (e *Engine) CheckViaVerdict(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect) int {
	return e.CheckViaVerdictCtx(v, p, net, sameNetRects, nil)
}

// CheckViaVerdictCtx returns the number of (deduplicated) violations dropping
// via v at p would cause — len(CheckViaCtx(...)) — answering from the
// attached ViaCache when the local-geometry signature was seen before. The
// full CheckVia/CheckViaCtx entry points never consult the cache, so
// violation reports (coordinates, notes) always come from a live check.
//
// The cache is bypassed when no cache is attached, when the caller supplies
// no QueryCtx (the signature scratch lives there), and when a FaultHook is
// installed (injected violations must not be memoized).
func (e *Engine) CheckViaVerdictCtx(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect, qc *QueryCtx) int {
	verdict, _ := e.CheckViaVerdictProvCtx(v, p, net, sameNetRects, qc)
	return verdict
}

// CheckViaVerdictProvCtx is CheckViaVerdictCtx plus provenance: cached
// reports whether the verdict was answered from the ViaCache (true only on a
// hit against a previously filled entry — the filling call itself, bypasses,
// and failed-fill fallbacks all ran the check live). The explain path uses
// this to report where each per-AP verdict came from.
func (e *Engine) CheckViaVerdictProvCtx(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect, qc *QueryCtx) (verdict int, cached bool) {
	if qc == nil || e.FaultHook != nil {
		// No arena for the count core (or injected violations that only the
		// report path prepends): run the full report check.
		return len(e.CheckViaCtx(v, p, net, sameNetRects, qc)), false
	}
	if e.cache == nil {
		return e.checkViaVerdictCount(v, p, net, sameNetRects, qc), false
	}
	e.cache.sweep()
	key := viaKey{via: v, sig: e.viaSignature(v, p, net, sameNetRects, qc)}
	region := e.viaRegion(v, p)
	sh := e.cache.shard(key.sig)
	sh.mu.Lock()
	ent, ok := sh.m[key]
	if !ok {
		if len(sh.m) >= viaShardCap {
			sh.m = make(map[viaKey]*viaEntry)
		}
		ent = &viaEntry{region: region}
		ent.wg.Add(1)
		sh.m[key] = ent
	} else {
		// The signature is translation invariant, so this hit may be a drop at
		// a new absolute position; grow the region so a future mutation near
		// it still evicts the entry.
		ent.region = ent.region.UnionBBox(region)
	}
	sh.mu.Unlock()
	if ok {
		ent.wg.Wait()
		if !ent.failed {
			e.Counters.CacheHits.Add(1)
			return ent.verdict, true
		}
		return e.checkViaVerdictCount(v, p, net, sameNetRects, qc), false
	}
	e.Counters.CacheMisses.Add(1)
	defer func() {
		if r := recover(); r != nil {
			ent.failed = true
			ent.wg.Done()
			panic(r)
		}
	}()
	ent.verdict = e.checkViaVerdictCount(v, p, net, sameNetRects, qc)
	ent.wg.Done()
	return ent.verdict, false
}
