package drc

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/tech"
)

// The rule checks come in two flavours sharing one implementation: the
// report path (notes=true) builds human-readable notes and returns fresh
// slices, and the count-only verdict path (notes=false) appends bare
// violations — Rule/Layer/Where only, which is everything Key() encodes —
// into the QueryCtx arena, allocating nothing after warm-up. Both flavours
// emit the same violations in the same order and drive the same counters, so
// a verdict is always len(Dedup(report)) by construction.

// CheckMetalRect validates a hypothetical metal shape on the given layer for
// the given net against the engine's indexed shapes: shorts (overlap with a
// different net) and PRL-table spacing. Touching a different-net shape is a
// spacing violation (required spacing is always positive).
func (e *Engine) CheckMetalRect(layer int, r geom.Rect, net int) []Violation {
	return e.CheckMetalRectCtx(layer, r, net, nil)
}

// CheckMetalRectCtx is CheckMetalRect with caller-owned query state for
// concurrent read-only checking.
func (e *Engine) CheckMetalRectCtx(layer int, r geom.Rect, net int, ctx *QueryCtx) []Violation {
	return e.checkMetalRectInto(layer, r, net, ctx, true, nil)
}

func (e *Engine) checkMetalRectInto(layer int, r geom.Rect, net int, ctx *QueryCtx, notes bool, out []Violation) []Violation {
	l := e.Tech.Metal(layer)
	if l == nil {
		return out
	}
	e.Counters.MetalChecks.Add(1)
	before := len(out)
	win := r.Bloat(l.Spacing.MaxSpacing())
	for _, id := range e.QueryMetalCtx(layer, win, ctx) {
		oNet := int(e.snet[id])
		if sameNet(net, oNet) {
			continue
		}
		var tag string
		if notes {
			tag = e.objs[id].describe()
		}
		out = checkMetalPairInto(l, r, net, "candidate", e.objs[id].Rect, oNet, tag, notes, out)
	}
	e.Counters.Violations.Add(int64(len(out) - before))
	return out
}

// checkMetalPairInto applies short and spacing rules to one pair of
// different-net shapes on layer l. With notes=false the tags are ignored and
// the Note field stays empty (the dedup key is unaffected).
func checkMetalPairInto(l *tech.RoutingLayer, a geom.Rect, aNet int, aTag string, b geom.Rect, bNet int, bTag string, notes bool, out []Violation) []Violation {
	if a.Overlaps(b) {
		ov, _ := a.Intersect(b)
		v := Violation{Rule: "Short", Layer: l.Name, Where: ov}
		if notes {
			v.Note = fmt.Sprintf("%s (net %d) overlaps %s (net %d)", aTag, aNet, bTag, bNet)
		}
		return append(out, v)
	}
	w := a.MinDim()
	if bw := b.MinDim(); bw > w {
		w = bw
	}
	prl := a.PRL(b)
	diagonal := prl < 0
	if prl < 0 {
		prl = 0
	}
	req := l.MinSpacing(w, prl)
	// Diagonal neighbors with a wide participant fall under corner spacing.
	if diagonal && l.Corner.Enabled() && w >= l.Corner.EligibleWidth && l.Corner.Spacing > req {
		if a.DistSquared(b) < l.Corner.Spacing*l.Corner.Spacing {
			v := Violation{Rule: "CornerSpacing", Layer: l.Name, Where: a.UnionBBox(b)}
			if notes {
				v.Note = fmt.Sprintf("%s (net %d) corner within %d of %s (net %d)", aTag, aNet, l.Corner.Spacing, bTag, bNet)
			}
			return append(out, v)
		}
		return out
	}
	if req > 0 && a.DistSquared(b) < req*req {
		v := Violation{Rule: "Spacing", Layer: l.Name, Where: a.UnionBBox(b)}
		if notes {
			v.Note = fmt.Sprintf("%s (net %d) within %d of %s (net %d), prl %d", aTag, aNet, req, bTag, bNet, prl)
		}
		return append(out, v)
	}
	return out
}

// CheckMetalPairRects applies the short and spacing rules to one standalone
// pair of shapes on layer l (used for via-to-via compatibility checks that
// run without an engine context). Same-net pairs are exempt.
func CheckMetalPairRects(l *tech.RoutingLayer, a geom.Rect, aNet int, b geom.Rect, bNet int) []Violation {
	if sameNet(aNet, bNet) {
		return nil
	}
	return checkMetalPairInto(l, a, aNet, "a", b, bNet, "b", true, nil)
}

// eolWindows returns the end-of-line clearance windows of a wire-like shape
// on layer l in wins[:n] (n is 0 when the rule is disabled or the end edges
// are wide). The fixed-size return keeps the hot path allocation-free.
func eolWindows(l *tech.RoutingLayer, r geom.Rect) (wins [2]geom.Rect, n int) {
	if !l.EOL.Enabled() {
		return wins, 0
	}
	if r.Width() >= r.Height() {
		if r.Height() < l.EOL.EOLWidth {
			wins[0] = geom.R(r.XL-l.EOL.EOLSpace, r.YL-l.EOL.EOLWithin, r.XL, r.YH+l.EOL.EOLWithin)
			wins[1] = geom.R(r.XH, r.YL-l.EOL.EOLWithin, r.XH+l.EOL.EOLSpace, r.YH+l.EOL.EOLWithin)
			return wins, 2
		}
		return wins, 0
	}
	if r.Width() < l.EOL.EOLWidth {
		wins[0] = geom.R(r.XL-l.EOL.EOLWithin, r.YL-l.EOL.EOLSpace, r.XH+l.EOL.EOLWithin, r.YL)
		wins[1] = geom.R(r.XL-l.EOL.EOLWithin, r.YH, r.XH+l.EOL.EOLWithin, r.YH+l.EOL.EOLSpace)
		return wins, 2
	}
	return wins, 0
}

// CheckEOLPairRects applies the end-of-line rule between one standalone pair
// of different-net shapes on layer l, in both directions (a's windows against
// b and b's windows against a).
func CheckEOLPairRects(l *tech.RoutingLayer, a geom.Rect, aNet int, b geom.Rect, bNet int) []Violation {
	if sameNet(aNet, bNet) {
		return nil
	}
	var out []Violation
	wins, n := eolWindows(l, a)
	for _, win := range wins[:n] {
		if win.Overlaps(b) {
			out = append(out, Violation{Rule: "EOL", Layer: l.Name, Where: win,
				Note: fmt.Sprintf("end-of-line window blocked (nets %d/%d)", aNet, bNet)})
		}
	}
	wins, n = eolWindows(l, b)
	for _, win := range wins[:n] {
		if win.Overlaps(a) {
			out = append(out, Violation{Rule: "EOL", Layer: l.Name, Where: win,
				Note: fmt.Sprintf("end-of-line window blocked (nets %d/%d)", bNet, aNet)})
		}
	}
	return out
}

// CheckCutPairRects applies the cut spacing rule to one standalone pair of
// cuts on cut layer c. Coincident cuts are the same via and exempt; net
// membership is irrelevant for cut spacing.
func CheckCutPairRects(c *tech.CutLayer, a, b geom.Rect) []Violation {
	if a == b {
		return nil
	}
	if a.Overlaps(b) {
		ov, _ := a.Intersect(b)
		return []Violation{{Rule: "Short", Layer: c.Name, Where: ov, Note: "cuts overlap"}}
	}
	if d := a.DistSquared(b); d < c.Spacing*c.Spacing {
		return []Violation{{Rule: "CutSpacing", Layer: c.Name, Where: a.UnionBBox(b),
			Note: fmt.Sprintf("cuts within %d", c.Spacing)}}
	}
	return nil
}

// CheckCutRect validates a hypothetical via cut on cut layer cutBelow: cut
// spacing applies regardless of net (two same-net vias still need clearance);
// an identical coincident cut is treated as the same via and skipped.
func (e *Engine) CheckCutRect(cutBelow int, r geom.Rect, net int) []Violation {
	return e.CheckCutRectCtx(cutBelow, r, net, nil)
}

// CheckCutRectCtx is CheckCutRect with caller-owned query state.
func (e *Engine) CheckCutRectCtx(cutBelow int, r geom.Rect, net int, ctx *QueryCtx) []Violation {
	return e.checkCutRectInto(cutBelow, r, net, ctx, true, nil)
}

func (e *Engine) checkCutRectInto(cutBelow int, r geom.Rect, net int, ctx *QueryCtx, notes bool, out []Violation) []Violation {
	c := e.Tech.Cut(cutBelow)
	if c == nil {
		return out
	}
	e.Counters.CutChecks.Add(1)
	before := len(out)
	win := r.Bloat(c.Spacing)
	for _, id := range e.QueryCutCtx(cutBelow, win, ctx) {
		o := &e.objs[id]
		if o.Rect == r {
			continue // the same via
		}
		if r.Overlaps(o.Rect) {
			ov, _ := r.Intersect(o.Rect)
			v := Violation{Rule: "Short", Layer: c.Name, Where: ov}
			if notes {
				v.Note = fmt.Sprintf("cut overlaps %s (net %d)", o.describe(), o.Net)
			}
			out = append(out, v)
			continue
		}
		if d := r.DistSquared(o.Rect); d < c.Spacing*c.Spacing {
			v := Violation{Rule: "CutSpacing", Layer: c.Name, Where: r.UnionBBox(o.Rect)}
			if notes {
				v.Note = fmt.Sprintf("cut within %d of %s (net %d)", c.Spacing, o.describe(), o.Net)
			}
			out = append(out, v)
		}
	}
	e.Counters.Violations.Add(int64(len(out) - before))
	return out
}

// CheckMinWidth validates a shape's minimum dimension on the layer.
func CheckMinWidth(l *tech.RoutingLayer, r geom.Rect) []Violation {
	if l.MinWid > 0 && r.MinDim() < l.MinWid {
		return []Violation{{Rule: "MinWidth", Layer: l.Name, Where: r,
			Note: fmt.Sprintf("width %d < %d", r.MinDim(), l.MinWid)}}
	}
	return nil
}

// CheckMinStepUnion checks the outline of the union of rects against the
// layer's min-step rule: any maximal run of consecutive outline edges shorter
// than MinStepLength whose length exceeds MaxEdges is a violation (MaxEdges=0
// forbids short edges entirely).
func CheckMinStepUnion(l *tech.RoutingLayer, rects []geom.Rect) []Violation {
	return checkMinStepUnionInto(l, rects, nil, true, nil)
}

func checkMinStepUnionInto(l *tech.RoutingLayer, rects []geom.Rect, qc *QueryCtx, notes bool, out []Violation) []Violation {
	if !l.Step.Enabled() {
		return out
	}
	var polys []geom.Polygon
	if qc != nil {
		polys = qc.union.Union(rects)
	} else {
		polys = geom.UnionRects(rects)
	}
	for _, poly := range polys {
		out = checkRingStepsInto(l, poly.Outer, qc, notes, out)
		for _, hole := range poly.Holes {
			out = checkRingStepsInto(l, hole, qc, notes, out)
		}
	}
	return out
}

func checkRingStepsInto(l *tech.RoutingLayer, ring geom.Ring, qc *QueryCtx, notes bool, out []Violation) []Violation {
	n := len(ring)
	if n == 0 {
		return out
	}
	var short []bool
	if qc != nil {
		if cap(qc.steps) < n {
			qc.steps = make([]bool, n)
		}
		qc.steps = qc.steps[:n]
		short = qc.steps
	} else {
		short = make([]bool, n)
	}
	edgeEnd := func(i int) int {
		if i == n-1 {
			return 0
		}
		return i + 1
	}
	allShort := true
	for i := 0; i < n; i++ {
		short[i] = ring[i].ManhattanDist(ring[edgeEnd(i)]) < l.Step.MinStepLength
		allShort = allShort && short[i]
	}
	if allShort {
		v := Violation{Rule: "MinStep", Layer: l.Name, Where: ring.BBox()}
		if notes {
			v.Note = fmt.Sprintf("entire contour shorter than min step %d", l.Step.MinStepLength)
		}
		return append(out, v)
	}
	// Walk circular runs starting after a non-short edge.
	start := 0
	for short[start] {
		start++
	}
	run := 0
	runBox := geom.Rect{}
	for k := 1; k <= n; k++ {
		i := (start + k) % n
		if short[i] {
			a, b := ring[i], ring[edgeEnd(i)]
			er := geom.R(a.X, a.Y, b.X, b.Y)
			if run == 0 {
				runBox = er
			} else {
				runBox = runBox.UnionBBox(er)
			}
			run++
			continue
		}
		if run > l.Step.MaxEdges {
			v := Violation{Rule: "MinStep", Layer: l.Name, Where: runBox}
			if notes {
				v.Note = fmt.Sprintf("%d consecutive edges shorter than %d (max %d)", run, l.Step.MinStepLength, l.Step.MaxEdges)
			}
			out = append(out, v)
		}
		run = 0
	}
	return out
}

// CheckMinAreaUnion checks each connected component of the union of rects
// against the layer's minimum-area rule.
func CheckMinAreaUnion(l *tech.RoutingLayer, rects []geom.Rect) []Violation {
	if l.Area <= 0 {
		return nil
	}
	var out []Violation
	for _, poly := range geom.UnionRects(rects) {
		if a := poly.Area(); a < l.Area {
			out = append(out, Violation{Rule: "MinArea", Layer: l.Name, Where: poly.BBox(),
				Note: fmt.Sprintf("area %d < %d", a, l.Area)})
		}
	}
	return out
}

// CheckMinEnclosedAreaUnion checks every hole of the union of rects against
// the layer's minimum enclosed area rule (a metal ring may not surround a
// hole smaller than EncArea).
func CheckMinEnclosedAreaUnion(l *tech.RoutingLayer, rects []geom.Rect) []Violation {
	if l.EncArea <= 0 {
		return nil
	}
	var out []Violation
	for _, poly := range geom.UnionRects(rects) {
		for _, hole := range poly.Holes {
			if a := -hole.SignedArea2() / 2; a < l.EncArea {
				out = append(out, Violation{Rule: "MinEnclosedArea", Layer: l.Name, Where: hole.BBox(),
					Note: fmt.Sprintf("enclosed area %d < %d", a, l.EncArea)})
			}
		}
	}
	return out
}

// CheckEOLRect treats r as a wire-like shape on layer and applies the
// end-of-line rule to its two end edges (the edges spanning the shape's
// narrow dimension): if the end edge is shorter than EOLWidth, a clearance
// window extending EOLSpace beyond the edge and widened by EOLWithin must be
// free of different-net shapes.
func (e *Engine) CheckEOLRect(layer int, r geom.Rect, net int) []Violation {
	return e.CheckEOLRectCtx(layer, r, net, nil)
}

// CheckEOLRectCtx is CheckEOLRect with caller-owned query state.
func (e *Engine) CheckEOLRectCtx(layer int, r geom.Rect, net int, ctx *QueryCtx) []Violation {
	return e.checkEOLRectInto(layer, r, net, ctx, true, nil)
}

func (e *Engine) checkEOLRectInto(layer int, r geom.Rect, net int, ctx *QueryCtx, notes bool, out []Violation) []Violation {
	l := e.Tech.Metal(layer)
	if l == nil {
		return out
	}
	e.Counters.EOLChecks.Add(1)
	before := len(out)
	wins, nw := eolWindows(l, r)
	for _, win := range wins[:nw] {
		for _, id := range e.QueryMetalCtx(layer, win, ctx) {
			if sameNet(net, int(e.snet[id])) {
				continue
			}
			if win.Overlaps(e.objs[id].Rect) {
				v := Violation{Rule: "EOL", Layer: l.Name, Where: win}
				if notes {
					v.Note = fmt.Sprintf("end-of-line window blocked by %s (net %d)", e.objs[id].describe(), e.objs[id].Net)
				}
				out = append(out, v)
				break
			}
		}
	}
	e.Counters.Violations.Add(int64(len(out) - before))
	return out
}

// CheckVia validates dropping via v at point p for the given net:
//
//   - bottom enclosure: shorts/spacing on the lower metal, end-of-line, and
//     min step on the union of the enclosure with the connected same-net pin
//     shapes (sameNetRects) — the Fig. 3 check;
//   - top enclosure: shorts/spacing and min step on the upper metal;
//   - cut: cut spacing.
//
// sameNetRects are the fixed same-net shapes on the lower metal (typically
// the pin's rectangles); only those transitively touching the enclosure join
// the min-step union.
func (e *Engine) CheckVia(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect) []Violation {
	return e.CheckViaCtx(v, p, net, sameNetRects, nil)
}

// CheckViaCtx is CheckVia with caller-owned query state for concurrent
// read-only validation against a frozen engine.
func (e *Engine) CheckViaCtx(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect, ctx *QueryCtx) []Violation {
	e.Counters.ViaChecks.Add(1)
	var out []Violation
	if e.FaultHook != nil {
		out = append(out, e.FaultHook(SiteCheckVia)...)
	}
	out = e.checkViaInto(v, p, net, sameNetRects, ctx, true, out)
	out = Dedup(out)
	if len(out) == 0 {
		e.Counters.ViaClean.Add(1)
	}
	return out
}

// checkViaInto is the shared via rule sequence. The verdict path reuses it
// with notes=false and the QueryCtx violation arena as out.
func (e *Engine) checkViaInto(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect, qc *QueryCtx, notes bool, out []Violation) []Violation {
	k := v.CutBelow
	bot := v.BotRect(p)
	top := v.TopRect(p)

	out = e.checkMetalRectInto(k, bot, net, qc, notes, out)
	out = e.checkMetalRectInto(k+1, top, net, qc, notes, out)
	for _, cr := range v.Cuts {
		out = e.checkCutRectInto(k, cr.Shift(p), net, qc, notes, out)
	}
	out = e.checkEOLRectInto(k, bot, net, qc, notes, out)
	out = e.checkEOLRectInto(k+1, top, net, qc, notes, out)

	if lb := e.Tech.Metal(k); lb.Step.Enabled() {
		e.Counters.MinStepChecks.Add(1)
		before := len(out)
		out = checkMinStepUnionInto(lb, connectedToCtx(bot, sameNetRects, qc), qc, notes, out)
		e.Counters.Violations.Add(int64(len(out) - before))
	}
	if lt := e.Tech.Metal(k + 1); lt.Step.Enabled() {
		e.Counters.MinStepChecks.Add(1)
		before := len(out)
		topArr := [1]geom.Rect{top}
		out = checkMinStepUnionInto(lt, topArr[:], qc, notes, out)
		e.Counters.Violations.Add(int64(len(out) - before))
	}
	return out
}

// checkViaVerdictCount is CheckViaCtx without report construction: the number
// of deduplicated violations the report path would return, computed entirely
// on the QueryCtx arena. Counters move exactly as on the report path.
func (e *Engine) checkViaVerdictCount(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect, qc *QueryCtx) int {
	e.Counters.ViaChecks.Add(1)
	out := e.checkViaInto(v, p, net, sameNetRects, qc, false, qc.viol[:0])
	qc.viol = out
	n := countDistinctKeys(out, qc)
	if n == 0 {
		e.Counters.ViaClean.Add(1)
	}
	return n
}

// countDistinctKeys counts distinct dedup keys by linear scan — violation
// lists from one via check are tiny, so this beats a map and allocates
// nothing.
func countDistinctKeys(vs []Violation, qc *QueryCtx) int {
	if len(vs) <= 1 {
		return len(vs)
	}
	keys := qc.keys[:0]
	for i := range vs {
		k := vs[i].key()
		dup := false
		for _, seen := range keys {
			if seen == k {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, k)
		}
	}
	qc.keys = keys
	return len(keys)
}

// connectedTo returns seed plus every rect transitively touching it.
func connectedTo(seed geom.Rect, rects []geom.Rect) []geom.Rect {
	out := []geom.Rect{seed}
	used := make([]bool, len(rects))
	return connectedInto(seed, rects, out, used)
}

// connectedToCtx is connectedTo on the QueryCtx arena; the result aliases
// qc.rects and is valid until the next connectedToCtx call on the same
// context.
func connectedToCtx(seed geom.Rect, rects []geom.Rect, qc *QueryCtx) []geom.Rect {
	if qc == nil {
		return connectedTo(seed, rects)
	}
	out := append(qc.rects[:0], seed)
	if cap(qc.used) < len(rects) {
		qc.used = make([]bool, len(rects))
	}
	qc.used = qc.used[:len(rects)]
	for i := range qc.used {
		qc.used[i] = false
	}
	out = connectedInto(seed, rects, out, qc.used)
	qc.rects = out
	return out
}

func connectedInto(seed geom.Rect, rects []geom.Rect, out []geom.Rect, used []bool) []geom.Rect {
	for changed := true; changed; {
		changed = false
		for i, r := range rects {
			if used[i] {
				continue
			}
			for _, u := range out {
				if u.Touches(r) {
					out = append(out, r)
					used[i] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// CheckAll runs pairwise shorts/spacing over every indexed metal shape and
// cut spacing over every indexed cut — the post-route full-design check.
// Each violating pair is reported once.
func (e *Engine) CheckAll() []Violation {
	e.Compact() // exclusive caller by the stamp contract; fold churn first
	var out []Violation
	pairs := int64(0)
	for id := range e.objs {
		if !e.alive[id] {
			continue
		}
		o := &e.objs[id]
		switch {
		case o.MetalLayer > 0:
			l := e.Tech.Metal(o.MetalLayer)
			win := o.Rect.Bloat(l.Spacing.MaxSpacing())
			for _, jd := range e.QueryMetal(o.MetalLayer, win) {
				if jd <= id {
					continue
				}
				pairs++
				q := &e.objs[jd]
				if sameNet(o.Net, q.Net) {
					continue
				}
				out = checkMetalPairInto(l, o.Rect, o.Net, o.describe(), q.Rect, q.Net, q.describe(), true, out)
			}
		case o.CutBelow > 0:
			c := e.Tech.Cut(o.CutBelow)
			win := o.Rect.Bloat(c.Spacing)
			for _, jd := range e.QueryCut(o.CutBelow, win) {
				if jd <= id {
					continue
				}
				pairs++
				q := &e.objs[jd]
				if o.Rect.Overlaps(q.Rect) {
					ov, _ := o.Rect.Intersect(q.Rect)
					out = append(out, Violation{Rule: "Short", Layer: c.Name, Where: ov,
						Note: fmt.Sprintf("%s overlaps %s", o.describe(), q.describe())})
					continue
				}
				if d := o.Rect.DistSquared(q.Rect); d < c.Spacing*c.Spacing {
					out = append(out, Violation{Rule: "CutSpacing", Layer: c.Name, Where: o.Rect.UnionBBox(q.Rect),
						Note: fmt.Sprintf("%s within %d of %s", o.describe(), c.Spacing, q.describe())})
				}
			}
		}
	}
	e.Counters.PairChecks.Add(pairs)
	e.Counters.Violations.Add(int64(len(out)))
	return Dedup(out)
}

// checkObjAgainst runs the pairwise checks of one object against the engine
// using the caller-owned query state; only pairs (id < jd) are reported so
// the full sweep sees each pair once.
func (e *Engine) checkObjAgainst(id int, qc *QueryCtx, out []Violation) []Violation {
	o := &e.objs[id]
	before := len(out)
	pairs := int64(0)
	switch {
	case o.MetalLayer > 0:
		l := e.Tech.Metal(o.MetalLayer)
		win := o.Rect.Bloat(l.Spacing.MaxSpacing())
		for _, jd := range e.QueryMetalCtx(o.MetalLayer, win, qc) {
			if jd <= id {
				continue
			}
			pairs++
			q := &e.objs[jd]
			if sameNet(o.Net, q.Net) {
				continue
			}
			out = checkMetalPairInto(l, o.Rect, o.Net, o.describe(), q.Rect, q.Net, q.describe(), true, out)
		}
	case o.CutBelow > 0:
		c := e.Tech.Cut(o.CutBelow)
		win := o.Rect.Bloat(c.Spacing)
		for _, jd := range e.QueryCutCtx(o.CutBelow, win, qc) {
			if jd <= id {
				continue
			}
			pairs++
			q := &e.objs[jd]
			if o.Rect.Overlaps(q.Rect) {
				ov, _ := o.Rect.Intersect(q.Rect)
				out = append(out, Violation{Rule: "Short", Layer: c.Name, Where: ov,
					Note: fmt.Sprintf("%s overlaps %s", o.describe(), q.describe())})
				continue
			}
			if d := o.Rect.DistSquared(q.Rect); d < c.Spacing*c.Spacing {
				out = append(out, Violation{Rule: "CutSpacing", Layer: c.Name, Where: o.Rect.UnionBBox(q.Rect),
					Note: fmt.Sprintf("%s within %d of %s", o.describe(), c.Spacing, q.describe())})
			}
		}
	}
	e.Counters.PairChecks.Add(pairs)
	e.Counters.Violations.Add(int64(len(out) - before))
	return out
}

// CheckAllParallel is CheckAll fanned across worker goroutines (each with its
// own QueryCtx), for post-route full-design checks on large results. The
// violation set matches CheckAll; ordering is normalized by sorting on Key.
func (e *Engine) CheckAllParallel(workers int) []Violation {
	if workers < 2 {
		out := e.CheckAll()
		sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
		return out
	}
	e.Compact() // before the fan-out: workers must not race a rebuild
	n := len(e.objs)
	results := make([][]Violation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qc := e.NewQueryCtx()
			var local []Violation
			for id := w; id < n; id += workers {
				if !e.alive[id] {
					continue
				}
				local = e.checkObjAgainst(id, qc, local)
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	var all []Violation
	for _, r := range results {
		all = append(all, r...)
	}
	all = Dedup(all)
	sort.Slice(all, func(i, j int) bool { return all[i].Key() < all[j].Key() })
	return all
}
