package drc

import (
	"math"

	"repro/internal/geom"
)

// Data-oriented storage for the query core (see DESIGN.md §16).
//
// The engine keeps the geometry it scans during region queries in flat
// struct-of-arrays slabs — int32 XL/YL/XH/YH columns plus packed net/kind/
// layer columns — so the Touches test over a bin's candidates is a
// branch-light compare over contiguous memory instead of a pointer-chase
// through 64-byte Obj structs. The authoritative int64 geometry stays in
// Engine.objs; the columns are a saturating-clamped projection of it:
//
//   - clamping is monotone, so a true int64 touch always survives as an int32
//     touch (no false negatives);
//   - a shape whose coordinates fit int32 — every real design; DEF caps
//     coordinates at 1e15 DBU but practical designs stay far below 2^31 —
//     compares exactly;
//   - a saturated shape (or a saturated query window) can produce a false
//     positive, so those candidates get one exact int64 confirm against
//     Engine.objs. The slabSat flag marks them; the branch is perfectly
//     predicted (never taken) on unsaturated designs.

const (
	// slabSat marks a slab row whose clamped coordinates differ from the
	// authoritative int64 rectangle; matches against it re-check exactly.
	slabSat uint8 = 1 << 7
	// slabKindMask extracts the Kind packed in the low bits of the info column.
	slabKindMask uint8 = 0x0f
)

// clampI32 saturates an int64 coordinate into int32 range.
func clampI32(v int64) (int32, bool) {
	if v < math.MinInt32 {
		return math.MinInt32, true
	}
	if v > math.MaxInt32 {
		return math.MaxInt32, true
	}
	return int32(v), false
}

// clampRect saturates a rectangle into the int32 slab domain. sat reports
// whether any coordinate moved (exact int64 confirmation required).
func clampRect(r geom.Rect) (xl, yl, xh, yh int32, sat bool) {
	var s1, s2, s3, s4 bool
	xl, s1 = clampI32(r.XL)
	yl, s2 = clampI32(r.YL)
	xh, s3 = clampI32(r.XH)
	yh, s4 = clampI32(r.YH)
	return xl, yl, xh, yh, s1 || s2 || s3 || s4
}

// binRun is one cell of the dense grid: a run of candidate IDs inside the
// shared ids slab.
type binRun struct {
	off, n int32
}

// binIndex is the uniform-grid spatial index over object IDs. The steady
// state is a dense grid of offset/length runs into one shared, bin-sorted ID
// slab (rebuilt by compact); inserts since the last compact land in the over
// map, removals are lazy (queries filter on Engine.alive, compact reclaims).
// Compaction only ever runs under the engine mutation contract — from
// Add/Remove past an amortization threshold, or from an explicit
// Engine.Compact at a freeze point — never from the (concurrent) query side.
type binIndex struct {
	size int64

	// Dense base grid. runs is row-major over [gx0,gx0+nx) x [gy0,gy0+ny) in
	// bin coordinates; nil until the first compact or when mapOnly.
	gx0, gy0 int32
	nx, ny   int32
	runs     []binRun
	ids      []int32

	// over holds the id→cells pairs inserted since the last compact (and, in
	// mapOnly mode, the whole index: degenerate extents can make the dense
	// cell count exceed any reasonable multiple of the pair count).
	over    map[[2]int32][]int32
	mapOnly bool

	// members lists every inserted id (ascending; may contain dead ids until
	// compact filters them against Engine.alive).
	members []int32

	// Amortization accounting: compact() resets these; Add/Remove trigger a
	// rebuild once the churn since the last compact rivals the base size, so
	// total rebuild work stays linear in the insert count.
	basePairs int
	overPairs int
	dead      int
}

func newBinIndex(size int64) *binIndex {
	return &binIndex{size: size, over: make(map[[2]int32][]int32)}
}

func (b *binIndex) keyRange(r geom.Rect) (x0, y0, x1, y1 int32) {
	return int32(floorDiv(r.XL, b.size)), int32(floorDiv(r.YL, b.size)),
		int32(floorDiv(r.XH, b.size)), int32(floorDiv(r.YH, b.size))
}

// insert registers id covering r. New ids always land in the over map; the
// dense grid is append-only between compactions.
func (b *binIndex) insert(id int32, r geom.Rect) {
	b.members = append(b.members, id)
	x0, y0, x1, y1 := b.keyRange(r)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			k := [2]int32{x, y}
			b.over[k] = append(b.over[k], id)
			b.overPairs++
		}
	}
}

// remove unregisters id covering r. Overflow entries are scrubbed eagerly
// (cheap map lookups); dense entries are left to the alive[] query filter and
// reclaimed by the next compact.
func (b *binIndex) remove(id int32, r geom.Rect) {
	b.dead++
	if b.overPairs == 0 && !b.mapOnly {
		return
	}
	x0, y0, x1, y1 := b.keyRange(r)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			k := [2]int32{x, y}
			s := b.over[k]
			for i, v := range s {
				if v == id {
					s[i] = s[len(s)-1]
					b.over[k] = s[:len(s)-1]
					if b.overPairs > 0 {
						b.overPairs--
					}
					break
				}
			}
		}
	}
}

// dirty reports whether the index has churn a compact would fold in.
func (b *binIndex) dirty() bool { return b.overPairs > 0 || b.dead > 0 }

// needsCompact applies the amortization thresholds: rebuild when the overflow
// rivals the dense base, or when lazy removals dominate the member list.
func (b *binIndex) needsCompact() bool {
	if b.overPairs > 64 && b.overPairs > b.basePairs {
		return true
	}
	return b.dead > 64 && 2*b.dead > len(b.members)
}

// compact rebuilds the dense grid from the live members: filters dead ids,
// recomputes the grid extent, and lays the per-cell candidate runs out in one
// shared slab with ids ascending within each cell. Must run under the engine
// mutation contract (no concurrent queries).
func (e *Engine) compactIndex(b *binIndex) {
	live := b.members[:0]
	for _, id := range b.members {
		if e.alive[id] {
			live = append(live, id)
		}
	}
	b.members = live
	b.dead = 0
	b.overPairs = 0
	clear(b.over)
	b.runs, b.ids = nil, nil
	b.nx, b.ny = 0, 0
	b.mapOnly = false
	b.basePairs = 0
	if len(live) == 0 {
		return
	}

	var gx0, gy0, gx1, gy1 int32
	pairs := 0
	for i, id := range live {
		x0, y0, x1, y1 := b.keyRange(e.objs[id].Rect)
		pairs += int(x1-x0+1) * int(y1-y0+1)
		if i == 0 {
			gx0, gy0, gx1, gy1 = x0, y0, x1, y1
			continue
		}
		if x0 < gx0 {
			gx0 = x0
		}
		if y0 < gy0 {
			gy0 = y0
		}
		if x1 > gx1 {
			gx1 = x1
		}
		if y1 > gy1 {
			gy1 = y1
		}
	}
	cells := (int64(gx1) - int64(gx0) + 1) * (int64(gy1) - int64(gy0) + 1)
	if lim := int64(2 * pairs); cells > 4096 && cells > lim {
		// Sparse or wildly spread extents: a dense grid would waste memory on
		// empty cells. Keep everything in the map.
		b.mapOnly = true
		for _, id := range live {
			x0, y0, x1, y1 := b.keyRange(e.objs[id].Rect)
			for x := x0; x <= x1; x++ {
				for y := y0; y <= y1; y++ {
					k := [2]int32{x, y}
					b.over[k] = append(b.over[k], id)
				}
			}
		}
		b.basePairs = pairs
		return
	}

	b.gx0, b.gy0 = gx0, gy0
	b.nx, b.ny = gx1-gx0+1, gy1-gy0+1
	b.runs = make([]binRun, cells)
	for _, id := range live {
		x0, y0, x1, y1 := b.keyRange(e.objs[id].Rect)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				b.runs[int(y-gy0)*int(b.nx)+int(x-gx0)].n++
			}
		}
	}
	off := int32(0)
	for i := range b.runs {
		b.runs[i].off = off
		off += b.runs[i].n
		b.runs[i].n = 0
	}
	b.ids = make([]int32, pairs)
	for _, id := range live { // ascending ids -> ascending within each cell
		x0, y0, x1, y1 := b.keyRange(e.objs[id].Rect)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				run := &b.runs[int(y-gy0)*int(b.nx)+int(x-gx0)]
				b.ids[run.off+run.n] = id
				run.n++
			}
		}
	}
	b.basePairs = pairs
}

// Compact folds every index's overflow inserts and lazy removals into its
// dense grid. It must run under the engine mutation contract — the analyzer
// calls it at engine freeze points (after bulk construction, after an ECO
// commit, after Step-3 placement) before fanning queries out to goroutines;
// queries themselves never rebuild, so a missed Compact costs speed, never
// correctness.
func (e *Engine) Compact() {
	for _, idx := range e.metal {
		if idx != nil && idx.dirty() {
			e.compactIndex(idx)
		}
	}
	for _, idx := range e.cut {
		if idx != nil && idx.dirty() {
			e.compactIndex(idx)
		}
	}
}
