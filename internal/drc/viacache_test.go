package drc

import (
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// TestDedupDoesNotClobberInput pins the fix for the old vs[:0] aliasing bug:
// Dedup must leave the caller's slice untouched.
func TestDedupDoesNotClobberInput(t *testing.T) {
	in := []Violation{
		{Rule: "Spacing", Layer: "M1", Where: geom.R(0, 0, 10, 10)},
		{Rule: "Spacing", Layer: "M1", Where: geom.R(0, 0, 10, 10)}, // dup of [0]
		{Rule: "Short", Layer: "M1", Where: geom.R(5, 5, 15, 15)},
		{Rule: "EOL", Layer: "M2", Where: geom.R(0, 0, 1, 1)},
	}
	orig := make([]Violation, len(in))
	copy(orig, in)

	out := Dedup(in)
	if len(out) != 3 {
		t.Fatalf("Dedup kept %d, want 3", len(out))
	}
	for i := range in {
		if in[i].Key() != orig[i].Key() {
			t.Fatalf("Dedup clobbered input[%d]: %s became %s", i, orig[i].Key(), in[i].Key())
		}
	}
	if len(in) >= 2 && &in[0] == &out[0] {
		t.Fatal("Dedup returned a view over the input's backing array")
	}
}

// viaCacheFixture builds an engine with one pin bar plus a cache and query
// context, returning everything a verdict-cache test needs.
func viaCacheFixture(t *testing.T) (*Engine, *tech.ViaDef, geom.Rect, *ViaCache, *QueryCtx) {
	t.Helper()
	tt := tech.N45()
	e := NewEngine(tt)
	bar := geom.R(0, 400, 1000, 470)
	e.AddMetal(1, bar, 1, KindPin, "pin")
	c := NewViaCache()
	e.AttachViaCache(c)
	return e, tt.ViaByName("VIA1_H"), bar, c, e.NewQueryCtx()
}

func TestViaCacheHitAndVerdictAgreement(t *testing.T) {
	e, v, bar, c, qc := viaCacheFixture(t)

	// Every cached verdict must equal the live check, clean and dirty alike.
	pts := []geom.Point{
		geom.Pt(500, 435), // clean: centered on the bar
		geom.Pt(500, 460), // min-step violation: misaligned
		geom.Pt(500, 435), // repeat of the clean drop (should hit)
	}
	for i, p := range pts {
		want := len(e.CheckVia(v, p, 1, []geom.Rect{bar}))
		if got := e.CheckViaVerdictCtx(v, p, 1, []geom.Rect{bar}, qc); got != want {
			t.Fatalf("pt %d: cached verdict %d != live %d", i, got, want)
		}
	}
	if hits := e.Counters.CacheHits.Load(); hits != 1 {
		t.Fatalf("CacheHits = %d, want 1 (third drop repeats the first)", hits)
	}
	if misses := e.Counters.CacheMisses.Load(); misses != 2 {
		t.Fatalf("CacheMisses = %d, want 2", misses)
	}
	if c.Len() != 2 {
		t.Fatalf("cache Len = %d, want 2", c.Len())
	}

	// Translation invariance: an identical bar far away must hit the same
	// entries (same relative signature), not add new ones.
	e2 := NewEngine(e.Tech)
	bar2 := bar.Shift(geom.Pt(100000, 50000))
	e2.AddMetal(1, bar2, 9, KindPin, "pin-far")
	e2.AttachViaCache(c)
	qc2 := e2.NewQueryCtx()
	p2 := geom.Pt(100500, 50435)
	if got := e2.CheckViaVerdictCtx(v, p2, 9, []geom.Rect{bar2}, qc2); got != 0 {
		t.Fatalf("translated clean drop verdict = %d, want 0", got)
	}
	if hits := e2.Counters.CacheHits.Load(); hits != 1 {
		t.Fatalf("cross-engine CacheHits = %d, want 1 (shared cache, same signature)", hits)
	}
	if c.Len() != 2 {
		t.Fatalf("cache grew to %d after a translated repeat, want 2", c.Len())
	}
}

// TestViaCacheInvalidationOnRemove checks the eviction path: mutating the
// engine clears the attached cache, and the next query recomputes against the
// new geometry.
func TestViaCacheInvalidationOnRemove(t *testing.T) {
	e, v, bar, c, qc := viaCacheFixture(t)
	p := geom.Pt(500, 435)

	// A foreign bar 60nm above makes the drop dirty.
	blocker := e.AddMetal(1, geom.R(0, 530, 1000, 600), 2, KindPin, "blocker")
	qc = e.NewQueryCtx() // re-size after mutation
	if got := e.CheckViaVerdictCtx(v, p, 1, []geom.Rect{bar}, qc); got == 0 {
		t.Fatal("drop next to foreign pin must be dirty")
	}
	if c.Len() == 0 {
		t.Fatal("verdict was not cached")
	}

	e.Remove(blocker)
	if c.Len() != 0 {
		t.Fatalf("Remove left %d cached verdicts, want 0", c.Len())
	}
	if n := e.Counters.CacheInvalidates.Load(); n < 1 {
		t.Fatalf("CacheInvalidates = %d, want >= 1", n)
	}
	if n := c.Invalidations(); n < 1 {
		t.Fatalf("cache Invalidations = %d, want >= 1", n)
	}

	// Same placement, new world: clean now, and recomputed (a miss).
	misses := e.Counters.CacheMisses.Load()
	if got := e.CheckViaVerdictCtx(v, p, 1, []geom.Rect{bar}, qc); got != 0 {
		t.Fatalf("post-remove verdict = %d, want 0", got)
	}
	if e.Counters.CacheMisses.Load() != misses+1 {
		t.Fatal("post-invalidation lookup did not recompute")
	}
}

// TestViaCacheSingleflight: concurrent first lookups of one key fill the
// cache exactly once, so check counters stay schedule-independent.
func TestViaCacheSingleflight(t *testing.T) {
	e, v, bar, _, _ := viaCacheFixture(t)
	p := geom.Pt(500, 435)

	const workers = 8
	var wg sync.WaitGroup
	verdicts := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qc := e.NewQueryCtx()
			verdicts[i] = e.CheckViaVerdictCtx(v, p, 1, []geom.Rect{bar}, qc)
		}(i)
	}
	wg.Wait()
	for i, got := range verdicts {
		if got != 0 {
			t.Fatalf("worker %d verdict = %d, want 0", i, got)
		}
	}
	if misses := e.Counters.CacheMisses.Load(); misses != 1 {
		t.Fatalf("CacheMisses = %d, want 1 (singleflight)", misses)
	}
	if total := e.Counters.CacheHits.Load() + e.Counters.CacheMisses.Load(); total != workers {
		t.Fatalf("hits+misses = %d, want %d", total, workers)
	}
}

// TestViaCacheBypass: no cache, no query ctx, or an installed fault hook all
// fall back to the live check and never touch the counters.
func TestViaCacheBypass(t *testing.T) {
	tt := tech.N45()
	e := NewEngine(tt)
	bar := geom.R(0, 400, 1000, 470)
	e.AddMetal(1, bar, 1, KindPin, "pin")
	v := tt.ViaByName("VIA1_H")
	p := geom.Pt(500, 435)

	if got := e.CheckViaVerdict(v, p, 1, []geom.Rect{bar}); got != 0 {
		t.Fatalf("uncached verdict = %d, want 0", got)
	}
	c := NewViaCache()
	e.AttachViaCache(c)
	e.FaultHook = func(site string) []Violation { return nil }
	qc := e.NewQueryCtx()
	if got := e.CheckViaVerdictCtx(v, p, 1, []geom.Rect{bar}, qc); got != 0 {
		t.Fatalf("fault-hook verdict = %d, want 0", got)
	}
	if c.Len() != 0 {
		t.Fatal("fault-hooked check must not populate the cache")
	}
	if n := e.Counters.CacheHits.Load() + e.Counters.CacheMisses.Load(); n != 0 {
		t.Fatalf("bypass paths touched cache counters: %d", n)
	}
}

// TestViaCacheScopedEviction pins the surgical invalidation contract: a
// mutation evicts exactly the entries whose recorded query windows overlap
// the mutated rect. An entry far away survives and keeps serving hits.
func TestViaCacheScopedEviction(t *testing.T) {
	e, v, bar, c, qc := viaCacheFixture(t)
	// A second, far-away bar on a different net: its signature differs from
	// the near bar's (different net relation distances), giving a second
	// cache entry with a region around x~50000.
	farBar := geom.R(50000, 400, 51000, 470)
	e.AddMetal(1, farBar, 3, KindPin, "pin-far")
	qc = e.NewQueryCtx()

	pNear, pFar := geom.Pt(500, 435), geom.Pt(50500, 460)
	if got, want := e.CheckViaVerdictCtx(v, pNear, 1, []geom.Rect{bar}, qc), len(e.CheckVia(v, pNear, 1, []geom.Rect{bar})); got != want {
		t.Fatalf("near verdict %d != live %d", got, want)
	}
	if got, want := e.CheckViaVerdictCtx(v, pFar, 3, []geom.Rect{farBar}, qc), len(e.CheckVia(v, pFar, 3, []geom.Rect{farBar})); got != want {
		t.Fatalf("far verdict %d != live %d", got, want)
	}
	if c.Len() != 2 {
		t.Fatalf("cache Len = %d, want 2 distinct signatures", c.Len())
	}

	// Mutate next to the near drop only.
	blocker := e.AddMetal(1, geom.R(0, 530, 1000, 600), 2, KindPin, "blocker")
	if c.Len() != 1 {
		t.Fatalf("scoped eviction left Len = %d, want 1 (near entry only)", c.Len())
	}
	if n := c.ScopedEvicted(); n != 1 {
		t.Fatalf("ScopedEvicted = %d, want 1", n)
	}
	if n := c.WholesaleEvicted(); n != 0 {
		t.Fatalf("WholesaleEvicted = %d, want 0", n)
	}
	if n := e.Counters.CacheEvictScoped.Load(); n != 1 {
		t.Fatalf("drc.viacache.invalidate.scoped = %d, want 1", n)
	}
	if n := e.Counters.CacheEvictWholesale.Load(); n != 0 {
		t.Fatalf("drc.viacache.invalidate.wholesale = %d, want 0", n)
	}

	// The surviving far entry still answers from cache.
	qc = e.NewQueryCtx()
	hits := e.Counters.CacheHits.Load()
	if got, want := e.CheckViaVerdictCtx(v, pFar, 3, []geom.Rect{farBar}, qc), len(e.CheckVia(v, pFar, 3, []geom.Rect{farBar})); got != want {
		t.Fatalf("far verdict after scoped eviction %d != live %d", got, want)
	}
	if e.Counters.CacheHits.Load() != hits+1 {
		t.Fatal("surviving entry did not serve a hit after scoped eviction")
	}
	// The evicted near entry recomputes against the new world.
	misses := e.Counters.CacheMisses.Load()
	if got, want := e.CheckViaVerdictCtx(v, pNear, 1, []geom.Rect{bar}, qc), len(e.CheckVia(v, pNear, 1, []geom.Rect{bar})); got != want {
		t.Fatalf("near verdict after scoped eviction %d != live %d", got, want)
	}
	if e.Counters.CacheMisses.Load() != misses+1 {
		t.Fatal("evicted entry did not recompute")
	}
	_ = blocker
}

// TestViaCacheWholesaleOverflow: more pending mutations than the bounded
// rect list holds degrade to a wholesale flush, booked on the wholesale
// counter rather than the scoped one.
func TestViaCacheWholesaleOverflow(t *testing.T) {
	e, v, bar, c, qc := viaCacheFixture(t)
	p := geom.Pt(500, 435)
	if got := e.CheckViaVerdictCtx(v, p, 1, []geom.Rect{bar}, qc); got != 0 {
		t.Fatalf("verdict = %d, want 0", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache Len = %d, want 1", c.Len())
	}

	// Far more mutations than the pending-rect bound, all far from the entry.
	var ids []int
	for i := 0; i < 300; i++ {
		x := int64(200000 + i*1000)
		ids = append(ids, e.AddMetal(1, geom.R(x, 0, x+100, 70), NoNet, KindObs, ""))
	}
	if c.Len() != 0 {
		t.Fatalf("overflowed invalidation left Len = %d, want 0 (wholesale)", c.Len())
	}
	if n := c.WholesaleEvicted(); n != 1 {
		t.Fatalf("WholesaleEvicted = %d, want 1", n)
	}
	if n := c.ScopedEvicted(); n != 0 {
		t.Fatalf("ScopedEvicted = %d, want 0", n)
	}
	if n := e.Counters.CacheEvictWholesale.Load(); n != 1 {
		t.Fatalf("drc.viacache.invalidate.wholesale = %d, want 1", n)
	}
	_ = ids
}
