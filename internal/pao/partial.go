package pao

// Partial-result primitives for the distributed coordinator/worker flow
// (internal/dist). The pipeline is embarrassingly parallel at two grains —
// unique-instance classes for Steps 1-2 and row clusters for Step 3 — so a
// coordinator can farm out disjoint shards and reassemble one whole Result:
//
//	AnalyzeClasses  worker-side Steps 1-2 for a class-signature subset
//	SliceResult     restrict a Result to a class subset (wire payloads)
//	MergeResults    reassemble partials in design order, first-wins dedup
//	ClusterKey      stable cross-process cluster identity
//	SelectClusters  worker-side Step-3 DP for a cluster-key subset
//
// The merge contract is byte-identity: merging partial results covering all
// classes, then applying the per-cluster selections and the coordinator-local
// failed-pin recount, must re-encode to exactly the snapshot a single-process
// RunContext produces. Everything order-dependent therefore follows the same
// deterministic order RunContext uses (d.UniqueInstances(), d.Clusters()).

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/drc"
)

// foldClass accumulates one analyzed class into the result: the Unique list,
// the per-member instance index, and the class-derived stats. It is the single
// assembly point shared by RunContext, AnalyzeClasses and MergeResults, so a
// merged result cannot drift from the single-process accounting.
func foldClass(res *Result, ui *db.UniqueInstance, ua *UniqueAccess) {
	res.Unique = append(res.Unique, ua)
	for _, inst := range ui.Insts {
		res.ByInstance[inst.ID] = ua
	}
	res.Stats.NumUnique++
	res.Stats.TotalAPs += ua.TotalAPs()
	res.Stats.PatternsBuilt += len(ua.Patterns)
	res.Stats.PatternsDropped += ua.DroppedPatterns
	for _, pa := range ua.Pins {
		for _, ap := range pa.APs {
			if ap.OffTrack() {
				res.Stats.OffTrackAPs++
			}
		}
	}
}

// AnalyzeClasses runs Steps 1 and 2 for exactly the classes named by sigs and
// returns the partial Result (Selected empty, TotalPins/FailedPins zero,
// timing fields zero). Classes are processed in design order regardless of the
// order of sigs; quarantine semantics match RunContext (a panicking class
// lands in Health, the rest of the shard survives). An unknown signature is a
// protocol error — the caller validated the design hash, so it means the
// shard request was built against a different design.
func (a *Analyzer) AnalyzeClasses(ctx context.Context, sigs []string) (*Result, error) {
	want := make(map[string]bool, len(sigs))
	for _, s := range sigs {
		want[s] = true
	}
	var uis []*db.UniqueInstance
	for _, ui := range a.Design.UniqueInstances() {
		if want[ui.Signature()] {
			uis = append(uis, ui)
			delete(want, ui.Signature())
		}
	}
	if len(want) > 0 {
		for s := range want {
			return nil, fmt.Errorf("pao: AnalyzeClasses: class %s not in design", s)
		}
	}
	res := &Result{
		ByInstance: make(map[int]*UniqueAccess),
		Selected:   make(map[int]int),
		Health:     newHealth(),
	}
	uas := make([]*UniqueAccess, len(uis))
	var busy atomic.Int64
	a.runStep12(ctx, uis, uas, nil, &busy, res.Health)
	for i, ui := range uis {
		if uas[i] != nil {
			foldClass(res, ui, uas[i])
		}
	}
	res.indexSignatures(a.Design)
	if err := ctx.Err(); err != nil {
		res.Health.markCancelled()
		return res, err
	}
	return res, nil
}

// SliceResult returns a shallow copy of res restricted to the classes named by
// sigs: the UniqueAccess values are shared (they are read-only after
// analysis), Selected keeps only entries for member instances of kept classes,
// stats are recomputed from the kept classes, and Health keeps only the kept
// classes' statuses and errors. Slicing the wire payload this way keeps
// partial snapshots small and makes slice -> merge the identity on a full
// cover of the class set.
func SliceResult(res *Result, d *db.Design, sigs []string) *Result {
	want := make(map[string]bool, len(sigs))
	for _, s := range sigs {
		want[s] = true
	}
	out := &Result{
		ByInstance: make(map[int]*UniqueAccess),
		Selected:   make(map[int]int),
		Health:     newHealth(),
	}
	for _, ua := range res.Unique {
		if !want[ua.UI.Signature()] {
			continue
		}
		foldClass(out, ua.UI, ua)
		for _, inst := range ua.UI.Insts {
			if idx, ok := res.Selected[inst.ID]; ok {
				out.Selected[inst.ID] = idx
			}
		}
	}
	if res.Health != nil {
		res.Health.mu.Lock()
		for sig, st := range res.Health.classes {
			if want[sig] {
				out.Health.classes[sig] = st
			}
		}
		for _, e := range res.Health.errors {
			if want[e.Signature] {
				out.Health.errors = append(out.Health.errors, e)
			}
		}
		res.Health.mu.Unlock()
	}
	out.indexSignatures(d)
	return out
}

// MergeResults reassembles partial results into one whole. Classes land in
// design order (d.UniqueInstances()) with first-wins dedup — hedged shards
// return identical analyses, so whichever copy arrived first is kept — and the
// class-derived stats are recomputed through the same foldClass accounting
// RunContext uses. Selected entries and health records are unioned (first
// wins for Selected; class statuses keep the worst). TotalPins/FailedPins
// stay zero: the coordinator recounts them against the full design once every
// selection is in place.
func MergeResults(d *db.Design, parts ...*Result) *Result {
	bySig := make(map[string]*UniqueAccess)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, ua := range p.Unique {
			sig := ua.UI.Signature()
			if _, ok := bySig[sig]; !ok {
				bySig[sig] = ua
			}
		}
	}
	res := &Result{
		ByInstance: make(map[int]*UniqueAccess),
		Selected:   make(map[int]int),
		Health:     newHealth(),
	}
	for _, ui := range d.UniqueInstances() {
		if ua := bySig[ui.Signature()]; ua != nil {
			foldClass(res, ui, ua)
		}
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for id, idx := range p.Selected {
			if _, ok := res.Selected[id]; !ok {
				res.Selected[id] = idx
			}
		}
		if p.Health == nil {
			continue
		}
		p.Health.mu.Lock()
		for sig, st := range p.Health.classes {
			if st > res.Health.classes[sig] {
				res.Health.classes[sig] = st
			}
		}
		res.Health.errors = append(res.Health.errors, p.Health.errors...)
		if p.Health.cancelled {
			res.Health.cancelled = true
		}
		res.Health.respawns += p.Health.respawns
		p.Health.mu.Unlock()
	}
	res.indexSignatures(d)
	return res
}

// ClusterKey identifies a row cluster stably across processes: both sides
// derive clusters from the same design with the same deterministic
// d.Clusters(), so the leftmost member's name is a portable shard key.
func ClusterKey(cl db.Cluster) string { return clusterDetail(cl) }

// SeedDefaultSelections sets pattern 0 for every instance that has patterns —
// the Step-3 baseline RunContext starts from before any cluster DP runs. The
// distributed coordinator applies it once to the merged result, then overlays
// the per-cluster picks returned by SelectClusters.
func SeedDefaultSelections(d *db.Design, res *Result) {
	for _, inst := range d.Instances {
		if ua := res.ByInstance[inst.ID]; ua != nil && len(ua.Patterns) > 0 {
			res.Selected[inst.ID] = 0
		}
	}
}

// SelectClusters runs the Step-3 DP for exactly the clusters named by keys
// against the merged result res and the fixed-design engine, returning the
// pattern picks (instance ID -> pattern index) and a Health holding any
// degradation the DP suffered (quarantine semantics match SelectPatterns: a
// panicking cluster degrades its member classes and keeps the default
// pattern). Unknown keys are protocol errors, as in AnalyzeClasses.
func (a *Analyzer) SelectClusters(ctx context.Context, res *Result, eng *drc.Engine, keys []string) (map[int]int, *Health, error) {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	var run []db.Cluster
	for _, cl := range a.Design.Clusters() {
		if k := ClusterKey(cl); want[k] {
			run = append(run, cl)
			delete(want, k)
		}
	}
	if len(want) > 0 {
		for k := range want {
			return nil, nil, fmt.Errorf("pao: SelectClusters: cluster %s not in design", k)
		}
	}
	h := newHealth()
	picks := make(map[int]int)
	qc := eng.NewQueryCtx()
	for _, cl := range run {
		if err := ctx.Err(); err != nil {
			h.markCancelled()
			return picks, h, err
		}
		for inst, ni := range a.safeSelectForCluster(res, eng, cl, qc, h) {
			picks[inst] = ni
		}
	}
	return picks, h, nil
}
