package pao

import (
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
)

// ecoFixture places a row of nine cells from two masters plus a detached cell
// in its own row, and wires a couple of nets so failed-pin accounting has
// terms to count.
func ecoFixture(t *testing.T) (*db.Design, []*db.Instance) {
	t.Helper()
	d := newDesign45("eco")
	ma := &db.Master{Name: "CA", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{sigPin("A", geom.R(0, 455, 280, 525)), sigPin("B", geom.R(280, 875, 560, 945))}}
	mb := &db.Master{Name: "CB", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{sigPin("A", geom.R(140, 455, 420, 525))}}
	mustAdd(t, d, ma)
	mustAdd(t, d, mb)
	var insts []*db.Instance
	for i := 0; i < 9; i++ {
		m := ma
		if i%2 == 1 {
			m = mb
		}
		insts = append(insts, mustPlace(t, d, "u"+string(rune('0'+i)), m, int64(i)*560, 0, geom.OrientN))
	}
	insts = append(insts, mustPlace(t, d, "far", ma, 14000, 2800, geom.OrientN))
	// An off-phase placement so the fixture has a class no one else shares.
	insts = append(insts, mustPlace(t, d, "j0", mb, 70, 2800, geom.OrientN))
	d.Nets = append(d.Nets,
		&db.Net{Name: "n0", Terms: []db.Term{{Inst: insts[0], Pin: ma.Pins[0]}, {Inst: insts[1], Pin: mb.Pins[0]}}},
		&db.Net{Name: "n1", Terms: []db.Term{{Inst: insts[2], Pin: ma.Pins[1]}, {Inst: insts[9], Pin: ma.Pins[0]}}},
	)
	return d, insts
}

func TestECOValidationAllOrNothing(t *testing.T) {
	d, insts := ecoFixture(t)
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	sess := NewECOSession(a, res)

	pos := insts[0].Pos
	cases := []struct {
		name string
		ops  []ECOOp
	}{
		{"unknown move target", []ECOOp{
			{Kind: ECOMove, Inst: "u0", To: geom.Pt(5040, 0)},
			{Kind: ECOMove, Inst: "nope", To: geom.Pt(0, 0)},
		}},
		{"swap with itself", []ECOOp{{Kind: ECOSwap, Inst: "u1", Other: "u1"}}},
		{"duplicate insert", []ECOOp{{Kind: ECOInsert, Inst: "u0", Master: "CA", To: geom.Pt(6160, 0)}}},
		{"unknown master", []ECOOp{{Kind: ECOInsert, Inst: "x0", Master: "NOPE", To: geom.Pt(6160, 0)}}},
		{"move after delete", []ECOOp{
			{Kind: ECODelete, Inst: "u3"},
			{Kind: ECOMove, Inst: "u3", To: geom.Pt(0, 2800)},
		}},
	}
	for _, tc := range cases {
		if _, _, err := sess.Apply(tc.ops); err == nil {
			t.Errorf("%s: Apply succeeded, want error", tc.name)
		}
	}
	// All-or-nothing: the failed scripts must not have touched the design.
	if got := len(d.Instances); got != len(insts) {
		t.Fatalf("instances = %d after rejected scripts, want %d", got, len(insts))
	}
	if insts[0].Pos != pos {
		t.Fatalf("u0 moved by a rejected script: %v", insts[0].Pos)
	}
	if d.InstByName("u3") == nil {
		t.Fatal("u3 deleted by a rejected script")
	}
	// The session must still be usable (no transaction stuck in flight).
	if _, _, err := sess.Apply([]ECOOp{{Kind: ECOMove, Inst: "u0", To: geom.Pt(0, 0)}}); err != nil {
		t.Fatalf("session unusable after rejected scripts: %v", err)
	}
}

func TestECODeleteRemovesInstanceEverywhere(t *testing.T) {
	d, insts := ecoFixture(t)
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	sess := NewECOSession(a, res)

	id := insts[1].ID
	res2, rep, err := sess.Apply([]ECOOp{{Kind: ECODelete, Inst: "u1"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeletedInstances != 1 {
		t.Errorf("DeletedInstances = %d, want 1", rep.DeletedInstances)
	}
	if d.InstByName("u1") != nil {
		t.Error("u1 still resolvable by name")
	}
	if res2.ByInstance[id] != nil {
		t.Error("deleted instance still bound to a class")
	}
	if _, ok := res2.Selected[id]; ok {
		t.Error("deleted instance still has a selection")
	}
	for _, net := range d.Nets {
		for _, term := range net.Terms {
			if term.Inst.ID == id {
				t.Errorf("net %s still has a term on the deleted instance", net.Name)
			}
		}
	}
	// The old result is untouched: its readers still see the pre-ECO class.
	if res.ByInstance[id] == nil {
		t.Error("pre-ECO result lost its binding for the deleted instance")
	}
}

func TestECOInsertCreatesClass(t *testing.T) {
	d, _ := ecoFixture(t)
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	sess := NewECOSession(a, res)

	// An off-phase x lands on a track offset no existing class has.
	res2, rep, err := sess.Apply([]ECOOp{{Kind: ECOInsert, Inst: "nx", Master: "CB", To: geom.Pt(7030, 2800), Orient: geom.OrientN}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewClasses != 1 {
		t.Errorf("NewClasses = %d, want 1", rep.NewClasses)
	}
	inst := d.InstByName("nx")
	if inst == nil {
		t.Fatal("inserted instance not in design")
	}
	ua := res2.ByInstance[inst.ID]
	if ua == nil {
		t.Fatal("inserted instance has no class binding")
	}
	if got, want := ua.UI.Signature(), d.InstanceSignature(inst); got != want {
		t.Errorf("class sig = %s, want %s", got, want)
	}
	if res2.Stats.NumUnique != res.Stats.NumUnique+1 {
		t.Errorf("NumUnique %d -> %d, want +1", res.Stats.NumUnique, res2.Stats.NumUnique)
	}
}

// TestECOSingleMoveScoping pins the headline scoping claim: moving one
// instance re-analyzes far fewer classes than the design has, and re-selects
// far fewer clusters than the design has.
func TestECOSingleMoveScoping(t *testing.T) {
	d, insts := ecoFixture(t)
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	sess := NewECOSession(a, res)

	// Move the detached far cell by one site within its row: same signature,
	// far from everything else.
	_, rep, err := sess.Apply([]ECOOp{{Kind: ECOMove, Inst: "far", To: insts[9].Pos.Add(geom.Pt(560, 0))}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalClasses < 3 {
		t.Fatalf("fixture too small: %d classes", rep.TotalClasses)
	}
	// Site-aligned move keeps the signature, and "far" is not the pivot of
	// its class... unless it is; either way the bound must hold.
	if rep.ReanalyzedClasses > 1 {
		t.Errorf("ReanalyzedClasses = %d on a single site-aligned move, want <= 1", rep.ReanalyzedClasses)
	}
	if rep.DirtyClusters >= rep.TotalClusters {
		t.Errorf("DirtyClusters = %d of %d, want a strict subset", rep.DirtyClusters, rep.TotalClusters)
	}
	if rep.AffectedInstances != 1 {
		t.Errorf("AffectedInstances = %d, want 1", rep.AffectedInstances)
	}
}

// TestECOMatchesFreshRun applies a mixed script and checks the merged result
// against a from-scratch analysis of the same mutated design — selection and
// failed-pin accounting included. (The byte-identical snapshot gate lives in
// internal/difftest; this is the in-package structural version.)
func TestECOMatchesFreshRun(t *testing.T) {
	d, insts := ecoFixture(t)
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	sess := NewECOSession(a, res)

	ops := []ECOOp{
		{Kind: ECOMove, Inst: "u0", To: geom.Pt(5600, 0)}, // append to row end
		{Kind: ECOSwap, Inst: "u1", Other: "u2"},
		{Kind: ECOInsert, Inst: "nx", Master: "CA", To: geom.Pt(8400, 0), Orient: geom.OrientN},
		{Kind: ECODelete, Inst: "u5"},
	}
	res2, _, err := sess.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewAnalyzer(d, DefaultConfig()).Run()
	if res2.Stats.Counts() != fresh.Stats.Counts() {
		t.Errorf("stats diverge:\neco:   %+v\nfresh: %+v", res2.Stats.Counts(), fresh.Stats.Counts())
	}
	if len(res2.Selected) != len(fresh.Selected) {
		t.Errorf("selected sizes: eco %d, fresh %d", len(res2.Selected), len(fresh.Selected))
	}
	for id, ni := range fresh.Selected {
		if got, ok := res2.Selected[id]; !ok || got != ni {
			t.Errorf("instance %d: selected %d (present %v), fresh %d", id, got, ok, ni)
		}
	}
	for _, inst := range d.Instances {
		fua, eua := fresh.ByInstance[inst.ID], res2.ByInstance[inst.ID]
		if (fua == nil) != (eua == nil) {
			t.Errorf("%s: binding mismatch (fresh %v, eco %v)", inst.Name, fua != nil, eua != nil)
			continue
		}
		if fua == nil {
			continue
		}
		if fua.UI.Signature() != eua.UI.Signature() {
			t.Errorf("%s: sig %s vs %s", inst.Name, eua.UI.Signature(), fua.UI.Signature())
		}
	}
	for _, net := range d.Nets {
		for _, term := range net.Terms {
			fap, eap := fresh.AccessPointFor(term.Inst, term.Pin), res2.AccessPointFor(term.Inst, term.Pin)
			if (fap == nil) != (eap == nil) {
				t.Errorf("%s/%s: AP presence mismatch", term.Inst.Name, term.Pin.Name)
				continue
			}
			if fap != nil && (fap.Pos != eap.Pos || fap.Layer != eap.Layer) {
				t.Errorf("%s/%s: AP %v/%d vs fresh %v/%d",
					term.Inst.Name, term.Pin.Name, eap.Pos, eap.Layer, fap.Pos, fap.Layer)
			}
		}
	}
	_ = insts
}
