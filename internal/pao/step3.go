package pao

import (
	"context"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
)

// SelectPatterns implements Step 3: cluster-based access pattern selection.
// Instances are grouped into row clusters (maximal runs with no empty site
// between); within each cluster a DP identical in shape to Algorithm 2 runs
// with instances as groups and access patterns as vertices. Only boundary
// access points (the first and last pins in the pin order) join the DRC
// terms, per Section III-C's acceleration note:
//
//   - vertex cost: the pattern's intrinsic cost plus DRC cost for each
//     boundary via that conflicts with the design's fixed shapes (pins and
//     obstructions of neighboring instances — the isolated Step-1 context
//     could not see those);
//   - edge cost: DRC cost when the facing boundary vias of neighboring
//     instances are incompatible.
//
// Instances outside clusters (and macros) keep their first pattern.
func (a *Analyzer) SelectPatterns(res *Result, eng *drc.Engine) {
	h := res.Health
	if h == nil {
		h = newHealth()
	}
	a.selectPatterns(context.Background(), res, eng, h)
}

// selectPatterns is SelectPatterns under a context: cancellation stops at the
// next cluster boundary (instances then keep the default pattern 0) and a
// panicking cluster DP degrades its member classes instead of crashing.
func (a *Analyzer) selectPatterns(ctx context.Context, res *Result, eng *drc.Engine, h *Health) {
	for _, inst := range a.Design.Instances {
		if ua := res.ByInstance[inst.ID]; ua != nil && len(ua.Patterns) > 0 {
			res.Selected[inst.ID] = 0
		}
	}
	clusters := a.Design.Clusters()
	workers := a.Cfg.workers()
	if workers == 1 || len(clusters) < 2*workers {
		qc := eng.NewQueryCtx()
		for _, cl := range clusters {
			if ctx.Err() != nil || a.abort(h) {
				return
			}
			for inst, ni := range a.safeSelectForCluster(res, eng, cl, qc, h) {
				res.Selected[inst] = ni
			}
		}
		return
	}
	// Clusters are disjoint, and the engine is only read — fan out and merge
	// the per-cluster selections afterwards.
	reg := a.Obs.Reg()
	picks := make([]map[int]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var t0 time.Time
			if reg != nil {
				t0 = time.Now()
			}
			qc := eng.NewQueryCtx()
			local := make(map[int]int)
			for i := w; i < len(clusters); i += workers {
				if ctx.Err() != nil || a.abort(h) {
					break
				}
				for inst, ni := range a.safeSelectForCluster(res, eng, clusters[i], qc, h) {
					local[inst] = ni
				}
			}
			picks[w] = local
			if reg != nil {
				reg.Histogram("pao.step3.worker.busy").Observe(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	for _, m := range picks {
		for inst, ni := range m {
			res.Selected[inst] = ni
		}
	}
}

// clusterDetail identifies a cluster for fault hooks and error reports by
// its leftmost instance.
func clusterDetail(cl db.Cluster) string {
	if len(cl.Insts) == 0 {
		return "cluster:empty"
	}
	return "cluster:" + cl.Insts[0].Name
}

// safeSelectForCluster runs the Step-3 DP for one cluster with panic
// quarantine: on a panic every member class is downgraded to degraded (the
// default pattern 0 from Step 2 remains in effect) and the run continues.
func (a *Analyzer) safeSelectForCluster(res *Result, eng *drc.Engine, cl db.Cluster,
	qc *drc.QueryCtx, h *Health) (picks map[int]int) {

	defer func() {
		if r := recover(); r != nil {
			picks = nil
			h.record(&PipelineError{
				Step: StepSelect, Signature: clusterDetail(cl),
				Recovered: r, Stack: string(debug.Stack()),
			})
			for _, inst := range cl.Insts {
				if ua := res.ByInstance[inst.ID]; ua != nil {
					h.degradeClass(ua.UI.Signature())
				}
			}
		}
	}()
	if hook := a.FaultHook; hook != nil {
		hook(SiteSelectCluster, clusterDetail(cl))
	}
	return a.selectForCluster(res, eng, cl, qc)
}

// boundaryAPInfo is a boundary access point translated onto a member
// instance.
type boundaryAPInfo struct {
	ap  *AccessPoint
	pos geom.Point
	net int
	pin *db.MPin
}

// chosenAPs returns the pattern's chosen access points on the given member
// instance, in pin order. boundaryOnly restricts it to the first and last
// (they coincide for single-pin cells).
func (a *Analyzer) chosenAPs(res *Result, inst *db.Instance, pat *AccessPattern, boundaryOnly bool) []boundaryAPInfo {
	ua := res.ByInstance[inst.ID]
	if ua == nil || pat == nil {
		return nil
	}
	var idxs []int
	for i, c := range pat.Choice {
		if c >= 0 {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	if boundaryOnly {
		pick := []int{idxs[0]}
		if last := idxs[len(idxs)-1]; last != idxs[0] {
			pick = append(pick, last)
		}
		idxs = pick
	}
	out := make([]boundaryAPInfo, 0, len(idxs))
	for _, i := range idxs {
		ap := ua.Pins[i].APs[pat.Choice[i]]
		out = append(out, boundaryAPInfo{
			ap:  ap,
			pos: ua.TranslateTo(inst, ap.Pos),
			net: a.NetOf(inst, ua.Pins[i].Pin),
			pin: ua.Pins[i].Pin,
		})
	}
	return out
}

// boundaryAPs returns the first and last chosen access points of a pattern on
// the given member instance.
func (a *Analyzer) boundaryAPs(res *Result, inst *db.Instance, pat *AccessPattern) []boundaryAPInfo {
	return a.chosenAPs(res, inst, pat, true)
}

// vertexCost scores one (instance, pattern) choice against the fixed design
// context: every chosen via is re-validated with the global engine, which
// catches spacing and end-of-line conflicts with neighboring instances that
// the isolated Step-1 context could not see. (The paper's boundary-only
// acceleration applies to the pattern-to-pattern via checks — edgeCost3 —
// not to this fixed-environment term; inner pins near a cell edge conflict
// with neighbors too.)
func (a *Analyzer) vertexCost(res *Result, eng *drc.Engine, inst *db.Instance, pat *AccessPattern, ctx *drc.QueryCtx) int {
	cost := pat.Cost
	for _, b := range a.chosenAPs(res, inst, pat, false) {
		if b.ap.Primary() == nil {
			continue
		}
		pinRects := pinRectsOnLayer(inst, b.pin, b.ap.Layer)
		cost += a.Cfg.DRCCost * eng.CheckViaVerdictCtx(b.ap.Primary(), b.pos, b.net, pinRects, ctx)
	}
	return cost
}

// edgeCost3 scores the interaction between the right boundary via of left
// (pattern lp) and the left boundary via of right (pattern rp).
func (a *Analyzer) edgeCost3(res *Result, left *db.Instance, lp *AccessPattern, right *db.Instance, rp *AccessPattern) int {
	lb := a.boundaryAPs(res, left, lp)
	rb := a.boundaryAPs(res, right, rp)
	if len(lb) == 0 || len(rb) == 0 {
		return 0
	}
	l := lb[len(lb)-1] // rightmost boundary AP of the left instance
	r := rb[0]         // leftmost boundary AP of the right instance
	if !a.pairClean(l.ap.Primary(), l.pos, l.net, r.ap.Primary(), r.pos, r.net) {
		return a.Cfg.DRCCost
	}
	return 0
}

// selectForCluster runs the Step-3 DP over one cluster and returns the
// selected pattern index per instance ID (written by the caller, so the DP
// itself never touches shared state).
func (a *Analyzer) selectForCluster(res *Result, eng *drc.Engine, cl db.Cluster, ctx *drc.QueryCtx) map[int]int {
	var insts []*db.Instance
	for _, inst := range cl.Insts {
		if ua := res.ByInstance[inst.ID]; ua != nil && len(ua.Patterns) > 0 {
			insts = append(insts, inst)
		}
	}
	if len(insts) == 0 {
		return nil
	}
	pats := func(inst *db.Instance) []*AccessPattern { return res.ByInstance[inst.ID].Patterns }

	dp := make([][]dpVertex, len(insts))
	for gi, inst := range insts {
		ps := pats(inst)
		dp[gi] = make([]dpVertex, len(ps))
		for ni, p := range ps {
			vc := a.vertexCost(res, eng, inst, p, ctx)
			if gi == 0 {
				dp[0][ni] = dpVertex{cost: vc, prev: -1}
				continue
			}
			best, bestPrev := math.MaxInt, -1
			prevInst := insts[gi-1]
			for pi, pp := range pats(prevInst) {
				if dp[gi-1][pi].cost == math.MaxInt {
					continue
				}
				c := dp[gi-1][pi].cost + vc + a.edgeCost3(res, prevInst, pp, inst, p)
				if c < best {
					best, bestPrev = c, pi
				}
			}
			dp[gi][ni] = dpVertex{cost: best, prev: bestPrev}
		}
	}
	bestNi, bestCost := -1, math.MaxInt
	for ni, v := range dp[len(insts)-1] {
		if v.cost < bestCost {
			bestCost, bestNi = v.cost, ni
		}
	}
	out := make(map[int]int, len(insts))
	for gi := len(insts) - 1; gi >= 0 && bestNi >= 0; gi-- {
		out[insts[gi].ID] = bestNi
		bestNi = dp[gi][bestNi].prev
	}
	if rec := a.Rec; rec != nil {
		for _, inst := range insts {
			if ni, ok := out[inst.ID]; ok {
				rec.RecordSelection(inst.ID, ni, bestCost)
			}
		}
	}
	return out
}

// CountFailedPins fills Stats.TotalPins and Stats.FailedPins: every instance
// pin attached to a net needs a DRC-clean access point; the selected primary
// vias of all pins are placed together with the design's fixed shapes and
// each is re-validated in that full context (the Table III metric). The
// engine is mutated (vias are added) — pass a fresh or end-of-life engine.
func (a *Analyzer) CountFailedPins(res *Result, eng *drc.Engine) {
	h := res.Health
	if h == nil {
		h = newHealth()
	}
	a.countFailedPins(context.Background(), res, eng, h)
}

// countFailedPins is CountFailedPins under a context (cancellation is checked
// periodically inside both the placement and validation loops; the stats then
// reflect the pins validated so far) with whole-phase panic quarantine.
func (a *Analyzer) countFailedPins(ctx context.Context, res *Result, eng *drc.Engine, h *Health) {
	defer func() {
		if r := recover(); r != nil {
			h.record(&PipelineError{
				Step: StepFailedPins, Recovered: r, Stack: string(debug.Stack()),
			})
		}
	}()
	if hook := a.FaultHook; hook != nil {
		hook(SiteFailedPins, "")
	}
	type placed struct {
		inst *db.Instance
		pin  *db.MPin
		ap   *AccessPoint
		net  int
	}
	var all []placed
	total := 0
	failed := 0
place:
	for _, net := range a.Design.Nets {
		for _, t := range net.Terms {
			if total%256 == 0 && ctx.Err() != nil {
				break place
			}
			total++
			ap := res.AccessPointFor(t.Inst, t.Pin)
			if ap == nil {
				failed++
				continue
			}
			if ap.Primary() == nil {
				// Planar-only access (macro pins): the point was validated in
				// Step 1 and places no via, so it cannot conflict here.
				continue
			}
			n := a.NetOf(t.Inst, t.Pin)
			v := ap.Primary()
			eng.AddMetal(v.CutBelow, v.BotRect(ap.Pos), n, drc.KindViaEnc, "")
			eng.AddMetal(v.CutBelow+1, v.TopRect(ap.Pos), n, drc.KindViaEnc, "")
			for _, cut := range v.CutRects(ap.Pos) {
				eng.AddCut(v.CutBelow, cut, n, "")
			}
			all = append(all, placed{t.Inst, t.Pin, ap, n})
		}
	}
	// The validation pass is read-only over the frozen engine; fold the
	// placement churn into the dense index, then fan out when the analyzer is
	// configured for multi-threading.
	eng.Compact()
	workers := a.Cfg.workers()
	if workers == 1 {
		qc := eng.NewQueryCtx()
		for i, p := range all {
			if i%64 == 0 && ctx.Err() != nil {
				break
			}
			pinRects := pinRectsOnLayer(p.inst, p.pin, p.ap.Layer)
			if eng.CheckViaVerdictCtx(p.ap.Primary(), p.ap.Pos, p.net, pinRects, qc) > 0 {
				failed++
			}
		}
	} else {
		reg := a.Obs.Reg()
		counts := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var t0 time.Time
				if reg != nil {
					t0 = time.Now()
				}
				qc := eng.NewQueryCtx()
				for i := w; i < len(all); i += workers {
					if ctx.Err() != nil {
						break
					}
					p := all[i]
					pinRects := pinRectsOnLayer(p.inst, p.pin, p.ap.Layer)
					if eng.CheckViaVerdictCtx(p.ap.Primary(), p.ap.Pos, p.net, pinRects, qc) > 0 {
						counts[w]++
					}
				}
				if reg != nil {
					reg.Histogram("pao.failedpins.worker.busy").Observe(time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		for _, c := range counts {
			failed += c
		}
	}
	res.Stats.TotalPins = total
	res.Stats.FailedPins = failed
}
