package pao

import (
	"sort"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/tech"
)

// genAccessPoints implements Algorithm 1: pin-based access point generation.
// Candidate coordinates are enumerated per coordinate type — all four types
// for the layer's preferred direction, the first three for the non-preferred
// direction — in cost order, validated with the DRC engine, and the loop
// early-terminates once at least Cfg.K valid points exist.
func (a *Analyzer) genAccessPoints(eng *drc.Engine, qc *drc.QueryCtx, pivot *db.Instance, pin *db.MPin, net int) *PinAccess {
	pa := &PinAccess{Pin: pin}
	layers := pinLayers(pivot, pin)
	for _, layer := range layers {
		a.genAccessPointsOnLayer(eng, qc, pivot, pin, net, layer, pa)
		if len(pa.APs) >= a.Cfg.K {
			break
		}
	}
	return pa
}

// pinLayers lists the metal numbers carrying pin shapes, ascending (lower
// layers first: via access from the lowest pin layer is the common case).
func pinLayers(inst *db.Instance, pin *db.MPin) []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range pin.Shapes {
		if !seen[s.Layer] {
			seen[s.Layer] = true
			out = append(out, s.Layer)
		}
	}
	_ = inst
	sort.Ints(out)
	return out
}

// coordCandidates holds the per-type candidate coordinates for one axis of
// one maximal pin rectangle.
type coordCandidates [4][]int64

func (a *Analyzer) genAccessPointsOnLayer(eng *drc.Engine, qc *drc.QueryCtx, pivot *db.Instance, pin *db.MPin, net, layer int, pa *PinAccess) {
	l := a.Design.Tech.Metal(layer)
	if l == nil {
		return
	}
	rects := geom.MaxRects(pinRectsOnLayer(pivot, pin, layer))
	if len(rects) == 0 {
		return
	}
	allPinRects := pinRectsOnLayer(pivot, pin, layer)
	vias := a.Design.Tech.ViasAbove(layer)

	prefTracks, _ := a.Design.TracksFor(layer)
	nonPrefTracks := a.nonPreferredTracks(layer)

	// Per maximal rect, candidates for the preferred-direction coordinate
	// (all four types) and the non-preferred one (first three types).
	prefCands := make([]coordCandidates, len(rects))
	nonPrefCands := make([]coordCandidates, len(rects))
	for i, r := range rects {
		var prefLo, prefHi, npLo, npHi int64
		if l.Dir == tech.Horizontal {
			prefLo, prefHi = r.SpanY()
			npLo, npHi = r.SpanX()
		} else {
			prefLo, prefHi = r.SpanX()
			npLo, npHi = r.SpanY()
		}
		prefCands[i] = a.axisCandidates(prefTracks, prefLo, prefHi, vias, l.Dir, true)
		nonPrefCands[i] = a.axisCandidates(nonPrefTracks, npLo, npHi, nil, l.Dir, false)
	}

	seen := make(map[geom.Point]bool, 8)
	// Algorithm 1 main loop: non-preferred type outer, preferred type inner,
	// both in ascending cost order.
	for _, t1 := range [...]CoordType{OnTrack, HalfTrack, ShapeCenter} {
		if !a.Cfg.typeAllowed(t1) {
			continue
		}
		for _, t0 := range [...]CoordType{OnTrack, HalfTrack, ShapeCenter, EncBoundary} {
			if !a.Cfg.typeAllowed(t0) {
				continue
			}
			for i := range rects {
				for _, pc := range prefCands[i][t0] {
					for _, nc := range nonPrefCands[i][t1] {
						pt := geom.Pt(nc, pc)
						if l.Dir == tech.Vertical {
							pt = geom.Pt(pc, nc)
						}
						if seen[pt] {
							continue
						}
						seen[pt] = true
						ap := a.validateAP(eng, qc, pt, layer, net, pin.Name, allPinRects, vias, pivot.Master.Class, t0, t1, l.Dir)
						if ap != nil {
							pa.APs = append(pa.APs, ap)
						}
					}
				}
			}
			if len(pa.APs) >= a.Cfg.K {
				return
			}
		}
	}
}

// nonPreferredTracks returns the track coordinates used for a layer's
// non-preferred direction. Per Section II-C, the upper layer's preferred
// tracks serve as the current layer's non-preferred tracks so that on-track
// up-via access aligns to both layers; a design-provided non-preferred
// pattern on the layer itself takes precedence.
func (a *Analyzer) nonPreferredTracks(layer int) []db.TrackPattern {
	_, nonPref := a.Design.TracksFor(layer)
	if len(nonPref) > 0 {
		return nonPref
	}
	upPref, _ := a.Design.TracksFor(layer + 1)
	return upPref
}

// axisCandidates computes the candidate coordinates of each type along one
// axis within [lo, hi] (the maximal rectangle's span on that axis).
//
//   - OnTrack: every track coordinate inside the span;
//   - HalfTrack: midpoints between neighboring tracks inside the span;
//   - ShapeCenter: the span midpoint, skipped when the span touches two or
//     more tracks (Section II-C's rule for limiting unique off-track coords);
//   - EncBoundary (preferred axis only): coordinates aligning each via
//     variant's bottom-enclosure edge with the span boundary.
func (a *Analyzer) axisCandidates(tracks []db.TrackPattern, lo, hi int64, vias []*tech.ViaDef, layerDir tech.Dir, preferred bool) coordCandidates {
	var out coordCandidates
	onTrackCount := 0
	for _, tp := range tracks {
		for _, c := range tp.CoordsIn(lo, hi) {
			out[OnTrack] = append(out[OnTrack], c)
			onTrackCount++
		}
		// Half-track: midpoints of neighboring tracks whose midpoint falls
		// inside the span.
		for _, c := range tp.CoordsIn(lo-tp.Step, hi) {
			m := c + tp.Step/2
			if m >= lo && m <= hi {
				out[HalfTrack] = append(out[HalfTrack], m)
			}
		}
	}
	if onTrackCount < 2 {
		out[ShapeCenter] = append(out[ShapeCenter], (lo+hi)/2)
	}
	if preferred {
		seen := map[int64]bool{}
		for _, v := range vias {
			// The bottom enclosure's span on this axis, relative to origin.
			var encLo, encHi int64
			if layerDir == tech.Horizontal { // preferred coord is y
				encLo, encHi = v.BotEnc.YL, v.BotEnc.YH
			} else {
				encLo, encHi = v.BotEnc.XL, v.BotEnc.XH
			}
			for _, c := range [...]int64{lo - encLo, hi - encHi} {
				if c >= lo && c <= hi && !seen[c] {
					seen[c] = true
					out[EncBoundary] = append(out[EncBoundary], c)
				}
			}
		}
		sort.Slice(out[EncBoundary], func(i, j int) bool { return out[EncBoundary][i] < out[EncBoundary][j] })
	}
	for t := OnTrack; t <= HalfTrack; t++ {
		s := out[t]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return out
}

// validateAP checks one candidate point: it must lie on the pin shape, and a
// via must drop DRC-free (up access) and/or a planar escape stub must be
// DRC-clean. Standard cells require via access when Cfg.RequireVia is set
// (footnote 1); macro pins accept planar-only access points.
//
// When a.Rec is attached (explain path) every decision — including rejects —
// is recorded with per-via verdict provenance; with Rec nil the function is
// byte-for-byte the plain validation loop.
func (a *Analyzer) validateAP(eng *drc.Engine, qc *drc.QueryCtx, pt geom.Point, layer, net int, pinName string,
	pinRects []geom.Rect, vias []*tech.ViaDef, class db.MasterClass, t0, t1 CoordType, dir tech.Dir) *AccessPoint {

	rec := a.Rec
	if !geom.CoversPt(pinRects, pt) {
		if rec != nil {
			rec.RecordAP(pinName, apAudit(pt, layer, t0, t1, dir, RejectOffPin, nil, nil))
		}
		return nil
	}
	ap := &AccessPoint{Pos: pt, Layer: layer, OnPref: t0}
	if dir == tech.Horizontal {
		ap.TypeY, ap.TypeX = t0, t1
	} else {
		ap.TypeX, ap.TypeY = t0, t1
	}
	// Up (via) access: collect the DRC-clean via variants; the first valid
	// one is primary. The verdict cache short-circuits repeats of the same
	// local geometry across candidate points and unique-instance classes.
	var viaAudits []ViaAudit
	for _, v := range vias {
		if rec == nil {
			if eng.CheckViaVerdictCtx(v, pt, net, pinRects, qc) == 0 {
				ap.Vias = append(ap.Vias, v)
			}
			continue
		}
		verdict, cached := eng.CheckViaVerdictProvCtx(v, pt, net, pinRects, qc)
		viaAudits = append(viaAudits, ViaAudit{Via: v.Name, Violations: verdict, FromCache: cached})
		if verdict == 0 {
			ap.Vias = append(ap.Vias, v)
		}
	}
	if len(ap.Vias) > 0 {
		ap.Dirs[DirUp] = true
	}
	// Planar access in the four compass directions: a wire stub from the
	// point outward must be spacing-clean against the cell context.
	l := a.Design.Tech.Metal(layer)
	hw := l.Width / 2
	ext := 2 * l.Pitch
	stubs := [...]struct {
		d AccessDir
		r geom.Rect
	}{
		{DirEast, geom.R(pt.X, pt.Y-hw, pt.X+ext, pt.Y+hw)},
		{DirWest, geom.R(pt.X-ext, pt.Y-hw, pt.X, pt.Y+hw)},
		{DirNorth, geom.R(pt.X-hw, pt.Y, pt.X+hw, pt.Y+ext)},
		{DirSouth, geom.R(pt.X-hw, pt.Y-ext, pt.X+hw, pt.Y)},
	}
	for _, s := range stubs {
		if len(eng.CheckMetalRectCtx(layer, s.r, net, qc)) == 0 {
			ap.Dirs[s.d] = true
		}
	}
	if a.Cfg.RequireVia && class == db.ClassCore && !ap.Dirs[DirUp] {
		if rec != nil {
			rec.RecordAP(pinName, apAudit(pt, layer, t0, t1, dir, RejectViaRequired, viaAudits, ap))
		}
		return nil
	}
	if !ap.Dirs[DirUp] && !ap.Dirs[DirEast] && !ap.Dirs[DirWest] && !ap.Dirs[DirNorth] && !ap.Dirs[DirSouth] {
		if rec != nil {
			rec.RecordAP(pinName, apAudit(pt, layer, t0, t1, dir, RejectNoAccess, viaAudits, ap))
		}
		return nil
	}
	if rec != nil {
		rec.RecordAP(pinName, apAudit(pt, layer, t0, t1, dir, "", viaAudits, ap))
	}
	return ap
}

// apAudit assembles the decision record for one candidate point; ap may be
// nil when the candidate was rejected before validation started.
func apAudit(pt geom.Point, layer int, t0, t1 CoordType, dir tech.Dir, reject string,
	vias []ViaAudit, ap *AccessPoint) APAudit {

	au := APAudit{
		X: pt.X, Y: pt.Y, Layer: layer,
		Accepted: reject == "", Reject: reject, Vias: vias,
	}
	if dir == tech.Horizontal {
		au.TypeY, au.TypeX = t0.String(), t1.String()
	} else {
		au.TypeX, au.TypeY = t0.String(), t1.String()
	}
	if ap != nil {
		for d := DirUp; d <= DirSouth; d++ {
			if ap.Dirs[d] {
				au.Dirs = append(au.Dirs, d.String())
			}
		}
	}
	return au
}
