package pao

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/tech"
)

// orderPins sorts a unique instance's pins by x_avg + alpha*y_avg of their
// access points (Section III-B, Figure 5), ties broken by pin name. The
// first and last pins in this order are the boundary pins.
func (a *Analyzer) orderPins(ua *UniqueAccess) {
	for _, pa := range ua.Pins {
		x, y := pa.AvgPos()
		pa.SortKey = x + a.Cfg.Alpha*y
		if len(pa.APs) == 0 {
			pa.SortKey = math.Inf(1) // pins without access sort last
		}
	}
	sort.SliceStable(ua.Pins, func(i, j int) bool {
		if ua.Pins[i].SortKey != ua.Pins[j].SortKey {
			return ua.Pins[i].SortKey < ua.Pins[j].SortKey
		}
		return ua.Pins[i].Pin.Name < ua.Pins[j].Pin.Name
	})
}

// ViaPairClean reports whether two placed vias are mutually DRC-compatible:
// their metal enclosures respect spacing on every shared layer and their cuts
// respect cut spacing. This is the isDRCClean predicate of Algorithm 3 (only
// up-vias are checked, per the acceleration notes in Sections III-B/III-C).
func ViaPairClean(t *tech.Technology, v1 *tech.ViaDef, p1 geom.Point, n1 int, v2 *tech.ViaDef, p2 geom.Point, n2 int) bool {
	if v1 == nil || v2 == nil {
		return true
	}
	type lr struct {
		layer int
		r     geom.Rect
	}
	m1 := []lr{{v1.CutBelow, v1.BotRect(p1)}, {v1.CutBelow + 1, v1.TopRect(p1)}}
	m2 := []lr{{v2.CutBelow, v2.BotRect(p2)}, {v2.CutBelow + 1, v2.TopRect(p2)}}
	for _, s1 := range m1 {
		for _, s2 := range m2 {
			if s1.layer != s2.layer {
				continue
			}
			l := t.Metal(s1.layer)
			if len(drc.CheckMetalPairRects(l, s1.r, n1, s2.r, n2)) > 0 {
				return false
			}
			if len(drc.CheckEOLPairRects(l, s1.r, n1, s2.r, n2)) > 0 {
				return false
			}
		}
	}
	if v1.CutBelow == v2.CutBelow {
		c := t.Cut(v1.CutBelow)
		for _, r1 := range v1.CutRects(p1) {
			for _, r2 := range v2.CutRects(p2) {
				if len(drc.CheckCutPairRects(c, r1, r2)) > 0 {
					return false
				}
			}
		}
	}
	return true
}

// apPairClean applies ViaPairClean (through the analyzer's pair memo) to the
// primary vias of two access points. Access points without a via (planar-only)
// never conflict here.
func (a *Analyzer) apPairClean(ap1, ap2 *AccessPoint, net1, net2 int) bool {
	return a.pairClean(ap1.Primary(), ap1.Pos, net1, ap2.Primary(), ap2.Pos, net2)
}

// dpVertex is one cell of the Algorithm 2 DP array.
type dpVertex struct {
	cost int
	prev int // AP index in the previous group, -1 at the first group
}

// genPatterns implements the iterative access pattern generation flow
// (Figure 4): run the DP up to MaxPatterns times, penalizing boundary access
// points already used by earlier patterns (boundary conflict awareness), and
// validate each resulting pattern for unseen DRCs between non-neighboring
// access points.
func (a *Analyzer) genPatterns(ua *UniqueAccess) {
	groups := activeGroups(ua)
	if len(groups) == 0 {
		return
	}
	used := make(map[*AccessPoint]bool)
	seenPatterns := make(map[string]bool)
	rec := a.Rec
	for it := 0; it < a.Cfg.MaxPatterns; it++ {
		choice := a.dpOnce(ua, groups, used)
		key := patternKey(choice)
		if seenPatterns[key] {
			if rec != nil {
				rec.RecordPattern(patternAudit(it, choice, a.patternCost(ua, choice), "duplicate", -1))
			}
			break // no diversity left; further iterations would repeat
		}
		seenPatterns[key] = true
		// Mark boundary APs used regardless of validation outcome so the next
		// iteration explores different boundary choices.
		first, last := groups[0], groups[len(groups)-1]
		if choice[first] >= 0 {
			used[ua.Pins[first].APs[choice[first]]] = true
		}
		if choice[last] >= 0 {
			used[ua.Pins[last].APs[choice[last]]] = true
		}
		pat := &AccessPattern{Choice: choice, Cost: a.patternCost(ua, choice)}
		if !a.validatePattern(ua, choice) {
			ua.DroppedPatterns++
			if rec != nil {
				rec.RecordPattern(patternAudit(it, choice, pat.Cost, "drc-conflict", -1))
			}
			continue
		}
		ua.Patterns = append(ua.Patterns, pat)
		if rec != nil {
			rec.RecordPattern(patternAudit(it, choice, pat.Cost, "", len(ua.Patterns)-1))
		}
	}
}

// patternAudit assembles the decision record for one DP iteration, copying
// the choice vector so the audit stays valid after the pattern mutates.
func patternAudit(it int, choice []int, cost int, reason string, index int) PatternAudit {
	return PatternAudit{
		Iteration: it,
		Choice:    append([]int(nil), choice...),
		Cost:      cost,
		Accepted:  reason == "",
		Reason:    reason,
		Index:     index,
	}
}

// RegenPatterns discards and regenerates a class's Step-2 access patterns
// (pattern DP plus whole-pattern DRC validation) against the analyzer's
// current caches. It exists for benchmarking: Step 2 can be re-run warm or
// cold without repeating Step-1 access point generation.
func (a *Analyzer) RegenPatterns(ua *UniqueAccess) {
	ua.Patterns = nil
	ua.DroppedPatterns = 0
	a.genPatterns(ua)
}

// activeGroups returns the ordered-pin indexes that have at least one access
// point; pins with none cannot join the graph.
func activeGroups(ua *UniqueAccess) []int {
	var out []int
	for i, pa := range ua.Pins {
		if len(pa.APs) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// patternKey encodes a choice vector for pattern dedup. Indices are written
// in full decimal (the old single-byte encoding truncated at 8 bits, so
// choices differing by 256 — or index 255 vs. the -1 sentinel — collided and
// distinct patterns were silently dropped as duplicates).
func patternKey(choice []int) string {
	b := make([]byte, 0, len(choice)*4)
	for _, c := range choice {
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, ',')
	}
	return string(b)
}

// dpOnce runs Algorithm 2 once: a forward DP over the layered access point
// graph with Algorithm 3 edge costs, returning the traceback as a choice
// vector over ordered pins (-1 for pins without access points).
func (a *Analyzer) dpOnce(ua *UniqueAccess, groups []int, used map[*AccessPoint]bool) []int {
	n := len(groups)
	dp := make([][]dpVertex, n)
	for gi, pinIdx := range groups {
		aps := ua.Pins[pinIdx].APs
		dp[gi] = make([]dpVertex, len(aps))
		if gi == 0 {
			for ni, ap := range aps {
				c := ap.Cost()
				if a.Cfg.BCA && used[ap] {
					c += a.Cfg.PenaltyCost
				}
				dp[0][ni] = dpVertex{cost: c, prev: -1}
			}
			continue
		}
		prevAPs := ua.Pins[groups[gi-1]].APs
		for ni := range aps {
			best := math.MaxInt
			bestPrev := -1
			for pi := range prevAPs {
				if dp[gi-1][pi].cost == math.MaxInt {
					continue
				}
				c := dp[gi-1][pi].cost + a.edgeCost(ua, groups, dp, gi, pi, ni, used)
				if c < best {
					best = c
					bestPrev = pi
				}
			}
			dp[gi][ni] = dpVertex{cost: best, prev: bestPrev}
		}
	}
	// Traceback from the cheapest final vertex.
	lastGroup := n - 1
	bestNi, bestCost := -1, math.MaxInt
	for ni, v := range dp[lastGroup] {
		if v.cost < bestCost {
			bestCost = v.cost
			bestNi = ni
		}
	}
	choice := make([]int, len(ua.Pins))
	for i := range choice {
		choice[i] = -1
	}
	for gi := lastGroup; gi >= 0 && bestNi >= 0; gi-- {
		choice[groups[gi]] = bestNi
		bestNi = dp[gi][bestNi].prev
	}
	return choice
}

// edgeCost implements Algorithm 3: boundary-conflict penalty, DRC cost for
// conflicting neighbor access points, history-aware DRC cost against the
// prev-1 access point (deterministic, since dp already fixed prev's best
// predecessor), and otherwise the quality metric of the two access points.
func (a *Analyzer) edgeCost(ua *UniqueAccess, groups []int, dp [][]dpVertex, gi, prevIdx, curIdx int, used map[*AccessPoint]bool) int {
	prevPin := ua.Pins[groups[gi-1]]
	curPin := ua.Pins[groups[gi]]
	prev := prevPin.APs[prevIdx]
	cur := curPin.APs[curIdx]
	prevBoundary := gi-1 == 0
	curBoundary := gi == len(groups)-1

	if a.Cfg.BCA && prevBoundary && used[prev] {
		return a.Cfg.PenaltyCost
	}
	if a.Cfg.BCA && curBoundary && used[cur] {
		return a.Cfg.PenaltyCost
	}
	// Pins within a cell are distinct nets; use synthetic distinct ids.
	if !a.apPairClean(prev, cur, 1, 2) {
		return a.Cfg.DRCCost
	}
	if a.Cfg.HistoryAware && gi >= 2 {
		if pp := dp[gi-1][prevIdx].prev; pp >= 0 {
			prevPrev := ua.Pins[groups[gi-2]].APs[pp]
			if !a.apPairClean(prevPrev, cur, 1, 2) {
				return a.Cfg.DRCCost
			}
		}
	}
	return prev.Cost() + cur.Cost()
}

// validatePattern runs the final whole-pattern DRC validation: every pair of
// chosen access points (including non-neighbors in the pin order) must have
// compatible primary up-vias.
func (a *Analyzer) validatePattern(ua *UniqueAccess, choice []int) bool {
	var aps []*AccessPoint
	for i, c := range choice {
		if c >= 0 {
			aps = append(aps, ua.Pins[i].APs[c])
		}
	}
	for i := 0; i < len(aps); i++ {
		for j := i + 1; j < len(aps); j++ {
			if !a.apPairClean(aps[i], aps[j], 1, 2) {
				return false
			}
		}
	}
	return true
}

func (a *Analyzer) patternCost(ua *UniqueAccess, choice []int) int {
	c := 0
	for i, ci := range choice {
		if ci >= 0 {
			c += ua.Pins[i].APs[ci].Cost()
		}
	}
	return c
}
