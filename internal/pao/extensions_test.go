package pao

import (
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/stdcell"
	"repro/internal/suite"
	"repro/internal/tech"
)

// TestMultiHeightCells covers the paper's future-work item (i): a
// double-height cell mixed with single-height neighbors analyzes cleanly —
// the framework is height-agnostic by construction.
func TestMultiHeightCells(t *testing.T) {
	tt := tech.N45()
	d := db.NewDesign("multiheight", tt)
	d.Die = geom.R(0, 0, 28000, 14000)
	for _, l := range tt.Metals {
		extent := d.Die.XH
		if l.Dir == tech.Horizontal {
			extent = d.Die.YH
		}
		d.Tracks = append(d.Tracks, db.TrackPattern{
			Layer: l.Num, WireDir: l.Dir, Start: l.Pitch / 2,
			Num: int(extent / l.Pitch), Step: l.Pitch,
		})
	}
	lib := stdcell.MustGenerate(tt, stdcell.Options{})
	for _, m := range lib.Masters {
		if err := d.AddMaster(m); err != nil {
			t.Fatal(err)
		}
	}
	dh := stdcell.MustMultiHeight(tt, "DFF2H", 8)
	if err := d.AddMaster(dh); err != nil {
		t.Fatal(err)
	}
	if dh.Size.Y != 2*tt.SiteHeight {
		t.Fatalf("double-height cell is %d tall", dh.Size.Y)
	}

	// Row 1 (y=1400): double-height cell, then a single-height neighbor
	// abutting it; row 2 (y=2800): another single-height cell beside the
	// double-height cell's upper half.
	inv := d.MasterByName("INVX1")
	add := func(name string, m *db.Master, x, y int64) *db.Instance {
		inst := &db.Instance{Name: name, Master: m, Pos: geom.Pt(x, y), Orient: geom.OrientN}
		if err := d.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
		return inst
	}
	i0 := add("dh0", dh, 0, 1400)
	i1 := add("u1", inv, dh.Size.X, 1400)
	i2 := add("u2", inv, dh.Size.X, 2800)
	for i, a := range d.Instances {
		for _, b := range d.Instances[i+1:] {
			if a.BBox().Overlaps(b.BBox()) {
				t.Fatalf("%s overlaps %s", a.Name, b.Name)
			}
		}
	}
	d.Nets = []*db.Net{
		{Name: "n0", Terms: []db.Term{{Inst: i0, Pin: dh.PinByName("Q")}, {Inst: i1, Pin: inv.PinByName("A")}}},
		{Name: "n1", Terms: []db.Term{{Inst: i0, Pin: dh.PinByName("QN")}, {Inst: i2, Pin: inv.PinByName("A")}}},
		{Name: "n2", Terms: []db.Term{{Inst: i0, Pin: dh.PinByName("D")}, {Inst: i0, Pin: dh.PinByName("CK")}}},
	}

	res := NewAnalyzer(d, DefaultConfig()).Run()
	if res.Stats.FailedPins != 0 {
		t.Fatalf("FailedPins = %d of %d", res.Stats.FailedPins, res.Stats.TotalPins)
	}
	// Every double-height pin got an access point inside the cell.
	for _, pinName := range []string{"D", "CK", "Q", "QN"} {
		ap := res.AccessPointFor(i0, dh.PinByName(pinName))
		if ap == nil {
			t.Fatalf("pin %s has no access point", pinName)
		}
		if !i0.BBox().ContainsPt(ap.Pos) {
			t.Errorf("pin %s AP %v outside the cell", pinName, ap.Pos)
		}
	}
}

// TestParallelEquivalence covers the paper's future-work item (ii):
// multi-threaded analysis returns byte-identical results to the sequential
// run (unique-instance analyses are independent).
func TestParallelEquivalence(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	seq := NewAnalyzer(d, DefaultConfig()).Run()

	cfg := DefaultConfig()
	cfg.Workers = 4
	par := NewAnalyzer(d, cfg).Run()

	if seq.Stats.Counts() != par.Stats.Counts() {
		t.Fatalf("stats differ:\nseq %+v\npar %+v", seq.Stats.Counts(), par.Stats.Counts())
	}
	for _, net := range d.Nets {
		for _, term := range net.Terms {
			a := seq.AccessPointFor(term.Inst, term.Pin)
			b := par.AccessPointFor(term.Inst, term.Pin)
			switch {
			case a == nil && b == nil:
			case a == nil || b == nil:
				t.Fatalf("%s/%s: nil mismatch", term.Inst.Name, term.Pin.Name)
			case a.Pos != b.Pos || a.Layer != b.Layer:
				t.Fatalf("%s/%s: %v vs %v", term.Inst.Name, term.Pin.Name, a, b)
			}
		}
	}
}

// TestRebindIncremental: move an instance to a new placement phase, rebind
// incrementally, and confirm the result matches a from-scratch analysis.
func TestRebindIncremental(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	if res.Stats.FailedPins != 0 {
		t.Fatalf("baseline failed pins = %d", res.Stats.FailedPins)
	}
	uniqueBefore := res.Stats.NumUnique

	// Move one instance to a free spot with a different track phase (+70 =
	// half a pitch: a signature the design has never seen).
	inst := d.Instances[len(d.Instances)/2]
	inst.Pos = geom.Pt(inst.Pos.X+70, inst.Pos.Y)

	eng := a.GlobalEngine() // placement changed: rebuild the context
	a.Rebind(res, eng, []*db.Instance{inst})

	if res.Stats.NumUnique != uniqueBefore+1 {
		t.Errorf("NumUnique = %d, want %d (one new phase class)", res.Stats.NumUnique, uniqueBefore+1)
	}
	ap := res.AccessPointFor(inst, inst.Master.SignalPins()[0])
	if ap == nil {
		t.Fatal("moved instance lost access")
	}
	on := false
	for _, s := range inst.PinShapes(inst.Master.SignalPins()[0]) {
		if s.Layer == ap.Layer && s.Rect.ContainsPt(ap.Pos) {
			on = true
		}
	}
	if !on {
		t.Fatalf("rebound AP %v not on the moved pin", ap.Pos)
	}

	// A second rebind to a previously seen signature must reuse the class.
	inst.Pos = geom.Pt(inst.Pos.X-70, inst.Pos.Y) // back to the original phase
	a.Rebind(res, a.GlobalEngine(), []*db.Instance{inst})
	if res.Stats.NumUnique != uniqueBefore+1 {
		t.Errorf("rebind to a known signature must not add classes: %d", res.Stats.NumUnique)
	}

	// The incremental result matches a full re-analysis.
	fresh := NewAnalyzer(d, DefaultConfig()).Run()
	a.CountFailedPins(res, a.GlobalEngine())
	if res.Stats.FailedPins != fresh.Stats.FailedPins {
		t.Errorf("incremental failed pins %d != fresh %d", res.Stats.FailedPins, fresh.Stats.FailedPins)
	}
}

// TestLShapedPins: multi-rectangle (polygon) pins run through the maximal-
// rectangle decomposition path and still produce clean access.
func TestLShapedPins(t *testing.T) {
	tt := tech.N45()
	d := db.NewDesign("lshape", tt)
	d.Die = geom.R(0, 0, 28000, 14000)
	for _, l := range tt.Metals {
		extent := d.Die.XH
		if l.Dir == tech.Horizontal {
			extent = d.Die.YH
		}
		d.Tracks = append(d.Tracks, db.TrackPattern{
			Layer: l.Num, WireDir: l.Dir, Start: l.Pitch / 2,
			Num: int(extent / l.Pitch), Step: l.Pitch,
		})
	}
	lib := stdcell.MustGenerate(tt, stdcell.Options{LShapes: true})
	for _, m := range lib.Masters {
		if err := d.AddMaster(m); err != nil {
			t.Fatal(err)
		}
	}
	m := d.MasterByName("LPINX1")
	i0 := &db.Instance{Name: "l0", Master: m, Pos: geom.Pt(0, 0), Orient: geom.OrientN}
	i1 := &db.Instance{Name: "l1", Master: m, Pos: geom.Pt(m.Size.X, 0), Orient: geom.OrientN}
	for _, inst := range []*db.Instance{i0, i1} {
		if err := d.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	d.Nets = []*db.Net{
		{Name: "n0", Terms: []db.Term{{Inst: i0, Pin: m.PinByName("Y")}, {Inst: i1, Pin: m.PinByName("A")}}},
		{Name: "n1", Terms: []db.Term{{Inst: i1, Pin: m.PinByName("Y")}}},
		{Name: "n2", Terms: []db.Term{{Inst: i0, Pin: m.PinByName("A")}}},
	}
	res := NewAnalyzer(d, DefaultConfig()).Run()
	if res.Stats.FailedPins != 0 {
		t.Fatalf("FailedPins = %d of %d", res.Stats.FailedPins, res.Stats.TotalPins)
	}
	// The Y pin's APs must lie on the pin union; the L shape offers both a
	// horizontal-bar region and a vertical-bar region.
	ua := res.UAFor(i0)
	for _, pa := range ua.Pins {
		if pa.Pin.Name != "Y" {
			continue
		}
		if len(pa.APs) == 0 {
			t.Fatal("L pin has no APs")
		}
		var rects []geom.Rect
		for _, s := range ua.UI.Pivot().PinShapes(pa.Pin) {
			rects = append(rects, s.Rect)
		}
		for _, ap := range pa.APs {
			if !geom.CoversPt(rects, ap.Pos) {
				t.Fatalf("AP %v off the L pin", ap.Pos)
			}
		}
	}
}
