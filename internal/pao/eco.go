package pao

// Incremental ECO re-analysis: apply a small batch of placement edits
// (move/swap/insert/delete) to an already-analyzed design and repair the
// Result without re-running the whole pipeline. The repair is provably
// equivalent to a fresh full analysis of the mutated design (the
// internal/difftest ECO fuzzer byte-compares the snapshots); the work is
// scoped by three dirtiness rules:
//
//   - class dirtiness: a unique-instance class is re-analyzed (Steps 1-2)
//     only when its pivot identity or pivot position changed, or when the
//     class is new. Membership-only changes are merged copy-on-write: the new
//     class shares the old Pins/Patterns (the analysis is pivot-relative and
//     the per-member translation uses the captured PivotPos, so member lists
//     do not affect the data — or its serialized bytes).
//   - cluster dirtiness: a row cluster's Step-3 DP is re-run when it contains
//     an affected instance or a member of a changed class, when its
//     membership differs from every pre-ECO cluster (splits/merges re-couple
//     the DP chain), or when a member's shape extent touches the dirty
//     region. The dirty region is the union of every op's old and new
//     instance extents bloated by the ECO halo — the maximum distance at
//     which an engine mutation can change a vertex-cost via verdict
//     (drc.SigHalo plus the largest via extent; Step-3 edge costs are
//     engine-independent, so they never dirty a cluster).
//   - engine scoping: the session maintains one tracked global engine across
//     ECOs, removing and re-adding exactly the mutated instances' shapes.
//     Each mutation is noted against the shared via-verdict cache, which
//     evicts only the entries whose query windows overlap the mutated rects
//     (see drc.ViaCache) — the warm verdicts elsewhere survive.
//
// Failed-pin accounting is recomputed in full on a scratch engine with a
// private cache, because CountFailedPins mutates its engine (it places the
// selected vias) and must not perturb the tracked engine or the shared cache.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
)

// ECOOpKind enumerates the supported placement edits.
type ECOOpKind uint8

const (
	// ECOMove places an existing instance at a new position.
	ECOMove ECOOpKind = iota
	// ECOSwap exchanges the positions and orientations of two instances.
	ECOSwap
	// ECOInsert places a new, unconnected instance.
	ECOInsert
	// ECODelete removes an instance and its net terminals.
	ECODelete
)

var ecoOpNames = [...]string{"move", "swap", "insert", "delete"}

func (k ECOOpKind) String() string {
	if int(k) < len(ecoOpNames) {
		return ecoOpNames[k]
	}
	return fmt.Sprintf("ECOOpKind(%d)", uint8(k))
}

// ECOOp is one placement edit.
type ECOOp struct {
	Kind   ECOOpKind
	Inst   string      // target instance name (the new name for ECOInsert)
	Other  string      // ECOSwap: the partner instance
	To     geom.Point  // ECOMove/ECOInsert: the placement position
	Orient geom.Orient // ECOInsert: the placement orientation
	Master string      // ECOInsert: the master cell name
}

// validateOps checks a whole script against the design before anything is
// mutated (all-or-nothing: a rejected script leaves design and result
// untouched). The name set is simulated so later ops may reference earlier
// inserts and may not reference earlier deletes.
func validateOps(d *db.Design, ops []ECOOp) error {
	exists := make(map[string]bool, len(d.Instances))
	for _, inst := range d.Instances {
		exists[inst.Name] = true
	}
	for i, op := range ops {
		switch op.Kind {
		case ECOMove:
			if !exists[op.Inst] {
				return fmt.Errorf("eco: op %d: move: unknown instance %q", i, op.Inst)
			}
		case ECOSwap:
			if !exists[op.Inst] {
				return fmt.Errorf("eco: op %d: swap: unknown instance %q", i, op.Inst)
			}
			if !exists[op.Other] {
				return fmt.Errorf("eco: op %d: swap: unknown instance %q", i, op.Other)
			}
			if op.Inst == op.Other {
				return fmt.Errorf("eco: op %d: swap: %q with itself", i, op.Inst)
			}
		case ECOInsert:
			if op.Inst == "" {
				return fmt.Errorf("eco: op %d: insert: empty instance name", i)
			}
			if exists[op.Inst] {
				return fmt.Errorf("eco: op %d: insert: instance %q already exists", i, op.Inst)
			}
			if d.MasterByName(op.Master) == nil {
				return fmt.Errorf("eco: op %d: insert: unknown master %q", i, op.Master)
			}
			exists[op.Inst] = true
		case ECODelete:
			if !exists[op.Inst] {
				return fmt.Errorf("eco: op %d: delete: unknown instance %q", i, op.Inst)
			}
			delete(exists, op.Inst)
		default:
			return fmt.Errorf("eco: op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// applyOpToDesign performs the design-database part of one validated op. Both
// the ECO engine and ApplyOpsToDesign go through it, so an ECO'd design and a
// freshly mutated twin are structurally identical (including instance IDs,
// which AddInstance hands out deterministically).
func applyOpToDesign(d *db.Design, op *ECOOp) error {
	switch op.Kind {
	case ECOMove:
		d.InstByName(op.Inst).Pos = op.To
	case ECOSwap:
		ia, ib := d.InstByName(op.Inst), d.InstByName(op.Other)
		ia.Pos, ib.Pos = ib.Pos, ia.Pos
		ia.Orient, ib.Orient = ib.Orient, ia.Orient
	case ECOInsert:
		return d.AddInstance(&db.Instance{
			Name: op.Inst, Master: d.MasterByName(op.Master), Pos: op.To, Orient: op.Orient,
		})
	case ECODelete:
		d.RemoveInstance(op.Inst)
	}
	return nil
}

// ApplyOpsToDesign validates and applies an ECO script to a design database
// only — no analysis state. The differential tests use it to build the
// "fresh analysis" twin of an ECO'd design.
func ApplyOpsToDesign(d *db.Design, ops []ECOOp) error {
	if err := validateOps(d, ops); err != nil {
		return err
	}
	for i := range ops {
		if err := applyOpToDesign(d, &ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// ecoHalo bounds how far an engine mutation can influence a via-drop verdict:
// the largest via extent (enclosures and cuts) plus the largest per-layer
// signature halo or cut spacing. An op's influence region is its old and new
// shape extents bloated by this distance.
func (a *Analyzer) ecoHalo() int64 {
	t := a.Design.Tech
	var halo int64
	for k := 1; k <= t.NumMetals(); k++ {
		if h := drc.SigHalo(t.Metal(k)); h > halo {
			halo = h
		}
	}
	for k := 1; k < t.NumMetals(); k++ {
		if c := t.Cut(k); c != nil && c.Spacing > halo {
			halo = c.Spacing
		}
	}
	var ext int64
	grow := func(r geom.Rect) {
		for _, v := range [4]int64{r.XL, r.YL, r.XH, r.YH} {
			if v < 0 {
				v = -v
			}
			if v > ext {
				ext = v
			}
		}
	}
	for _, v := range t.Vias {
		grow(v.BotEnc)
		grow(v.TopEnc)
		for _, c := range v.Cuts {
			grow(c)
		}
	}
	return halo + ext
}

// instExtent is the union of an instance's bounding box and all of its pin
// and obstruction shapes — everything the instance contributes to the global
// engine.
func instExtent(inst *db.Instance) geom.Rect {
	r := inst.BBox()
	for _, pin := range inst.Master.Pins {
		for _, s := range inst.PinShapes(pin) {
			r = r.UnionBBox(s.Rect)
		}
	}
	for _, s := range inst.ObsShapes() {
		r = r.UnionBBox(s.Rect)
	}
	return r
}

// clusterIDKey identifies a cluster by its member IDs (IDs are never reused,
// so equal keys mean identical membership).
func clusterIDKey(cl db.Cluster) string {
	var b strings.Builder
	for _, inst := range cl.Insts {
		fmt.Fprintf(&b, "%d,", inst.ID)
	}
	return b.String()
}

// ECOSession holds the mutable state incremental re-analysis needs across ECO
// batches: the current Result, a tracked global engine kept in sync with the
// design, and the engine object IDs each instance contributed. A session is
// single-writer: Begin/Commit (or Apply) must not run concurrently, and the
// design must not be mutated behind its back. Readers of the previous Result
// are never disturbed — Commit merges copy-on-write into a fresh Result.
type ECOSession struct {
	a    *Analyzer
	res  *Result
	eng  *drc.Engine
	objs map[int][]int // instance ID -> its live engine object IDs
	halo int64
	txn  *ECOTxn
}

// NewECOSession builds a session over an analyzed result. The analyzer must
// be the one that produced res (or an equivalent over the same design); the
// design must still be in the placement res was computed from.
func NewECOSession(a *Analyzer, res *Result) *ECOSession {
	s := &ECOSession{a: a, res: res, halo: a.ecoHalo(), objs: make(map[int][]int, len(a.Design.Instances))}
	s.eng = a.globalEngine(a.viaCache, func(inst *db.Instance, id int) {
		s.objs[inst.ID] = append(s.objs[inst.ID], id)
	})
	return s
}

// Result returns the session's current result (the merged result after the
// last committed ECO).
func (s *ECOSession) Result() *Result { return s.res }

// Apply runs a whole ECO batch: Begin + Commit.
func (s *ECOSession) Apply(ops []ECOOp) (*Result, *ECOReport, error) {
	t, err := s.Begin(ops)
	if err != nil {
		return nil, nil, err
	}
	res, rep := t.Commit()
	return res, rep, nil
}

// sigChange tracks the membership delta of one unique-instance class during a
// transaction.
type sigChange struct {
	removed map[int]bool
	added   map[int]*db.Instance
}

// ECOTxn is an ECO batch between Begin (design and tracked engine mutated,
// dirty plan computed) and Commit (re-analysis and merge). Between the two,
// the session's Result still describes the pre-ECO analysis; DirtyInstances
// reports which instances it can no longer answer for.
type ECOTxn struct {
	s        *ECOSession
	ops      int
	affected map[int]*db.Instance // moved/swapped/inserted, still present
	deleted  map[int]bool
	dirty    map[int]bool // stale class binding until Commit
	changes  map[string]*sigChange
	curSig   map[int]string // class sig of instances touched so far this txn
	rects    []geom.Rect    // op extents bloated by the ECO halo
	oldKeys  map[string]bool
}

// Begin validates an ECO script, applies it to the design database and the
// tracked engine, and records the dirty plan. The script is all-or-nothing:
// a validation error mutates nothing. After a successful Begin the session's
// design reflects the ECO but its Result does not — call Commit.
func (s *ECOSession) Begin(ops []ECOOp) (*ECOTxn, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("eco: a transaction is already in flight")
	}
	d := s.a.Design
	if err := validateOps(d, ops); err != nil {
		return nil, err
	}
	t := &ECOTxn{
		s:        s,
		ops:      len(ops),
		affected: make(map[int]*db.Instance),
		deleted:  make(map[int]bool),
		dirty:    make(map[int]bool),
		changes:  make(map[string]*sigChange),
		curSig:   make(map[int]string),
		oldKeys:  make(map[string]bool),
	}
	for _, cl := range d.Clusters() {
		t.oldKeys[clusterIDKey(cl)] = true
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case ECOMove:
			inst := d.InstByName(op.Inst)
			t.detach(inst)
			applyOpToDesign(d, op)
			t.attach(inst)
		case ECOSwap:
			ia, ib := d.InstByName(op.Inst), d.InstByName(op.Other)
			t.detach(ia)
			t.detach(ib)
			applyOpToDesign(d, op)
			t.attach(ia)
			t.attach(ib)
		case ECOInsert:
			if err := applyOpToDesign(d, op); err != nil {
				// Unreachable after validateOps; fail loudly rather than
				// continue with a half-applied script.
				panic(err)
			}
			t.attach(d.InstByName(op.Inst))
		case ECODelete:
			inst := d.InstByName(op.Inst)
			t.detach(inst)
			applyOpToDesign(d, op)
			delete(t.affected, inst.ID)
			t.deleted[inst.ID] = true
			t.dirty[inst.ID] = true
		}
	}
	s.txn = t
	return t, nil
}

// DirtyInstances reports the instance IDs whose pre-ECO class binding is
// stale until Commit: instances whose unique-instance signature changed (or
// that are new or deleted). Everything else still answers exactly from the
// old Result — a moved instance that kept its signature translates its class
// data to the new position through the captured pivot.
func (t *ECOTxn) DirtyInstances() map[int]bool { return t.dirty }

// change returns the (created-on-demand) membership delta for a class sig.
func (t *ECOTxn) change(sig string) *sigChange {
	ch := t.changes[sig]
	if ch == nil {
		ch = &sigChange{removed: make(map[int]bool), added: make(map[int]*db.Instance)}
		t.changes[sig] = ch
	}
	return ch
}

// currentSig is the class signature an instance is bound to at this point in
// the transaction (its original class before the first touch).
func (t *ECOTxn) currentSig(inst *db.Instance) string {
	if sig, ok := t.curSig[inst.ID]; ok {
		return sig
	}
	if ua := t.s.res.ByInstance[inst.ID]; ua != nil {
		return ua.UI.Signature()
	}
	// Not bound to any analyzed class (quarantined or never analyzed): use
	// the live signature so the removal lands on a no-op change entry.
	return t.s.a.Design.InstanceSignature(inst)
}

// noteExtent adds the instance's current shape extent (bloated by the ECO
// halo) to the dirty region.
func (t *ECOTxn) noteExtent(inst *db.Instance) {
	t.rects = append(t.rects, instExtent(inst).Bloat(t.s.halo))
}

// detach records the instance leaving its current placement: extent into the
// dirty region, membership out of its class, shapes out of the tracked
// engine.
func (t *ECOTxn) detach(inst *db.Instance) {
	t.noteExtent(inst)
	ch := t.change(t.currentSig(inst))
	delete(ch.added, inst.ID)
	ch.removed[inst.ID] = true
	for _, id := range t.s.objs[inst.ID] {
		t.s.eng.Remove(id)
	}
	delete(t.s.objs, inst.ID)
}

// attach records the instance arriving at its new placement (the inverse of
// detach) and classifies it as affected; it is genuinely dirty mid-ECO only
// when its class binding changed.
func (t *ECOTxn) attach(inst *db.Instance) {
	t.noteExtent(inst)
	sig := t.s.a.Design.InstanceSignature(inst)
	t.change(sig).added[inst.ID] = inst
	t.curSig[inst.ID] = sig
	t.s.objs[inst.ID] = t.s.a.addInstanceShapes(t.s.eng, inst)
	t.affected[inst.ID] = inst
	if old := t.s.res.ByInstance[inst.ID]; old == nil || old.UI.Signature() != sig {
		t.dirty[inst.ID] = true
	}
}

// ECOReport summarizes what one committed ECO batch re-computed.
type ECOReport struct {
	Ops               int `json:"ops"`
	AffectedInstances int `json:"affected_instances"`
	DeletedInstances  int `json:"deleted_instances"`
	TotalClasses      int `json:"total_classes"`
	ReanalyzedClasses int `json:"reanalyzed_classes"`
	NewClasses        int `json:"new_classes"`
	RemovedClasses    int `json:"removed_classes"`
	TotalClusters     int `json:"total_clusters"`
	DirtyClusters     int `json:"dirty_clusters"`
	DirtyRects        int `json:"dirty_rects"`
}

// offsOrderKey renders class offsets in the comparison format
// Design.UniqueInstances sorts by.
func offsOrderKey(offs []int64) string {
	var b strings.Builder
	for _, o := range offs {
		fmt.Fprintf(&b, "%d,", o)
	}
	return b.String()
}

func sortedMembers(set map[int]*db.Instance) []*db.Instance {
	out := make([]*db.Instance, 0, len(set))
	for _, inst := range set {
		out = append(out, inst)
	}
	// IDs are handed out monotonically and instance removal preserves slice
	// order, so ascending ID equals design order — the member order a fresh
	// UniqueInstances partition produces.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Commit re-analyzes the dirty classes, merges copy-on-write into a fresh
// Result, re-selects the dirty clusters on the tracked engine, and recounts
// failed pins on a scratch engine. The previous Result is left fully intact
// for concurrent readers. The merged Result is byte-identical (snapshot
// encoding, timings zeroed) to a fresh full analysis of the mutated design.
func (t *ECOTxn) Commit() (*Result, *ECOReport) {
	s := t.s
	a := s.a
	d := a.Design
	old := s.res
	rep := &ECOReport{
		Ops:               t.ops,
		AffectedInstances: len(t.affected),
		DeletedInstances:  len(t.deleted),
		DirtyRects:        len(t.rects),
	}

	uaBySig := make(map[string]*UniqueAccess, len(old.Unique))
	for _, ua := range old.Unique {
		uaBySig[ua.UI.Signature()] = ua
	}

	res := &Result{
		CorrID:     old.CorrID,
		ByInstance: make(map[int]*UniqueAccess, len(old.ByInstance)),
		Selected:   make(map[int]int, len(old.Selected)),
		Health:     old.Health,
	}

	// Merge pass 1: carry or rebuild the existing classes.
	var changedMembers []*db.Instance
	for _, ua := range old.Unique {
		sig := ua.UI.Signature()
		ch := t.changes[sig]
		if ch == nil {
			res.Unique = append(res.Unique, ua)
			continue
		}
		memberSet := make(map[int]*db.Instance, len(ua.UI.Insts)+len(ch.added))
		for _, m := range ua.UI.Insts {
			if !ch.removed[m.ID] {
				memberSet[m.ID] = m
			}
		}
		for id, m := range ch.added {
			memberSet[id] = m
		}
		if len(memberSet) == 0 {
			rep.RemovedClasses++
			continue
		}
		members := sortedMembers(memberSet)
		changedMembers = append(changedMembers, members...)
		ui := &db.UniqueInstance{Master: ua.UI.Master, Orient: ua.UI.Orient, Offsets: ua.UI.Offsets, Insts: members}
		if members[0] == ua.UI.Insts[0] && members[0].Pos == ua.PivotPos {
			// Pivot identity and position unchanged: the analysis (and its
			// serialized bytes — membership is not serialized) is still exact.
			// Copy-on-write so readers of the old Result see the old members.
			cp := *ua
			cp.UI = ui
			res.Unique = append(res.Unique, &cp)
		} else {
			// The pivot moved or a lower-ID member took over: re-analyze at
			// the new pivot. Translating the stored APs instead would not be
			// byte-identical (PinAccess.SortKey is a float over absolute
			// pivot coordinates).
			res.Unique = append(res.Unique, a.AnalyzeUnique(ui))
			rep.ReanalyzedClasses++
		}
	}

	// Merge pass 2: classes for signatures the design never had. Sorted for
	// a deterministic analysis order.
	var newSigs []string
	for sig, ch := range t.changes {
		if uaBySig[sig] == nil && len(ch.added) > 0 {
			newSigs = append(newSigs, sig)
		}
	}
	sort.Strings(newSigs)
	for _, sig := range newSigs {
		members := sortedMembers(t.changes[sig].added)
		pivot := members[0]
		ui := &db.UniqueInstance{Master: pivot.Master, Orient: pivot.Orient, Offsets: d.OffsetsOf(pivot), Insts: members}
		res.Unique = append(res.Unique, a.AnalyzeUnique(ui))
		rep.ReanalyzedClasses++
		rep.NewClasses++
		changedMembers = append(changedMembers, members...)
	}

	// Restore the fresh-partition class order (master, orient, offsets).
	sort.Slice(res.Unique, func(i, j int) bool {
		x, y := res.Unique[i].UI, res.Unique[j].UI
		if x.Master.Name != y.Master.Name {
			return x.Master.Name < y.Master.Name
		}
		if x.Orient != y.Orient {
			return x.Orient < y.Orient
		}
		return offsOrderKey(x.Offsets) < offsOrderKey(y.Offsets)
	})
	rep.TotalClasses = len(res.Unique)

	// Rebuild the aggregates exactly as RunContext does.
	for _, ua := range res.Unique {
		for _, inst := range ua.UI.Insts {
			res.ByInstance[inst.ID] = ua
		}
		res.Stats.NumUnique++
		res.Stats.TotalAPs += ua.TotalAPs()
		res.Stats.PatternsBuilt += len(ua.Patterns)
		res.Stats.PatternsDropped += ua.DroppedPatterns
		for _, pa := range ua.Pins {
			for _, ap := range pa.APs {
				if ap.OffTrack() {
					res.Stats.OffTrackAPs++
				}
			}
		}
	}

	// Selection: carry the old picks, reset defaults for every member of a
	// changed class (their pattern lists may have changed), then re-run the
	// DP over the dirty clusters. Clean clusters provably keep picks equal to
	// a fresh run's.
	for id, ni := range old.Selected {
		if !t.deleted[id] {
			res.Selected[id] = ni
		}
	}
	changedSet := make(map[int]bool, len(changedMembers))
	for _, inst := range changedMembers {
		changedSet[inst.ID] = true
		if ua := res.ByInstance[inst.ID]; ua != nil && len(ua.Patterns) > 0 {
			res.Selected[inst.ID] = 0
		} else {
			delete(res.Selected, inst.ID)
		}
	}
	clusters := d.Clusters()
	rep.TotalClusters = len(clusters)
	s.eng.Compact() // ECO mutations are committed; queries only from here on
	qc := s.eng.NewQueryCtx()
	for _, cl := range clusters {
		if !t.clusterDirty(cl, changedSet) {
			continue
		}
		rep.DirtyClusters++
		for id, ni := range a.selectForCluster(res, s.eng, cl, qc) {
			res.Selected[id] = ni
		}
	}

	// Failed pins are a whole-design statistic over the final selection;
	// recount on a scratch engine (CountFailedPins places vias) with a
	// private cache so the shared warm cache sees no spurious mutations.
	var scratchCache *drc.ViaCache
	if !a.Cfg.NoCache {
		scratchCache = drc.NewViaCache()
	}
	a.CountFailedPins(res, a.globalEngine(scratchCache, nil))

	res.indexSignatures(d)
	s.res = res
	s.txn = nil
	return res, rep
}

// clusterDirty decides whether a cluster's Step-3 DP must re-run. The DP
// couples every member through the chain of edge terms, so any change inside
// the cluster (or near enough to change a vertex cost) dirties the whole
// cluster — but nothing outside it.
func (t *ECOTxn) clusterDirty(cl db.Cluster, changed map[int]bool) bool {
	if !t.oldKeys[clusterIDKey(cl)] {
		return true // membership changed: a split/merge re-couples the chain
	}
	for _, inst := range cl.Insts {
		if t.affected[inst.ID] != nil || changed[inst.ID] {
			return true
		}
	}
	for _, inst := range cl.Insts {
		ext := instExtent(inst)
		for _, r := range t.rects {
			if ext.Touches(r) {
				return true
			}
		}
	}
	return false
}
