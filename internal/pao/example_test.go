package pao_test

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/tech"
)

// Example runs the three-step pin access analysis on a one-cell design and
// prints the selected access point — the smallest end-to-end use of the
// package.
func Example() {
	tt := tech.N45()
	d := db.NewDesign("example", tt)
	d.Die = geom.R(0, 0, 28000, 14000)
	for _, l := range tt.Metals {
		extent := d.Die.XH
		if l.Dir == tech.Horizontal {
			extent = d.Die.YH
		}
		d.Tracks = append(d.Tracks, db.TrackPattern{
			Layer: l.Num, WireDir: l.Dir, Start: l.Pitch / 2,
			Num: int(extent / l.Pitch), Step: l.Pitch,
		})
	}
	master := &db.Master{
		Name: "INV", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{
			{Name: "A", Dir: db.DirInput, Use: db.UseSignal,
				Shapes: []db.Shape{{Layer: 1, Rect: geom.R(70, 455, 210, 525)}}},
			{Name: "Y", Dir: db.DirOutput, Use: db.UseSignal,
				Shapes: []db.Shape{{Layer: 1, Rect: geom.R(350, 455, 490, 525)}}},
		},
	}
	if err := d.AddMaster(master); err != nil {
		panic(err)
	}
	inst := &db.Instance{Name: "u0", Master: master, Pos: geom.Pt(0, 0), Orient: geom.OrientN}
	if err := d.AddInstance(inst); err != nil {
		panic(err)
	}
	d.Nets = []*db.Net{{Name: "n", Terms: []db.Term{
		{Inst: inst, Pin: master.PinByName("A")},
		{Inst: inst, Pin: master.PinByName("Y")},
	}}}

	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	ap := res.AccessPointFor(inst, master.PinByName("A"))
	fmt.Printf("failed pins: %d\n", res.Stats.FailedPins)
	fmt.Printf("u0/A access: %v via %s\n", ap, ap.Primary().Name)
	// Output:
	// failed pins: 0
	// u0/A access: AP(70,490)/M1[x:onTrack,y:onTrack] via VIA1_H
}
