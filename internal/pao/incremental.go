package pao

import (
	"repro/internal/db"
	"repro/internal/drc"
)

// Rebind updates a Result after instances moved (the incremental-placement
// scenario the paper's Section IV-B runtime discussion motivates: "frequent
// changes in placement require a tremendous amount of inter-cell pin access
// analysis"). For each moved instance it:
//
//  1. recomputes the unique-instance signature under the new placement and
//     rebinds the instance to the matching class — running Steps 1-2 only
//     when the signature was never analyzed before;
//  2. re-runs the Step-3 pattern selection for every cluster that now
//     contains a moved instance.
//
// eng must reflect the design's current placement (rebuild with
// GlobalEngine or maintain incrementally). Failed-pin statistics are not
// updated; call CountFailedPins when they are needed.
func (a *Analyzer) Rebind(res *Result, eng *drc.Engine, moved []*db.Instance) {
	if res.bySig == nil {
		res.indexSignatures(a.Design)
	}
	movedSet := make(map[int]bool, len(moved))
	for _, inst := range moved {
		movedSet[inst.ID] = true
		sig := a.Design.InstanceSignature(inst)
		ua := res.bySig[sig]
		if ua == nil {
			// A placement phase never seen before: analyze a fresh class with
			// the moved instance as its pivot.
			ui := &db.UniqueInstance{Master: inst.Master, Orient: inst.Orient, Insts: []*db.Instance{inst}}
			ua = a.AnalyzeUnique(ui)
			res.Unique = append(res.Unique, ua)
			res.bySig[sig] = ua
			res.Stats.NumUnique++
			res.Stats.TotalAPs += ua.TotalAPs()
			res.Stats.PatternsBuilt += len(ua.Patterns)
			res.Stats.PatternsDropped += ua.DroppedPatterns
		}
		res.ByInstance[inst.ID] = ua
		if len(ua.Patterns) > 0 {
			res.Selected[inst.ID] = 0
		} else {
			delete(res.Selected, inst.ID)
		}
	}
	ctx := eng.NewQueryCtx()
	for _, cl := range a.Design.Clusters() {
		affected := false
		for _, inst := range cl.Insts {
			if movedSet[inst.ID] {
				affected = true
				break
			}
		}
		if affected {
			for inst, ni := range a.selectForCluster(res, eng, cl, ctx) {
				res.Selected[inst] = ni
			}
		}
	}
}

// indexSignatures builds the signature -> class index used by Rebind. Keys
// are recomputed from each class pivot's current placement so they compare
// exactly against Design.InstanceSignature.
func (r *Result) indexSignatures(d *db.Design) {
	r.bySig = make(map[string]*UniqueAccess, len(r.Unique))
	for _, ua := range r.Unique {
		r.bySig[d.InstanceSignature(ua.UI.Pivot())] = ua
	}
}
