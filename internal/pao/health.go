package pao

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// ClassStatus is the per-unique-instance-class health after a run.
type ClassStatus uint8

const (
	// StatusOK: the class completed every pipeline step normally.
	StatusOK ClassStatus = iota
	// StatusDegraded: Step-3 selection was lost for the class (its cluster's
	// DP panicked); members keep the default pattern 0, which is still a
	// valid DRC-clean intra-cell pattern from Step 2.
	StatusDegraded
	// StatusFailed: Step-1/2 analysis was lost; the class has no access data
	// and its pins count as failed.
	StatusFailed
)

var classStatusNames = [...]string{"ok", "degraded", "failed"}

func (s ClassStatus) String() string {
	if int(s) < len(classStatusNames) {
		return classStatusNames[s]
	}
	return fmt.Sprintf("ClassStatus(%d)", uint8(s))
}

// Step identifies the pipeline phase a PipelineError escaped from.
type Step string

const (
	StepAnalyze    Step = "step12.analyze"
	StepWorker     Step = "step12.worker"
	StepSelect     Step = "step3.select"
	StepFailedPins Step = "failedpins"
)

// PipelineError is one recovered fault: a panic quarantined by the run
// instead of tearing down the process.
type PipelineError struct {
	Step      Step
	Signature string // unique-instance signature or cluster id ("" when not class-scoped)
	Pin       string // pin name when the fault is pin-scoped
	Recovered any    // the recovered panic value
	Stack     string // goroutine stack captured at recovery
}

func (e *PipelineError) Error() string {
	s := fmt.Sprintf("pao: recovered panic in %s", e.Step)
	if e.Signature != "" {
		s += " [" + e.Signature + "]"
	}
	if e.Pin != "" {
		s += " pin " + e.Pin
	}
	return fmt.Sprintf("%s: %v", s, e.Recovered)
}

// Health is the run's degradation report: which classes were quarantined, the
// recovered errors behind them, and whether the run was cancelled. All methods
// are safe for concurrent use; RunContext always attaches one to its Result.
type Health struct {
	mu        sync.Mutex
	classes   map[string]ClassStatus // non-ok classes only
	errors    []*PipelineError
	cancelled bool
	respawns  int
}

func newHealth() *Health {
	return &Health{classes: make(map[string]ClassStatus)}
}

// recordClass quarantines a class at the given status (never downgrading a
// failed class) and logs the recovered error behind it.
func (h *Health) recordClass(sig string, st ClassStatus, err *PipelineError) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st > h.classes[sig] {
		h.classes[sig] = st
	}
	h.errors = append(h.errors, err)
}

// degradeClass marks a class degraded without logging another error (used
// when one cluster fault downgrades several member classes).
func (h *Health) degradeClass(sig string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if StatusDegraded > h.classes[sig] {
		h.classes[sig] = StatusDegraded
	}
}

// record logs a recovered error that is not scoped to a single class.
func (h *Health) record(err *PipelineError) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.errors = append(h.errors, err)
}

func (h *Health) markCancelled() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cancelled = true
}

func (h *Health) noteRespawn() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.respawns++
}

func (h *Health) errCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.errors)
}

// Degrade marks a class degraded from outside the pipeline — the distributed
// coordinator uses it to fold a worker's reported degradations into the
// merged result's health. Same never-downgrade semantics as the internal path.
func (h *Health) Degrade(sig string) { h.degradeClass(sig) }

// Record logs a recovered pipeline error from outside the pipeline (the
// distributed coordinator replaying a worker's reported errors).
func (h *Health) Record(e *PipelineError) { h.record(e) }

// MarkCancelled latches the cancelled flag from outside the pipeline (the
// distributed coordinator, when its own context ends a run mid-flight).
func (h *Health) MarkCancelled() { h.markCancelled() }

// Status returns the class's health; classes never touched by a fault are ok.
func (h *Health) Status(sig string) ClassStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.classes[sig]
}

// FailedClasses returns the sorted signatures of classes whose Step-1/2
// analysis was lost.
func (h *Health) FailedClasses() []string { return h.classesWith(StatusFailed) }

// DegradedClasses returns the sorted signatures of classes that lost only
// their Step-3 selection.
func (h *Health) DegradedClasses() []string { return h.classesWith(StatusDegraded) }

func (h *Health) classesWith(st ClassStatus) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for sig, s := range h.classes {
		if s == st {
			out = append(out, sig)
		}
	}
	sort.Strings(out)
	return out
}

// Errors returns the recovered pipeline errors in recording order.
func (h *Health) Errors() []*PipelineError {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*PipelineError(nil), h.errors...)
}

// Cancelled reports whether the run stopped early on a context deadline or
// cancellation; the Result then holds only the work finished before the stop.
func (h *Health) Cancelled() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cancelled
}

// Respawns returns how many Step-1/2 workers were replaced after dying to a
// panic that escaped the per-class recovery.
func (h *Health) Respawns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.respawns
}

// OK reports a fully healthy, uncancelled run.
func (h *Health) OK() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.classes) == 0 && len(h.errors) == 0 && !h.cancelled
}

// String is a one-line summary suitable for CLI reports.
func (h *Health) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	failed, degraded := 0, 0
	for _, s := range h.classes {
		if s == StatusFailed {
			failed++
		} else {
			degraded++
		}
	}
	s := fmt.Sprintf("health: %d failed, %d degraded classes, %d recovered errors",
		failed, degraded, len(h.errors))
	if h.respawns > 0 {
		s += fmt.Sprintf(", %d workers respawned", h.respawns)
	}
	if h.cancelled {
		s += ", cancelled"
	}
	return s
}

// publish folds the health outcome into the metrics registry. Counters are
// only created when non-zero so a clean run publishes nothing new.
func (h *Health) publish(reg *obs.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := int64(len(h.classes)); n > 0 {
		reg.Counter("pao.degraded.classes").Add(n)
	}
	if n := int64(len(h.errors)); n > 0 {
		reg.Counter("pao.panics.recovered").Add(n)
	}
	if h.cancelled {
		reg.Counter("pao.cancelled").Add(1)
	}
	if h.respawns > 0 {
		reg.Counter("pao.workers.respawned").Add(int64(h.respawns))
	}
}
