package pao

// Snapshot persistence for Result: a versioned, checksummed container that a
// resident oracle server writes on shutdown (and on a timer) and restores on
// warm restart, so precomputed access analysis survives process death.
//
// Layout of the byte stream:
//
//	8 bytes   magic "PAOSNAP" + format version byte
//	N bytes   payload: gzip(JSON(snapDoc))
//	32 bytes  SHA-256 over magic+version+payload
//
// The payload is fully deterministic (sorted maps, no timestamps), so
// encode -> decode -> re-encode is byte-identical — the golden property the
// warm-restart diff tests pin. Pointers into the design (pins, vias, unique
// instances) are serialized by name/signature and re-resolved against the
// live design on decode; a design-hash and config-fingerprint check rejects
// snapshots taken against different inputs before any rebinding happens.

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
)

// Snapshot format identification. Bump snapVersion on any payload change: the
// decoder refuses other versions and the server falls back to a recompute.
const (
	snapMagic   = "PAOSNAP"
	snapVersion = 1
)

// ErrSnapshotCorrupt marks snapshots that fail structural validation: short
// file, bad magic, checksum mismatch, or undecodable payload. Corruption is
// permanent — retrying the read cannot help; recompute instead.
var ErrSnapshotCorrupt = errors.New("pao: snapshot corrupt")

// ErrSnapshotMismatch marks structurally valid snapshots taken against a
// different design or analysis config. Equally permanent.
var ErrSnapshotMismatch = errors.New("pao: snapshot does not match design or config")

// SnapshotPermanent reports whether err can never be fixed by retrying the
// read (corruption or mismatch, as opposed to a transient I/O failure).
func SnapshotPermanent(err error) bool {
	return errors.Is(err, ErrSnapshotCorrupt) || errors.Is(err, ErrSnapshotMismatch)
}

// DesignHash fingerprints everything the analysis result depends on: the
// technology, die, track patterns, instance placements and netlist. Two
// designs with equal hashes yield interchangeable Results (for equal configs).
func DesignHash(d *db.Design) string {
	h := sha256.New()
	fmt.Fprintf(h, "design %s tech %s node %d sigmax %d\n",
		d.Name, d.Tech.Name, d.Tech.NodeNM, d.SigMaxLayer)
	fmt.Fprintf(h, "die %d %d %d %d\n", d.Die.XL, d.Die.YL, d.Die.XH, d.Die.YH)
	for _, tp := range d.Tracks {
		fmt.Fprintf(h, "track %d %d %d %d %d\n", tp.Layer, tp.WireDir, tp.Start, tp.Num, tp.Step)
	}
	for _, inst := range d.Instances {
		fmt.Fprintf(h, "inst %s %s %d %d %d\n",
			inst.Name, inst.Master.Name, inst.Pos.X, inst.Pos.Y, inst.Orient)
	}
	for _, net := range d.Nets {
		fmt.Fprintf(h, "net %s", net.Name)
		for _, t := range net.Terms {
			fmt.Fprintf(h, " %d/%s", t.Inst.ID, t.Pin.Name)
		}
		for _, io := range net.IOPins {
			fmt.Fprintf(h, " io/%s", io.Name)
		}
		fmt.Fprintln(h)
	}
	for _, io := range d.IOPins {
		fmt.Fprintf(h, "iopin %s %d %d %d %d %d %d\n", io.Name, io.Dir,
			io.Shape.Layer, io.Shape.Rect.XL, io.Shape.Rect.YL, io.Shape.Rect.XH, io.Shape.Rect.YH)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ConfigFingerprint renders the analysis-relevant config fields. Workers and
// FailFast are excluded: results are identical across worker counts, and the
// abort policy never changes what a completed run contains.
func ConfigFingerprint(c Config) string {
	c = c.normalized()
	c.Workers = 0
	c.FailFast = false
	return fmt.Sprintf("%+v", c)
}

// snapDoc is the JSON payload of a snapshot.
type snapDoc struct {
	Version    int         `json:"version"`
	DesignName string      `json:"design_name"`
	DesignHash string      `json:"design_hash"`
	Config     string      `json:"config"`
	Stats      Stats       `json:"stats"`
	Classes    []snapClass `json:"classes"`
	Selected   [][2]int    `json:"selected"` // (instance ID, pattern index), sorted by ID
	Health     snapHealth  `json:"health"`
}

type snapClass struct {
	Signature string        `json:"sig"`
	PivotPos  geom.Point    `json:"pivot"`
	Pins      []snapPin     `json:"pins"`
	Patterns  []snapPattern `json:"patterns,omitempty"`
	Dropped   int           `json:"dropped,omitempty"`
}

type snapPin struct {
	Name    string   `json:"name"`
	SortKey float64  `json:"sort_key"`
	APs     []snapAP `json:"aps,omitempty"`
}

type snapAP struct {
	Pos    geom.Point `json:"pos"`
	Layer  int        `json:"layer"`
	TypeX  CoordType  `json:"tx"`
	TypeY  CoordType  `json:"ty"`
	Dirs   [5]bool    `json:"dirs"`
	Vias   []string   `json:"vias,omitempty"`
	OnPref CoordType  `json:"on_pref"`
}

type snapPattern struct {
	Choice []int `json:"choice"`
	Cost   int   `json:"cost"`
}

type snapHealth struct {
	Classes   []snapClassStatus `json:"classes,omitempty"` // sorted by signature
	Errors    []snapError       `json:"errors,omitempty"`
	Cancelled bool              `json:"cancelled,omitempty"`
	Respawns  int               `json:"respawns,omitempty"`
}

type snapClassStatus struct {
	Signature string      `json:"sig"`
	Status    ClassStatus `json:"status"`
}

type snapError struct {
	Step      Step   `json:"step"`
	Signature string `json:"sig,omitempty"`
	Pin       string `json:"pin,omitempty"`
	Recovered string `json:"recovered"`
	Stack     string `json:"stack,omitempty"`
}

// EncodeSnapshot writes a snapshot of res (analyzed from d under cfg) to w.
func EncodeSnapshot(w io.Writer, d *db.Design, cfg Config, res *Result) error {
	doc := snapDoc{
		Version:    snapVersion,
		DesignName: d.Name,
		DesignHash: DesignHash(d),
		Config:     ConfigFingerprint(cfg),
		Stats:      res.Stats,
	}
	for _, ua := range res.Unique {
		sc := snapClass{
			Signature: ua.UI.Signature(),
			PivotPos:  ua.PivotPos,
			Dropped:   ua.DroppedPatterns,
		}
		for _, pa := range ua.Pins {
			sp := snapPin{Name: pa.Pin.Name, SortKey: pa.SortKey}
			for _, ap := range pa.APs {
				sa := snapAP{
					Pos: ap.Pos, Layer: ap.Layer,
					TypeX: ap.TypeX, TypeY: ap.TypeY,
					Dirs: ap.Dirs, OnPref: ap.OnPref,
				}
				for _, v := range ap.Vias {
					sa.Vias = append(sa.Vias, v.Name)
				}
				sp.APs = append(sp.APs, sa)
			}
			sc.Pins = append(sc.Pins, sp)
		}
		for _, p := range ua.Patterns {
			sc.Patterns = append(sc.Patterns, snapPattern{
				Choice: append([]int(nil), p.Choice...), Cost: p.Cost,
			})
		}
		doc.Classes = append(doc.Classes, sc)
	}
	for id, idx := range res.Selected {
		doc.Selected = append(doc.Selected, [2]int{id, idx})
	}
	sort.Slice(doc.Selected, func(a, b int) bool { return doc.Selected[a][0] < doc.Selected[b][0] })
	doc.Health = encodeHealth(res.Health)

	payload, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	buf.WriteByte(snapVersion)
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(payload); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return err
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	_, err = w.Write(buf.Bytes())
	return err
}

func encodeHealth(h *Health) snapHealth {
	var out snapHealth
	if h == nil {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for sig, st := range h.classes {
		out.Classes = append(out.Classes, snapClassStatus{Signature: sig, Status: st})
	}
	sort.Slice(out.Classes, func(a, b int) bool {
		return out.Classes[a].Signature < out.Classes[b].Signature
	})
	for _, e := range h.errors {
		out.Errors = append(out.Errors, snapError{
			Step: e.Step, Signature: e.Signature, Pin: e.Pin,
			Recovered: fmt.Sprint(e.Recovered), Stack: e.Stack,
		})
	}
	out.Cancelled = h.cancelled
	out.Respawns = h.respawns
	return out
}

// DecodeSnapshot reads a snapshot from r and rebinds it onto the live design:
// classes rejoin by unique-instance signature, pins by name, vias by name.
// The checksum is validated first (ErrSnapshotCorrupt), then the design hash
// and config fingerprint (ErrSnapshotMismatch); both are permanent failures
// that callers answer with a full recompute.
func DecodeSnapshot(r io.Reader, d *db.Design, cfg Config) (*Result, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	const headerLen = len(snapMagic) + 1
	if len(raw) < headerLen+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrSnapshotCorrupt, len(raw))
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if string(body[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if want := sha256.Sum256(body); !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	if v := body[len(snapMagic)]; v != snapVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrSnapshotMismatch, v, snapVersion)
	}
	gz, err := gzip.NewReader(bytes.NewReader(body[headerLen:]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	var doc snapDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if hash := DesignHash(d); doc.DesignHash != hash {
		return nil, fmt.Errorf("%w: design hash %.12s, snapshot has %.12s",
			ErrSnapshotMismatch, hash, doc.DesignHash)
	}
	if fp := ConfigFingerprint(cfg); doc.Config != fp {
		return nil, fmt.Errorf("%w: config fingerprint differs", ErrSnapshotMismatch)
	}

	uiBySig := make(map[string]*db.UniqueInstance)
	for _, ui := range d.UniqueInstances() {
		uiBySig[ui.Signature()] = ui
	}
	res := &Result{
		ByInstance: make(map[int]*UniqueAccess),
		Selected:   make(map[int]int),
		Stats:      doc.Stats,
		Health:     decodeHealth(doc.Health),
	}
	for _, sc := range doc.Classes {
		ui := uiBySig[sc.Signature]
		if ui == nil {
			// The design hash matched, so an unknown signature means the
			// snapshot lies about its own provenance.
			return nil, fmt.Errorf("%w: class %s not in design", ErrSnapshotMismatch, sc.Signature)
		}
		ua := &UniqueAccess{UI: ui, PivotPos: sc.PivotPos, DroppedPatterns: sc.Dropped}
		for _, sp := range sc.Pins {
			pin := ui.Master.PinByName(sp.Name)
			if pin == nil {
				return nil, fmt.Errorf("%w: pin %s/%s not in design", ErrSnapshotMismatch, sc.Signature, sp.Name)
			}
			pa := &PinAccess{Pin: pin, SortKey: sp.SortKey}
			for _, sa := range sp.APs {
				ap := &AccessPoint{
					Pos: sa.Pos, Layer: sa.Layer,
					TypeX: sa.TypeX, TypeY: sa.TypeY,
					Dirs: sa.Dirs, OnPref: sa.OnPref,
				}
				for _, name := range sa.Vias {
					v := d.Tech.ViaByName(name)
					if v == nil {
						return nil, fmt.Errorf("%w: via %s not in technology", ErrSnapshotMismatch, name)
					}
					ap.Vias = append(ap.Vias, v)
				}
				pa.APs = append(pa.APs, ap)
			}
			ua.Pins = append(ua.Pins, pa)
		}
		for _, p := range sc.Patterns {
			ua.Patterns = append(ua.Patterns, &AccessPattern{Choice: p.Choice, Cost: p.Cost})
		}
		res.Unique = append(res.Unique, ua)
		for _, inst := range ui.Insts {
			res.ByInstance[inst.ID] = ua
		}
	}
	for _, sel := range doc.Selected {
		res.Selected[sel[0]] = sel[1]
	}
	res.indexSignatures(d)
	return res, nil
}

func decodeHealth(sh snapHealth) *Health {
	h := newHealth()
	for _, c := range sh.Classes {
		h.classes[c.Signature] = c.Status
	}
	for _, e := range sh.Errors {
		h.errors = append(h.errors, &PipelineError{
			Step: e.Step, Signature: e.Signature, Pin: e.Pin,
			Recovered: e.Recovered, Stack: e.Stack,
		})
	}
	h.cancelled = sh.Cancelled
	h.respawns = sh.Respawns
	return h
}

// WriteSnapshotFile atomically persists a snapshot: the bytes land in a temp
// file in the destination directory, are synced, and replace path with a
// rename — a crash mid-write leaves the previous snapshot intact.
func WriteSnapshotFile(path string, d *db.Design, cfg Config, res *Result) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := EncodeSnapshot(tmp, d, cfg, res); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadSnapshotFile restores a Result from path against the live design.
func ReadSnapshotFile(path string, d *db.Design, cfg Config) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSnapshot(f, d, cfg)
}
