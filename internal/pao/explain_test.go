package pao

import (
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/suite"
	"repro/internal/tech"
)

// TestExplainDifferential proves the explain audit is truthful: for every
// candidate access point in the report, every per-via verdict must equal the
// answer a live (uncached) CheckVia gives for the same via at the same point —
// whether the explain re-derivation itself ran with the verdict caches on or
// off. This is the contract that lets an operator trust /v1/access/explain as
// evidence of what the oracle actually checked.
func TestExplainDifferential(t *testing.T) {
	for _, spec := range []suite.Spec{
		suite.Testcases[0], // 45 nm
		suite.Testcases[3], // 32 nm, jittered rows
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d, err := suite.Generate(spec.Scale(0.02))
			if err != nil {
				t.Fatal(err)
			}
			ui := d.UniqueInstances()[0]
			inst := ui.Pivot()
			pins := inst.Master.SignalPins()
			if len(pins) == 0 {
				t.Fatal("pivot has no signal pins")
			}
			pin := pins[0]

			for _, noCache := range []bool{false, true} {
				name := "cache-on"
				if noCache {
					name = "cache-off"
				}
				t.Run(name, func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.NoCache = noCache
					rep, err := Explain(d, cfg, inst, pin.Name)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Quarantined {
						t.Fatalf("explain quarantined: %s", rep.QuarantineError)
					}
					if rep.Cached == noCache {
						t.Fatalf("Cached = %v with NoCache = %v", rep.Cached, noCache)
					}
					if len(rep.APs) == 0 {
						t.Fatal("explain recorded no candidate access points")
					}
					if noCache {
						if rep.Cache.ViaHits != 0 || rep.Cache.ViaMisses != 0 {
							t.Fatalf("cache-off audit reports cache traffic: %+v", rep.Cache)
						}
					} else if rep.Cache.ViaHits+rep.Cache.ViaMisses == 0 {
						t.Fatalf("cache-on audit reports no via-cache traffic: %+v", rep.Cache)
					}
					diffVerdicts(t, d, ui, pin, rep)
				})
			}
		})
	}
}

// diffVerdicts re-checks every audited via verdict against a fresh uncached
// engine over the same isolated cell context and fails on any mismatch.
func diffVerdicts(t *testing.T, d *db.Design, ui *db.UniqueInstance, pin *db.MPin, rep *ExplainReport) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NoCache = true
	live := NewAnalyzer(d, cfg)
	eng, nets := live.cellEngine(ui)
	pivot := ui.Pivot()
	net := nets[pin.Name]

	viaByName := make(map[string]*tech.ViaDef)
	for layer := 0; layer < d.Tech.NumMetals(); layer++ {
		for _, v := range d.Tech.ViasAbove(layer) {
			viaByName[v.Name] = v
		}
	}

	checked := 0
	for _, au := range rep.APs {
		pinRects := pinRectsOnLayer(pivot, pin, au.Layer)
		for _, va := range au.Vias {
			v := viaByName[va.Via]
			if v == nil {
				t.Fatalf("audit names unknown via %q", va.Via)
			}
			got := len(eng.CheckVia(v, geom.Pt(au.X, au.Y), net, pinRects))
			if got != va.Violations {
				t.Errorf("AP (%d,%d) layer %d via %s: audit verdict %d, live CheckVia %d (from_cache=%v)",
					au.X, au.Y, au.Layer, va.Via, va.Violations, got, va.FromCache)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("audit contains no via verdicts to verify")
	}
}
