package pao

import (
	"math"
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
)

// The Fig-named tests assert the behaviours the paper's concept figures
// depict (DESIGN.md's per-experiment index points here; the Fig. 3 scenario
// lives in internal/drc's TestMinStepFig3).

// TestFig1UniqueInstances: same master and orientation but different offsets
// to the track patterns -> separate unique instances requiring separate
// intra-cell analyses with different access points.
func TestFig1UniqueInstances(t *testing.T) {
	d := newDesign45("fig1")
	m := &db.Master{Name: "F1", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{sigPin("A", geom.R(70, 455, 490, 525))}}
	mustAdd(t, d, m)
	mustPlace(t, d, "a", m, 0, 0, geom.OrientN)
	mustPlace(t, d, "b", m, 630, 0, geom.OrientN) // 630 % 140 = 70: new phase

	uis := d.UniqueInstances()
	if len(uis) != 2 {
		t.Fatalf("unique instances = %d, want 2 (Fig. 1 situation)", len(uis))
	}
	a := NewAnalyzer(d, DefaultConfig())
	ua0 := a.AnalyzeUnique(uis[0])
	ua1 := a.AnalyzeUnique(uis[1])
	// The same pin sees different on-track conditions: compare the x offsets
	// of the generated APs relative to each instance origin.
	rel := func(ua *UniqueAccess) map[int64]bool {
		out := map[int64]bool{}
		for _, ap := range ua.Pins[0].APs {
			out[ap.Pos.X-ua.UI.Pivot().Pos.X] = true
		}
		return out
	}
	r0, r1 := rel(ua0), rel(ua1)
	same := len(r0) == len(r1)
	if same {
		for k := range r0 {
			if !r1[k] {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("both unique instances produced identical relative APs %v — phases had no effect", r0)
	}
}

// TestFig2AccessDirections: access points carry per-direction validity — a
// macro pin in open space allows planar access in multiple directions plus
// the up-via; a direction blocked by an obstruction is invalid.
func TestFig2AccessDirections(t *testing.T) {
	d := newDesign45("fig2")
	m := &db.Master{Name: "BLK", Class: db.ClassBlock, Size: geom.Pt(5600, 5600),
		Pins: []*db.MPin{sigPin("P", geom.R(2100, 2835, 3500, 2905))},
		Obs: []db.Shape{
			{Layer: 1, Rect: geom.R(3600, 2485, 3700, 3255)}, // wall east of the pin
		}}
	mustAdd(t, d, m)
	mustPlace(t, d, "blk", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	ua := a.AnalyzeUnique(d.UniqueInstances()[0])
	if len(ua.Pins) != 1 || len(ua.Pins[0].APs) == 0 {
		t.Fatal("macro pin has no APs")
	}
	anyUp, anyWest, anyEastBlocked := false, false, true
	for _, ap := range ua.Pins[0].APs {
		if ap.Dirs[DirUp] {
			anyUp = true
		}
		if ap.Dirs[DirWest] {
			anyWest = true
		}
		// APs near the east end would collide with the obstruction wall.
		if ap.Pos.X > 3300 && ap.Dirs[DirEast] {
			anyEastBlocked = false
		}
	}
	if !anyUp {
		t.Error("no up-via access on the macro pin")
	}
	if !anyWest {
		t.Error("no planar west access on the macro pin")
	}
	if !anyEastBlocked {
		t.Error("east access near the obstruction wall must be blocked")
	}
}

// TestFig5PinOrdering: pins sort by x_avg + alpha*y_avg; with a small alpha
// the order follows x, and alpha breaks ties using y.
func TestFig5PinOrdering(t *testing.T) {
	d := newDesign45("fig5")
	m := &db.Master{Name: "F5", Class: db.ClassCore, Size: geom.Pt(1680, 1400),
		Pins: []*db.MPin{
			sigPin("Z", geom.R(1330, 455, 1470, 525)),
			sigPin("B", geom.R(490, 455, 630, 525)),
			sigPin("A", geom.R(70, 455, 210, 525)),
			sigPin("C", geom.R(910, 455, 1050, 525)),
		}}
	mustAdd(t, d, m)
	mustPlace(t, d, "u", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	ua := a.AnalyzeUnique(d.UniqueInstances()[0])
	var got []string
	for _, pa := range ua.Pins {
		got = append(got, pa.Pin.Name)
	}
	want := []string{"A", "B", "C", "Z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pin order = %v, want %v (Fig. 5)", got, want)
		}
	}
}

// TestFig6DPOptimality: the Algorithm 2 DP finds the same minimum-cost
// pattern as brute-force enumeration over all access point combinations
// (first iteration: no boundary penalties yet).
func TestFig6DPOptimality(t *testing.T) {
	d := newDesign45("fig6")
	m := edgeConflictMaster("F6")
	// A third pin between the two edge pins for a three-stage graph.
	m.Pins = append(m.Pins[:1], append([]*db.MPin{
		sigPin("M", geom.R(70, 875, 210, 945)),
	}, m.Pins[1:]...)...)
	mustAdd(t, d, m)
	mustPlace(t, d, "u", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	ua := a.AnalyzeUnique(d.UniqueInstances()[0])
	if len(ua.Patterns) == 0 {
		t.Fatal("no patterns")
	}

	// Brute force: replicate the DP's cost function (vertex cost of the
	// first pin + edge costs of consecutive pairs, DRC pairs forbidden).
	groups := activeGroups(ua)
	best := math.MaxInt
	var rec func(gi int, choice []int, cost int, prev, prevPrev *AccessPoint)
	rec = func(gi int, choice []int, cost int, prev, prevPrev *AccessPoint) {
		if gi == len(groups) {
			if cost < best {
				best = cost
			}
			return
		}
		for ci, ap := range ua.Pins[groups[gi]].APs {
			c := cost
			if gi == 0 {
				c += ap.Cost()
			} else {
				switch {
				case !a.apPairClean(prev, ap, 1, 2):
					c += a.Cfg.DRCCost
				case prevPrev != nil && !a.apPairClean(prevPrev, ap, 1, 2):
					c += a.Cfg.DRCCost
				default:
					c += prev.Cost() + ap.Cost()
				}
			}
			choice[gi] = ci
			rec(gi+1, choice, c, ap, prev)
		}
	}
	rec(0, make([]int, len(groups)), 0, nil, nil)

	// Recompute the DP's first-iteration cost with the same formula.
	dpChoice := ua.Patterns[0].Choice
	dpCost := 0
	var prev, prevPrev *AccessPoint
	for gi, pinIdx := range groups {
		ap := ua.Pins[pinIdx].APs[dpChoice[pinIdx]]
		if gi == 0 {
			dpCost += ap.Cost()
		} else {
			switch {
			case !a.apPairClean(prev, ap, 1, 2):
				dpCost += a.Cfg.DRCCost
			case prevPrev != nil && !a.apPairClean(prevPrev, ap, 1, 2):
				dpCost += a.Cfg.DRCCost
			default:
				dpCost += prev.Cost() + ap.Cost()
			}
		}
		prevPrev = prev
		prev = ap
	}
	if dpCost != best {
		t.Fatalf("DP cost %d != brute-force optimum %d", dpCost, best)
	}
}

// TestFig4IterativeDiversity: repeated DP runs with boundary penalties emit
// patterns with different boundary access points (the Fig. 4 iteration loop).
func TestFig4IterativeDiversity(t *testing.T) {
	d := newDesign45("fig4")
	m := edgeConflictMaster("F4")
	mustAdd(t, d, m)
	mustPlace(t, d, "u", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	ua := a.AnalyzeUnique(d.UniqueInstances()[0])
	if len(ua.Patterns) < 2 {
		t.Fatalf("patterns = %d, want >= 2", len(ua.Patterns))
	}
	first := map[geom.Point]bool{}
	last := map[geom.Point]bool{}
	for _, p := range ua.Patterns {
		first[ua.APOf(p, 0).Pos] = true
		last[ua.APOf(p, len(ua.Pins)-1).Pos] = true
	}
	if len(first) < 2 && len(last) < 2 {
		t.Fatalf("boundary APs did not diversify: first %v last %v", first, last)
	}
}

// TestFig7ClusterGraph: the Step-3 DP operates per cluster and members of
// different clusters never constrain each other (a gap in the row splits the
// cluster).
func TestFig7ClusterGraph(t *testing.T) {
	d := newDesign45("fig7")
	m := edgeConflictMaster("F7")
	mustAdd(t, d, m)
	i0 := mustPlace(t, d, "i0", m, 0, 0, geom.OrientN)
	i1 := mustPlace(t, d, "i1", m, 560, 0, geom.OrientN)        // abuts i0
	i2 := mustPlace(t, d, "i2", m, 560*2+1400, 0, geom.OrientN) // gap: new cluster
	pinB, pinZ := m.PinByName("B"), m.PinByName("Z")
	d.Nets = []*db.Net{
		{Name: "n0", Terms: []db.Term{{Inst: i0, Pin: pinB}, {Inst: i0, Pin: pinZ}}},
		{Name: "n1", Terms: []db.Term{{Inst: i1, Pin: pinB}, {Inst: i1, Pin: pinZ}}},
		{Name: "n2", Terms: []db.Term{{Inst: i2, Pin: pinB}, {Inst: i2, Pin: pinZ}}},
	}
	cs := d.Clusters()
	if len(cs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(cs))
	}
	res := NewAnalyzer(d, DefaultConfig()).Run()
	if res.Stats.FailedPins != 0 {
		t.Fatalf("FailedPins = %d", res.Stats.FailedPins)
	}
	// The isolated instance keeps its first (cheapest) pattern; the abutting
	// pair resolves its boundary conflict by pattern selection.
	if res.Selected[i2.ID] != 0 {
		t.Errorf("isolated instance selected pattern %d, want 0", res.Selected[i2.ID])
	}
	if res.Selected[i0.ID] == 0 && res.Selected[i1.ID] == 0 {
		t.Error("abutting instances both kept pattern 0; the boundary conflict was not resolved by selection")
	}
}
