package pao

import (
	"sync"
	"sync/atomic"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/tech"
)

// pairCache memoizes ViaPairClean. The predicate is a pure function of the
// two via definitions, their relative offset, and the same-net relation —
// every rule it evaluates is translation invariant and the net IDs only feed
// the same-net exemption — so one computed answer serves every placement of
// the same via pair at the same offset, across Step-2 pattern validation and
// Step-3 edge costs alike.
//
// Like drc.ViaCache, fills are exactly-once per key (singleflight) so the
// hit/miss counters published through obs stay identical for any worker
// schedule.
type pairCache struct {
	// viaIdx gives each via definition of the technology a compact index for
	// the key; vias outside the technology bypass the cache.
	viaIdx map[*tech.ViaDef]uint16

	shards [pairShards]pairShard

	hits, misses atomic.Int64
}

const (
	pairShards = 32
	// pairShardCap bounds each shard; an overflowing shard resets wholesale.
	pairShardCap = 1 << 15
)

type pairShard struct {
	mu sync.Mutex
	m  map[pairKey]*pairEntry
}

type pairKey struct {
	v1, v2 uint16 // viaIdx of the two definitions, in call order
	dx, dy int64  // p2 - p1
	same   bool   // drc same-net relation of the two nets
}

type pairEntry struct {
	wg     sync.WaitGroup
	clean  bool
	failed bool // the fill panicked; waiters recompute uncached
}

func newPairCache(t *tech.Technology) *pairCache {
	c := &pairCache{viaIdx: make(map[*tech.ViaDef]uint16, len(t.Vias))}
	for i, v := range t.Vias {
		c.viaIdx[v] = uint16(i)
	}
	for i := range c.shards {
		c.shards[i].m = make(map[pairKey]*pairEntry)
	}
	return c
}

// Len returns the number of cached pair verdicts.
func (c *pairCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

func pairHash(k pairKey) uint64 {
	h := uint64(k.v1)<<17 ^ uint64(k.v2)<<1
	h ^= uint64(k.dx) * 0x9e3779b97f4a7c15
	h ^= uint64(k.dy) * 0xc2b2ae3d27d4eb4f
	if k.same {
		h ^= 0x5bf03635
	}
	return h ^ h>>29
}

// pairClean is ViaPairClean routed through the analyzer's memo (identical
// semantics; a nil cache — Config.NoCache — falls through to the direct
// check).
func (a *Analyzer) pairClean(v1 *tech.ViaDef, p1 geom.Point, n1 int, v2 *tech.ViaDef, p2 geom.Point, n2 int) bool {
	if v1 == nil || v2 == nil {
		return true
	}
	c := a.pairs
	if c == nil {
		return ViaPairClean(a.Design.Tech, v1, p1, n1, v2, p2, n2)
	}
	i1, ok1 := c.viaIdx[v1]
	i2, ok2 := c.viaIdx[v2]
	if !ok1 || !ok2 {
		return ViaPairClean(a.Design.Tech, v1, p1, n1, v2, p2, n2)
	}
	same := (n1 == n2 && n1 != drc.NoNet) || (n1 == drc.NoNet && n2 == drc.NoNet)
	key := pairKey{v1: i1, v2: i2, dx: p2.X - p1.X, dy: p2.Y - p1.Y, same: same}
	sh := &c.shards[pairHash(key)%pairShards]
	sh.mu.Lock()
	ent, ok := sh.m[key]
	if !ok {
		if len(sh.m) >= pairShardCap {
			sh.m = make(map[pairKey]*pairEntry)
		}
		ent = &pairEntry{}
		ent.wg.Add(1)
		sh.m[key] = ent
	}
	sh.mu.Unlock()
	if ok {
		ent.wg.Wait()
		if !ent.failed {
			c.hits.Add(1)
			return ent.clean
		}
		return ViaPairClean(a.Design.Tech, v1, p1, n1, v2, p2, n2)
	}
	c.misses.Add(1)
	defer func() {
		if r := recover(); r != nil {
			ent.failed = true
			ent.wg.Done()
			panic(r)
		}
	}()
	ent.clean = ViaPairClean(a.Design.Tech, v1, p1, n1, v2, p2, n2)
	ent.wg.Done()
	return ent.clean
}
