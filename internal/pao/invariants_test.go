package pao

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/suite"
)

// TestSuiteInvariants sweeps several generated testcases and asserts the
// framework's structural invariants on the real workloads:
//
//  1. every access point lies on its pin's shape;
//  2. every access point's primary via re-validates clean in the isolated
//     cell context (Step 1's contract — zero dirty APs);
//  3. every emitted pattern's chosen access points are pairwise via-clean,
//     including non-neighbors (the "unseen DRCs" validation);
//  4. pattern choices index valid access points;
//  5. members of a unique instance class receive translated copies of the
//     same access point set.
func TestSuiteInvariants(t *testing.T) {
	for _, spec := range []suite.Spec{
		suite.Testcases[0], // 45 nm
		suite.Testcases[3], // 32 nm, jittered rows
		suite.AES14,        // 14 nm, misaligned
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d, err := suite.Generate(spec.Scale(0.01))
			if err != nil {
				t.Fatal(err)
			}
			a := NewAnalyzer(d, DefaultConfig())
			res := a.Run()

			if dirty := a.CountDirtyAPs(res); dirty != 0 {
				t.Errorf("invariant 2: %d dirty APs", dirty)
			}
			for _, ua := range res.Unique {
				pivot := ua.UI.Pivot()
				for _, pa := range ua.Pins {
					var rects []geom.Rect
					for _, s := range pivot.PinShapes(pa.Pin) {
						rects = append(rects, s.Rect)
					}
					for _, ap := range pa.APs {
						if !geom.CoversPt(rects, ap.Pos) {
							t.Fatalf("invariant 1: AP %v off pin %s/%s", ap, pivot.Master.Name, pa.Pin.Name)
						}
					}
				}
				for _, pat := range ua.Patterns {
					if len(pat.Choice) != len(ua.Pins) {
						t.Fatalf("invariant 4: choice length %d != %d pins", len(pat.Choice), len(ua.Pins))
					}
					var chosen []*AccessPoint
					for i, c := range pat.Choice {
						if c < 0 {
							continue
						}
						if c >= len(ua.Pins[i].APs) {
							t.Fatalf("invariant 4: choice %d out of range", c)
						}
						chosen = append(chosen, ua.Pins[i].APs[c])
					}
					for i := 0; i < len(chosen); i++ {
						for j := i + 1; j < len(chosen); j++ {
							if !a.apPairClean(chosen[i], chosen[j], 1, 2) {
								t.Fatalf("invariant 3: pattern pair %v / %v conflicts", chosen[i], chosen[j])
							}
						}
					}
				}
				// Invariant 5: spot-check the translation for one member.
				if len(ua.UI.Insts) > 1 {
					member := ua.UI.Insts[1]
					for _, pa := range ua.Pins {
						if len(pa.APs) == 0 {
							continue
						}
						p := Translate(ua.UI, member, pa.APs[0].Pos)
						var rects []geom.Rect
						for _, s := range member.PinShapes(pa.Pin) {
							rects = append(rects, s.Rect)
						}
						if !geom.CoversPt(rects, p) {
							t.Fatalf("invariant 5: translated AP %v off member pin %s/%s",
								p, member.Name, pa.Pin.Name)
						}
					}
				}
			}
		})
	}
}
