package pao_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/pao"
	"repro/internal/suite"
)

func partialDesign(t *testing.T) *db.Design {
	t.Helper()
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// interleave splits items into n round-robin subsets, so every subset mixes
// classes from across the design order (the adversarial case for merge-order
// bugs: a merge that keeps arrival order instead of design order fails).
func interleave(items []string, n int) [][]string {
	out := make([][]string, n)
	for i, it := range items {
		out[i%n] = append(out[i%n], it)
	}
	return out
}

func encodeZeroed(t *testing.T, d *db.Design, cfg pao.Config, res *pao.Result) []byte {
	t.Helper()
	res.Stats = res.Stats.Counts()
	var buf bytes.Buffer
	if err := pao.EncodeSnapshot(&buf, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPartialSliceMergeRoundTrip is the coordinator's merge primitive pinned
// at the wire level: a Result sliced to class subsets, each subset shipped
// through the snapshot format (encode -> decode), and the decoded partials
// merged back, must re-encode byte-identically to the original full snapshot.
func TestPartialSliceMergeRoundTrip(t *testing.T) {
	d := partialDesign(t)
	cfg := pao.DefaultConfig()
	full := pao.NewAnalyzer(d, cfg).Run()
	want := encodeZeroed(t, d, cfg, full)

	var sigs []string
	for _, ui := range d.UniqueInstances() {
		sigs = append(sigs, ui.Signature())
	}
	if len(sigs) < 3 {
		t.Fatalf("testcase has only %d classes; the split is vacuous", len(sigs))
	}
	var parts []*pao.Result
	for _, shard := range interleave(sigs, 3) {
		sliced := pao.SliceResult(full, d, shard)
		var wire bytes.Buffer
		if err := pao.EncodeSnapshot(&wire, d, cfg, sliced); err != nil {
			t.Fatal(err)
		}
		decoded, err := pao.DecodeSnapshot(bytes.NewReader(wire.Bytes()), d, cfg)
		if err != nil {
			t.Fatalf("partial snapshot did not round-trip: %v", err)
		}
		parts = append(parts, decoded)
	}
	// A duplicate partial (hedged shard arriving twice) and a nil (lost
	// worker) must both be harmless.
	parts = append(parts, parts[0], nil)
	merged := pao.MergeResults(d, parts...)
	merged.Stats.TotalPins = full.Stats.TotalPins
	merged.Stats.FailedPins = full.Stats.FailedPins
	got := encodeZeroed(t, d, cfg, merged)
	if !bytes.Equal(got, want) {
		t.Fatalf("slice -> wire -> merge is not the identity: %d vs %d bytes", len(got), len(want))
	}
}

// TestAnalyzeSelectShardsEquivalence drives the full distributed decomposition
// in-process: Steps 1-2 sharded by class via AnalyzeClasses, merged, default
// selections seeded, Step 3 sharded by cluster via SelectClusters, and the
// failed-pin recount done once at the end — byte-identical to RunContext.
func TestAnalyzeSelectShardsEquivalence(t *testing.T) {
	d := partialDesign(t)
	cfg := pao.DefaultConfig()
	full := pao.NewAnalyzer(d, cfg).Run()
	want := encodeZeroed(t, d, cfg, full)

	var sigs []string
	for _, ui := range d.UniqueInstances() {
		sigs = append(sigs, ui.Signature())
	}
	ctx := context.Background()
	var parts []*pao.Result
	for _, shard := range interleave(sigs, 3) {
		// A fresh analyzer per shard mirrors separate worker processes.
		part, err := pao.NewAnalyzer(d, cfg).AnalyzeClasses(ctx, shard)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, part)
	}
	merged := pao.MergeResults(d, parts...)
	pao.SeedDefaultSelections(d, merged)

	var keys []string
	for _, cl := range d.Clusters() {
		keys = append(keys, pao.ClusterKey(cl))
	}
	for _, shard := range interleave(keys, 2) {
		a := pao.NewAnalyzer(d, cfg)
		picks, h, err := a.SelectClusters(ctx, merged, a.GlobalEngine(), shard)
		if err != nil {
			t.Fatal(err)
		}
		if !h.OK() {
			t.Fatalf("selection shard degraded unexpectedly: %s", h)
		}
		for inst, ni := range picks {
			merged.Selected[inst] = ni
		}
	}
	fin := pao.NewAnalyzer(d, cfg)
	fin.CountFailedPins(merged, fin.GlobalEngine())

	got := encodeZeroed(t, d, cfg, merged)
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded analyze+select differs from single-process run: %d vs %d bytes",
			len(got), len(want))
	}
}

func TestAnalyzeClassesUnknownSignature(t *testing.T) {
	d := partialDesign(t)
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	_, err := a.AnalyzeClasses(context.Background(), []string{"NO_SUCH/N/0"})
	if err == nil || !strings.Contains(err.Error(), "not in design") {
		t.Fatalf("unknown signature must be a protocol error, got %v", err)
	}
}

func TestSelectClustersUnknownKey(t *testing.T) {
	d := partialDesign(t)
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	res := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	_, _, err := a.SelectClusters(context.Background(), res, a.GlobalEngine(), []string{"cluster:nope"})
	if err == nil || !strings.Contains(err.Error(), "not in design") {
		t.Fatalf("unknown cluster key must be a protocol error, got %v", err)
	}
}

// TestAnalyzeClassesCancelled pins the degradation contract: a cancelled
// context yields a partial result with Health.Cancelled set and ctx.Err()
// returned, never a nil result.
func TestAnalyzeClassesCancelled(t *testing.T) {
	d := partialDesign(t)
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sigs []string
	for _, ui := range d.UniqueInstances() {
		sigs = append(sigs, ui.Signature())
	}
	res, err := a.AnalyzeClasses(ctx, sigs)
	if err == nil {
		t.Fatal("cancelled AnalyzeClasses must return ctx.Err()")
	}
	if res == nil || !res.Health.Cancelled() {
		t.Fatal("cancelled AnalyzeClasses must return a partial result with Cancelled health")
	}
}
