package pao_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/suite"
)

func faultDesign(t *testing.T) *db.Design {
	t.Helper()
	d, err := suite.Generate(suite.Testcases[0].Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// formatUA serializes one class's full analysis result — ordered pins, every
// access point with vias, every pattern — for byte-level comparison.
func formatUA(ua *pao.UniqueAccess) string {
	var b strings.Builder
	for _, pa := range ua.Pins {
		fmt.Fprintf(&b, "pin %s:", pa.Pin.Name)
		for _, ap := range pa.APs {
			via := "-"
			if v := ap.Primary(); v != nil {
				via = v.Name
			}
			fmt.Fprintf(&b, " %v/%s", ap, via)
		}
		b.WriteByte('\n')
	}
	for _, p := range ua.Patterns {
		fmt.Fprintf(&b, "pattern %v cost=%d\n", p.Choice, p.Cost)
	}
	return b.String()
}

// uaBySig maps class signature to its serialized analysis.
func uaBySig(res *pao.Result) map[string]string {
	out := make(map[string]string, len(res.Unique))
	for _, ua := range res.Unique {
		out[ua.UI.Signature()] = formatUA(ua)
	}
	return out
}

// TestFaultPanicsQuarantineClasses is the headline acceptance test: K panics
// injected into K distinct unique-instance classes yield exactly K failed
// classes, every surviving class byte-identical to a clean run, and the
// process never crashes.
func TestFaultPanicsQuarantineClasses(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d := faultDesign(t)
			cfg := pao.DefaultConfig()
			cfg.Workers = workers
			clean := pao.NewAnalyzer(d, cfg).Run()
			if len(clean.Unique) < 5 {
				t.Fatalf("testcase too small: %d classes", len(clean.Unique))
			}
			// Target the first K classes by signature — detail-scoped faults
			// hit the same classes regardless of worker scheduling.
			var targets []string
			for _, ua := range clean.Unique[:3] {
				targets = append(targets, ua.UI.Signature())
			}
			sort.Strings(targets)

			in := faultinject.New()
			for _, sig := range targets {
				in.Add(&faultinject.Fault{
					Site: pao.SiteAnalyzeUnique, Detail: sig,
					Kind: faultinject.Panic, Note: "quarantine " + sig,
				})
			}
			a := pao.NewAnalyzer(faultDesign(t), cfg)
			a.FaultHook = in.SiteHook()
			o := obs.NewObserver("fault")
			a.Obs = o
			res, err := a.RunContext(context.Background())
			if err != nil {
				t.Fatalf("graceful degradation must not return an error: %v", err)
			}

			failed := res.Health.FailedClasses()
			if !equalStrings(failed, targets) {
				t.Fatalf("failed classes %v, want %v", failed, targets)
			}
			if got := len(res.Health.Errors()); got != len(targets) {
				t.Errorf("%d recovered errors, want %d", got, len(targets))
			}
			for _, e := range res.Health.Errors() {
				if e.Step != pao.StepAnalyze || e.Stack == "" {
					t.Errorf("error missing step/stack: %+v", e)
				}
			}
			if res.Stats.NumUnique != len(clean.Unique)-len(targets) {
				t.Errorf("NumUnique %d, want %d", res.Stats.NumUnique, len(clean.Unique)-len(targets))
			}

			// Every surviving class must be byte-identical to the clean run.
			cleanUA, faultUA := uaBySig(clean), uaBySig(res)
			for sig, want := range cleanUA {
				if contains(targets, sig) {
					if _, ok := faultUA[sig]; ok {
						t.Errorf("failed class %s still has results", sig)
					}
					continue
				}
				if faultUA[sig] != want {
					t.Errorf("surviving class %s diverged from clean run:\n--- clean\n%s--- fault\n%s",
						sig, want, faultUA[sig])
				}
			}

			counters := o.Registry.Snapshot().Counters
			if got := counters["pao.panics.recovered"]; got != int64(len(targets)) {
				t.Errorf("pao.panics.recovered = %d, want %d", got, len(targets))
			}
			if got := counters["pao.degraded.classes"]; got != int64(len(targets)) {
				t.Errorf("pao.degraded.classes = %d, want %d", got, len(targets))
			}
			if _, ok := counters["pao.cancelled"]; ok {
				t.Error("pao.cancelled must not be published on an uncancelled run")
			}
		})
	}
}

// TestFaultDeadlineReturnsPartial: injected per-class slowness plus a 50ms
// deadline must return context.DeadlineExceeded with a partial health report
// in bounded wall-clock, not hang.
func TestFaultDeadlineReturnsPartial(t *testing.T) {
	d := faultDesign(t)
	in := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteAnalyzeUnique, Kind: faultinject.Delay,
		Sleep: 5 * time.Millisecond, Note: "slow class",
	})
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	a.FaultHook = in.SiteHook()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	res, err := a.RunContext(ctx)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res == nil || res.Health == nil {
		t.Fatal("cancelled run must still return a partial result with health")
	}
	if !res.Health.Cancelled() {
		t.Error("health must report cancellation")
	}
	// Bound: the run must stop within a couple of per-class delays of the
	// deadline, far below the ~full-suite runtime the delays would imply.
	if elapsed > 2*time.Second {
		t.Errorf("run took %v after a 50ms deadline", elapsed)
	}
	if res.Stats.NumUnique >= len(d.UniqueInstances()) {
		t.Errorf("expected a partial result, got all %d classes", res.Stats.NumUnique)
	}
}

// TestFaultWorkerRespawn: a panic that escapes the per-class recovery (the
// pao.worker.item site sits outside it) kills the worker goroutine; the pool
// must respawn a replacement, finish every other class, and record the
// in-flight class as failed.
func TestFaultWorkerRespawn(t *testing.T) {
	d := faultDesign(t)
	cfg := pao.DefaultConfig()
	cfg.Workers = 2
	clean := pao.NewAnalyzer(d, cfg).Run()
	var targets []string
	for _, ua := range clean.Unique[:2] {
		targets = append(targets, ua.UI.Signature())
	}
	sort.Strings(targets)

	in := faultinject.New()
	for _, sig := range targets {
		in.Add(&faultinject.Fault{
			Site: pao.SiteWorkerItem, Detail: sig,
			Kind: faultinject.Panic, Note: "kill worker at " + sig,
		})
	}
	a := pao.NewAnalyzer(faultDesign(t), cfg)
	a.FaultHook = in.SiteHook()
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := res.Health.Respawns(); got != len(targets) {
		t.Errorf("%d respawns, want %d", got, len(targets))
	}
	if failed := res.Health.FailedClasses(); !equalStrings(failed, targets) {
		t.Errorf("failed classes %v, want %v", failed, targets)
	}
	// The pool did not shrink: every untargeted class was still analyzed.
	if res.Stats.NumUnique != len(clean.Unique)-len(targets) {
		t.Errorf("NumUnique %d, want %d", res.Stats.NumUnique, len(clean.Unique)-len(targets))
	}
}

// TestFaultFailFast: with Config.FailFast the first recovered panic aborts
// the run and surfaces as a *PipelineError from RunContext.
func TestFaultFailFast(t *testing.T) {
	d := faultDesign(t)
	clean := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	target := clean.Unique[0].UI.Signature()

	in := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteAnalyzeUnique, Detail: target, Kind: faultinject.Panic,
	})
	cfg := pao.DefaultConfig()
	cfg.FailFast = true
	a := pao.NewAnalyzer(faultDesign(t), cfg)
	a.FaultHook = in.SiteHook()
	res, err := a.RunContext(context.Background())
	if err == nil {
		t.Fatal("fail-fast run must return an error")
	}
	var perr *pao.PipelineError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %T %v, want *pao.PipelineError", err, err)
	}
	if perr.Signature != target {
		t.Errorf("error signature %q, want %q", perr.Signature, target)
	}
	if res == nil {
		t.Fatal("fail-fast must still return the partial result")
	}
}

// TestFaultSelectClusterDegrades: a panic in one cluster's Step-3 DP
// degrades its member classes (default pattern retained) without failing
// them, and the run completes.
func TestFaultSelectClusterDegrades(t *testing.T) {
	d := faultDesign(t)
	clean := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()

	in := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteSelectCluster, Call: 1, Kind: faultinject.Panic,
	})
	a := pao.NewAnalyzer(faultDesign(t), pao.DefaultConfig())
	a.FaultHook = in.SiteHook()
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(res.Health.DegradedClasses()) == 0 {
		t.Error("cluster panic must degrade its member classes")
	}
	if len(res.Health.FailedClasses()) != 0 {
		t.Errorf("cluster panic must not fail classes: %v", res.Health.FailedClasses())
	}
	// Step 1/2 results are untouched by a Step-3 fault.
	if res.Stats.NumUnique != clean.Stats.NumUnique || res.Stats.TotalAPs != clean.Stats.TotalAPs {
		t.Errorf("step-1/2 stats diverged: %+v vs %+v", res.Stats.Counts(), clean.Stats.Counts())
	}
	// Degraded members still resolve an access point via the default pattern.
	if res.Stats.TotalPins != clean.Stats.TotalPins {
		t.Errorf("TotalPins %d, want %d", res.Stats.TotalPins, clean.Stats.TotalPins)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
