package pao

import (
	"testing"

	"repro/internal/geom"
)

// TestPatternKeyCollisionFree pins the fix for the truncating byte(c+1)
// encoding: choice indices that differ by 256, and index 255 versus the -1
// no-AP sentinel, used to produce identical keys — distinct patterns were
// then silently dropped as duplicates.
func TestPatternKeyCollisionFree(t *testing.T) {
	distinct := [][2][]int{
		{{255}, {-1}},             // byte(255+1) == byte(-1+1) == 0
		{{0}, {256}},              // differ by exactly 256
		{{511, 2}, {255, 2}},      // high indices, 256 apart
		{{1, -1, 3}, {1, 255, 3}}, // sentinel vs 255 mid-vector
		{{12}, {1, 2}},            // different lengths must never alias
	}
	for _, c := range distinct {
		if patternKey(c[0]) == patternKey(c[1]) {
			t.Errorf("patternKey(%v) == patternKey(%v) = %q; want distinct keys",
				c[0], c[1], patternKey(c[0]))
		}
	}
	if patternKey([]int{3, -1, 500}) != patternKey([]int{3, -1, 500}) {
		t.Error("patternKey is not deterministic for equal vectors")
	}
}

// TestPairCacheAgreesWithViaPairClean drives the memoized pair predicate over
// a grid of offsets and net relations and requires exact agreement with the
// direct check, with repeats answered from the cache.
func TestPairCacheAgreesWithViaPairClean(t *testing.T) {
	d := newDesign45("paircache")
	a := NewAnalyzer(d, DefaultConfig())
	if a.pairs == nil {
		t.Fatal("default config must enable the pair cache")
	}
	v := d.Tech.ViaByName("VIA1_H")
	if v == nil {
		t.Fatal("VIA1_H missing")
	}
	p1 := geom.Pt(1000, 1000)
	lookups := 0
	for _, dx := range []int64{0, 70, 140, 280, 560, 1120} {
		for _, dy := range []int64{0, 140, 420} {
			for _, nets := range [][2]int{{1, 2}, {3, 3}} {
				p2 := geom.Pt(p1.X+dx, p1.Y+dy)
				want := ViaPairClean(d.Tech, v, p1, nets[0], v, p2, nets[1])
				for rep := 0; rep < 2; rep++ {
					if got := a.pairClean(v, p1, nets[0], v, p2, nets[1]); got != want {
						t.Fatalf("pairClean(dx=%d dy=%d nets=%v) = %v, want %v", dx, dy, nets, got, want)
					}
					lookups++
				}
			}
		}
	}
	hits, misses := a.pairs.hits.Load(), a.pairs.misses.Load()
	if hits+misses != int64(lookups) {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, lookups)
	}
	if misses != int64(a.pairs.Len()) {
		t.Fatalf("misses = %d but cache holds %d entries (fills must be exactly once)", misses, a.pairs.Len())
	}
	if hits == 0 {
		t.Fatal("repeated lookups produced no hits")
	}
	// Translation invariance: shifting both vias must hit existing entries.
	before := a.pairs.Len()
	shift := geom.Pt(7000, 2800)
	if got, want := a.pairClean(v, p1.Add(shift), 1, v, geom.Pt(p1.X+140, p1.Y).Add(shift), 2),
		ViaPairClean(d.Tech, v, p1, 1, v, geom.Pt(p1.X+140, p1.Y), 2); got != want {
		t.Fatalf("translated pairClean = %v, want %v", got, want)
	}
	if a.pairs.Len() != before {
		t.Fatal("translated lookup added a cache entry; the key must be offset-relative")
	}
}

// TestNoCacheDisablesMemoization: Config.NoCache must leave both memo layers
// unbuilt so every check is live.
func TestNoCacheDisablesMemoization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoCache = true
	d := newDesign45("nocache")
	a := NewAnalyzer(d, cfg)
	if a.pairs != nil || a.viaCache != nil {
		t.Fatal("NoCache must disable both caches")
	}
	if s := a.CacheStats(); s != (CacheStats{}) {
		t.Fatalf("CacheStats with NoCache = %+v, want zero", s)
	}
}
