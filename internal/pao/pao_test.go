package pao

import (
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

// newDesign45 builds an empty N45 design with M1 horizontal tracks and M2
// vertical tracks at pitch 140 starting at 70 (so cell-local geometry at
// x = k*140 placements keeps a stable phase).
func newDesign45(name string) *db.Design {
	tt := tech.N45()
	d := db.NewDesign(name, tt)
	d.Die = geom.R(0, 0, 28000, 14000)
	for layer := 1; layer <= 9; layer++ {
		l := tt.Metal(layer)
		num := 200
		if l.Dir == tech.Horizontal {
			d.Tracks = append(d.Tracks, db.TrackPattern{Layer: layer, WireDir: tech.Horizontal, Start: 70, Num: num, Step: l.Pitch})
		} else {
			d.Tracks = append(d.Tracks, db.TrackPattern{Layer: layer, WireDir: tech.Vertical, Start: 70, Num: num, Step: l.Pitch})
		}
	}
	return d
}

func sigPin(name string, rects ...geom.Rect) *db.MPin {
	p := &db.MPin{Name: name, Dir: db.DirInput, Use: db.UseSignal}
	for _, r := range rects {
		p.Shapes = append(p.Shapes, db.Shape{Layer: 1, Rect: r})
	}
	return p
}

func mustAdd(t *testing.T, d *db.Design, m *db.Master) {
	t.Helper()
	if err := d.AddMaster(m); err != nil {
		t.Fatal(err)
	}
}

func mustPlace(t *testing.T, d *db.Design, name string, m *db.Master, x, y int64, o geom.Orient) *db.Instance {
	t.Helper()
	inst := &db.Instance{Name: name, Master: m, Pos: geom.Pt(x, y), Orient: o}
	if err := d.AddInstance(inst); err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestStep1AlignedBar: a pin bar centered on a routing track yields on-track
// access points with valid up-vias, early-terminating around k = 3.
func TestStep1AlignedBar(t *testing.T) {
	d := newDesign45("aligned")
	m := &db.Master{Name: "ALN", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{sigPin("A", geom.R(0, 455, 280, 525))}}
	mustAdd(t, d, m)
	mustPlace(t, d, "u0", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	uis := d.UniqueInstances()
	if len(uis) != 1 {
		t.Fatalf("unique instances = %d", len(uis))
	}
	ua := a.AnalyzeUnique(uis[0])
	if len(ua.Pins) != 1 {
		t.Fatalf("pins = %d", len(ua.Pins))
	}
	aps := ua.Pins[0].APs
	// The half-track combination adds x=140 and x=280 together before the
	// early-termination check, so the result slightly exceeds k=3 — exactly
	// the "slightly larger than k" behaviour Section III-A describes.
	if len(aps) != 4 {
		for _, ap := range aps {
			t.Logf("ap %v cost %d vias %d", ap, ap.Cost(), len(ap.Vias))
		}
		t.Fatalf("got %d APs, want 4", len(aps))
	}
	wantPts := map[geom.Point]bool{
		geom.Pt(70, 490): true, geom.Pt(210, 490): true,
		geom.Pt(140, 490): true, geom.Pt(280, 490): true,
	}
	onTrack := 0
	for _, ap := range aps {
		if !wantPts[ap.Pos] {
			t.Errorf("unexpected AP position %v", ap.Pos)
		}
		if !ap.HasUp() || ap.Primary() == nil {
			t.Errorf("AP %v lacks up-via access", ap)
		}
		if ap.TypeY != OnTrack {
			t.Errorf("AP %v TypeY = %v, want onTrack", ap, ap.TypeY)
		}
		if !ap.OffTrack() {
			onTrack++
		}
	}
	if onTrack != 2 {
		t.Errorf("on-track APs = %d, want 2 (x=70 and x=210)", onTrack)
	}
}

// TestStep1OffTrackBar: a pin bar with no track inside its span yields
// shape-center (off-track) access points — the Fig. 9 behaviour.
func TestStep1OffTrackBar(t *testing.T) {
	d := newDesign45("offtrack")
	m := &db.Master{Name: "OFT", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{sigPin("A", geom.R(0, 390, 280, 460))}}
	mustAdd(t, d, m)
	mustPlace(t, d, "u0", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	ua := a.AnalyzeUnique(d.UniqueInstances()[0])
	aps := ua.Pins[0].APs
	if len(aps) == 0 {
		t.Fatal("no APs for off-track bar; shape-center must rescue it")
	}
	for _, ap := range aps {
		if !ap.OffTrack() {
			t.Errorf("AP %v should be off-track", ap)
		}
		if ap.TypeY != ShapeCenter {
			t.Errorf("AP %v TypeY = %v, want shapeCenter", ap, ap.TypeY)
		}
		if ap.Pos.Y != 425 {
			t.Errorf("AP %v y = %d, want 425 (bar center)", ap, ap.Pos.Y)
		}
		if !ap.HasUp() {
			t.Errorf("AP %v lacks via", ap)
		}
	}
}

// TestStep1EOLFiltering: an access point whose via enclosure's end-of-line
// window reaches a neighboring pin is rejected during Step 1.
func TestStep1EOLFiltering(t *testing.T) {
	d := newDesign45("eol")
	m := &db.Master{Name: "EOLC", Class: db.ClassCore, Size: geom.Pt(1120, 1400),
		Pins: []*db.MPin{
			sigPin("A", geom.R(0, 455, 280, 525)),
			sigPin("B", geom.R(350, 455, 630, 525)),
		}}
	mustAdd(t, d, m)
	mustPlace(t, d, "u0", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	ua := a.AnalyzeUnique(d.UniqueInstances()[0])
	var pa *PinAccess
	for _, p := range ua.Pins {
		if p.Pin.Name == "A" {
			pa = p
		}
	}
	if pa == nil || len(pa.APs) == 0 {
		t.Fatal("pin A has no APs")
	}
	for _, ap := range pa.APs {
		if ap.Pos.X == 210 {
			t.Errorf("AP at x=210 must be EOL-filtered (enclosure end 90nm window hits pin B at 350): %v", ap)
		}
	}
}

// tallPinMaster builds the EDGE master used by the step-2/3 tests: two
// two-track-tall pins on the same row, Z flush against the right cell edge.
func tallPinMaster(name string) *db.Master {
	return &db.Master{Name: name, Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{
			sigPin("A", geom.R(70, 490, 210, 630)),
			sigPin("Z", geom.R(280, 490, 560, 630)),
		}}
}

// TestStep2PatternsBCA: pattern generation emits multiple patterns whose
// boundary access points differ, and every pattern is internally via-clean.
func TestStep2PatternsBCA(t *testing.T) {
	d := newDesign45("bca")
	m := tallPinMaster("EDGE")
	mustAdd(t, d, m)
	mustPlace(t, d, "u0", m, 0, 0, geom.OrientN)

	a := NewAnalyzer(d, DefaultConfig())
	ua := a.AnalyzeUnique(d.UniqueInstances()[0])
	if len(ua.Pins) != 2 {
		t.Fatalf("pins = %d", len(ua.Pins))
	}
	if ua.Pins[0].Pin.Name != "A" || ua.Pins[1].Pin.Name != "Z" {
		t.Fatalf("pin order = %s,%s; want A,Z", ua.Pins[0].Pin.Name, ua.Pins[1].Pin.Name)
	}
	if len(ua.Patterns) < 2 {
		t.Fatalf("got %d patterns, want >= 2 with BCA", len(ua.Patterns))
	}
	// Tall bars: no on-track y is legal (enclosure would step off the bar).
	for _, pa := range ua.Pins {
		for _, ap := range pa.APs {
			if ap.TypeY == OnTrack {
				t.Errorf("tall-bar AP %v must not be on-track in y", ap)
			}
		}
	}
	// Patterns are internally clean and differ in at least one boundary AP.
	seenBoundary := map[[2]geom.Point]bool{}
	for _, p := range ua.Patterns {
		a1 := ua.APOf(p, 0)
		a2 := ua.APOf(p, 1)
		if a1 == nil || a2 == nil {
			t.Fatalf("pattern misses a pin choice: %+v", p.Choice)
		}
		if !ViaPairClean(d.Tech, a1.Primary(), a1.Pos, 1, a2.Primary(), a2.Pos, 2) {
			t.Errorf("pattern %v/%v has conflicting vias", a1, a2)
		}
		key := [2]geom.Point{a1.Pos, a2.Pos}
		if seenBoundary[key] {
			t.Errorf("duplicate pattern boundary %v", key)
		}
		seenBoundary[key] = true
	}
}

// edgeConflictMaster builds the master used by the Step-3 tests: two
// single-track pins B and Z on the same row. Each pin has exactly two access
// points differing in x: a cost-0 on-track one and a cost-1 half-track one.
// When two instances abut, the cheap choices conflict across the boundary:
// the left Z's enclosure overhangs to the cell edge and its end-of-line
// window reaches the right B's pin bar (and vice versa) — an inter-cell
// conflict invisible to the isolated Steps 1-2 that BCA + Step 3 must
// resolve.
func edgeConflictMaster(name string) *db.Master {
	return &db.Master{Name: name, Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{
			sigPin("B", geom.R(70, 455, 210, 525)),
			sigPin("Z", geom.R(350, 455, 490, 525)),
		}}
}

// buildEdgeDesign places two edgeConflictMaster instances flush against each
// other (560 = 4*140 keeps the track phase, so both share one unique
// instance).
func buildEdgeDesign(t *testing.T) *db.Design {
	t.Helper()
	d := newDesign45("edge2")
	m := edgeConflictMaster("EDGE2")
	mustAdd(t, d, m)
	i0 := mustPlace(t, d, "i0", m, 0, 0, geom.OrientN)
	i1 := mustPlace(t, d, "i1", m, 560, 0, geom.OrientN)
	pinB, pinZ := m.PinByName("B"), m.PinByName("Z")
	d.Nets = []*db.Net{
		{Name: "n0", Terms: []db.Term{{Inst: i0, Pin: pinB}, {Inst: i0, Pin: pinZ}}},
		{Name: "n1", Terms: []db.Term{{Inst: i1, Pin: pinB}, {Inst: i1, Pin: pinZ}}},
	}
	return d
}

func TestStep3ResolvesInterCellConflict(t *testing.T) {
	d := buildEdgeDesign(t)
	// Both instances share one unique instance (560 = 4 * 140 keeps phase).
	if got := len(d.UniqueInstances()); got != 1 {
		t.Fatalf("unique instances = %d, want 1", got)
	}
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	if res.Stats.TotalPins != 4 {
		t.Fatalf("TotalPins = %d, want 4", res.Stats.TotalPins)
	}
	if res.Stats.FailedPins != 0 {
		t.Fatalf("FailedPins = %d, want 0 with BCA + Step 3", res.Stats.FailedPins)
	}
}

func TestWithoutBCAFails(t *testing.T) {
	d := buildEdgeDesign(t)
	cfg := DefaultConfig()
	cfg.BCA = false
	a := NewAnalyzer(d, cfg)
	res := a.Run()
	if res.Stats.PatternsBuilt != 1 {
		t.Fatalf("w/o BCA built %d patterns, want 1", res.Stats.PatternsBuilt)
	}
	if res.Stats.FailedPins != 2 {
		t.Fatalf("w/o BCA FailedPins = %d, want 2 (i0.Z and i1.B; the Table III mechanism)", res.Stats.FailedPins)
	}
	// Sanity: with BCA the same design is clean (TestStep3ResolvesInterCellConflict).
}

func TestTranslateAndAccessPointFor(t *testing.T) {
	d := buildEdgeDesign(t)
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	i0 := d.InstByName("i0")
	i1 := d.InstByName("i1")
	m := d.MasterByName("EDGE2")
	ap0 := res.AccessPointFor(i0, m.PinByName("B"))
	ap1 := res.AccessPointFor(i1, m.PinByName("B"))
	if ap0 == nil || ap1 == nil {
		t.Fatal("missing access points")
	}
	// i1 = i0 translated by (560, 0); access points may differ by pattern
	// choice but must land on the translated pin shape.
	if ap1.Pos.X <= 560 {
		t.Errorf("i1 AP %v not translated into i1's cell", ap1.Pos)
	}
	shapes := i1.PinShapes(m.PinByName("B"))
	on := false
	for _, s := range shapes {
		if s.Rect.ContainsPt(ap1.Pos) {
			on = true
		}
	}
	if !on {
		t.Errorf("i1 AP %v not on the pin shape", ap1.Pos)
	}
	// Translate helper round trip.
	ui := d.UniqueInstances()[0]
	p := geom.Pt(100, 200)
	if got := Translate(ui, ui.Pivot(), p); got != p {
		t.Errorf("Translate to pivot must be identity, got %v", got)
	}
}

func TestResultStatsPopulated(t *testing.T) {
	d := buildEdgeDesign(t)
	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	if res.Stats.NumUnique != 1 {
		t.Errorf("NumUnique = %d", res.Stats.NumUnique)
	}
	if res.Stats.TotalAPs == 0 {
		t.Error("TotalAPs = 0")
	}
	if res.Stats.OffTrackAPs == 0 {
		t.Error("OffTrackAPs = 0 (half-track x APs must count as off-track)")
	}
	if res.Stats.PatternsBuilt < 2 {
		t.Errorf("PatternsBuilt = %d", res.Stats.PatternsBuilt)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.K != 3 || c.Alpha != 0.3 || c.MaxPatterns != 1 {
		// BCA=false in the zero config forces MaxPatterns to 1.
		t.Errorf("normalized zero config = %+v", c)
	}
	c2 := DefaultConfig().normalized()
	if c2.MaxPatterns != 3 || !c2.BCA {
		t.Errorf("normalized default = %+v", c2)
	}
	restricted := DefaultConfig()
	restricted.AllowedTypes = []CoordType{OnTrack}
	if restricted.typeAllowed(HalfTrack) || !restricted.typeAllowed(OnTrack) {
		t.Error("typeAllowed broken")
	}
	if !DefaultConfig().typeAllowed(EncBoundary) {
		t.Error("empty AllowedTypes must allow everything")
	}
}

func TestCoordTypeStrings(t *testing.T) {
	if OnTrack.String() != "onTrack" || EncBoundary.String() != "encBoundary" {
		t.Error("CoordType.String broken")
	}
	if DirUp.String() != "up" || DirSouth.String() != "S" {
		t.Error("AccessDir.String broken")
	}
}

func TestPinWithoutAccess(t *testing.T) {
	d := newDesign45("noap")
	// A pin hemmed in by obstructions above and below: every via enclosure
	// variant violates spacing against the blockages, so no access point
	// survives validation.
	m := &db.Master{Name: "BAD", Class: db.ClassCore, Size: geom.Pt(560, 1400),
		Pins: []*db.MPin{
			sigPin("X", geom.R(0, 400, 60, 460)),
		},
		Obs: []db.Shape{
			{Layer: 1, Rect: geom.R(0, 500, 560, 570)},
			{Layer: 1, Rect: geom.R(0, 290, 560, 360)},
		}}
	mustAdd(t, d, m)
	i0 := mustPlace(t, d, "u0", m, 0, 0, geom.OrientN)
	d.Nets = []*db.Net{{Name: "n", Terms: []db.Term{{Inst: i0, Pin: m.PinByName("X")}}}}

	a := NewAnalyzer(d, DefaultConfig())
	res := a.Run()
	if res.Stats.FailedPins != 1 {
		t.Fatalf("FailedPins = %d, want 1 (pin has no legal via)", res.Stats.FailedPins)
	}
}

// Property: via pair compatibility is symmetric.
func TestViaPairCleanSymmetry(t *testing.T) {
	tt := tech.N45()
	vias := tt.Vias
	f := func(i, j uint8, dx, dy int16) bool {
		v1 := vias[int(i)%len(vias)]
		v2 := vias[int(j)%len(vias)]
		p1 := geom.Pt(10000, 10000)
		p2 := p1.Add(geom.Pt(int64(dx), int64(dy)))
		a := ViaPairClean(tt, v1, p1, 1, v2, p2, 2)
		b := ViaPairClean(tt, v2, p2, 2, v1, p1, 1)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: far-apart vias are always compatible; coincident different-net
// vias never are.
func TestViaPairCleanDistance(t *testing.T) {
	tt := tech.N45()
	for _, v1 := range tt.Vias {
		for _, v2 := range tt.Vias {
			p := geom.Pt(5000, 5000)
			if !ViaPairClean(tt, v1, p, 1, v2, p.Add(geom.Pt(10000, 10000)), 2) {
				t.Fatalf("distant %s/%s must be clean", v1.Name, v2.Name)
			}
			if v1.CutBelow == v2.CutBelow {
				if ViaPairClean(tt, v1, p, 1, v2, p, 2) {
					t.Fatalf("coincident %s/%s (different nets) must conflict", v1.Name, v2.Name)
				}
			}
		}
	}
	// Nil vias never conflict.
	if !ViaPairClean(tt, nil, geom.Pt(0, 0), 1, tt.Vias[0], geom.Pt(0, 0), 2) {
		t.Fatal("nil via must be compatible")
	}
}
