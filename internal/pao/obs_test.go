package pao

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/suite"
)

// runWithObs analyzes the design with the given worker count under a fresh
// observer and returns the result plus the published counter totals.
func runWithObs(t *testing.T, workers int) (Stats, map[string]int64) {
	t.Helper()
	d, err := suite.Generate(suite.Testcases[0].Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	a := NewAnalyzer(d, cfg)
	o := obs.NewObserver("test")
	a.Obs = o
	res := a.Run()
	a.PublishObs()
	return res.Stats, o.Registry.Snapshot().Counters
}

// TestObsWorkerEquivalence: the analysis is deterministic across worker
// counts, and so is every published counter — the same checks, queries and
// via validations run regardless of how the unique instances are scheduled.
// Histograms and gauges (worker telemetry) legitimately differ and are
// excluded. Run under -race in CI.
func TestObsWorkerEquivalence(t *testing.T) {
	seqStats, seqCounts := runWithObs(t, 1)
	parStats, parCounts := runWithObs(t, 4)

	if seqStats.Counts() != parStats.Counts() {
		t.Fatalf("stats differ:\nseq %+v\npar %+v", seqStats.Counts(), parStats.Counts())
	}
	if !reflect.DeepEqual(seqCounts, parCounts) {
		t.Errorf("counter totals differ between Workers=1 and Workers=4:")
		for name, v := range seqCounts {
			if parCounts[name] != v {
				t.Errorf("  %s: seq=%d par=%d", name, v, parCounts[name])
			}
		}
		for name, v := range parCounts {
			if _, ok := seqCounts[name]; !ok {
				t.Errorf("  %s: only in par (=%d)", name, v)
			}
		}
	}
	if len(seqCounts) == 0 {
		t.Fatal("no counters published")
	}
	// The acceptance-level counter families must be present.
	for _, name := range []string{"drc.query.count", "drc.check.metal", "drc.via.attempted", "pao.step12.items"} {
		if _, ok := seqCounts[name]; !ok {
			t.Errorf("counter %q missing from publication", name)
		}
	}
}

// TestObsSpanTree: an observed run produces the documented span shape —
// pao.run with step children and per-unique-instance aggregation.
func TestObsSpanTree(t *testing.T) {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(d, DefaultConfig())
	o := obs.NewObserver("test")
	a.Obs = o
	a.Run()

	e := o.Root().Export()
	var run *obs.SpanExport
	for _, c := range e.Children {
		if c.Name == "pao.run" {
			run = c
		}
	}
	if run == nil {
		t.Fatalf("no pao.run span under root: %+v", e.Children)
	}
	want := map[string]bool{"pao.step12": false, "pao.step3.select": false, "pao.failedpins": false}
	var step12 *obs.SpanExport
	for _, c := range run.Children {
		if _, ok := want[c.Name]; ok {
			want[c.Name] = true
		}
		if c.Name == "pao.step12" {
			step12 = c
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span %q missing under pao.run", name)
		}
	}
	if step12 == nil || len(step12.Children) == 0 {
		t.Fatal("pao.step12 has no per-unique-instance children")
	}
	ui := step12.Children[0]
	if len(ui.Children) == 0 {
		t.Fatalf("unique-instance span %q has no per-pin children", ui.Name)
	}
}
