package pao

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Fault-hook site names. The hooks exist for the deterministic fault
// injector (internal/faultinject) and stay nil in production.
const (
	// SiteAnalyzeUnique fires before each class's Step-1/2 analysis, inside
	// the per-class recovery: a panic here quarantines the class.
	SiteAnalyzeUnique = "pao.analyzeUnique"
	// SiteWorkerItem fires before each item in the pooled Step-1/2 path,
	// outside the per-class recovery: a panic here kills the worker
	// goroutine and exercises the respawn path. Not reached when Workers <= 1.
	SiteWorkerItem = "pao.worker.item"
	// SiteSelectCluster fires before each cluster's Step-3 DP.
	SiteSelectCluster = "pao.selectForCluster"
	// SiteFailedPins fires once at the start of failed-pin accounting.
	SiteFailedPins = "pao.countFailedPins"
)

// Analyzer runs the three-step pin access analysis over a placed design.
type Analyzer struct {
	Design *db.Design
	Cfg    Config

	// Obs receives spans and worker telemetry when set (before the first
	// Run/AnalyzeUnique call). Nil disables the deep instrumentation; the
	// coarse per-step durations in Stats.Steps are always populated.
	Obs *obs.Observer
	// DRC accumulates the DRC engine counters of every engine the analyzer
	// creates (per-cell contexts and the global engine). Always non-nil.
	DRC *drc.Counters

	// FaultHook, when set before a run, is invoked at the Site* pipeline
	// points with the site name and a detail string (class signature or
	// cluster id). Test-only: internal/faultinject uses it to inject panics
	// and delays deterministically.
	FaultHook func(site, detail string)
	// DRCFaultHook, when set before a run, is installed on every DRC engine
	// the analyzer creates; the detail is the owning class signature for
	// cell engines and "global" for the global engine, keeping injection
	// deterministic across worker schedules.
	DRCFaultHook func(site, detail string) []drc.Violation

	// Rec, when set before a run, receives a decision record at every Step-1
	// candidate validation, Step-2 pattern iteration and Step-3 selection
	// (explain.go). Nil by default; every call site gates on it, so the hot
	// path pays nothing when disabled. With Workers > 1 the recorder must be
	// goroutine-safe.
	Rec DecisionRecorder

	// viaCache is the shared via-drop verdict memo attached to every DRC
	// engine the analyzer creates (content-keyed, so per-cell contexts and
	// the global engine can share it). Nil when Config.NoCache is set.
	viaCache *drc.ViaCache
	// pairs memoizes ViaPairClean for Step-2 pattern validation and Step-3
	// edge costs. Nil when Config.NoCache is set.
	pairs *pairCache

	// netOf maps (instance ID, pin name) to a net index (>= 1). Pins not on
	// any net receive fresh pseudo-net indexes so that they still conflict
	// with everything else but never with themselves.
	netOf map[termKey]int
	// nextPseudo is the next free pseudo-net index.
	nextPseudo int

	// step1NS/step2NS accumulate per-step CPU time across workers for the
	// current Run (reset at Run start).
	step1NS, step2NS atomic.Int64
}

type termKey struct {
	inst int
	pin  string
}

// NewAnalyzer builds an analyzer for the design with the given configuration.
func NewAnalyzer(d *db.Design, cfg Config) *Analyzer {
	a := &Analyzer{Design: d, Cfg: cfg.normalized(), DRC: &drc.Counters{}, netOf: make(map[termKey]int)}
	if !a.Cfg.NoCache {
		a.viaCache = drc.NewViaCache()
		a.pairs = newPairCache(d.Tech)
	}
	for idx, net := range d.Nets {
		for _, t := range net.Terms {
			a.netOf[termKey{t.Inst.ID, t.Pin.Name}] = idx + 1
		}
	}
	a.nextPseudo = len(d.Nets) + 1
	return a
}

// PublishObs folds the analyzer's accumulated DRC counters (including the
// via-verdict cache hit/miss/invalidate counts) and the pair-cache counters
// into the observer's registry. Call once per analyzer, after its last Run.
func (a *Analyzer) PublishObs() {
	if reg := a.Obs.Reg(); reg != nil {
		reg.AddAll(a.LiveCounters())
	}
}

// LiveCounters returns the analyzer's accumulated counters as of now. Safe to
// call while a run executes (everything underneath is atomic), which is what
// a mid-run -metrics-listen scrape folds into its exposition — PublishObs
// moves the same totals into the registry permanently once the run is done.
func (a *Analyzer) LiveCounters() map[string]int64 {
	m := a.DRC.Snapshot()
	if a.pairs != nil {
		m["pao.paircache.hit"] = a.pairs.hits.Load()
		m["pao.paircache.miss"] = a.pairs.misses.Load()
	}
	return m
}

// CacheStats is a snapshot of the analyzer's memoization counters: the shared
// via-drop verdict cache (drc layer) and the via-pair cache (Step 2/3).
type CacheStats struct {
	ViaHits, ViaMisses, ViaInvalidations int64
	// ViaEvictScoped/ViaEvictWholesale split the entries evicted from the
	// via-verdict cache by mutation handling: halo-overlap-scoped sweeps vs
	// whole-cache flushes (see drc.ViaCache).
	ViaEvictScoped, ViaEvictWholesale int64
	PairHits, PairMisses              int64
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// ViaHitRate is the via-verdict cache hit rate.
func (s CacheStats) ViaHitRate() float64 { return hitRate(s.ViaHits, s.ViaMisses) }

// PairHitRate is the via-pair cache hit rate.
func (s CacheStats) PairHitRate() float64 { return hitRate(s.PairHits, s.PairMisses) }

// CacheStats reports the analyzer's cache counters accumulated so far.
func (a *Analyzer) CacheStats() CacheStats {
	s := CacheStats{
		ViaHits:           a.DRC.CacheHits.Load(),
		ViaMisses:         a.DRC.CacheMisses.Load(),
		ViaInvalidations:  a.DRC.CacheInvalidates.Load(),
		ViaEvictScoped:    a.DRC.CacheEvictScoped.Load(),
		ViaEvictWholesale: a.DRC.CacheEvictWholesale.Load(),
	}
	if a.pairs != nil {
		s.PairHits = a.pairs.hits.Load()
		s.PairMisses = a.pairs.misses.Load()
	}
	return s
}

// SharedViaCache exposes the analyzer's shared via-verdict cache (nil with
// Cfg.NoCache) for introspection: benchmarks read its entry count and
// eviction counters directly, unpolluted by the private scratch caches the
// ECO path spins up.
func (a *Analyzer) SharedViaCache() *drc.ViaCache { return a.viaCache }

// NetOf returns the net index of an instance pin, allocating a pseudo net for
// unconnected pins (stable across calls).
func (a *Analyzer) NetOf(inst *db.Instance, pin *db.MPin) int {
	k := termKey{inst.ID, pin.Name}
	if n, ok := a.netOf[k]; ok {
		return n
	}
	n := a.nextPseudo
	a.nextPseudo++
	a.netOf[k] = n
	return n
}

// cellEngine builds the isolated intra-cell DRC context for a unique
// instance: the pivot member's own pin shapes (each signal pin on its own
// pseudo net so two pins of the cell conflict with each other but a pin never
// conflicts with itself) plus obstructions and power/ground shapes as NoNet
// blockages. Steps 1 and 2 validate against this context only, so their
// results transfer to every member of the class; inter-cell interactions are
// Step 3's job.
func (a *Analyzer) cellEngine(ui *db.UniqueInstance) (*drc.Engine, map[string]int) {
	eng := drc.NewEngine(a.Design.Tech)
	eng.Counters = a.DRC
	if hook := a.DRCFaultHook; hook != nil {
		sig := ui.Signature()
		eng.FaultHook = func(site string) []drc.Violation { return hook(site, sig) }
	}
	pivot := ui.Pivot()
	nets := make(map[string]int)
	nextNet := 1
	for _, pin := range pivot.Master.Pins {
		net := drc.NoNet
		if pin.Use == db.UseSignal || pin.Use == db.UseClock {
			net = nextNet
			nextNet++
			nets[pin.Name] = net
		}
		for _, s := range pivot.PinShapes(pin) {
			eng.AddMetal(s.Layer, s.Rect, net, drc.KindPin, "")
		}
	}
	for _, s := range pivot.ObsShapes() {
		eng.AddMetal(s.Layer, s.Rect, drc.NoNet, drc.KindObs, "")
	}
	// The engine is frozen from here on: fold the construction churn into the
	// dense index before queries fan out.
	eng.Compact()
	// Attach after construction: Add invalidates an attached cache, and the
	// shared memo must survive across the per-class engines.
	eng.AttachViaCache(a.viaCache)
	return eng, nets
}

// GlobalEngine indexes every fixed shape of the design (instance pins with
// their real nets, obstructions and power shapes as blockages, IO pins) for
// Step-3 inter-cell checks and failed-pin accounting.
func (a *Analyzer) GlobalEngine() *drc.Engine {
	return a.globalEngine(a.viaCache, nil)
}

// globalEngine is GlobalEngine with an explicit verdict cache (so mutating
// flows can use a private one and leave the shared warm cache untouched) and
// an optional per-object callback that reports which instance contributed
// each engine object — the ECO engine uses it to remove exactly an instance's
// shapes later. IO-pin objects are not reported (they never mutate).
func (a *Analyzer) globalEngine(cache *drc.ViaCache, record func(inst *db.Instance, objID int)) *drc.Engine {
	eng := drc.NewEngine(a.Design.Tech)
	eng.Counters = a.DRC
	if hook := a.DRCFaultHook; hook != nil {
		eng.FaultHook = func(site string) []drc.Violation { return hook(site, "global") }
	}
	for _, inst := range a.Design.Instances {
		for _, id := range a.addInstanceShapes(eng, inst) {
			if record != nil {
				record(inst, id)
			}
		}
	}
	for _, io := range a.Design.IOPins {
		eng.AddMetal(io.Shape.Layer, io.Shape.Rect, a.ioNet(io), drc.KindIOPin, io.Name)
	}
	eng.Compact() // bulk construction done; Step-3 queries fan out from here
	eng.AttachViaCache(cache)
	return eng
}

// addInstanceShapes registers one instance's pin and obstruction shapes with
// the engine exactly as the global engine does, returning the object IDs.
func (a *Analyzer) addInstanceShapes(eng *drc.Engine, inst *db.Instance) []int {
	var ids []int
	for _, pin := range inst.Master.Pins {
		net := drc.NoNet
		if pin.Use == db.UseSignal || pin.Use == db.UseClock {
			net = a.NetOf(inst, pin)
		}
		for _, s := range inst.PinShapes(pin) {
			ids = append(ids, eng.AddMetal(s.Layer, s.Rect, net, drc.KindPin, ""))
		}
	}
	for _, s := range inst.ObsShapes() {
		ids = append(ids, eng.AddMetal(s.Layer, s.Rect, drc.NoNet, drc.KindObs, ""))
	}
	return ids
}

func (a *Analyzer) ioNet(io *db.IOPin) int {
	for idx, net := range a.Design.Nets {
		for _, p := range net.IOPins {
			if p == io {
				return idx + 1
			}
		}
	}
	return drc.NoNet
}

// AnalyzeUnique runs Steps 1 and 2 for one unique instance.
func (a *Analyzer) AnalyzeUnique(ui *db.UniqueInstance) *UniqueAccess {
	var parent *obs.Span
	if a.Obs != nil {
		parent = a.Obs.Root()
	}
	return a.analyzeUnique(context.Background(), ui, parent, nil)
}

// analyzeUnique is AnalyzeUnique with an explicit span parent: when non-nil,
// an aggregated child span per unique instance is created under it, with
// per-pin DRC-validation leaves below. Step 1/2 CPU time always accumulates
// into the analyzer's per-Run totals. A cancelled ctx abandons the class and
// returns nil, so a partial result never contains half-analyzed access data;
// curPin, when non-nil, tracks the pin in flight for panic reports.
func (a *Analyzer) analyzeUnique(ctx context.Context, ui *db.UniqueInstance, parent *obs.Span, curPin *string) *UniqueAccess {
	t0 := time.Now()
	var sp *obs.Span
	if parent != nil {
		sp = parent.Agg("ui:" + ui.Signature())
	}
	eng, nets := a.cellEngine(ui)
	qc := eng.NewQueryCtx()
	pivot := ui.Pivot()
	ua := &UniqueAccess{UI: ui, PivotPos: pivot.Pos}
	for _, pin := range pivot.Master.SignalPins() {
		if ctx.Err() != nil {
			return nil
		}
		if curPin != nil {
			*curPin = pin.Name
		}
		var tp time.Time
		if sp != nil {
			tp = time.Now()
		}
		pa := a.genAccessPoints(eng, qc, pivot, pin, nets[pin.Name])
		if sp != nil {
			sp.AddTime("pin:"+pin.Name, time.Since(tp))
		}
		ua.Pins = append(ua.Pins, pa)
	}
	if curPin != nil {
		*curPin = ""
	}
	t1 := time.Now()
	a.orderPins(ua)
	a.genPatterns(ua)
	t2 := time.Now()
	a.step1NS.Add(t1.Sub(t0).Nanoseconds())
	a.step2NS.Add(t2.Sub(t1).Nanoseconds())
	sp.AddDur(t2.Sub(t0))
	return ua
}

// safeAnalyzeUnique runs Steps 1-2 for one class with panic quarantine: a
// panicking class is recorded as failed in the health report and the run
// continues with every other class intact.
func (a *Analyzer) safeAnalyzeUnique(ctx context.Context, ui *db.UniqueInstance, parent *obs.Span,
	uas []*UniqueAccess, i int, h *Health) {

	sig := ui.Signature()
	var curPin string
	defer func() {
		if r := recover(); r != nil {
			uas[i] = nil
			h.recordClass(sig, StatusFailed, &PipelineError{
				Step: StepAnalyze, Signature: sig, Pin: curPin,
				Recovered: r, Stack: string(debug.Stack()),
			})
		}
	}()
	if hook := a.FaultHook; hook != nil {
		hook(SiteAnalyzeUnique, sig)
	}
	uas[i] = a.analyzeUnique(ctx, ui, parent, &curPin)
}

// workerRun drains unique-instance indexes from next, recording per-goroutine
// busy time and queue wait when telemetry is enabled. It returns true when
// the channel is exhausted or the context cancelled, and false when a panic
// escaped the per-class recovery and killed the worker (the in-flight class
// is recorded as failed; the caller respawns a replacement).
func (a *Analyzer) workerRun(ctx context.Context, next <-chan int, uis []*db.UniqueInstance,
	uas []*UniqueAccess, sp12 *obs.Span, busyTotal *atomic.Int64, h *Health) (done bool) {

	reg := a.Obs.Reg()
	var busy, wait time.Duration
	cur := -1
	defer func() {
		if reg != nil {
			busyTotal.Add(busy.Nanoseconds())
			reg.Histogram("pao.step12.worker.busy").Observe(busy)
			reg.Histogram("pao.step12.worker.wait").Observe(wait)
		}
		if r := recover(); r != nil {
			perr := &PipelineError{Step: StepWorker, Recovered: r, Stack: string(debug.Stack())}
			if cur >= 0 {
				perr.Signature = uis[cur].Signature()
				uas[cur] = nil
				h.recordClass(perr.Signature, StatusFailed, perr)
			} else {
				h.record(perr)
			}
		}
	}()
	for {
		var i int
		var ok bool
		tw := time.Time{}
		if reg != nil {
			tw = time.Now()
		}
		select {
		case i, ok = <-next:
		case <-ctx.Done():
			return true
		}
		if reg != nil {
			wait += time.Since(tw)
		}
		if !ok {
			return true
		}
		cur = i
		if hook := a.FaultHook; hook != nil {
			hook(SiteWorkerItem, uis[i].Signature())
		}
		if reg != nil {
			tb := time.Now()
			a.safeAnalyzeUnique(ctx, uis[i], sp12, uas, i, h)
			busy += time.Since(tb)
		} else {
			a.safeAnalyzeUnique(ctx, uis[i], sp12, uas, i, h)
		}
		cur = -1
	}
}

// runStep12 executes the per-unique-instance analysis under ctx: sequential
// when the effective worker count is 1, otherwise a channel-fed pool whose
// workers are respawned if a panic escapes the per-class recovery.
func (a *Analyzer) runStep12(ctx context.Context, uis []*db.UniqueInstance, uas []*UniqueAccess,
	sp12 *obs.Span, busyTotal *atomic.Int64, h *Health) {

	reg := a.Obs.Reg()
	w := a.Cfg.workers()
	if w == 1 {
		var busy time.Duration
		for i := range uis {
			if ctx.Err() != nil || a.abort(h) {
				break
			}
			if reg != nil {
				tb := time.Now()
				a.safeAnalyzeUnique(ctx, uis[i], sp12, uas, i, h)
				busy += time.Since(tb)
			} else {
				a.safeAnalyzeUnique(ctx, uis[i], sp12, uas, i, h)
			}
		}
		if reg != nil {
			busyTotal.Add(busy.Nanoseconds())
			reg.Histogram("pao.step12.worker.busy").Observe(busy)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Respawn loop: a worker killed by an escaped panic is replaced
			// immediately, so the pool never silently shrinks.
			for !a.workerRun(ctx, next, uis, uas, sp12, busyTotal, h) {
				h.noteRespawn()
			}
		}()
	}
feed:
	for i := range uis {
		if a.abort(h) {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
}

// abort reports whether the fail-fast policy wants the run stopped now.
func (a *Analyzer) abort(h *Health) bool {
	return a.Cfg.FailFast && h.errCount() > 0
}

// runErr translates the context state and the fail-fast policy into the
// error RunContext returns, latching cancellation into the health report.
func (a *Analyzer) runErr(ctx context.Context, h *Health) error {
	if err := ctx.Err(); err != nil {
		h.markCancelled()
		return err
	}
	if a.Cfg.FailFast {
		if errs := h.Errors(); len(errs) > 0 {
			return errs[0]
		}
	}
	return nil
}

// Run executes the full three-step flow. It is RunContext without a deadline;
// fault quarantine still applies (inspect Result.Health), only cancellation
// and fail-fast errors are unreachable.
func (a *Analyzer) Run() *Result {
	res, _ := a.RunContext(context.Background())
	return res
}

// RunContext executes the full three-step flow under ctx. When Cfg.Workers > 1
// the per-unique-instance analysis (Steps 1 and 2) fans out across goroutines;
// classes are independent, so the result is identical to the sequential run.
//
// Failure semantics: a panic inside one class's analysis or one cluster's
// selection is recovered and quarantined into Result.Health — the run
// continues and every healthy class is unaffected. Cancellation (deadline,
// SIGINT plumbed via ctx) stops work at the next per-class/per-cluster check;
// the partial Result is still returned, with Health.Cancelled() set, alongside
// ctx.Err(). The Result is never nil.
func (a *Analyzer) RunContext(ctx context.Context) (*Result, error) {
	tRun := time.Now()
	a.step1NS.Store(0)
	a.step2NS.Store(0)
	reg := a.Obs.Reg()
	spRun := a.Obs.Root().Start("pao.run")
	ctx, corr := telemetry.EnsureCorrID(ctx)
	res := &Result{
		CorrID:     corr,
		ByInstance: make(map[int]*UniqueAccess),
		Selected:   make(map[int]int),
		Health:     newHealth(),
	}
	h := res.Health
	uis := a.Design.UniqueInstances()
	uas := make([]*UniqueAccess, len(uis))
	sp12 := spRun.Start("pao.step12")
	t12 := time.Now()
	var busyTotal atomic.Int64
	a.runStep12(ctx, uis, uas, sp12, &busyTotal, h)
	step12Wall := time.Since(t12)
	sp12.End()
	for i, ui := range uis {
		if uas[i] == nil {
			// Failed or never analyzed (cancellation): the class has no
			// access data; its pins count as failed downstream.
			continue
		}
		foldClass(res, ui, uas[i])
	}
	res.indexSignatures(a.Design)

	var selDur, failDur time.Duration
	finish := func() {
		spRun.End()
		res.Stats.Steps = StepTimes{
			Step1:      time.Duration(a.step1NS.Load()),
			Step2:      time.Duration(a.step2NS.Load()),
			Step12Wall: step12Wall,
			Step3:      selDur,
			FailedPins: failDur,
			Total:      time.Since(tRun),
		}
		if reg != nil {
			w := a.Cfg.workers()
			reg.Gauge("pao.workers").Set(float64(w))
			if wall := step12Wall.Nanoseconds(); wall > 0 {
				reg.Gauge("pao.workers.utilization").Set(
					float64(busyTotal.Load()) / (float64(wall) * float64(w)))
			}
			reg.Counter("pao.step12.items").Add(int64(len(uis)))
			h.publish(reg)
		}
	}
	if err := a.runErr(ctx, h); err != nil {
		finish()
		return res, err
	}
	spEng := spRun.Start("pao.globalengine")
	eng := a.GlobalEngine()
	spEng.End()
	spSel := spRun.Start("pao.step3.select")
	tSel := time.Now()
	a.selectPatterns(ctx, res, eng, h)
	selDur = time.Since(tSel)
	spSel.End()
	if err := a.runErr(ctx, h); err != nil {
		finish()
		return res, err
	}
	spFail := spRun.Start("pao.failedpins")
	tFail := time.Now()
	a.countFailedPins(ctx, res, eng, h)
	failDur = time.Since(tFail)
	spFail.End()
	finish()
	return res, a.runErr(ctx, h)
}

// CountDirtyAPs re-validates every access point's primary via against the
// isolated cell context using the full DRC engine and returns the number
// carrying violations — the Table II "#Dirty APs" metric. PAAF results are
// zero by construction (Step 1 only emits validated points); baselines that
// skip real DRC validation score higher.
func (a *Analyzer) CountDirtyAPs(res *Result) int {
	dirty := 0
	for _, ua := range res.Unique {
		eng, nets := a.cellEngine(ua.UI)
		pivot := ua.UI.Pivot()
		for _, pa := range ua.Pins {
			rects := pinRectsByLayer(pivot, pa.Pin)
			for _, ap := range pa.APs {
				v := ap.Primary()
				if v == nil {
					continue
				}
				if len(eng.CheckVia(v, ap.Pos, nets[pa.Pin.Name], rects[ap.Layer])) > 0 {
					dirty++
				}
			}
		}
	}
	return dirty
}

func pinRectsByLayer(inst *db.Instance, pin *db.MPin) map[int][]geom.Rect {
	out := make(map[int][]geom.Rect)
	for _, s := range inst.PinShapes(pin) {
		out[s.Layer] = append(out[s.Layer], s.Rect)
	}
	return out
}

// apRectsOnLayer returns the pin's shapes on the given layer in the pivot's
// design coordinates.
func pinRectsOnLayer(inst *db.Instance, pin *db.MPin, layer int) []geom.Rect {
	var out []geom.Rect
	for _, s := range inst.PinShapes(pin) {
		if s.Layer == layer {
			out = append(out, s.Rect)
		}
	}
	return out
}
