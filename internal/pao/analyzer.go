package pao

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Analyzer runs the three-step pin access analysis over a placed design.
type Analyzer struct {
	Design *db.Design
	Cfg    Config

	// Obs receives spans and worker telemetry when set (before the first
	// Run/AnalyzeUnique call). Nil disables the deep instrumentation; the
	// coarse per-step durations in Stats.Steps are always populated.
	Obs *obs.Observer
	// DRC accumulates the DRC engine counters of every engine the analyzer
	// creates (per-cell contexts and the global engine). Always non-nil.
	DRC *drc.Counters

	// netOf maps (instance ID, pin name) to a net index (>= 1). Pins not on
	// any net receive fresh pseudo-net indexes so that they still conflict
	// with everything else but never with themselves.
	netOf map[termKey]int
	// nextPseudo is the next free pseudo-net index.
	nextPseudo int

	// step1NS/step2NS accumulate per-step CPU time across workers for the
	// current Run (reset at Run start).
	step1NS, step2NS atomic.Int64
}

type termKey struct {
	inst int
	pin  string
}

// NewAnalyzer builds an analyzer for the design with the given configuration.
func NewAnalyzer(d *db.Design, cfg Config) *Analyzer {
	a := &Analyzer{Design: d, Cfg: cfg.normalized(), DRC: &drc.Counters{}, netOf: make(map[termKey]int)}
	for idx, net := range d.Nets {
		for _, t := range net.Terms {
			a.netOf[termKey{t.Inst.ID, t.Pin.Name}] = idx + 1
		}
	}
	a.nextPseudo = len(d.Nets) + 1
	return a
}

// PublishObs folds the analyzer's accumulated DRC counters into the
// observer's registry. Call once per analyzer, after its last Run.
func (a *Analyzer) PublishObs() {
	if reg := a.Obs.Reg(); reg != nil {
		reg.AddAll(a.DRC.Snapshot())
	}
}

// NetOf returns the net index of an instance pin, allocating a pseudo net for
// unconnected pins (stable across calls).
func (a *Analyzer) NetOf(inst *db.Instance, pin *db.MPin) int {
	k := termKey{inst.ID, pin.Name}
	if n, ok := a.netOf[k]; ok {
		return n
	}
	n := a.nextPseudo
	a.nextPseudo++
	a.netOf[k] = n
	return n
}

// cellEngine builds the isolated intra-cell DRC context for a unique
// instance: the pivot member's own pin shapes (each signal pin on its own
// pseudo net so two pins of the cell conflict with each other but a pin never
// conflicts with itself) plus obstructions and power/ground shapes as NoNet
// blockages. Steps 1 and 2 validate against this context only, so their
// results transfer to every member of the class; inter-cell interactions are
// Step 3's job.
func (a *Analyzer) cellEngine(ui *db.UniqueInstance) (*drc.Engine, map[string]int) {
	eng := drc.NewEngine(a.Design.Tech)
	eng.Counters = a.DRC
	pivot := ui.Pivot()
	nets := make(map[string]int)
	nextNet := 1
	for _, pin := range pivot.Master.Pins {
		net := drc.NoNet
		if pin.Use == db.UseSignal || pin.Use == db.UseClock {
			net = nextNet
			nextNet++
			nets[pin.Name] = net
		}
		for _, s := range pivot.PinShapes(pin) {
			eng.AddMetal(s.Layer, s.Rect, net, drc.KindPin, "")
		}
	}
	for _, s := range pivot.ObsShapes() {
		eng.AddMetal(s.Layer, s.Rect, drc.NoNet, drc.KindObs, "")
	}
	return eng, nets
}

// GlobalEngine indexes every fixed shape of the design (instance pins with
// their real nets, obstructions and power shapes as blockages, IO pins) for
// Step-3 inter-cell checks and failed-pin accounting.
func (a *Analyzer) GlobalEngine() *drc.Engine {
	eng := drc.NewEngine(a.Design.Tech)
	eng.Counters = a.DRC
	for _, inst := range a.Design.Instances {
		for _, pin := range inst.Master.Pins {
			net := drc.NoNet
			if pin.Use == db.UseSignal || pin.Use == db.UseClock {
				net = a.NetOf(inst, pin)
			}
			for _, s := range inst.PinShapes(pin) {
				eng.AddMetal(s.Layer, s.Rect, net, drc.KindPin, "")
			}
		}
		for _, s := range inst.ObsShapes() {
			eng.AddMetal(s.Layer, s.Rect, drc.NoNet, drc.KindObs, "")
		}
	}
	for _, io := range a.Design.IOPins {
		eng.AddMetal(io.Shape.Layer, io.Shape.Rect, a.ioNet(io), drc.KindIOPin, io.Name)
	}
	return eng
}

func (a *Analyzer) ioNet(io *db.IOPin) int {
	for idx, net := range a.Design.Nets {
		for _, p := range net.IOPins {
			if p == io {
				return idx + 1
			}
		}
	}
	return drc.NoNet
}

// AnalyzeUnique runs Steps 1 and 2 for one unique instance.
func (a *Analyzer) AnalyzeUnique(ui *db.UniqueInstance) *UniqueAccess {
	var parent *obs.Span
	if a.Obs != nil {
		parent = a.Obs.Root()
	}
	return a.analyzeUnique(ui, parent)
}

// analyzeUnique is AnalyzeUnique with an explicit span parent: when non-nil,
// an aggregated child span per unique instance is created under it, with
// per-pin DRC-validation leaves below. Step 1/2 CPU time always accumulates
// into the analyzer's per-Run totals.
func (a *Analyzer) analyzeUnique(ui *db.UniqueInstance, parent *obs.Span) *UniqueAccess {
	t0 := time.Now()
	var sp *obs.Span
	if parent != nil {
		sp = parent.Agg("ui:" + ui.Signature())
	}
	eng, nets := a.cellEngine(ui)
	pivot := ui.Pivot()
	ua := &UniqueAccess{UI: ui, PivotPos: pivot.Pos}
	for _, pin := range pivot.Master.SignalPins() {
		var tp time.Time
		if sp != nil {
			tp = time.Now()
		}
		pa := a.genAccessPoints(eng, pivot, pin, nets[pin.Name])
		if sp != nil {
			sp.AddTime("pin:"+pin.Name, time.Since(tp))
		}
		ua.Pins = append(ua.Pins, pa)
	}
	t1 := time.Now()
	a.orderPins(ua)
	a.genPatterns(ua)
	t2 := time.Now()
	a.step1NS.Add(t1.Sub(t0).Nanoseconds())
	a.step2NS.Add(t2.Sub(t1).Nanoseconds())
	sp.AddDur(t2.Sub(t0))
	return ua
}

// analyzeWorker drains unique-instance indexes from next, recording
// per-goroutine busy time and queue wait when telemetry is enabled.
func (a *Analyzer) analyzeWorker(next <-chan int, uis []*db.UniqueInstance, uas []*UniqueAccess,
	sp12 *obs.Span, busyTotal *atomic.Int64) {

	reg := a.Obs.Reg()
	if reg == nil {
		for i := range next {
			uas[i] = a.analyzeUnique(uis[i], nil)
		}
		return
	}
	var busy, wait time.Duration
	for {
		tw := time.Now()
		i, ok := <-next
		wait += time.Since(tw)
		if !ok {
			break
		}
		tb := time.Now()
		uas[i] = a.analyzeUnique(uis[i], sp12)
		busy += time.Since(tb)
	}
	busyTotal.Add(busy.Nanoseconds())
	reg.Histogram("pao.step12.worker.busy").Observe(busy)
	reg.Histogram("pao.step12.worker.wait").Observe(wait)
}

// Run executes the full three-step flow. When Cfg.Workers > 1 the
// per-unique-instance analysis (Steps 1 and 2) fans out across goroutines;
// classes are independent, so the result is identical to the sequential run.
func (a *Analyzer) Run() *Result {
	tRun := time.Now()
	a.step1NS.Store(0)
	a.step2NS.Store(0)
	reg := a.Obs.Reg()
	spRun := a.Obs.Root().Start("pao.run")
	res := &Result{
		ByInstance: make(map[int]*UniqueAccess),
		Selected:   make(map[int]int),
	}
	uis := a.Design.UniqueInstances()
	uas := make([]*UniqueAccess, len(uis))
	sp12 := spRun.Start("pao.step12")
	t12 := time.Now()
	var busyTotal atomic.Int64
	if w := a.Cfg.Workers; w > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.analyzeWorker(next, uis, uas, sp12, &busyTotal)
			}()
		}
		for i := range uis {
			next <- i
		}
		close(next)
		wg.Wait()
	} else if reg != nil {
		var busy time.Duration
		for i := range uis {
			tb := time.Now()
			uas[i] = a.analyzeUnique(uis[i], sp12)
			busy += time.Since(tb)
		}
		busyTotal.Add(busy.Nanoseconds())
		reg.Histogram("pao.step12.worker.busy").Observe(busy)
	} else {
		for i := range uis {
			uas[i] = a.analyzeUnique(uis[i], nil)
		}
	}
	step12Wall := time.Since(t12)
	sp12.End()
	for i, ui := range uis {
		ua := uas[i]
		res.Unique = append(res.Unique, ua)
		for _, inst := range ui.Insts {
			res.ByInstance[inst.ID] = ua
		}
		res.Stats.NumUnique++
		res.Stats.TotalAPs += ua.TotalAPs()
		res.Stats.PatternsBuilt += len(ua.Patterns)
		res.Stats.PatternsDropped += ua.DroppedPatterns
		for _, pa := range ua.Pins {
			for _, ap := range pa.APs {
				if ap.OffTrack() {
					res.Stats.OffTrackAPs++
				}
			}
		}
	}
	res.indexSignatures(a.Design)
	spEng := spRun.Start("pao.globalengine")
	eng := a.GlobalEngine()
	spEng.End()
	spSel := spRun.Start("pao.step3.select")
	tSel := time.Now()
	a.SelectPatterns(res, eng)
	selDur := time.Since(tSel)
	spSel.End()
	spFail := spRun.Start("pao.failedpins")
	tFail := time.Now()
	a.CountFailedPins(res, eng)
	failDur := time.Since(tFail)
	spFail.End()
	spRun.End()

	res.Stats.Steps = StepTimes{
		Step1:      time.Duration(a.step1NS.Load()),
		Step2:      time.Duration(a.step2NS.Load()),
		Step12Wall: step12Wall,
		Step3:      selDur,
		FailedPins: failDur,
		Total:      time.Since(tRun),
	}
	if reg != nil {
		w := a.Cfg.Workers
		if w < 1 {
			w = 1
		}
		reg.Gauge("pao.workers").Set(float64(w))
		if wall := step12Wall.Nanoseconds(); wall > 0 {
			reg.Gauge("pao.workers.utilization").Set(
				float64(busyTotal.Load()) / (float64(wall) * float64(w)))
		}
		reg.Counter("pao.step12.items").Add(int64(len(uis)))
	}
	return res
}

// CountDirtyAPs re-validates every access point's primary via against the
// isolated cell context using the full DRC engine and returns the number
// carrying violations — the Table II "#Dirty APs" metric. PAAF results are
// zero by construction (Step 1 only emits validated points); baselines that
// skip real DRC validation score higher.
func (a *Analyzer) CountDirtyAPs(res *Result) int {
	dirty := 0
	for _, ua := range res.Unique {
		eng, nets := a.cellEngine(ua.UI)
		pivot := ua.UI.Pivot()
		for _, pa := range ua.Pins {
			rects := pinRectsByLayer(pivot, pa.Pin)
			for _, ap := range pa.APs {
				v := ap.Primary()
				if v == nil {
					continue
				}
				if len(eng.CheckVia(v, ap.Pos, nets[pa.Pin.Name], rects[ap.Layer])) > 0 {
					dirty++
				}
			}
		}
	}
	return dirty
}

func pinRectsByLayer(inst *db.Instance, pin *db.MPin) map[int][]geom.Rect {
	out := make(map[int][]geom.Rect)
	for _, s := range inst.PinShapes(pin) {
		out[s.Layer] = append(out[s.Layer], s.Rect)
	}
	return out
}

// apRectsOnLayer returns the pin's shapes on the given layer in the pivot's
// design coordinates.
func pinRectsOnLayer(inst *db.Instance, pin *db.MPin, layer int) []geom.Rect {
	var out []geom.Rect
	for _, s := range inst.PinShapes(pin) {
		if s.Layer == layer {
			out = append(out, s.Rect)
		}
	}
	return out
}
