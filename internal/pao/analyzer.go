package pao

import (
	"sync"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
)

// Analyzer runs the three-step pin access analysis over a placed design.
type Analyzer struct {
	Design *db.Design
	Cfg    Config

	// netOf maps (instance ID, pin name) to a net index (>= 1). Pins not on
	// any net receive fresh pseudo-net indexes so that they still conflict
	// with everything else but never with themselves.
	netOf map[termKey]int
	// nextPseudo is the next free pseudo-net index.
	nextPseudo int
}

type termKey struct {
	inst int
	pin  string
}

// NewAnalyzer builds an analyzer for the design with the given configuration.
func NewAnalyzer(d *db.Design, cfg Config) *Analyzer {
	a := &Analyzer{Design: d, Cfg: cfg.normalized(), netOf: make(map[termKey]int)}
	for idx, net := range d.Nets {
		for _, t := range net.Terms {
			a.netOf[termKey{t.Inst.ID, t.Pin.Name}] = idx + 1
		}
	}
	a.nextPseudo = len(d.Nets) + 1
	return a
}

// NetOf returns the net index of an instance pin, allocating a pseudo net for
// unconnected pins (stable across calls).
func (a *Analyzer) NetOf(inst *db.Instance, pin *db.MPin) int {
	k := termKey{inst.ID, pin.Name}
	if n, ok := a.netOf[k]; ok {
		return n
	}
	n := a.nextPseudo
	a.nextPseudo++
	a.netOf[k] = n
	return n
}

// cellEngine builds the isolated intra-cell DRC context for a unique
// instance: the pivot member's own pin shapes (each signal pin on its own
// pseudo net so two pins of the cell conflict with each other but a pin never
// conflicts with itself) plus obstructions and power/ground shapes as NoNet
// blockages. Steps 1 and 2 validate against this context only, so their
// results transfer to every member of the class; inter-cell interactions are
// Step 3's job.
func (a *Analyzer) cellEngine(ui *db.UniqueInstance) (*drc.Engine, map[string]int) {
	eng := drc.NewEngine(a.Design.Tech)
	pivot := ui.Pivot()
	nets := make(map[string]int)
	nextNet := 1
	for _, pin := range pivot.Master.Pins {
		net := drc.NoNet
		if pin.Use == db.UseSignal || pin.Use == db.UseClock {
			net = nextNet
			nextNet++
			nets[pin.Name] = net
		}
		for _, s := range pivot.PinShapes(pin) {
			eng.AddMetal(s.Layer, s.Rect, net, drc.KindPin, "")
		}
	}
	for _, s := range pivot.ObsShapes() {
		eng.AddMetal(s.Layer, s.Rect, drc.NoNet, drc.KindObs, "")
	}
	return eng, nets
}

// GlobalEngine indexes every fixed shape of the design (instance pins with
// their real nets, obstructions and power shapes as blockages, IO pins) for
// Step-3 inter-cell checks and failed-pin accounting.
func (a *Analyzer) GlobalEngine() *drc.Engine {
	eng := drc.NewEngine(a.Design.Tech)
	for _, inst := range a.Design.Instances {
		for _, pin := range inst.Master.Pins {
			net := drc.NoNet
			if pin.Use == db.UseSignal || pin.Use == db.UseClock {
				net = a.NetOf(inst, pin)
			}
			for _, s := range inst.PinShapes(pin) {
				eng.AddMetal(s.Layer, s.Rect, net, drc.KindPin, "")
			}
		}
		for _, s := range inst.ObsShapes() {
			eng.AddMetal(s.Layer, s.Rect, drc.NoNet, drc.KindObs, "")
		}
	}
	for _, io := range a.Design.IOPins {
		eng.AddMetal(io.Shape.Layer, io.Shape.Rect, a.ioNet(io), drc.KindIOPin, io.Name)
	}
	return eng
}

func (a *Analyzer) ioNet(io *db.IOPin) int {
	for idx, net := range a.Design.Nets {
		for _, p := range net.IOPins {
			if p == io {
				return idx + 1
			}
		}
	}
	return drc.NoNet
}

// AnalyzeUnique runs Steps 1 and 2 for one unique instance.
func (a *Analyzer) AnalyzeUnique(ui *db.UniqueInstance) *UniqueAccess {
	eng, nets := a.cellEngine(ui)
	pivot := ui.Pivot()
	ua := &UniqueAccess{UI: ui, PivotPos: pivot.Pos}
	for _, pin := range pivot.Master.SignalPins() {
		pa := a.genAccessPoints(eng, pivot, pin, nets[pin.Name])
		ua.Pins = append(ua.Pins, pa)
	}
	a.orderPins(ua)
	a.genPatterns(ua)
	return ua
}

// Run executes the full three-step flow. When Cfg.Workers > 1 the
// per-unique-instance analysis (Steps 1 and 2) fans out across goroutines;
// classes are independent, so the result is identical to the sequential run.
func (a *Analyzer) Run() *Result {
	res := &Result{
		ByInstance: make(map[int]*UniqueAccess),
		Selected:   make(map[int]int),
	}
	uis := a.Design.UniqueInstances()
	uas := make([]*UniqueAccess, len(uis))
	if w := a.Cfg.Workers; w > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					uas[i] = a.AnalyzeUnique(uis[i])
				}
			}()
		}
		for i := range uis {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := range uis {
			uas[i] = a.AnalyzeUnique(uis[i])
		}
	}
	for i, ui := range uis {
		ua := uas[i]
		res.Unique = append(res.Unique, ua)
		for _, inst := range ui.Insts {
			res.ByInstance[inst.ID] = ua
		}
		res.Stats.NumUnique++
		res.Stats.TotalAPs += ua.TotalAPs()
		res.Stats.PatternsBuilt += len(ua.Patterns)
		res.Stats.PatternsDropped += ua.DroppedPatterns
		for _, pa := range ua.Pins {
			for _, ap := range pa.APs {
				if ap.OffTrack() {
					res.Stats.OffTrackAPs++
				}
			}
		}
	}
	res.indexSignatures(a.Design)
	eng := a.GlobalEngine()
	a.SelectPatterns(res, eng)
	a.CountFailedPins(res, eng)
	return res
}

// CountDirtyAPs re-validates every access point's primary via against the
// isolated cell context using the full DRC engine and returns the number
// carrying violations — the Table II "#Dirty APs" metric. PAAF results are
// zero by construction (Step 1 only emits validated points); baselines that
// skip real DRC validation score higher.
func (a *Analyzer) CountDirtyAPs(res *Result) int {
	dirty := 0
	for _, ua := range res.Unique {
		eng, nets := a.cellEngine(ua.UI)
		pivot := ua.UI.Pivot()
		for _, pa := range ua.Pins {
			rects := pinRectsByLayer(pivot, pa.Pin)
			for _, ap := range pa.APs {
				v := ap.Primary()
				if v == nil {
					continue
				}
				if len(eng.CheckVia(v, ap.Pos, nets[pa.Pin.Name], rects[ap.Layer])) > 0 {
					dirty++
				}
			}
		}
	}
	return dirty
}

func pinRectsByLayer(inst *db.Instance, pin *db.MPin) map[int][]geom.Rect {
	out := make(map[int][]geom.Rect)
	for _, s := range inst.PinShapes(pin) {
		out[s.Layer] = append(out[s.Layer], s.Rect)
	}
	return out
}

// apRectsOnLayer returns the pin's shapes on the given layer in the pivot's
// design coordinates.
func pinRectsOnLayer(inst *db.Instance, pin *db.MPin, layer int) []geom.Rect {
	var out []geom.Rect
	for _, s := range inst.PinShapes(pin) {
		if s.Layer == layer {
			out = append(out, s.Rect)
		}
	}
	return out
}
