package pao_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/faultinject"
	"repro/internal/pao"
	"repro/internal/suite"
)

func snapshotDesign(t *testing.T) *db.Design {
	t.Helper()
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSnapshotRoundTrip is the golden property: encode -> decode -> re-encode
// must be byte-identical, and the decoded result must answer every query
// exactly like the original.
func TestSnapshotRoundTrip(t *testing.T) {
	d := snapshotDesign(t)
	cfg := pao.DefaultConfig()
	res := pao.NewAnalyzer(d, cfg).Run()

	var first bytes.Buffer
	if err := pao.EncodeSnapshot(&first, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	restored, err := pao.DecodeSnapshot(bytes.NewReader(first.Bytes()), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := pao.EncodeSnapshot(&second, d, cfg, restored); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encode differs: %d vs %d bytes", first.Len(), second.Len())
	}

	if restored.Stats.Counts() != res.Stats.Counts() {
		t.Errorf("stats differ: %+v vs %+v", restored.Stats.Counts(), res.Stats.Counts())
	}
	if len(restored.Unique) != len(res.Unique) {
		t.Fatalf("class count differs: %d vs %d", len(restored.Unique), len(res.Unique))
	}
	for _, net := range d.Nets {
		for _, term := range net.Terms {
			got := restored.AccessPointFor(term.Inst, term.Pin)
			want := res.AccessPointFor(term.Inst, term.Pin)
			if (got == nil) != (want == nil) {
				t.Fatalf("%s/%s: restored AP presence differs", term.Inst.Name, term.Pin.Name)
			}
			if got == nil {
				continue
			}
			if got.Pos != want.Pos || got.Layer != want.Layer ||
				got.TypeX != want.TypeX || got.TypeY != want.TypeY ||
				got.Primary() != want.Primary() {
				t.Fatalf("%s/%s: restored AP %v differs from %v",
					term.Inst.Name, term.Pin.Name, got, want)
			}
		}
	}
}

// TestSnapshotHealthRoundTrip verifies that a quarantined class survives the
// snapshot: the restored Health reports the same failed signature, so a
// warm-restarted server keeps serving degraded answers for it.
func TestSnapshotHealthRoundTrip(t *testing.T) {
	d := snapshotDesign(t)
	cfg := pao.DefaultConfig()
	sig := d.UniqueInstances()[0].Signature()

	a := pao.NewAnalyzer(d, cfg)
	inj := faultinject.New().Add(&faultinject.Fault{
		Site: pao.SiteAnalyzeUnique, Detail: sig, Kind: faultinject.Panic, Note: "snap test",
	})
	a.FaultHook = inj.SiteHook()
	res := a.Run()
	if res.Health.Status(sig) != pao.StatusFailed {
		t.Fatalf("setup: class %s not quarantined", sig)
	}

	var buf bytes.Buffer
	if err := pao.EncodeSnapshot(&buf, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	restored, err := pao.DecodeSnapshot(bytes.NewReader(buf.Bytes()), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Health.Status(sig) != pao.StatusFailed {
		t.Errorf("restored health lost the quarantined class %s", sig)
	}
	if got := restored.Health.FailedClasses(); len(got) != 1 || got[0] != sig {
		t.Errorf("restored FailedClasses = %v", got)
	}
	if len(restored.Health.Errors()) != len(res.Health.Errors()) {
		t.Errorf("restored %d errors, want %d", len(restored.Health.Errors()), len(res.Health.Errors()))
	}
}

// TestSnapshotCorruption injects the three corruption modes the server must
// answer with a recompute: truncation, a flipped checksum byte, and a flipped
// payload byte.
func TestSnapshotCorruption(t *testing.T) {
	d := snapshotDesign(t)
	cfg := pao.DefaultConfig()
	res := pao.NewAnalyzer(d, cfg).Run()
	var buf bytes.Buffer
	if err := pao.EncodeSnapshot(&buf, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"flipped checksum byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xff
			return c
		}},
		{"flipped payload byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		}},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
	}
	for _, tc := range cases {
		_, err := pao.DecodeSnapshot(bytes.NewReader(tc.mutate(good)), d, cfg)
		if !errors.Is(err, pao.ErrSnapshotCorrupt) {
			t.Errorf("%s: err = %v, want ErrSnapshotCorrupt", tc.name, err)
		}
		if !pao.SnapshotPermanent(err) {
			t.Errorf("%s: corruption must be permanent", tc.name)
		}
	}
}

// TestSnapshotMismatch covers the provenance checks: a different design (new
// seed) and a different analysis config must both be rejected as permanent
// mismatches, never silently rebound.
func TestSnapshotMismatch(t *testing.T) {
	d := snapshotDesign(t)
	cfg := pao.DefaultConfig()
	res := pao.NewAnalyzer(d, cfg).Run()
	var buf bytes.Buffer
	if err := pao.EncodeSnapshot(&buf, d, cfg, res); err != nil {
		t.Fatal(err)
	}

	other, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pao.DecodeSnapshot(bytes.NewReader(buf.Bytes()), other, cfg); !errors.Is(err, pao.ErrSnapshotMismatch) {
		t.Errorf("different design: err = %v, want ErrSnapshotMismatch", err)
	}

	cfg2 := cfg
	cfg2.K = 5
	if _, err := pao.DecodeSnapshot(bytes.NewReader(buf.Bytes()), d, cfg2); !errors.Is(err, pao.ErrSnapshotMismatch) {
		t.Errorf("different config: err = %v, want ErrSnapshotMismatch", err)
	}

	// Workers and FailFast must NOT invalidate: results are worker-invariant.
	cfg3 := cfg
	cfg3.Workers = 8
	cfg3.FailFast = true
	if _, err := pao.DecodeSnapshot(bytes.NewReader(buf.Bytes()), d, cfg3); err != nil {
		t.Errorf("workers/fail-fast variation must still load: %v", err)
	}
}

// TestSnapshotFileAtomicity checks WriteSnapshotFile leaves no temp droppings
// and that ReadSnapshotFile round-trips through the filesystem.
func TestSnapshotFileAtomicity(t *testing.T) {
	d := snapshotDesign(t)
	cfg := pao.DefaultConfig()
	res := pao.NewAnalyzer(d, cfg).Run()
	dir := t.TempDir()
	path := filepath.Join(dir, "oracle.snap")
	if err := pao.WriteSnapshotFile(path, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: the rename must replace, not fail.
	if err := pao.WriteSnapshotFile(path, d, cfg, res); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "oracle.snap" {
		t.Errorf("snapshot dir not clean: %v", entries)
	}
	restored, err := pao.ReadSnapshotFile(path, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats.Counts() != res.Stats.Counts() {
		t.Errorf("file round-trip stats differ")
	}
}
