// Package pao implements the paper's contribution: a multi-level, design
// rule-aware pin access analysis framework (PAAF). It runs three steps:
//
//  1. pin-based access point generation per unique instance (Algorithm 1) —
//     enumerate coordinate-type candidates, validate each with the DRC
//     engine, early-terminate at k valid points per pin;
//  2. unique instance-based access pattern generation (Algorithms 2 and 3) —
//     dynamic programming over a layered graph of access points with
//     boundary-conflict-aware and history-aware edge costs, emitting up to
//     MaxPatterns mutually DRC-clean patterns;
//  3. cluster-based access pattern selection — the same DP shape over
//     instances in row clusters, minimizing inter-cell conflicts between
//     boundary access points.
package pao

import (
	"fmt"
	"time"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

// CoordType is the paper's coordinate taxonomy (Section II-C). The numeric
// value doubles as the cost/priority: lower is preferred.
type CoordType uint8

const (
	OnTrack     CoordType = 0
	HalfTrack   CoordType = 1
	ShapeCenter CoordType = 2
	EncBoundary CoordType = 3
)

var coordTypeNames = [...]string{"onTrack", "halfTrack", "shapeCenter", "encBoundary"}

func (c CoordType) String() string {
	if int(c) < len(coordTypeNames) {
		return coordTypeNames[c]
	}
	return fmt.Sprintf("CoordType(%d)", uint8(c))
}

// AccessDir is a direction from which the router can reach an access point.
type AccessDir uint8

const (
	DirUp AccessDir = iota // via to the upper layer
	DirEast
	DirWest
	DirNorth
	DirSouth
)

var accessDirNames = [...]string{"up", "E", "W", "N", "S"}

func (d AccessDir) String() string { return accessDirNames[d] }

// AccessPoint is an x-y coordinate on a metal layer where the detailed router
// may finish routing a pin, together with the directions and vias that are
// valid there (Section II-B1). Coordinates are design coordinates of the
// unique instance's pivot member; Translate maps them onto other members.
type AccessPoint struct {
	Pos    geom.Point
	Layer  int // metal number
	TypeX  CoordType
	TypeY  CoordType
	Dirs   [5]bool        // indexed by AccessDir
	Vias   []*tech.ViaDef // valid up-vias; Vias[0] is the primary
	OnPref CoordType      // type of the preferred-direction coordinate
}

// HasUp reports whether up-via access is valid.
func (ap *AccessPoint) HasUp() bool { return ap.Dirs[DirUp] }

// Primary returns the preferred via for up access, or nil.
func (ap *AccessPoint) Primary() *tech.ViaDef {
	if len(ap.Vias) == 0 {
		return nil
	}
	return ap.Vias[0]
}

// Cost is the access point quality metric: the sum of its coordinate type
// costs (lower is better).
func (ap *AccessPoint) Cost() int { return int(ap.TypeX) + int(ap.TypeY) }

// OffTrack reports whether either coordinate is off-track.
func (ap *AccessPoint) OffTrack() bool { return ap.TypeX != OnTrack || ap.TypeY != OnTrack }

func (ap *AccessPoint) String() string {
	return fmt.Sprintf("AP%v/M%d[x:%v,y:%v]", ap.Pos, ap.Layer, ap.TypeX, ap.TypeY)
}

// PinAccess holds the generated access points for one pin of a unique
// instance.
type PinAccess struct {
	Pin *db.MPin
	APs []*AccessPoint
	// SortKey is x_avg + alpha*y_avg over the APs, used for pin ordering.
	SortKey float64
}

// AvgPos returns the mean coordinate of the pin's access points.
func (pa *PinAccess) AvgPos() (float64, float64) {
	if len(pa.APs) == 0 {
		return 0, 0
	}
	var sx, sy float64
	for _, ap := range pa.APs {
		sx += float64(ap.Pos.X)
		sy += float64(ap.Pos.Y)
	}
	n := float64(len(pa.APs))
	return sx / n, sy / n
}

// AccessPattern selects one access point per pin of a unique instance such
// that the primary vias are mutually compatible (Section II-B2).
type AccessPattern struct {
	// Choice[i] indexes into Pins[i].APs, following the unique instance's
	// pin order. A value of -1 marks a pin with no access point.
	Choice []int
	Cost   int
}

// UniqueAccess is the full intra-cell analysis result for one unique
// instance: ordered pins with their access points and the generated patterns.
type UniqueAccess struct {
	UI *db.UniqueInstance
	// PivotPos is the pivot member's placement at analysis time; member
	// translation uses it so a later move of the pivot (incremental flows)
	// cannot skew the class's coordinates.
	PivotPos geom.Point
	Pins     []*PinAccess // in pin order (x_avg + alpha*y_avg)
	Patterns []*AccessPattern
	// DroppedPatterns counts DP results discarded by the final whole-pattern
	// DRC validation (the "unseen DRCs" check at the end of Section III-B).
	DroppedPatterns int
}

// APOf returns the access point the pattern chooses for ordered pin i, or nil.
func (ua *UniqueAccess) APOf(p *AccessPattern, i int) *AccessPoint {
	if p == nil || i < 0 || i >= len(p.Choice) || p.Choice[i] < 0 {
		return nil
	}
	return ua.Pins[i].APs[p.Choice[i]]
}

// TotalAPs returns the number of access points across all pins.
func (ua *UniqueAccess) TotalAPs() int {
	n := 0
	for _, pa := range ua.Pins {
		n += len(pa.APs)
	}
	return n
}

// Translate maps a pivot-coordinate point onto another member instance of the
// same unique instance (same master, orientation and track offsets, so a pure
// translation). Prefer UniqueAccess.TranslateTo, which stays correct when the
// pivot instance later moves.
func Translate(ui *db.UniqueInstance, member *db.Instance, p geom.Point) geom.Point {
	pivot := ui.Pivot()
	return p.Sub(pivot.Pos).Add(member.Pos)
}

// TranslateTo maps a class-coordinate point onto a member instance using the
// pivot position captured at analysis time.
func (ua *UniqueAccess) TranslateTo(member *db.Instance, p geom.Point) geom.Point {
	return p.Sub(ua.PivotPos).Add(member.Pos)
}

// Config tunes the analysis. Zero values select the paper's settings via
// DefaultConfig.
type Config struct {
	// K is the target number of access points per pin (Algorithm 1's k).
	K int
	// Alpha weighs the y coordinate in pin ordering (Section III-B).
	Alpha float64
	// MaxPatterns bounds the access patterns generated per unique instance.
	MaxPatterns int
	// BCA enables boundary-conflict-aware edge costs (penalizing reuse of
	// boundary-pin access points across patterns). Disabling it reproduces
	// the "w/o BCA" rows of Table III (MaxPatterns is forced to 1).
	BCA bool
	// HistoryAware enables the prev-1 -> curr DRC term of Algorithm 3.
	HistoryAware bool
	// RequireVia makes up-via validity mandatory for standard-cell access
	// points (footnote 1 of the paper). Macro pins accept planar-only access.
	RequireVia bool
	// AllowedTypes restricts the coordinate types used for candidate
	// generation (ablation hook). Empty means all four.
	AllowedTypes []CoordType
	// Costs.
	PenaltyCost int // boundary AP reuse penalty (Algorithm 3)
	DRCCost     int // conflicting access point pair cost (Algorithm 3)
	// Workers sets the number of goroutines for the per-unique-instance
	// analysis (Steps 1-2 are embarrassingly parallel across classes — the
	// multi-threading the paper lists as future work). 0 or 1 runs
	// single-threaded, matching the paper's reported setup. Results are
	// identical regardless of worker count.
	Workers int
	// FailFast aborts the run at the first recovered pipeline fault instead
	// of quarantining the class and continuing; RunContext then returns the
	// fault as its error. The default is graceful degradation.
	FailFast bool
	// NoCache disables the analyzer's memoization layers (the shared
	// via-drop verdict cache and the via-pair cache); every DRC question is
	// then answered by a live check. The zero value keeps caching on. The
	// flag exists for differential testing and benchmarking — results are
	// identical either way.
	NoCache bool
}

// workers returns the effective worker count (Workers with < 1 meaning 1) —
// the single normalization point for every fan-out site.
func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// DefaultConfig returns the paper's settings: k = 3, alpha = 0.3, up to three
// patterns per unique instance, BCA and history-aware costs on.
func DefaultConfig() Config {
	return Config{
		K:            3,
		Alpha:        0.3,
		MaxPatterns:  3,
		BCA:          true,
		HistoryAware: true,
		RequireVia:   true,
		PenaltyCost:  100,
		DRCCost:      10000,
	}
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = d.MaxPatterns
	}
	if !c.BCA {
		c.MaxPatterns = 1
	}
	if c.PenaltyCost <= 0 {
		c.PenaltyCost = d.PenaltyCost
	}
	if c.DRCCost <= 0 {
		c.DRCCost = d.DRCCost
	}
	return c
}

// typeAllowed reports whether a coordinate type participates in candidate
// generation under the config.
func (c Config) typeAllowed(t CoordType) bool {
	if len(c.AllowedTypes) == 0 {
		return true
	}
	for _, a := range c.AllowedTypes {
		if a == t {
			return true
		}
	}
	return false
}

// StepTimes records the durations of one Run's phases. Step1 and Step2 are
// CPU time summed across workers (they can exceed Step12Wall when
// Config.Workers > 1); the remaining fields are wall clock.
type StepTimes struct {
	Step1      time.Duration // access point generation (Algorithm 1)
	Step2      time.Duration // pattern generation (Algorithms 2-3)
	Step12Wall time.Duration // wall clock of the step 1+2 fan-out
	Step3      time.Duration // cluster-based pattern selection
	FailedPins time.Duration // failed-pin accounting
	Total      time.Duration // full Run wall clock
}

// Stats aggregates the counters the paper's tables report, plus the
// per-step durations of the Run that produced them.
type Stats struct {
	NumUnique       int
	TotalAPs        int // Table II "Total #APs"
	DirtyAPs        int // Table II "#Dirty APs" (always 0 for PAAF)
	TotalPins       int // Table III "Total #Pins" (instance pins with nets)
	FailedPins      int // Table III "#Failed Pins"
	PatternsBuilt   int
	PatternsDropped int
	OffTrackAPs     int
	Steps           StepTimes
}

// Counts returns the stats with the timing fields zeroed — the deterministic
// portion that must be identical across worker counts.
func (s Stats) Counts() Stats {
	s.Steps = StepTimes{}
	return s
}

// Result is the full analysis output.
type Result struct {
	Unique []*UniqueAccess
	// CorrID is the correlation ID of the RunContext analysis that produced
	// this result (telemetry.CorrIDFrom; minted when the caller's context has
	// none). Excluded from serialization: snapshots restore with the ID of
	// the run that loads them.
	CorrID string `json:"-"`
	// ByInstance maps instance ID to its unique access class.
	ByInstance map[int]*UniqueAccess
	// Selected maps instance ID to the chosen pattern index (Step 3).
	Selected map[int]int
	Stats    Stats
	// Health reports quarantined classes, recovered panics and cancellation.
	// Always non-nil on results produced by Run/RunContext; a clean run has
	// Health.OK() == true.
	Health *Health

	// bySig caches signature -> class for incremental rebinding.
	bySig map[string]*UniqueAccess
}

// UAFor returns the unique access class of an instance, or nil.
func (r *Result) UAFor(inst *db.Instance) *UniqueAccess { return r.ByInstance[inst.ID] }

// PatternFor returns the selected pattern for an instance, or nil.
func (r *Result) PatternFor(inst *db.Instance) *AccessPattern {
	ua := r.ByInstance[inst.ID]
	if ua == nil {
		return nil
	}
	idx, ok := r.Selected[inst.ID]
	if !ok || idx < 0 || idx >= len(ua.Patterns) {
		return nil
	}
	return ua.Patterns[idx]
}

// AccessPointFor returns the selected access point for an instance pin, in
// the instance's own design coordinates, or nil when the pin has no clean
// access.
func (r *Result) AccessPointFor(inst *db.Instance, pin *db.MPin) *AccessPoint {
	ua := r.ByInstance[inst.ID]
	if ua == nil {
		return nil
	}
	pat := r.PatternFor(inst)
	for i, pa := range ua.Pins {
		if pa.Pin != pin {
			continue
		}
		var ap *AccessPoint
		if pat != nil {
			ap = ua.APOf(pat, i)
		}
		if ap == nil && len(pa.APs) > 0 {
			ap = pa.APs[0]
		}
		if ap == nil {
			return nil
		}
		cp := *ap
		cp.Pos = ua.TranslateTo(inst, ap.Pos)
		return &cp
	}
	return nil
}
