package pao

// Decision records: the audit trail behind one pin's access answer. The
// oracle's value is that routers can trust its verdicts without re-deriving
// them, which means operators must be able to see *why* a candidate access
// point was kept or rejected. Steps 1-3 call the nil-by-default Rec hook at
// each decision; Explain re-derives one class with a recorder attached and
// assembles the report served at /v1/access/explain.

import (
	"fmt"

	"repro/internal/db"
)

// Reject reasons recorded for candidate access points.
const (
	// RejectOffPin: the candidate coordinate does not lie on the pin shape.
	RejectOffPin = "off-pin"
	// RejectViaRequired: Cfg.RequireVia is set, the instance is a core cell,
	// and no via variant dropped DRC-free.
	RejectViaRequired = "via-required"
	// RejectNoAccess: neither a via nor any planar escape stub was DRC-clean.
	RejectNoAccess = "no-access"
)

// ViaAudit is one via variant's DRC verdict at a candidate point.
type ViaAudit struct {
	Via        string `json:"via"`
	Violations int    `json:"violations"`
	// FromCache: the verdict was answered by the shared ViaCache (a hit on a
	// previously filled signature). False means the DRC check ran live.
	FromCache bool `json:"from_cache"`
}

// APAudit is the decision record for one candidate access point.
type APAudit struct {
	X        int64      `json:"x"`
	Y        int64      `json:"y"`
	Layer    int        `json:"layer"`
	TypeX    string     `json:"type_x"`
	TypeY    string     `json:"type_y"`
	Accepted bool       `json:"accepted"`
	Reject   string     `json:"reject,omitempty"` // off-pin | via-required | no-access
	Dirs     []string   `json:"dirs,omitempty"`   // clean escape directions
	Vias     []ViaAudit `json:"vias,omitempty"`   // per-variant verdicts
}

// PatternAudit is the decision record for one Step-2 DP iteration.
type PatternAudit struct {
	Iteration int    `json:"iteration"`
	Choice    []int  `json:"choice"`
	Cost      int    `json:"cost"`
	Accepted  bool   `json:"accepted"`
	Reason    string `json:"reason,omitempty"` // duplicate | drc-conflict
	Index     int    `json:"index"`            // pattern index when accepted, -1 otherwise
}

// DecisionRecorder receives Step-1/2/3 decision records. Implementations must
// be cheap and, when attached to an analyzer running with Workers > 1,
// goroutine-safe; the hook is nil by default and every call site gates on it,
// so a disabled recorder costs nothing on the hot path.
type DecisionRecorder interface {
	// RecordAP reports one candidate access point decision for a pin.
	RecordAP(pin string, ap APAudit)
	// RecordPattern reports one Step-2 pattern DP iteration.
	RecordPattern(p PatternAudit)
	// RecordSelection reports the Step-3 choice for one instance: the selected
	// pattern index and the cluster DP's best total cost.
	RecordSelection(instID, pattern, clusterCost int)
}

// CacheAudit is the cache provenance of an explain re-derivation.
type CacheAudit struct {
	ViaHits    int64 `json:"via_hits"`
	ViaMisses  int64 `json:"via_misses"`
	PairHits   int64 `json:"pair_hits"`
	PairMisses int64 `json:"pair_misses"`
}

// ExplainReport is the full decision audit for one pin of one class.
type ExplainReport struct {
	Class string `json:"class"`
	Pin   string `json:"pin"`
	// Cached reports whether the re-derivation ran with the verdict caches
	// enabled (the serving configuration); per-via FromCache flags then mark
	// which verdicts were memo hits.
	Cached bool `json:"cached"`
	// APs is the candidate audit in generation order: every coordinate Step 1
	// considered for this pin, with its verdicts and accept/reject decision.
	APs []APAudit `json:"aps"`
	// AcceptedAPs is the number of candidates that survived (== the pin's
	// access point count in the result).
	AcceptedAPs int `json:"accepted_aps"`
	// Patterns is the Step-2 iteration audit for the class (all pins).
	Patterns []PatternAudit `json:"patterns"`
	// PatternCount is the number of patterns kept for the class.
	PatternCount int `json:"pattern_count"`
	// Quarantined: the re-derivation panicked (mirrors the serving path's
	// class quarantine); the audit holds everything recorded before the fault.
	Quarantined     bool       `json:"quarantined,omitempty"`
	QuarantineError string     `json:"quarantine_error,omitempty"`
	Cache           CacheAudit `json:"cache"`
}

// explainRecorder keeps the audit for one pin (AP records of other pins in
// the class are dropped; pattern and selection records are class-wide).
type explainRecorder struct {
	pin      string
	aps      []APAudit
	patterns []PatternAudit
}

func (r *explainRecorder) RecordAP(pin string, ap APAudit) {
	if pin == r.pin {
		r.aps = append(r.aps, ap)
	}
}

func (r *explainRecorder) RecordPattern(p PatternAudit) {
	r.patterns = append(r.patterns, p)
}

func (r *explainRecorder) RecordSelection(instID, pattern, clusterCost int) {}

// Explain re-derives one instance's class analysis (Steps 1 and 2) with a
// decision recorder attached and returns the audit for the named pin. The
// re-derivation runs on a fresh single-threaded analyzer so it cannot disturb
// serving state; with cfg.NoCache unset it exercises the same cache machinery
// as the live run and reports per-verdict provenance. A panic during the
// re-derivation is quarantined into the report, mirroring the pipeline's
// class quarantine.
func Explain(d *db.Design, cfg Config, inst *db.Instance, pinName string) (*ExplainReport, error) {
	if inst == nil {
		return nil, fmt.Errorf("pao: explain: nil instance")
	}
	var pin *db.MPin
	for _, p := range inst.Master.SignalPins() {
		if p.Name == pinName {
			pin = p
			break
		}
	}
	if pin == nil {
		return nil, fmt.Errorf("pao: explain: instance %s has no signal pin %q", inst.Name, pinName)
	}
	var ui *db.UniqueInstance
	for _, u := range d.UniqueInstances() {
		for _, m := range u.Insts {
			if m == inst {
				ui = u
				break
			}
		}
		if ui != nil {
			break
		}
	}
	if ui == nil {
		return nil, fmt.Errorf("pao: explain: instance %s not in any unique class", inst.Name)
	}

	cfg.Workers = 1
	a := NewAnalyzer(d, cfg)
	rec := &explainRecorder{pin: pinName}
	a.Rec = rec
	rep := &ExplainReport{Class: ui.Signature(), Pin: pinName, Cached: !a.Cfg.NoCache}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rep.Quarantined = true
				rep.QuarantineError = fmt.Sprint(r)
			}
		}()
		ua := a.AnalyzeUnique(ui)
		if ua == nil {
			return
		}
		rep.PatternCount = len(ua.Patterns)
		for _, pa := range ua.Pins {
			if pa.Pin.Name == pinName {
				rep.AcceptedAPs = len(pa.APs)
			}
		}
	}()
	rep.APs = rec.aps
	rep.Patterns = rec.patterns
	cs := a.CacheStats()
	rep.Cache = CacheAudit{
		ViaHits: cs.ViaHits, ViaMisses: cs.ViaMisses,
		PairHits: cs.PairHits, PairMisses: cs.PairMisses,
	}
	return rep, nil
}
