package oracle

import (
	"repro/internal/geom"
	"repro/internal/tech"
)

// checkMinStepUnion evaluates the min-step rule over the outline of the union
// of rects: an outline edge shorter than MinStepLength is a step, and any
// maximal circular run of more than MaxEdges consecutive steps violates. A
// contour made entirely of steps violates as a whole.
//
// This is an independent formulation of the rule: rather than walking the
// ring from a pivot edge, it collects the maximal circular runs directly and
// reports each oversized run at the bounding box of its edges, which yields
// the same violation set as the engine.
func checkMinStepUnion(l *tech.RoutingLayer, rects []geom.Rect) []Violation {
	if !l.Step.Enabled() {
		return nil
	}
	var out []Violation
	for _, poly := range geom.UnionRects(rects) {
		for _, ring := range poly.AllRings() {
			out = append(out, ringStepRuns(l, ring)...)
		}
	}
	return out
}

// ringStepRuns finds the min-step violations of one ring.
func ringStepRuns(l *tech.RoutingLayer, ring geom.Ring) []Violation {
	edges := ring.Edges()
	n := len(edges)
	if n == 0 {
		return nil
	}
	isStep := func(i int) bool { return edges[i].Length() < l.Step.MinStepLength }

	anchor := -1 // first non-step edge
	for i := 0; i < n; i++ {
		if !isStep(i) {
			anchor = i
			break
		}
	}
	if anchor < 0 {
		return []Violation{{Rule: "MinStep", Layer: l.Name, Where: ring.BBox()}}
	}

	// Walk the ring once starting just past the anchor; every maximal run of
	// consecutive step edges is then seen in full (no run wraps past the
	// anchor, since the anchor is not a step).
	var out []Violation
	runLen := 0
	var runBox geom.Rect
	flush := func() {
		if runLen > l.Step.MaxEdges {
			out = append(out, Violation{Rule: "MinStep", Layer: l.Name, Where: runBox})
		}
		runLen = 0
	}
	for k := 1; k <= n; k++ {
		i := (anchor + k) % n
		if !isStep(i) {
			flush()
			continue
		}
		er := edges[i].Rect()
		if runLen == 0 {
			runBox = er
		} else {
			runBox = runBox.UnionBBox(er)
		}
		runLen++
	}
	flush()
	return out
}
