package oracle

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// rules extracts the sorted rule names of a violation list.
func rules(vs []Violation) []string {
	var out []string
	for _, k := range Keys(vs) {
		out = append(out, strings.SplitN(k, "|", 2)[0])
	}
	return out
}

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestMetalShortAndSpacing(t *testing.T) {
	tt := tech.N45()
	c := New(tt)
	c.AddMetal(1, geom.R(0, 0, 200, 70), 1)

	// Overlap with a different net is a short.
	if vs := c.CheckMetalRect(1, geom.R(100, 0, 300, 70), 2); !hasRule(vs, "Short") {
		t.Errorf("overlap: got %v, want Short", rules(vs))
	}
	// Same net is exempt.
	if vs := c.CheckMetalRect(1, geom.R(100, 0, 300, 70), 1); len(vs) != 0 {
		t.Errorf("same net: got %v, want clean", rules(vs))
	}
	// 10 nm gap < 70 nm required spacing.
	if vs := c.CheckMetalRect(1, geom.R(0, 80, 200, 150), 2); !hasRule(vs, "Spacing") {
		t.Errorf("narrow gap: got %v, want Spacing", rules(vs))
	}
	// A generous gap is clean.
	if vs := c.CheckMetalRect(1, geom.R(0, 300, 200, 370), 2); len(vs) != 0 {
		t.Errorf("wide gap: got %v, want clean", rules(vs))
	}
	// NoNet blockages conflict with real nets...
	if vs := c.CheckMetalRect(1, geom.R(0, 80, 200, 150), NoNet); !hasRule(vs, "Spacing") {
		t.Errorf("blockage vs net: got %v, want Spacing", rules(vs))
	}
	// ...but two blockages are exempt from each other.
	c2 := New(tt)
	c2.AddMetal(1, geom.R(0, 0, 200, 70), NoNet)
	if vs := c2.CheckMetalRect(1, geom.R(100, 0, 300, 70), NoNet); len(vs) != 0 {
		t.Errorf("blockage vs blockage: got %v, want clean", rules(vs))
	}
}

func TestWideSpacingFromTable(t *testing.T) {
	tt := tech.N45()
	c := New(tt)
	// Two wide shapes (minDim 3*width = 210 >= wide threshold) with a long
	// parallel run: the wide-spacing row (140) applies, so a 100 nm gap that
	// would satisfy the default 70 nm rule still violates.
	c.AddMetal(1, geom.R(0, 0, 1000, 210), 1)
	if vs := c.CheckMetalRect(1, geom.R(0, 310, 1000, 520), 2); !hasRule(vs, "Spacing") {
		t.Errorf("wide pair at 100 nm: got %v, want Spacing", rules(vs))
	}
	if vs := c.CheckMetalRect(1, geom.R(0, 360, 1000, 570), 2); len(vs) != 0 {
		t.Errorf("wide pair at 150 nm: got %v, want clean", rules(vs))
	}
}

func TestCutSpacing(t *testing.T) {
	tt := tech.N45()
	c := New(tt)
	cut := geom.R(0, 0, 70, 70)
	c.AddCut(1, cut, 1)

	// The identical coincident cut is the same via.
	if vs := c.CheckCutRect(1, cut, 2); len(vs) != 0 {
		t.Errorf("coincident cut: got %v, want clean", rules(vs))
	}
	// 40 nm gap < 80 nm rule, even on the same net.
	if vs := c.CheckCutRect(1, geom.R(110, 0, 180, 70), 1); !hasRule(vs, "CutSpacing") {
		t.Errorf("close cut: got %v, want CutSpacing", rules(vs))
	}
	if vs := c.CheckCutRect(1, geom.R(200, 0, 270, 70), 1); len(vs) != 0 {
		t.Errorf("spaced cut: got %v, want clean", rules(vs))
	}
}

func TestEOLWindow(t *testing.T) {
	tt := tech.N45()
	c := New(tt)
	// A blocker 50 nm in front of the right end edge of a 70 nm-high wire
	// (EOL: width 90, space 90, within 25).
	c.AddMetal(1, geom.R(350, 0, 500, 70), 2)
	wire := geom.R(0, 0, 300, 70)
	if vs := c.CheckEOLRect(1, wire, 1); !hasRule(vs, "EOL") {
		t.Errorf("blocked end: got %v, want EOL", rules(vs))
	}
	// A wide (>= 90 nm) wire end carries no EOL windows.
	if vs := c.CheckEOLRect(1, geom.R(0, 0, 300, 100), 1); len(vs) != 0 {
		t.Errorf("wide end: got %v, want clean", rules(vs))
	}
}

func TestViaDropCleanAndDirty(t *testing.T) {
	tt := tech.N45()
	v := tt.ViasAbove(1)[0]
	pin := geom.R(0, 0, 280, 70)

	c := New(tt)
	c.AddMetal(1, pin, 1)
	p := geom.Pt(140, 35)
	if vs := c.CheckVia(v, p, 1, []geom.Rect{pin}); len(vs) != 0 {
		t.Errorf("isolated via: got %v, want clean", rules(vs))
	}

	// A foreign shape inside the bottom-enclosure spacing halo dirties it.
	c.AddMetal(1, geom.R(0, 120, 280, 190), 2)
	if vs := c.CheckVia(v, p, 1, []geom.Rect{pin}); len(vs) == 0 {
		t.Error("crowded via: want violations, got clean")
	}
}

func TestViaMinStepNotch(t *testing.T) {
	tt := tech.N45()
	v := tt.ViasAbove(1)[0]
	// A same-net pin stub that pokes out of the bottom enclosure
	// ((70,0)-(210,70) for a via at (140,35)) as a 30 nm-tall tab: the union
	// outline gains sub-60 nm edges, so the min-step rule (MaxEdges 0) must
	// fire even though there is no foreign shape anywhere.
	pin := geom.R(0, 20, 80, 50)
	c := New(tt)
	c.AddMetal(1, pin, 1)
	p := geom.Pt(140, 35)
	vs := c.CheckVia(v, p, 1, []geom.Rect{pin})
	if !hasRule(vs, "MinStep") {
		t.Errorf("notched union: got %v, want MinStep", rules(vs))
	}
}

func TestCheckAllPairwise(t *testing.T) {
	tt := tech.N45()
	c := New(tt)
	c.AddMetal(1, geom.R(0, 0, 200, 70), 1)
	c.AddMetal(1, geom.R(0, 100, 200, 170), 2) // 30 nm gap: spacing
	c.AddMetal(1, geom.R(500, 0, 700, 70), 3)  // far away: clean
	c.AddCut(1, geom.R(0, 0, 70, 70), 1)
	c.AddCut(1, geom.R(100, 0, 170, 70), 2) // 30 nm gap: cut spacing
	vs := c.CheckAll()
	if !hasRule(vs, "Spacing") || !hasRule(vs, "CutSpacing") {
		t.Errorf("CheckAll: got %v, want Spacing and CutSpacing", rules(vs))
	}
	if hasRule(vs, "Short") {
		t.Errorf("CheckAll: unexpected Short in %v", rules(vs))
	}
	// Removal clears the metal spacing pair.
	c.Remove(1)
	if vs := c.CheckAll(); hasRule(vs, "Spacing") {
		t.Errorf("after Remove: got %v, want no Spacing", rules(vs))
	}
}
