// Package oracle is a deliberately naive reference DRC checker used to
// cross-validate internal/drc. It exposes the same via-drop and query surface
// (add shapes, check a hypothetical metal rect / cut / end-of-line window /
// via drop) but shares no code with the engine: every rule — PRL-table metal
// spacing, corner spacing, cut spacing, end-of-line and min-step — is
// re-derived here from the technology tables with pairwise O(n²) scans over a
// flat shape list, no spatial index, no query contexts and no caching.
//
// The point is independence, not speed: internal/difftest replays identical
// seeded queries through both implementations and fails on any verdict
// divergence, so an optimization in the engine (sharding, caching, incremental
// re-analysis) that silently changes behaviour is caught immediately. The
// only shared substrate is internal/geom's primitive types and the rectilinear
// union (geom.UnionRects), which internal/geom's own tests pin down.
//
// Verdict contract: a check here returns the same violation set as the engine
// under Violation.Key() equality (rule, layer, violation box). Free-text notes
// are not part of the contract.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// NoNet marks shapes that belong to no net. Mirrors the engine's convention:
// a NoNet shape conflicts with every net but never with another NoNet shape.
const NoNet = -1

// shape is one rectangle known to the checker. Metal shapes carry the 1-based
// metal number; via cuts carry the cut layer's lower metal number instead.
type shape struct {
	metal int
	cut   int
	rect  geom.Rect
	net   int
	alive bool
}

// Violation is one rule violation found by the reference checker.
type Violation struct {
	Rule  string
	Layer string
	Where geom.Rect
}

// Key renders the violation in the engine's dedup-key format so the two
// implementations compare directly.
func (v Violation) Key() string {
	return fmt.Sprintf("%s|%s|%d,%d,%d,%d", v.Rule, v.Layer, v.Where.XL, v.Where.YL, v.Where.XH, v.Where.YH)
}

// Keys returns the sorted, deduplicated key set of a violation list — the
// canonical form differential tests compare.
func Keys(vs []Violation) []string {
	seen := make(map[string]bool, len(vs))
	var out []string
	for _, v := range vs {
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Checker holds the design shapes and the technology whose rules it applies.
type Checker struct {
	Tech   *tech.Technology
	shapes []shape
}

// New creates an empty reference checker.
func New(t *tech.Technology) *Checker { return &Checker{Tech: t} }

// AddMetal registers a metal shape and returns its ID.
func (c *Checker) AddMetal(layer int, r geom.Rect, net int) int {
	c.shapes = append(c.shapes, shape{metal: layer, rect: r, net: net, alive: true})
	return len(c.shapes) - 1
}

// AddCut registers a via cut on the cut layer above metal cutBelow.
func (c *Checker) AddCut(cutBelow int, r geom.Rect, net int) int {
	c.shapes = append(c.shapes, shape{cut: cutBelow, rect: r, net: net, alive: true})
	return len(c.shapes) - 1
}

// Remove deletes a previously added shape.
func (c *Checker) Remove(id int) {
	if id >= 0 && id < len(c.shapes) {
		c.shapes[id].alive = false
	}
}

// NumShapes returns the number of live shapes.
func (c *Checker) NumShapes() int {
	n := 0
	for _, s := range c.shapes {
		if s.alive {
			n++
		}
	}
	return n
}

// exempt reports whether two nets are exempt from spacing/short rules against
// each other: same real net, or both netless blockages.
func exempt(a, b int) bool {
	if a == NoNet && b == NoNet {
		return true
	}
	return a == b && a != NoNet
}

// gap1D returns the separation of two closed 1-D intervals (0 when they
// overlap or touch).
func gap1D(al, ah, bl, bh int64) int64 {
	lo, hi := al, ah
	if bl > lo {
		lo = bl
	}
	if bh < hi {
		hi = bh
	}
	if lo <= hi {
		return 0
	}
	return lo - hi
}

// overlap1D returns the (possibly negative) overlap of two closed intervals.
func overlap1D(al, ah, bl, bh int64) int64 {
	lo, hi := al, ah
	if bl > lo {
		lo = bl
	}
	if bh < hi {
		hi = bh
	}
	return hi - lo
}

// distSq returns the squared Euclidean distance between two rectangles as
// closed sets.
func distSq(a, b geom.Rect) int64 {
	dx := gap1D(a.XL, a.XH, b.XL, b.XH)
	dy := gap1D(a.YL, a.YH, b.YL, b.YH)
	return dx*dx + dy*dy
}

// prl returns the parallel run length of two rectangles: the projection
// overlap perpendicular to their separation, negative for diagonal neighbors.
func prl(a, b geom.Rect) int64 {
	ox := overlap1D(a.XL, a.XH, b.XL, b.XH)
	oy := overlap1D(a.YL, a.YH, b.YL, b.YH)
	switch {
	case ox >= 0 && oy >= 0:
		if ox > oy {
			return ox
		}
		return oy
	case ox >= 0:
		return ox
	case oy >= 0:
		return oy
	}
	if ox > oy {
		return ox
	}
	return oy
}

// lookupSpacing scans the PRL spacing table for the required spacing at the
// given wider-shape width and parallel run length — a fresh implementation of
// the LEF lookup semantics (row: largest width threshold not exceeding width;
// column: largest PRL threshold not exceeding prl).
func lookupSpacing(tbl *tech.SpacingTable, width, runLen int64) int64 {
	if tbl == nil || len(tbl.Widths) == 0 {
		return 0
	}
	row, col := 0, 0
	for i := len(tbl.Widths) - 1; i >= 0; i-- {
		if width >= tbl.Widths[i] {
			row = i
			break
		}
	}
	for j := len(tbl.PRLs) - 1; j >= 0; j-- {
		if runLen >= tbl.PRLs[j] {
			col = j
			break
		}
	}
	return tbl.Spacing[row][col]
}

// minDim returns the smaller rectangle dimension.
func minDim(r geom.Rect) int64 {
	w, h := r.XH-r.XL, r.YH-r.YL
	if w < h {
		return w
	}
	return h
}

// metalPair applies the short, corner-spacing and PRL-spacing rules to one
// pair of different-net shapes on layer l.
func metalPair(l *tech.RoutingLayer, a, b geom.Rect) []Violation {
	if a.Overlaps(b) {
		ov, _ := a.Intersect(b)
		return []Violation{{Rule: "Short", Layer: l.Name, Where: ov}}
	}
	w := minDim(a)
	if bw := minDim(b); bw > w {
		w = bw
	}
	run := prl(a, b)
	diagonal := run < 0
	if diagonal {
		run = 0
	}
	req := lookupSpacing(&l.Spacing, w, run)
	if diagonal && l.Corner.Enabled() && w >= l.Corner.EligibleWidth && l.Corner.Spacing > req {
		if distSq(a, b) < l.Corner.Spacing*l.Corner.Spacing {
			return []Violation{{Rule: "CornerSpacing", Layer: l.Name, Where: a.UnionBBox(b)}}
		}
		return nil
	}
	if req > 0 && distSq(a, b) < req*req {
		return []Violation{{Rule: "Spacing", Layer: l.Name, Where: a.UnionBBox(b)}}
	}
	return nil
}

// CheckMetalRect validates a hypothetical metal shape against every indexed
// shape on the layer: shorts, corner spacing and PRL-table spacing.
func (c *Checker) CheckMetalRect(layer int, r geom.Rect, net int) []Violation {
	l := c.Tech.Metal(layer)
	if l == nil {
		return nil
	}
	var out []Violation
	for _, s := range c.shapes {
		if !s.alive || s.metal != layer || exempt(net, s.net) {
			continue
		}
		out = append(out, metalPair(l, r, s.rect)...)
	}
	return out
}

// CheckCutRect validates a hypothetical via cut on the cut layer above metal
// cutBelow: cut spacing applies regardless of net; a coincident identical cut
// is the same via and exempt.
func (c *Checker) CheckCutRect(cutBelow int, r geom.Rect, net int) []Violation {
	cl := c.Tech.Cut(cutBelow)
	if cl == nil {
		return nil
	}
	_ = net // cut spacing is net-blind, matching the engine
	var out []Violation
	for _, s := range c.shapes {
		if !s.alive || s.cut != cutBelow || s.rect == r {
			continue
		}
		if r.Overlaps(s.rect) {
			ov, _ := r.Intersect(s.rect)
			out = append(out, Violation{Rule: "Short", Layer: cl.Name, Where: ov})
			continue
		}
		if distSq(r, s.rect) < cl.Spacing*cl.Spacing {
			out = append(out, Violation{Rule: "CutSpacing", Layer: cl.Name, Where: r.UnionBBox(s.rect)})
		}
	}
	return out
}

// eolWindows derives the end-of-line clearance windows of a wire-like shape:
// when an end edge (the pair of edges spanning the narrow dimension) is
// shorter than EOLWidth, a window extends EOLSpace beyond it, widened by
// EOLWithin on each side.
func eolWindows(l *tech.RoutingLayer, r geom.Rect) []geom.Rect {
	if !l.EOL.Enabled() {
		return nil
	}
	w, h := r.XH-r.XL, r.YH-r.YL
	if w >= h {
		// Horizontal wire: end edges are vertical.
		if h >= l.EOL.EOLWidth {
			return nil
		}
		return []geom.Rect{
			{XL: r.XL - l.EOL.EOLSpace, YL: r.YL - l.EOL.EOLWithin, XH: r.XL, YH: r.YH + l.EOL.EOLWithin},
			{XL: r.XH, YL: r.YL - l.EOL.EOLWithin, XH: r.XH + l.EOL.EOLSpace, YH: r.YH + l.EOL.EOLWithin},
		}
	}
	if w >= l.EOL.EOLWidth {
		return nil
	}
	return []geom.Rect{
		{XL: r.XL - l.EOL.EOLWithin, YL: r.YL - l.EOL.EOLSpace, XH: r.XH + l.EOL.EOLWithin, YH: r.YL},
		{XL: r.XL - l.EOL.EOLWithin, YL: r.YH, XH: r.XH + l.EOL.EOLWithin, YH: r.YH + l.EOL.EOLSpace},
	}
}

// CheckEOLRect applies the end-of-line rule to a wire-like shape: each
// clearance window must be free of different-net shapes. One violation per
// blocked window, at the window box.
func (c *Checker) CheckEOLRect(layer int, r geom.Rect, net int) []Violation {
	l := c.Tech.Metal(layer)
	if l == nil {
		return nil
	}
	var out []Violation
	for _, win := range eolWindows(l, r) {
		for _, s := range c.shapes {
			if !s.alive || s.metal != layer || exempt(net, s.net) {
				continue
			}
			if win.Overlaps(s.rect) {
				out = append(out, Violation{Rule: "EOL", Layer: l.Name, Where: win})
				break
			}
		}
	}
	return out
}

// CheckVia validates dropping via v at p for the given net, mirroring the
// engine's composition: bottom and top enclosures against metal shorts,
// spacing and end-of-line; each cut against cut spacing; and min-step over the
// union of the bottom enclosure with the connected same-net rects and over
// the top enclosure alone. The result is deduplicated by key.
func (c *Checker) CheckVia(v *tech.ViaDef, p geom.Point, net int, sameNetRects []geom.Rect) []Violation {
	k := v.CutBelow
	bot := v.BotRect(p)
	top := v.TopRect(p)

	var out []Violation
	out = append(out, c.CheckMetalRect(k, bot, net)...)
	out = append(out, c.CheckMetalRect(k+1, top, net)...)
	for _, cut := range v.CutRects(p) {
		out = append(out, c.CheckCutRect(k, cut, net)...)
	}
	out = append(out, c.CheckEOLRect(k, bot, net)...)
	out = append(out, c.CheckEOLRect(k+1, top, net)...)

	if lb := c.Tech.Metal(k); lb != nil && lb.Step.Enabled() {
		out = append(out, checkMinStepUnion(lb, connectedComponent(bot, sameNetRects))...)
	}
	if lt := c.Tech.Metal(k + 1); lt != nil && lt.Step.Enabled() {
		out = append(out, checkMinStepUnion(lt, []geom.Rect{top})...)
	}
	return dedup(out)
}

// dedup removes violations with duplicate keys, preserving order.
func dedup(vs []Violation) []Violation {
	seen := make(map[string]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// connectedComponent returns seed plus every rect reachable from it through a
// chain of touching rects — a fresh breadth-first implementation of the
// engine's transitive closure.
func connectedComponent(seed geom.Rect, rects []geom.Rect) []geom.Rect {
	out := []geom.Rect{seed}
	used := make([]bool, len(rects))
	queue := []geom.Rect{seed}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i, r := range rects {
			if used[i] || !cur.Touches(r) {
				continue
			}
			used[i] = true
			out = append(out, r)
			queue = append(queue, r)
		}
	}
	return out
}

// CheckAll runs the pairwise short/spacing rules over every pair of indexed
// metal shapes and cut spacing over every pair of cuts — the reference for
// the engine's full-design check. Each violating pair is reported once.
func (c *Checker) CheckAll() []Violation {
	var out []Violation
	for i := range c.shapes {
		a := &c.shapes[i]
		if !a.alive {
			continue
		}
		for j := i + 1; j < len(c.shapes); j++ {
			b := &c.shapes[j]
			if !b.alive {
				continue
			}
			switch {
			case a.metal > 0 && a.metal == b.metal:
				if exempt(a.net, b.net) {
					continue
				}
				out = append(out, metalPair(c.Tech.Metal(a.metal), a.rect, b.rect)...)
			case a.cut > 0 && a.cut == b.cut:
				cl := c.Tech.Cut(a.cut)
				if a.rect.Overlaps(b.rect) {
					ov, _ := a.rect.Intersect(b.rect)
					out = append(out, Violation{Rule: "Short", Layer: cl.Name, Where: ov})
					continue
				}
				if distSq(a.rect, b.rect) < cl.Spacing*cl.Spacing {
					out = append(out, Violation{Rule: "CutSpacing", Layer: cl.Name, Where: a.rect.UnionBBox(b.rect)})
				}
			}
		}
	}
	return dedup(out)
}
