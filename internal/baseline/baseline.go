// Package baseline reimplements the pin access strategy of the pre-PAO
// TritonRoute v0.0.6.0 — the "TrRte" columns of Tables II and III. Compared
// to the paper's framework it:
//
//   - generates access points only at preferred/non-preferred track crossings
//     and shape centers (no half-track or enclosure-boundary coordinates);
//   - "validates" candidates with a naive overlap-only scan over all of the
//     cell's shapes (no spatial index, no spacing/min-step/end-of-line
//     awareness), so access points with real DRC violations slip through —
//     the "#Dirty APs" column;
//   - always assigns the default via variant;
//   - picks the first access point per pin independently, with no intra-cell
//     or inter-cell compatibility analysis — the "#Failed Pins" column.
//
// The output reuses the pao result types so the experiment harness evaluates
// both flows identically.
package baseline

import (
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/tech"
)

// K is the access point budget per pin, matching the PAAF setting.
const K = 3

// Analyze runs the baseline pin access flow and returns a pao.Result shaped
// like the PAAF output: one access pattern per unique instance choosing each
// pin's first access point.
func Analyze(d *db.Design) *pao.Result {
	res := &pao.Result{
		ByInstance: make(map[int]*pao.UniqueAccess),
		Selected:   make(map[int]int),
	}
	for _, ui := range d.UniqueInstances() {
		ua := analyzeUnique(d, ui)
		res.Unique = append(res.Unique, ua)
		for _, inst := range ui.Insts {
			res.ByInstance[inst.ID] = ua
			if len(ua.Patterns) > 0 {
				res.Selected[inst.ID] = 0
			}
		}
		res.Stats.NumUnique++
		res.Stats.TotalAPs += ua.TotalAPs()
		res.Stats.PatternsBuilt += len(ua.Patterns)
		for _, pa := range ua.Pins {
			for _, ap := range pa.APs {
				if ap.OffTrack() {
					res.Stats.OffTrackAPs++
				}
			}
		}
	}
	return res
}

// cellShape is one fixed shape of the pivot cell, for the naive scan.
type cellShape struct {
	layer int
	rect  geom.Rect
	pin   *db.MPin // nil for obstructions
}

func analyzeUnique(d *db.Design, ui *db.UniqueInstance) *pao.UniqueAccess {
	pivot := ui.Pivot()
	var shapes []cellShape
	for _, p := range pivot.Master.Pins {
		for _, s := range pivot.PinShapes(p) {
			shapes = append(shapes, cellShape{s.Layer, s.Rect, p})
		}
	}
	for _, s := range pivot.ObsShapes() {
		shapes = append(shapes, cellShape{s.Layer, s.Rect, nil})
	}

	ua := &pao.UniqueAccess{UI: ui, PivotPos: pivot.Pos}
	for _, pin := range pivot.Master.SignalPins() {
		ua.Pins = append(ua.Pins, genPin(d, pivot, pin, shapes))
	}
	// The baseline has no pin ordering or DP; its single "pattern" is the
	// first access point of every pin.
	choice := make([]int, len(ua.Pins))
	any := false
	for i, pa := range ua.Pins {
		if len(pa.APs) > 0 {
			choice[i] = 0
			any = true
		} else {
			choice[i] = -1
		}
	}
	if any {
		ua.Patterns = []*pao.AccessPattern{{Choice: choice}}
	}
	return ua
}

// genPin enumerates track-crossing and shape-center candidates over the pin's
// maximal rectangles and keeps the first K that pass the naive overlap scan.
func genPin(d *db.Design, pivot *db.Instance, pin *db.MPin, shapes []cellShape) *pao.PinAccess {
	pa := &pao.PinAccess{Pin: pin}
	layers := map[int][]geom.Rect{}
	var order []int
	for _, s := range pin.Shapes {
		if _, seen := layers[s.Layer]; !seen {
			order = append(order, s.Layer)
		}
	}
	sort.Ints(order)
	for _, layer := range order {
		var rects []geom.Rect
		for _, s := range pivot.PinShapes(pin) {
			if s.Layer == layer {
				rects = append(rects, s.Rect)
			}
		}
		genPinOnLayer(d, pin, layer, geom.MaxRects(rects), shapes, pa)
		if len(pa.APs) >= K {
			break
		}
	}
	return pa
}

func genPinOnLayer(d *db.Design, pin *db.MPin, layer int, rects []geom.Rect, shapes []cellShape, pa *pao.PinAccess) {
	l := d.Tech.Metal(layer)
	if l == nil {
		return
	}
	vias := d.Tech.ViasAbove(layer)
	if len(vias) == 0 {
		return
	}
	defVia := vias[0] // the baseline always uses the default variant
	pref, _ := d.TracksFor(layer)
	nonPref := nonPreferredTracks(d, layer)

	seen := map[geom.Point]bool{}
	emit := func(p geom.Point, tx, ty pao.CoordType) {
		if len(pa.APs) >= K || seen[p] {
			return
		}
		seen[p] = true
		if !naiveClean(defVia, p, pin, shapes) {
			return
		}
		ap := &pao.AccessPoint{Pos: p, Layer: layer, TypeX: tx, TypeY: ty,
			Vias: []*tech.ViaDef{defVia}}
		ap.Dirs[pao.DirUp] = true
		pa.APs = append(pa.APs, ap)
	}

	for _, r := range rects {
		var prefLo, prefHi, npLo, npHi int64
		if l.Dir == tech.Horizontal {
			prefLo, prefHi = r.SpanY()
			npLo, npHi = r.SpanX()
		} else {
			prefLo, prefHi = r.SpanX()
			npLo, npHi = r.SpanY()
		}
		var prefCoords, npCoords []int64
		for _, tp := range pref {
			prefCoords = append(prefCoords, tp.CoordsIn(prefLo, prefHi)...)
		}
		for _, tp := range nonPref {
			npCoords = append(npCoords, tp.CoordsIn(npLo, npHi)...)
		}
		for _, pc := range prefCoords {
			for _, nc := range npCoords {
				if l.Dir == tech.Horizontal {
					emit(geom.Pt(nc, pc), pao.OnTrack, pao.OnTrack)
				} else {
					emit(geom.Pt(pc, nc), pao.OnTrack, pao.OnTrack)
				}
			}
		}
		// Shape center as the fallback candidate.
		emit(r.Center(), pao.ShapeCenter, pao.ShapeCenter)
	}
}

func nonPreferredTracks(d *db.Design, layer int) []db.TrackPattern {
	_, np := d.TracksFor(layer)
	if len(np) > 0 {
		return np
	}
	up, _ := d.TracksFor(layer + 1)
	return up
}

// naiveClean is the baseline's legality test: the via's enclosures and cut
// must not overlap a shape belonging to a different pin or an obstruction.
// It scans every cell shape linearly (no index) and checks only overlap —
// spacing, min-step and end-of-line violations pass straight through, which
// is where the dirty access points of Table II come from.
func naiveClean(v *tech.ViaDef, p geom.Point, pin *db.MPin, shapes []cellShape) bool {
	bot := v.BotRect(p)
	top := v.TopRect(p)
	for _, s := range shapes {
		if s.pin == pin {
			continue
		}
		if s.layer == v.CutBelow && bot.Overlaps(s.rect) {
			return false
		}
		if s.layer == v.CutBelow+1 && top.Overlaps(s.rect) {
			return false
		}
	}
	return true
}
