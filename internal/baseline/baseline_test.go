package baseline

import (
	"testing"

	"repro/internal/pao"
	"repro/internal/suite"
)

func TestBaselineVsPAAF(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.02)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := Analyze(d)
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	paaf := a.Run()

	if base.Stats.NumUnique != paaf.Stats.NumUnique {
		t.Errorf("unique instance counts differ: %d vs %d", base.Stats.NumUnique, paaf.Stats.NumUnique)
	}
	if base.Stats.TotalAPs == 0 {
		t.Fatal("baseline generated no APs")
	}
	// Table II shape: PAAF generates at least as many APs and strictly fewer
	// dirty ones (zero).
	if base.Stats.TotalAPs > paaf.Stats.TotalAPs {
		t.Errorf("baseline APs %d > PAAF APs %d (paper shape: PAAF generates more)",
			base.Stats.TotalAPs, paaf.Stats.TotalAPs)
	}
	baseDirty := a.CountDirtyAPs(base)
	paafDirty := a.CountDirtyAPs(paaf)
	if paafDirty != 0 {
		t.Errorf("PAAF dirty APs = %d, want 0", paafDirty)
	}
	if baseDirty == 0 {
		t.Error("baseline produced no dirty APs; the overlap-only validation should miss real violations")
	}

	// Table III shape: baseline leaves failed pins, PAAF leaves none.
	eng := a.GlobalEngine()
	a.CountFailedPins(base, eng)
	if base.Stats.FailedPins == 0 {
		t.Error("baseline FailedPins = 0; no-compatibility selection should fail pins")
	}
	if paaf.Stats.FailedPins != 0 {
		t.Errorf("PAAF FailedPins = %d", paaf.Stats.FailedPins)
	}
	if base.Stats.TotalPins != paaf.Stats.TotalPins {
		t.Errorf("pin totals differ: %d vs %d", base.Stats.TotalPins, paaf.Stats.TotalPins)
	}
}

func TestBaselineDeterministic(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1 := Analyze(d)
	r2 := Analyze(d)
	if r1.Stats != r2.Stats {
		t.Fatalf("nondeterministic: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

func TestBaselineAPsOnPin(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(d)
	for _, ua := range res.Unique {
		pivot := ua.UI.Pivot()
		for _, pa := range ua.Pins {
			if len(pa.APs) > K {
				t.Fatalf("pin %s has %d APs, budget %d", pa.Pin.Name, len(pa.APs), K)
			}
			for _, ap := range pa.APs {
				on := false
				for _, s := range pivot.PinShapes(pa.Pin) {
					if s.Layer == ap.Layer && s.Rect.ContainsPt(ap.Pos) {
						on = true
					}
				}
				if !on {
					t.Fatalf("AP %v not on pin %s/%s", ap, pivot.Master.Name, pa.Pin.Name)
				}
			}
		}
	}
}

// TestBaselineMemberTranslation: access points reported for non-pivot
// members must land on the member's own pin shapes (regression: the result
// type's pivot-position contract).
func TestBaselineMemberTranslation(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.02)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(d)
	checked := 0
	for _, net := range d.Nets {
		for _, term := range net.Terms {
			ap := res.AccessPointFor(term.Inst, term.Pin)
			if ap == nil {
				continue
			}
			on := false
			for _, s := range term.Inst.PinShapes(term.Pin) {
				if s.Layer == ap.Layer && s.Rect.ContainsPt(ap.Pos) {
					on = true
				}
			}
			if !on {
				t.Fatalf("%s/%s: AP %v not on the member's pin", term.Inst.Name, term.Pin.Name, ap.Pos)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}
