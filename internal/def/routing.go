package def

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Routing is the detailed-routing result of one net, in DEF REGULAR WIRING
// form: centerline segments and via placements.
type Routing struct {
	Segments []Segment
	Vias     []ViaRef
}

// Segment is one straight centerline piece on a metal layer.
type Segment struct {
	Layer    int // metal number
	From, To geom.Point
}

// ViaRef places a named via.
type ViaRef struct {
	Name string
	At   geom.Point
}

// WriteRouted emits the design as DEF with ROUTED clauses on the nets that
// have routing. Nets absent from the map are written unrouted.
func WriteRouted(w io.Writer, d *db.Design, routing map[string]*Routing) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", d.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", d.Tech.DBUPerMicron)
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", d.Die.XL, d.Die.YL, d.Die.XH, d.Die.YH)
	for _, r := range d.Rows {
		fmt.Fprintf(bw, "ROW %s core %d %d %s DO %d BY 1 STEP %d 0 ;\n",
			r.Name, r.Origin.X, r.Origin.Y, r.Orient, r.NumSites, r.SiteW)
	}
	for _, tp := range d.Tracks {
		axis := "Y"
		if tp.WireDir == tech.Vertical {
			axis = "X"
		}
		fmt.Fprintf(bw, "TRACKS %s %d DO %d STEP %d LAYER %s ;\n",
			axis, tp.Start, tp.Num, tp.Step, d.Tech.Metal(tp.Layer).Name)
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Instances))
	for _, inst := range d.Instances {
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) %s ;\n",
			inst.Name, inst.Master.Name, inst.Pos.X, inst.Pos.Y, inst.Orient)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "- %s", n.Name)
		for _, io := range n.IOPins {
			fmt.Fprintf(bw, " ( PIN %s )", io.Name)
		}
		for _, t := range n.Terms {
			fmt.Fprintf(bw, " ( %s %s )", t.Inst.Name, t.Pin.Name)
		}
		if rt := routing[n.Name]; rt != nil && (len(rt.Segments) > 0 || len(rt.Vias) > 0) {
			first := true
			for _, s := range rt.Segments {
				kw := "NEW"
				if first {
					kw = "+ ROUTED"
					first = false
				}
				fmt.Fprintf(bw, "\n  %s %s ( %d %d ) ( %d %d )",
					kw, d.Tech.Metal(s.Layer).Name, s.From.X, s.From.Y, s.To.X, s.To.Y)
			}
			for _, v := range rt.Vias {
				vd := d.Tech.ViaByName(v.Name)
				if vd == nil {
					return fmt.Errorf("def: unknown via %q in routing of %s", v.Name, n.Name)
				}
				kw := "NEW"
				if first {
					kw = "+ ROUTED"
					first = false
				}
				fmt.Fprintf(bw, "\n  %s %s ( %d %d ) %s",
					kw, d.Tech.Metal(vd.CutBelow).Name, v.At.X, v.At.Y, v.Name)
			}
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

// ParseRouted reads a DEF design plus any ROUTED clauses. It accepts the same
// input as Parse (routing is optional) and additionally returns the parsed
// routing per net name.
func ParseRouted(r io.Reader, t *tech.Technology, masters []*db.Master) (*db.Design, map[string]*Routing, error) {
	p, err := newParser(r)
	if err != nil {
		return nil, nil, err
	}
	d := db.NewDesign("", t)
	for _, m := range masters {
		if err := d.AddMaster(m); err != nil {
			return nil, nil, err
		}
	}
	routing := make(map[string]*Routing)
	for !p.eof() {
		switch tok := p.next(); tok {
		case "VERSION", "DIVIDERCHAR", "BUSBITCHARS", "UNITS":
			p.skipStatement()
		case "DESIGN":
			d.Name = p.next()
			p.skipStatement()
		case "DIEAREA":
			vals, err := parseCoordPairs(p, 2)
			if err != nil {
				return nil, nil, err
			}
			d.Die = geom.R(vals[0].X, vals[0].Y, vals[1].X, vals[1].Y)
		case "ROW":
			if err := parseRow(p, d); err != nil {
				return nil, nil, err
			}
		case "TRACKS":
			if err := parseTracks(p, d); err != nil {
				return nil, nil, err
			}
		case "COMPONENTS":
			if err := parseComponents(p, d); err != nil {
				return nil, nil, err
			}
		case "PINS":
			if err := parsePins(p, d); err != nil {
				return nil, nil, err
			}
		case "NETS":
			if err := parseRoutedNets(p, d, routing); err != nil {
				return nil, nil, err
			}
		case "END":
			if p.peek() == "DESIGN" {
				p.next()
				return d, routing, nil
			}
		default:
			p.skipStatement()
		}
	}
	return d, routing, nil
}

// parseRoutedNets reads the NETS section including ROUTED/NEW wiring clauses.
func parseRoutedNets(p *parser, d *db.Design, routing map[string]*Routing) error {
	p.skipStatement()
	ioByName := make(map[string]*db.IOPin, len(d.IOPins))
	for _, io := range d.IOPins {
		ioByName[io.Name] = io
	}
	for !p.eof() {
		tok := p.next()
		if tok == "END" {
			return p.expect("NETS")
		}
		if tok != "-" {
			return fmt.Errorf("def: expected net entry, got %q", tok)
		}
		n := &db.Net{Name: p.next()}
		for !p.eof() {
			t := p.next()
			if t == ";" {
				break
			}
			switch t {
			case "(":
				a := p.next()
				b := p.next()
				if err := p.expect(")"); err != nil {
					return err
				}
				if a == "PIN" {
					if io := ioByName[b]; io != nil {
						n.IOPins = append(n.IOPins, io)
					}
					continue
				}
				inst := d.InstByName(a)
				if inst == nil {
					return fmt.Errorf("def: net %q references unknown instance %q", n.Name, a)
				}
				pin := inst.Master.PinByName(b)
				if pin == nil {
					return fmt.Errorf("def: net %q references unknown pin %s/%s", n.Name, a, b)
				}
				n.Terms = append(n.Terms, db.Term{Inst: inst, Pin: pin})
			case "+":
				if p.peek() == "ROUTED" {
					p.next()
					if err := parseWiring(p, d, n.Name, routing); err != nil {
						return err
					}
					// parseWiring stops at ";" already consumed.
					goto netDone
				}
			}
		}
	netDone:
		d.Nets = append(d.Nets, n)
	}
	return fmt.Errorf("def: unterminated NETS")
}

// parseWiring reads wiring elements (layer + points / via refs, separated by
// NEW) until the terminating ";".
func parseWiring(p *parser, d *db.Design, netName string, routing map[string]*Routing) error {
	rt := routing[netName]
	if rt == nil {
		rt = &Routing{}
		routing[netName] = rt
	}
	for !p.eof() {
		layerName := p.next()
		l := d.Tech.MetalByName(layerName)
		if l == nil {
			return fmt.Errorf("def: routing of %q on unknown layer %q", netName, layerName)
		}
		if err := p.expect("("); err != nil {
			return err
		}
		x1, err := p.int64()
		if err != nil {
			return err
		}
		y1, err := p.int64()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		switch p.peek() {
		case "(":
			p.next()
			x2, err := p.int64()
			if err != nil {
				return err
			}
			y2, err := p.int64()
			if err != nil {
				return err
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			rt.Segments = append(rt.Segments, Segment{
				Layer: l.Num, From: geom.Pt(x1, y1), To: geom.Pt(x2, y2)})
		default:
			viaName := p.next()
			if d.Tech.ViaByName(viaName) == nil {
				return fmt.Errorf("def: routing of %q uses unknown via %q", netName, viaName)
			}
			rt.Vias = append(rt.Vias, ViaRef{Name: viaName, At: geom.Pt(x1, y1)})
		}
		switch p.next() {
		case "NEW":
			continue
		case ";":
			return nil
		default:
			return fmt.Errorf("def: bad wiring separator in %q", netName)
		}
	}
	return fmt.Errorf("def: unterminated wiring of %q", netName)
}
