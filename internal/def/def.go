// Package def reads and writes the DEF subset the pin access flow needs:
// die area, rows, track patterns (the third component of unique-instance
// signatures), placed components, design pins and nets. As with package lef,
// the dialect follows DEF 5.8 closely while staying dependency-free.
package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

// Write emits the design as DEF. Coordinates are written in DBU directly
// (DEF distance units).
func Write(w io.Writer, d *db.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", d.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", d.Tech.DBUPerMicron)
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", d.Die.XL, d.Die.YL, d.Die.XH, d.Die.YH)

	for _, r := range d.Rows {
		fmt.Fprintf(bw, "ROW %s core %d %d %s DO %d BY 1 STEP %d 0 ;\n",
			r.Name, r.Origin.X, r.Origin.Y, r.Orient, r.NumSites, r.SiteW)
	}
	for _, tp := range d.Tracks {
		axis := "Y"
		if tp.WireDir == tech.Vertical {
			axis = "X"
		}
		fmt.Fprintf(bw, "TRACKS %s %d DO %d STEP %d LAYER %s ;\n",
			axis, tp.Start, tp.Num, tp.Step, d.Tech.Metal(tp.Layer).Name)
	}

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Instances))
	for _, inst := range d.Instances {
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) %s ;\n",
			inst.Name, inst.Master.Name, inst.Pos.X, inst.Pos.Y, inst.Orient)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	if len(d.IOPins) > 0 {
		fmt.Fprintf(bw, "PINS %d ;\n", len(d.IOPins))
		for _, io := range d.IOPins {
			r := io.Shape.Rect
			c := r.Center()
			fmt.Fprintf(bw, "- %s + NET %s + DIRECTION %s + LAYER %s ( %d %d ) ( %d %d ) + PLACED ( %d %d ) N ;\n",
				io.Name, netOfIO(d, io), io.Dir, d.Tech.Metal(io.Shape.Layer).Name,
				r.XL-c.X, r.YL-c.Y, r.XH-c.X, r.YH-c.Y, c.X, c.Y)
		}
		fmt.Fprintf(bw, "END PINS\n")
	}

	fmt.Fprintf(bw, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "- %s", n.Name)
		for _, io := range n.IOPins {
			fmt.Fprintf(bw, " ( PIN %s )", io.Name)
		}
		for _, t := range n.Terms {
			fmt.Fprintf(bw, " ( %s %s )", t.Inst.Name, t.Pin.Name)
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

func netOfIO(d *db.Design, io *db.IOPin) string {
	for _, n := range d.Nets {
		for _, p := range n.IOPins {
			if p == io {
				return n.Name
			}
		}
	}
	return io.Name
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

// Input hardening bounds (see the matching limits in package lef): DEF is a
// machine-written format, so anything past these is a corrupt or adversarial
// file and is rejected before it can balloon memory or overflow coordinate
// arithmetic.
const (
	// maxTokenLen bounds one identifier/number token.
	maxTokenLen = 4096
	// maxCoordDBU bounds any integer coordinate (DBU) — far past any
	// physical die, with enough int64 headroom that sums and areas of a few
	// such coordinates cannot overflow.
	maxCoordDBU = int64(1e15)
	// maxSectionCount bounds the declared COMPONENTS/PINS/NETS entry counts.
	maxSectionCount = int64(50_000_000)
)

type parser struct {
	toks []string
	pos  int
}

func newParser(r io.Reader) (*parser, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var toks []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		for _, f := range strings.Fields(line) {
			if len(f) > maxTokenLen {
				return nil, fmt.Errorf("def: token of %d bytes exceeds the %d-byte limit", len(f), maxTokenLen)
			}
			toks = append(toks, f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }
func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}
func (p *parser) next() string {
	if p.eof() {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}
func (p *parser) skipStatement() {
	for !p.eof() {
		if p.next() == ";" {
			return
		}
	}
}
func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("def: expected %q, got %q (token %d)", want, got, p.pos)
	}
	return nil
}
func (p *parser) int64() (int64, error) {
	t := p.next()
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("def: bad integer %q (token %d)", t, p.pos)
	}
	if v > maxCoordDBU || v < -maxCoordDBU {
		return 0, fmt.Errorf("def: integer %q exceeds the %d DBU magnitude limit (token %d)", t, maxCoordDBU, p.pos)
	}
	return v, nil
}

// sectionCount parses and validates the "<n> ;" header of a COMPONENTS /
// PINS / NETS section. The declared count is an upper bound checked against
// the entries actually parsed, so a lying header cannot smuggle in an
// unbounded section.
func (p *parser) sectionCount(section string) (int64, error) {
	n, err := p.int64()
	if err != nil {
		return 0, fmt.Errorf("def: %s count: %w", section, err)
	}
	if n < 0 || n > maxSectionCount {
		return 0, fmt.Errorf("def: %s declares %d entries (allowed 0..%d)", section, n, maxSectionCount)
	}
	p.skipStatement()
	return n, nil
}

// Parse reads a DEF design against a technology and master library (as
// produced by lef.Parse).
func Parse(r io.Reader, t *tech.Technology, masters []*db.Master) (*db.Design, error) {
	p, err := newParser(r)
	if err != nil {
		return nil, err
	}
	d := db.NewDesign("", t)
	for _, m := range masters {
		if err := d.AddMaster(m); err != nil {
			return nil, err
		}
	}
	for !p.eof() {
		switch tok := p.next(); tok {
		case "VERSION", "DIVIDERCHAR", "BUSBITCHARS", "UNITS":
			p.skipStatement()
		case "DESIGN":
			d.Name = p.next()
			p.skipStatement()
		case "DIEAREA":
			vals, err := parseCoordPairs(p, 2)
			if err != nil {
				return nil, err
			}
			d.Die = geom.R(vals[0].X, vals[0].Y, vals[1].X, vals[1].Y)
		case "ROW":
			if err := parseRow(p, d); err != nil {
				return nil, err
			}
		case "TRACKS":
			if err := parseTracks(p, d); err != nil {
				return nil, err
			}
		case "COMPONENTS":
			if err := parseComponents(p, d); err != nil {
				return nil, err
			}
		case "PINS":
			if err := parsePins(p, d); err != nil {
				return nil, err
			}
		case "NETS":
			if err := parseNets(p, d); err != nil {
				return nil, err
			}
		case "END":
			if p.peek() == "DESIGN" {
				p.next()
				return d, nil
			}
		default:
			p.skipStatement()
		}
	}
	return d, nil
}

// parseCoordPairs reads n "( x y )" groups.
func parseCoordPairs(p *parser, n int) ([]geom.Point, error) {
	out := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.int64()
		if err != nil {
			return nil, err
		}
		y, err := p.int64()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		out = append(out, geom.Pt(x, y))
	}
	p.skipStatement()
	return out, nil
}

func parseRow(p *parser, d *db.Design) error {
	r := &db.Row{Name: p.next(), SiteW: d.Tech.SiteWidth, SiteH: d.Tech.SiteHeight}
	p.next() // site name
	x, err := p.int64()
	if err != nil {
		return err
	}
	y, err := p.int64()
	if err != nil {
		return err
	}
	r.Origin = geom.Pt(x, y)
	o, err := geom.ParseOrient(p.next())
	if err != nil {
		return err
	}
	r.Orient = o
	if err := p.expect("DO"); err != nil {
		return err
	}
	n, err := p.int64()
	if err != nil {
		return err
	}
	r.NumSites = int(n)
	if err := p.expect("BY"); err != nil {
		return err
	}
	if _, err := p.int64(); err != nil { // BY count (1)
		return err
	}
	if err := p.expect("STEP"); err != nil {
		return err
	}
	step, err := p.int64()
	if err != nil {
		return err
	}
	if step > 0 {
		r.SiteW = step
	}
	p.skipStatement()
	d.Rows = append(d.Rows, r)
	return nil
}

func parseTracks(p *parser, d *db.Design) error {
	axis := p.next()
	start, err := p.int64()
	if err != nil {
		return err
	}
	if err := p.expect("DO"); err != nil {
		return err
	}
	num, err := p.int64()
	if err != nil {
		return err
	}
	if err := p.expect("STEP"); err != nil {
		return err
	}
	step, err := p.int64()
	if err != nil {
		return err
	}
	if err := p.expect("LAYER"); err != nil {
		return err
	}
	layerName := p.next()
	p.skipStatement()
	l := d.Tech.MetalByName(layerName)
	if l == nil {
		return fmt.Errorf("def: TRACKS references unknown layer %q", layerName)
	}
	dir := tech.Horizontal // TRACKS Y: y coordinates => horizontal wires
	if axis == "X" {
		dir = tech.Vertical
	}
	d.Tracks = append(d.Tracks, db.TrackPattern{Layer: l.Num, WireDir: dir, Start: start, Num: int(num), Step: step})
	return nil
}

func parseComponents(p *parser, d *db.Design) error {
	declared, err := p.sectionCount("COMPONENTS")
	if err != nil {
		return err
	}
	var seen int64
	for !p.eof() {
		tok := p.next()
		if tok == "END" {
			return p.expect("COMPONENTS")
		}
		if tok != "-" {
			return fmt.Errorf("def: expected component entry, got %q", tok)
		}
		if seen++; seen > declared {
			return fmt.Errorf("def: COMPONENTS declares %d entries but has more", declared)
		}
		name := p.next()
		masterName := p.next()
		m := d.MasterByName(masterName)
		if m == nil {
			return fmt.Errorf("def: component %q references unknown master %q", name, masterName)
		}
		inst := &db.Instance{Name: name, Master: m}
		for !p.eof() {
			t := p.next()
			if t == ";" {
				break
			}
			if t == "+" && (p.peek() == "PLACED" || p.peek() == "FIXED") {
				p.next()
				if err := p.expect("("); err != nil {
					return err
				}
				x, err := p.int64()
				if err != nil {
					return err
				}
				y, err := p.int64()
				if err != nil {
					return err
				}
				if err := p.expect(")"); err != nil {
					return err
				}
				inst.Pos = geom.Pt(x, y)
				o, err := geom.ParseOrient(p.next())
				if err != nil {
					return err
				}
				inst.Orient = o
			}
		}
		if err := d.AddInstance(inst); err != nil {
			return err
		}
	}
	return fmt.Errorf("def: unterminated COMPONENTS")
}

func parsePins(p *parser, d *db.Design) error {
	declared, err := p.sectionCount("PINS")
	if err != nil {
		return err
	}
	var seen int64
	type pending struct {
		io  *db.IOPin
		net string
	}
	var pend []pending
	for !p.eof() {
		tok := p.next()
		if tok == "END" {
			if err := p.expect("PINS"); err != nil {
				return err
			}
			for _, pe := range pend {
				d.IOPins = append(d.IOPins, pe.io)
			}
			return nil
		}
		if tok != "-" {
			return fmt.Errorf("def: expected pin entry, got %q", tok)
		}
		if seen++; seen > declared {
			return fmt.Errorf("def: PINS declares %d entries but has more", declared)
		}
		io := &db.IOPin{Name: p.next()}
		netName := ""
		var rel geom.Rect
		var place geom.Point
		for !p.eof() {
			t := p.next()
			if t == ";" {
				break
			}
			if t != "+" {
				continue
			}
			switch p.next() {
			case "NET":
				netName = p.next()
			case "DIRECTION":
				switch p.next() {
				case "OUTPUT":
					io.Dir = db.DirOutput
				case "INOUT":
					io.Dir = db.DirInout
				}
			case "LAYER":
				l := d.Tech.MetalByName(p.next())
				if l == nil {
					return fmt.Errorf("def: pin %q on unknown layer", io.Name)
				}
				io.Shape.Layer = l.Num
				var vals [4]int64
				if err := p.expect("("); err != nil {
					return err
				}
				for i := 0; i < 2; i++ {
					v, err := p.int64()
					if err != nil {
						return err
					}
					vals[i] = v
				}
				if err := p.expect(")"); err != nil {
					return err
				}
				if err := p.expect("("); err != nil {
					return err
				}
				for i := 2; i < 4; i++ {
					v, err := p.int64()
					if err != nil {
						return err
					}
					vals[i] = v
				}
				if err := p.expect(")"); err != nil {
					return err
				}
				rel = geom.R(vals[0], vals[1], vals[2], vals[3])
			case "PLACED", "FIXED":
				if err := p.expect("("); err != nil {
					return err
				}
				x, err := p.int64()
				if err != nil {
					return err
				}
				y, err := p.int64()
				if err != nil {
					return err
				}
				if err := p.expect(")"); err != nil {
					return err
				}
				p.next() // orientation
				place = geom.Pt(x, y)
			}
		}
		io.Shape.Rect = rel.Shift(place)
		pend = append(pend, pending{io, netName})
	}
	return fmt.Errorf("def: unterminated PINS")
}

func parseNets(p *parser, d *db.Design) error {
	declared, err := p.sectionCount("NETS")
	if err != nil {
		return err
	}
	var seen int64
	ioByName := make(map[string]*db.IOPin, len(d.IOPins))
	for _, io := range d.IOPins {
		ioByName[io.Name] = io
	}
	for !p.eof() {
		tok := p.next()
		if tok == "END" {
			return p.expect("NETS")
		}
		if tok != "-" {
			return fmt.Errorf("def: expected net entry, got %q", tok)
		}
		if seen++; seen > declared {
			return fmt.Errorf("def: NETS declares %d entries but has more", declared)
		}
		n := &db.Net{Name: p.next()}
		for !p.eof() {
			t := p.next()
			if t == ";" {
				break
			}
			if t != "(" {
				continue
			}
			a := p.next()
			b := p.next()
			if err := p.expect(")"); err != nil {
				return err
			}
			if a == "PIN" {
				if io := ioByName[b]; io != nil {
					n.IOPins = append(n.IOPins, io)
				}
				continue
			}
			inst := d.InstByName(a)
			if inst == nil {
				return fmt.Errorf("def: net %q references unknown instance %q", n.Name, a)
			}
			pin := inst.Master.PinByName(b)
			if pin == nil {
				return fmt.Errorf("def: net %q references unknown pin %s/%s", n.Name, a, b)
			}
			n.Terms = append(n.Terms, db.Term{Inst: inst, Pin: pin})
		}
		d.Nets = append(d.Nets, n)
	}
	return fmt.Errorf("def: unterminated NETS")
}
