package def

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse drives the DEF reader with mutated inputs: it must never panic.
func FuzzParse(f *testing.F) {
	var b strings.Builder
	// Seed with a valid design (built via the package's own test helper).
	t := &testing.T{}
	d := buildDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err == nil {
		f.Add(buf.String())
	}
	_ = b
	f.Add("DESIGN x ;\nEND DESIGN\n")
	f.Add("COMPONENTS 0 ;\nEND COMPONENTS\n")
	f.Add("NETS 1 ;\n- n ;\nEND NETS\nEND DESIGN\n")
	// Hardening corpus: lying section headers and overflowing coordinates
	// the parser must reject without panicking.
	f.Add("COMPONENTS -3 ;\nEND COMPONENTS\n")
	f.Add("COMPONENTS 99999999999 ;\nEND COMPONENTS\n")
	f.Add("NETS 0 ;\n- n ;\nEND NETS\n")
	f.Add("DIEAREA ( 0 0 ) ( 9223372036854775806 10 ) ;\n")
	f.Add("PINS -1 ;\nEND PINS\n")
	f.Fuzz(func(t *testing.T, src string) {
		d := buildDesign(t)
		_, _ = Parse(strings.NewReader(src), d.Tech, nil)
		_, _, _ = ParseRouted(strings.NewReader(src), d.Tech, nil)
	})
}
