package def

import (
	"bytes"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func TestRoutedRoundTrip(t *testing.T) {
	d := buildDesign(t)
	routing := map[string]*Routing{
		"n1": {
			Segments: []Segment{
				{Layer: 2, From: geom.Pt(310, 490), To: geom.Pt(310, 1050)},
				{Layer: 3, From: geom.Pt(310, 1050), To: geom.Pt(730, 1050)},
			},
			Vias: []ViaRef{
				{Name: "VIA1_H", At: geom.Pt(310, 490)},
				{Name: "VIA2_V", At: geom.Pt(310, 1050)},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteRouted(&buf, d, routing); err != nil {
		t.Fatal(err)
	}
	got, gotRouting, err := ParseRouted(bytes.NewReader(buf.Bytes()), d.Tech, d.Masters)
	if err != nil {
		t.Fatalf("ParseRouted: %v\nDEF:\n%s", err, buf.String())
	}
	if len(got.Nets) != len(d.Nets) {
		t.Fatalf("nets %d != %d", len(got.Nets), len(d.Nets))
	}
	rt := gotRouting["n1"]
	if rt == nil {
		t.Fatal("routing for n1 lost")
	}
	if len(rt.Segments) != 2 || len(rt.Vias) != 2 {
		t.Fatalf("routing shape: %d segs %d vias", len(rt.Segments), len(rt.Vias))
	}
	for i, s := range rt.Segments {
		if s != routing["n1"].Segments[i] {
			t.Errorf("segment %d: %+v != %+v", i, s, routing["n1"].Segments[i])
		}
	}
	for i, v := range rt.Vias {
		if v != routing["n1"].Vias[i] {
			t.Errorf("via %d: %+v != %+v", i, v, routing["n1"].Vias[i])
		}
	}
	// The unrouted net must stay unrouted.
	if gotRouting["clk"] != nil {
		t.Error("clk must have no routing")
	}
	// Net terms survive alongside routing.
	if got.Nets[0].Name != "n1" || len(got.Nets[0].Terms) != 2 {
		t.Errorf("n1 terms lost: %+v", got.Nets[0])
	}
}

func TestWriteRoutedUnknownVia(t *testing.T) {
	d := buildDesign(t)
	err := WriteRouted(&bytes.Buffer{}, d, map[string]*Routing{
		"n1": {Vias: []ViaRef{{Name: "NOPE", At: geom.Pt(0, 0)}}},
	})
	if err == nil {
		t.Fatal("unknown via must error")
	}
	_ = tech.N45()
}
