package def

import (
	"fmt"
	"strings"
	"testing"
)

// TestParseRejectsHostileInput pins the input-hardening bounds: oversized
// tokens, overflowing coordinates and lying section headers must come back
// as errors, never as a half-parsed design.
func TestParseRejectsHostileInput(t *testing.T) {
	d := buildDesign(t)
	master := d.Instances[0].Master.Name
	cases := []struct {
		name, src, wantSub string
	}{
		{"giant token", "DESIGN " + strings.Repeat("x", maxTokenLen+1) + " ;\n", "byte limit"},
		{"overflow coordinate", "DIEAREA ( 0 0 ) ( 9223372036854775806 10 ) ;\n", "magnitude limit"},
		{"negative components count", "COMPONENTS -3 ;\nEND COMPONENTS\n", "COMPONENTS declares"},
		{"huge components count", fmt.Sprintf("COMPONENTS %d ;\nEND COMPONENTS\n", maxSectionCount+1), "COMPONENTS declares"},
		{"negative pins count", "PINS -1 ;\nEND PINS\n", "PINS declares"},
		{"negative nets count", "NETS -1 ;\nEND NETS\n", "NETS declares"},
		{"undercounted components", fmt.Sprintf("COMPONENTS 1 ;\n- a %s ;\n- b %s ;\nEND COMPONENTS\n", master, master), "declares 1 entries but has more"},
		{"undercounted nets", "NETS 0 ;\n- n ;\nEND NETS\n", "declares 0 entries but has more"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src), d.Tech, d.Masters)
			if err == nil {
				t.Fatalf("Parse accepted hostile input %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Parse error = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}
