package def

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/tech"
)

func buildDesign(t *testing.T) *db.Design {
	t.Helper()
	tt := tech.N45()
	d := db.NewDesign("unit_top", tt)
	d.Die = geom.R(0, 0, 190000, 140000)
	m := &db.Master{Name: "INVX1", Class: db.ClassCore, Size: geom.Pt(380, 1400),
		Pins: []*db.MPin{
			{Name: "A", Use: db.UseSignal, Shapes: []db.Shape{{Layer: 1, Rect: geom.R(70, 455, 210, 525)}}},
			{Name: "Y", Dir: db.DirOutput, Use: db.UseSignal, Shapes: []db.Shape{{Layer: 1, Rect: geom.R(240, 455, 310, 525)}}},
		}}
	if err := d.AddMaster(m); err != nil {
		t.Fatal(err)
	}
	d.Rows = []*db.Row{
		{Name: "ROW_0", Origin: geom.Pt(0, 0), NumSites: 100, SiteW: 190, SiteH: 1400, Orient: geom.OrientN},
		{Name: "ROW_1", Origin: geom.Pt(0, 1400), NumSites: 100, SiteW: 190, SiteH: 1400, Orient: geom.OrientFS},
	}
	d.Tracks = []db.TrackPattern{
		{Layer: 1, WireDir: tech.Horizontal, Start: 70, Num: 1000, Step: 140},
		{Layer: 2, WireDir: tech.Vertical, Start: 70, Num: 1357, Step: 140},
	}
	i0 := &db.Instance{Name: "u0", Master: m, Pos: geom.Pt(0, 0), Orient: geom.OrientN}
	i1 := &db.Instance{Name: "u1", Master: m, Pos: geom.Pt(380, 0), Orient: geom.OrientFN}
	for _, i := range []*db.Instance{i0, i1} {
		if err := d.AddInstance(i); err != nil {
			t.Fatal(err)
		}
	}
	io := &db.IOPin{Name: "clk", Dir: db.DirInput, Shape: db.Shape{Layer: 2, Rect: geom.R(9965, 0, 10035, 140)}}
	d.IOPins = []*db.IOPin{io}
	d.Nets = []*db.Net{
		{Name: "n1", Terms: []db.Term{{Inst: i0, Pin: m.PinByName("Y")}, {Inst: i1, Pin: m.PinByName("A")}}},
		{Name: "clk", Terms: []db.Term{{Inst: i0, Pin: m.PinByName("A")}}, IOPins: []*db.IOPin{io}},
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := buildDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()), d.Tech, d.Masters)
	if err != nil {
		t.Fatalf("Parse: %v\nDEF:\n%s", err, buf.String())
	}
	if got.Name != d.Name {
		t.Errorf("name %q != %q", got.Name, d.Name)
	}
	if got.Die != d.Die {
		t.Errorf("die %v != %v", got.Die, d.Die)
	}
	if len(got.Rows) != len(d.Rows) {
		t.Fatalf("rows %d != %d", len(got.Rows), len(d.Rows))
	}
	for i, r := range got.Rows {
		o := d.Rows[i]
		if r.Name != o.Name || r.Origin != o.Origin || r.NumSites != o.NumSites ||
			r.SiteW != o.SiteW || r.Orient != o.Orient {
			t.Errorf("row %d: %+v != %+v", i, r, o)
		}
	}
	if len(got.Tracks) != len(d.Tracks) {
		t.Fatalf("tracks %d != %d", len(got.Tracks), len(d.Tracks))
	}
	for i, tp := range got.Tracks {
		if tp != d.Tracks[i] {
			t.Errorf("track %d: %+v != %+v", i, tp, d.Tracks[i])
		}
	}
	if len(got.Instances) != 2 {
		t.Fatalf("instances %d", len(got.Instances))
	}
	u1 := got.InstByName("u1")
	if u1 == nil || u1.Pos != geom.Pt(380, 0) || u1.Orient != geom.OrientFN || u1.Master.Name != "INVX1" {
		t.Errorf("u1 = %+v", u1)
	}
	if len(got.IOPins) != 1 {
		t.Fatalf("io pins %d", len(got.IOPins))
	}
	if got.IOPins[0].Shape != d.IOPins[0].Shape {
		t.Errorf("io shape %+v != %+v", got.IOPins[0].Shape, d.IOPins[0].Shape)
	}
	if len(got.Nets) != 2 {
		t.Fatalf("nets %d", len(got.Nets))
	}
	n1 := got.Nets[0]
	if n1.Name != "n1" || len(n1.Terms) != 2 || n1.Terms[0].Inst.Name != "u0" || n1.Terms[0].Pin.Name != "Y" {
		t.Errorf("n1 = %+v", n1)
	}
	clk := got.Nets[1]
	if len(clk.IOPins) != 1 || clk.IOPins[0].Name != "clk" {
		t.Errorf("clk net = %+v", clk)
	}
	// Unique instances must survive the round trip identically.
	if a, b := len(d.UniqueInstances()), len(got.UniqueInstances()); a != b {
		t.Errorf("unique instances %d != %d after round trip", b, a)
	}
}

func TestParseErrors(t *testing.T) {
	tt := tech.N45()
	cases := []string{
		"DESIGN x ;\nCOMPONENTS 1 ;\n- u1 NOPE + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n",
		"DESIGN x ;\nTRACKS Y 70 DO 10 STEP 140 LAYER NOPE ;\nEND DESIGN\n",
		"DESIGN x ;\nNETS 1 ;\n- n ( ghost A ) ;\nEND NETS\nEND DESIGN\n",
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src), tt, nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseIgnoresUnknownSections(t *testing.T) {
	tt := tech.N45()
	src := "VERSION 5.8 ;\nDESIGN y ;\nGCELLGRID X 0 DO 10 STEP 3000 ;\nEND DESIGN\n"
	d, err := Parse(strings.NewReader(src), tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "y" {
		t.Errorf("name = %q", d.Name)
	}
}
