package difftest

import (
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/suite"
)

// apKey identifies one access point in design coordinates.
type apKey struct {
	pos   geom.Point
	layer int
}

// termAPs collects, per (instance name, pin name), the design-coordinate set
// of all generated access points, mapped through f.
func termAPs(d *db.Design, res *pao.Result, f func(apKey) apKey) map[[2]string]map[apKey]bool {
	out := make(map[[2]string]map[apKey]bool)
	for _, inst := range d.Instances {
		ua := res.UAFor(inst)
		if ua == nil {
			continue
		}
		for _, pa := range ua.Pins {
			set := make(map[apKey]bool, len(pa.APs))
			for _, ap := range pa.APs {
				set[f(apKey{pos: ua.TranslateTo(inst, ap.Pos), layer: ap.Layer})] = true
			}
			out[[2]string{inst.Name, pa.Pin.Name}] = set
		}
	}
	return out
}

func sameAPSets(t *testing.T, what string, a, b map[[2]string]map[apKey]bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d terms vs %d", what, len(a), len(b))
	}
	bad := 0
	for k, sa := range a {
		sb, ok := b[k]
		if !ok {
			t.Fatalf("%s: term %v missing", what, k)
		}
		if len(sa) != len(sb) {
			t.Errorf("%s: %v: %d APs vs %d", what, k, len(sa), len(sb))
			bad++
		} else {
			for ap := range sa {
				if !sb[ap] {
					t.Errorf("%s: %v: AP %v/%d unmatched", what, k, ap.pos, ap.layer)
					bad++
					break
				}
			}
		}
		if bad > 5 {
			t.Fatalf("%s: too many mismatches, stopping", what)
		}
	}
}

// TestTranslationInvariance: shifting the whole design (die, tracks, rows,
// instances, IO pins) by a fixed delta must shift every access point by
// exactly that delta and leave every count and pattern selection unchanged.
func TestTranslationInvariance(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	base, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := suite.Generate(spec) // deterministic: an identical twin
	if err != nil {
		t.Fatal(err)
	}
	const dx, dy = 12340, 7770
	Translate(moved, dx, dy)

	r1 := pao.NewAnalyzer(base, pao.DefaultConfig()).Run()
	r2 := pao.NewAnalyzer(moved, pao.DefaultConfig()).Run()

	if r1.Stats.Counts() != r2.Stats.Counts() {
		t.Fatalf("stats differ under translation:\nbase  %+v\nmoved %+v", r1.Stats.Counts(), r2.Stats.Counts())
	}
	for id, sel := range r1.Selected {
		if r2.Selected[id] != sel {
			t.Fatalf("instance %d: selected pattern %d vs %d", id, sel, r2.Selected[id])
		}
	}
	a1 := termAPs(base, r1, func(k apKey) apKey {
		k.pos = geom.Pt(k.pos.X+dx, k.pos.Y+dy)
		return k
	})
	a2 := termAPs(moved, r2, func(k apKey) apKey { return k })
	sameAPSets(t, "translate", a1, a2)
}

// TestMirrorOrientationEquivalence: reflecting the design about a vertical
// axis swaps every instance to its mirrored orientation (N<->FN, S<->FS, ...).
// The analysis is geometric, so the class structure and every per-pin access
// point set must mirror exactly; pattern selection may tie-break differently
// and is deliberately out of scope here.
func TestMirrorOrientationEquivalence(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	base, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	mir, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := MirrorX(mir)

	r1 := pao.NewAnalyzer(base, pao.DefaultConfig()).Run()
	r2 := pao.NewAnalyzer(mir, pao.DefaultConfig()).Run()

	s1, s2 := r1.Stats.Counts(), r2.Stats.Counts()
	if s1.NumUnique != s2.NumUnique || s1.TotalAPs != s2.TotalAPs ||
		s1.OffTrackAPs != s2.OffTrackAPs || s1.TotalPins != s2.TotalPins {
		t.Fatalf("aggregate stats differ under mirror:\nbase   %+v\nmirror %+v", s1, s2)
	}
	a1 := termAPs(base, r1, func(k apKey) apKey {
		k.pos = geom.Pt(c-k.pos.X, k.pos.Y)
		return k
	})
	a2 := termAPs(mir, r2, func(k apKey) apKey { return k })
	sameAPSets(t, "mirror", a1, a2)
}

// TestWorkersEquivalence: the Steps 1-2 fan-out is across independent
// unique-instance classes, so any worker count must give byte-identical
// results — counts, pattern selection and per-term access points.
func TestWorkersEquivalence(t *testing.T) {
	spec := suite.Testcases[3].Scale(0.004).WithSeed(7)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	seq := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	cfg := pao.DefaultConfig()
	cfg.Workers = 8
	par := pao.NewAnalyzer(d, cfg).Run()

	if seq.Stats.Counts() != par.Stats.Counts() {
		t.Fatalf("stats differ across workers:\nseq %+v\npar %+v", seq.Stats.Counts(), par.Stats.Counts())
	}
	if len(seq.Selected) != len(par.Selected) {
		t.Fatalf("selected %d vs %d instances", len(seq.Selected), len(par.Selected))
	}
	for id, sel := range seq.Selected {
		if par.Selected[id] != sel {
			t.Fatalf("instance %d: selected pattern %d vs %d", id, sel, par.Selected[id])
		}
	}
	id := func(k apKey) apKey { return k }
	sameAPSets(t, "workers", termAPs(d, seq, id), termAPs(d, par, id))
}

// TestRebindMatchesFullRun: after moving instances to new placement phases,
// the incremental Rebind path must leave every net terminal with the same
// access point a from-scratch analysis of the mutated design produces.
func TestRebindMatchesFullRun(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	res := a.Run()

	// Shift a few spread-out instances by half an M1 pitch: a track phase the
	// design has never seen, forcing fresh class analysis on rebind.
	var moved []*db.Instance
	for i := 1; i <= 3; i++ {
		inst := d.Instances[i*len(d.Instances)/4]
		inst.Pos = geom.Pt(inst.Pos.X+70, inst.Pos.Y)
		moved = append(moved, inst)
	}
	eng := a.GlobalEngine()
	a.Rebind(res, eng, moved)
	a.CountFailedPins(res, eng)

	fresh := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	if res.Stats.FailedPins != fresh.Stats.FailedPins {
		t.Errorf("failed pins: rebind %d vs fresh %d", res.Stats.FailedPins, fresh.Stats.FailedPins)
	}
	for _, net := range d.Nets {
		for _, term := range net.Terms {
			ra := res.AccessPointFor(term.Inst, term.Pin)
			fa := fresh.AccessPointFor(term.Inst, term.Pin)
			switch {
			case ra == nil && fa == nil:
			case ra == nil || fa == nil:
				t.Fatalf("%s/%s: nil mismatch (rebind %v, fresh %v)", term.Inst.Name, term.Pin.Name, ra, fa)
			case ra.Pos != fa.Pos || ra.Layer != fa.Layer:
				t.Fatalf("%s/%s: rebind %v vs fresh %v", term.Inst.Name, term.Pin.Name, ra, fa)
			}
		}
	}
}
