// Package difftest cross-validates the production DRC engine and the pin
// access pipeline against independent references:
//
//   - differential replay: seeded randomized via-drop and spacing queries run
//     through both internal/drc (spatial index, query contexts) and
//     internal/oracle (naive pairwise reference); any verdict divergence fails
//     with the testcase, seed and the exact query for a byte-for-byte repro;
//   - metamorphic invariants: whole-design transformations with a known effect
//     on the answer — translation, mirroring (orientation equivalence),
//     Workers=1 vs Workers=N, and incremental Rebind vs a fresh Run — asserted
//     end-to-end through pao.Analyzer;
//   - golden regression: per-testcase result summaries pinned under
//     testdata/golden (go test ./internal/difftest -update regenerates).
//
// The package itself holds only the engine-mirroring and design-transformation
// helpers; the three layers live in the test files.
package difftest

import (
	"sort"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/tech"
)

// Mirror builds a reference checker holding exactly the engine's live shapes,
// so both implementations answer queries over the same design state.
func Mirror(eng *drc.Engine) *oracle.Checker {
	c := oracle.New(eng.Tech)
	eng.ForEachObj(func(o *drc.Obj) {
		if o.CutBelow > 0 {
			c.AddCut(o.CutBelow, o.Rect, o.Net)
		} else {
			c.AddMetal(o.MetalLayer, o.Rect, o.Net)
		}
	})
	return c
}

// DRCKeys returns the sorted, deduplicated key set of an engine violation
// list — the canonical form compared against oracle.Keys.
func DRCKeys(vs []drc.Violation) []string {
	seen := make(map[string]bool, len(vs))
	var out []string
	for _, v := range vs {
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// SameKeys reports whether two canonical key sets are equal.
func SameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Translate shifts every placed coordinate of the design — die, track starts,
// rows, instances and IO pins — by (dx, dy). Pin access analysis is invariant
// under this map: every access point must shift by exactly (dx, dy).
func Translate(d *db.Design, dx, dy int64) {
	d.Die = geom.R(d.Die.XL+dx, d.Die.YL+dy, d.Die.XH+dx, d.Die.YH+dy)
	for i := range d.Tracks {
		tp := &d.Tracks[i]
		// Vertical-wire patterns are x coordinates, horizontal-wire patterns
		// are y coordinates.
		if isVerticalPattern(*tp) {
			tp.Start += dx
		} else {
			tp.Start += dy
		}
	}
	for _, r := range d.Rows {
		r.Origin = geom.Pt(r.Origin.X+dx, r.Origin.Y+dy)
	}
	for _, inst := range d.Instances {
		inst.Pos = geom.Pt(inst.Pos.X+dx, inst.Pos.Y+dy)
	}
	for _, io := range d.IOPins {
		r := io.Shape.Rect
		io.Shape.Rect = geom.R(r.XL+dx, r.YL+dy, r.XH+dx, r.YH+dy)
	}
}

// mirrorXOrient maps each orientation to its image under a mirror about a
// vertical axis (x -> C-x). Derived from geom.Transform.ApplyPt: the rotations
// swap with their y-axis-mirrored counterparts.
var mirrorXOrient = map[geom.Orient]geom.Orient{
	geom.OrientN: geom.OrientFN, geom.OrientFN: geom.OrientN,
	geom.OrientS: geom.OrientFS, geom.OrientFS: geom.OrientS,
	geom.OrientW: geom.OrientFW, geom.OrientFW: geom.OrientW,
	geom.OrientE: geom.OrientFE, geom.OrientFE: geom.OrientE,
}

// MirrorX reflects the whole design about the vertical axis x = C with
// C = Die.XL + Die.XH, so the die maps onto itself. Instances swap to their
// mirrored orientations (N<->FN, S<->FS, W<->FW, E<->FE); vertical track
// patterns and IO pins reflect. Analysis results must mirror exactly: an
// access point at (x, y) corresponds to one at (C-x, y) on the same layer.
// Returns C.
func MirrorX(d *db.Design) int64 {
	c := d.Die.XL + d.Die.XH
	for _, inst := range d.Instances {
		w := inst.Transform().PlacedSize().X
		inst.Pos = geom.Pt(c-inst.Pos.X-w, inst.Pos.Y)
		inst.Orient = mirrorXOrient[inst.Orient]
	}
	for _, r := range d.Rows {
		r.Origin = geom.Pt(c-r.Origin.X-int64(r.NumSites)*r.SiteW, r.Origin.Y)
	}
	for i := range d.Tracks {
		tp := &d.Tracks[i]
		if isVerticalPattern(*tp) {
			tp.Start = c - tp.Last()
		}
	}
	for _, io := range d.IOPins {
		r := io.Shape.Rect
		io.Shape.Rect = geom.R(c-r.XH, r.YL, c-r.XL, r.YH)
	}
	return c
}

// isVerticalPattern reports whether the pattern's coordinates are x values
// (tracks carrying vertical wires).
func isVerticalPattern(tp db.TrackPattern) bool {
	return tp.WireDir == tech.Vertical
}
