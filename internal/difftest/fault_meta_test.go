package difftest

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/drc"
	"repro/internal/faultinject"
	"repro/internal/pao"
	"repro/internal/suite"
)

// TestFaultCancelledRerunEqualsClean: cancelling a run mid-Step-1/2 and then
// re-running fresh on the same design must equal a never-cancelled run —
// cancellation may drop work but never corrupt the shared inputs (design,
// net map) a later run depends on.
func TestFaultCancelledRerunEqualsClean(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	clean := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()

	// Cancel from inside the pipeline after the fifth class starts: a
	// deterministic mid-Step-1/2 cut, not a timer race.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	n := 0
	a.FaultHook = func(site, detail string) {
		if site == pao.SiteAnalyzeUnique {
			if n++; n == 5 {
				cancel()
			}
		}
	}
	partial, err := a.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !partial.Health.Cancelled() {
		t.Fatal("health must report cancellation")
	}
	if partial.Stats.NumUnique >= clean.Stats.NumUnique {
		t.Fatalf("cancelled run analyzed all %d classes — not a mid-run cut", partial.Stats.NumUnique)
	}

	rerun := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	if !rerun.Health.OK() {
		t.Fatalf("fresh rerun unhealthy: %v", rerun.Health)
	}
	if clean.Stats.Counts() != rerun.Stats.Counts() {
		t.Fatalf("stats differ after cancel+rerun:\nclean %+v\nrerun %+v",
			clean.Stats.Counts(), rerun.Stats.Counts())
	}
	for id, sel := range clean.Selected {
		if rerun.Selected[id] != sel {
			t.Fatalf("instance %d: selected pattern %d vs %d", id, sel, rerun.Selected[id])
		}
	}
	id := func(k apKey) apKey { return k }
	sameAPSets(t, "cancel+rerun", termAPs(d, clean, id), termAPs(d, rerun, id))
}

// TestFaultWorkersEquivalence: Workers=1 and Workers=N must still agree when
// faults are injected — panics quarantining two classes and spurious DRC
// violations poisoning a third. Detail-scoped injection makes the fault set
// independent of scheduling, so the degraded results must be byte-identical.
func TestFaultWorkersEquivalence(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	probe := pao.NewAnalyzer(d, pao.DefaultConfig()).Run()
	if len(probe.Unique) < 4 {
		t.Fatalf("testcase too small: %d classes", len(probe.Unique))
	}
	panicSigs := []string{probe.Unique[0].UI.Signature(), probe.Unique[1].UI.Signature()}
	spuriousSig := probe.Unique[2].UI.Signature()

	run := func(workers int) *pao.Result {
		in := faultinject.New()
		for _, sig := range panicSigs {
			in.Add(&faultinject.Fault{
				Site: pao.SiteAnalyzeUnique, Detail: sig, Kind: faultinject.Panic,
			})
		}
		in.Add(&faultinject.Fault{
			Site: drc.SiteCheckVia, Detail: spuriousSig, Kind: faultinject.Spurious,
		})
		cfg := pao.DefaultConfig()
		cfg.Workers = workers
		a := pao.NewAnalyzer(d, cfg)
		a.FaultHook = in.SiteHook()
		a.DRCFaultHook = in.DRCHook()
		res, err := a.RunContext(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(8)

	if fmt.Sprintf("%v", seq.Health.FailedClasses()) != fmt.Sprintf("%v", par.Health.FailedClasses()) {
		t.Fatalf("failed classes differ: %v vs %v",
			seq.Health.FailedClasses(), par.Health.FailedClasses())
	}
	if seq.Stats.Counts() != par.Stats.Counts() {
		t.Fatalf("stats differ across workers under faults:\nseq %+v\npar %+v",
			seq.Stats.Counts(), par.Stats.Counts())
	}
	for id, sel := range seq.Selected {
		if par.Selected[id] != sel {
			t.Fatalf("instance %d: selected pattern %d vs %d", id, sel, par.Selected[id])
		}
	}
	id := func(k apKey) apKey { return k }
	sameAPSets(t, "workers-under-faults", termAPs(d, seq, id), termAPs(d, par, id))

	// The spurious-DRC class really was poisoned (its APs all rejected),
	// and the panicked classes carry no results at all.
	for _, res := range []*pao.Result{seq, par} {
		sawSpurious := false
		for _, ua := range res.Unique {
			if ua.UI.Signature() == spuriousSig {
				sawSpurious = true
				if ua.TotalAPs() != 0 {
					t.Errorf("spurious-DRC class kept %d APs", ua.TotalAPs())
				}
			}
			for _, sig := range panicSigs {
				if ua.UI.Signature() == sig {
					t.Errorf("panicked class %s still has results", sig)
				}
			}
		}
		if !sawSpurious {
			t.Error("spurious-DRC class missing from results")
		}
	}
}
