package difftest

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pao"
	"repro/internal/suite"
)

// TestDistributedSingleProcessEquivalence is the distributed differential
// invariant: for each suite testcase, with the memoization caches on and off,
// a two-worker coordinator run must produce a snapshot byte-identical to the
// single-process run. Distribution is transport, never semantics — shard
// partitioning, merge order, hedging and relocation may not move a byte.
//
// The first spec additionally re-runs under network fault injection (dropped
// dispatches, corrupted responses) to pin that the retry and corrupt-rejection
// machinery preserve the invariant rather than merely usually succeeding.
func TestDistributedSingleProcessEquivalence(t *testing.T) {
	specs := []suite.Spec{
		suite.Testcases[0].Scale(0.01).WithSeed(7),
		suite.Testcases[3].Scale(0.004).WithSeed(7),
		suite.AES14.Scale(0.01).WithSeed(7),
	}
	for si, spec := range specs {
		spec, si := spec, si
		for _, noCache := range []bool{false, true} {
			noCache := noCache
			t.Run(fmt.Sprintf("%s/nocache=%v", spec.Name, noCache), func(t *testing.T) {
				d, err := suite.Generate(spec)
				if err != nil {
					t.Fatal(err)
				}
				cfg := pao.DefaultConfig()
				cfg.NoCache = noCache
				single := pao.NewAnalyzer(d, cfg).Run()
				single.Stats = single.Stats.Counts()
				var want bytes.Buffer
				if err := pao.EncodeSnapshot(&want, d, cfg, single); err != nil {
					t.Fatal(err)
				}

				// Each worker regenerates the design from the spec — the
				// shared-volume model: same inputs, independent memory.
				servers := make([]string, 2)
				for i := range servers {
					wd, err := suite.Generate(spec)
					if err != nil {
						t.Fatal(err)
					}
					srv := httptest.NewServer(dist.NewWorker(wd, cfg).Handler())
					t.Cleanup(srv.Close)
					servers[i] = srv.URL
				}
				c := &dist.Coordinator{
					Design: d, Cfg: cfg, Workers: servers,
					Obs:            obs.NewObserver("difftest"),
					ShardClasses:   4,
					ShardClusters:  8,
					Retry:          cliutil.RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: 0.5},
					RequestTimeout: 30 * time.Second,
					HeartbeatEvery: 50 * time.Millisecond,
				}
				if si == 0 {
					inj := faultinject.New().
						Add(&faultinject.Fault{Site: dist.SiteDispatch, Call: 2, Kind: faultinject.ConnDrop}).
						Add(&faultinject.Fault{Site: dist.SiteResponse, Call: 3, Kind: faultinject.Corrupt})
					c.NetHook = inj.NetHook()
				}
				res, err := c.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !res.Health.OK() {
					t.Errorf("distributed health must stay clean: %s", res.Health)
				}
				res.Stats = res.Stats.Counts()
				var got bytes.Buffer
				if err := pao.EncodeSnapshot(&got, d, cfg, res); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("distributed snapshot diverges from single-process: %d vs %d bytes",
						got.Len(), want.Len())
				}
				m := c.Obs.Reg().Snapshot()
				if m.Counters["dist.shards.ok"] == 0 {
					t.Error("no shards went through the dispatch path; the comparison is vacuous")
				}
			})
		}
	}
}
