package difftest

import (
	"bytes"
	"testing"

	"repro/internal/pao"
	"repro/internal/suite"
)

// TestCachedUncachedEquivalence is the differential guard for the analyzer's
// memoization layers (the shared via-drop verdict cache and the via-pair
// cache): with caches on and off, a full run over each suite testcase must
// produce byte-identical result snapshots. The caches are pure memoization —
// any divergence here means a cache key is under-discriminating.
//
// The snapshot is encoded with the same Config both times (Config is part of
// the snapshot fingerprint, and NoCache intentionally does not change
// results).
func TestCachedUncachedEquivalence(t *testing.T) {
	specs := []suite.Spec{
		suite.Testcases[0].Scale(0.01).WithSeed(7),
		suite.Testcases[3].Scale(0.004).WithSeed(7),
		suite.AES14.Scale(0.01).WithSeed(7),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d, err := suite.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg := pao.DefaultConfig()
			ac := pao.NewAnalyzer(d, cfg)
			cached := ac.Run()

			off := cfg
			off.NoCache = true
			uncached := pao.NewAnalyzer(d, off).Run()

			if cs := ac.CacheStats(); cs.ViaHits+cs.ViaMisses == 0 || cs.PairHits+cs.PairMisses == 0 {
				t.Fatalf("caches were not exercised (%+v); the comparison is vacuous", cs)
			}
			if cached.Stats.Counts() != uncached.Stats.Counts() {
				t.Fatalf("stats diverge:\ncached   %+v\nuncached %+v",
					cached.Stats.Counts(), uncached.Stats.Counts())
			}
			// Wall-clock step timings are part of the snapshot but are never
			// deterministic; zero them so the byte compare covers exactly the
			// result content (classes, APs, patterns, selections, health).
			cached.Stats = cached.Stats.Counts()
			uncached.Stats = uncached.Stats.Counts()
			var bc, bu bytes.Buffer
			if err := pao.EncodeSnapshot(&bc, d, cfg, cached); err != nil {
				t.Fatal(err)
			}
			if err := pao.EncodeSnapshot(&bu, d, cfg, uncached); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bc.Bytes(), bu.Bytes()) {
				t.Fatalf("snapshots diverge: cached %d bytes, uncached %d bytes",
					bc.Len(), bu.Len())
			}
		})
	}
}
