package difftest

// Differential and metamorphic gates for the incremental ECO engine
// (pao.ECOSession). The ground truth is always a fresh full analysis of a
// deterministic twin design mutated by the same script through the shared
// design-level applier (pao.ApplyOpsToDesign) — so an ECO'd design and its
// twin are structurally identical, instance IDs included, and the results can
// be compared byte-for-byte as snapshots.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/pao"
	"repro/internal/suite"
)

// snapshotBytes encodes a result with timings zeroed, so comparisons cover
// exactly the result content. The config is passed explicitly because it is
// part of the snapshot fingerprint: cache-on and cache-off paths must encode
// with the same config for their bytes to be comparable.
func snapshotBytes(t *testing.T, d *db.Design, cfg pao.Config, res *pao.Result) []byte {
	t.Helper()
	flat := *res
	flat.Stats = res.Stats.Counts()
	var buf bytes.Buffer
	if err := pao.EncodeSnapshot(&buf, d, cfg, &flat); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// genECOScript produces a deterministic pseudo-random ECO script against the
// design's current state: moves near other instances' rows (so clusters
// split, merge and extend), swaps, inserts of existing masters at fresh
// names, and a bounded number of deletes. The generator only reads d.
func genECOScript(d *db.Design, rng *rand.Rand, n, round int) []pao.ECOOp {
	var alive []string
	for _, inst := range d.Instances {
		alive = append(alive, inst.Name)
	}
	pick := func() string { return alive[rng.Intn(len(alive))] }
	jitter := []int64{-560, -140, -70, 0, 70, 140, 560}
	target := func() geom.Point {
		anchor := d.InstByName(pick()).Pos
		return geom.Pt(anchor.X+jitter[rng.Intn(len(jitter))], anchor.Y)
	}
	var ops []pao.ECOOp
	deletes := 0
	for len(ops) < n {
		switch k := rng.Intn(10); {
		case k < 4: // move
			ops = append(ops, pao.ECOOp{Kind: pao.ECOMove, Inst: pick(), To: target()})
		case k < 6: // swap
			a, b := pick(), pick()
			if a == b {
				continue
			}
			ops = append(ops, pao.ECOOp{Kind: pao.ECOSwap, Inst: a, Other: b})
		case k < 8: // insert
			name := fmt.Sprintf("eco_r%d_%d", round, len(ops))
			master := d.InstByName(pick()).Master.Name
			ops = append(ops, pao.ECOOp{Kind: pao.ECOInsert, Inst: name, Master: master, To: target(), Orient: geom.OrientN})
			alive = append(alive, name)
		default: // delete
			if deletes >= n/3 || len(alive) < 4 {
				continue
			}
			victim := pick()
			ops = append(ops, pao.ECOOp{Kind: pao.ECODelete, Inst: victim})
			for i, nm := range alive {
				if nm == victim {
					alive = append(alive[:i], alive[i+1:]...)
					break
				}
			}
			deletes++
		}
	}
	return ops
}

// TestECOFuzzDifferential is the ECO equivalence gate: for each testcase,
// chained pseudo-random ECO scripts applied through one resident session must
// produce a result byte-identical to a fresh full analysis of the mutated
// twin — with the via cache on and with it off.
func TestECOFuzzDifferential(t *testing.T) {
	specs := []suite.Spec{
		suite.Testcases[0].Scale(0.01).WithSeed(7),
		suite.Testcases[3].Scale(0.004).WithSeed(7),
		suite.AES14.Scale(0.01).WithSeed(7),
	}
	const rounds, opsPerRound = 2, 6
	for si, spec := range specs {
		spec := spec
		seed := int64(1000 + si)
		t.Run(spec.Name, func(t *testing.T) {
			d, err := suite.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := suite.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			dOff, err := suite.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg := pao.DefaultConfig()
			off := cfg
			off.NoCache = true

			ac := pao.NewAnalyzer(d, cfg)
			sess := pao.NewECOSession(ac, ac.Run())
			acOff := pao.NewAnalyzer(dOff, off)
			sessOff := pao.NewECOSession(acOff, acOff.Run())

			rng := rand.New(rand.NewSource(seed))
			for round := 0; round < rounds; round++ {
				ops := genECOScript(d, rng, opsPerRound, round)
				res, _, err := sess.Apply(ops)
				if err != nil {
					t.Fatalf("round %d: eco apply: %v", round, err)
				}
				resOff, _, err := sessOff.Apply(ops)
				if err != nil {
					t.Fatalf("round %d: cache-off eco apply: %v", round, err)
				}
				if err := pao.ApplyOpsToDesign(twin, ops); err != nil {
					t.Fatalf("round %d: twin apply: %v", round, err)
				}
				if h1, h2 := pao.DesignHash(d), pao.DesignHash(twin); h1 != h2 {
					t.Fatalf("round %d: twin diverged from ECO'd design: %s vs %s", round, h1, h2)
				}
				fresh := pao.NewAnalyzer(twin, cfg).Run()

				be := snapshotBytes(t, d, cfg, res)
				bf := snapshotBytes(t, twin, cfg, fresh)
				if !bytes.Equal(be, bf) {
					t.Fatalf("round %d: ECO snapshot (%d bytes) != fresh snapshot (%d bytes)",
						round, len(be), len(bf))
				}
				// Cache-off ECO must agree too: encode with the cache-on
				// config so the fingerprints line up.
				bo := snapshotBytes(t, dOff, cfg, resOff)
				if !bytes.Equal(be, bo) {
					t.Fatalf("round %d: cache-on ECO snapshot (%d bytes) != cache-off (%d bytes)",
						round, len(be), len(bo))
				}
			}
			if cs := ac.CacheStats(); cs.ViaHits+cs.ViaMisses == 0 {
				t.Fatalf("via cache was not exercised (%+v); the cache-on/off comparison is vacuous", cs)
			}
		})
	}
}

// TestECOSiteMoveMatchesRebind: an ECO move by an integral placement-site
// offset within the same row keeps the instance's track signature, which is
// exactly the case the lightweight Rebind seam handles. Both repair paths
// must expose identical per-term access-point sets and failed-pin counts.
func TestECOSiteMoveMatchesRebind(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	dECO, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dReb, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Three spread instances, each moved by one M2 pitch (an integral number
	// of placement sites) within its own row.
	idx := []int{0, len(dECO.Instances) / 2, len(dECO.Instances) - 1}
	const dx = 140
	var ops []pao.ECOOp
	for _, i := range idx {
		inst := dECO.Instances[i]
		ops = append(ops, pao.ECOOp{Kind: pao.ECOMove, Inst: inst.Name, To: geom.Pt(inst.Pos.X+dx, inst.Pos.Y)})
	}

	aECO := pao.NewAnalyzer(dECO, pao.DefaultConfig())
	sess := pao.NewECOSession(aECO, aECO.Run())
	resECO, rep, err := sess.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range idx {
		inst := dReb.Instances[i]
		ua := resECO.ByInstance[dECO.Instances[i].ID]
		if ua == nil || ua.UI.Signature() != dECO.InstanceSignature(dECO.Instances[i]) {
			t.Fatalf("site move changed the class binding of %s; the premise is broken", inst.Name)
		}
	}
	if rep.NewClasses != 0 {
		t.Fatalf("site moves created %d classes, want 0", rep.NewClasses)
	}

	aReb := pao.NewAnalyzer(dReb, pao.DefaultConfig())
	resReb := aReb.Run()
	var moved []*db.Instance
	for _, i := range idx {
		inst := dReb.Instances[i]
		inst.Pos = geom.Pt(inst.Pos.X+dx, inst.Pos.Y)
		moved = append(moved, inst)
	}
	eng := aReb.GlobalEngine()
	aReb.Rebind(resReb, eng, moved)
	aReb.CountFailedPins(resReb, eng)

	if g, w := resECO.Stats.FailedPins, resReb.Stats.FailedPins; g != w {
		t.Errorf("failed pins: eco %d, rebind %d", g, w)
	}
	e := termAPs(dECO, resECO, func(k apKey) apKey { return k })
	r := termAPs(dReb, resReb, func(k apKey) apKey { return k })
	sameAPSets(t, "eco-vs-rebind", e, r)
}

// TestECORevertRestoresResult: applying a script of moves and swaps and then
// its inverse must restore the result to the original bytes — and must have
// left the original Result object untouched (the merge is copy-on-write).
func TestECORevertRestoresResult(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pao.DefaultConfig()
	a := pao.NewAnalyzer(d, cfg)
	res0 := a.Run()
	want := snapshotBytes(t, d, cfg, res0)

	n := len(d.Instances)
	i0, i1, i2 := d.Instances[0], d.Instances[n/3], d.Instances[2*n/3]
	p0 := i0.Pos
	ops := []pao.ECOOp{
		{Kind: pao.ECOMove, Inst: i0.Name, To: geom.Pt(p0.X+700, p0.Y)},
		{Kind: pao.ECOSwap, Inst: i1.Name, Other: i2.Name},
	}
	inverse := []pao.ECOOp{
		{Kind: pao.ECOSwap, Inst: i1.Name, Other: i2.Name},
		{Kind: pao.ECOMove, Inst: i0.Name, To: p0},
	}

	sess := pao.NewECOSession(a, res0)
	if _, _, err := sess.Apply(ops); err != nil {
		t.Fatal(err)
	}
	res2, _, err := sess.Apply(inverse)
	if err != nil {
		t.Fatal(err)
	}

	if got := snapshotBytes(t, d, cfg, res2); !bytes.Equal(got, want) {
		t.Fatalf("apply+revert snapshot (%d bytes) != original (%d bytes)", len(got), len(want))
	}
	// The original Result must encode to the same bytes as before the ECOs:
	// the merge never mutates the result it started from.
	if again := snapshotBytes(t, d, cfg, res0); !bytes.Equal(again, want) {
		t.Fatal("the ECO session mutated the pre-ECO Result in place")
	}
}

// TestECOOrderIndependenceDisjointOps: two ops whose dirty halos are disjoint
// must commute — applying them in either order yields byte-identical results.
func TestECOOrderIndependenceDisjointOps(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	d1, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The instances at the extreme corners of the placement are far beyond
	// any DRC halo of each other.
	lo, hi := d1.Instances[0], d1.Instances[0]
	for _, inst := range d1.Instances {
		if inst.Pos.X+inst.Pos.Y < lo.Pos.X+lo.Pos.Y {
			lo = inst
		}
		if inst.Pos.X+inst.Pos.Y > hi.Pos.X+hi.Pos.Y {
			hi = inst
		}
	}
	if lo == hi {
		t.Fatal("degenerate placement")
	}
	opLo := pao.ECOOp{Kind: pao.ECOMove, Inst: lo.Name, To: geom.Pt(lo.Pos.X+140, lo.Pos.Y)}
	opHi := pao.ECOOp{Kind: pao.ECOMove, Inst: hi.Name, To: geom.Pt(hi.Pos.X+140, hi.Pos.Y)}

	cfg := pao.DefaultConfig()
	a1 := pao.NewAnalyzer(d1, cfg)
	s1 := pao.NewECOSession(a1, a1.Run())
	r1, _, err := s1.Apply([]pao.ECOOp{opLo, opHi})
	if err != nil {
		t.Fatal(err)
	}
	a2 := pao.NewAnalyzer(d2, cfg)
	s2 := pao.NewECOSession(a2, a2.Run())
	r2, _, err := s2.Apply([]pao.ECOOp{opHi, opLo})
	if err != nil {
		t.Fatal(err)
	}

	b1 := snapshotBytes(t, d1, cfg, r1)
	b2 := snapshotBytes(t, d2, cfg, r2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("disjoint ops do not commute: %d bytes vs %d bytes", len(b1), len(b2))
	}
}
