package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/oracle"
	"repro/internal/pao"
	"repro/internal/suite"
)

// diffCase pairs a suite testcase with the replay seed. The seed flows into
// suite generation (byte-for-byte reproducible designs) and into the query
// stream, so a reported divergence replays exactly.
type diffCase struct {
	spec  suite.Spec
	seed  int64
	iters int
}

func diffCases() []diffCase {
	return []diffCase{
		{spec: suite.Testcases[0].Scale(0.01), seed: 101, iters: 1200},
		{spec: suite.Testcases[3].Scale(0.004), seed: 104, iters: 1200},
		{spec: suite.AES14.Scale(0.01), seed: 114, iters: 1200},
	}
}

// TestDifferentialReplay drives seeded randomized via-drop, metal-spacing,
// end-of-line and cut-spacing queries through both the production engine and
// the naive oracle over the same design state, and fails on the first verdict
// divergence with everything needed to reproduce it.
func TestDifferentialReplay(t *testing.T) {
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.spec.Name, func(t *testing.T) {
			t.Parallel()
			replayCase(t, tc)
		})
	}
}

// replayCase replays tc.iters rounds of randomized queries (four comparisons
// per round); each round compares the two implementations' verdicts.
func replayCase(t *testing.T, tc diffCase) {
	spec := tc.spec.WithSeed(tc.seed)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	eng := a.GlobalEngine()
	orc := Mirror(eng)
	if got, want := orc.NumShapes(), eng.NumObjs(); got != want {
		t.Fatalf("mirror holds %d shapes, engine %d", got, want)
	}

	rng := rand.New(rand.NewSource(tc.seed))
	queries, dirty := 0, 0
	diverge := func(kind string, i int, detail string, engKeys, orcKeys []string) {
		t.Fatalf("divergence: testcase=%s seed=%d query=%d kind=%s %s\nengine: %v\noracle: %v",
			spec.Name, tc.seed, i, kind, detail, engKeys, orcKeys)
	}
	for i := 0; i < tc.iters; i++ {
		inst := d.Instances[rng.Intn(len(d.Instances))]
		pins := inst.Master.SignalPins()
		if len(pins) == 0 {
			continue
		}
		pin := pins[rng.Intn(len(pins))]
		shapes := inst.PinShapes(pin)
		s := shapes[rng.Intn(len(shapes))]
		layer := s.Layer
		l := d.Tech.Metal(layer)
		net := queryNet(rng, a, inst, pin)

		// A query point in or near the chosen pin shape, biased to land where
		// real shapes make the verdict nontrivial.
		halo := 3 * l.Pitch
		p := geom.Pt(
			s.Rect.XL-halo+rng.Int63n(s.Rect.XH-s.Rect.XL+2*halo+1),
			s.Rect.YL-halo+rng.Int63n(s.Rect.YH-s.Rect.YL+2*halo+1),
		)

		// Via drop with the pin's same-layer rects as the min-step union.
		if vias := d.Tech.ViasAbove(layer); len(vias) > 0 {
			v := vias[rng.Intn(len(vias))]
			var rects []geom.Rect
			for _, ps := range shapes {
				if ps.Layer == layer {
					rects = append(rects, ps.Rect)
				}
			}
			ek := DRCKeys(eng.CheckVia(v, p, net, rects))
			ok := oracle.Keys(orc.CheckVia(v, p, net, rects))
			queries++
			dirty += min1(len(ek))
			if !SameKeys(ek, ok) {
				diverge("via", i, v.Name+" at "+p.String(), ek, ok)
			}
		}

		// Metal rect: a wire-like stub around p.
		w := l.Width
		r := geom.R(p.X, p.Y, p.X+w+rng.Int63n(3*w), p.Y+w)
		if rng.Intn(2) == 0 {
			r = geom.R(p.X, p.Y, p.X+w, p.Y+w+rng.Int63n(3*w))
		}
		ek := DRCKeys(eng.CheckMetalRect(layer, r, net))
		ok := oracle.Keys(orc.CheckMetalRect(layer, r, net))
		queries++
		dirty += min1(len(ek))
		if !SameKeys(ek, ok) {
			diverge("metal", i, r.String(), ek, ok)
		}

		// End-of-line windows of the same stub.
		ek = DRCKeys(eng.CheckEOLRect(layer, r, net))
		ok = oracle.Keys(orc.CheckEOLRect(layer, r, net))
		queries++
		dirty += min1(len(ek))
		if !SameKeys(ek, ok) {
			diverge("eol", i, r.String(), ek, ok)
		}

		// Cut rect on the cut layer above the pin's metal.
		if cl := d.Tech.Cut(layer); cl != nil {
			cw := cl.Width
			cr := geom.R(p.X, p.Y, p.X+cw, p.Y+cw)
			ek = DRCKeys(eng.CheckCutRect(layer, cr, net))
			ok = oracle.Keys(orc.CheckCutRect(layer, cr, net))
			queries++
			dirty += min1(len(ek))
			if !SameKeys(ek, ok) {
				diverge("cut", i, cr.String(), ek, ok)
			}
		}
	}
	t.Logf("%s: %d queries (%d with violations), no divergence", spec.Name, queries, dirty)
	if queries < 3400 {
		t.Fatalf("only %d queries replayed, want >= 3400 per testcase", queries)
	}
	// A replay where (almost) every verdict is "clean" proves nothing; the
	// halo bias must keep a healthy share of queries in conflict.
	if dirty < queries/20 {
		t.Fatalf("only %d of %d queries produced violations — replay is near-vacuous", dirty, queries)
	}
}

// min1 clamps a count to {0, 1}: used to tally queries with any violation.
func min1(n int) int {
	if n > 0 {
		return 1
	}
	return 0
}

// queryNet picks the query's net identity: usually the pin's real net, else a
// blockage or a random other net, so same-net exemption paths are exercised.
func queryNet(rng *rand.Rand, a *pao.Analyzer, inst *db.Instance, pin *db.MPin) int {
	switch rng.Intn(4) {
	case 0:
		return drc.NoNet
	case 1:
		return 1 + rng.Intn(64)
	default:
		return a.NetOf(inst, pin)
	}
}

// TestDifferentialCheckAll compares the full-design pairwise sweep: the
// engine's windowed CheckAll (and its parallel variant) against the oracle's
// O(n^2) scan must agree on the complete violation set of vias dropped at
// every selected access point.
func TestDifferentialCheckAll(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(42)
	d, err := suite.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	res := a.Run()
	eng := a.GlobalEngine()
	// Commit every selected access point's primary via into the engine so the
	// full sweep sees post-access-routing state, not just placement shapes.
	added := 0
	for _, net := range d.Nets {
		for _, term := range net.Terms {
			ap := res.AccessPointFor(term.Inst, term.Pin)
			if ap == nil || ap.Primary() == nil {
				continue
			}
			v := ap.Primary()
			n := a.NetOf(term.Inst, term.Pin)
			eng.AddMetal(v.CutBelow, v.BotRect(ap.Pos), n, drc.KindViaEnc, "")
			eng.AddMetal(v.CutBelow+1, v.TopRect(ap.Pos), n, drc.KindViaEnc, "")
			for _, c := range v.CutRects(ap.Pos) {
				eng.AddCut(v.CutBelow, c, n, "")
			}
			added++
			// Every fifth via gets a deliberately conflicting twin half a
			// pitch away on a foreign net, so the sweep compares real
			// violations, not just an all-clean design.
			if added%5 == 0 {
				q := geom.Pt(ap.Pos.X+d.Tech.Metal(v.CutBelow).Pitch/2, ap.Pos.Y)
				eng.AddMetal(v.CutBelow, v.BotRect(q), n+100000, drc.KindViaEnc, "")
				for _, c := range v.CutRects(q) {
					eng.AddCut(v.CutBelow, c, n+100000, "")
				}
			}
		}
	}
	if added == 0 {
		t.Fatal("no access vias committed")
	}
	orc := Mirror(eng)
	ek := DRCKeys(eng.CheckAll())
	ok := oracle.Keys(orc.CheckAll())
	if !SameKeys(ek, ok) {
		t.Fatalf("CheckAll divergence (%d vias committed)\nengine: %v\noracle: %v", added, ek, ok)
	}
	pk := DRCKeys(eng.CheckAllParallel(4))
	if !SameKeys(pk, ek) {
		t.Fatalf("CheckAllParallel diverges from CheckAll\nparallel: %v\nserial: %v", pk, ek)
	}
	if len(ek) == 0 {
		t.Fatal("full sweep found no violations despite injected conflicts — comparison is vacuous")
	}
	t.Logf("CheckAll agrees: %d violations over %d objects", len(ek), eng.NumObjs())
}
