package difftest

import (
	"fmt"

	"repro/internal/pao"
	"repro/internal/suite"
)

// Summary is the deterministic per-testcase result snapshot pinned under
// testdata/golden. Durations are deliberately absent: every field must be
// byte-identical run over run, so a perf PR that changes any behaviour shows
// up as a golden diff.
type Summary struct {
	Testcase  string `json:"testcase"`
	Seed      int64  `json:"seed"`
	Node      int    `json:"node_nm"`
	Instances int    `json:"instances"`
	Nets      int    `json:"nets"`

	NumUnique       int `json:"unique_instances"`
	TotalAPs        int `json:"total_aps"`
	OffTrackAPs     int `json:"offtrack_aps"`
	DirtyAPs        int `json:"dirty_aps"`
	TotalPins       int `json:"total_pins"`
	FailedPins      int `json:"failed_pins"`
	PatternsBuilt   int `json:"patterns_built"`
	PatternsDropped int `json:"patterns_dropped"`
	SelectedInsts   int `json:"selected_instances"`

	// APTypes counts access points per coordinate type, keyed
	// "x:<type>" and "y:<type>" (JSON emits map keys sorted).
	APTypes map[string]int `json:"ap_types"`
}

// Summarize generates the spec's design, runs the full analysis and distills
// the deterministic summary.
func Summarize(spec suite.Spec) (Summary, error) {
	d, err := suite.Generate(spec)
	if err != nil {
		return Summary{}, err
	}
	a := pao.NewAnalyzer(d, pao.DefaultConfig())
	res := a.Run()
	res.Stats.DirtyAPs = a.CountDirtyAPs(res)

	s := res.Stats
	out := Summary{
		Testcase:  spec.Name,
		Seed:      spec.Seed,
		Node:      spec.Node,
		Instances: len(d.Instances),
		Nets:      len(d.Nets),

		NumUnique:       s.NumUnique,
		TotalAPs:        s.TotalAPs,
		OffTrackAPs:     s.OffTrackAPs,
		DirtyAPs:        s.DirtyAPs,
		TotalPins:       s.TotalPins,
		FailedPins:      s.FailedPins,
		PatternsBuilt:   s.PatternsBuilt,
		PatternsDropped: s.PatternsDropped,
		SelectedInsts:   len(res.Selected),
		APTypes:         make(map[string]int),
	}
	for _, ua := range res.Unique {
		for _, pa := range ua.Pins {
			for _, ap := range pa.APs {
				out.APTypes[fmt.Sprintf("x:%s", ap.TypeX)]++
				out.APTypes[fmt.Sprintf("y:%s", ap.TypeY)]++
			}
		}
	}
	return out, nil
}
