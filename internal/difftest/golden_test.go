package difftest

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/suite"
)

// update regenerates the golden snapshots:
//
//	go test ./internal/difftest -update
var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

func goldenCases() []suite.Spec {
	return []suite.Spec{
		suite.Testcases[0].Scale(0.01).WithSeed(7),
		suite.Testcases[3].Scale(0.004).WithSeed(7),
		suite.AES14.Scale(0.01).WithSeed(7),
		suite.MultiHeight.Scale(0.02).WithSeed(7),
	}
}

// TestGolden pins the full-pipeline result summary of each testcase against
// its checked-in snapshot. Any behavioural change — AP counts per coordinate
// type, dirty APs, failed pins, pattern counts — fails here with a JSON diff;
// intentional changes re-pin with -update.
func TestGolden(t *testing.T) {
	for _, spec := range goldenCases() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			got, err := Summarize(spec)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, '\n')
			path := filepath.Join("testdata", "golden", spec.Name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/difftest -update` to create snapshots)", err)
			}
			if !bytes.Equal(data, want) {
				t.Errorf("golden mismatch for %s\n--- got ---\n%s--- want ---\n%s(re-pin intentional changes with -update)",
					spec.Name, data, want)
			}
		})
	}
}

// TestGoldenDeterminism guards the premise of the golden layer: two
// independent Summarize calls on the same spec must agree exactly.
func TestGoldenDeterminism(t *testing.T) {
	spec := suite.Testcases[0].Scale(0.01).WithSeed(7)
	a, err := Summarize(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarize(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("summaries differ across runs:\n%s\n%s", ja, jb)
	}
}
