// Package stdcell generates the synthetic standard-cell libraries the
// benchmark suite uses in place of the proprietary ISPD-2018 libraries.
//
// All geometry is expressed in two technology-relative units so one spec set
// scales across the 45/32/14 nm nodes:
//
//   - hp (half pitch) for x coordinates — by construction hp equals the M1
//     wire width and the M1 min spacing in every synthetic node;
//   - rows for y coordinates — row r's track runs at pitch/2 + r*pitch; cells
//     are 10 tracks tall.
//
// Pin bars come in two styles (both horizontal, matching the M1 preferred
// direction):
//
//   - centered: one wire-width bar centered on its row track — on-track via
//     access works when the enclosure aligns (Fig. 3(c) geometry);
//   - between: a pitch-tall bar spanning from track r to track r+1 — no
//     on-track y is enclosure-clean, so half-track and enclosure-boundary
//     coordinates must kick in.
//
// The specs deliberately place pins of different nets on adjacent rows with
// overlapping x ranges (via-to-via top-enclosure conflicts for the Step-2 DP)
// and near cell edges (end-of-line conflicts across cell boundaries for BCA
// and Step 3).
package stdcell

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/tech"
)

// barStyle selects the pin bar geometry.
type barStyle uint8

const (
	centered barStyle = iota // one-width bar centered on the row track
	between                  // pitch-tall bar spanning rows r..r+1
)

// pinSpec is one pin of a cell spec, in abstract units.
type pinSpec struct {
	name  string
	dir   db.PinDir
	row   int // row of the bar (between style spans row..row+1)
	x0    int // in hp units
	x1    int
	style barStyle
}

// cellSpec describes one base cell.
type cellSpec struct {
	name  string
	sites int
	pins  []pinSpec
	obs   bool // add an obstruction bar on row 8
}

// baseSpecs is the cell zoo. Sites are one M1 pitch (2 hp) wide in every
// synthetic node, so x ranges must satisfy x1 <= 2*sites - 1 (one hp margin
// at each cell edge).
var baseSpecs = []cellSpec{
	{name: "FILL1", sites: 1},
	{name: "FILL2", sites: 2},
	{name: "INVX1", sites: 5, pins: []pinSpec{
		{"A", db.DirInput, 3, 1, 4, centered},
		{"Y", db.DirOutput, 6, 4, 7, centered},
	}},
	{name: "INVX2", sites: 5, pins: []pinSpec{
		{"A", db.DirInput, 3, 1, 7, between},
		{"Y", db.DirOutput, 6, 4, 7, centered},
	}, obs: true},
	{name: "BUFX1", sites: 5, pins: []pinSpec{
		{"A", db.DirInput, 2, 1, 4, centered},
		{"Y", db.DirOutput, 7, 4, 7, centered},
	}},
	{name: "NAND2X1", sites: 6, pins: []pinSpec{
		{"A", db.DirInput, 3, 1, 4, centered},
		{"B", db.DirInput, 4, 3, 6, centered},
		{"Y", db.DirOutput, 6, 6, 9, centered},
	}},
	{name: "NOR2X1", sites: 6, pins: []pinSpec{
		{"A", db.DirInput, 3, 1, 7, between},
		{"B", db.DirInput, 5, 1, 4, centered},
		{"Y", db.DirOutput, 6, 6, 9, centered},
	}, obs: true},
	{name: "AND2X1", sites: 6, pins: []pinSpec{
		{"A", db.DirInput, 2, 1, 4, centered},
		{"B", db.DirInput, 3, 3, 6, centered},
		{"Y", db.DirOutput, 5, 6, 9, centered},
	}},
	{name: "OR2X1", sites: 6, pins: []pinSpec{
		{"A", db.DirInput, 5, 1, 4, centered},
		{"B", db.DirInput, 4, 3, 6, centered},
		{"Y", db.DirOutput, 2, 6, 9, centered},
	}},
	{name: "AOI21X1", sites: 7, pins: []pinSpec{
		{"A", db.DirInput, 2, 1, 4, centered},
		{"B", db.DirInput, 3, 2, 5, centered},
		{"C1", db.DirInput, 5, 5, 8, centered},
		{"Y", db.DirOutput, 6, 9, 12, centered},
	}, obs: true},
	{name: "OAI21X1", sites: 7, pins: []pinSpec{
		{"A", db.DirInput, 6, 1, 4, centered},
		{"B", db.DirInput, 5, 2, 5, centered},
		{"C1", db.DirInput, 3, 5, 8, centered},
		{"Y", db.DirOutput, 2, 9, 12, centered},
	}},
	{name: "MUX2X1", sites: 9, pins: []pinSpec{
		{"A", db.DirInput, 2, 1, 4, centered},
		{"B", db.DirInput, 3, 1, 4, centered},
		{"S", db.DirInput, 5, 9, 12, centered},
		{"Y", db.DirOutput, 6, 12, 15, centered},
	}},
	{name: "DFFX1", sites: 11, pins: []pinSpec{
		{"D", db.DirInput, 2, 1, 4, centered},
		{"CK", db.DirInput, 3, 2, 5, centered},
		{"QN", db.DirOutput, 5, 16, 19, centered},
		{"Q", db.DirOutput, 6, 16, 19, centered},
	}, obs: true},
}

// Options tunes library generation.
type Options struct {
	// Variants emits this many geometric variants per base cell (suffixes
	// _V1.._Vn shift pin rows and x positions deterministically), growing the
	// master count the way a real library's drive-strength spread does.
	// 0 means base cells only.
	Variants int
	// MisalignY shifts every pin bar up by pitch/4, destroying on-track via
	// alignment — the commercial-14nm-library situation of Fig. 9 where
	// off-track access must be enabled automatically.
	MisalignY bool
	// LShapes adds cells with multi-rectangle (L/T-shaped) pins, exercising
	// the maximal-rectangle decomposition path of access point generation.
	// Off by default so the benchmark suite stays stable.
	LShapes bool
}

// Library is a generated cell library.
type Library struct {
	Tech    *tech.Technology
	Masters []*db.Master // all masters, fills included, deterministic order
	Core    []*db.Master // signal cells (placeable, with pins)
	Fills   []*db.Master
}

// Generate builds the library for a technology. It errors when a generated
// cell fails its own DRC sanity check (a technology/generator mismatch the
// caller chose, e.g. a misalignment that pushes fingers off the cell).
func Generate(t *tech.Technology, opts Options) (*Library, error) {
	lib := &Library{Tech: t}
	for _, spec := range baseSpecs {
		for v := 0; v <= opts.Variants; v++ {
			m := buildCell(t, spec, v, opts.MisalignY)
			if m == nil {
				continue
			}
			lib.Masters = append(lib.Masters, m)
			if len(m.SignalPins()) > 0 {
				lib.Core = append(lib.Core, m)
			} else {
				lib.Fills = append(lib.Fills, m)
			}
			if len(spec.pins) == 0 {
				break // fills need no variants
			}
		}
	}
	if opts.LShapes {
		m, err := lShapeCell(t, opts.MisalignY)
		if err != nil {
			return nil, err
		}
		lib.Masters = append(lib.Masters, m)
		lib.Core = append(lib.Core, m)
	}
	return lib, nil
}

// MustGenerate is Generate panicking on error, for tests and generators
// whose option sets are known-good.
func MustGenerate(t *tech.Technology, opts Options) *Library {
	lib, err := Generate(t, opts)
	if err != nil {
		panic(err)
	}
	return lib
}

// lShapeCell builds a cell whose output pin is an L (a horizontal bar on one
// row plus a vertical connector up to the next row) — the polygon-pin case
// Section II-C's shape-center discussion covers via maximal rectangles.
func lShapeCell(t *tech.Technology, misalign bool) (*db.Master, error) {
	hp := t.Metal(1).Width
	pitch := t.Metal(1).Pitch
	w := t.Metal(1).Width
	const sites = 7
	width := int64(sites) * t.SiteWidth
	m := &db.Master{Name: "LPINX1", Class: db.ClassCore, Size: geom.Pt(width, t.SiteHeight)}
	track := func(r int) int64 { return pitch/2 + int64(r)*pitch }
	yOff := int64(0)
	if misalign {
		yOff = pitch / 4
	}
	t3, t5 := track(3)+yOff, track(5)+yOff
	m.Pins = append(m.Pins,
		&db.MPin{Name: "A", Dir: db.DirInput, Use: db.UseSignal,
			Shapes: []db.Shape{{Layer: 1, Rect: geom.R(hp, t3-w/2, 4*hp, t3+w/2)}}},
		// Y: horizontal bar on row 5 plus a vertical drop to row 3 height —
		// two overlapping maximal rectangles.
		&db.MPin{Name: "Y", Dir: db.DirOutput, Use: db.UseSignal,
			Shapes: []db.Shape{
				{Layer: 1, Rect: geom.R(7*hp, t5-w/2, 12*hp, t5+w/2)},
				{Layer: 1, Rect: geom.R(11*hp, t3-w/2, 12*hp, t5+w/2)},
			}},
		&db.MPin{Name: "VSS", Dir: db.DirInout, Use: db.UseGround,
			Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, 0, width, w)}}},
		&db.MPin{Name: "VDD", Dir: db.DirInout, Use: db.UsePower,
			Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, t.SiteHeight-w, width, t.SiteHeight)}}},
	)
	if !CellClean(t, m) {
		return nil, fmt.Errorf("stdcell: lShapeCell produced illegal geometry for node %s", t.Name)
	}
	return m, nil
}

// buildCell instantiates a spec at variant v. Variants shift pin rows by
// (v mod 3) - 1 within [2,7] and x positions by v mod 2 hp where the cell
// width allows, producing distinct but equally legal geometry.
func buildCell(t *tech.Technology, spec cellSpec, v int, misalign bool) *db.Master {
	hp := t.Metal(1).Width // == half pitch in every synthetic node
	pitch := t.Metal(1).Pitch
	w := t.Metal(1).Width
	name := spec.name
	if v > 0 {
		name = fmt.Sprintf("%s_V%d", spec.name, v)
	}
	width := int64(spec.sites) * t.SiteWidth
	m := &db.Master{Name: name, Class: db.ClassCore, Size: geom.Pt(width, t.SiteHeight)}

	maxHp := width/hp - 1 // rightmost legal bar end, in hp
	rowShift, xShift := 0, int64(0)
	if v > 0 {
		rowShift = v%3 - 1
		xShift = int64(v % 2)
	}

	track := func(r int) int64 { return pitch/2 + int64(r)*pitch }
	yOff := int64(0)
	if misalign {
		yOff = pitch / 4
	}

	for _, ps := range spec.pins {
		row := ps.row + rowShift
		if row < 2 {
			row = 2
		}
		maxRow := 7
		if ps.style == between {
			maxRow = 6
		}
		if row > maxRow {
			row = maxRow
		}
		x0 := int64(ps.x0)*hp + xShift*hp
		x1 := int64(ps.x1)*hp + xShift*hp
		if x1 > maxHp*hp {
			d := x1 - maxHp*hp
			x0 -= d
			x1 -= d
		}
		var r geom.Rect
		tc := track(row) + yOff
		if ps.style == centered {
			r = geom.R(x0, tc-w/2, x1, tc+w/2)
		} else {
			r = geom.R(x0, tc, x1, tc+pitch)
		}
		m.Pins = append(m.Pins, &db.MPin{
			Name: ps.name, Dir: ps.dir, Use: db.UseSignal,
			Shapes: []db.Shape{{Layer: 1, Rect: r}},
		})
	}
	// Power rails: full-width M1 bars at the cell bottom (VSS) and top (VDD).
	m.Pins = append(m.Pins,
		&db.MPin{Name: "VSS", Dir: db.DirInout, Use: db.UseGround,
			Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, 0, width, w)}}},
		&db.MPin{Name: "VDD", Dir: db.DirInout, Use: db.UsePower,
			Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, t.SiteHeight-w, width, t.SiteHeight)}}},
	)
	if spec.obs && maxHp >= 4 {
		tc := track(8)
		m.Obs = append(m.Obs, db.Shape{Layer: 1,
			Rect: geom.R(hp, tc-w/2, (maxHp-1)*hp, tc+w/2)})
	}
	if !CellClean(t, m) {
		return nil // variant shifting produced illegal geometry; skip it
	}
	return m
}

// CellClean verifies a master's fixed geometry is legal in isolation: no
// shorts, spacing or end-of-line violations between shapes of different pins
// (or pins vs obstructions). Power/ground shapes are blockage-class and
// exempt against each other.
func CellClean(t *tech.Technology, m *db.Master) bool {
	eng := drc.NewEngine(t)
	net := 1
	type owned struct {
		layer int
		r     geom.Rect
		net   int
	}
	var shapes []owned
	for _, p := range m.Pins {
		n := drc.NoNet
		if p.Use == db.UseSignal || p.Use == db.UseClock {
			n = net
			net++
		}
		for _, s := range p.Shapes {
			shapes = append(shapes, owned{s.Layer, s.Rect, n})
		}
	}
	for _, s := range m.Obs {
		shapes = append(shapes, owned{s.Layer, s.Rect, drc.NoNet})
	}
	for _, s := range shapes {
		eng.AddMetal(s.layer, s.r, s.net, drc.KindPin, "")
	}
	for _, s := range shapes {
		// Self-comparison is excluded by the same-net exemption (each signal
		// pin has its own net id and NoNet never conflicts with NoNet).
		if len(eng.CheckMetalRect(s.layer, s.r, s.net)) > 0 {
			return false
		}
		if len(eng.CheckEOLRect(s.layer, s.r, s.net)) > 0 {
			return false
		}
	}
	return true
}

// MultiHeight builds a double-height core cell — the paper's future-work
// item (i). The cell spans two placement rows (twenty tracks) with power
// rails at the bottom, middle and top (VSS-VDD-VSS, the standard
// double-height rail sharing) and pins in both halves. Pin access analysis
// needs no special casing: unique-instance extraction, Steps 1-3 and the
// failed-pin accounting are all height-agnostic. It errors when the cell
// fails its own DRC sanity check; MustMultiHeight panics instead.
func MultiHeight(t *tech.Technology, name string, sites int) (*db.Master, error) {
	hp := t.Metal(1).Width
	pitch := t.Metal(1).Pitch
	w := t.Metal(1).Width
	width := int64(sites) * t.SiteWidth
	h := 2 * t.SiteHeight
	track := func(r int) int64 { return pitch/2 + int64(r)*pitch }
	maxHp := width/hp - 1

	m := &db.Master{Name: name, Class: db.ClassCore, Size: geom.Pt(width, h)}
	bar := func(row int, x0, x1 int64) geom.Rect {
		tc := track(row)
		return geom.R(x0*hp, tc-w/2, x1*hp, tc+w/2)
	}
	m.Pins = append(m.Pins,
		&db.MPin{Name: "D", Dir: db.DirInput, Use: db.UseSignal,
			Shapes: []db.Shape{{Layer: 1, Rect: bar(3, 1, 4)}}},
		&db.MPin{Name: "CK", Dir: db.DirInput, Use: db.UseSignal,
			Shapes: []db.Shape{{Layer: 1, Rect: bar(6, 2, 5)}}},
		&db.MPin{Name: "Q", Dir: db.DirOutput, Use: db.UseSignal,
			Shapes: []db.Shape{{Layer: 1, Rect: bar(13, maxHp-4, maxHp-1)}}},
		&db.MPin{Name: "QN", Dir: db.DirOutput, Use: db.UseSignal,
			Shapes: []db.Shape{{Layer: 1, Rect: bar(16, maxHp-4, maxHp-1)}}},
		&db.MPin{Name: "VSS", Dir: db.DirInout, Use: db.UseGround,
			Shapes: []db.Shape{
				{Layer: 1, Rect: geom.R(0, 0, width, w)},
				{Layer: 1, Rect: geom.R(0, h-w, width, h)},
			}},
		&db.MPin{Name: "VDD", Dir: db.DirInout, Use: db.UsePower,
			Shapes: []db.Shape{{Layer: 1, Rect: geom.R(0, t.SiteHeight-w/2, width, t.SiteHeight+w/2)}}},
	)
	if !CellClean(t, m) {
		return nil, fmt.Errorf("stdcell: MultiHeight cell %q produced illegal geometry for node %s", name, t.Name)
	}
	return m, nil
}

// MustMultiHeight is MultiHeight panicking on error, for tests with
// known-good parameters.
func MustMultiHeight(t *tech.Technology, name string, sites int) *db.Master {
	m, err := MultiHeight(t, name, sites)
	if err != nil {
		panic(err)
	}
	return m
}

// Macro builds a BLOCK-class master (a memory-like hard macro) of the given
// size in sites/rows, with nPins horizontal M3 pin bars along its left edge
// and an M1/M2 obstruction covering the block area.
func Macro(t *tech.Technology, name string, sites, rows, nPins int) *db.Master {
	w := int64(sites) * t.SiteWidth
	h := int64(rows) * t.SiteHeight
	m := &db.Master{Name: name, Class: db.ClassBlock, Size: geom.Pt(w, h)}
	m3 := t.Metal(3)
	pitch3 := m3.Pitch
	// Pin bars are as tall as the V34 cut so an up-via enclosure can sit
	// flush on the bar (a minimum-width M3 bar could never take a clean via
	// to the wider M4), and they center on M3 tracks (macros place on row
	// grid, so the local track phase is pitch3/2).
	barH := t.Cut(3).Width
	for i := 0; i < nPins; i++ {
		tc := pitch3/2 + int64(2*i+4)*pitch3
		if tc+barH/2+pitch3 > h {
			break
		}
		m.Pins = append(m.Pins, &db.MPin{
			Name: fmt.Sprintf("D%d", i), Dir: db.DirInput, Use: db.UseSignal,
			Shapes: []db.Shape{{Layer: 3, Rect: geom.R(pitch3, tc-barH/2, 6*pitch3, tc+barH/2)}},
		})
	}
	inner := geom.R(8*pitch3, 0, w, h)
	m.Obs = append(m.Obs,
		db.Shape{Layer: 1, Rect: inner},
		db.Shape{Layer: 2, Rect: inner},
	)
	return m
}
