package stdcell

import (
	"testing"

	"repro/internal/db"
	"repro/internal/tech"
)

func TestGenerateBase(t *testing.T) {
	for _, nm := range []int{45, 32, 14} {
		tt, _ := tech.ByNode(nm)
		lib := MustGenerate(tt, Options{})
		if len(lib.Masters) < 10 {
			t.Fatalf("node %d: only %d masters", nm, len(lib.Masters))
		}
		if len(lib.Fills) != 2 {
			t.Errorf("node %d: fills = %d, want 2", nm, len(lib.Fills))
		}
		for _, m := range lib.Masters {
			if m.Size.X%tt.SiteWidth != 0 {
				t.Errorf("node %d: %s width %d not a site multiple", nm, m.Name, m.Size.X)
			}
			if m.Size.Y != tt.SiteHeight {
				t.Errorf("node %d: %s height %d != site height", nm, m.Name, m.Size.Y)
			}
			if !CellClean(tt, m) {
				t.Errorf("node %d: %s has base DRC violations", nm, m.Name)
			}
			// Power rails present and full width.
			vdd, vss := m.PinByName("VDD"), m.PinByName("VSS")
			if len(m.SignalPins()) > 0 && (vdd == nil || vss == nil) {
				t.Errorf("node %d: %s missing rails", nm, m.Name)
				continue
			}
			if vdd != nil && vdd.Shapes[0].Rect.Width() != m.Size.X {
				t.Errorf("node %d: %s VDD rail not full width", nm, m.Name)
			}
			// All signal shapes stay one hp inside the cell and off the rails.
			hp := tt.Metal(1).Width
			for _, p := range m.SignalPins() {
				for _, s := range p.Shapes {
					if s.Rect.XL < hp || s.Rect.XH > m.Size.X-hp {
						t.Errorf("%s/%s shape %v leaves x margin", m.Name, p.Name, s.Rect)
					}
					if s.Rect.YL < 2*hp || s.Rect.YH > m.Size.Y-2*hp {
						t.Errorf("%s/%s shape %v too close to rails", m.Name, p.Name, s.Rect)
					}
				}
			}
		}
	}
}

func TestGenerateVariants(t *testing.T) {
	tt := tech.N45()
	lib := MustGenerate(tt, Options{Variants: 8})
	base := MustGenerate(tt, Options{})
	if len(lib.Core) <= len(base.Core) {
		t.Fatalf("variants did not grow the library: %d vs %d", len(lib.Core), len(base.Core))
	}
	names := map[string]bool{}
	for _, m := range lib.Masters {
		if names[m.Name] {
			t.Errorf("duplicate master name %s", m.Name)
		}
		names[m.Name] = true
		if !CellClean(tt, m) {
			t.Errorf("variant %s is dirty", m.Name)
		}
	}
	if !names["INVX1_V3"] {
		t.Error("expected variant INVX1_V3")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tt := tech.N32()
	a := MustGenerate(tt, Options{Variants: 4})
	b := MustGenerate(tt, Options{Variants: 4})
	if len(a.Masters) != len(b.Masters) {
		t.Fatal("nondeterministic master count")
	}
	for i := range a.Masters {
		ma, mb := a.Masters[i], b.Masters[i]
		if ma.Name != mb.Name || ma.Size != mb.Size || len(ma.Pins) != len(mb.Pins) {
			t.Fatalf("master %d differs: %s vs %s", i, ma.Name, mb.Name)
		}
		for j := range ma.Pins {
			if len(ma.Pins[j].Shapes) != len(mb.Pins[j].Shapes) {
				t.Fatal("pin shapes differ")
			}
			for k := range ma.Pins[j].Shapes {
				if ma.Pins[j].Shapes[k] != mb.Pins[j].Shapes[k] {
					t.Fatal("pin shape geometry differs")
				}
			}
		}
	}
}

func TestMisalignY(t *testing.T) {
	tt := tech.N14()
	lib := MustGenerate(tt, Options{MisalignY: true})
	pitch := tt.Metal(1).Pitch
	found := false
	for _, m := range lib.Core {
		for _, p := range m.SignalPins() {
			for _, s := range p.Shapes {
				c := s.Rect.Center()
				// Pin centers must sit pitch/4 off the track grid.
				if (c.Y-pitch/2)%pitch == 0 {
					t.Errorf("%s/%s still track-aligned at %v", m.Name, p.Name, c)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no pins generated")
	}
}

func TestMacro(t *testing.T) {
	tt := tech.N32()
	m := Macro(tt, "RAM1", 100, 8, 16)
	if m.Class != db.ClassBlock {
		t.Fatal("macro must be BLOCK class")
	}
	if len(m.SignalPins()) == 0 {
		t.Fatal("macro has no pins")
	}
	for _, p := range m.SignalPins() {
		if p.Shapes[0].Layer != 3 {
			t.Errorf("macro pin %s on layer %d, want 3", p.Name, p.Shapes[0].Layer)
		}
	}
	if len(m.Obs) != 2 {
		t.Errorf("macro obs = %d, want 2", len(m.Obs))
	}
}

func TestLShapeCell(t *testing.T) {
	for _, nm := range []int{45, 32, 14} {
		tt, _ := tech.ByNode(nm)
		lib := MustGenerate(tt, Options{LShapes: true})
		var m *db.Master
		for _, c := range lib.Core {
			if c.Name == "LPINX1" {
				m = c
			}
		}
		if m == nil {
			t.Fatalf("node %d: LPINX1 missing", nm)
		}
		y := m.PinByName("Y")
		if len(y.Shapes) != 2 {
			t.Fatalf("node %d: Y has %d shapes, want 2", nm, len(y.Shapes))
		}
		if !CellClean(tt, m) {
			t.Fatalf("node %d: LPINX1 dirty", nm)
		}
	}
	// Without the option the cell stays out of the library.
	lib := MustGenerate(tech.N45(), Options{})
	for _, c := range lib.Core {
		if c.Name == "LPINX1" {
			t.Fatal("LPINX1 must be opt-in")
		}
	}
}
