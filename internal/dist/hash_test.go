package dist

import (
	"fmt"
	"testing"
)

func TestRingCandidatesDistinctAndStable(t *testing.T) {
	r := newRing(5)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("CELL_%d/N/0", i)
		c1 := r.candidates(key, 3)
		if len(c1) != 3 {
			t.Fatalf("want 3 candidates, got %v", c1)
		}
		seen := map[int]bool{}
		for _, w := range c1 {
			if w < 0 || w >= 5 || seen[w] {
				t.Fatalf("candidates must be distinct worker indexes, got %v", c1)
			}
			seen[w] = true
		}
		c2 := r.candidates(key, 3)
		for j := range c1 {
			if c1[j] != c2[j] {
				t.Fatalf("candidate order not deterministic: %v vs %v", c1, c2)
			}
		}
		if r.owner(key) != c1[0] {
			t.Fatalf("owner must be the first candidate")
		}
	}
}

func TestRingDistributionNonDegenerate(t *testing.T) {
	const workers, keys = 4, 400
	r := newRing(workers)
	counts := make([]int, workers)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("sig-%d", i))]++
	}
	for w, n := range counts {
		// With 64 virtual nodes each the split is rough, but a worker owning
		// under 10% or over 60% of the space means the ring is broken.
		if n < keys/10 || n > keys*6/10 {
			t.Fatalf("worker %d owns %d/%d keys; distribution degenerate: %v", w, n, keys, counts)
		}
	}
}

// TestRingRemappingIsMinimal pins the consistent-hashing property the shard
// placement relies on: keys whose home worker survives a fleet shrink keep
// their home (only the removed worker's arc remaps), so ViaCache warmth
// survives worker loss.
func TestRingRemappingIsMinimal(t *testing.T) {
	big, small := newRing(4), newRing(3)
	moved := 0
	const keys = 500
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("sig-%d", i)
		was := big.owner(key)
		now := small.owner(key)
		if was < 3 && was != now {
			moved++
		}
	}
	// Shrinking the ring by one worker must not reshuffle surviving arcs
	// wholesale; allow a small boundary slop from virtual-node interleaving.
	if moved > keys/5 {
		t.Fatalf("%d/%d keys with surviving homes remapped; hashing is not consistent", moved, keys)
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing(0)
	if got := r.candidates("x", 3); got != nil {
		t.Fatalf("empty ring must have no candidates, got %v", got)
	}
	if r.owner("x") != -1 {
		t.Fatal("empty ring owner must be -1")
	}
}
