package dist

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/pao"
	"repro/internal/suite"
)

// workerMainEnv flags a re-exec of the test binary into worker-server mode:
// the chaos test needs a worker it can SIGKILL, and killing a goroutine is
// not a thing — only a real subprocess dies the way a real worker does.
const workerMainEnv = "PAO_DIST_WORKER_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(workerMainEnv) == "1" {
		workerMain()
		return
	}
	os.Exit(m.Run())
}

// workerMain is the subprocess body: serve shards for the chaos-test design
// on an ephemeral port, printing the address on stdout for the parent.
func workerMain() {
	d, err := suite.Generate(suite.Testcases[0].Scale(0.01).WithSeed(7))
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker subprocess:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker subprocess:", err)
		os.Exit(1)
	}
	fmt.Println(ln.Addr().String())
	if err := http.Serve(ln, NewWorker(d, pao.DefaultConfig()).Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "worker subprocess:", err)
		os.Exit(1)
	}
}

// startWorkerProc launches the test binary as a worker subprocess and waits
// for it to report its listen address.
func startWorkerProc(t *testing.T) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerMainEnv+"=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("worker subprocess printed no address: %v", sc.Err())
	}
	return cmd, "http://" + strings.TrimSpace(sc.Text())
}

// TestChaosWorkerKilledMidRun is the worker-loss drill: a real worker
// subprocess is SIGKILLed while the run is demonstrably mid-flight. The
// coordinator must relocate the dead worker's shards to the survivor (or
// compute them locally), finish byte-identical to the single-process run, and
// quarantine nothing — worker loss is a transport event, not a result event.
func TestChaosWorkerKilledMidRun(t *testing.T) {
	d := distDesign(t)
	cfg := pao.DefaultConfig()
	want := snapshotBytes(t, d, cfg, pao.NewAnalyzer(d, cfg).Run())

	victim, victimURL := startWorkerProc(t)
	_, survivor := startWorker(t, cfg)

	c := fastCoordinator(d, cfg, []string{victimURL, survivor.URL})
	// One class per analyze shard: plenty of shards in flight behind the kill.
	c.ShardClasses = 1
	c.ShardClusters = 2
	c.RequestTimeout = 2 * time.Second

	var (
		res    *pao.Result
		runErr error
		done   = make(chan struct{})
	)
	go func() {
		defer close(done)
		res, runErr = c.Run(context.Background())
	}()

	// Kill once at least two shards have completed, so the run is past probe
	// and provably mid-stream with work still queued for the victim.
	deadline := time.Now().Add(30 * time.Second)
	for c.ShardsDone() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("run never reached two completed shards")
		}
		time.Sleep(time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-done

	if runErr != nil {
		t.Fatal(runErr)
	}
	got := snapshotBytes(t, d, cfg, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot after worker kill differs from single-process: %d vs %d bytes",
			len(got), len(want))
	}
	// Single-process health on this design is clean, so any quarantine growth
	// here would be the kill leaking into the result.
	if !res.Health.OK() {
		t.Errorf("worker kill must not quarantine classes: %s", res.Health)
	}
	m := c.Obs.Reg().Snapshot()
	recovered := m.Counters["dist.shards.relocated"] + m.Counters["dist.shards.local"]
	if recovered == 0 {
		t.Error("killing a worker mid-run must relocate shards or fall back locally")
	}
}
